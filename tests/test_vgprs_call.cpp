// Figs. 5 and 6: MS call origination + call release, and MS call
// termination, against an H.323 terminal in the external VoIP network.
#include <gtest/gtest.h>

#include "flow_assert.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class CallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VgprsParams params;
    scenario_ = build_vgprs(params);
    ms_ = scenario_->ms[0];
    term_ = scenario_->terminals[0];
    ms_->power_on();
    term_->register_endpoint();
    scenario_->settle();
    ASSERT_EQ(ms_->state(), MobileStation::State::kIdle);
    ASSERT_EQ(term_->state(), H323Terminal::State::kRegistered);
    scenario_->net.trace().clear();  // isolate the call flow
  }

  std::unique_ptr<VgprsScenario> scenario_;
  MobileStation* ms_ = nullptr;
  H323Terminal* term_ = nullptr;
};

TEST_F(CallTest, Fig5OriginationFlow) {
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(term_->state() == H323Terminal::State::kRegistered
                ? Msisdn(make_subscriber(88, 1000).msisdn)
                : Msisdn{});
  scenario_->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);
  ASSERT_EQ(term_->state(), H323Terminal::State::kConnected);

  const TraceRecorder& trace = scenario_->net.trace();
  EXPECT_EQ(trace.count(FlowStep{"BTS", "Um_Connect", "MS1"}), 1u);
  EXPECT_FLOW(scenario_->net, fig5_origination_flow());

  // The terminal performed its own admission (step 2.5).
  EXPECT_GE(scenario_->gk->admissions(), 2u);
  // Two PDP contexts now exist for the MS: signaling + voice.
  EXPECT_EQ(scenario_->sgsn->pdp_context_count(), 2u);
  const auto* voice_ctx =
      scenario_->sgsn->context(ms_->config().imsi, Nsapi(6));
  ASSERT_NE(voice_ctx, nullptr);
  EXPECT_EQ(voice_ctx->qos.traffic_class, QosClass::kConversational);
}

TEST_F(CallTest, Fig5ReleaseFlow) {
  ms_->dial(make_subscriber(88, 1000).msisdn);
  scenario_->settle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);
  scenario_->net.trace().clear();

  bool released_ms = false;
  bool released_term = false;
  ms_->on_released = [&](CallRef) { released_ms = true; };
  term_->on_released = [&](CallRef) { released_term = true; };
  ms_->hangup();
  scenario_->settle();
  EXPECT_TRUE(released_ms);
  EXPECT_TRUE(released_term);
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_EQ(term_->state(), H323Terminal::State::kRegistered);

  EXPECT_FLOW(scenario_->net, fig5_release_flow());

  // Step 3.3: both sides disengaged; charging record closed.
  ASSERT_FALSE(scenario_->gk->call_records().empty());
  EXPECT_FALSE(scenario_->gk->call_records().front().open);

  // Only the signaling context remains (pre-activated for the next call).
  EXPECT_EQ(scenario_->sgsn->pdp_context_count(), 1u);
  EXPECT_NE(scenario_->sgsn->context(ms_->config().imsi, Nsapi(5)), nullptr);
}

TEST_F(CallTest, Fig6TerminationFlow) {
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  // Step 4.1: the H.323 terminal calls the MS's MSISDN.
  term_->place_call(ms_->config().msisdn);
  scenario_->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);
  ASSERT_EQ(term_->state(), H323Terminal::State::kConnected);

  EXPECT_FLOW(scenario_->net, fig6_termination_flow());

  EXPECT_EQ(scenario_->sgsn->pdp_context_count(), 2u);
}

TEST_F(CallTest, TerminationReleaseByTerminal) {
  term_->place_call(ms_->config().msisdn);
  scenario_->settle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);

  bool released_ms = false;
  ms_->on_released = [&](CallRef) { released_ms = true; };
  term_->hangup();
  scenario_->settle();
  EXPECT_TRUE(released_ms);
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_EQ(scenario_->sgsn->pdp_context_count(), 1u);
}

TEST_F(CallTest, VoicePathBothDirections) {
  ms_->dial(make_subscriber(88, 1000).msisdn);
  scenario_->settle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);

  ms_->start_voice(25);
  term_->start_voice(25);
  scenario_->settle();

  // Terminal hears the MS: TCH -> VMSC vocoder -> RTP -> tunnel -> Gi.
  EXPECT_EQ(term_->voice_frames_received(), 25u);
  // MS hears the terminal: RTP -> VMSC vocoder -> TCH.
  EXPECT_EQ(ms_->voice_frames_received(), 25u);
  // Mouth-to-ear latency is sane: above the sum of link latencies, below
  // the ITU G.114 guideline.
  EXPECT_GT(term_->voice_latency().mean(), 20.0);
  EXPECT_LT(term_->voice_latency().mean(), 150.0);
  EXPECT_GT(ms_->voice_latency().mean(), 20.0);
  EXPECT_LT(ms_->voice_latency().mean(), 150.0);
}

TEST_F(CallTest, AnswerRacingHangupDoesNotResurrectCall) {
  // The caller hangs up moments before the callee's Q931 Connect reaches
  // the VMSC.  The Connect must not flip the releasing context back to
  // active (which would leak the voice PDP context and strand the call).
  SimTime ringback_at;
  ms_->on_ringback = [&](CallRef) { ringback_at = scenario_->net.now(); };
  ms_->dial(make_subscriber(88, 1000).msisdn);
  scenario_->net.run_until_idle(
      SimTime::from_micros(static_cast<std::int64_t>(1e12)));  // run setup
  // Re-run with precise timing: hang up ~40 ms before the terminal's
  // answer (answer_delay 800 ms after its alerting) so the Disconnect and
  // the Connect cross in flight.
  ASSERT_GT(ringback_at.count_micros(), 0);
  // The call connected in the first pass; release and go again.
  ms_->hangup();
  scenario_->settle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kIdle);

  ms_->on_ringback = nullptr;
  SimTime ring2;
  ms_->on_ringback = [&](CallRef) { ring2 = scenario_->net.now(); };
  ms_->dial(make_subscriber(88, 1000).msisdn);
  // Step the clock in small quanta so we can interject the hangup.
  for (int i = 0; i < 2000 && ring2 == SimTime(); ++i) {
    scenario_->net.run_until(scenario_->net.now() + SimDuration::millis(5));
  }
  ASSERT_NE(ring2, SimTime());
  // Terminal answers ~770 ms after our ringback; fire the hangup so the
  // Um_Disconnect arrives at the VMSC right around the tunneled Connect.
  scenario_->net.run_until(ring2 + SimDuration::millis(760));
  ms_->hangup();
  scenario_->settle();

  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_EQ(term_->state(), H323Terminal::State::kRegistered);
  // No leaked voice context; only the signaling context remains.
  EXPECT_EQ(scenario_->sgsn->pdp_context_count(), 1u);
  const auto* ctx = scenario_->vmsc->context_of(ms_->config().imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->proc, MscBase::Proc::kNone);
}

TEST_F(CallTest, MsToMsCallThroughHairpin) {
  // A second GSM MS on the same VMSC: the H.323 leg hairpins at the GGSN.
  VgprsParams params;
  params.num_ms = 2;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->ms[1]->power_on();
  s->settle();
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  ASSERT_EQ(s->ms[1]->state(), MobileStation::State::kIdle);

  bool a_connected = false;
  bool b_connected = false;
  s->ms[0]->on_connected = [&](CallRef) { a_connected = true; };
  s->ms[1]->on_connected = [&](CallRef) { b_connected = true; };
  s->ms[0]->dial(s->ms[1]->config().msisdn);
  s->settle();
  EXPECT_TRUE(a_connected);
  EXPECT_TRUE(b_connected);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kConnected);
  EXPECT_EQ(s->ms[1]->state(), MobileStation::State::kConnected);

  // Both talk; both hear.
  s->ms[0]->start_voice(10);
  s->ms[1]->start_voice(10);
  s->settle();
  EXPECT_EQ(s->ms[0]->voice_frames_received(), 10u);
  EXPECT_EQ(s->ms[1]->voice_frames_received(), 10u);

  s->ms[0]->hangup();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->ms[1]->state(), MobileStation::State::kIdle);
}

}  // namespace
}  // namespace vgprs
