// GPRS substrate unit tests: attach/detach, PDP context lifecycle, dynamic
// vs static addressing, GTP tunneling, and network-initiated activation.
#include <gtest/gtest.h>

#include "gprs/ggsn.hpp"
#include "gprs/sgsn.hpp"
#include "gsm/hlr.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

/// Plays the role of the Gb-side user (a VMSC or an H.323-capable MS).
class GbUser final : public Node {
 public:
  explicit GbUser(std::string name, Imsi imsi)
      : Node(std::move(name)), imsi_(imsi) {}

  void home(NodeId sgsn) { sgsn_ = sgsn; }
  void attach(NodeId sgsn) {
    home(sgsn);
    auto req = std::make_shared<GprsAttachRequest>();
    req->imsi = imsi_;
    send(sgsn, std::move(req));
  }
  void activate(Nsapi nsapi, IpAddress requested = {}) {
    auto req = std::make_shared<ActivatePdpContextRequest>();
    req->imsi = imsi_;
    req->nsapi = nsapi;
    req->requested_address = requested;
    send(sgsn_, std::move(req));
  }
  void deactivate(Nsapi nsapi) {
    auto req = std::make_shared<DeactivatePdpContextRequest>();
    req->imsi = imsi_;
    req->nsapi = nsapi;
    send(sgsn_, std::move(req));
  }
  void detach() {
    auto req = std::make_shared<GprsDetachRequest>();
    req->imsi = imsi_;
    send(sgsn_, std::move(req));
  }
  void send_datagram(IpAddress src, IpAddress dst, const Message& inner) {
    auto dgram = make_ip_datagram(src, dst, inner);
    auto frame = std::make_shared<GbUnitData>();
    frame->imsi = imsi_;
    frame->payload = dgram->encode();
    send(sgsn_, std::move(frame));
  }

  void on_message(const Envelope& env) override {
    last = env.msg;
    history.push_back(env.msg);
    if (const auto* acc =
            dynamic_cast<const ActivatePdpContextAccept*>(env.msg.get())) {
      addresses[acc->nsapi.value()] = acc->address;
    }
  }

  MessagePtr last;
  std::vector<MessagePtr> history;
  std::map<std::uint8_t, IpAddress> addresses;

 private:
  Imsi imsi_;
  NodeId sgsn_;
};

class GprsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_all_messages();
    net_ = std::make_unique<Network>(5);
    hlr_ = &net_->add<Hlr>("HLR");
    sgsn_ = &net_->add<Sgsn>("SGSN", Sgsn::Config{"GGSN", "HLR"});
    Ggsn::Config gc;
    gc.router_name = "Router";
    gc.hlr_name = "HLR";
    ggsn_ = &net_->add<Ggsn>("GGSN", gc);
    router_ = &net_->add<IpRouter>("Router");
    net_->connect(*sgsn_, *ggsn_, LinkProfile{});
    net_->connect(*sgsn_, *hlr_, LinkProfile{});
    net_->connect(*ggsn_, *hlr_, LinkProfile{});
    net_->connect(*ggsn_, *router_, LinkProfile{});

    id_ = make_subscriber(88, 1);
    SubscriberProfile profile;
    profile.msisdn = id_.msisdn;
    hlr_->provision(id_.imsi, id_.ki, profile);
    user_ = &net_->add<GbUser>("USER", id_.imsi);
    net_->connect(*user_, *sgsn_, LinkProfile{});
  }

  std::unique_ptr<Network> net_;
  Hlr* hlr_ = nullptr;
  Sgsn* sgsn_ = nullptr;
  Ggsn* ggsn_ = nullptr;
  IpRouter* router_ = nullptr;
  GbUser* user_ = nullptr;
  SubscriberIdentity id_;
};

TEST_F(GprsTest, AttachUpdatesHlr) {
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  ASSERT_NE(user_->last, nullptr);
  EXPECT_EQ(user_->last->name(), "GPRS_Attach_Accept");
  EXPECT_EQ(sgsn_->attached_count(), 1u);
  EXPECT_EQ(hlr_->record(id_.imsi)->sgsn_name, "SGSN");
}

TEST_F(GprsTest, AttachRejectedForUnknownImsi) {
  auto& ghost = net_->add<GbUser>("GHOST", Imsi(123456789012345ULL, 15));
  net_->connect(ghost, *sgsn_, LinkProfile{});
  ghost.attach(sgsn_->id());
  net_->run_until_idle();
  ASSERT_NE(ghost.last, nullptr);
  EXPECT_EQ(ghost.last->name(), "GPRS_Attach_Reject");
  EXPECT_EQ(sgsn_->attached_count(), 0u);
}

TEST_F(GprsTest, PdpActivationRequiresAttach) {
  user_->home(sgsn_->id());
  user_->activate(Nsapi(5));
  net_->run_until_idle();
  ASSERT_NE(user_->last, nullptr);
  EXPECT_EQ(user_->last->name(), "Activate_PDP_Context_Reject");
}

TEST_F(GprsTest, DynamicAddressesAreDistinctPerContext) {
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  user_->activate(Nsapi(5));
  user_->activate(Nsapi(6));
  net_->run_until_idle();
  ASSERT_EQ(user_->addresses.size(), 2u);
  EXPECT_NE(user_->addresses[5], user_->addresses[6]);
  EXPECT_EQ(sgsn_->pdp_context_count(), 2u);
  EXPECT_EQ(ggsn_->pdp_context_count(), 2u);
}

TEST_F(GprsTest, StaticAddressHonored) {
  IpAddress want(10, 2, 0, 42);
  ggsn_->provision_static(id_.imsi, want);
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  user_->activate(Nsapi(5), want);
  net_->run_until_idle();
  EXPECT_EQ(user_->addresses[5], want);
  EXPECT_NE(ggsn_->context_by_address(want), nullptr);
}

TEST_F(GprsTest, DeactivationTearsDownBothEnds) {
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  user_->activate(Nsapi(5));
  net_->run_until_idle();
  IpAddress addr = user_->addresses[5];
  user_->deactivate(Nsapi(5));
  net_->run_until_idle();
  EXPECT_EQ(user_->last->name(), "Deactivate_PDP_Context_Accept");
  EXPECT_EQ(sgsn_->pdp_context_count(), 0u);
  EXPECT_EQ(ggsn_->pdp_context_count(), 0u);
  EXPECT_EQ(ggsn_->context_by_address(addr), nullptr);
  EXPECT_FALSE(net_->ip_owner(addr).valid());  // route withdrawn
}

TEST_F(GprsTest, DeactivateUnknownContextStillAcks) {
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  user_->deactivate(Nsapi(9));
  net_->run_until_idle();
  EXPECT_EQ(user_->last->name(), "Deactivate_PDP_Context_Accept");
}

TEST_F(GprsTest, DetachDeletesAllContexts) {
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  user_->activate(Nsapi(5));
  user_->activate(Nsapi(6));
  net_->run_until_idle();
  user_->detach();
  net_->run_until_idle();
  EXPECT_EQ(sgsn_->attached_count(), 0u);
  EXPECT_EQ(sgsn_->pdp_context_count(), 0u);
  EXPECT_EQ(ggsn_->pdp_context_count(), 0u);
}

TEST_F(GprsTest, UplinkTunnelingToExternalHost) {
  // External IP host behind the router.
  struct Host final : public Node {
    using Node::Node;
    std::vector<MessagePtr> got;
    void on_message(const Envelope& env) override { got.push_back(env.msg); }
  };
  auto& host = net_->add<Host>("HOST");
  net_->connect(host, *router_, LinkProfile{});
  net_->register_ip(IpAddress(192, 168, 9, 9), host.id());

  user_->attach(sgsn_->id());
  net_->run_until_idle();
  user_->activate(Nsapi(5));
  net_->run_until_idle();
  GprsAttachRequest probe;  // arbitrary payload message
  probe.imsi = id_.imsi;
  user_->send_datagram(user_->addresses[5], IpAddress(192, 168, 9, 9),
                       probe);
  net_->run_until_idle();
  ASSERT_EQ(host.got.size(), 1u);
  const auto* dgram = dynamic_cast<const IpDatagram*>(host.got[0].get());
  ASSERT_NE(dgram, nullptr);
  EXPECT_EQ(dgram->src, user_->addresses[5]);
  EXPECT_EQ(net_->trace().count("GTP_T_PDU"), 1u);
}

TEST_F(GprsTest, DownlinkRequiresContext) {
  // A datagram to an address with no PDP context is dropped at the GGSN.
  struct Host final : public Node {
    using Node::Node;
    void on_message(const Envelope&) override {}
  };
  auto& host = net_->add<Host>("HOST");
  net_->connect(host, *router_, LinkProfile{});
  net_->register_ip(IpAddress(192, 168, 9, 9), host.id());
  // Stale route to a torn-down context address.
  net_->register_ip(IpAddress(10, 1, 0, 77), ggsn_->id());
  net_->send(host.id(), router_->id(),
             make_ip_datagram(IpAddress(192, 168, 9, 9),
                              IpAddress(10, 1, 0, 77), GprsAttachRequest{}));
  net_->run_until_idle();
  EXPECT_EQ(net_->trace().count("Gb_UnitData"), 0u);
}

TEST_F(GprsTest, PduNotificationDrivesNetworkInitiatedActivation) {
  IpAddress static_ip(10, 2, 0, 5);
  ggsn_->provision_static(id_.imsi, static_ip);
  user_->attach(sgsn_->id());
  net_->run_until_idle();

  // The GGSN control interface receives an activation request (as the
  // TR 23.821 gatekeeper would send).
  struct Requester final : public Node {
    using Node::Node;
    bool success = false;
    bool responded = false;
    void on_message(const Envelope& env) override {
      const auto* dgram = dynamic_cast<const IpDatagram*>(env.msg.get());
      if (dgram == nullptr) return;
      auto inner = ip_payload(*dgram);
      if (!inner.ok()) return;
      if (const auto* rsp = dynamic_cast<const GgsnActivationResponse*>(
              inner.value().get())) {
        responded = true;
        success = rsp->success;
      }
    }
  };
  auto& req = net_->add<Requester>("REQ");
  net_->connect(req, *router_, LinkProfile{});
  net_->register_ip(IpAddress(192, 168, 9, 1), req.id());

  GgsnActivationRequest act;
  act.imsi = id_.imsi;
  net_->send(req.id(), router_->id(),
             make_ip_datagram(IpAddress(192, 168, 9, 1),
                              IpAddress(10, 0, 0, 1), act));
  net_->run_until_idle();

  // The SGSN forwarded a Request_PDP_Context_Activation to the user...
  bool saw_request = false;
  for (const auto& m : user_->history) {
    if (m->name() == "Request_PDP_Context_Activation") saw_request = true;
  }
  EXPECT_TRUE(saw_request);
  // ...but the GbUser stub never activates, so no response yet.
  EXPECT_FALSE(req.responded);

  // Complete the activation as the MS would.
  user_->activate(Nsapi(5), static_ip);
  net_->run_until_idle();
  EXPECT_TRUE(req.responded);
  EXPECT_TRUE(req.success);
  EXPECT_EQ(user_->addresses[5], static_ip);
}

TEST_F(GprsTest, ActivationRequestWithoutStaticAddressFails) {
  // No static address provisioned: network-initiated activation must be
  // refused (the paper's Section 6 point about TR 23.821).
  user_->attach(sgsn_->id());
  net_->run_until_idle();
  struct Requester final : public Node {
    using Node::Node;
    bool responded = false;
    bool success = true;
    void on_message(const Envelope& env) override {
      const auto* dgram = dynamic_cast<const IpDatagram*>(env.msg.get());
      if (dgram == nullptr) return;
      auto inner = ip_payload(*dgram);
      if (!inner.ok()) return;
      if (const auto* rsp = dynamic_cast<const GgsnActivationResponse*>(
              inner.value().get())) {
        responded = true;
        success = rsp->success;
      }
    }
  };
  auto& req = net_->add<Requester>("REQ");
  net_->connect(req, *router_, LinkProfile{});
  net_->register_ip(IpAddress(192, 168, 9, 1), req.id());
  GgsnActivationRequest act;
  act.imsi = id_.imsi;
  net_->send(req.id(), router_->id(),
             make_ip_datagram(IpAddress(192, 168, 9, 1),
                              IpAddress(10, 0, 0, 1), act));
  net_->run_until_idle();
  EXPECT_TRUE(req.responded);
  EXPECT_FALSE(req.success);
}

}  // namespace
}  // namespace vgprs
