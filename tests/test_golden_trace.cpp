// Engine-equivalence regression: the delivered message sequence (time,
// from, to, message name) of every principal scenario — Fig. 4–9 plus the
// TR 23.821 baseline — is compared byte-for-byte against golden traces
// recorded with the seed engine.  Any event-engine change that reorders,
// retimes, drops or duplicates a delivery fails here, not in a flaky
// integration test.
//
// Regenerate the goldens (only when a behaviour change is intended) with:
//   VGPRS_UPDATE_GOLDEN=1 ./test_golden_trace
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "sim/fault.hpp"
#include "tr23821/tr_scenario.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

/// Canonical one-line-per-delivery rendering: timestamps in microseconds so
/// the comparison is exact, no parameter summaries so goldens stay stable
/// under message-describe cosmetics.
std::string canonical(const TraceRecorder& trace) {
  std::ostringstream os;
  for (const auto& e : trace.entries()) {
    os << e.at.count_micros() << ' ' << e.from << ' ' << e.to << ' '
       << e.message << '\n';
  }
  return os.str();
}

std::string golden_path(const std::string& name) {
  return std::string(VGPRS_GOLDEN_DIR) + "/" + name + ".txt";
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("VGPRS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with VGPRS_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();
  if (expected.str() == actual) return;
  // Forensics: locate the first diverging delivery so the failure names the
  // event rather than drowning the log in two full traces.
  std::istringstream want(expected.str());
  std::istringstream got(actual);
  std::string wline;
  std::string gline;
  std::size_t lineno = 0;
  while (true) {
    const bool have_w = static_cast<bool>(std::getline(want, wline));
    const bool have_g = static_cast<bool>(std::getline(got, gline));
    ++lineno;
    if (!have_w && !have_g) break;
    if (!have_w || !have_g || wline != gline) {
      std::fprintf(stderr,
                   "%s: first divergence at delivery %zu\n"
                   "  golden: %s\n"
                   "  actual: %s\n",
                   name.c_str(), lineno,
                   have_w ? wline.c_str() : "<end of golden>",
                   have_g ? gline.c_str() : "<end of actual>");
      break;
    }
  }
  auto lines = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  ADD_FAILURE() << name << ": diverged from the seed engine at delivery "
                << lineno << " (golden " << lines(expected.str())
                << " deliveries, actual " << lines(actual)
                << "; details on stderr)";
}

TEST(GoldenTrace, Fig4RegistrationAndFig5CallCycle) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  check_golden("fig4_registration", canonical(s->net.trace()));

  s->net.trace().clear();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  check_golden("fig5_origination_release", canonical(s->net.trace()));
}

TEST(GoldenTrace, Fig6Termination) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  s->terminals[0]->place_call(s->ms[0]->config().msisdn);
  s->settle();
  check_golden("fig6_termination", canonical(s->net.trace()));
}

TEST(GoldenTrace, Fig7ClassicTromboning) {
  TrombParams params;
  params.seed = 7;
  params.use_vgprs = false;
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  check_golden("fig7_tromboning_classic", canonical(s->net.trace()));
}

TEST(GoldenTrace, Fig8VgprsLocalDelivery) {
  TrombParams params;
  params.seed = 7;
  params.use_vgprs = true;
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  check_golden("fig8_tromboning_vgprs", canonical(s->net.trace()));
}

TEST(GoldenTrace, Fig9Handoff) {
  HandoffParams params;
  params.seed = 7;
  auto s = build_handoff(params);
  s->ms->power_on();
  s->terminal->register_endpoint();
  s->settle();
  s->ms->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                             CellId(202));
  s->settle();
  check_golden("fig9_handoff", canonical(s->net.trace()));
}

// Fault-path equivalence: the recovery sequences themselves are pinned, so
// a change to retransmission timing or fault bookkeeping shows up as a
// golden diff, not just as "the test still passes eventually".

TEST(GoldenTrace, Fig4WithVlrRestart) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  // The VLR crashes just as authentication reaches it and restarts with
  // empty volatile state; the VMSC's MAP retransmission re-drives the
  // exchange and registration completes after the restart.
  FaultSchedule sched;
  sched.node_outages.push_back({"VLR", SimTime::from_micros(100'000),
                                SimTime::from_micros(2'000'000)});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->settle();
  check_golden("fig4_with_vlr_restart", canonical(s->net.trace()));
}

TEST(GoldenTrace, Fig5WithLostSetup) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  // The first A_Setup vanishes between BSC and VMSC; the MS-side
  // retransmission re-offers the call and the cycle completes.
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"A_Setup", "", "", 1, 1}, FaultKind::kDrop});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  check_golden("fig5_with_lost_setup", canonical(s->net.trace()));
}

TEST(GoldenTrace, Tr23821RegistrationAndCalls) {
  TrParams params;
  params.seed = 7;
  auto s = build_tr23821(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  check_golden("tr23821_registration", canonical(s->net.trace()));

  s->net.trace().clear();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  s->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
  s->settle();
  check_golden("tr23821_call_cycle", canonical(s->net.trace()));
}

}  // namespace
}  // namespace vgprs
