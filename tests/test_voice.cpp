// Voice model unit tests: GSM FR framing constants, E-model MOS mapping,
// playout delay, and RTP packet semantics.
#include <gtest/gtest.h>

#include "voice/codec.hpp"
#include "voice/rtp.hpp"

namespace vgprs {
namespace {

TEST(CodecModelTest, GsmFrConstants) {
  EXPECT_EQ(GsmFrCodec::kFrameBytes, 33);
  EXPECT_EQ(GsmFrCodec::kFrameInterval.as_millis(), 20.0);
  // 33 bytes / 20 ms == 13.2 kbit/s gross, 13 kbit/s net speech.
  EXPECT_EQ(GsmFrCodec::kBitrateBps, 13'000u);
}

TEST(CodecModelTest, RtpOverheadDominatesSmallFrames) {
  // 40 bytes of headers on a 33-byte payload: >50% overhead — why the
  // voice PDP context wants its own QoS class.
  EXPECT_EQ(RtpOverhead::total(), 40);
  double overhead = static_cast<double>(RtpOverhead::total()) /
                    (RtpOverhead::total() + GsmFrCodec::kFrameBytes);
  EXPECT_GT(overhead, 0.5);
}

TEST(MosTest, MonotoneDecreasingInDelay) {
  double prev = 6.0;
  for (double d = 0; d <= 800; d += 25) {
    double mos = mos_from_one_way_delay_ms(d);
    EXPECT_LE(mos, prev) << "at delay " << d;
    prev = mos;
  }
}

TEST(MosTest, AnchorsMatchItuGuidance) {
  EXPECT_GT(mos_from_one_way_delay_ms(50), 4.0);    // excellent
  EXPECT_GT(mos_from_one_way_delay_ms(150), 3.8);   // toll quality edge
  EXPECT_LT(mos_from_one_way_delay_ms(400), 3.7);   // G.114 limit
  EXPECT_LT(mos_from_one_way_delay_ms(800), 2.5);   // unusable
  EXPECT_GE(mos_from_one_way_delay_ms(10000), 1.0);  // clamped
}

TEST(PlayoutTest, CoversJitterWithFloor) {
  EXPECT_DOUBLE_EQ(playout_delay_ms(0.0), 20.0);   // one frame minimum
  EXPECT_DOUBLE_EQ(playout_delay_ms(5.0), 20.0);
  EXPECT_DOUBLE_EQ(playout_delay_ms(30.0), 60.0);  // 2x rule
}

TEST(RtpTest, TimestampConvention) {
  RtpPacket p;
  p.seq = 50;
  p.timestamp = 50 * 160;  // 20 ms at 8 kHz
  EXPECT_EQ(p.timestamp / p.seq, 160u);
}

}  // namespace
}  // namespace vgprs
