// Codec property tests over the ENTIRE message catalog (every protocol the
// system speaks: Um/Abis/A, MAP, GPRS SM/GMM, GTP, RAS, Q.931, ISUP, RTP,
// IP).  Parameterized over every registered wire type.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class CodecSweep : public ::testing::TestWithParam<std::uint16_t> {
 protected:
  static void SetUpTestSuite() { register_all_messages(); }
};

TEST_P(CodecSweep, EncodeDecodeReencodeIsStable) {
  const auto& reg = MessageRegistry::instance();
  auto msg = reg.create(GetParam());
  ASSERT_NE(msg, nullptr);
  auto wire = msg->encode();
  auto decoded = reg.decode(wire);
  ASSERT_TRUE(decoded.ok()) << reg.name_of(GetParam()) << ": "
                            << decoded.error().to_string();
  EXPECT_EQ(decoded.value()->wire_type(), GetParam());
  EXPECT_EQ(decoded.value()->name(), msg->name());
  // Round-trip fixed point: decoding then re-encoding yields the same bytes.
  EXPECT_EQ(decoded.value()->encode(), wire) << reg.name_of(GetParam());
}

TEST_P(CodecSweep, CloneEncodesIdentically) {
  auto msg = MessageRegistry::instance().create(GetParam());
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->clone()->encode(), msg->encode());
}

TEST_P(CodecSweep, EveryTruncationFailsGracefully) {
  const auto& reg = MessageRegistry::instance();
  auto msg = reg.create(GetParam());
  ASSERT_NE(msg, nullptr);
  auto wire = msg->encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto result = reg.decode(std::span(wire.data(), cut));
    EXPECT_FALSE(result.ok())
        << reg.name_of(GetParam()) << " decoded from " << cut << "/"
        << wire.size() << " bytes";
  }
}

TEST_P(CodecSweep, TrailingGarbageRejected) {
  const auto& reg = MessageRegistry::instance();
  auto msg = reg.create(GetParam());
  auto wire = msg->encode();
  wire.push_back(0x00);
  auto result = reg.decode(wire);
  EXPECT_FALSE(result.ok()) << reg.name_of(GetParam());
}

TEST_P(CodecSweep, SummaryIsNonEmptyAndNamed) {
  auto msg = MessageRegistry::instance().create(GetParam());
  EXPECT_FALSE(msg->summary().empty());
  EXPECT_NE(msg->summary().find(msg->name()), std::string::npos);
}

std::vector<std::uint16_t> all_types() {
  register_all_messages();
  return MessageRegistry::instance().types();
}

INSTANTIATE_TEST_SUITE_P(AllMessages, CodecSweep,
                         ::testing::ValuesIn(all_types()),
                         [](const ::testing::TestParamInfo<std::uint16_t>& i) {
                           std::string n(
                               MessageRegistry::instance().name_of(i.param));
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(CodecRobustness, RandomBytesNeverCrash) {
  register_all_messages();
  const auto& reg = MessageRegistry::instance();
  Rng rng(123);
  int decoded_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u32());
    auto result = reg.decode(junk);
    if (result.ok()) ++decoded_ok;  // possible but must not crash/UB
  }
  SUCCEED() << decoded_ok << " random buffers happened to parse";
}

TEST(CodecRobustness, UnknownWireTypeIsError) {
  register_all_messages();
  ByteWriter w;
  w.u16(0x7FFF);
  auto result = MessageRegistry::instance().decode(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kDecodeUnknownType);
}

TEST(CodecFieldTest, GsmLocationUpdateFields) {
  register_all_messages();
  UmLocationUpdateRequest msg;
  msg.imsi = Imsi(466920000000123ULL, 15);
  msg.tmsi = Tmsi(0xAABBCCDD);
  msg.lai = LocationAreaId(42);
  msg.cell = CellId(101);
  auto decoded = MessageRegistry::instance().decode(msg.encode());
  ASSERT_TRUE(decoded.ok());
  const auto& out =
      dynamic_cast<const UmLocationUpdateRequest&>(*decoded.value());
  EXPECT_EQ(out.imsi, msg.imsi);
  EXPECT_EQ(out.tmsi, msg.tmsi);
  EXPECT_EQ(out.lai, msg.lai);
  EXPECT_EQ(out.cell, msg.cell);
}

TEST(CodecFieldTest, MapAuthTripletsVector) {
  register_all_messages();
  MapSendAuthInfoAck msg;
  msg.imsi = Imsi(466920000000001ULL, 15);
  msg.triplets = {AuthTriplet{1, 2, 3}, AuthTriplet{4, 5, 6},
                  AuthTriplet{7, 8, 9}};
  auto decoded = MessageRegistry::instance().decode(msg.encode());
  ASSERT_TRUE(decoded.ok());
  const auto& out = dynamic_cast<const MapSendAuthInfoAck&>(*decoded.value());
  ASSERT_EQ(out.triplets.size(), 3u);
  EXPECT_EQ(out.triplets[1], (AuthTriplet{4, 5, 6}));
}

TEST(CodecFieldTest, SubscriberProfileInInsertSubsData) {
  register_all_messages();
  MapInsertSubsData msg;
  msg.imsi = Imsi(440004669000001ULL, 15);
  msg.profile.msisdn = Msisdn(440900000001ULL, 12);
  msg.profile.international_calls_allowed = false;
  msg.profile.static_pdp_address = IpAddress(10, 2, 0, 9);
  auto decoded = MessageRegistry::instance().decode(msg.encode());
  ASSERT_TRUE(decoded.ok());
  const auto& out = dynamic_cast<const MapInsertSubsData&>(*decoded.value());
  EXPECT_EQ(out.profile, msg.profile);
}

TEST(CodecFieldTest, GtpPduCarriesOpaquePayload) {
  register_all_messages();
  GtpPdu pdu;
  pdu.teid = TunnelId(0x8001);
  pdu.payload = {1, 2, 3, 4, 5, 250, 251, 252};
  auto decoded = MessageRegistry::instance().decode(pdu.encode());
  ASSERT_TRUE(decoded.ok());
  const auto& out = dynamic_cast<const GtpPdu&>(*decoded.value());
  EXPECT_EQ(out.teid, pdu.teid);
  EXPECT_EQ(out.payload, pdu.payload);
}

TEST(CodecFieldTest, NestedEncapsulationSurvivesThreeLayers) {
  register_all_messages();
  // RAS_ARQ inside an IP datagram inside a GTP PDU inside a Gb frame —
  // the full Fig. 3 protocol stack.
  RasArq arq;
  arq.endpoint_id = 7;
  arq.call_ref = CallRef(99);
  arq.called = Msisdn(440900000001ULL, 12);
  auto dgram = make_ip_datagram(IpAddress(10, 1, 0, 1),
                                IpAddress(192, 168, 1, 1), arq);
  GtpPdu pdu;
  pdu.teid = TunnelId(1);
  pdu.payload = dgram->encode();
  GbUnitData frame;
  frame.imsi = Imsi(466920000000001ULL, 15);
  frame.payload = pdu.encode();

  auto l1 = MessageRegistry::instance().decode(frame.encode());
  ASSERT_TRUE(l1.ok());
  const auto& gb = dynamic_cast<const GbUnitData&>(*l1.value());
  auto l2 = MessageRegistry::instance().decode(gb.payload);
  ASSERT_TRUE(l2.ok());
  const auto& tunnel = dynamic_cast<const GtpPdu&>(*l2.value());
  auto l3 = MessageRegistry::instance().decode(tunnel.payload);
  ASSERT_TRUE(l3.ok());
  const auto& ip = dynamic_cast<const IpDatagram&>(*l3.value());
  auto l4 = ip_payload(ip);
  ASSERT_TRUE(l4.ok());
  const auto& out = dynamic_cast<const RasArq&>(*l4.value());
  EXPECT_EQ(out.called, arq.called);
  EXPECT_EQ(out.call_ref, arq.call_ref);
}

}  // namespace
}  // namespace vgprs
