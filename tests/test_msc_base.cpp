// Direct unit tests of the shared MSC machinery (MscBase) through a
// minimal test subclass: procedure supervision/abort, duplicate message
// handling, rejection paths and context bookkeeping — the machinery both
// the classic MSC and the VMSC inherit unchanged.
#include <gtest/gtest.h>

#include "gsm/bsc.hpp"
#include "gsm/bts.hpp"
#include "gsm/hlr.hpp"
#include "gsm/mobile_station.hpp"
#include "gsm/msc_base.hpp"
#include "gsm/vlr.hpp"
#include "sim/fault.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

/// A far end that can be told to answer, stall, or reject.
class TestMsc final : public MscBase {
 public:
  enum class FarEnd { kAnswer, kStall, kReject };

  TestMsc(std::string name, Config config)
      : MscBase(std::move(name), std::move(config)) {}

  FarEnd far_end = FarEnd::kAnswer;
  int mo_routed = 0;
  int ms_disconnects = 0;
  int aborted = 0;
  int cleared = 0;
  int removed = 0;

  using MscBase::start_mt_call;  // expose for tests

 protected:
  void route_mo_call(MsContext& ctx) override {
    ++mo_routed;
    switch (far_end) {
      case FarEnd::kAnswer:
        notify_mo_alerting(ctx);
        notify_mo_connect(ctx);
        break;
      case FarEnd::kStall:
        break;  // never answers; the procedure guard must fire
      case FarEnd::kReject:
        reject_mo_call(ctx, ClearCause::kCallRejected);
        break;
    }
  }
  void on_ms_disconnect(MsContext& ctx, ClearCause) override {
    ++ms_disconnects;
    complete_ms_release(ctx);
  }
  void on_call_aborted(MsContext&) override { ++aborted; }
  void on_call_cleared(MsContext&) override { ++cleared; }
  void on_subscriber_removed(const MsContext&) override { ++removed; }
};

class MscBaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_all_messages();
    net_ = std::make_unique<Network>(21);
    hlr_ = &net_->add<Hlr>("HLR");
    vlr_ = &net_->add<Vlr>("VLR", Vlr::Config{"HLR", 88, 8'899'000});
    bsc_ = &net_->add<Bsc>("BSC", Bsc::Config{"MSC", 8, 8});
    bts_ = &net_->add<Bts>("BTS", CellId(1), LocationAreaId(1), "BSC");
    MscBase::Config cfg;
    cfg.vlr_name = "VLR";
    cfg.procedure_guard = SimDuration::seconds(20);
    msc_ = &net_->add<TestMsc>("MSC", cfg);
    bsc_->adopt_bts(*bts_);
    msc_->adopt_cell(CellId(1), "BSC");
    net_->connect(*bts_, *bsc_, LinkProfile{});
    net_->connect(*bsc_, *msc_, LinkProfile{});
    net_->connect(*msc_, *vlr_, LinkProfile{});
    net_->connect(*vlr_, *hlr_, LinkProfile{});

    id_ = make_subscriber(88, 1);
    SubscriberProfile profile;
    profile.msisdn = id_.msisdn;
    hlr_->provision(id_.imsi, id_.ki, profile);
    MobileStation::Config mc;
    mc.imsi = id_.imsi;
    mc.msisdn = id_.msisdn;
    mc.ki = id_.ki;
    mc.bts_name = "BTS";
    ms_ = &net_->add<MobileStation>("MS", mc);
    net_->connect(*ms_, *bts_, LinkProfile{});
  }

  void register_ms() {
    ms_->power_on();
    net_->run_until_idle();
    ASSERT_EQ(ms_->state(), MobileStation::State::kIdle);
  }

  std::unique_ptr<Network> net_;
  Hlr* hlr_ = nullptr;
  Vlr* vlr_ = nullptr;
  Bsc* bsc_ = nullptr;
  Bts* bts_ = nullptr;
  TestMsc* msc_ = nullptr;
  MobileStation* ms_ = nullptr;
  SubscriberIdentity id_;
};

TEST_F(MscBaseTest, HappyPathCallThroughStub) {
  register_ms();
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(msc_->mo_routed, 1);
  ms_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(msc_->ms_disconnects, 1);
  EXPECT_EQ(msc_->cleared, 1);
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_EQ(bsc_->tch_in_use(), 0u);
}

TEST_F(MscBaseTest, StalledFarEndAbortsViaProcedureGuard) {
  register_ms();
  msc_->far_end = TestMsc::FarEnd::kStall;
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  // The MSC's guard fired, the call was aborted and the radio cleared.
  EXPECT_EQ(msc_->aborted, 1);
  EXPECT_EQ(msc_->cleared, 1);
  EXPECT_EQ(bsc_->tch_in_use(), 0u);
  const auto* ctx = msc_->context_of(id_.imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->proc, MscBase::Proc::kNone);
  // The MS's own supervision already returned it to idle.
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  // The context is reusable: a later call succeeds.
  msc_->far_end = TestMsc::FarEnd::kAnswer;
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
}

TEST_F(MscBaseTest, RejectedCallReleasesCleanly) {
  register_ms();
  msc_->far_end = TestMsc::FarEnd::kReject;
  bool released = false;
  bool connected = false;
  ms_->on_released = [&](CallRef) { released = true; };
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(released);
  EXPECT_FALSE(connected);
  EXPECT_EQ(msc_->cleared, 1);
  EXPECT_EQ(bsc_->tch_in_use(), 0u);
}

TEST_F(MscBaseTest, MtCallToUnregisteredSubscriberRefused) {
  // No registration has happened.
  EXPECT_FALSE(msc_->start_mt_call(id_.imsi, Msisdn(880900001000ULL, 12),
                                   CallRef(77)));
}

TEST_F(MscBaseTest, MtCallToBusySubscriberRefused) {
  register_ms();
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);
  EXPECT_FALSE(msc_->start_mt_call(id_.imsi, Msisdn(880900001000ULL, 12),
                                   CallRef(78)));
}

TEST_F(MscBaseTest, MtCallDeliveredByStub) {
  register_ms();
  bool incoming = false;
  ms_->on_incoming = [&](CallRef, Msisdn) { incoming = true; };
  ASSERT_TRUE(msc_->start_mt_call(id_.imsi, Msisdn(880900001000ULL, 12),
                                  CallRef(79)));
  net_->run_until_idle();
  EXPECT_TRUE(incoming);
  EXPECT_EQ(ms_->state(), MobileStation::State::kConnected);
  const auto* ctx = msc_->context_of(id_.imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->step, MscBase::Step::kActive);
}

TEST_F(MscBaseTest, DuplicateDisconnectHandledOnce) {
  register_ms();
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);
  // Simulate a retransmitted disconnect arriving directly on the A side.
  for (int i = 0; i < 3; ++i) {
    auto disc = std::make_shared<ADisconnect>();
    disc->imsi = id_.imsi;
    disc->call_ref = msc_->context_of(id_.imsi)->call_ref;
    disc->cause = ClearCause::kNormal;
    net_->send(bsc_->id(), msc_->id(), std::move(disc));
  }
  net_->run_until_idle();
  EXPECT_EQ(msc_->ms_disconnects, 1);  // duplicates swallowed
}

TEST_F(MscBaseTest, SubscriberRemovalErasesContext) {
  register_ms();
  auto cancel = std::make_shared<MapCancelLocation>();
  cancel->imsi = id_.imsi;
  net_->send(vlr_->id(), msc_->id(), std::move(cancel));
  net_->run_until_idle();
  EXPECT_EQ(msc_->removed, 1);
  EXPECT_EQ(msc_->context_of(id_.imsi), nullptr);
}

TEST_F(MscBaseTest, RegistrationGuardClearsStalledRegistration) {
  // Cut the VLR link semantics by pointing the MSC at a VLR that cannot
  // reach an HLR record: provision is removed so the HLR nacks, which is a
  // *rejection*; to test the guard instead, drop the D link entirely.
  LinkProfile dead;
  dead.loss_probability = 1.0;
  net_->set_link_profile(vlr_->id(), hlr_->id(), dead);
  ms_->power_on();
  net_->run_until_idle();
  // MS gave up via its own supervision; the MSC's guard reset the context.
  EXPECT_EQ(ms_->state(), MobileStation::State::kDetached);
  const auto* ctx = msc_->context_of(id_.imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->proc, MscBase::Proc::kNone);
  EXPECT_FALSE(ctx->registered);
}

TEST_F(MscBaseTest, LostClearCompleteForceClearsViaGuard) {
  register_ms();
  // The stalled far end makes the procedure guard abort the call; the
  // BSC's A_Clear_Complete answer to the abort is then lost in flight.
  // The re-armed guard must force-clear the context locally instead of
  // leaving it wedged in kClearing (a vgprs_verify deadlock finding).
  msc_->far_end = TestMsc::FarEnd::kStall;
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"A_Clear_Complete", "BSC", "MSC", 1, 1},
       FaultKind::kDrop});
  net_->install_faults(std::move(sched));
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  EXPECT_EQ(msc_->aborted, 1);
  EXPECT_EQ(msc_->cleared, 1);
  EXPECT_EQ(net_->faults()->faults_applied(0), 1u);
  const auto* ctx = msc_->context_of(id_.imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->proc, MscBase::Proc::kNone);
  EXPECT_EQ(ctx->step, MscBase::Step::kNone);
  // The context is fully reusable: a later call connects.
  msc_->far_end = TestMsc::FarEnd::kAnswer;
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(Msisdn(880900001000ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
}

TEST_F(MscBaseTest, CmServiceWithoutRegistrationRejected) {
  // An MS that never registered asks for service.
  auto req = std::make_shared<ACmServiceRequest>();
  req->imsi = id_.imsi;
  net_->send(bsc_->id(), msc_->id(), std::move(req));
  net_->run_until_idle();
  EXPECT_EQ(net_->trace().count("A_CM_Service_Reject"), 1u);
}

}  // namespace
}  // namespace vgprs
