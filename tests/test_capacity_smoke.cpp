// Million-subscriber capacity smoke test.
//
// Builds the full 1M-MS metropolitan topology (64 cells under one VMSC,
// pooled subscriber tables, arena-backed nodes) twice — once per worker
// count — and drives a scaled-down activity slice through it: a 4096-MS
// power-on wave plus one cross-cell call wave.  The assertions are the
// capacity-tier acceptance gates:
//
//  * the topology builds and registers at the million-subscriber scale
//    (this alone exercises SubscriberTable growth into the hundreds of
//    index rehashes and the node arena into thousands of slabs);
//  * metrics snapshots, aggregate stats and processed-event counts are
//    byte-identical between 1 and 8 workers;
//  * every span opened by the slice is closed once the network drains —
//    no call, registration or PDP procedure is left dangling.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/export.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(CapacitySmoke, MillionSubscribersAreWorkerCountInvariant) {
  struct Capture {
    std::string metrics;
    std::size_t processed = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t timers_fired = 0;
    std::size_t ready = 0;
  };
  constexpr std::uint32_t kSubscribers = 1'000'000;
  constexpr std::size_t kActive = 4096;  // powered-on slice
  constexpr std::size_t kPairs = 64;     // cross-cell call wave
  std::vector<Capture> runs;
  for (unsigned w : {1u, 8u}) {
    VgprsParams params;
    params.num_ms = kSubscribers;
    params.num_cells = 64;
    params.bsc_channels = 8192;
    params.seed = 11;
    params.sharded = true;
    params.workers = w;
    auto s = build_vgprs(params);
    s->net.trace().set_mode(TraceMode::kDisabled);
    s->net.spans().set_enabled(true);
    ASSERT_EQ(s->ms.size(), kSubscribers);
    ASSERT_GT(s->net.num_shards(), 1u);

    Capture cap;
    for (std::size_t i = 0; i < kActive; ++i) s->ms[i]->power_on();
    cap.processed += s->settle();
    ASSERT_EQ(s->vmsc->ready_count(), kActive)
        << "registration incomplete with " << w << " worker(s)";

    // MSs are round-robin over the cells, so pairing (2p, 2p+1) makes
    // every call cross-cell; each terminating leg pages the destination
    // cell's camped subset.
    for (std::size_t p = 0; p < kPairs; ++p) {
      s->ms[2 * p]->dial(s->ms[2 * p + 1]->config().msisdn);
    }
    cap.processed += s->settle();
    for (std::size_t p = 0; p < kPairs; ++p) {
      s->ms[2 * p]->hangup();
    }
    cap.processed += s->settle();

    EXPECT_EQ(s->net.spans().open_count(), 0u)
        << "open spans at drain with " << w
        << " worker(s):\n" << s->net.spans().open_to_string();

    std::ostringstream mos;
    write_metrics_json(mos, s->net.metrics_snapshot());
    cap.metrics = mos.str();
    const NetworkStats stats = s->net.stats();
    cap.messages_delivered = stats.messages_delivered;
    cap.timers_fired = stats.timers_fired;
    cap.ready = s->vmsc->ready_count();
    runs.push_back(std::move(cap));
  }
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_GT(runs[0].processed, 0u);
  EXPECT_EQ(runs[0].metrics, runs[1].metrics)
      << "metrics snapshots differ between 1 and 8 workers";
  EXPECT_EQ(runs[0].processed, runs[1].processed);
  EXPECT_EQ(runs[0].messages_delivered, runs[1].messages_delivered);
  EXPECT_EQ(runs[0].timers_fired, runs[1].timers_fired);
  EXPECT_EQ(runs[0].ready, runs[1].ready);
}

}  // namespace
}  // namespace vgprs
