// Property-based suites: latency-grid sweeps (registration and calls
// succeed under any sane budget), monotonicity of setup delay, determinism,
// and resource-conservation invariants under randomized call patterns.
//
// The chaos seed batteries run through ParallelSweep — one private seeded
// Network per cell, all cores busy.  Invariant violations are collected as
// strings inside the workers (gtest assertions are not thread-safe) and
// asserted on the main thread.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "common/rng.hpp"
#include "sim/fault.hpp"
#include "sim/sweep.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

// --- latency grid -----------------------------------------------------------

using GridParam = std::tuple<int, int, int>;  // um, ss7 (d), core hop (ms)

class LatencyGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(LatencyGrid, RegistrationAndCallSucceed) {
  auto [um, ss7, core] = GetParam();
  VgprsParams params;
  params.latency.um = SimDuration::millis(um);
  params.latency.d = SimDuration::millis(ss7);
  params.latency.gb = SimDuration::millis(core);
  params.latency.gn = SimDuration::millis(core);
  params.latency.gi = SimDuration::millis(core);
  params.latency.ip = SimDuration::millis(core);
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle)
      << "um=" << um << " ss7=" << ss7 << " core=" << core;

  bool connected = false;
  s->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  s->ms[0]->hangup();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->sgsn->pdp_context_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, LatencyGrid,
    ::testing::Combine(::testing::Values(1, 15, 80),
                       ::testing::Values(1, 8, 60),
                       ::testing::Values(1, 3, 20)),
    [](const ::testing::TestParamInfo<GridParam>& param) {
      return "um" + std::to_string(std::get<0>(param.param)) + "_ss7" +
             std::to_string(std::get<1>(param.param)) + "_core" +
             std::to_string(std::get<2>(param.param));
    });

// --- monotonicity -------------------------------------------------------------

TEST(PropertyTest, SetupDelayMonotoneInAirLatency) {
  double prev = -1;
  for (int um : {2, 5, 10, 20, 40, 80}) {
    VgprsParams params;
    params.latency.um = SimDuration::millis(um);
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    SimTime dialed = s->net.now();
    double ringback = -1;
    s->ms[0]->on_ringback = [&](CallRef) {
      ringback = (s->net.now() - dialed).as_millis();
    };
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    ASSERT_GT(ringback, prev) << "um=" << um;
    prev = ringback;
  }
}

// --- determinism ----------------------------------------------------------------

TEST(PropertyTest, IdenticalSeedsProduceIdenticalTraces) {
  auto run = [](std::uint64_t seed) {
    VgprsParams params;
    params.seed = seed;
    params.num_ms = 3;
    auto s = build_vgprs(params);
    for (auto* ms : s->ms) ms->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    return s->net.trace().to_string(100000);
  };
  EXPECT_EQ(run(7), run(7));
}

// --- randomized call patterns + conservation invariants ----------------------------

/// Runs one chaos cell on a private seeded Network and reports every
/// violated invariant as a string (empty == all invariants hold): no leaked
/// radio channels, no leaked PDP contexts beyond the per-subscriber
/// signaling context, no open charging records, every endpoint back in a
/// stable state, voice-context bookkeeping balanced.
std::vector<std::string> chaos_cell(std::uint64_t seed) {
  std::vector<std::string> bad;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) bad.push_back(what);
  };

  VgprsParams params;
  params.num_ms = 6;
  params.num_terminals = 3;
  params.seed = seed;
  auto s = build_vgprs(params);
  for (auto* ms : s->ms) ms->power_on();
  for (auto* t : s->terminals) t->register_endpoint();
  s->settle();

  Rng rng(seed * 7919 + 13);
  // 200 random operations: dial / hangup / answer-side hangup / short or
  // zero settle slices (so operations overlap procedures in flight).
  for (int op = 0; op < 200; ++op) {
    std::uint64_t kind = rng.next_below(4);
    auto* ms = s->ms[rng.next_below(s->ms.size())];
    switch (kind) {
      case 0:
        if (ms->state() == MobileStation::State::kIdle) {
          bool to_terminal = rng.bernoulli(0.7);
          if (to_terminal) {
            ms->dial(make_subscriber(
                88, 1000 + static_cast<std::uint32_t>(
                               rng.next_below(s->terminals.size())))
                         .msisdn);
          } else {
            auto* other = s->ms[rng.next_below(s->ms.size())];
            if (other != ms) ms->dial(other->config().msisdn);
          }
        }
        break;
      case 1:
        ms->hangup();
        break;
      case 2:
        s->terminals[rng.next_below(s->terminals.size())]->hangup();
        break;
      case 3:
        break;  // just advance time
    }
    s->net.run_for(SimDuration::millis(rng.next_below(400)));
  }
  // Quiesce: hang everything up and drain.
  for (int round = 0; round < 4; ++round) {
    for (auto* ms : s->ms) ms->hangup();
    for (auto* t : s->terminals) t->hangup();
    s->settle();
  }

  check(s->bsc->tch_in_use() == 0, "leaked TCHs");
  check(s->sgsn->pdp_context_count() == s->ms.size(),
        "SGSN PDP context count != num MS");
  check(s->ggsn->pdp_context_count() == s->ms.size(),
        "GGSN PDP context count != num MS");
  check(s->gk->open_calls() == 0, "gatekeeper has open calls");
  for (auto* ms : s->ms) {
    check(ms->state() == MobileStation::State::kIdle,
          ms->name() + " stuck in " + to_string(ms->state()));
  }
  for (auto* t : s->terminals) {
    check(t->state() == H323Terminal::State::kRegistered,
          t->name() + " not registered");
  }
  // Voice-context bookkeeping balances: every voice activation has a
  // matching deactivation once quiescent.
  std::size_t act = 0;
  std::size_t deact = 0;
  s->net.trace().for_each([&](const TraceEntry& e) {
    if (e.message == "Activate_PDP_Context_Accept" &&
        e.summary.find("NSAPI:6") != std::string::npos) {
      ++act;
    }
    if (e.message == "Deactivate_PDP_Context_Request" &&
        e.summary.find("NSAPI:6") != std::string::npos) {
      ++deact;
    }
  });
  check(act == deact, "voice PDP contexts leaked");
  // Charging records are well-formed.
  for (const auto& rec : s->gk->call_records()) {
    check(!rec.open, "open charging record");
    check(rec.disengaged.count_micros() >= rec.admitted.count_micros(),
          "charging record ends before it starts");
  }
  return bad;
}

TEST(RandomPattern, ResourcesConservedAfterChaosSweep) {
  register_all_messages();
  const std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 42};
  ParallelSweep pool;
  auto results = pool.map<std::vector<std::string>>(
      seeds.size(), [&](std::size_t i) { return chaos_cell(seeds[i]); });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (const auto& violation : results[i]) {
      ADD_FAILURE() << "seed " << seeds[i] << ": " << violation;
    }
  }
}

// --- lossy-link chaos: nothing wedges, resources still conserved ----------------

std::vector<std::string> lossy_cell(std::uint64_t seed) {
  std::vector<std::string> bad;
  VgprsParams params;
  params.num_ms = 4;
  params.seed = seed;
  auto s = build_vgprs(params);
  // 5% loss on every air link.
  for (auto* ms : s->ms) {
    LinkProfile lossy;
    lossy.latency = SimDuration::millis(15);
    lossy.loss_probability = 0.05;
    s->net.set_link_profile(ms->id(), s->bts->id(), lossy);
  }
  for (auto* ms : s->ms) ms->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();

  Rng rng(seed);
  for (int op = 0; op < 60; ++op) {
    auto* ms = s->ms[rng.next_below(s->ms.size())];
    if (ms->state() == MobileStation::State::kIdle &&
        rng.bernoulli(0.7)) {
      ms->dial(make_subscriber(88, 1000).msisdn);
    } else {
      ms->hangup();
    }
    s->net.run_for(SimDuration::seconds(rng.next_below(20)));
  }
  for (int round = 0; round < 4; ++round) {
    for (auto* ms : s->ms) ms->hangup();
    s->terminals[0]->hangup();
    // Guards are up to 30 s; give them room.
    s->net.run_for(SimDuration::seconds(40));
    s->settle();
  }

  // With loss, procedures may fail — but nothing may wedge or leak.
  for (auto* ms : s->ms) {
    if (ms->state() != MobileStation::State::kIdle &&
        ms->state() != MobileStation::State::kDetached) {
      bad.push_back(ms->name() + " stuck in " + to_string(ms->state()));
    }
  }
  if (s->terminals[0]->state() != H323Terminal::State::kRegistered) {
    bad.push_back("terminal not registered after quiesce");
  }
  return bad;
}

TEST(LossyPattern, GuardsRecoverEverythingSweep) {
  register_all_messages();
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};
  ParallelSweep pool;
  auto results = pool.map<std::vector<std::string>>(
      seeds.size(), [&](std::size_t i) { return lossy_cell(seeds[i]); });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (const auto& violation : results[i]) {
      ADD_FAILURE() << "seed " << seeds[i] << ": " << violation;
    }
  }
}

// --- single-fault chaos: every procedure completes or closes cleanly -----------

/// Builds one seed-derived single-fault schedule: the seed picks the fault
/// family, the target (link / node / message kind), and the time it lands.
FaultSchedule single_fault_schedule(Rng& rng) {
  const auto at = [](std::int64_t us) { return SimTime::from_micros(us); };
  // Faults land inside the active phase of the drive pattern below
  // (registration from 0, call from 30 s).
  const std::int64_t t0 =
      static_cast<std::int64_t>(rng.next_below(2) == 0
                                    ? rng.next_below(3'000'000)
                                    : 30'000'000 + rng.next_below(2'000'000));
  FaultSchedule sched;
  switch (rng.next_below(6)) {
    case 0: {  // link window
      static const char* kLinks[][2] = {{"MS1", "BTS"},   {"BTS", "BSC"},
                                        {"BSC", "VMSC"},  {"VMSC", "VLR"},
                                        {"VMSC", "SGSN"}, {"SGSN", "GGSN"}};
      const auto& link = kLinks[rng.next_below(6)];
      sched.link_windows.push_back(
          {link[0], link[1], at(t0),
           at(t0 + 200'000 + static_cast<std::int64_t>(
                                 rng.next_below(3'000'000)))});
      break;
    }
    case 1: {  // node outage
      static const char* kNodes[] = {"VLR", "VMSC", "SGSN", "GGSN", "GK"};
      sched.node_outages.push_back(
          {kNodes[rng.next_below(5)], at(t0),
           at(t0 + 500'000 + static_cast<std::int64_t>(
                                 rng.next_below(2'000'000)))});
      break;
    }
    case 2: {  // latency spike
      sched.latency_spikes.push_back(
          {"BSC", "VMSC", at(t0), at(t0 + 5'000'000),
           SimDuration::millis(50 + rng.next_below(400))});
      break;
    }
    default: {  // message fault
      static const char* kMessages[] = {
          "Um_Location_Update_Request", "A_CM_Service_Request",
          "A_Setup",                    "MAP_Send_Auth_Info",
          "MAP_Update_Location_Area",   "GPRS_Attach_Request",
          "Activate_PDP_Context_Request",
          "GTP_Create_PDP_Context_Request",
          "IP_Datagram",                "A_Disconnect"};
      MessageFault fault;
      fault.match.message = kMessages[rng.next_below(10)];
      fault.match.nth = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      static const FaultKind kKinds[] = {FaultKind::kDrop,
                                         FaultKind::kDuplicate,
                                         FaultKind::kReorder,
                                         FaultKind::kCorrupt};
      fault.kind = kKinds[rng.next_below(4)];
      sched.message_faults.push_back(fault);
      break;
    }
  }
  return sched;
}

/// One chaos cell: registration + call + release under a single injected
/// fault.  Invariant: at drain, every span is closed (ok / timeout /
/// rejected — never leaked open) and every endpoint FSM is in a stable
/// state.
std::vector<std::string> single_fault_cell(std::uint64_t seed,
                                           std::string* dump = nullptr) {
  std::vector<std::string> bad;
  Rng rng(seed * 2654435761u + 1);
  VgprsParams params;
  params.seed = seed;
  params.num_ms = 2;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->net.install_faults(single_fault_schedule(rng));

  for (auto* ms : s->ms) ms->power_on();
  s->terminals[0]->register_endpoint();
  s->net.run_until(SimTime::from_micros(30'000'000));
  if (s->ms[0]->state() == MobileStation::State::kIdle) {
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  }
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  // A mid-call fault can orphan the terminal's leg (e.g. its Connect was
  // lost in an outage and the restarted core has no call to clear): hang
  // up the H.323 side too, as the other chaos cells do.
  s->terminals[0]->hangup();
  s->settle();
  // Drain any straggling give-up / guard timers.
  s->settle();

  if (s->net.spans().open_count() != 0) {
    bad.push_back("open spans at drain: " + s->net.spans().open_to_string());
  }
  for (auto* ms : s->ms) {
    if (ms->state() != MobileStation::State::kIdle &&
        ms->state() != MobileStation::State::kDetached) {
      bad.push_back(ms->name() + " stuck in " + to_string(ms->state()));
    }
  }
  if (s->terminals[0]->state() != H323Terminal::State::kRegistered &&
      s->terminals[0]->state() != H323Terminal::State::kIdle) {
    bad.push_back("terminal stuck in state " +
                  std::to_string(static_cast<int>(s->terminals[0]->state())));
  }
  if (dump != nullptr) *dump = s->net.trace().to_string(1000000);
  return bad;
}

// Re-runs one cell with its seed taken from VGPRS_CHAOS_SEED — forensics
// helper for sweep failures (run with --gtest_also_run_disabled_tests).
TEST(SingleFaultChaos, DISABLED_DebugSingleSeed) {
  register_all_messages();
  const char* env = std::getenv("VGPRS_CHAOS_SEED");
  const std::uint64_t seed = env != nullptr ? std::strtoull(env, nullptr, 10)
                                            : 1;
  std::string dump;
  auto violations = single_fault_cell(seed, &dump);
  if (!violations.empty()) std::fputs(dump.c_str(), stderr);
  for (const auto& violation : violations) {
    ADD_FAILURE() << "seed " << seed << ": " << violation;
  }
}

TEST(SingleFaultChaos, EveryProcedureCompletesOrClosesSweep) {
  register_all_messages();
  // >= 64 seeds, each deriving its own single-fault schedule; ParallelSweep
  // runs one private Network per cell.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 1; i <= 72; ++i) seeds.push_back(i);
  ParallelSweep pool;
  auto results = pool.map<std::vector<std::string>>(
      seeds.size(), [&](std::size_t i) { return single_fault_cell(seeds[i]); });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (const auto& violation : results[i]) {
      ADD_FAILURE() << "seed " << seeds[i] << ": " << violation;
    }
  }
}

}  // namespace
}  // namespace vgprs
