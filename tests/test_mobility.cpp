// Mobility beyond a single registration: movement-triggered location
// update (paper Section 3: "The registration procedure for MS movement is
// similar"), IMSI detach, and inter-VMSC movement with full cleanup (HLR
// cancellation -> old VLR -> old VMSC -> GPRS detach + gatekeeper
// unregistration).
#include <gtest/gtest.h>

#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

/// Extends the standard scenario with a second cell on the same BSC, and a
/// complete second VMSC area (own VLR, BSC, BTS) sharing HLR, GPRS core
/// and gatekeeper — a subscriber can move between areas.
struct TwoAreaWorld {
  std::unique_ptr<VgprsScenario> s;
  Bts* bts1b = nullptr;   // second cell of area 1
  Vlr* vlr2 = nullptr;    // area 2
  Bsc* bsc2 = nullptr;
  Bts* bts2 = nullptr;
  Vmsc* vmsc2 = nullptr;

  TwoAreaWorld() {
    VgprsParams params;
    s = build_vgprs(params);
    Network& net = s->net;
    const LatencyConfig L;

    bts1b = &net.add<Bts>("BTS-1b", CellId(102), LocationAreaId(10), "BSC");
    s->bsc->adopt_bts(*bts1b);
    s->vmsc->adopt_cell(CellId(102), "BSC");
    net.connect(*bts1b, *s->bsc, L.link(L.abis, "Abis"));

    vlr2 = &net.add<Vlr>("VLR2", Vlr::Config{"HLR", 88, 8'899'100});
    bsc2 = &net.add<Bsc>("BSC2", Bsc::Config{"VMSC2", 64, 64});
    bts2 = &net.add<Bts>("BTS2", CellId(201), LocationAreaId(20), "BSC2");
    bsc2->adopt_bts(*bts2);
    Vmsc::VmscConfig vc;
    vc.base = MscBase::Config{"VLR2", true, true, true};
    vc.sgsn_name = "SGSN";
    vc.gk_ip = IpAddress(192, 168, 1, 1);
    vmsc2 = &net.add<Vmsc>("VMSC2", vc);
    vmsc2->adopt_cell(CellId(201), "BSC2");
    net.connect(*bts2, *bsc2, L.link(L.abis, "Abis"));
    net.connect(*bsc2, *vmsc2, L.link(L.a, "A"));
    net.connect(*vmsc2, *vlr2, L.link(L.b, "B"));
    net.connect(*vlr2, *s->hlr, L.link(L.d, "D"));
    net.connect(*vmsc2, *s->sgsn, L.link(L.gb, "Gb"));
    // The roaming MS can reach every cell.
    net.connect(*s->ms[0], *bts1b, L.link(L.um, "Um"));
    net.connect(*s->ms[0], *bts2, L.link(L.um, "Um"));
  }
};

TEST(MobilityTest, MovementLocationUpdateWithinVmsc) {
  TwoAreaWorld w;
  MobileStation& ms = *w.s->ms[0];
  ms.power_on();
  w.s->settle();
  ASSERT_EQ(ms.state(), MobileStation::State::kIdle);
  Tmsi old_tmsi = ms.tmsi();
  std::size_t pdp_before = w.s->sgsn->pdp_context_count();

  w.s->net.trace().clear();
  int registrations = 0;
  ms.on_registered = [&] { ++registrations; };
  ms.move_to("BTS-1b");
  w.s->settle();

  EXPECT_EQ(registrations, 1);
  EXPECT_EQ(ms.state(), MobileStation::State::kIdle);
  // Movement LU identifies with the TMSI (step 1.1 note in the paper).
  EXPECT_EQ(w.s->net.trace().count("Um_Location_Update_Request"), 1u);
  // Same VMSC: the GPRS/H.323 substrate is NOT re-run — the paper's MS
  // table already holds the MM and PDP contexts.
  EXPECT_EQ(w.s->net.trace().count("GPRS_Attach_Request"), 0u);
  EXPECT_EQ(w.s->net.trace().count(FlowStep{"GGSN", "IP_Datagram", "Router"}),
            0u);
  EXPECT_EQ(w.s->sgsn->pdp_context_count(), pdp_before);
  // A fresh TMSI is assigned by the VLR.
  EXPECT_NE(ms.tmsi(), old_tmsi);

  // Calls still work from the new cell.
  w.s->terminals[0]->register_endpoint();
  w.s->settle();
  bool connected = false;
  ms.on_connected = [&](CallRef) { connected = true; };
  ms.dial(make_subscriber(88, 1000).msisdn);
  w.s->settle();
  EXPECT_TRUE(connected);
}

TEST(MobilityTest, InterVmscMoveCleansUpOldArea) {
  TwoAreaWorld w;
  MobileStation& ms = *w.s->ms[0];
  ms.power_on();
  w.s->settle();
  ASSERT_EQ(ms.state(), MobileStation::State::kIdle);
  ASSERT_NE(w.s->vlr->visitor(ms.config().imsi), nullptr);
  auto reg1 = w.s->gk->find_alias(ms.config().msisdn);
  ASSERT_TRUE(reg1.has_value());

  // Drive into VMSC2's area.
  int registrations = 0;
  ms.on_registered = [&] { ++registrations; };
  ms.move_to("BTS2");
  w.s->settle();
  EXPECT_EQ(registrations, 1);
  EXPECT_EQ(ms.state(), MobileStation::State::kIdle);

  // New area owns the subscriber...
  EXPECT_NE(w.vlr2->visitor(ms.config().imsi), nullptr);
  EXPECT_EQ(w.s->hlr->record(ms.config().imsi)->vlr_name, "VLR2");
  ASSERT_NE(w.vmsc2->vgprs_state(ms.config().imsi), nullptr);
  EXPECT_EQ(w.vmsc2->vgprs_state(ms.config().imsi)->phase,
            Vmsc::VgprsState::Phase::kReady);
  // ...the old area is fully cleaned: VLR record cancelled, VMSC MS-table
  // entry gone, old VMSC's GPRS/H.323 state released.
  EXPECT_EQ(w.s->vlr->visitor(ms.config().imsi), nullptr);
  EXPECT_EQ(w.s->vmsc->context_of(ms.config().imsi), nullptr);
  EXPECT_EQ(w.s->vmsc->vgprs_state(ms.config().imsi), nullptr);
  // The gatekeeper follows the subscriber: same alias, new transport
  // (the new VMSC's signaling context address).
  auto reg2 = w.s->gk->find_alias(ms.config().msisdn);
  ASSERT_TRUE(reg2.has_value());
  EXPECT_EQ(reg2->transport.ip(),
            w.vmsc2->vgprs_state(ms.config().imsi)->signaling_ip);
  EXPECT_NE(reg2->transport, reg1->transport);
  // Exactly one signaling context remains at the SGSN (the new VMSC's).
  EXPECT_EQ(w.s->sgsn->pdp_context_count(), 1u);

  // An incoming call now terminates through VMSC2.
  w.s->terminals[0]->register_endpoint();
  w.s->settle();
  bool connected = false;
  ms.on_connected = [&](CallRef) { connected = true; };
  w.s->terminals[0]->place_call(ms.config().msisdn);
  w.s->settle();
  EXPECT_TRUE(connected);
  EXPECT_GE(w.s->net.trace().count(FlowStep{"VMSC2", "A_Paging", "BSC2"}),
            1u);
}

TEST(MobilityTest, PowerOffDetachesAndUnregisters) {
  TwoAreaWorld w;
  MobileStation& ms = *w.s->ms[0];
  ms.power_on();
  w.s->settle();
  ASSERT_EQ(w.s->sgsn->pdp_context_count(), 1u);
  ASSERT_TRUE(w.s->gk->find_alias(ms.config().msisdn).has_value());

  w.s->net.trace().clear();
  ms.power_off();
  w.s->settle();
  EXPECT_EQ(ms.state(), MobileStation::State::kDetached);
  // IMSI detach propagated and the vGPRS substrate was torn down.
  EXPECT_EQ(w.s->net.trace().count("Um_IMSI_Detach"), 1u);
  EXPECT_EQ(w.s->sgsn->pdp_context_count(), 0u);
  EXPECT_EQ(w.s->sgsn->attached_count(), 0u);
  EXPECT_FALSE(w.s->gk->find_alias(ms.config().msisdn).has_value());
  EXPECT_EQ(w.s->vmsc->context_of(ms.config().imsi), nullptr);

  // Calls to the detached subscriber fail cleanly at admission.
  w.s->terminals[0]->register_endpoint();
  w.s->settle();
  bool released = false;
  w.s->terminals[0]->on_released = [&](CallRef) { released = true; };
  w.s->terminals[0]->place_call(ms.config().msisdn);
  w.s->settle();
  EXPECT_TRUE(released);
  EXPECT_EQ(w.s->terminals[0]->state(), H323Terminal::State::kRegistered);
}

TEST(MobilityTest, PowerCycleReattaches) {
  TwoAreaWorld w;
  MobileStation& ms = *w.s->ms[0];
  ms.power_on();
  w.s->settle();
  ms.power_off();
  w.s->settle();
  ASSERT_EQ(w.s->sgsn->pdp_context_count(), 0u);

  ms.power_on();
  w.s->settle();
  EXPECT_EQ(ms.state(), MobileStation::State::kIdle);
  EXPECT_EQ(w.s->sgsn->pdp_context_count(), 1u);
  EXPECT_TRUE(w.s->gk->find_alias(ms.config().msisdn).has_value());
}

TEST(MobilityTest, PowerOffDuringCallReleasesFirst) {
  TwoAreaWorld w;
  MobileStation& ms = *w.s->ms[0];
  ms.power_on();
  w.s->terminals[0]->register_endpoint();
  w.s->settle();
  ms.dial(make_subscriber(88, 1000).msisdn);
  w.s->settle();
  ASSERT_EQ(ms.state(), MobileStation::State::kConnected);

  ms.power_off();
  w.s->settle();
  EXPECT_EQ(ms.state(), MobileStation::State::kDetached);
  EXPECT_EQ(w.s->terminals[0]->state(), H323Terminal::State::kRegistered);
  EXPECT_EQ(w.s->sgsn->pdp_context_count(), 0u);
}

}  // namespace
}  // namespace vgprs
