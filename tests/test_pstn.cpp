// PSTN substrate unit tests: ISUP routing (longest-prefix), trunk-class
// accounting, multi-switch transit, call clearing, busy and misroute
// handling.
#include <gtest/gtest.h>

#include "pstn/phone.hpp"
#include "pstn/switch.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class PstnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_all_messages();
    net_ = std::make_unique<Network>(4);
    sw1_ = &net_->add<PstnSwitch>("SW1");
    sw2_ = &net_->add<PstnSwitch>("SW2");
    net_->connect(*sw1_, *sw2_, LinkProfile{});
    a_ = add_phone("PA", "SW1", Msisdn(88210000001ULL, 11));
    b_ = add_phone("PB", "SW2", Msisdn(44210000001ULL, 11));
    sw1_->add_route("44", "SW2", TrunkClass::kInternational);
    sw2_->add_route("88", "SW1", TrunkClass::kInternational);
  }

  PstnPhone* add_phone(const std::string& name, const std::string& sw,
                       Msisdn number) {
    PstnPhone::Config pc;
    pc.number = number;
    pc.switch_name = sw;
    auto& p = net_->add<PstnPhone>(name, pc);
    auto* sw_node = net_->find<PstnSwitch>(sw);
    net_->connect(p, *sw_node, LinkProfile{});
    sw_node->attach_subscriber(number, name);
    return &p;
  }

  std::unique_ptr<Network> net_;
  PstnSwitch* sw1_ = nullptr;
  PstnSwitch* sw2_ = nullptr;
  PstnPhone* a_ = nullptr;
  PstnPhone* b_ = nullptr;
};

TEST_F(PstnTest, LocalCallStaysLocal) {
  auto* c = add_phone("PC", "SW1", Msisdn(88210000002ULL, 11));
  bool connected = false;
  a_->on_connected = [&] { connected = true; };
  a_->place_call(c->number());
  net_->run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(sw1_->trunks_used(TrunkClass::kInternational), 0);
  EXPECT_EQ(sw1_->trunks_used(TrunkClass::kSubscriberLine), 1);
}

TEST_F(PstnTest, InternationalCallCountsTrunk) {
  bool connected = false;
  a_->on_connected = [&] { connected = true; };
  a_->place_call(Msisdn(44210000001ULL, 11));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(b_->state(), PstnPhone::State::kConnected);
  EXPECT_EQ(sw1_->trunks_used(TrunkClass::kInternational), 1);
}

TEST_F(PstnTest, LongestPrefixWins) {
  auto* special = add_phone("PS", "SW2", Msisdn(44999000001ULL, 11));
  (void)special;
  auto& sw3 = net_->add<PstnSwitch>("SW3");
  net_->connect(*sw1_, sw3, LinkProfile{});
  // More specific route for 4499 via SW3 (which has no subscriber -> the
  // call must fail if this route is taken; proves specificity).
  sw1_->add_route("4499", "SW3", TrunkClass::kNational);
  bool connected = false;
  a_->on_connected = [&] { connected = true; };
  a_->place_call(Msisdn(44999000001ULL, 11));
  net_->run_until_idle();
  EXPECT_FALSE(connected);  // took the 4499 route to the dead-end switch
  EXPECT_EQ(sw1_->trunks_used(TrunkClass::kNational), 1);
  EXPECT_EQ(sw1_->trunks_used(TrunkClass::kInternational), 0);
}

TEST_F(PstnTest, UnallocatedNumberReleased) {
  bool connected = false;
  a_->on_connected = [&] { connected = true; };
  a_->place_call(Msisdn(99999999999ULL, 11));
  net_->run_until_idle();
  EXPECT_FALSE(connected);
  EXPECT_EQ(a_->state(), PstnPhone::State::kIdle);
}

TEST_F(PstnTest, BusyCalleeReleasesCaller) {
  auto* c = add_phone("PC", "SW1", Msisdn(88210000002ULL, 11));
  c->place_call(Msisdn(44210000001ULL, 11));
  net_->run_until_idle();
  ASSERT_EQ(c->state(), PstnPhone::State::kConnected);
  bool connected = false;
  a_->on_connected = [&] { connected = true; };
  a_->place_call(Msisdn(44210000001ULL, 11));  // b is busy
  net_->run_until_idle();
  EXPECT_FALSE(connected);
  EXPECT_EQ(a_->state(), PstnPhone::State::kIdle);
}

TEST_F(PstnTest, HangupEitherSideClears) {
  a_->place_call(Msisdn(44210000001ULL, 11));
  net_->run_until_idle();
  ASSERT_EQ(a_->state(), PstnPhone::State::kConnected);
  b_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(a_->state(), PstnPhone::State::kIdle);
  EXPECT_EQ(b_->state(), PstnPhone::State::kIdle);
}

TEST_F(PstnTest, VoiceRelayedAcrossSwitches) {
  a_->place_call(Msisdn(44210000001ULL, 11));
  net_->run_until_idle();
  ASSERT_EQ(a_->state(), PstnPhone::State::kConnected);
  a_->start_voice(15);
  b_->start_voice(15);
  net_->run_until_idle();
  EXPECT_EQ(a_->voice_latency().count(), 15u);
  EXPECT_EQ(b_->voice_latency().count(), 15u);
}

TEST_F(PstnTest, RingbackBeforeAnswer) {
  bool rang_back = false;
  bool order_ok = false;
  a_->on_ringback = [&] { rang_back = true; };
  a_->on_connected = [&] { order_ok = rang_back; };
  a_->place_call(Msisdn(44210000001ULL, 11));
  net_->run_until_idle();
  EXPECT_TRUE(rang_back);
  EXPECT_TRUE(order_ok);  // ACM strictly before ANM
}

}  // namespace
}  // namespace vgprs
