// ParallelSweep: the pool distributes whole simulation cells across
// threads; a parallel sweep must return exactly what the sequential loop
// returns (deterministic per seed), propagate exceptions, and be clean
// under ThreadSanitizer (this binary is the tsan-preset workhorse).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "sim/sweep.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(ParallelSweepTest, CoversEveryIndexExactlyOnce) {
  ParallelSweep pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelSweepTest, MapPreservesIndexOrder) {
  ParallelSweep pool;
  auto out = pool.map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelSweepTest, PropagatesFirstException) {
  ParallelSweep pool(2);
  EXPECT_THROW(pool.run(16,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("cell 7");
                        }),
               std::runtime_error);
  // The pool survives a throwing job.
  auto out = pool.map<int>(4, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 6);
}

TEST(ParallelSweepTest, ReusableAcrossRuns) {
  ParallelSweep pool(3);
  for (int round = 0; round < 5; ++round) {
    auto out = pool.map<int>(10, [&](std::size_t i) {
      return round * 100 + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], round * 100 + static_cast<int>(i));
    }
  }
}

/// One full registration + call cycle on a private seeded Network; returns
/// the canonical trace so cross-run comparison is exact.
std::string run_cell(std::uint64_t seed) {
  VgprsParams params;
  params.seed = seed;
  params.num_ms = 2;
  auto s = build_vgprs(params);
  for (auto* ms : s->ms) ms->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  return s->net.trace().to_string(100000);
}

TEST(ParallelSweepTest, ZeroThreadsFallsBackToHardwareConcurrency) {
  // threads == 0 must never produce an empty pool: it resolves to the
  // hardware concurrency, and to 1 if even that is unknown (some
  // containers report 0 cores).
  ParallelSweep pool(0);
  EXPECT_GE(pool.threads(), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(pool.threads(), std::max(1u, hw));
  // The fallback pool must still run work.
  auto out = pool.map<int>(4, [](std::size_t i) {
    return static_cast<int>(i) * 2;
  });
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

TEST(ParallelSweepTest, SimulationCellsAreDeterministicPerSeed) {
  register_all_messages();  // single-threaded warm-up of the registry
  ParallelSweep pool;
  auto seeds = std::vector<std::uint64_t>{1, 2, 3, 5, 8, 13, 21, 42};
  auto parallel1 = pool.map<std::string>(
      seeds.size(), [&](std::size_t i) { return run_cell(seeds[i]); });
  auto parallel2 = pool.map<std::string>(
      seeds.size(), [&](std::size_t i) { return run_cell(seeds[i]); });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_FALSE(parallel1[i].empty());
    // Parallel == parallel (scheduling-independent) ...
    EXPECT_EQ(parallel1[i], parallel2[i]) << "seed " << seeds[i];
    // ... and parallel == sequential (engine-independent).
    EXPECT_EQ(parallel1[i], run_cell(seeds[i])) << "seed " << seeds[i];
  }
}

}  // namespace
}  // namespace vgprs
