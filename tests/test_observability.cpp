// The observability layer: SpanTracker lifecycle and outcomes,
// MetricsRegistry instruments / snapshot / diff / merge, Histogram edge
// cases, and structural validation of every JSON export (metrics snapshot,
// JSONL trace, Chrome trace_event / Perfetto spans) — including the Fig. 9
// handoff export the vgprs_report tool ships.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/export.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

// --- Histogram edge cases ---------------------------------------------------

TEST(HistogramEdge, EmptyHistogramReturnsZeroEverywhere) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
  HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(HistogramEdge, SingleSampleIsEveryStatistic) {
  Histogram h;
  h.add(42.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.5);
  EXPECT_DOUBLE_EQ(h.min(), 42.5);
  EXPECT_DOUBLE_EQ(h.max(), 42.5);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.5);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.5);
}

TEST(HistogramEdge, NearestRankBoundaries) {
  Histogram h;
  for (int v = 1; v <= 10; ++v) h.add(static_cast<double>(v));
  // Nearest-rank: q=0 is the smallest sample, q=1 the largest.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
  // q outside [0,1] clamps instead of indexing out of range.
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.5), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(HistogramEdge, SimDurationOverloadRecordsMillis) {
  Histogram h;
  h.add(SimDuration::millis(250));
  EXPECT_DOUBLE_EQ(h.mean(), 250.0);
}

TEST(HistogramEdge, FixedBucketModeKeepsScalarsExact) {
  Histogram h = Histogram::fixed(0.0, 100.0, 10);
  EXPECT_TRUE(h.fixed_buckets());
  h.add(5.0);
  h.add(95.0);
  h.add(250.0);  // out of range: clamped to the top bucket
  EXPECT_EQ(h.count(), 3u);
  // min/max/mean track the raw samples even though buckets quantize.
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  EXPECT_NEAR(h.mean(), (5.0 + 95.0 + 250.0) / 3.0, 1e-9);
  // Percentiles are bucket midpoints clamped to the observed range.
  EXPECT_GE(h.percentile(0.0), 5.0);
  EXPECT_LE(h.percentile(1.0), 250.0);
}

TEST(HistogramEdge, MergeRequiresMatchingLayout) {
  Histogram sampled;
  sampled.add(1.0);
  Histogram bucketed = Histogram::fixed(0.0, 10.0, 5);
  bucketed.add(1.0);
  EXPECT_THROW(sampled.merge(bucketed), std::logic_error);

  Histogram other;
  other.add(3.0);
  sampled.merge(other);
  EXPECT_EQ(sampled.count(), 2u);
  EXPECT_DOUBLE_EQ(sampled.percentile(1.0), 3.0);
}

// --- SpanTracker ------------------------------------------------------------

TEST(SpanTrackerTest, DisabledTrackerRecordsNothing) {
  SpanTracker t;
  EXPECT_FALSE(t.enabled());
  t.open(SpanKind::kRegistration, 7, "MS1", SimTime());
  EXPECT_TRUE(t.spans().empty());
  EXPECT_FALSE(t.close(SpanKind::kRegistration, 7, SpanOutcome::kOk,
                       SimTime()));
}

TEST(SpanTrackerTest, CloseMatchesMostRecentOpenSpan) {
  SpanTracker t;
  t.set_enabled(true);
  t.open(SpanKind::kOrigination, 5, "MS1", SimTime::from_micros(100));
  t.open(SpanKind::kOrigination, 5, "MS1", SimTime::from_micros(200));
  ASSERT_TRUE(t.close(SpanKind::kOrigination, 5, SpanOutcome::kOk,
                      SimTime::from_micros(300)));
  // LIFO: the second span closed; the first is still open.
  EXPECT_EQ(t.open_count(), 1u);
  EXPECT_EQ(t.spans()[0].outcome, SpanOutcome::kOpen);
  EXPECT_EQ(t.spans()[1].outcome, SpanOutcome::kOk);
  EXPECT_EQ(t.spans()[1].duration().count_micros(), 100);
  // Closing with no matching open span reports failure.
  EXPECT_FALSE(t.close(SpanKind::kHandoff, 5, SpanOutcome::kOk,
                       SimTime::from_micros(400)));
}

TEST(SpanTrackerTest, AttributeDeliveryBumpsOpenSpansOnly) {
  SpanTracker t;
  t.set_enabled(true);
  t.open(SpanKind::kRegistration, 9, "MS1", SimTime());
  t.attribute_delivery(9);
  t.attribute_delivery(9);
  t.attribute_delivery(12345);  // no span with this correlation
  ASSERT_TRUE(
      t.close(SpanKind::kRegistration, 9, SpanOutcome::kOk, SimTime()));
  EXPECT_EQ(t.spans()[0].hops, 2u);
  t.attribute_delivery(9);  // span closed: no further attribution
  EXPECT_EQ(t.spans()[0].hops, 2u);
}

TEST(SpanTrackerTest, RegistrationOpensAndClosesOkInLiveScenario) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->ms[0]->power_on();
  s->settle();
  EXPECT_EQ(s->net.spans().count(SpanKind::kRegistration, SpanOutcome::kOk),
            1u);
  EXPECT_EQ(s->net.spans().open_count(), 0u);
  const Span& span = s->net.spans().spans().front();
  EXPECT_GT(span.duration().count_micros(), 0);
  EXPECT_GT(span.hops, 0u);
}

TEST(SpanTrackerTest, InjectedTimeoutSurfacesAsTimeoutOutcome) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  LinkProfile dead;
  dead.loss_probability = 1.0;
  s->net.set_link_profile(s->ms[0]->id(), s->bts->id(), dead);
  s->ms[0]->power_on();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kDetached);
  // The guard timer fired; the span must say so — not linger open.
  EXPECT_EQ(
      s->net.spans().count(SpanKind::kRegistration, SpanOutcome::kTimeout),
      1u);
  EXPECT_EQ(s->net.spans().open_count(), 0u);
}

TEST(SpanTrackerTest, CallCycleYieldsOriginationAndReleaseSpans) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  const SpanTracker& spans = s->net.spans();
  EXPECT_EQ(spans.count(SpanKind::kOrigination, SpanOutcome::kOk), 1u);
  EXPECT_EQ(spans.count(SpanKind::kRelease, SpanOutcome::kOk), 1u);
  EXPECT_EQ(spans.count(SpanKind::kPdpActivation, SpanOutcome::kOk), 2u)
      << "signaling context at registration + voice context for the call";
  EXPECT_EQ(spans.open_count(), 0u);
}

// --- TraceRecorder ring mode ------------------------------------------------

TraceEntry numbered_entry(int i) {
  return TraceEntry{SimTime::from_micros(i * 1000), "A", "B",
                    "m" + std::to_string(i), "summary " + std::to_string(i)};
}

TEST(TraceRingTest, ZeroRingCapacityClampsToOneInsteadOfUnbounded) {
  TraceRecorder t;
  // Capacity 0 aliases the internal "unbounded" sentinel; it must behave as
  // the smallest ring, not as kFull with ring bookkeeping.
  t.set_mode(TraceMode::kRing, 0);
  for (int i = 0; i < 5; ++i) t.record(numbered_entry(i));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.entries().front().message, "m4");
}

TEST(TraceRingTest, WrapAroundLinearizesOldestFirst) {
  TraceRecorder t;
  t.set_mode(TraceMode::kRing, 4);
  for (int i = 0; i < 10; ++i) t.record(numbered_entry(i));
  EXPECT_EQ(t.size(), 4u);
  // for_each visits oldest-first even though the backing store wrapped.
  std::vector<std::string> seen;
  t.for_each([&](const TraceEntry& e) { seen.push_back(e.message); });
  EXPECT_EQ(seen, (std::vector<std::string>{"m6", "m7", "m8", "m9"}));
  // count() sees only what the ring kept.
  EXPECT_EQ(t.count("m9"), 1u);
  EXPECT_EQ(t.count("m2"), 0u);
  // to_string renders in the same linearized order.
  std::string rendered = t.to_string();
  EXPECT_LT(rendered.find("summary 6"), rendered.find("summary 9"));
  EXPECT_EQ(rendered.find("summary 5"), std::string::npos);
}

TEST(TraceRingTest, ClearAfterWrapResetsHeadAndKeepsRecording) {
  TraceRecorder t;
  t.set_mode(TraceMode::kRing, 3);
  for (int i = 0; i < 7; ++i) t.record(numbered_entry(i));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  std::size_t visited = 0;
  t.for_each([&](const TraceEntry&) { ++visited; });
  EXPECT_EQ(visited, 0u);
  // A cleared ring starts over: entries land oldest-first again, not at the
  // stale pre-clear head position.
  for (int i = 100; i < 102; ++i) t.record(numbered_entry(i));
  std::vector<std::string> seen;
  t.for_each([&](const TraceEntry& e) { seen.push_back(e.message); });
  EXPECT_EQ(seen, (std::vector<std::string>{"m100", "m101"}));
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAccumulateAndSnapshot) {
  MetricsRegistry m;
  ++m.counter("net/messages_sent");
  ++m.counter("net/messages_sent");
  m.gauge("sgsn/contexts") = 3.0;
  m.histogram("call/setup_ms").add(100.0);
  m.histogram("call/setup_ms").add(200.0);
  MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("net/messages_sent"), 2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sgsn/contexts"), 3.0);
  EXPECT_EQ(snap.histograms.at("call/setup_ms").count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("call/setup_ms").mean, 150.0);
}

TEST(MetricsRegistryTest, DisabledRegistryWritesToSink) {
  MetricsRegistry m;
  m.set_enabled(false);
  ++m.counter("net/messages_sent");
  m.gauge("x") = 9.0;
  m.histogram("y").add(1.0);
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_TRUE(m.histograms().empty());
}

TEST(MetricsRegistryTest, DiffSubtractsCounters) {
  MetricsRegistry m;
  ++m.counter("calls");
  MetricsSnapshot before = m.snapshot();
  ++m.counter("calls");
  ++m.counter("calls");
  ++m.counter("drops");  // key absent from `before`
  MetricsSnapshot delta = MetricsSnapshot::diff(before, m.snapshot());
  EXPECT_EQ(delta.counters.at("calls"), 2);
  EXPECT_EQ(delta.counters.at("drops"), 1);
}

TEST(MetricsRegistryTest, MergeFoldsCountersGaugesHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  ++a.counter("calls");
  ++b.counter("calls");
  a.gauge("load") = 1.0;
  b.gauge("load") = 2.0;
  a.histogram("ms").add(10.0);
  b.histogram("ms").add(30.0);
  a.merge_from(b);
  MetricsSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.counters.at("calls"), 2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("load"), 3.0);
  EXPECT_EQ(snap.histograms.at("ms").count, 2u);
}

// A fig6-style terminated call, run at 1, 2 and 8 workers: the snapshot /
// diff / merge pipeline the sharded engine uses to fold per-shard registries
// must leave counters and histogram percentiles identical to the sequential
// run — metrics are part of the determinism contract, not just traces.
TEST(MetricsRegistryTest, SnapshotDiffMergeAreWorkerCountInvariant) {
  auto run_fig6 = [](unsigned workers) {
    VgprsParams params;
    params.seed = 7;
    if (workers > 1) {
      params.sharded = true;
      params.workers = workers;
    }
    auto s = build_vgprs(params);
    s->net.spans().set_enabled(true);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    MetricsSnapshot registered = s->net.metrics_snapshot();
    s->terminals[0]->place_call(s->ms[0]->config().msisdn);
    s->settle();
    // Procedure latencies live in spans; fold them into the registry so the
    // snapshot carries histograms whose percentiles must match too.
    for (const Span& sp : s->net.spans().spans()) {
      if (sp.is_open()) continue;
      std::string name = "span/";
      name += to_string(sp.kind);
      name += "_ms";
      s->net.metrics().histogram(name).add(sp.duration().as_millis());
    }
    MetricsSnapshot total = s->net.metrics_snapshot();
    return std::pair{registered, total};
  };

  auto [seq_registered, seq_total] = run_fig6(1);
  MetricsSnapshot seq_call = MetricsSnapshot::diff(seq_registered, seq_total);
  ASSERT_FALSE(seq_total.counters.empty());
  ASSERT_FALSE(seq_total.histograms.empty());

  for (unsigned w : {2u, 8u}) {
    auto [registered, total] = run_fig6(w);
    EXPECT_EQ(total.counters, seq_total.counters)
        << "counters differ between 1 and " << w << " workers";
    ASSERT_EQ(total.histograms.size(), seq_total.histograms.size());
    for (const auto& [name, h] : seq_total.histograms) {
      const HistogramSummary& got = total.histograms.at(name);
      EXPECT_EQ(got.count, h.count) << name << " at " << w << " workers";
      EXPECT_DOUBLE_EQ(got.p50, h.p50) << name << " at " << w << " workers";
      EXPECT_DOUBLE_EQ(got.p95, h.p95) << name << " at " << w << " workers";
      EXPECT_DOUBLE_EQ(got.p99, h.p99) << name << " at " << w << " workers";
    }
    // The call-phase delta (diff of the two snapshots) is invariant too.
    MetricsSnapshot call = MetricsSnapshot::diff(registered, total);
    EXPECT_EQ(call.counters, seq_call.counters)
        << "call-phase counter delta differs at " << w << " workers";
  }

  // merge_from folds a whole run into an aggregate the same way at any
  // worker count: aggregating the 8-worker run on top of the sequential one
  // doubles every counter and histogram count.
  MetricsRegistry aggregate;
  for (unsigned w : {1u, 8u}) {
    VgprsParams params;
    params.seed = 7;
    if (w > 1) {
      params.sharded = true;
      params.workers = w;
    }
    auto s = build_vgprs(params);
    s->net.spans().set_enabled(true);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->terminals[0]->place_call(s->ms[0]->config().msisdn);
    s->settle();
    for (const Span& sp : s->net.spans().spans()) {
      if (sp.is_open()) continue;
      std::string name = "span/";
      name += to_string(sp.kind);
      name += "_ms";
      s->net.metrics().histogram(name).add(sp.duration().as_millis());
    }
    // metrics_snapshot() folds the net/* counters into the registry; take
    // one so merge_from sees the same keys the snapshot comparisons used.
    (void)s->net.metrics_snapshot();
    aggregate.merge_from(s->net.metrics());
  }
  MetricsSnapshot merged = aggregate.snapshot();
  for (const auto& [name, value] : seq_total.counters) {
    EXPECT_EQ(merged.counters.at(name), 2 * value) << name;
  }
  for (const auto& [name, h] : seq_total.histograms) {
    EXPECT_EQ(merged.histograms.at(name).count, 2 * h.count) << name;
  }
}

// --- structured export ------------------------------------------------------

/// Tiny structural JSON checker: quotes balance, braces/brackets nest and
/// balance outside strings, and the document is a single value.  Not a full
/// parser — CI runs python3 -m json.tool for that — but enough to catch
/// escaping and comma-bookkeeping regressions at unit-test speed.
void expect_structurally_valid_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool top_closed = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[':
        ASSERT_FALSE(top_closed) << "trailing content after top-level value";
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        ASSERT_GE(depth, 0) << "unbalanced close";
        if (depth == 0) top_closed = true;
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced braces/brackets";
  EXPECT_TRUE(top_closed) << "no top-level value";
}

TEST(ExportTest, MetricsJsonIsStructurallyValid) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->settle();
  std::ostringstream out;
  write_metrics_json(out, s->net.metrics_snapshot());
  const std::string text = out.str();
  expect_structurally_valid_json(text);
  EXPECT_NE(text.find("\"schema\": \"vgprs.metrics.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("net/messages_delivered"), std::string::npos);
}

TEST(ExportTest, TraceJsonlIsOneObjectPerDelivery) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->settle();
  std::ostringstream out;
  write_trace_jsonl(out, s->net.trace());
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    expect_structurally_valid_json(line);
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"ts_us\""), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, s->net.trace().size());
}

TEST(ExportTest, Fig9HandoffPerfettoExportIsStructurallyValid) {
  // The Fig. 9 artifact vgprs_report ships: run a handoff with spans on,
  // export Chrome trace_event JSON, and check its structure.
  HandoffParams params;
  auto s = build_handoff(params);
  s->net.spans().set_enabled(true);
  s->ms->power_on();
  s->terminal->register_endpoint();
  s->settle();
  s->ms->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                             CellId(202));
  s->settle();
  ASSERT_GE(s->net.spans().count(SpanKind::kHandoff, SpanOutcome::kOk), 1u);

  std::ostringstream out;
  write_spans_chrome_trace(out, s->net.spans().spans());
  const std::string text = out.str();
  expect_structurally_valid_json(text);
  // Perfetto essentials: a traceEvents array, process/thread metadata, and
  // complete ("X") events carrying the handoff lane + outcome args.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"handoff\""), std::string::npos);
  EXPECT_NE(text.find("\"outcome\": \"ok\""), std::string::npos);
  // No event may be emitted with negative duration.
  EXPECT_EQ(text.find("\"dur\": -"), std::string::npos);
}

TEST(ExportTest, SpansJsonMarksOpenSpansWithNullClose) {
  SpanTracker t;
  t.set_enabled(true);
  t.open(SpanKind::kOrigination, 3, "MS1", SimTime::from_micros(50));
  std::ostringstream out;
  write_spans_json(out, t.spans());
  const std::string text = out.str();
  expect_structurally_valid_json(text);
  EXPECT_NE(text.find("\"closed_us\": null"), std::string::npos);
  EXPECT_NE(text.find("\"outcome\": \"open\""), std::string::npos);
}

TEST(ExportTest, ForensicsDumpListsOpenSpans) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  // Open a span by hand and never close it: the dump must surface it.
  s->net.spans().open(SpanKind::kHandoff, 424242, "TEST", s->net.now());
  s->ms[0]->power_on();
  s->settle();
  const std::string dump = dump_forensics(s->net, 10);
  EXPECT_NE(dump.find("open spans: 1"), std::string::npos);
  EXPECT_NE(dump.find("handoff"), std::string::npos);
  EXPECT_NE(dump.find("424242"), std::string::npos);
}

}  // namespace
}  // namespace vgprs
