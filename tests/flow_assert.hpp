// EXPECT_FLOW: flow-table assertion with failure forensics.
//
// The bare contains_flow() assertions used to dump the whole trace into the
// gtest message, which buries the interesting part.  This macro instead
// reports the first unmatched step and, on failure only, writes the
// dump_forensics() view — the tail of the trace plus every still-open span
// — to stderr, where multi-line output stays readable.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/export.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

// `net` is a Network, `steps` a std::vector<FlowStep>.  Non-fatal (like
// EXPECT_TRUE): the test keeps running so later assertions still report.
#define EXPECT_FLOW(net, steps)                                             \
  do {                                                                      \
    std::size_t vgprs_failed_step_ = 0;                                     \
    if (!(net).trace().contains_flow((steps), &vgprs_failed_step_)) {       \
      const auto& vgprs_steps_ = (steps);                                   \
      std::fprintf(stderr, "\n=== flow mismatch forensics (%s) ===\n",      \
                   ::testing::UnitTest::GetInstance()                       \
                       ->current_test_info()                                \
                       ->name());                                           \
      std::fputs(::vgprs::dump_forensics((net)).c_str(), stderr);           \
      ADD_FAILURE() << "flow mismatch at step " << vgprs_failed_step_       \
                    << " of " << vgprs_steps_.size() << ": expected "       \
                    << vgprs_steps_[vgprs_failed_step_].from << " -> "      \
                    << vgprs_steps_[vgprs_failed_step_].to << " "           \
                    << vgprs_steps_[vgprs_failed_step_].message             \
                    << " (forensics on stderr)";                            \
    }                                                                       \
  } while (0)
