// Allocation regression tests for the pooled steady state.
//
// The tentpole claim is that sharded dispatch is allocation-free once warm:
// message objects and shared_ptr control blocks come from the per-thread
// message pool, events recycle inside each shard's heap storage, and
// cross-shard hand-off reuses outbox/inbox capacity.  Two layers of pinning:
//
//  * a global operator-new interposer counts heap allocations during a
//    warmed-up 2-shard ping-pong — the count per 10k delivered events must
//    stay inside a small slack (thread start-up, late container growth);
//  * on the real vGPRS sharded call mix, the message-pool statistics
//    (chunks, reserved bytes, oversize fallbacks) must be flat across
//    call waves once the first wave has warmed the pool.
//
// Both gates are skipped when the pool runs in sanitizer passthrough mode
// (message_pool_enabled() == false): then every message *is* a fresh heap
// allocation, by design, so the sanitizer can see it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/arena.hpp"
#include "sim/export.hpp"
#include "vgprs/scenario.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void count_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

// Replaceable global allocation functions (C++20 [new.delete]): same
// malloc-backed behaviour as the defaults, plus the steady-state counter.
void* operator new(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  count_alloc();
  const std::size_t align = static_cast<std::size_t>(al);
  const std::size_t size = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, size != 0 ? size : align)) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace vgprs {
namespace {

struct Echo final : public Node {
  using Node::Node;
  NodeId peer;
  std::int64_t remaining = 0;
  void on_message(const Envelope&) override {
    if (remaining-- > 0) send(peer, pool_message<UmPagingRequest>());
  }
};

TEST(AllocRegression, ShardedPingPongSteadyStateIsAllocationFree) {
  if (!message_pool_enabled()) {
    GTEST_SKIP() << "message pool in sanitizer passthrough mode";
  }
  register_all_messages();
  Network net(1);
  net.trace().set_mode(TraceMode::kDisabled);
  auto& a = net.add<Echo>("a");
  auto& b = net.add<Echo>("b");
  net.connect(a, b, LinkProfile{});
  a.peer = b.id();
  b.peer = a.id();
  net.set_shards({{a.id()}, {b.id()}});
  net.set_workers(2);

  // Warm-up: grows the shard heaps, outboxes, pool chunks and worker
  // threads to steady-state capacity.
  a.remaining = b.remaining = 2000;
  net.send(a.id(), b.id(), pool_message<UmPagingRequest>());
  net.run_until_idle();

  // Timed region: 10k further deliveries through the same warm machinery.
  const std::uint64_t before_delivered = net.stats().messages_delivered;
  a.remaining = b.remaining = 5000;
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_release);
  net.send(a.id(), b.id(), pool_message<UmPagingRequest>());
  net.run_until_idle();
  g_counting.store(false, std::memory_order_release);

  const std::uint64_t delivered =
      net.stats().messages_delivered - before_delivered;
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed);
  ASSERT_GT(delivered, 10000u);
  // Zero allocations per delivered event, with a fixed slack for one-off
  // costs inside the run (worker thread start-up, a straggling container
  // doubling).  Anything proportional to the event count blows well past
  // this.
  EXPECT_LE(allocs, 64u)
      << allocs << " heap allocations across " << delivered
      << " steady-state deliveries";
}

TEST(AllocRegression, CallMixPoolStatsAreFlatAcrossWaves) {
  if (!message_pool_enabled()) {
    GTEST_SKIP() << "message pool in sanitizer passthrough mode";
  }
  VgprsParams params;
  params.num_ms = 64;
  params.num_cells = 4;
  params.bsc_channels = 256;
  params.seed = 11;
  params.sharded = true;
  params.workers = 2;
  auto s = build_vgprs(params);
  s->net.trace().set_mode(TraceMode::kDisabled);
  for (auto* ms : s->ms) ms->power_on();
  s->settle();
  ASSERT_EQ(s->vmsc->ready_count(), params.num_ms);

  auto wave = [&] {
    for (std::size_t p = 0; p < s->ms.size() / 2; ++p) {
      s->ms[2 * p]->dial(s->ms[2 * p + 1]->config().msisdn);
    }
    s->settle();
    for (std::size_t p = 0; p < s->ms.size() / 2; ++p) {
      s->ms[2 * p]->hangup();
    }
    s->settle();
  };

  wave();  // warm the pool to the mix's working set
  const MessagePoolStats warm = message_pool_stats();
  EXPECT_GT(warm.pooled_allocs, 0u) << "call mix bypassed the message pool";
  for (int i = 0; i < 3; ++i) wave();
  const MessagePoolStats after = message_pool_stats();

  // Steady state recycles: no new chunks, no new reserved bytes, and no
  // drift toward the oversize fallback path.
  EXPECT_EQ(after.chunks, warm.chunks);
  EXPECT_EQ(after.bytes_reserved, warm.bytes_reserved);
  EXPECT_EQ(after.oversize_allocs, warm.oversize_allocs);
  EXPECT_GT(after.pooled_allocs, warm.pooled_allocs);
}

}  // namespace
}  // namespace vgprs
