// Thread-count invariance of the sharded engine: every principal scenario
// (Fig. 4-9, the TR 23.821 baseline, and the lost-setup fault run) is
// re-executed with the network partitioned along its topology seams and
// driven by 1, 2, 4 and 8 workers, and the canonical trace is compared
// byte-for-byte against the SAME goldens the sequential engine is pinned
// to.  A race, a mis-ordered mailbox commit, a window that admits an event
// it should not, or a fused window that skipped a rendezvous it needed all
// show up as a golden diff here.
//
// This test never regenerates goldens — test_golden_trace owns them.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gprs/ip.hpp"
#include "sim/export.hpp"
#include "sim/fault.hpp"
#include "tr23821/tr_scenario.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};
constexpr std::size_t kNumWorkerCounts =
    sizeof(kWorkerCounts) / sizeof(kWorkerCounts[0]);

std::string canonical(const TraceRecorder& trace) {
  std::ostringstream os;
  for (const auto& e : trace.entries()) {
    os << e.at.count_micros() << ' ' << e.from << ' ' << e.to << ' '
       << e.message << '\n';
  }
  return os.str();
}

std::string read_golden(const std::string& name) {
  const std::string path = std::string(VGPRS_GOLDEN_DIR) + "/" + name + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream got;
  got << in.rdbuf();
  return got.str();
}

void expect_golden(const std::string& name, const std::string& actual,
                   unsigned workers) {
  const std::string expected = read_golden(name);
  if (expected == actual) return;
  // Name the first diverging delivery; full traces are thousands of lines.
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string wline;
  std::string gline;
  std::size_t lineno = 0;
  while (true) {
    const bool have_w = static_cast<bool>(std::getline(want, wline));
    const bool have_g = static_cast<bool>(std::getline(got, gline));
    ++lineno;
    if (!have_w && !have_g) break;
    if (!have_w || !have_g || wline != gline) {
      ADD_FAILURE() << name << " with " << workers
                    << " worker(s): diverged at delivery " << lineno
                    << "\n  golden: "
                    << (have_w ? wline : std::string("<end of golden>"))
                    << "\n  actual: "
                    << (have_g ? gline : std::string("<end of actual>"));
      return;
    }
  }
}

VgprsParams sharded_vgprs_params(unsigned workers) {
  VgprsParams params;
  params.seed = 7;
  params.sharded = true;
  params.workers = workers;
  return params;
}

TEST(ShardedEngine, Fig4AndFig5MatchSequentialGoldens) {
  for (unsigned w : kWorkerCounts) {
    auto s = build_vgprs(sharded_vgprs_params(w));
    ASSERT_GT(s->net.num_shards(), 1u);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    expect_golden("fig4_registration", canonical(s->net.trace()), w);

    s->net.trace().clear();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    expect_golden("fig5_origination_release", canonical(s->net.trace()), w);
  }
}

TEST(ShardedEngine, Fig6MatchesSequentialGolden) {
  for (unsigned w : kWorkerCounts) {
    auto s = build_vgprs(sharded_vgprs_params(w));
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->net.trace().clear();
    s->terminals[0]->place_call(s->ms[0]->config().msisdn);
    s->settle();
    expect_golden("fig6_termination", canonical(s->net.trace()), w);
  }
}

TEST(ShardedEngine, TromboningMatchesSequentialGoldens) {
  for (unsigned w : kWorkerCounts) {
    for (bool use_vgprs : {false, true}) {
      TrombParams params;
      params.seed = 7;
      params.use_vgprs = use_vgprs;
      params.sharded = true;
      params.workers = w;
      auto s = build_tromboning(params);
      ASSERT_GT(s->net.num_shards(), 1u);
      s->roamer->power_on();
      s->settle();
      s->caller->place_call(s->roamer_id.msisdn);
      s->settle();
      expect_golden(
          use_vgprs ? "fig8_tromboning_vgprs" : "fig7_tromboning_classic",
          canonical(s->net.trace()), w);
    }
  }
}

TEST(ShardedEngine, HandoffMatchesSequentialGolden) {
  for (unsigned w : kWorkerCounts) {
    HandoffParams params;
    params.seed = 7;
    params.sharded = true;
    params.workers = w;
    auto s = build_handoff(params);
    ASSERT_GT(s->net.num_shards(), 1u);
    s->ms->power_on();
    s->terminal->register_endpoint();
    s->settle();
    s->ms->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                               CellId(202));
    s->settle();
    expect_golden("fig9_handoff", canonical(s->net.trace()), w);
  }
}

// The TR baseline is the one topology with a jittered link (Um-PS,
// 60 ms jitter): jitter is drawn from the sending shard's RNG stream, so
// the sharded timestamps differ from the sequential golden by a fixed,
// partition-dependent offset.  What the engine guarantees — and what is
// asserted here — is that the sharded trace is byte-identical whatever
// the worker count.
TEST(ShardedEngine, Tr23821IsWorkerCountInvariant) {
  std::vector<std::string> traces;
  for (unsigned w : kWorkerCounts) {
    TrParams params;
    params.seed = 7;
    params.sharded = true;
    params.workers = w;
    auto s = build_tr23821(params);
    ASSERT_GT(s->net.num_shards(), 1u);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    s->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
    s->settle();
    traces.push_back(canonical(s->net.trace()));
  }
  ASSERT_EQ(traces.size(), kNumWorkerCounts);
  EXPECT_FALSE(traces[0].empty());
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_EQ(traces[0], traces[i])
        << "trace differs between 1 and " << kWorkerCounts[i] << " workers";
  }
}

// Fault transitions and message faults ride the same event ordering, so
// the pinned recovery sequence must survive sharding too.
TEST(ShardedEngine, LostSetupFaultMatchesSequentialGolden) {
  for (unsigned w : kWorkerCounts) {
    auto s = build_vgprs(sharded_vgprs_params(w));
    FaultSchedule sched;
    sched.message_faults.push_back(
        {MessagePredicate{"A_Setup", "", "", 1, 1}, FaultKind::kDrop});
    s->net.install_faults(std::move(sched));
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->net.trace().clear();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    expect_golden("fig5_with_lost_setup", canonical(s->net.trace()), w);
  }
}

// A metropolitan-style multi-cell mix: every observable surface — trace,
// metrics snapshot, span set, aggregate stats, processed-event count —
// must be byte-identical whatever the worker count.
TEST(ShardedEngine, MultiCellObservablesAreWorkerCountInvariant) {
  struct Capture {
    std::string trace;
    std::string metrics;
    std::string spans;
    std::size_t processed = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t timers_fired = 0;
  };
  std::vector<Capture> runs;
  for (unsigned w : kWorkerCounts) {
    VgprsParams params;
    params.seed = 42;
    params.num_cells = 4;
    params.num_ms = 12;
    params.num_terminals = 2;
    params.sharded = true;
    params.workers = w;
    auto s = build_vgprs(params);
    ASSERT_GE(s->net.num_shards(), 6u);
    s->net.spans().set_enabled(true);

    Capture cap;
    for (auto* ms : s->ms) ms->power_on();
    for (auto* t : s->terminals) t->register_endpoint();
    cap.processed += s->settle();
    // Cross-cell MS->MS waves plus MS->terminal calls: traffic crosses
    // every shard seam (Abis/A within cells, Gn/Gi/IP toward H.323).
    for (std::size_t i = 0; i + 1 < s->ms.size(); i += 2) {
      s->ms[i]->dial(s->ms[i + 1]->config().msisdn);
    }
    cap.processed += s->settle();
    for (std::size_t i = 0; i + 1 < s->ms.size(); i += 2) {
      s->ms[i]->hangup();
    }
    cap.processed += s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    cap.processed += s->settle();
    s->ms[0]->hangup();
    cap.processed += s->settle();

    cap.trace = canonical(s->net.trace());
    std::ostringstream mos;
    write_metrics_json(mos, s->net.metrics_snapshot());
    cap.metrics = mos.str();
    std::ostringstream sos;
    write_spans_json(sos, s->net.spans().spans());
    cap.spans = sos.str();
    const NetworkStats stats = s->net.stats();
    cap.messages_delivered = stats.messages_delivered;
    cap.timers_fired = stats.timers_fired;
    runs.push_back(std::move(cap));
  }
  ASSERT_EQ(runs.size(), kNumWorkerCounts);
  EXPECT_FALSE(runs[0].trace.empty());
  EXPECT_GT(runs[0].processed, 0u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].trace, runs[i].trace)
        << "trace differs between 1 and " << kWorkerCounts[i] << " workers";
    EXPECT_EQ(runs[0].metrics, runs[i].metrics)
        << "metrics differ between 1 and " << kWorkerCounts[i] << " workers";
    EXPECT_EQ(runs[0].spans, runs[i].spans)
        << "spans differ between 1 and " << kWorkerCounts[i] << " workers";
    EXPECT_EQ(runs[0].processed, runs[i].processed);
    EXPECT_EQ(runs[0].messages_delivered, runs[i].messages_delivered);
    EXPECT_EQ(runs[0].timers_fired, runs[i].timers_fired);
  }
}

// --- adaptive windows ---------------------------------------------------------

// The conservative window is computed per advance from the live minimum
// over *active* cross-shard links, so retuning a seam latency between runs
// (sweep-style) shrinks or grows the lookahead mid-scenario.  Window size
// must never alter event order: the same retuned scenario has to produce
// byte-identical traces at every worker count.
TEST(ShardedEngine, AdaptiveWindowSurvivesLookaheadRetune) {
  std::vector<std::string> traces;
  for (unsigned w : kWorkerCounts) {
    auto s = build_vgprs(sharded_vgprs_params(w));
    ASSERT_GT(s->net.num_shards(), 1u);
    const NodeId bsc = s->bsc->id();
    const NodeId vmsc = s->vmsc->id();
    const LinkProfile* a_if = s->net.link_between(bsc, vmsc);
    ASSERT_NE(a_if, nullptr);
    const LinkProfile original = *a_if;

    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();

    // Grow the A-interface latency 20x: the seam's lookahead promise grows
    // and windows stretch accordingly.
    LinkProfile slow = original;
    slow.latency = original.latency * 20;
    s->net.set_link_profile(bsc, vmsc, slow);
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();

    // Shrink it back below the original: windows tighten again.
    LinkProfile fast = original;
    fast.latency = original.latency / 2;
    s->net.set_link_profile(bsc, vmsc, fast);
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();

    traces.push_back(canonical(s->net.trace()));
  }
  ASSERT_EQ(traces.size(), kNumWorkerCounts);
  EXPECT_FALSE(traces[0].empty());
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_EQ(traces[0], traces[i])
        << "trace differs between 1 and " << kWorkerCounts[i] << " workers";
  }
}

// The seam cache behind those adaptive windows must make retunes cheap:
// the first windowed run pays one full adjacency scan to collect each
// shard's cross-shard link set, a topology-untouched rerun reuses it
// verbatim (zero links scanned), and retuning one seam rescans only the
// two shards it joins — never the whole adjacency again.
TEST(ShardedEngine, LookaheadRetuneScansOnlyDirtyShards) {
  auto s = build_vgprs(sharded_vgprs_params(2));
  ASSERT_GT(s->net.num_shards(), 1u);
  s->ms[0]->power_on();
  s->settle();
  const std::uint64_t full_scan = s->net.seam_links_scanned();
  EXPECT_GT(full_scan, 0u);

  // No topology change: further runs must not rescan anything.
  s->terminals[0]->register_endpoint();
  s->settle();
  EXPECT_EQ(s->net.seam_links_scanned(), full_scan);

  // Retune the A interface: exactly the two shards it joins are dirtied,
  // and the rescan walks their seam lists, not every link in the network.
  const NodeId bsc = s->bsc->id();
  const NodeId vmsc = s->vmsc->id();
  const LinkProfile* a_if = s->net.link_between(bsc, vmsc);
  ASSERT_NE(a_if, nullptr);
  LinkProfile slow = *a_if;
  slow.latency = slow.latency * 4;
  s->net.set_link_profile(bsc, vmsc, slow);
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  const std::uint64_t retune = s->net.seam_links_scanned() - full_scan;
  EXPECT_GT(retune, 0u);
  EXPECT_LT(retune, full_scan);
}

// A shard with no cross-shard links at all contributes no lookahead
// constraint.  When *no* shard is actively constrained below the window
// cap, the fixed point must fall back to one window spanning the whole
// advance — not a zero-length window that would spin the barrier forever.
TEST(ShardedEngine, NoActiveCrossShardLinksFallsBackToFullWindow) {
  register_all_messages();
  struct Echo final : public Node {
    using Node::Node;
    NodeId peer;
    std::int64_t remaining = 0;
    void on_message(const Envelope& env) override {
      if (remaining-- > 0) send(peer, MessagePtr(env.msg->clone()));
    }
  };
  std::vector<std::uint64_t> delivered;
  for (unsigned w : kWorkerCounts) {
    Network net(1);
    auto& a = net.add<Echo>("a");
    auto& b = net.add<Echo>("b");
    auto& island = net.add<Echo>("island");
    (void)island;
    net.connect(a, b, LinkProfile{});
    a.peer = b.id();
    b.peer = a.id();
    a.remaining = b.remaining = 200;
    // Shard 0 holds the ping-pong pair, shard 1 is an island: the
    // cross-shard link set is empty, so every shard's lookahead is the
    // "unconstrained" sentinel and each window must run to its limit.
    net.set_shards({{a.id(), b.id()}, {island.id()}});
    net.set_workers(w);
    auto ping = std::make_shared<UmPagingRequest>();
    net.send(a.id(), b.id(), ping);
    net.run_until_idle();
    delivered.push_back(net.stats().messages_delivered);
    // With more than one worker the island's owner is provably quiet every
    // window and must fuse (park) instead of joining each rendezvous.
    const std::vector<ShardPerfStats> perf = net.shard_perf();
    ASSERT_EQ(perf.size(), 2u);
    EXPECT_EQ(perf[1].events, 0u);
    if (w > 1) {
      EXPECT_GT(perf[1].fused_windows, 0u);
    }
  }
  ASSERT_EQ(delivered.size(), kNumWorkerCounts);
  EXPECT_GT(delivered[0], 400u);
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[0], delivered[i]);
  }
}

// --- partition planner --------------------------------------------------------

// One deliberately hot cell: a relay with 12 leaves next to two cold cells
// with 2 leaves each.  plan_shards must (a) be deterministic, (b) split the
// hot subtree across shards instead of letting it serialize every window,
// and (c) the resulting partition must keep every observable worker-count
// invariant.
TEST(ShardedEngine, PlannerSplitsHotCellDeterministically) {
  register_all_messages();
  struct Reflector final : public Node {
    using Node::Node;
    std::int64_t budget = 0;
    void on_message(const Envelope& env) override {
      if (budget-- > 0) send(env.from, MessagePtr(env.msg->clone()));
    }
  };
  LinkProfile trunk;
  trunk.latency = SimDuration::micros(2'000);
  LinkProfile drop;
  drop.latency = SimDuration::micros(1'000);

  struct Edge {
    NodeId leaf;
    NodeId relay;
  };
  auto build = [&](Network& net, std::vector<Edge>& edges) {
    auto& hub = net.add<Reflector>("hub");
    (void)hub;
    const unsigned kLeaves[] = {12, 2, 2};
    for (unsigned c = 0; c < 3; ++c) {
      auto& relay = net.add<Reflector>("relay" + std::to_string(c));
      relay.budget = 1'000'000;
      net.connect(relay, hub, trunk);
      for (unsigned l = 0; l < kLeaves[c]; ++l) {
        auto& leaf = net.add<Reflector>(
            "leaf" + std::to_string(c) + "_" + std::to_string(l));
        leaf.budget = 8;
        net.connect(leaf, relay, drop);
        edges.push_back({leaf.id(), relay.id()});
      }
    }
  };

  std::vector<std::vector<std::vector<NodeId>>> plans;
  std::vector<std::string> traces;
  std::vector<std::uint64_t> delivered;
  for (unsigned w : kWorkerCounts) {
    Network net(1);
    std::vector<Edge> edges;
    build(net, edges);
    auto plan = net.plan_shards(4);
    ASSERT_GE(plan.size(), 3u);

    // The hot cell's 12 leaves must not all land in one shard.
    std::map<std::uint64_t, std::size_t> shard_of;
    for (std::size_t g = 0; g < plan.size(); ++g) {
      for (NodeId id : plan[g]) shard_of[id.value()] = g;
    }
    std::set<std::size_t> hot_shards;
    for (std::size_t l = 0; l < 12; ++l) {
      hot_shards.insert(shard_of[edges[l].leaf.value()]);
    }
    EXPECT_GE(hot_shards.size(), 2u)
        << "planner kept the hot cell whole with " << w << " workers";

    net.set_shards(plan);
    net.set_workers(w);
    plans.push_back(std::move(plan));

    // Every leaf opens an 8-bounce exchange with its relay.
    for (const Edge& e : edges) {
      net.send(e.leaf, e.relay, std::make_shared<UmPagingRequest>());
    }
    net.run_until_idle();
    delivered.push_back(net.stats().messages_delivered);
    traces.push_back(canonical(net.trace()));
  }
  ASSERT_EQ(plans.size(), kNumWorkerCounts);
  ASSERT_EQ(traces.size(), kNumWorkerCounts);
  EXPECT_FALSE(traces[0].empty());
  EXPECT_GT(delivered[0], 0u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_EQ(plans[0], plans[i]) << "plan is not deterministic";
    EXPECT_EQ(traces[0], traces[i])
        << "trace differs between 1 and " << kWorkerCounts[i] << " workers";
    EXPECT_EQ(delivered[0], delivered[i]);
  }
}

// --- partitioning validation ------------------------------------------------

TEST(ShardedEngine, SetShardsRejectsRunNetwork) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->settle();
  EXPECT_THROW(s->net.set_shards({{}, {s->ms[0]->id()}}), std::logic_error);
}

TEST(ShardedEngine, SetShardsRejectsDuplicateNode) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  EXPECT_THROW(
      s->net.set_shards({{s->ms[0]->id()}, {s->ms[0]->id()}}),
      std::invalid_argument);
}

TEST(ShardedEngine, SetShardsRejectsInstalledFaults) {
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  FaultSchedule sched;
  sched.node_outages.push_back({"VLR", SimTime::from_micros(100'000),
                                SimTime::from_micros(2'000'000)});
  s->net.install_faults(std::move(sched));
  EXPECT_THROW(s->net.set_shards({{}, {s->ms[0]->id()}}), std::logic_error);
}

TEST(ShardedEngine, ZeroLatencyCrossShardLinkIsRejected) {
  Network net(1);
  auto& a = net.add<IpRouter>("A");
  auto& b = net.add<IpRouter>("B");
  LinkProfile wire;
  wire.latency = SimDuration::zero();
  net.connect(a, b, wire);
  net.set_shards({{a.id()}, {b.id()}});
  EXPECT_THROW(net.run_until_idle(), std::logic_error);
}

}  // namespace
}  // namespace vgprs
