// H.323 substrate unit tests: gatekeeper registration / address
// translation / admission / charging, and terminal-to-terminal calls over
// the IP cloud.
#include <gtest/gtest.h>

#include "h323/gatekeeper.hpp"
#include "h323/terminal.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class H323Test : public ::testing::Test {
 protected:
  void SetUp() override {
    register_all_messages();
    net_ = std::make_unique<Network>(9);
    router_ = &net_->add<IpRouter>("Router");
    gk_ = &net_->add<Gatekeeper>("GK", IpAddress(192, 168, 1, 1), "Router");
    net_->connect(*gk_, *router_, LinkProfile{});
    term_a_ = add_terminal("A", 10, Msisdn(880900001001ULL, 12));
    term_b_ = add_terminal("B", 11, Msisdn(880900001002ULL, 12));
  }

  H323Terminal* add_terminal(const std::string& name, std::uint8_t host,
                             Msisdn alias) {
    H323Terminal::Config tc;
    tc.ip = IpAddress(192, 168, 1, host);
    tc.alias = alias;
    tc.gk_ip = IpAddress(192, 168, 1, 1);
    tc.router_name = "Router";
    auto& t = net_->add<H323Terminal>(name, tc);
    net_->connect(t, *router_, LinkProfile{});
    return &t;
  }

  std::unique_ptr<Network> net_;
  IpRouter* router_ = nullptr;
  Gatekeeper* gk_ = nullptr;
  H323Terminal* term_a_ = nullptr;
  H323Terminal* term_b_ = nullptr;
};

TEST_F(H323Test, RegistrationPopulatesTranslationTable) {
  term_a_->register_endpoint();
  net_->run_until_idle();
  EXPECT_EQ(term_a_->state(), H323Terminal::State::kRegistered);
  EXPECT_NE(term_a_->endpoint_id(), 0u);
  auto reg = gk_->find_alias(Msisdn(880900001001ULL, 12));
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->transport.ip(), IpAddress(192, 168, 1, 10));
  EXPECT_EQ(reg->transport.port(), 1720);
}

TEST_F(H323Test, ReRegistrationFromNewTransportGetsFreshEndpointId) {
  term_a_->register_endpoint();
  net_->run_until_idle();
  std::uint32_t first_id = term_a_->endpoint_id();
  // A second endpoint claims the same alias from a new address (as the
  // VMSC does after a roamer re-activates a dynamic PDP context, or when
  // the subscriber moves zones).  The table must follow the newcomer and
  // issue a fresh endpoint id so stale URQs cannot evict it.
  auto* newcomer = add_terminal("A2", 20, Msisdn(880900001001ULL, 12));
  newcomer->register_endpoint();
  net_->run_until_idle();
  auto reg = gk_->find_alias(Msisdn(880900001001ULL, 12));
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->transport.ip(), IpAddress(192, 168, 1, 20));
  EXPECT_NE(reg->endpoint_id, first_id);

  // A stale URQ from the previous holder is ignored.
  RasUrq urq;
  urq.alias = Msisdn(880900001001ULL, 12);
  urq.endpoint_id = first_id;
  net_->send(term_a_->id(), router_->id(),
             make_ip_datagram(IpAddress(192, 168, 1, 10),
                              IpAddress(192, 168, 1, 1), urq));
  net_->run_until_idle();
  EXPECT_TRUE(gk_->find_alias(Msisdn(880900001001ULL, 12)).has_value());
}

TEST_F(H323Test, AdmissionLimitRejectsExcessCalls) {
  term_a_->register_endpoint();
  term_b_->register_endpoint();
  auto* term_c = add_terminal("C", 12, Msisdn(880900001003ULL, 12));
  auto* term_d = add_terminal("D", 13, Msisdn(880900001004ULL, 12));
  term_c->register_endpoint();
  term_d->register_endpoint();
  net_->run_until_idle();
  gk_->set_admission_limit(1);

  // First call admitted.
  term_a_->place_call(Msisdn(880900001002ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(term_a_->state(), H323Terminal::State::kConnected);

  // Second concurrent call rejected with resource-unavailable.
  std::string failure;
  term_c->on_failure = [&](std::string r) { failure = std::move(r); };
  term_c->place_call(Msisdn(880900001004ULL, 12));
  net_->run_until_idle();
  EXPECT_NE(failure.find("admission rejected"), std::string::npos);
  EXPECT_EQ(term_c->state(), H323Terminal::State::kRegistered);

  // After the first call clears, capacity is available again.
  term_a_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(gk_->open_calls(), 0u);
  term_c->place_call(Msisdn(880900001004ULL, 12));
  net_->run_until_idle();
  EXPECT_EQ(term_c->state(), H323Terminal::State::kConnected);
}

TEST_F(H323Test, CallSetupAndTeardown) {
  term_a_->register_endpoint();
  term_b_->register_endpoint();
  net_->run_until_idle();
  bool a_conn = false;
  bool b_conn = false;
  bool b_rang = false;
  term_a_->on_connected = [&](CallRef) { a_conn = true; };
  term_b_->on_connected = [&](CallRef) { b_conn = true; };
  term_b_->on_incoming = [&](CallRef, Msisdn) { b_rang = true; };
  term_a_->place_call(Msisdn(880900001002ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(a_conn);
  EXPECT_TRUE(b_conn);
  EXPECT_TRUE(b_rang);
  // Both sides requested admission.
  EXPECT_EQ(gk_->admissions(), 2u);

  term_a_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(term_a_->state(), H323Terminal::State::kRegistered);
  EXPECT_EQ(term_b_->state(), H323Terminal::State::kRegistered);
}

TEST_F(H323Test, ChargingRecordsOpenAndClose) {
  term_a_->register_endpoint();
  term_b_->register_endpoint();
  net_->run_until_idle();
  term_a_->place_call(Msisdn(880900001002ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(gk_->call_records().size(), 1u);
  EXPECT_TRUE(gk_->call_records()[0].open);
  SimTime admitted = gk_->call_records()[0].admitted;

  net_->run_until(net_->now() + SimDuration::seconds(30));
  term_a_->hangup();
  net_->run_until_idle();
  ASSERT_EQ(gk_->call_records().size(), 1u);
  const auto& rec = gk_->call_records()[0];
  EXPECT_FALSE(rec.open);
  EXPECT_GT((rec.disengaged - admitted).as_seconds(), 29.0);
  EXPECT_EQ(rec.called, Msisdn(880900001002ULL, 12));
}

TEST_F(H323Test, UnknownAliasRejected) {
  term_a_->register_endpoint();
  net_->run_until_idle();
  std::string failure;
  bool released = false;
  term_a_->on_failure = [&](std::string r) { failure = std::move(r); };
  term_a_->on_released = [&](CallRef) { released = true; };
  term_a_->place_call(Msisdn(889999999999ULL, 12));
  net_->run_until_idle();
  EXPECT_NE(failure.find("admission rejected"), std::string::npos);
  EXPECT_TRUE(released);
  EXPECT_EQ(term_a_->state(), H323Terminal::State::kRegistered);
  EXPECT_EQ(gk_->rejections(), 1u);
}

TEST_F(H323Test, BusyCalleeReleasesCaller) {
  term_a_->register_endpoint();
  term_b_->register_endpoint();
  auto* term_c = add_terminal("C", 12, Msisdn(880900001003ULL, 12));
  term_c->register_endpoint();
  net_->run_until_idle();
  // B talks to C.
  term_b_->place_call(Msisdn(880900001003ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(term_b_->state(), H323Terminal::State::kConnected);
  // A calls B, which is busy.
  bool released = false;
  term_a_->on_released = [&](CallRef) { released = true; };
  term_a_->place_call(Msisdn(880900001002ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(released);
  EXPECT_EQ(term_a_->state(), H323Terminal::State::kRegistered);
  // B's call with C is untouched.
  EXPECT_EQ(term_b_->state(), H323Terminal::State::kConnected);
}

TEST_F(H323Test, UnregisterRemovesAlias) {
  term_a_->register_endpoint();
  net_->run_until_idle();
  ASSERT_TRUE(gk_->find_alias(Msisdn(880900001001ULL, 12)).has_value());
  // Send an explicit URQ.
  RasUrq urq;
  urq.alias = Msisdn(880900001001ULL, 12);
  urq.endpoint_id = term_a_->endpoint_id();
  net_->send(term_a_->id(), router_->id(),
             make_ip_datagram(IpAddress(192, 168, 1, 10),
                              IpAddress(192, 168, 1, 1), urq));
  net_->run_until_idle();
  EXPECT_FALSE(gk_->find_alias(Msisdn(880900001001ULL, 12)).has_value());
}

TEST_F(H323Test, MediaFlowsDirectlyBetweenTerminals) {
  term_a_->register_endpoint();
  term_b_->register_endpoint();
  net_->run_until_idle();
  term_a_->place_call(Msisdn(880900001002ULL, 12));
  net_->run_until_idle();
  net_->trace().clear();
  term_a_->start_voice(20);
  term_b_->start_voice(20);
  net_->run_until_idle();
  EXPECT_EQ(term_a_->voice_frames_received(), 20u);
  EXPECT_EQ(term_b_->voice_frames_received(), 20u);
  // RTP went terminal-to-terminal via the router, not via the GK.
  EXPECT_EQ(net_->trace().count(FlowStep{"Router", "IP_Datagram", "GK"}), 0u);
}

}  // namespace
}  // namespace vgprs
