// Failure injection: lossy links with guard-timer recovery, radio channel
// congestion, admission rejection mid-call, and procedure abort paths.
#include <gtest/gtest.h>

#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(FailureTest, RegistrationGuardFiresWhenAirInterfaceDead) {
  VgprsParams params;
  auto s = build_vgprs(params);
  // Kill the air interface entirely.
  LinkProfile dead;
  dead.loss_probability = 1.0;
  s->net.set_link_profile(s->ms[0]->id(), s->bts->id(), dead);
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  s->ms[0]->power_on();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kDetached);
  EXPECT_NE(failure.find("guard timeout"), std::string::npos);
}

TEST(FailureTest, CallGuardRecoversFromLostSetup) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  // Now the air interface dies; dialling must give up via the guard.
  LinkProfile dead;
  dead.loss_probability = 1.0;
  s->net.set_link_profile(s->ms[0]->id(), s->bts->id(), dead);
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_FALSE(failure.empty());
}

TEST(FailureTest, SdcchCongestionDropsExcessRegistrations) {
  // More simultaneous originations than SDCCH channels: the surplus must
  // fail cleanly, not wedge the BSC.
  VgprsParams params;
  params.num_ms = 6;
  auto s = build_vgprs(params);
  for (auto* ms : s->ms) ms->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();

  // Shrink the pool by replacing the BSC config: instead, occupy channels
  // by dialling from all MSs at once against a 64-channel pool — verify
  // bounded usage rather than exhaustion here.
  int connected = 0;
  int failed = 0;
  for (auto* ms : s->ms) {
    ms->on_connected = [&](CallRef) { ++connected; };
    ms->on_failure = [&](std::string) { ++failed; };
    ms->dial(make_subscriber(88, 1000).msisdn);
  }
  s->settle();
  // Exactly one reaches the single terminal; the rest get busy-released,
  // but nothing deadlocks and every MS ends in a stable state.
  EXPECT_EQ(connected, 1);
  for (auto* ms : s->ms) {
    EXPECT_TRUE(ms->state() == MobileStation::State::kIdle ||
                ms->state() == MobileStation::State::kConnected)
        << to_string(ms->state());
  }
}

TEST(FailureTest, TinyChannelPoolRejectsParallelCalls) {
  register_all_messages();
  VgprsParams params;
  params.num_ms = 4;
  auto s = build_vgprs(params);
  // Rebuild-with-smaller-pool is heavyweight; instead verify the BSC's
  // congestion guard directly: its pool is per-config, so drive a scenario
  // where the SDCCH pool is 1 by constructing a dedicated network.
  Network net(17);
  auto& hlr = net.add<Hlr>("HLR");
  auto& vlr = net.add<Vlr>("VLR", Vlr::Config{"HLR", 88, 8'899'000});
  auto& bsc = net.add<Bsc>("BSC", Bsc::Config{"MSC", 1, 1});
  auto& bts = net.add<Bts>("BTS", CellId(1), LocationAreaId(1), "BSC");
  GsmMsc::MscConfig mc;
  mc.base = MscBase::Config{"VLR", false, false, false};
  mc.pstn_name = "PSTN";
  mc.hlr_name = "HLR";
  auto& msc = net.add<GsmMsc>("MSC", mc);
  auto& pstn = net.add<PstnSwitch>("PSTN");
  bsc.adopt_bts(bts);
  net.connect(bts, bsc, LinkProfile{});
  net.connect(bsc, msc, LinkProfile{});
  net.connect(msc, vlr, LinkProfile{});
  net.connect(vlr, hlr, LinkProfile{});
  net.connect(msc, pstn, LinkProfile{});
  PstnPhone::Config pc;
  pc.number = Msisdn(88210000001ULL, 11);
  pc.switch_name = "PSTN";
  auto& phone = net.add<PstnPhone>("PHONE", pc);
  net.connect(phone, pstn, LinkProfile{});
  pstn.attach_subscriber(pc.number, "PHONE");

  std::vector<MobileStation*> mss;
  for (int i = 0; i < 2; ++i) {
    SubscriberIdentity id = make_subscriber(88, i + 1);
    SubscriberProfile profile;
    profile.msisdn = id.msisdn;
    hlr.provision(id.imsi, id.ki, profile);
    MobileStation::Config cfg;
    cfg.imsi = id.imsi;
    cfg.msisdn = id.msisdn;
    cfg.ki = id.ki;
    cfg.bts_name = "BTS";
    cfg.retry_interval = SimDuration::seconds(2);
    cfg.max_retries = 1;
    auto& ms = net.add<MobileStation>("MS" + std::to_string(i), cfg);
    net.connect(ms, bts, LinkProfile{});
    mss.push_back(&ms);
  }
  mss[0]->power_on();
  net.run_until_idle();
  mss[1]->power_on();
  net.run_until_idle();
  ASSERT_EQ(mss[0]->state(), MobileStation::State::kIdle);
  ASSERT_EQ(mss[1]->state(), MobileStation::State::kIdle);

  // Both dial simultaneously; 1 SDCCH -> exactly one proceeds.
  int connected = 0;
  int failures = 0;
  for (auto* ms : mss) {
    ms->on_connected = [&](CallRef) { ++connected; };
    ms->on_failure = [&](std::string) { ++failures; };
    ms->dial(pc.number);
  }
  net.run_until_idle();
  EXPECT_EQ(connected, 1);
  EXPECT_EQ(failures, 1);  // the loser's guard timer fired
}

TEST(FailureTest, LossyCoreSurvivesWithRetries) {
  // 2% loss on the Um link: most registrations still succeed across many
  // subscribers because procedures are independent; the ones that lose a
  // message fail cleanly via guards.
  VgprsParams params;
  params.num_ms = 20;
  auto s = build_vgprs(params);
  LinkProfile lossy;
  lossy.latency = SimDuration::millis(15);
  lossy.loss_probability = 0.02;
  lossy.label = "Um";
  for (auto* ms : s->ms) {
    s->net.set_link_profile(ms->id(), s->bts->id(), lossy);
  }
  int ok = 0;
  int failed = 0;
  for (auto* ms : s->ms) {
    ms->on_registered = [&] { ++ok; };
    ms->on_failure = [&](std::string) { ++failed; };
    ms->power_on();
  }
  s->settle();
  EXPECT_EQ(ok + failed, 20);
  EXPECT_GE(ok, 10);  // ~13 messages on Um per registration, p(all ok) ~ .77
  for (auto* ms : s->ms) {
    EXPECT_TRUE(ms->state() == MobileStation::State::kIdle ||
                ms->state() == MobileStation::State::kDetached);
  }
}

TEST(FailureTest, VmscRejectsCallFromUnregisteredMs) {
  VgprsParams params;
  auto s = build_vgprs(params);
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  // Dial without registering: MS guards against it locally.
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_FALSE(failure.empty());
}

}  // namespace
}  // namespace vgprs
