// Failure injection: FaultInjector-driven link windows, node outages and
// message faults with guard-timer / retransmission recovery, radio channel
// congestion, admission rejection mid-call, and procedure abort paths.
#include <gtest/gtest.h>

#include "flow_assert.hpp"
#include "sim/fault.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

constexpr SimTime at_seconds(std::int64_t s) {
  return SimTime::from_micros(s * 1'000'000);
}

TEST(FailureTest, RegistrationGuardFiresWhenAirInterfaceDead) {
  VgprsParams params;
  auto s = build_vgprs(params);
  // Kill the air interface for the whole run via a fault-schedule window.
  FaultSchedule sched;
  sched.link_windows.push_back(
      {"MS1", "BTS", SimTime::from_micros(0), at_seconds(3600)});
  s->net.install_faults(std::move(sched));
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  s->ms[0]->power_on();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kDetached);
  EXPECT_NE(failure.find("guard timeout"), std::string::npos);
  EXPECT_GE(s->net.faults()->counters().link_drops, 1u);
}

TEST(FailureTest, CallGuardRecoversFromLostSetup) {
  VgprsParams params;
  auto s = build_vgprs(params);
  // The air interface dies one minute in — after registration, before the
  // dial below.
  FaultSchedule sched;
  sched.link_windows.push_back({"MS1", "BTS", at_seconds(60),
                                at_seconds(3600)});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->net.run_until(at_seconds(60));
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_FALSE(failure.empty());
}

TEST(FailureTest, VlrCrashMidRegistrationRecoversViaRetransmit) {
  // The VLR crashes 100 ms into the registration and restarts two seconds
  // later.  The VMSC's MAP retransmission re-drives the auth exchange
  // against the restarted (empty) VLR, which re-fetches vectors from the
  // HLR — registration completes without manual intervention.
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  FaultSchedule sched;
  sched.node_outages.push_back(
      {"VLR", SimTime::from_micros(100'000), at_seconds(2)});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->net.faults()->counters().crashes, 1u);
  EXPECT_EQ(s->net.faults()->counters().restarts, 1u);
  EXPECT_GE(s->net.metrics().counter("recovery/retransmits"), 1);
  EXPECT_GE(s->net.spans().count(SpanKind::kRegistration, SpanOutcome::kOk),
            1u);
  EXPECT_EQ(s->net.spans().open_count(), 0u);
}

TEST(FailureTest, VmscRestartMidCallForcesReregistration) {
  // The VMSC crashes 50 ms after the subscriber dials (mid-2.x) and
  // restarts with empty volatile state.  The MS's retried service request
  // is rejected with cause 4 ("IMSI unknown in VLR"-style), which makes it
  // drop its TMSI and re-run location update; a subsequent call succeeds.
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  FaultSchedule sched;
  sched.node_outages.push_back(
      {"VMSC", at_seconds(30) + SimDuration::millis(50), at_seconds(32)});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->net.run_until(at_seconds(30));
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);

  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_EQ(s->net.faults()->counters().crashes, 1u);
  EXPECT_EQ(s->net.faults()->counters().restarts, 1u);
  EXPECT_GE(s->net.metrics().counter("recovery/reregistrations"), 1);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->net.spans().open_count(), 0u);
  // The re-registration restored full service: the next call connects.
  bool connected = false;
  s->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  s->ms[0]->hangup();
  s->settle();
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
}

TEST(FailureTest, DuplicateSetupIsIdempotent) {
  // The first A_Setup of the origination is duplicated in flight: the VMSC
  // must absorb the copy — one call, one admission, one charging record.
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"A_Setup", "BSC", "VMSC", 1, 1},
       FaultKind::kDuplicate});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  bool connected = false;
  s->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(s->net.faults()->faults_applied(0), 1u);
  // Both copies were delivered, but only one Call Proceeding came back.
  EXPECT_EQ(s->net.trace().count(FlowStep{"BSC", "A_Setup", "VMSC"}), 2u);
  EXPECT_EQ(s->net.trace().count(FlowStep{"VMSC", "A_Call_Proceeding", "BSC"}),
            1u);
  EXPECT_FLOW(s->net, (std::vector<FlowStep>{{"BSC", "A_Setup", "VMSC"},
                                             {"BSC", "A_Setup", "VMSC"},
                                             {"VMSC", "A_Call_Proceeding",
                                              "BSC"},
                                             {"VMSC", "A_Connect", "BSC"}}));
  s->ms[0]->hangup();
  s->settle();
  EXPECT_EQ(s->net.spans().count(SpanKind::kOrigination, SpanOutcome::kOk),
            1u);
  EXPECT_EQ(s->gk->open_calls(), 0u);
  EXPECT_EQ(s->gk->call_records().size(), 1u);
  EXPECT_EQ(s->net.spans().open_count(), 0u);
}

TEST(FailureTest, ReorderedReleaseStillTearsDownCleanly) {
  // The A_Disconnect that starts the clearing sequence is held back 300 ms
  // so later traffic overtakes it; teardown must still complete with no
  // leaked channels, calls, or spans.
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"A_Disconnect", "BSC", "VMSC", 1, 1},
       FaultKind::kReorder, SimDuration::millis(300)});
  s->net.install_faults(std::move(sched));
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  bool connected = false;
  s->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  ASSERT_TRUE(connected);
  s->ms[0]->hangup();
  s->settle();
  EXPECT_EQ(s->net.faults()->faults_applied(0), 1u);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->bsc->tch_in_use(), 0u);
  EXPECT_EQ(s->gk->open_calls(), 0u);
  EXPECT_GE(s->net.spans().count(SpanKind::kRelease, SpanOutcome::kOk), 1u);
  EXPECT_EQ(s->net.spans().open_count(), 0u);
}

TEST(FailureTest, SdcchCongestionDropsExcessRegistrations) {
  // More simultaneous originations than SDCCH channels: the surplus must
  // fail cleanly, not wedge the BSC.
  VgprsParams params;
  params.num_ms = 6;
  auto s = build_vgprs(params);
  for (auto* ms : s->ms) ms->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();

  // Shrink the pool by replacing the BSC config: instead, occupy channels
  // by dialling from all MSs at once against a 64-channel pool — verify
  // bounded usage rather than exhaustion here.
  int connected = 0;
  int failed = 0;
  for (auto* ms : s->ms) {
    ms->on_connected = [&](CallRef) { ++connected; };
    ms->on_failure = [&](std::string) { ++failed; };
    ms->dial(make_subscriber(88, 1000).msisdn);
  }
  s->settle();
  // Exactly one reaches the single terminal; the rest get busy-released,
  // but nothing deadlocks and every MS ends in a stable state.
  EXPECT_EQ(connected, 1);
  for (auto* ms : s->ms) {
    EXPECT_TRUE(ms->state() == MobileStation::State::kIdle ||
                ms->state() == MobileStation::State::kConnected)
        << to_string(ms->state());
  }
}

TEST(FailureTest, TinyChannelPoolRejectsParallelCalls) {
  register_all_messages();
  VgprsParams params;
  params.num_ms = 4;
  auto s = build_vgprs(params);
  // Rebuild-with-smaller-pool is heavyweight; instead verify the BSC's
  // congestion guard directly: its pool is per-config, so drive a scenario
  // where the SDCCH pool is 1 by constructing a dedicated network.
  Network net(17);
  auto& hlr = net.add<Hlr>("HLR");
  auto& vlr = net.add<Vlr>("VLR", Vlr::Config{"HLR", 88, 8'899'000});
  auto& bsc = net.add<Bsc>("BSC", Bsc::Config{"MSC", 1, 1});
  auto& bts = net.add<Bts>("BTS", CellId(1), LocationAreaId(1), "BSC");
  GsmMsc::MscConfig mc;
  mc.base = MscBase::Config{"VLR", false, false, false};
  mc.pstn_name = "PSTN";
  mc.hlr_name = "HLR";
  auto& msc = net.add<GsmMsc>("MSC", mc);
  auto& pstn = net.add<PstnSwitch>("PSTN");
  bsc.adopt_bts(bts);
  net.connect(bts, bsc, LinkProfile{});
  net.connect(bsc, msc, LinkProfile{});
  net.connect(msc, vlr, LinkProfile{});
  net.connect(vlr, hlr, LinkProfile{});
  net.connect(msc, pstn, LinkProfile{});
  PstnPhone::Config pc;
  pc.number = Msisdn(88210000001ULL, 11);
  pc.switch_name = "PSTN";
  auto& phone = net.add<PstnPhone>("PHONE", pc);
  net.connect(phone, pstn, LinkProfile{});
  pstn.attach_subscriber(pc.number, "PHONE");

  std::vector<MobileStation*> mss;
  for (int i = 0; i < 2; ++i) {
    SubscriberIdentity id = make_subscriber(88, i + 1);
    SubscriberProfile profile;
    profile.msisdn = id.msisdn;
    hlr.provision(id.imsi, id.ki, profile);
    MobileStation::Config cfg;
    cfg.imsi = id.imsi;
    cfg.msisdn = id.msisdn;
    cfg.ki = id.ki;
    cfg.bts_name = "BTS";
    cfg.retry_interval = SimDuration::seconds(2);
    cfg.max_retries = 1;
    auto& ms = net.add<MobileStation>("MS" + std::to_string(i), cfg);
    net.connect(ms, bts, LinkProfile{});
    mss.push_back(&ms);
  }
  mss[0]->power_on();
  net.run_until_idle();
  mss[1]->power_on();
  net.run_until_idle();
  ASSERT_EQ(mss[0]->state(), MobileStation::State::kIdle);
  ASSERT_EQ(mss[1]->state(), MobileStation::State::kIdle);

  // Both dial simultaneously; 1 SDCCH -> exactly one proceeds.
  int connected = 0;
  int failures = 0;
  for (auto* ms : mss) {
    ms->on_connected = [&](CallRef) { ++connected; };
    ms->on_failure = [&](std::string) { ++failures; };
    ms->dial(pc.number);
  }
  net.run_until_idle();
  EXPECT_EQ(connected, 1);
  EXPECT_EQ(failures, 1);  // the loser's guard timer fired
}

TEST(FailureTest, LossyCoreSurvivesWithRetries) {
  // 2% loss on the Um link: most registrations still succeed across many
  // subscribers because procedures are independent; the ones that lose a
  // message fail cleanly via guards.
  VgprsParams params;
  params.num_ms = 20;
  auto s = build_vgprs(params);
  LinkProfile lossy;
  lossy.latency = SimDuration::millis(15);
  lossy.loss_probability = 0.02;
  lossy.label = "Um";
  for (auto* ms : s->ms) {
    s->net.set_link_profile(ms->id(), s->bts->id(), lossy);
  }
  int ok = 0;
  int failed = 0;
  for (auto* ms : s->ms) {
    ms->on_registered = [&] { ++ok; };
    ms->on_failure = [&](std::string) { ++failed; };
    ms->power_on();
  }
  s->settle();
  EXPECT_EQ(ok + failed, 20);
  EXPECT_GE(ok, 10);  // ~13 messages on Um per registration, p(all ok) ~ .77
  for (auto* ms : s->ms) {
    EXPECT_TRUE(ms->state() == MobileStation::State::kIdle ||
                ms->state() == MobileStation::State::kDetached);
  }
}

TEST(FailureTest, VmscAttachGiveUpResetsGprsPhase) {
  // The SGSN's attach accepts never arrive: the VMSC's retransmission
  // exhausts, the registration is rejected, and the per-MS GPRS phase
  // machine returns to rest instead of wedging in kAttaching (a
  // vgprs_verify deadlock finding).
  VgprsParams params;
  auto s = build_vgprs(params);
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"GPRS_Attach_Accept", "SGSN", "VMSC", 1, 100},
       FaultKind::kDrop});
  s->net.install_faults(std::move(sched));
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  s->ms[0]->power_on();
  s->settle();
  EXPECT_FALSE(failure.empty());
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kDetached);
  const auto* vs = s->vmsc->vgprs_state(s->ms[0]->config().imsi);
  if (vs != nullptr) {
    EXPECT_EQ(vs->phase, Vmsc::VgprsState::Phase::kNone);
  }
}

TEST(FailureTest, VmscPdpGiveUpResetsGprsPhase) {
  // Same shape one step later: the signaling-context activation accept is
  // lost for good, and the give-up must reset kActivatingSignaling.
  VgprsParams params;
  auto s = build_vgprs(params);
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"Activate_PDP_Context_Accept", "SGSN", "VMSC", 1, 100},
       FaultKind::kDrop});
  s->net.install_faults(std::move(sched));
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  s->ms[0]->power_on();
  s->settle();
  EXPECT_FALSE(failure.empty());
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kDetached);
  const auto* vs = s->vmsc->vgprs_state(s->ms[0]->config().imsi);
  if (vs != nullptr) {
    EXPECT_EQ(vs->phase, Vmsc::VgprsState::Phase::kNone);
  }
}

TEST(FailureTest, LateAttachRejectTearsDownEndpointState) {
  // An attach reject landing after the endpoint reached kReady (e.g. an
  // SGSN revoking the subscription) tears down the whole per-MS GPRS
  // state — the vmsc-endpoint FSM rows added for the vgprs_verify
  // unhandled-pair findings.
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  const auto* vs = s->vmsc->vgprs_state(s->ms[0]->config().imsi);
  ASSERT_NE(vs, nullptr);
  ASSERT_EQ(vs->phase, Vmsc::VgprsState::Phase::kReady);
  auto rej = std::make_shared<GprsAttachReject>();
  rej->imsi = s->ms[0]->config().imsi;
  s->net.send(s->sgsn->id(), s->vmsc->id(), std::move(rej));
  s->settle();
  vs = s->vmsc->vgprs_state(s->ms[0]->config().imsi);
  EXPECT_TRUE(vs == nullptr || vs->phase == Vmsc::VgprsState::Phase::kNone);
}

TEST(FailureTest, VmscRejectsCallFromUnregisteredMs) {
  VgprsParams params;
  auto s = build_vgprs(params);
  std::string failure;
  s->ms[0]->on_failure = [&](std::string r) { failure = std::move(r); };
  // Dial without registering: MS guards against it locally.
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_FALSE(failure.empty());
}

}  // namespace
}  // namespace vgprs
