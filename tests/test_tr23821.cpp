// The 3G TR 23.821 baseline: H.323-capable MS over packet radio, per-call
// PDP context lifecycle, MAP-enabled gatekeeper, network-initiated
// activation for terminating calls.
#include <gtest/gtest.h>

#include "flow_assert.hpp"
#include "tr23821/tr_scenario.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class TrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TrParams params;
    s_ = build_tr23821(params);
    ms_ = s_->ms[0];
    term_ = s_->terminals[0];
    ms_->power_on();
    term_->register_endpoint();
    s_->settle();
    ASSERT_EQ(ms_->state(), TrMobileStation::State::kIdle);
  }

  std::unique_ptr<TrScenario> s_;
  TrMobileStation* ms_ = nullptr;
  H323Terminal* term_ = nullptr;
};

TEST_F(TrTest, RegistrationActivatesThenDeactivatesPdpContext) {
  // TR 23.821 Fig. 7 step 6: the context is dropped after registration.
  EXPECT_EQ(ms_->pdp_activations(), 1u);
  EXPECT_EQ(ms_->pdp_deactivations(), 1u);
  EXPECT_FALSE(ms_->pdp_active());
  EXPECT_EQ(s_->sgsn->pdp_context_count(), 0u);
  // Yet the alias is registered at the gatekeeper.
  EXPECT_TRUE(s_->gk->find_alias(ms_->state() == TrMobileStation::State::kIdle
                                     ? make_subscriber(88, 1).msisdn
                                     : Msisdn{})
                  .has_value());
}

TEST_F(TrTest, OriginationRequiresPdpReactivation) {
  s_->net.trace().clear();
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(make_subscriber(88, 1000).msisdn);
  s_->settle();
  ASSERT_TRUE(connected);
  // One extra activation happened for this call.
  EXPECT_EQ(ms_->pdp_activations(), 2u);
  EXPECT_FLOW(s_->net, tr_origination_flow());
}

TEST_F(TrTest, UnansweredOriginationTimesOutOfRingback) {
  // A far end that rings but never answers: the handset's ringback
  // supervision must abandon the call and tear everything down.  Before
  // the timer existed, kRingback had no exit on a silent peer (a
  // vgprs_verify timer finding).
  H323Terminal::Config tc;
  tc.ip = IpAddress(192, 168, 1, 50);
  tc.alias = make_subscriber(88, 2000).msisdn;
  tc.gk_ip = IpAddress(192, 168, 1, 1);
  tc.router_name = "Router";
  tc.auto_answer = false;
  auto& mute = s_->net.add<H323Terminal>("TERM-MUTE", tc);
  s_->net.connect(mute, *s_->router, LinkProfile{});
  mute.register_endpoint();
  s_->settle();

  bool connected = false;
  bool rang = false;
  std::string failure;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->on_ringback = [&](CallRef) { rang = true; };
  ms_->on_failure = [&](std::string r) { failure = std::move(r); };
  ms_->dial(tc.alias);
  s_->settle();
  EXPECT_TRUE(rang);
  EXPECT_FALSE(connected);
  EXPECT_NE(failure.find("ringback"), std::string::npos);
  // The abandoned call tore down cleanly: admission released, per-call
  // PDP context gone, handset back to idle and able to call again.
  EXPECT_EQ(ms_->state(), TrMobileStation::State::kIdle);
  EXPECT_EQ(s_->gk->open_calls(), 0u);
  EXPECT_EQ(s_->sgsn->pdp_context_count(), 0u);
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(make_subscriber(88, 1000).msisdn);
  s_->settle();
  EXPECT_TRUE(connected);
}

TEST_F(TrTest, TerminationUsesNetworkInitiatedActivation) {
  s_->net.trace().clear();
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  term_->place_call(make_subscriber(88, 1).msisdn);
  s_->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(ms_->state(), TrMobileStation::State::kConnected);

  EXPECT_FLOW(s_->net, tr_termination_flow());

  // The confidential IMSI crossed into the H.323 domain.
  EXPECT_EQ(s_->gk->imsis_learned(), 1u);
  EXPECT_GE(s_->gk->hlr_queries(), 1u);
  EXPECT_EQ(s_->gk->ggsn_activations(), 1u);
}

TEST_F(TrTest, PdpContextChurnPerCall) {
  // Three consecutive calls: the TR lifecycle pays activate+deactivate
  // each time; vGPRS pays once at registration (Section 6).
  for (int i = 0; i < 3; ++i) {
    ms_->dial(make_subscriber(88, 1000).msisdn);
    s_->settle();
    ASSERT_EQ(ms_->state(), TrMobileStation::State::kConnected)
        << "call " << i;
    ms_->hangup();
    s_->settle();
    ASSERT_EQ(ms_->state(), TrMobileStation::State::kIdle);
  }
  EXPECT_EQ(ms_->pdp_activations(), 4u);    // 1 registration + 3 calls
  EXPECT_EQ(ms_->pdp_deactivations(), 4u);
}

TEST_F(TrTest, VoiceRidesPacketRadioWithJitter) {
  ms_->dial(make_subscriber(88, 1000).msisdn);
  s_->settle();
  ASSERT_EQ(ms_->state(), TrMobileStation::State::kConnected);
  ms_->start_voice(50);
  term_->start_voice(50);
  s_->settle();
  EXPECT_EQ(term_->voice_frames_received(), 50u);
  EXPECT_EQ(ms_->voice_frames_received(), 50u);
  // The packet radio leg adds queueing jitter: delay variance is visible,
  // unlike the deterministic circuit-switched leg in vGPRS.
  EXPECT_GT(term_->voice_latency().stddev(), 1.0);
  EXPECT_GT(term_->voice_latency().max() - term_->voice_latency().min(),
            5.0);
}

TEST_F(TrTest, StaticAddressSurvivesReactivation) {
  IpAddress first;
  {
    ms_->dial(make_subscriber(88, 1000).msisdn);
    s_->settle();
    const auto* ctx = s_->ggsn->context_by_address(IpAddress(10, 2, 0, 1));
    ASSERT_NE(ctx, nullptr);
    first = ctx->address;
    ms_->hangup();
    s_->settle();
  }
  ms_->dial(make_subscriber(88, 1000).msisdn);
  s_->settle();
  const auto* ctx = s_->ggsn->context_by_address(IpAddress(10, 2, 0, 1));
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->address, first);  // static PDP address, as TR requires
}

TEST_F(TrTest, ImsiConfidentialityBreaksTrTermination) {
  // The paper's closing Section 6 argument: the TR gatekeeper's HLR
  // interrogation "implies that the H.323 gatekeeper should memorize IMSI.
  // Since IMSI is considered confidential to the GPRS network operator,
  // this approach may not work if the GPRS network and the H.323 network
  // are owned by different service providers."  Enforce that boundary at
  // the HLR and watch TR termination collapse.
  s_->hlr->set_imsi_confidentiality(true);
  // The operator's own nodes stay trusted; the gatekeeper is the H.323
  // provider's box and is not.
  s_->hlr->trust_map_peer("SGSN");
  s_->hlr->trust_map_peer("GGSN");

  bool connected = false;
  bool released = false;
  s_->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s_->terminals[0]->on_released = [&](CallRef) { released = true; };
  s_->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
  s_->net.run_for(SimDuration::seconds(60));
  s_->settle();
  EXPECT_FALSE(connected);
  EXPECT_GE(s_->hlr->refused_interrogations(), 1u);
  EXPECT_EQ(s_->gk->imsis_learned(), 0u);
  (void)released;  // the caller's Setup simply never reaches the MS

  // vGPRS needs no such interrogation: the same policy does not affect it
  // (verified structurally — the standard gatekeeper never sends MAP; see
  // test_tromboning for the roaming case).

  // The caller is stuck in call setup (its Setup fell into the routing
  // void); abandon the attempt before retrying.
  s_->terminals[0]->hangup();
  s_->settle();
  ASSERT_EQ(s_->terminals[0]->state(), H323Terminal::State::kRegistered);

  // Granting trust restores TR termination, proving the policy (not a
  // regression) is what broke it.
  s_->hlr->trust_map_peer("GK");
  connected = false;
  s_->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
  s_->settle();
  EXPECT_TRUE(connected);
}

TEST_F(TrTest, TerminalToTerminalCallsUnaffected) {
  // The TR gatekeeper's HLR detour must not break plain H.323 calls.
  TrParams params;
  params.num_terminals = 2;
  auto s = build_tr23821(params);
  s->terminals[0]->register_endpoint();
  s->terminals[1]->register_endpoint();
  s->settle();
  bool connected = false;
  s->terminals[0]->on_connected = [&](CallRef) { connected = true; };
  s->terminals[0]->place_call(make_subscriber(88, 1001).msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(s->gk->imsis_learned(), 0u);  // not a mobile subscriber
}

}  // namespace
}  // namespace vgprs
