// Figs. 7-8: tromboning in classic GSM call delivery to an international
// roamer, and its elimination by vGPRS.
#include <gtest/gtest.h>

#include "flow_assert.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(TrombTest, Fig7ClassicGsmUsesTwoInternationalTrunks) {
  TrombParams params;
  params.use_vgprs = false;
  auto s = build_tromboning(params);
  // x roams into HK and registers over classic GSM.
  bool x_registered = false;
  s->roamer->on_registered = [&] { x_registered = true; };
  s->roamer->power_on();
  s->settle();
  ASSERT_TRUE(x_registered);

  // y calls x's UK number.
  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kConnected);

  // Fig. 7: "the call setup results in two international calls".
  EXPECT_EQ(s->international_trunks(), 2);

  EXPECT_FLOW(s->net, fig7_classic_tromboning_flow());
}

TEST(TrombTest, Fig8VgprsEliminatesTromboning) {
  TrombParams params;
  params.use_vgprs = true;
  params.roamer_registered = true;
  auto s = build_tromboning(params);
  // x roams into HK and registers through the vGPRS VMSC, which registers
  // x's UK MSISDN at the local gatekeeper.
  s->roamer->power_on();
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kIdle);
  ASSERT_TRUE(s->gk_hk->find_alias(s->roamer_id.msisdn).has_value());

  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kConnected);

  // The call never left Hong Kong.
  EXPECT_EQ(s->international_trunks(), 0);
  EXPECT_EQ(s->gw_hk->calls_completed_voip(), 1u);
  EXPECT_EQ(s->gw_hk->calls_fallback_pstn(), 0u);

  EXPECT_FLOW(s->net, fig8_vgprs_tromboning_flow());
}

TEST(TrombTest, Fig8FallbackToPstnWhenNotAtGatekeeper) {
  TrombParams params;
  params.use_vgprs = true;
  params.roamer_registered = false;  // x camps on the classic CS network
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kIdle);
  ASSERT_FALSE(s->gk_hk->find_alias(s->roamer_id.msisdn).has_value());

  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();

  // "the GK will instruct y to connect to the international telephone
  // network as a normal PSTN call" — which trombones as in Fig. 7.
  EXPECT_TRUE(connected);
  EXPECT_EQ(s->gw_hk->calls_fallback_pstn(), 1u);
  EXPECT_EQ(s->gw_hk->calls_completed_voip(), 0u);
  EXPECT_EQ(s->international_trunks(), 2);
}

TEST(TrombTest, VgprsTrombonigEliminationSurvivesImsiConfidentiality) {
  // Section 6 / Fig. 9 of [1] discussion: TR 23.821 cannot eliminate
  // tromboning because the *foreign* gatekeeper would need the roamer's
  // IMSI from the home HLR.  vGPRS needs no HLR interrogation on the call
  // path: even with the home HLR refusing foreign interrogations, the
  // local delivery still works (the home HLR only talks MAP to the visited
  // VLR/SGSN during registration, a normal roaming agreement).
  TrombParams params;
  params.use_vgprs = true;
  auto s = build_tromboning(params);
  s->hlr_uk->set_imsi_confidentiality(true);
  s->hlr_uk->trust_map_peer("VLR-HK");    // roaming agreement
  s->hlr_uk->trust_map_peer("SGSN-HK");
  s->hlr_uk->trust_map_peer("GGSN-HK");
  s->hlr_uk->trust_map_peer("GMSC-UK");   // own network

  s->roamer->power_on();
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kIdle);

  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(s->international_trunks(), 0);
  EXPECT_EQ(s->hlr_uk->refused_interrogations(), 0u);  // nobody had to ask
}

TEST(TrombTest, GmscInterrogationRefusedWithoutTrust) {
  // Sanity check of the confidentiality machinery itself: if even the GMSC
  // is not trusted, classic call delivery fails at the SRI.
  TrombParams params;
  params.use_vgprs = false;
  auto s = build_tromboning(params);
  s->hlr_uk->set_imsi_confidentiality(true);
  s->hlr_uk->trust_map_peer("VLR-HK");
  // GMSC-UK deliberately NOT trusted.
  s->roamer->power_on();
  s->settle();
  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  EXPECT_FALSE(connected);
  EXPECT_GE(s->hlr_uk->refused_interrogations(), 1u);
  EXPECT_EQ(s->caller->state(), PstnPhone::State::kIdle);  // released
}

TEST(TrombTest, RoamerCallsAreChargedAtLocalGatekeeper) {
  TrombParams params;
  params.use_vgprs = true;
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kConnected);
  // Step 3.3 works for the gateway-originated call too.
  s->caller->hangup();
  s->settle();
  ASSERT_FALSE(s->gk_hk->call_records().empty());
  EXPECT_FALSE(s->gk_hk->call_records().front().open);
}

}  // namespace
}  // namespace vgprs
