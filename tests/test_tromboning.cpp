// Figs. 7-8: tromboning in classic GSM call delivery to an international
// roamer, and its elimination by vGPRS.
#include <gtest/gtest.h>

#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(TrombTest, Fig7ClassicGsmUsesTwoInternationalTrunks) {
  TrombParams params;
  params.use_vgprs = false;
  auto s = build_tromboning(params);
  // x roams into HK and registers over classic GSM.
  bool x_registered = false;
  s->roamer->on_registered = [&] { x_registered = true; };
  s->roamer->power_on();
  s->settle();
  ASSERT_TRUE(x_registered);

  // y calls x's UK number.
  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kConnected);

  // Fig. 7: "the call setup results in two international calls".
  EXPECT_EQ(s->international_trunks(), 2);

  const TraceRecorder& trace = s->net.trace();
  std::vector<FlowStep> steps{
      // (1) the call is routed to x's gateway MSC in the UK...
      {"PHONE-y", "ISUP_IAM", "PSTN-HK"},
      {"PSTN-HK", "ISUP_IAM", "PSTN-UK"},
      {"PSTN-UK", "ISUP_IAM", "GMSC-UK"},
      // ...which interrogates the HLR and the (HK) VLR...
      {"GMSC-UK", "MAP_Send_Routing_Information", "HLR-UK"},
      {"HLR-UK", "MAP_Provide_Roaming_Number", "VLR-HK"},
      {"VLR-HK", "MAP_Provide_Roaming_Number_ack", "HLR-UK"},
      {"HLR-UK", "MAP_Send_Routing_Information_ack", "GMSC-UK"},
      // (2) ...and a trunk is set up back to Hong Kong.
      {"GMSC-UK", "ISUP_IAM", "PSTN-UK"},
      {"PSTN-UK", "ISUP_IAM", "PSTN-HK"},
      {"PSTN-HK", "ISUP_IAM", "MSC-HK"},
  };
  std::size_t failed = 0;
  EXPECT_TRUE(trace.contains_flow(steps, &failed))
      << "first unmatched step index: " << failed << "\n"
      << trace.to_string(300);
}

TEST(TrombTest, Fig8VgprsEliminatesTromboning) {
  TrombParams params;
  params.use_vgprs = true;
  params.roamer_registered = true;
  auto s = build_tromboning(params);
  // x roams into HK and registers through the vGPRS VMSC, which registers
  // x's UK MSISDN at the local gatekeeper.
  s->roamer->power_on();
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kIdle);
  ASSERT_TRUE(s->gk_hk->find_alias(s->roamer_id.msisdn).has_value());

  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  ASSERT_TRUE(connected);
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kConnected);

  // The call never left Hong Kong.
  EXPECT_EQ(s->international_trunks(), 0);
  EXPECT_EQ(s->gw_hk->calls_completed_voip(), 1u);
  EXPECT_EQ(s->gw_hk->calls_fallback_pstn(), 0u);

  const TraceRecorder& trace = s->net.trace();
  std::vector<FlowStep> steps{
      // (1) the local telephone company routes the call to the gateway.
      {"PHONE-y", "ISUP_IAM", "PSTN-HK"},
      {"PSTN-HK", "ISUP_IAM", "GW-HK"},
      // (2) the gateway checks the GK's address translation table.
      {"GW-HK", "IP_Datagram", "Router-HK"},
      {"Router-HK", "IP_Datagram", "GK-HK"},
      {"GK-HK", "IP_Datagram", "Router-HK"},
      // (3) the call follows the Fig. 6 termination procedure locally.
      {"GGSN-HK", "GTP_T_PDU", "SGSN-HK"},
      {"SGSN-HK", "Gb_UnitData", "VMSC-HK"},
      {"VMSC-HK", "A_Paging", "BSC-HK"},
  };
  std::size_t failed = 0;
  EXPECT_TRUE(trace.contains_flow(steps, &failed))
      << "first unmatched step index: " << failed << "\n"
      << trace.to_string(300);
}

TEST(TrombTest, Fig8FallbackToPstnWhenNotAtGatekeeper) {
  TrombParams params;
  params.use_vgprs = true;
  params.roamer_registered = false;  // x camps on the classic CS network
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kIdle);
  ASSERT_FALSE(s->gk_hk->find_alias(s->roamer_id.msisdn).has_value());

  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();

  // "the GK will instruct y to connect to the international telephone
  // network as a normal PSTN call" — which trombones as in Fig. 7.
  EXPECT_TRUE(connected);
  EXPECT_EQ(s->gw_hk->calls_fallback_pstn(), 1u);
  EXPECT_EQ(s->gw_hk->calls_completed_voip(), 0u);
  EXPECT_EQ(s->international_trunks(), 2);
}

TEST(TrombTest, VgprsTrombonigEliminationSurvivesImsiConfidentiality) {
  // Section 6 / Fig. 9 of [1] discussion: TR 23.821 cannot eliminate
  // tromboning because the *foreign* gatekeeper would need the roamer's
  // IMSI from the home HLR.  vGPRS needs no HLR interrogation on the call
  // path: even with the home HLR refusing foreign interrogations, the
  // local delivery still works (the home HLR only talks MAP to the visited
  // VLR/SGSN during registration, a normal roaming agreement).
  TrombParams params;
  params.use_vgprs = true;
  auto s = build_tromboning(params);
  s->hlr_uk->set_imsi_confidentiality(true);
  s->hlr_uk->trust_map_peer("VLR-HK");    // roaming agreement
  s->hlr_uk->trust_map_peer("SGSN-HK");
  s->hlr_uk->trust_map_peer("GGSN-HK");
  s->hlr_uk->trust_map_peer("GMSC-UK");   // own network

  s->roamer->power_on();
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kIdle);

  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(s->international_trunks(), 0);
  EXPECT_EQ(s->hlr_uk->refused_interrogations(), 0u);  // nobody had to ask
}

TEST(TrombTest, GmscInterrogationRefusedWithoutTrust) {
  // Sanity check of the confidentiality machinery itself: if even the GMSC
  // is not trusted, classic call delivery fails at the SRI.
  TrombParams params;
  params.use_vgprs = false;
  auto s = build_tromboning(params);
  s->hlr_uk->set_imsi_confidentiality(true);
  s->hlr_uk->trust_map_peer("VLR-HK");
  // GMSC-UK deliberately NOT trusted.
  s->roamer->power_on();
  s->settle();
  bool connected = false;
  s->caller->on_connected = [&] { connected = true; };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  EXPECT_FALSE(connected);
  EXPECT_GE(s->hlr_uk->refused_interrogations(), 1u);
  EXPECT_EQ(s->caller->state(), PstnPhone::State::kIdle);  // released
}

TEST(TrombTest, RoamerCallsAreChargedAtLocalGatekeeper) {
  TrombParams params;
  params.use_vgprs = true;
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  ASSERT_EQ(s->roamer->state(), MobileStation::State::kConnected);
  // Step 3.3 works for the gateway-originated call too.
  s->caller->hangup();
  s->settle();
  ASSERT_FALSE(s->gk_hk->call_records().empty());
  EXPECT_FALSE(s->gk_hk->call_records().front().open);
}

}  // namespace
}  // namespace vgprs
