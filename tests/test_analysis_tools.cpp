// Contract tests for the analysis binaries (vgprs_lint / vgprs_verify),
// run against the real built tools:
//
//  * exit-code contract: 0 clean, 1 findings, 2 usage/internal error;
//  * every rule family's --seed-defect produces findings (so each check
//    demonstrably bites), and --self-test passes across all families;
//  * --json and --sarif write well-formed structured reports.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

const std::string kLint = VGPRS_LINT_BIN;      // NOLINT(cert-err58-cpp)
const std::string kVerify = VGPRS_VERIFY_BIN;  // NOLINT(cert-err58-cpp)

constexpr const char* kLintFamilies[] = {
    "registry", "codec", "flows", "correlation",
    "retransmission", "fsm", "sharding"};
constexpr const char* kVerifyFamilies[] = {
    "unhandled", "deadlock", "dead-row", "timer", "flow-cover"};

int run(const std::string& cmd) {
  int rc = std::system((cmd + " > /dev/null 2>&1").c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << cmd;
  return WEXITSTATUS(rc);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AnalysisTools, CleanTreeExitsZero) {
  EXPECT_EQ(run(kLint), 0);
  EXPECT_EQ(run(kVerify), 0);
}

TEST(AnalysisTools, FindingsExitOne) {
  EXPECT_EQ(run(kLint + " --seed-defect fsm"), 1);
  EXPECT_EQ(run(kVerify + " --seed-defect deadlock"), 1);
}

TEST(AnalysisTools, UsageErrorsExitTwo) {
  EXPECT_EQ(run(kLint + " --bogus-flag"), 2);
  EXPECT_EQ(run(kVerify + " --bogus-flag"), 2);
  EXPECT_EQ(run(kVerify + " --seed-defect no-such-family"), 2);
  EXPECT_EQ(run(kVerify + " --json"), 2);  // missing operand
}

TEST(AnalysisTools, EveryFamilyCatchesItsSeededDefect) {
  for (const char* family : kLintFamilies) {
    EXPECT_EQ(run(kLint + " --seed-defect " + family), 1) << family;
  }
  for (const char* family : kVerifyFamilies) {
    EXPECT_EQ(run(kVerify + " --seed-defect " + family), 1) << family;
  }
  EXPECT_EQ(run(kLint + " --self-test"), 0);
  EXPECT_EQ(run(kVerify + " --self-test"), 0);
}

TEST(AnalysisTools, StructuredOutputsAreWellFormed) {
  const std::string json = "analysis_tools_test.json";
  const std::string sarif = "analysis_tools_test.sarif";
  EXPECT_EQ(run(kVerify + " --json " + json + " --sarif " + sarif), 0);

  const std::string j = slurp(json);
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.front(), '{');
  EXPECT_NE(j.find("\"findings\""), std::string::npos);

  const std::string s = slurp(sarif);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("vgprs_verify"), std::string::npos);

  std::remove(json.c_str());
  std::remove(sarif.c_str());

  // A run with findings still writes the reports (exit 1, not 2).
  EXPECT_EQ(run(kLint + " --seed-defect fsm --json " + json), 1);
  const std::string jf = slurp(json);
  EXPECT_NE(jf.find("\"fsm:"), std::string::npos);
  std::remove(json.c_str());
}

}  // namespace
