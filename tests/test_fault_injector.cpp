// FaultInjector unit coverage: schedule determinism (same seed + same
// schedule reproduces a byte-identical trace), link-window edge semantics
// (half-open [down_at, up_at)), message-predicate match bookkeeping, and
// corruption handling (a mangled frame is rejected by the codec and the
// sender's retransmission recovers — the simulation never crashes).
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

/// Registration + one call cycle under `schedule`, returning the full
/// trace rendering.  The scenario keeps its own seeded Network.
std::string run_with_schedule(std::uint64_t seed, FaultSchedule schedule,
                              VgprsScenario** out = nullptr,
                              std::unique_ptr<VgprsScenario>* keep = nullptr) {
  VgprsParams params;
  params.seed = seed;
  params.num_ms = 2;
  auto s = build_vgprs(params);
  s->net.install_faults(std::move(schedule));
  for (auto* ms : s->ms) ms->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  std::string trace = s->net.trace().to_string(1000000);
  if (out != nullptr) *out = s.get();
  if (keep != nullptr) *keep = std::move(s);
  return trace;
}

TEST(FaultInjectorTest, SameSeedAndScheduleGiveByteIdenticalTrace) {
  register_all_messages();
  auto make_schedule = [] {
    FaultSchedule sched;
    sched.message_faults.push_back(
        {MessagePredicate{"Um_Auth_Request", "", "", 1, 1}, FaultKind::kDrop});
    sched.message_faults.push_back(
        {MessagePredicate{"MAP_Update_Location", "", "", 1, 1},
         FaultKind::kCorrupt});  // corrupt_byte = -1: RNG-picked byte
    sched.message_faults.push_back(
        {MessagePredicate{"A_Setup", "", "", 1, 1}, FaultKind::kDuplicate});
    sched.latency_spikes.push_back({"VMSC", "VLR", SimTime::from_micros(0),
                                    SimTime::from_micros(30 * 1'000'000),
                                    SimDuration::millis(40)});
    sched.node_outages.push_back(
        {"GK", SimTime::from_micros(2 * 1'000'000), SimTime::from_micros(4 * 1'000'000)});
    return sched;
  };
  std::string first = run_with_schedule(7, make_schedule());
  std::unique_ptr<VgprsScenario> s;
  std::string second = run_with_schedule(7, make_schedule(), nullptr, &s);
  EXPECT_EQ(first, second);
  // The identical traces are not vacuous: the schedule actually fired.
  const FaultInjector& fi = *s->net.faults();
  EXPECT_GE(fi.faults_applied(0), 1u);  // drop
  EXPECT_GE(fi.faults_applied(1), 1u);  // corrupt
  EXPECT_GE(fi.faults_applied(2), 1u);  // duplicate
  EXPECT_GE(fi.counters().latency_spikes, 1u);
  EXPECT_EQ(fi.counters().crashes, 1u);
}

TEST(FaultInjectorTest, LinkWindowLowerEdgeInclusive) {
  register_all_messages();
  // MS1's Um_Location_Update_Request leaves at t = 0; a window starting
  // exactly there must eat it.
  FaultSchedule sched;
  sched.link_windows.push_back(
      {"MS1", "BTS", SimTime::from_micros(0), SimTime::from_micros(1)});
  std::unique_ptr<VgprsScenario> s;
  run_with_schedule(7, sched, nullptr, &s);
  EXPECT_GE(s->net.faults()->counters().link_drops, 1u);
  // The MS's own LAPDm-style retry re-sends the request after the window
  // closes, so registration still completes.
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
}

TEST(FaultInjectorTest, LinkWindowUpperEdgeExclusive) {
  register_all_messages();
  // An empty window [0, 0) contains no instant at all: a send stamped
  // exactly at up_at passes untouched.
  FaultSchedule sched;
  sched.link_windows.push_back(
      {"MS1", "BTS", SimTime::from_micros(0), SimTime::from_micros(0)});
  std::unique_ptr<VgprsScenario> s;
  run_with_schedule(7, sched, nullptr, &s);
  EXPECT_EQ(s->net.faults()->counters().link_drops, 0u);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
}

TEST(FaultInjectorTest, PredicateCountsMatchesAndApplications) {
  register_all_messages();
  // Two registering MSs produce one Um_Auth_Request each; drop only the
  // second match.  The victim's retry produces a third match, but count=1
  // means the fault fires exactly once.
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"Um_Auth_Request", "", "", 2, 1}, FaultKind::kDrop});
  std::unique_ptr<VgprsScenario> s;
  run_with_schedule(7, sched, nullptr, &s);
  const FaultInjector& fi = *s->net.faults();
  EXPECT_GE(fi.matches_seen(0), 3u);
  EXPECT_EQ(fi.faults_applied(0), 1u);
  EXPECT_EQ(fi.counters().drops, 1u);
  EXPECT_EQ(s->net.metrics().counter("fault/injected/drop"), 1);
  // Both subscribers end registered despite the drop.
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->ms[1]->state(), MobileStation::State::kIdle);
}

TEST(FaultInjectorTest, CorruptFrameRejectedByCodecWithoutCrash) {
  register_all_messages();
  // XOR the first wire byte of the VMSC->VLR MAP_Send_Auth_Info: the
  // receiving codec rejects the frame (the simulated checksum failure),
  // the injector records the decode error, and the VMSC's retransmission
  // completes the registration anyway.
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"MAP_Send_Auth_Info", "VMSC", "VLR", 1, 1},
       FaultKind::kCorrupt, SimDuration::millis(200), 0});
  std::unique_ptr<VgprsScenario> s;
  run_with_schedule(7, sched, nullptr, &s);
  const FaultInjector& fi = *s->net.faults();
  EXPECT_EQ(fi.counters().corruptions, 1u);
  EXPECT_EQ(fi.counters().decode_errors, 1u);
  EXPECT_NE(fi.last_corrupt_error().code, ErrorCode::kNone);
  EXPECT_EQ(s->net.metrics().counter("fault/injected/decode_error"), 1);
  EXPECT_GE(s->net.metrics().counter("recovery/retransmits"), 1);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
}

TEST(FaultInjectorTest, NodeOutageSuppresssAndRestarts) {
  register_all_messages();
  // Crash the gatekeeper before the terminal registers: RRQs sent into
  // the outage vanish, the terminal's retransmission re-sends after the
  // restart, and RAS registration completes.
  FaultSchedule sched;
  sched.node_outages.push_back(
      {"GK", SimTime::from_micros(0), SimTime::from_micros(2 * 1'000'000)});
  VgprsParams params;
  params.seed = 7;
  auto s = build_vgprs(params);
  s->net.install_faults(std::move(sched));
  s->terminals[0]->register_endpoint();
  s->settle();
  const FaultInjector& fi = *s->net.faults();
  EXPECT_EQ(fi.counters().crashes, 1u);
  EXPECT_EQ(fi.counters().restarts, 1u);
  EXPECT_GE(fi.counters().outage_drops, 1u);
  EXPECT_EQ(s->terminals[0]->state(), H323Terminal::State::kRegistered);
}

}  // namespace
}  // namespace vgprs
