// GSM substrate unit tests: A3/A8 authentication, VLR/HLR behaviour,
// registration edge cases, TMSI/MSRN allocation, channel accounting, and
// the classic circuit-switched MSC (MO/MT via ISUP).
#include <gtest/gtest.h>

#include "gsm/auth.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(AuthTest, DeterministicAndKeyDependent) {
  EXPECT_EQ(gsm_a3_sres(1, 2), gsm_a3_sres(1, 2));
  EXPECT_NE(gsm_a3_sres(1, 2), gsm_a3_sres(3, 2));   // Ki matters
  EXPECT_NE(gsm_a3_sres(1, 2), gsm_a3_sres(1, 4));   // RAND matters
  EXPECT_NE(gsm_a8_kc(1, 2), static_cast<std::uint64_t>(gsm_a3_sres(1, 2)));
}

TEST(AuthTest, TripletConsistency) {
  AuthTriplet t = make_triplet(0xDEAD, 0xBEEF);
  EXPECT_EQ(t.rand, 0xBEEFu);
  EXPECT_EQ(t.sres, gsm_a3_sres(0xDEAD, 0xBEEF));
  EXPECT_EQ(t.kc, gsm_a8_kc(0xDEAD, 0xBEEF));
}

TEST(AuthTest, SresSpreadsAcrossChallenges) {
  std::set<std::uint32_t> values;
  for (std::uint64_t rand = 0; rand < 200; ++rand) {
    values.insert(gsm_a3_sres(42, rand));
  }
  EXPECT_EQ(values.size(), 200u);  // no trivial collisions
}

// --- classic GSM network fixture ---------------------------------------------
// MS - BTS - BSC - MSC(classic) - VLR - HLR, plus a PSTN switch and a phone.
class GsmNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_all_messages();
    net_ = std::make_unique<Network>(3);
    hlr_ = &net_->add<Hlr>("HLR");
    vlr_ = &net_->add<Vlr>("VLR", Vlr::Config{"HLR", 88, 8'899'000});
    bsc_ = &net_->add<Bsc>("BSC", Bsc::Config{"MSC", 4, 4});
    bts_ = &net_->add<Bts>("BTS", CellId(1), LocationAreaId(1), "BSC");
    GsmMsc::MscConfig mc;
    mc.base = MscBase::Config{"VLR", true, true, true};
    mc.pstn_name = "PSTN";
    mc.hlr_name = "HLR";
    mc.msrn_prefix = 8'899'000;
    msc_ = &net_->add<GsmMsc>("MSC", mc);
    pstn_ = &net_->add<PstnSwitch>("PSTN");
    bsc_->adopt_bts(*bts_);
    msc_->adopt_cell(CellId(1), "BSC");
    net_->connect(*bts_, *bsc_, LinkProfile{});
    net_->connect(*bsc_, *msc_, LinkProfile{});
    net_->connect(*msc_, *vlr_, LinkProfile{});
    net_->connect(*vlr_, *hlr_, LinkProfile{});
    net_->connect(*msc_, *pstn_, LinkProfile{});

    id_ = make_subscriber(88, 1);
    SubscriberProfile profile;
    profile.msisdn = id_.msisdn;
    hlr_->provision(id_.imsi, id_.ki, profile);
    MobileStation::Config cfg;
    cfg.imsi = id_.imsi;
    cfg.msisdn = id_.msisdn;
    cfg.ki = id_.ki;
    cfg.bts_name = "BTS";
    ms_ = &net_->add<MobileStation>("MS", cfg);
    net_->connect(*ms_, *bts_, LinkProfile{});

    PstnPhone::Config pc;
    pc.number = Msisdn(880'210'000'01ULL, 11);
    pc.switch_name = "PSTN";
    phone_ = &net_->add<PstnPhone>("PHONE", pc);
    net_->connect(*phone_, *pstn_, LinkProfile{});
    pstn_->attach_subscriber(pc.number, "PHONE");
    pstn_->add_route("8899", "MSC", TrunkClass::kLocal);
  }

  std::unique_ptr<Network> net_;
  Hlr* hlr_ = nullptr;
  Vlr* vlr_ = nullptr;
  Bsc* bsc_ = nullptr;
  Bts* bts_ = nullptr;
  GsmMsc* msc_ = nullptr;
  PstnSwitch* pstn_ = nullptr;
  MobileStation* ms_ = nullptr;
  PstnPhone* phone_ = nullptr;
  SubscriberIdentity id_;
};

TEST_F(GsmNetTest, ClassicRegistration) {
  ms_->power_on();
  net_->run_until_idle();
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_TRUE(ms_->tmsi().valid());
  const auto* ctx = msc_->context_of(id_.imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_TRUE(ctx->registered);
  EXPECT_EQ(ctx->msisdn, id_.msisdn);
}

TEST_F(GsmNetTest, UnknownSubscriberRejected) {
  // An MS whose IMSI was never provisioned must be rejected by the HLR.
  MobileStation::Config cfg;
  cfg.imsi = Imsi(999990000000001ULL, 15);
  cfg.msisdn = Msisdn(889999999999ULL, 12);
  cfg.ki = 1;
  cfg.bts_name = "BTS";
  auto& ghost = net_->add<MobileStation>("GHOST", cfg);
  net_->connect(ghost, *bts_, LinkProfile{});
  std::string failure;
  ghost.on_failure = [&](std::string reason) { failure = reason; };
  ghost.power_on();
  net_->run_until_idle();
  EXPECT_EQ(ghost.state(), MobileStation::State::kDetached);
  EXPECT_NE(failure.find("rejected"), std::string::npos);
}

TEST_F(GsmNetTest, WrongKiFailsAuthentication) {
  MobileStation::Config cfg;
  cfg.imsi = id_.imsi;
  cfg.msisdn = id_.msisdn;
  cfg.ki = id_.ki ^ 0xFF;  // wrong SIM key
  cfg.bts_name = "BTS";
  auto& impostor = net_->add<MobileStation>("IMPOSTOR", cfg);
  net_->connect(impostor, *bts_, LinkProfile{});
  std::string failure;
  impostor.on_failure = [&](std::string reason) { failure = reason; };
  impostor.power_on();
  net_->run_until_idle();
  EXPECT_EQ(impostor.state(), MobileStation::State::kDetached);
  EXPECT_FALSE(failure.empty());
  EXPECT_EQ(net_->trace().count("Um_Location_Update_Reject"), 1u);
}

TEST_F(GsmNetTest, MoCallToPstn) {
  ms_->power_on();
  net_->run_until_idle();
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(Msisdn(880'210'000'01ULL, 11));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(phone_->state(), PstnPhone::State::kConnected);
  // MO voice reaches the phone through the trunk.
  ms_->start_voice(5);
  net_->run_until_idle();
  EXPECT_EQ(phone_->voice_latency().count(), 5u);
}

TEST_F(GsmNetTest, MtCallFromPstnViaMsrn) {
  ms_->power_on();
  net_->run_until_idle();
  // The phone calls the MS's MSISDN; without a GMSC in this small net we
  // route via the HLR-assisted path: provision a GMSC-style route by
  // letting the phone dial and the switch deliver to the MSC as MSRN is
  // not needed — instead, test MSRN resolution directly via SRI+PRN.
  bool connected = false;
  ms_->on_connected = [&](CallRef) { connected = true; };
  // Simulate the GMSC leg: ask the HLR for a roaming number and dial it.
  // (The full GMSC chain is covered by the tromboning tests.)
  phone_->place_call(id_.msisdn);
  net_->run_until_idle();
  // No route for the MSISDN prefix 8809 -> the switch releases the call.
  EXPECT_EQ(phone_->state(), PstnPhone::State::kIdle);
  EXPECT_FALSE(connected);
}

TEST_F(GsmNetTest, CallReleaseFreesRadioChannels) {
  ms_->power_on();
  net_->run_until_idle();
  ms_->dial(Msisdn(880'210'000'01ULL, 11));
  net_->run_until_idle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kConnected);
  EXPECT_GT(bsc_->sdcch_in_use() + bsc_->tch_in_use(), 0);
  ms_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_EQ(bsc_->tch_in_use(), 0);
}

TEST_F(GsmNetTest, PstnHangupReleasesMs) {
  ms_->power_on();
  net_->run_until_idle();
  ms_->dial(Msisdn(880'210'000'01ULL, 11));
  net_->run_until_idle();
  ASSERT_EQ(phone_->state(), PstnPhone::State::kConnected);
  phone_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  EXPECT_EQ(phone_->state(), PstnPhone::State::kIdle);
}

TEST_F(GsmNetTest, VlrAllocatesDistinctTmsisAndCachesTriplets) {
  ms_->power_on();
  net_->run_until_idle();
  const auto* rec = vlr_->visitor(id_.imsi);
  ASSERT_NE(rec, nullptr);
  // HLR returned 3 triplets; registration consumed 1.
  EXPECT_EQ(rec->triplets.size(), 2u);
  // A call consumes another (authenticate_calls = true).
  ms_->dial(Msisdn(880'210'000'01ULL, 11));
  net_->run_until_idle();
  EXPECT_EQ(vlr_->visitor(id_.imsi)->triplets.size(), 1u);
}

TEST_F(GsmNetTest, InternationalBarringEnforced) {
  // Re-provision with international calls barred.
  SubscriberProfile profile;
  profile.msisdn = id_.msisdn;
  profile.international_calls_allowed = false;
  hlr_->provision(id_.imsi, id_.ki, profile);
  ms_->power_on();
  net_->run_until_idle();
  ASSERT_EQ(ms_->state(), MobileStation::State::kIdle);

  bool released = false;
  bool connected = false;
  ms_->on_released = [&](CallRef) { released = true; };
  ms_->on_connected = [&](CallRef) { connected = true; };
  ms_->dial(Msisdn(440900000001ULL, 12));  // UK number from country 88
  net_->run_until_idle();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(released);
  EXPECT_EQ(ms_->state(), MobileStation::State::kIdle);
  // The authorization failed at the VLR, before any trunk was seized.
  EXPECT_EQ(pstn_->trunks_used(TrunkClass::kLocal), 0);
}

TEST_F(GsmNetTest, HlrCancelsOldLocationOnMove) {
  // Second VLR/MSC area.
  auto& vlr2 = net_->add<Vlr>("VLR2", Vlr::Config{"HLR", 88, 8'899'100});
  GsmMsc::MscConfig mc;
  mc.base = MscBase::Config{"VLR2", true, true, true};
  mc.pstn_name = "PSTN";
  mc.hlr_name = "HLR";
  auto& msc2 = net_->add<GsmMsc>("MSC2", mc);
  auto& bsc2 = net_->add<Bsc>("BSC2", Bsc::Config{"MSC2", 4, 4});
  auto& bts2 = net_->add<Bts>("BTS2", CellId(2), LocationAreaId(2), "BSC2");
  bsc2.adopt_bts(bts2);
  net_->connect(bts2, bsc2, LinkProfile{});
  net_->connect(bsc2, msc2, LinkProfile{});
  net_->connect(msc2, vlr2, LinkProfile{});
  net_->connect(vlr2, *hlr_, LinkProfile{});

  ms_->power_on();
  net_->run_until_idle();
  ASSERT_NE(vlr_->visitor(id_.imsi), nullptr);

  // The same subscriber registers in area 2 (e.g. after moving).
  MobileStation::Config cfg;
  cfg.imsi = id_.imsi;
  cfg.msisdn = id_.msisdn;
  cfg.ki = id_.ki;
  cfg.bts_name = "BTS2";
  auto& moved = net_->add<MobileStation>("MS-moved", cfg);
  net_->connect(moved, bts2, LinkProfile{});
  moved.power_on();
  net_->run_until_idle();
  EXPECT_EQ(moved.state(), MobileStation::State::kIdle);
  // MAP_Cancel_Location removed the record from the old VLR.
  EXPECT_EQ(vlr_->visitor(id_.imsi), nullptr);
  EXPECT_NE(vlr2.visitor(id_.imsi), nullptr);
  EXPECT_EQ(hlr_->record(id_.imsi)->vlr_name, "VLR2");
}

TEST_F(GsmNetTest, MsrnAllocationIsSingleUse) {
  ms_->power_on();
  net_->run_until_idle();
  // Drive PRN directly through the HLR as a GMSC would.
  struct Collector final : public Node {
    using Node::Node;
    std::vector<Msrn> msrns;
    void on_message(const Envelope& env) override {
      if (const auto* ack =
              dynamic_cast<const MapSendRoutingInformationAck*>(
                  env.msg.get())) {
        msrns.push_back(ack->msrn);
      }
    }
  };
  auto& gmsc = net_->add<Collector>("FAKE-GMSC");
  net_->connect(gmsc, *hlr_, LinkProfile{});
  for (int i = 0; i < 2; ++i) {
    auto sri = std::make_shared<MapSendRoutingInformation>();
    sri->msisdn = id_.msisdn;
    sri->gmsc_name = "FAKE-GMSC";
    net_->send(gmsc.id(), hlr_->id(), std::move(sri));
    net_->run_until_idle();
  }
  ASSERT_EQ(gmsc.msrns.size(), 2u);
  EXPECT_NE(gmsc.msrns[0], gmsc.msrns[1]);  // fresh MSRN per delivery
  EXPECT_EQ(gmsc.msrns[0].value() / 100000, 8'899'000u);
}

}  // namespace
}  // namespace vgprs
