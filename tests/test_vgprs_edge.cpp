// Edge cases around the vGPRS call procedures: the paper's step-2.5 ARJ
// branch, handoff preparation failure, MT delivery under the idle-PDP
// ablation, and data/voice coexistence on the shared GPRS core
// (Fig. 2(b) data path (1)(2)(3)(4) next to the voice path).
#include <gtest/gtest.h>

#include "gprs/data_ms.hpp"
#include "sim/fault.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

TEST(EdgeTest, ArjAtAnsweringTerminalReleasesCall) {
  // Paper step 2.5: "It is possible that an RAS Admission Reject (ARJ)
  // message is received by the terminal and the call is released."
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  // The zone has no media bandwidth at all: the VMSC's own ARQ (step 2.3)
  // is already rejected and the MS is released before any Setup leaves.
  s->gk->set_bandwidth_limit_kbps(0);
  bool connected = false;
  bool released = false;
  s->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s->ms[0]->on_released = [&](CallRef) { released = true; };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(released);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);

  // Now grant enough bandwidth for the originating leg only (64 kbps per
  // leg): the rejection hits the *answering* terminal's ARQ — the
  // step 2.5 release branch proper.
  s->gk->set_bandwidth_limit_kbps(100);
  connected = released = false;
  s->net.trace().clear();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(released);
  EXPECT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->terminals[0]->state(), H323Terminal::State::kRegistered);
  // The terminal received Setup, asked for admission, got ARJ, and
  // released via Q.931 — visible in the trace as tunneled signaling.
  EXPECT_GE(s->gk->rejections(), 1u);
  EXPECT_EQ(s->sgsn->pdp_context_count(), 1u);  // no voice ctx leaked
}

TEST(EdgeTest, HandoffPreparationFailureKeepsCallOnOldCell) {
  HandoffParams params;
  auto s = build_handoff(params);
  s->ms->power_on();
  s->terminal->register_endpoint();
  s->settle();
  s->ms->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  ASSERT_EQ(s->ms->state(), MobileStation::State::kConnected);

  // Exhaust the target BSC's traffic channels so preparation fails.
  Bsc& bsc2 = *s->bsc2;
  for (int i = 0; i < 64; ++i) {
    auto req = std::make_shared<AHandoverRequest>();
    req->imsi = Imsi(999990000000000ULL + static_cast<std::uint64_t>(i), 15);
    req->call_ref = CallRef(9000u + static_cast<std::uint32_t>(i));
    req->target_cell = CellId(202);
    s->net.send(s->msc_b->id(), bsc2.id(), std::move(req));
  }
  s->settle();

  s->net.trace().clear();
  s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                             CellId(202));
  s->settle();
  // Preparation was refused; no handover command reached the MS.
  EXPECT_EQ(s->net.trace().count("Um_Handover_Command"), 0u);
  EXPECT_GE(s->net.trace().count("MAP_Prepare_Handover_ack"), 1u);
  // The call survives on the original cell; voice still flows.
  EXPECT_EQ(s->ms->state(), MobileStation::State::kConnected);
  s->ms->start_voice(5);
  s->settle();
  EXPECT_GE(s->terminal->voice_frames_received(), 5u);
}

TEST(EdgeTest, HandoffToUnknownCellIsIgnored) {
  HandoffParams params;
  auto s = build_handoff(params);
  s->ms->power_on();
  s->terminal->register_endpoint();
  s->settle();
  s->ms->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  ASSERT_EQ(s->ms->state(), MobileStation::State::kConnected);
  s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                             CellId(999));
  s->settle();
  EXPECT_EQ(s->ms->state(), MobileStation::State::kConnected);
}

TEST(EdgeTest, IdlePdpAblationBreaksTermination) {
  // Section 6: "vGPRS registration and call procedures can be easily
  // modified to deactivate the PDP contexts when the MSs are idle.
  // However, this approach may significantly increase the call setup
  // time" — and, without network-initiated activation, terminating calls
  // cannot reach the MS at all.
  VgprsParams params;
  params.deactivate_pdp_when_idle = true;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->sgsn->pdp_context_count(), 0u);  // torn down when idle

  // MO still works (the VMSC rebuilds the context first)...
  bool connected = false;
  s->ms[0]->on_connected = [&](CallRef) { connected = true; };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  EXPECT_TRUE(connected);
  s->ms[0]->hangup();
  s->settle();
  ASSERT_EQ(s->sgsn->pdp_context_count(), 0u);

  // ...but a terminating call cannot be delivered: the Setup datagram has
  // no routing path to the (deactivated) signaling address.
  bool mt_connected = false;
  s->ms[0]->on_connected = [&](CallRef) { mt_connected = true; };
  s->terminals[0]->place_call(s->ms[0]->config().msisdn);
  s->net.run_for(SimDuration::seconds(60));
  s->settle();
  EXPECT_FALSE(mt_connected);
}

TEST(EdgeTest, DataPathCoexistsWithVoice) {
  // Fig. 2(b): the data path (1)(2)(3)(4) and the voice path
  // (1)(2)(5)(6)(4) share the GPRS core.
  VgprsParams params;
  auto s = build_vgprs(params);
  const LatencyConfig L;

  // A plain GPRS data mobile on the packet radio path, plus an external
  // server behind the Gi interface.
  GprsDataMs::Config dc;
  dc.imsi = make_subscriber(88, 500).imsi;
  dc.sgsn_name = "SGSN";
  SubscriberProfile dprofile;
  dprofile.msisdn = make_subscriber(88, 500).msisdn;
  s->hlr->provision(dc.imsi, 1234, dprofile);
  auto& dms = s->net.add<GprsDataMs>("DATA-MS", dc);
  LinkProfile radio;
  radio.latency = L.um_packet;
  radio.jitter = L.um_packet_jitter;
  radio.label = "Um-PS";
  s->net.connect(dms, *s->sgsn, radio);
  auto& server =
      s->net.add<EchoServer>("SERVER", IpAddress(192, 168, 1, 200), "Router");
  s->net.connect(server, *s->router, L.link(L.ip, "IP"));

  // Bring up voice subscriber and data subscriber together.
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  dms.power_on();
  s->settle();
  ASSERT_EQ(dms.state(), GprsDataMs::State::kOnline);
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s->sgsn->pdp_context_count(), 2u);  // voice-signaling + data

  // Voice call and data transfer run concurrently over the same core.
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  dms.start_pings(server.ip(), 30);
  s->settle();
  ASSERT_EQ(s->ms[0]->state(), MobileStation::State::kConnected);
  s->ms[0]->start_voice(30);
  s->settle();

  EXPECT_EQ(dms.echoes_received(), 30u);
  EXPECT_EQ(server.requests_served(), 30u);
  EXPECT_EQ(s->terminals[0]->voice_frames_received(), 30u);
  EXPECT_GT(dms.rtt().mean(), 0.0);
  // The data RTT crosses the jittery packet radio twice.
  EXPECT_GT(dms.rtt().mean(),
            2 * L.um_packet.as_millis());
}

TEST(EdgeTest, DataMsRecoversFromPdpRejectAndNetworkDetach) {
  VgprsParams params;
  auto s = build_vgprs(params);
  const LatencyConfig L;
  GprsDataMs::Config dc;
  dc.imsi = make_subscriber(88, 501).imsi;
  dc.sgsn_name = "SGSN";
  SubscriberProfile dprofile;
  dprofile.msisdn = make_subscriber(88, 501).msisdn;
  s->hlr->provision(dc.imsi, 1234, dprofile);
  auto& dms = s->net.add<GprsDataMs>("DATA-MS", dc);
  LinkProfile radio;
  radio.latency = L.um_packet;
  radio.label = "Um-PS";
  s->net.connect(dms, *s->sgsn, radio);

  // Lose the activation accept: the MS is left waiting in kActivating
  // (it used to wedge there with no way back — power_on() refuses unless
  // detached; a vgprs_verify deadlock finding).
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"Activate_PDP_Context_Accept", "SGSN", "DATA-MS", 1,
                        1},
       FaultKind::kDrop});
  s->net.install_faults(std::move(sched));
  dms.power_on();
  s->settle();
  ASSERT_EQ(dms.state(), GprsDataMs::State::kActivating);

  // A network-side reject resolves the wedge...
  auto rej = std::make_shared<ActivatePdpContextReject>();
  rej->imsi = dc.imsi;
  rej->nsapi = Nsapi(5);
  s->net.send(s->sgsn->id(), dms.id(), std::move(rej));
  s->settle();
  EXPECT_EQ(dms.state(), GprsDataMs::State::kDetached);

  // ...and the subscriber can come back online.
  dms.power_on();
  s->settle();
  EXPECT_EQ(dms.state(), GprsDataMs::State::kOnline);

  // A network-initiated detach (e.g. SGSN restart recovery) is honoured.
  auto det = std::make_shared<GprsDetachRequest>();
  det->imsi = dc.imsi;
  s->net.send(s->sgsn->id(), dms.id(), std::move(det));
  s->settle();
  EXPECT_EQ(dms.state(), GprsDataMs::State::kDetached);
}

TEST(EdgeTest, VoiceQosClassesDifferPerContext) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  const auto* sig = s->sgsn->context(s->ms[0]->config().imsi, Nsapi(5));
  const auto* voice = s->sgsn->context(s->ms[0]->config().imsi, Nsapi(6));
  ASSERT_NE(sig, nullptr);
  ASSERT_NE(voice, nullptr);
  EXPECT_EQ(sig->qos.traffic_class, QosClass::kBackground);
  EXPECT_EQ(voice->qos.traffic_class, QosClass::kConversational);
  EXPECT_LT(voice->qos.priority, sig->qos.priority);  // 1 = highest
}

}  // namespace
}  // namespace vgprs
