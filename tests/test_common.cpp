// Unit tests for the common layer: identifiers, byte codecs, result types
// and the deterministic RNG.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace vgprs {
namespace {

TEST(ImsiTest, ParseAndFormatRoundTrip) {
  auto imsi = Imsi::parse("466920123456789");
  ASSERT_TRUE(imsi.has_value());
  EXPECT_EQ(imsi->to_string(), "466920123456789");
  EXPECT_EQ(imsi->digits(), 15);
  EXPECT_EQ(imsi->mcc(), 466);
}

TEST(ImsiTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Imsi::parse("").has_value());
  EXPECT_FALSE(Imsi::parse("12345678901234567").has_value());  // 17 digits
  EXPECT_FALSE(Imsi::parse("46692a123456789").has_value());
  EXPECT_FALSE(Imsi::parse("0").has_value());  // zero is reserved invalid
}

TEST(ImsiTest, LeadingZerosPreserved) {
  auto imsi = Imsi::parse("001010000000001");
  ASSERT_TRUE(imsi.has_value());
  EXPECT_EQ(imsi->to_string(), "001010000000001");
  EXPECT_EQ(imsi->mcc(), 1);
}

TEST(MsisdnTest, CountryCodeExtraction) {
  auto uk = Msisdn::parse("440900000001");
  ASSERT_TRUE(uk.has_value());
  EXPECT_EQ(uk->country_code(), 44);
  auto hk = Msisdn::parse("850900000001");
  ASSERT_TRUE(hk.has_value());
  EXPECT_EQ(hk->country_code(), 85);
  EXPECT_EQ(uk->to_string(), "+440900000001");
}

TEST(IpAddressTest, ParseAndFormat) {
  auto ip = IpAddress::parse("192.168.1.10");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.1.10");
  EXPECT_EQ(*ip, IpAddress(192, 168, 1, 10));
  EXPECT_FALSE(IpAddress::parse("300.1.1.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
}

TEST(IdsTest, HashDistinctness) {
  std::unordered_set<Imsi> imsis;
  std::unordered_set<IpAddress> ips;
  for (std::uint32_t i = 1; i <= 1000; ++i) {
    imsis.insert(Imsi(466920000000000ULL + i, 15));
    ips.insert(IpAddress(i));
  }
  EXPECT_EQ(imsis.size(), 1000u);
  EXPECT_EQ(ips.size(), 1000u);
}

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x12345678);
  w.u64(0x0123456789ABCDEFULL);
  w.boolean(true);
  w.str("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, IdentifierRoundTrip) {
  ByteWriter w;
  w.imsi(Imsi(466920123456789ULL, 15));
  w.msisdn(Msisdn(440900000001ULL, 12));
  w.transport(TransportAddress(IpAddress(10, 1, 0, 3), 1720));
  w.teid(TunnelId(0xDEADBEEF));
  w.nsapi(Nsapi(6));
  ByteReader r(w.data());
  EXPECT_EQ(r.imsi(), Imsi(466920123456789ULL, 15));
  EXPECT_EQ(r.msisdn(), Msisdn(440900000001ULL, 12));
  EXPECT_EQ(r.transport(), TransportAddress(IpAddress(10, 1, 0, 3), 1720));
  EXPECT_EQ(r.teid(), TunnelId(0xDEADBEEF));
  EXPECT_EQ(r.nsapi(), Nsapi(6));
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, TruncatedReadFailsSafely) {
  ByteWriter w;
  w.u32(42);
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    ByteReader r(std::span(w.data().data(), cut));
    (void)r.u32();
    EXPECT_TRUE(r.failed()) << "cut=" << cut;
    EXPECT_FALSE(r.status().ok());
    // Reads after failure keep returning zero without UB.
    EXPECT_EQ(r.u64(), 0u);
  }
}

TEST(BytesTest, LengthPrefixedBlobBoundsChecked) {
  // A declared length larger than the remaining bytes must fail, not read
  // out of bounds.
  std::vector<std::uint8_t> evil{0xFF, 0xFF, 0x01};
  ByteReader r(evil);
  auto blob = r.bytes();
  EXPECT_TRUE(blob.empty());
  EXPECT_TRUE(r.failed());
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  Result<int> bad(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(bad.value_or(3), 3);
  EXPECT_EQ(bad.error().to_string(), "not-found: nope");
}

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  Status err(ErrorCode::kTimeout);
  EXPECT_FALSE(err.ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(43);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  double mean = sum / kN;
  EXPECT_NEAR(mean, 5.0, 0.25);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

}  // namespace
}  // namespace vgprs
