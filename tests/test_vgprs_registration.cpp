// Fig. 4: vGPRS registration.  Verifies the message flow step by step
// against the paper (steps 1.1-1.6) plus the resulting state in every
// network element the procedure touches.
#include <gtest/gtest.h>

#include "flow_assert.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class RegistrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VgprsParams params;
    scenario_ = build_vgprs(params);
  }

  std::unique_ptr<VgprsScenario> scenario_;
};

TEST_F(RegistrationTest, Fig4MessageFlow) {
  MobileStation& ms = *scenario_->ms[0];
  bool registered = false;
  ms.on_registered = [&] { registered = true; };
  ms.power_on();
  scenario_->settle();
  ASSERT_TRUE(registered);

  // The principal messages of Fig. 4, in figure order (shared with
  // vgprs_lint, which checks every step name against the wire registry).
  EXPECT_FLOW(scenario_->net, fig4_registration_flow());
}

TEST_F(RegistrationTest, AuthenticationAndCipheringRun) {
  scenario_->ms[0]->power_on();
  scenario_->settle();
  const TraceRecorder& trace = scenario_->net.trace();
  EXPECT_EQ(trace.count("Um_Auth_Request"), 1u);
  EXPECT_EQ(trace.count("Um_Auth_Response"), 1u);
  EXPECT_EQ(trace.count("Um_Cipher_Mode_Command"), 1u);
  EXPECT_EQ(trace.count("Um_Cipher_Mode_Complete"), 1u);
}

TEST_F(RegistrationTest, StateAfterRegistration) {
  scenario_->ms[0]->power_on();
  scenario_->settle();

  // MS side.
  EXPECT_EQ(scenario_->ms[0]->state(), MobileStation::State::kIdle);
  EXPECT_TRUE(scenario_->ms[0]->tmsi().valid());

  // VLR has the visitor with profile.
  const auto* visitor =
      scenario_->vlr->visitor(scenario_->ms[0]->config().imsi);
  ASSERT_NE(visitor, nullptr);
  EXPECT_TRUE(visitor->registered);
  EXPECT_TRUE(visitor->profile_valid);

  // HLR points at the VLR and the SGSN.
  const auto* rec = scenario_->hlr->record(scenario_->ms[0]->config().imsi);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->vlr_name, "VLR");
  EXPECT_EQ(rec->sgsn_name, "SGSN");

  // SGSN/GGSN hold exactly one (signaling) PDP context.
  EXPECT_EQ(scenario_->sgsn->attached_count(), 1u);
  EXPECT_EQ(scenario_->sgsn->pdp_context_count(), 1u);
  EXPECT_EQ(scenario_->ggsn->pdp_context_count(), 1u);

  // Gatekeeper has the alias with the PDP address as transport.
  auto reg = scenario_->gk->find_alias(scenario_->ms[0]->config().msisdn);
  ASSERT_TRUE(reg.has_value());
  const auto* vs =
      scenario_->vmsc->vgprs_state(scenario_->ms[0]->config().imsi);
  ASSERT_NE(vs, nullptr);
  EXPECT_EQ(vs->phase, Vmsc::VgprsState::Phase::kReady);
  EXPECT_EQ(reg->transport.ip(), vs->signaling_ip);

  // VMSC context is registered.
  const auto* ctx =
      scenario_->vmsc->context_of(scenario_->ms[0]->config().imsi);
  ASSERT_NE(ctx, nullptr);
  EXPECT_TRUE(ctx->registered);
}

TEST_F(RegistrationTest, SignalingContextHasLowPriorityQos) {
  scenario_->ms[0]->power_on();
  scenario_->settle();
  const auto* ctx = scenario_->sgsn->context(
      scenario_->ms[0]->config().imsi, Nsapi(5));
  ASSERT_NE(ctx, nullptr);
  // "the QoS profile can be set to low priority" (paper, step 1.3).
  EXPECT_EQ(ctx->qos.traffic_class, QosClass::kBackground);
}

TEST_F(RegistrationTest, MultipleSubscribersRegisterIndependently) {
  VgprsParams params;
  params.num_ms = 8;
  auto s = build_vgprs(params);
  int registered = 0;
  for (auto* ms : s->ms) {
    ms->on_registered = [&] { ++registered; };
    ms->power_on();
  }
  s->settle();
  EXPECT_EQ(registered, 8);
  EXPECT_EQ(s->sgsn->pdp_context_count(), 8u);
  EXPECT_EQ(s->gk->registration_count(), 8u);
  // Distinct TMSIs and PDP addresses.
  std::set<std::uint32_t> tmsis;
  for (auto* ms : s->ms) tmsis.insert(ms->tmsi().value());
  EXPECT_EQ(tmsis.size(), 8u);
}

}  // namespace
}  // namespace vgprs
