// Direct unit tests of the H.323 <-> PSTN gateway: VoIP-first completion,
// PSTN fallback with circuit translation, media conversion, and clearing
// from either side.
#include <gtest/gtest.h>

#include "h323/gateway.hpp"
#include "h323/terminal.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_all_messages();
    net_ = std::make_unique<Network>(31);
    router_ = &net_->add<IpRouter>("Router");
    gk_ = &net_->add<Gatekeeper>("GK", IpAddress(192, 168, 1, 1), "Router");
    net_->connect(*gk_, *router_, LinkProfile{});

    sw_ = &net_->add<PstnSwitch>("SW");
    fallback_ = &net_->add<PstnSwitch>("SW-INTL");

    H323Gateway::Config gc;
    gc.ip = IpAddress(192, 168, 1, 5);
    gc.service_alias = Msisdn(88299000000ULL, 11);
    gc.gk_ip = IpAddress(192, 168, 1, 1);
    gc.router_name = "Router";
    gc.pstn_name = "SW";
    gc.fallback_pstn_name = "SW-INTL";
    gw_ = &net_->add<H323Gateway>("GW", gc);
    net_->connect(*gw_, *sw_, LinkProfile{});
    net_->connect(*gw_, *fallback_, LinkProfile{});
    net_->connect(*gw_, *router_, LinkProfile{});

    H323Terminal::Config tc;
    tc.ip = IpAddress(192, 168, 1, 10);
    tc.alias = Msisdn(440900000001ULL, 12);  // "the roamer's number"
    tc.gk_ip = IpAddress(192, 168, 1, 1);
    tc.router_name = "Router";
    term_ = &net_->add<H323Terminal>("TERM", tc);
    net_->connect(*term_, *router_, LinkProfile{});

    PstnPhone::Config pc;
    pc.number = Msisdn(88210000001ULL, 11);
    pc.switch_name = "SW";
    phone_ = &net_->add<PstnPhone>("PHONE", pc);
    net_->connect(*phone_, *sw_, LinkProfile{});
    sw_->attach_subscriber(pc.number, "PHONE");
    // VoIP-first routing for UK numbers.
    sw_->add_route("44", "GW", TrunkClass::kLocal);
    // Fallback world: a distant phone with the same number.
    PstnPhone::Config fc;
    fc.number = Msisdn(440900000001ULL, 12);
    fc.switch_name = "SW-INTL";
    far_phone_ = &net_->add<PstnPhone>("FAR-PHONE", fc);
    net_->connect(*far_phone_, *fallback_, LinkProfile{});
    fallback_->attach_subscriber(fc.number, "FAR-PHONE");

    gw_->register_endpoint();
    net_->run_until_idle();
    ASSERT_TRUE(gw_->registered());
  }

  std::unique_ptr<Network> net_;
  IpRouter* router_ = nullptr;
  Gatekeeper* gk_ = nullptr;
  PstnSwitch* sw_ = nullptr;
  PstnSwitch* fallback_ = nullptr;
  H323Gateway* gw_ = nullptr;
  H323Terminal* term_ = nullptr;
  PstnPhone* phone_ = nullptr;
  PstnPhone* far_phone_ = nullptr;
};

TEST_F(GatewayTest, CompletesOverVoipWhenAliasRegistered) {
  term_->register_endpoint();
  net_->run_until_idle();
  bool connected = false;
  phone_->on_connected = [&] { connected = true; };
  phone_->place_call(Msisdn(440900000001ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(term_->state(), H323Terminal::State::kConnected);
  EXPECT_EQ(gw_->calls_completed_voip(), 1u);
  EXPECT_EQ(gw_->calls_fallback_pstn(), 0u);
  EXPECT_EQ(fallback_->trunks_used(TrunkClass::kSubscriberLine), 0);
}

TEST_F(GatewayTest, FallsBackToPstnWhenAliasUnknown) {
  // Terminal NOT registered: the GK rejects, the gateway re-routes.
  bool connected = false;
  phone_->on_connected = [&] { connected = true; };
  phone_->place_call(Msisdn(440900000001ULL, 12));
  net_->run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(far_phone_->state(), PstnPhone::State::kConnected);
  EXPECT_EQ(gw_->calls_fallback_pstn(), 1u);
  EXPECT_EQ(gw_->calls_completed_voip(), 0u);

  // Voice relays across the translated circuits in both directions.
  phone_->start_voice(10);
  far_phone_->start_voice(10);
  net_->run_until_idle();
  EXPECT_EQ(phone_->voice_latency().count(), 10u);
  EXPECT_EQ(far_phone_->voice_latency().count(), 10u);

  // Clearing tears down the transit leg bookkeeping.
  phone_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(phone_->state(), PstnPhone::State::kIdle);
  EXPECT_EQ(far_phone_->state(), PstnPhone::State::kIdle);
}

TEST_F(GatewayTest, MediaConvertsBetweenRtpAndTrunkVoice) {
  term_->register_endpoint();
  net_->run_until_idle();
  phone_->place_call(Msisdn(440900000001ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(term_->state(), H323Terminal::State::kConnected);
  net_->trace().clear();
  phone_->start_voice(8);
  term_->start_voice(8);
  net_->run_until_idle();
  // PSTN side heard the terminal; terminal heard the phone.
  EXPECT_EQ(phone_->voice_latency().count(), 8u);
  EXPECT_EQ(term_->voice_frames_received(), 8u);
  // Conversion really happened: trunk frames on one side, RTP datagrams on
  // the other.
  EXPECT_GE(net_->trace().count("Trunk_Voice"), 16u);
  EXPECT_GE(net_->trace().count(FlowStep{"GW", "IP_Datagram", "Router"}),
            8u);
}

TEST_F(GatewayTest, VoipLegReleaseFromEitherSide) {
  term_->register_endpoint();
  net_->run_until_idle();
  phone_->place_call(Msisdn(440900000001ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(term_->state(), H323Terminal::State::kConnected);
  // H.323 side hangs up: ISUP REL flows to the phone.
  term_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(phone_->state(), PstnPhone::State::kIdle);
  EXPECT_EQ(term_->state(), H323Terminal::State::kRegistered);
  EXPECT_EQ(gk_->open_calls(), 0u);

  // And the reverse: PSTN side hangs up.
  phone_->place_call(Msisdn(440900000001ULL, 12));
  net_->run_until_idle();
  ASSERT_EQ(term_->state(), H323Terminal::State::kConnected);
  phone_->hangup();
  net_->run_until_idle();
  EXPECT_EQ(term_->state(), H323Terminal::State::kRegistered);
  EXPECT_EQ(phone_->state(), PstnPhone::State::kIdle);
  EXPECT_EQ(gk_->open_calls(), 0u);
}

TEST_F(GatewayTest, ConsecutiveCallsReuseGatewayCleanly) {
  term_->register_endpoint();
  net_->run_until_idle();
  for (int i = 0; i < 5; ++i) {
    bool connected = false;
    phone_->on_connected = [&] { connected = true; };
    phone_->place_call(Msisdn(440900000001ULL, 12));
    net_->run_until_idle();
    ASSERT_TRUE(connected) << "call " << i;
    phone_->hangup();
    net_->run_until_idle();
    ASSERT_EQ(phone_->state(), PstnPhone::State::kIdle);
    ASSERT_EQ(term_->state(), H323Terminal::State::kRegistered);
  }
  EXPECT_EQ(gw_->calls_completed_voip(), 5u);
  EXPECT_EQ(gk_->open_calls(), 0u);
  EXPECT_EQ(gk_->bandwidth_in_use_kbps(), 0u);
}

}  // namespace
}  // namespace vgprs
