// Fig. 9: inter-system handoff with the VMSC as anchor.  The circuit
// trunk between the VMSC and the target MSC is established by the standard
// GSM inter-system handoff procedure; the VMSC stays in the call path and
// keeps converting voice to VoIP.
#include <gtest/gtest.h>

#include "flow_assert.hpp"
#include "sim/fault.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class HandoffTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    HandoffParams params;
    params.target_is_vmsc = GetParam();
    s_ = build_handoff(params);
    s_->ms->power_on();
    s_->terminal->register_endpoint();
    s_->settle();
    ASSERT_EQ(s_->ms->state(), MobileStation::State::kIdle);
    // Establish a call MS -> terminal.
    s_->ms->dial(s_->terminal->state() == H323Terminal::State::kRegistered
                     ? make_subscriber(88, 1000).msisdn
                     : Msisdn{});
    s_->settle();
    ASSERT_EQ(s_->ms->state(), MobileStation::State::kConnected);
    s_->net.trace().clear();
  }

  void trigger_handoff() {
    s_->bsc1->initiate_handover(s_->ms->config().imsi, s_->ms->call_ref(),
                                CellId(202));
    s_->settle();
  }

  std::unique_ptr<HandoffScenario> s_;
};

TEST_P(HandoffTest, Fig9MessageFlow) {
  trigger_handoff();
  const char* target = GetParam() ? "VMSC-B" : "MSC-B";
  const TraceRecorder& trace = s_->net.trace();
  EXPECT_FLOW(s_->net, fig9_handoff_flow(target));
  EXPECT_EQ(trace.count(FlowStep{"BSC2", "A_Handover_Detect", target}), 1u);
  EXPECT_EQ(s_->ms->state(), MobileStation::State::kConnected);
}

TEST_P(HandoffTest, AnchorStaysInVoicePath) {
  trigger_handoff();
  s_->net.trace().clear();
  // Voice now flows MS -> BTS2 -> BSC2 -> target MSC -> E trunk -> anchor
  // VMSC -> vocoder -> GPRS tunnel -> terminal, and back.
  s_->ms->start_voice(10);
  s_->terminal->start_voice(10);
  s_->settle();
  EXPECT_EQ(s_->terminal->voice_frames_received(), 10u);
  EXPECT_EQ(s_->ms->voice_frames_received(), 10u);
  const TraceRecorder& trace = s_->net.trace();
  const char* target = GetParam() ? "VMSC-B" : "MSC-B";
  EXPECT_GE(trace.count(FlowStep{target, "E_Trunk_Voice", "VMSC"}), 10u);
  EXPECT_GE(trace.count(FlowStep{"VMSC", "E_Trunk_Voice", target}), 10u);
  // The anchor still emits the VoIP leg through the GPRS tunnel.
  EXPECT_GE(trace.count(FlowStep{"VMSC", "Gb_UnitData", "SGSN"}), 10u);
}

TEST_P(HandoffTest, CallReleaseAfterHandoff) {
  trigger_handoff();
  bool released = false;
  s_->ms->on_released = [&](CallRef) { released = true; };
  s_->ms->hangup();
  s_->settle();
  EXPECT_TRUE(released);
  EXPECT_EQ(s_->ms->state(), MobileStation::State::kIdle);
  EXPECT_EQ(s_->terminal->state(), H323Terminal::State::kRegistered);
  // Voice PDP context torn down; signaling context remains.
  EXPECT_EQ(s_->sgsn->pdp_context_count(), 1u);
}

TEST_P(HandoffTest, VoiceLatencyIncreasesAfterHandoff) {
  // Before handoff: collect a latency baseline.
  s_->ms->start_voice(10);
  s_->settle();
  double before = s_->terminal->voice_latency().mean();
  ASSERT_GT(before, 0.0);

  trigger_handoff();
  s_->ms->start_voice(10);
  s_->settle();
  double after = s_->terminal->voice_latency().percentile(0.9);
  // The E-interface trunk adds one-way latency; the anchor path is longer.
  EXPECT_GT(after, before);
}

TEST_P(HandoffTest, UnreachableTargetGuardKeepsCallOnServingCell) {
  // The MAP_Prepare_Handover request never reaches the target MSC.  The
  // anchor's handoff guard must abandon the attempt and leave the call on
  // the serving cell; before the guard existed, the context waited for a
  // MAP_Prepare_Handover_ack forever (a vgprs_verify deadlock finding).
  const char* target = GetParam() ? "VMSC-B" : "MSC-B";
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"MAP_Prepare_Handover", "VMSC", target, 1, 100},
       FaultKind::kDrop});
  s_->net.install_faults(std::move(sched));
  trigger_handoff();
  EXPECT_GE(s_->net.faults()->faults_applied(0), 1u);
  EXPECT_GE(s_->net.metrics().counter("VMSC/handoffs_failed"), 1);
  EXPECT_EQ(s_->ms->state(), MobileStation::State::kConnected);
  // The abandoned attempt left no handoff residue: voice still flows on
  // the original cell in both directions.
  s_->net.trace().clear();
  s_->ms->start_voice(5);
  s_->terminal->start_voice(5);
  s_->settle();
  EXPECT_EQ(s_->terminal->voice_frames_received(), 5u);
  EXPECT_EQ(s_->ms->voice_frames_received(), 5u);
}

INSTANTIATE_TEST_SUITE_P(AnchorToGsmAndVmsc, HandoffTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "TargetVmsc" : "TargetGsmMsc";
                         });

}  // namespace
}  // namespace vgprs
