// Unit tests for the discrete-event engine: time, event ordering, timers,
// link characteristics, tracing and statistics.
#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/proto.hpp"
#include "sim/stats.hpp"

namespace vgprs {
namespace {

struct PingInfo {
  std::uint32_t value = 0;
  void encode(ByteWriter& w) const { w.u32(value); }
  Status decode(ByteReader& r) {
    value = r.u32();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + std::to_string(value) + "}";
  }
};
using Ping = ProtoMessage<PingInfo, 0x7001, "Ping">;

/// Records arrivals; can echo back.
class Probe final : public Node {
 public:
  explicit Probe(std::string name, bool echo = false)
      : Node(std::move(name)), echo_(echo) {}

  void on_message(const Envelope& env) override {
    arrivals.push_back(now());
    values.push_back(dynamic_cast<const Ping&>(*env.msg).value);
    if (echo_) send(env.from, MessagePtr(env.msg->clone()));
  }
  void on_timer(TimerId, std::uint64_t cookie) override {
    timer_cookies.push_back(cookie);
  }

  std::vector<SimTime> arrivals;
  std::vector<std::uint32_t> values;
  std::vector<std::uint64_t> timer_cookies;

 private:
  bool echo_;
};

class SimTest : public ::testing::Test {
 protected:
  void SetUp() override { register_message<Ping>(); }
};

TEST_F(SimTest, DurationArithmetic) {
  EXPECT_EQ(SimDuration::millis(1.5).count_micros(), 1500);
  EXPECT_EQ(SimDuration::seconds(2).count_micros(), 2'000'000);
  EXPECT_EQ((SimDuration::millis(3) + SimDuration::millis(4)).as_millis(),
            7.0);
  SimTime t = SimTime::origin() + SimDuration::millis(10);
  EXPECT_EQ((t - SimTime::origin()).as_millis(), 10.0);
  EXPECT_LT(SimDuration::millis(1), SimDuration::millis(2));
}

TEST_F(SimTest, DeliveryHonorsLinkLatency) {
  Network net;
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  LinkProfile p;
  p.latency = SimDuration::millis(25);
  net.connect(a, b, p);
  net.send(a.id(), b.id(), std::make_shared<Ping>());
  net.run_until_idle();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].as_millis(), 25.0);
}

TEST_F(SimTest, ExtraDelayAddsProcessingTime) {
  Network net;
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  LinkProfile p;
  p.latency = SimDuration::millis(10);
  net.connect(a, b, p);
  net.send(a.id(), b.id(), std::make_shared<Ping>(),
           SimDuration::millis(5));
  net.run_until_idle();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].as_millis(), 15.0);
}

TEST_F(SimTest, FifoOrderingAtEqualTimestamps) {
  Network net;
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  net.connect(a, b, LinkProfile{});
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto ping = std::make_shared<Ping>();
    ping->value = i;
    net.send(a.id(), b.id(), std::move(ping));
  }
  net.run_until_idle();
  ASSERT_EQ(b.values.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(b.values[i], i);
}

TEST_F(SimTest, JitterStaysWithinBounds) {
  Network net(99);
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  LinkProfile p;
  p.latency = SimDuration::millis(10);
  p.jitter = SimDuration::millis(20);
  net.connect(a, b, p);
  for (int i = 0; i < 200; ++i) {
    net.send(a.id(), b.id(), std::make_shared<Ping>());
  }
  net.run_until_idle();
  ASSERT_EQ(b.arrivals.size(), 200u);
  double lo = 1e9;
  double hi = 0;
  for (auto t : b.arrivals) {
    lo = std::min(lo, t.as_millis());
    hi = std::max(hi, t.as_millis());
  }
  EXPECT_GE(lo, 10.0);
  EXPECT_LT(hi, 30.0);
  EXPECT_GT(hi - lo, 5.0);  // jitter actually applied
}

TEST_F(SimTest, LossDropsMessages) {
  Network net(7);
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  LinkProfile p;
  p.loss_probability = 0.5;
  net.connect(a, b, p);
  for (int i = 0; i < 1000; ++i) {
    net.send(a.id(), b.id(), std::make_shared<Ping>());
  }
  net.run_until_idle();
  EXPECT_GT(b.arrivals.size(), 350u);
  EXPECT_LT(b.arrivals.size(), 650u);
  EXPECT_EQ(net.stats().messages_dropped + net.stats().messages_delivered,
            1000u);
}

TEST_F(SimTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Network net(seed);
    auto& a = net.add<Probe>("a");
    auto& b = net.add<Probe>("b", /*echo=*/true);
    LinkProfile p;
    p.latency = SimDuration::millis(3);
    p.jitter = SimDuration::millis(9);
    net.connect(a, b, p);
    for (int i = 0; i < 20; ++i) {
      net.send(a.id(), b.id(), std::make_shared<Ping>());
    }
    net.run_until_idle();
    std::vector<std::int64_t> stamps;
    for (auto t : a.arrivals) stamps.push_back(t.count_micros());
    return stamps;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST_F(SimTest, TimersFireAndCancel) {
  Network net;
  auto& a = net.add<Probe>("a");
  net.set_timer(a.id(), SimDuration::millis(5), 1);
  TimerId cancelled = net.set_timer(a.id(), SimDuration::millis(6), 2);
  net.set_timer(a.id(), SimDuration::millis(7), 3);
  net.cancel_timer(cancelled);
  net.run_until_idle();
  ASSERT_EQ(a.timer_cookies.size(), 2u);
  EXPECT_EQ(a.timer_cookies[0], 1u);
  EXPECT_EQ(a.timer_cookies[1], 3u);
}

TEST_F(SimTest, CancelAfterFireIsNoOp) {
  Network net;
  auto& a = net.add<Probe>("a");
  TimerId fired = net.set_timer(a.id(), SimDuration::millis(1), 1);
  net.run_until_idle();
  ASSERT_EQ(a.timer_cookies.size(), 1u);
  // The id is stale once the timer fired; cancelling must not disturb
  // anything — even twice, even after the slot is recycled.
  net.cancel_timer(fired);
  net.cancel_timer(fired);
  net.set_timer(a.id(), SimDuration::millis(1), 2);
  net.cancel_timer(fired);
  net.run_until_idle();
  ASSERT_EQ(a.timer_cookies.size(), 2u);
  EXPECT_EQ(a.timer_cookies[1], 2u);
}

TEST_F(SimTest, StaleCancelDoesNotKillRecycledSlot) {
  Network net;
  auto& a = net.add<Probe>("a");
  TimerId t1 = net.set_timer(a.id(), SimDuration::millis(5), 1);
  net.cancel_timer(t1);  // frees the slot immediately
  // The next timer recycles the slot under a new generation; the stale id
  // must not be able to cancel it.
  net.set_timer(a.id(), SimDuration::millis(5), 2);
  net.cancel_timer(t1);
  net.run_until_idle();
  ASSERT_EQ(a.timer_cookies.size(), 1u);
  EXPECT_EQ(a.timer_cookies[0], 2u);
}

TEST_F(SimTest, ManyCancelledTimersDoNotAccumulateState) {
  Network net;
  auto& a = net.add<Probe>("a");
  // Guard-timer churn: arm + cancel in a loop.  With generation-checked
  // slots the bookkeeping stays O(live timers), not O(cancellations).
  for (int i = 0; i < 10'000; ++i) {
    net.cancel_timer(net.set_timer(a.id(), SimDuration::seconds(30), 9));
  }
  net.set_timer(a.id(), SimDuration::millis(1), 1);
  net.run_until_idle();
  ASSERT_EQ(a.timer_cookies.size(), 1u);
  EXPECT_EQ(a.timer_cookies[0], 1u);
}

TEST_F(SimTest, DisabledTraceRecordsNothingButDelivers) {
  Network net;
  net.trace().set_mode(TraceMode::kDisabled);
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  net.connect(a, b, LinkProfile{});
  for (int i = 0; i < 10; ++i) {
    net.send(a.id(), b.id(), std::make_shared<Ping>());
  }
  net.run_until_idle();
  EXPECT_EQ(b.arrivals.size(), 10u);
  EXPECT_FALSE(net.trace().enabled());
  EXPECT_EQ(net.trace().size(), 0u);
}

TEST_F(SimTest, RingTraceKeepsLastEntriesInOrder) {
  Network net;
  net.trace().set_mode(TraceMode::kRing, 4);
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  LinkProfile p;
  p.latency = SimDuration::millis(1);
  net.connect(a, b, p);
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto ping = std::make_shared<Ping>();
    ping->value = i;
    net.send(a.id(), b.id(), std::move(ping), SimDuration::millis(i));
  }
  net.run_until_idle();
  ASSERT_EQ(net.trace().size(), 4u);
  // for_each linearizes the ring oldest-first: deliveries 6..9 remain.
  std::vector<std::string> summaries;
  net.trace().for_each(
      [&](const TraceEntry& e) { summaries.push_back(e.summary); });
  ASSERT_EQ(summaries.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(summaries[i], "Ping {" + std::to_string(6 + i) + "}");
  }
}

TEST_F(SimTest, NodeLookupByNameIsTransparent) {
  Network net;
  auto& a = net.add<Probe>("alpha");
  // Lookup through string_view / char* — no std::string temporaries.
  std::string_view sv = "alpha";
  EXPECT_EQ(net.node_by_name(sv), &a);
  EXPECT_EQ(net.node_by_name("alpha"), &a);
  EXPECT_EQ(net.node_by_name("beta"), nullptr);
  EXPECT_EQ(net.find<Probe>("alpha"), &a);
}

TEST_F(SimTest, RunUntilAdvancesClock) {
  Network net;
  net.add<Probe>("a");
  net.run_until(SimTime::from_micros(500'000));
  EXPECT_EQ(net.now().as_millis(), 500.0);
}

TEST_F(SimTest, SerializationExercisedOnLinks) {
  Network net;
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  net.connect(a, b, LinkProfile{});
  auto ping = std::make_shared<Ping>();
  ping->value = 0xCAFE;
  net.send(a.id(), b.id(), std::move(ping));
  net.run_until_idle();
  ASSERT_EQ(b.values.size(), 1u);
  EXPECT_EQ(b.values[0], 0xCAFEu);  // survived encode->wire->decode
  EXPECT_GT(net.stats().bytes_on_wire, 0u);
}

TEST_F(SimTest, SendWithoutLinkThrows) {
  Network net;
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  EXPECT_THROW(net.send(a.id(), b.id(), std::make_shared<Ping>()),
               std::logic_error);
}

TEST_F(SimTest, DuplicateNodeNameRejected) {
  Network net;
  net.add<Probe>("a");
  EXPECT_THROW(net.add<Probe>("a"), std::invalid_argument);
}

TEST_F(SimTest, NeighborsEnumeratesLinks) {
  Network net;
  auto& a = net.add<Probe>("a");
  auto& b = net.add<Probe>("b");
  auto& c = net.add<Probe>("c");
  net.connect(a, b, LinkProfile{});
  net.connect(a, c, LinkProfile{});
  auto n = net.neighbors(a.id());
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(net.neighbors(b.id()).size(), 1u);
}

TEST_F(SimTest, TraceMatcherSemantics) {
  TraceRecorder trace;
  auto entry = [&](const char* from, const char* msg, const char* to) {
    trace.record(TraceEntry{SimTime::origin(), from, to, msg, msg});
  };
  entry("a", "X", "b");
  entry("b", "Y", "c");
  entry("a", "X", "b");
  entry("c", "Z", "a");

  EXPECT_EQ(trace.count("X"), 2u);
  EXPECT_EQ(trace.count(FlowStep{"a", "X", "b"}), 2u);
  EXPECT_EQ(trace.count(FlowStep{"", "X", ""}), 2u);

  EXPECT_TRUE(trace.contains_flow({{"a", "X", "b"}, {"c", "Z", "a"}}));
  EXPECT_TRUE(trace.contains_flow({{"", "Y", ""}, {"", "X", ""}}));
  std::size_t failed = 0;
  EXPECT_FALSE(trace.contains_flow({{"c", "Z", "a"}, {"b", "Y", "c"}},
                                   &failed));
  EXPECT_EQ(failed, 1u);
}

TEST_F(SimTest, HistogramStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
  EXPECT_NEAR(h.stddev(), 29.0115, 0.01);
}

TEST_F(SimTest, CounterSet) {
  CounterSet c;
  c.bump("x");
  c.bump("x", 2);
  c.bump("y");
  EXPECT_EQ(c.get("x"), 3);
  EXPECT_EQ(c.get("y"), 1);
  EXPECT_EQ(c.get("z"), 0);
}

}  // namespace
}  // namespace vgprs
