// Registry-driven codec robustness: every registered wire type must decode
// truncated and bit-flipped buffers gracefully — a Status error or a clean
// accept, never a crash.  This is the in-suite twin of vgprs_lint's codec
// sweep; running it under the asan-ubsan preset upgrades "no crash" to
// "no undefined behaviour".
#include <gtest/gtest.h>

#include "sim/message.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

class CodecRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { register_all_messages(); }

  static const MessageRegistry& reg() { return MessageRegistry::instance(); }
};

TEST_F(CodecRobustnessTest, RegistryIsPopulated) {
  // The paper's four protocol families plus transport: a shrinking registry
  // would silently skip the sweeps below.
  EXPECT_GE(reg().types().size(), 150u);
  EXPECT_TRUE(reg().collisions().empty());
}

TEST_F(CodecRobustnessTest, EveryTypeRoundTripsItsDefaultEncoding) {
  for (std::uint16_t type : reg().types()) {
    std::unique_ptr<Message> msg = reg().create(type);
    ASSERT_NE(msg, nullptr) << reg().name_of(type);
    std::vector<std::uint8_t> wire = msg->encode();
    auto decoded = reg().decode(wire);
    ASSERT_TRUE(decoded.ok())
        << reg().name_of(type) << ": " << decoded.error().to_string();
    EXPECT_EQ(decoded.value()->encode(), wire) << reg().name_of(type);
  }
}

TEST_F(CodecRobustnessTest, TruncatedBuffersDecodeToStatusErrors) {
  for (std::uint16_t type : reg().types()) {
    std::vector<std::uint8_t> wire = reg().create(type)->encode();
    for (std::size_t len = 0; len < wire.size(); ++len) {
      auto decoded = reg().decode(std::span(wire.data(), len));
      if (!decoded.ok()) {
        EXPECT_NE(decoded.error().code, ErrorCode::kNone);
        continue;
      }
      // A shorter buffer that still decodes must be self-consistent.
      EXPECT_EQ(decoded.value()->encode(),
                std::vector<std::uint8_t>(wire.begin(),
                                          wire.begin() +
                                              static_cast<long>(len)))
          << reg().name_of(type) << " truncated to " << len;
    }
  }
}

TEST_F(CodecRobustnessTest, BitFlippedBuffersNeverCrashTheDecoder) {
  for (std::uint16_t type : reg().types()) {
    std::vector<std::uint8_t> wire = reg().create(type)->encode();
    // Flip every bit of the payload (the type header is exercised by the
    // unknown-type test below).
    for (std::size_t pos = 2; pos < wire.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = wire;
        mutated[pos] =
            static_cast<std::uint8_t>(mutated[pos] ^ (1u << bit));
        auto decoded = reg().decode(mutated);
        if (decoded.ok()) {
          EXPECT_EQ(decoded.value()->encode(), mutated)
              << reg().name_of(type) << " byte " << pos << " bit " << bit;
        } else {
          EXPECT_NE(decoded.error().code, ErrorCode::kNone);
        }
      }
    }
  }
}

TEST_F(CodecRobustnessTest, UnknownWireTypesAreRejected) {
  for (std::uint16_t type : {0x0000, 0x7FFF, 0xFFEE}) {
    ASSERT_FALSE(reg().known(static_cast<std::uint16_t>(type)));
    std::vector<std::uint8_t> buf{static_cast<std::uint8_t>(type >> 8),
                                  static_cast<std::uint8_t>(type & 0xFF),
                                  0xAB, 0xCD};
    auto decoded = reg().decode(buf);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kDecodeUnknownType);
  }
}

TEST_F(CodecRobustnessTest, TrailingBytesAreRejected) {
  for (std::uint16_t type : reg().types()) {
    std::vector<std::uint8_t> wire = reg().create(type)->encode();
    wire.push_back(0x5A);
    auto decoded = reg().decode(wire);
    // Most payloads have fixed layouts, so one extra byte must be refused;
    // length-prefixed tails may legitimately absorb it only if the result
    // re-encodes to the same bytes — which a trailing garbage byte cannot.
    ASSERT_FALSE(decoded.ok()) << reg().name_of(type);
  }
}

}  // namespace
}  // namespace vgprs
