// vgprs.btrace.v1 packed binary capture: live-vs-decoded equality (the
// decoder must reconstruct the exact trace / span / metric artifacts a live
// run exports), ring eviction accounting, per-shard split files, fault
// records, and robustness of the decoder against truncated or corrupted
// input (clean diagnostics, never a crash).
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "sim/btrace.hpp"
#include "sim/export.hpp"
#include "sim/fault.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

Result<DecodedCapture> decode_str(const std::string& s) {
  return decode_capture(as_bytes(s));
}

void expect_traces_equal(const std::vector<TraceEntry>& a,
                         const std::vector<TraceEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "entry " << i;
    EXPECT_EQ(a[i].from, b[i].from) << "entry " << i;
    EXPECT_EQ(a[i].to, b[i].to) << "entry " << i;
    EXPECT_EQ(a[i].message, b[i].message) << "entry " << i;
    EXPECT_EQ(a[i].summary, b[i].summary) << "entry " << i;
  }
}

void expect_spans_equal(const std::vector<Span>& a, const std::vector<Span>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "span " << i;
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "span " << i;
    EXPECT_EQ(a[i].correlation, b[i].correlation) << "span " << i;
    EXPECT_EQ(a[i].opened, b[i].opened) << "span " << i;
    EXPECT_EQ(a[i].closed, b[i].closed) << "span " << i;
    EXPECT_EQ(a[i].hops, b[i].hops) << "span " << i;
    EXPECT_EQ(a[i].opener, b[i].opener) << "span " << i;
  }
}

struct CaptureRun {
  std::string bytes;  // the capture file image
  std::vector<TraceEntry> live_trace;
  std::vector<Span> live_spans;
  MetricsSnapshot snapshot;
  std::uint64_t events = 0;
  std::int64_t sim_time_us = 0;
};

/// Registration + `calls` call cycles with capture enabled, everything a
/// live run would export collected alongside the capture image.
CaptureRun run_capture_scenario(bool sharded, unsigned workers,
                                std::size_t ring_bytes = 0,
                                std::uint32_t calls = 3) {
  VgprsParams params;
  params.sharded = sharded;
  params.workers = workers;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->net.enable_capture(CaptureConfig{ring_bytes});
  std::ostringstream os;
  write_btrace_file_info(os, "test", params.seed, calls);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::uint64_t events = s->settle();
  Msisdn callee = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < calls; ++i) {
    s->terminals[0]->place_call(callee);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  CaptureRun out;
  out.snapshot = s->net.metrics_snapshot();
  out.sim_time_us = s->net.now().count_micros();
  s->net.write_capture_segment(os, "vgprs", events, out.snapshot);
  out.bytes = os.str();
  s->net.trace().for_each(
      [&](const TraceEntry& e) { out.live_trace.push_back(e); });
  out.live_spans = s->net.spans().spans();
  out.events = events;
  return out;
}

TEST(BtraceRoundTrip, SequentialCaptureDecodesToLiveArtifacts) {
  register_all_messages();
  CaptureRun run = run_capture_scenario(false, 1);
  Result<DecodedCapture> decoded = decode_str(run.bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const DecodedCapture& cap = decoded.value();
  EXPECT_EQ(cap.info.scenario, "test");
  EXPECT_EQ(cap.info.seed, 1u);
  EXPECT_EQ(cap.info.iters, 3u);
  ASSERT_EQ(cap.runs.size(), 1u);
  const DecodedRun& r = cap.runs.front();
  EXPECT_EQ(r.system, "vgprs");
  EXPECT_EQ(r.events, run.events);
  EXPECT_DOUBLE_EQ(r.sim_time_ms,
                   static_cast<double>(run.sim_time_us) / 1000.0);
  expect_traces_equal(r.trace, run.live_trace);
  expect_spans_equal(r.spans, run.live_spans);
  EXPECT_EQ(r.metrics.counters, run.snapshot.counters);
  EXPECT_EQ(r.metrics.gauges, run.snapshot.gauges);
  // The regenerated trace must serialize byte-identically too.
  std::ostringstream live_jsonl;
  std::ostringstream dec_jsonl;
  write_trace_jsonl(live_jsonl, run.live_trace);
  write_trace_jsonl(dec_jsonl, r.trace);
  EXPECT_EQ(live_jsonl.str(), dec_jsonl.str());
}

TEST(BtraceRoundTrip, ShardedCaptureMatchesSequentialDecode) {
  register_all_messages();
  CaptureRun seq = run_capture_scenario(false, 1);
  CaptureRun sharded = run_capture_scenario(true, 8);
  Result<DecodedCapture> a = decode_str(seq.bytes);
  Result<DecodedCapture> b = decode_str(sharded.bytes);
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  ASSERT_EQ(b.value().runs.size(), 1u);
  // The sharded engine is deterministic and thread-count-invariant, so the
  // decoded sharded capture must equal the sequential one entry for entry.
  expect_traces_equal(b.value().runs.front().trace,
                      a.value().runs.front().trace);
  expect_spans_equal(b.value().runs.front().spans,
                     a.value().runs.front().spans);
  EXPECT_EQ(b.value().runs.front().metrics.counters,
            a.value().runs.front().metrics.counters);
  EXPECT_GT(b.value().runs.front().shards.size(), 1u);
}

TEST(BtraceRoundTrip, RingEvictionKeepsNewestRecordsAndCountsDrops) {
  register_all_messages();
  CaptureRun full = run_capture_scenario(false, 1);
  // A ring far smaller than the full capture: old chunks must be evicted.
  CaptureRun ring = run_capture_scenario(false, 1, 4 * 1024);
  Result<DecodedCapture> decoded = decode_str(ring.bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const DecodedRun& r = decoded.value().runs.front();
  ASSERT_EQ(r.shards.size(), 1u);
  EXPECT_GT(r.shards.front().dropped_records, 0u);
  EXPECT_GT(r.shards.front().dropped_bytes, 0u);
  ASSERT_FALSE(r.trace.empty());
  ASSERT_LT(r.trace.size(), full.live_trace.size());
  // What survives is exactly the newest suffix of the full trace.
  const std::size_t skip = full.live_trace.size() - r.trace.size();
  std::vector<TraceEntry> tail(full.live_trace.begin() +
                                   static_cast<std::ptrdiff_t>(skip),
                               full.live_trace.end());
  expect_traces_equal(r.trace, tail);
}

TEST(BtraceRoundTrip, FaultAnnotationsRoundTrip) {
  register_all_messages();
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->net.enable_capture({});
  FaultSchedule sched;
  sched.message_faults.push_back(
      {MessagePredicate{"GPRS_Attach_Request", "", "", 1, 1},
       FaultKind::kDrop});
  s->net.install_faults(std::move(sched));
  std::ostringstream os;
  write_btrace_file_info(os, "faults", params.seed, 1);
  s->ms[0]->power_on();
  std::uint64_t events = s->settle();
  MetricsSnapshot snap = s->net.metrics_snapshot();
  s->net.write_capture_segment(os, "vgprs", events, snap);
  std::vector<TraceEntry> live;
  s->net.trace().for_each([&](const TraceEntry& e) { live.push_back(e); });
  Result<DecodedCapture> decoded = decode_str(os.str());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  expect_traces_equal(decoded.value().runs.front().trace, live);
  // The injected drop's annotation must be among the decoded entries.
  bool saw_fault = false;
  for (const TraceEntry& e : decoded.value().runs.front().trace) {
    if (e.message.find("fault.drop") != std::string::npos) saw_fault = true;
  }
  EXPECT_TRUE(saw_fault) << "fault annotation lost in capture round-trip";
}

TEST(BtraceRoundTrip, SplitShardFilesDecodeLikeSingleFile) {
  register_all_messages();
  VgprsParams params;
  params.sharded = true;
  params.workers = 4;
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->net.enable_capture({});
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::uint64_t events = s->settle();
  MetricsSnapshot snap = s->net.metrics_snapshot();
  const std::size_t n = s->net.num_shards();
  ASSERT_GT(n, 1u);
  std::vector<std::ostringstream> streams(n);
  std::vector<std::ostream*> outs;
  for (auto& os : streams) {
    write_btrace_file_info(os, "split", params.seed, 1);
    outs.push_back(&os);
  }
  s->net.write_capture_segment_files(outs, "vgprs", events, snap);

  std::vector<std::vector<std::uint8_t>> files;
  for (auto& os : streams) {
    const std::string bytes = os.str();
    files.emplace_back(bytes.begin(), bytes.end());
  }
  Result<DecodedCapture> split = decode_capture_files(files);
  ASSERT_TRUE(split.ok()) << split.error().to_string();

  std::vector<TraceEntry> live;
  s->net.trace().for_each([&](const TraceEntry& e) { live.push_back(e); });
  expect_traces_equal(split.value().runs.front().trace, live);
  EXPECT_EQ(split.value().runs.front().shards.size(), n);
}

// --- decoder robustness -----------------------------------------------------

TEST(BtraceRobustness, TruncationAtAnyLengthFailsCleanly) {
  register_all_messages();
  CaptureRun run = run_capture_scenario(false, 1, 0, 1);
  const std::string& full = run.bytes;
  Result<DecodedCapture> whole = decode_str(full);
  ASSERT_TRUE(whole.ok());
  // Every strict prefix must either decode (ends exactly on a record
  // boundary before the open segment) or fail with a diagnostic — and a
  // prefix cut mid-segment must name the problem, never crash.
  for (std::size_t len = 0; len < full.size();
       len += (len < 256 ? 1 : 211)) {
    Result<DecodedCapture> r = decode_str(full.substr(0, len));
    if (!r.ok()) {
      EXPECT_FALSE(r.error().message.empty()) << "silent failure at " << len;
    }
  }
}

TEST(BtraceRobustness, ByteFlipsNeverCrashTheDecoder) {
  register_all_messages();
  CaptureRun run = run_capture_scenario(false, 1, 0, 1);
  std::string bytes = run.bytes;
  // Flip a byte, decode, restore; stride keeps the sweep fast while still
  // hitting headers, tables, keys, wire images, and metric payloads.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 13) {
    const char orig = bytes[pos];
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
    Result<DecodedCapture> r = decode_str(bytes);
    if (!r.ok()) {
      EXPECT_FALSE(r.error().message.empty()) << "silent failure at " << pos;
    }
    bytes[pos] = orig;
  }
}

TEST(BtraceRobustness, UnknownRecordKindIsDiagnosed) {
  ByteWriter p;
  p.str("x");
  p.u64(1);
  p.u32(1);
  std::vector<std::uint8_t> file;
  append_btrace_record(file, BtraceRecord::kFileInfo, p.data());
  append_btrace_record(file, static_cast<BtraceRecord>(0x7F), {});
  Result<DecodedCapture> r = decode_capture(file);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown record kind"), std::string::npos)
      << r.error().message;
}

TEST(BtraceRobustness, MissingFileInfoIsDiagnosed) {
  std::vector<std::uint8_t> empty;
  Result<DecodedCapture> r = decode_capture(empty);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("kFileInfo"), std::string::npos);
}

TEST(BtraceRobustness, OversizedRecordLengthIsDiagnosed) {
  std::vector<std::uint8_t> file = {kBtraceMagic, kBtraceVersion, 0x01, 0,
                                    0xFF, 0xFF, 0xFF, 0xFF};
  Result<DecodedCapture> r = decode_capture(file);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("exceeds"), std::string::npos)
      << r.error().message;
}

}  // namespace
}  // namespace vgprs
