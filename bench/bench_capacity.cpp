// CAP — engineering extension: wall-clock capacity of the simulator and of
// the VMSC's procedures (registrations and calls per second of host CPU),
// plus codec microbenchmarks.  Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace vgprs {
namespace {

void BM_EventThroughput(benchmark::State& state) {
  register_all_messages();
  struct Echo final : public Node {
    using Node::Node;
    NodeId peer;
    std::int64_t remaining = 0;
    void on_message(const Envelope& env) override {
      if (remaining-- > 0) send(peer, MessagePtr(env.msg->clone()));
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    Network net;
    auto& a = net.add<Echo>("a");
    auto& b = net.add<Echo>("b");
    net.connect(a, b, LinkProfile{});
    a.peer = b.id();
    b.peer = a.id();
    a.remaining = b.remaining = state.range(0) / 2;
    auto ping = std::make_shared<UmPagingRequest>();
    state.ResumeTiming();
    net.send(a.id(), b.id(), ping);
    net.run_until_idle();
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(net.stats().messages_delivered),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_EventThroughput)->Arg(10000);

void BM_VgprsRegistration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    VgprsParams params;
    params.num_ms = n;
    auto s = build_vgprs(params);
    for (auto* ms : s->ms) ms->power_on();
    s->settle();
    if (s->vmsc->ready_count() != n) state.SkipWithError("registration");
    state.counters["registrations/s"] = benchmark::Counter(
        static_cast<double>(n),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_VgprsRegistration)->Arg(1)->Arg(16)->Arg(64);

void BM_VgprsCallCycle(benchmark::State& state) {
  VgprsParams params;
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  Msisdn callee = make_subscriber(88, 1000).msisdn;
  std::int64_t calls = 0;
  for (auto _ : state) {
    s->ms[0]->dial(callee);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    ++calls;
    s->net.trace().clear();  // keep memory flat
  }
  state.counters["calls/s"] = benchmark::Counter(
      static_cast<double>(calls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VgprsCallCycle);

void BM_CodecRoundTrip(benchmark::State& state) {
  register_all_messages();
  UmSetup msg;
  msg.imsi = Imsi(466920000000001ULL, 15);
  msg.call_ref = CallRef(42);
  msg.calling = Msisdn(880900000001ULL, 12);
  msg.called = Msisdn(880900001000ULL, 12);
  for (auto _ : state) {
    auto wire = msg.encode();
    auto decoded = MessageRegistry::instance().decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecRoundTrip);

void BM_NestedTunnelEncapsulation(benchmark::State& state) {
  register_all_messages();
  RasArq arq;
  arq.called = Msisdn(880900000001ULL, 12);
  for (auto _ : state) {
    auto dgram = make_ip_datagram(IpAddress(10, 1, 0, 1),
                                  IpAddress(192, 168, 1, 1), arq);
    GtpPdu pdu;
    pdu.teid = TunnelId(1);
    pdu.payload = dgram->encode();
    GbUnitData frame;
    frame.imsi = Imsi(466920000000001ULL, 15);
    frame.payload = pdu.encode();
    auto wire = frame.encode();
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedTunnelEncapsulation);

// Ablation for DESIGN.md decision #1 (wire-serialize every link): how much
// host CPU the byte-level codecs cost relative to pointer-passing.
void BM_RegistrationSerializationAblation(benchmark::State& state) {
  const bool serialize = state.range(0) != 0;
  for (auto _ : state) {
    VgprsParams params;
    params.num_ms = 16;
    auto s = build_vgprs(params);
    s->net.set_serialize_links(serialize);
    for (auto* ms : s->ms) ms->power_on();
    s->settle();
    if (s->vmsc->ready_count() != 16) state.SkipWithError("registration");
  }
  state.SetLabel(serialize ? "wire-serialized links"
                           : "pointer-passing links");
}
BENCHMARK(BM_RegistrationSerializationAblation)->Arg(1)->Arg(0);

void BM_TrombSetup(benchmark::State& state) {
  const bool vg = state.range(0) != 0;
  for (auto _ : state) {
    TrombParams params;
    params.use_vgprs = vg;
    auto s = build_tromboning(params);
    s->roamer->power_on();
    s->settle();
    s->caller->place_call(s->roamer_id.msisdn);
    s->settle();
    benchmark::DoNotOptimize(s->international_trunks());
  }
}
BENCHMARK(BM_TrombSetup)->Arg(0)->Arg(1);

}  // namespace
}  // namespace vgprs

BENCHMARK_MAIN();
