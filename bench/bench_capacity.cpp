// CAP — engineering extension: wall-clock capacity of the simulator and of
// the VMSC's procedures (registrations and calls per second of host CPU),
// plus codec microbenchmarks.  Uses google-benchmark.
//
// Capacity runs disable tracing (TraceMode::kDisabled): the numbers measure
// the engine and the procedures, not the trace-string formatter, and memory
// stays flat without manual trace clearing.
//
// `--json <path>` additionally writes the shared vgprs.bench.v1 summary
// (events/s, registrations/s, calls/s, codec ns/op) for CI perf tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/export.hpp"

namespace vgprs {
namespace {

void BM_EventThroughput(benchmark::State& state) {
  register_all_messages();
  struct Echo final : public Node {
    using Node::Node;
    NodeId peer;
    std::int64_t remaining = 0;
    void on_message(const Envelope& env) override {
      if (remaining-- > 0) send(peer, MessagePtr(env.msg->clone()));
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    Network net;
    net.trace().set_mode(TraceMode::kDisabled);
    auto& a = net.add<Echo>("a");
    auto& b = net.add<Echo>("b");
    net.connect(a, b, LinkProfile{});
    a.peer = b.id();
    b.peer = a.id();
    a.remaining = b.remaining = state.range(0) / 2;
    auto ping = std::make_shared<UmPagingRequest>();
    state.ResumeTiming();
    net.send(a.id(), b.id(), ping);
    net.run_until_idle();
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(net.stats().messages_delivered),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_EventThroughput)->Arg(10000);

void BM_VgprsRegistration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    VgprsParams params;
    params.num_ms = n;
    auto s = build_vgprs(params);
    s->net.trace().set_mode(TraceMode::kDisabled);
    for (auto* ms : s->ms) ms->power_on();
    s->settle();
    if (s->vmsc->ready_count() != n) state.SkipWithError("registration");
    state.counters["registrations/s"] = benchmark::Counter(
        static_cast<double>(n),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_VgprsRegistration)->Arg(1)->Arg(16)->Arg(64);

// Arg(0) = bare, Arg(1) = with span tracking on — the pair quantifies the
// pay-for-use claim of the observability layer.
void BM_VgprsCallCycle(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  VgprsParams params;
  auto s = build_vgprs(params);
  s->net.trace().set_mode(TraceMode::kDisabled);
  s->net.spans().set_enabled(instrumented);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  Msisdn callee = make_subscriber(88, 1000).msisdn;
  std::int64_t calls = 0;
  for (auto _ : state) {
    s->ms[0]->dial(callee);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    ++calls;
    // Spans accumulate; keep memory flat on the instrumented variant.
    if (instrumented && calls % 256 == 0) s->net.spans().clear();
  }
  state.counters["calls/s"] = benchmark::Counter(
      static_cast<double>(calls), benchmark::Counter::kIsRate);
  state.SetLabel(instrumented ? "spans on" : "spans off");
}
BENCHMARK(BM_VgprsCallCycle)->Arg(0)->Arg(1);

// The tentpole's headline number: one metropolitan-scale scenario (16
// cells under a single VMSC) executed by the sharded engine.  range(0) =
// subscribers, range(1) = worker threads; the 1-worker rows are the
// scaling baseline (same shard layout, same event order — only the thread
// count changes, so the ratio is pure engine speedup).  Registration is
// untimed setup; each iteration is a wave of simultaneous cross-cell call
// cycles, which keeps every shard seam (Abis, A, Gn, Gi, IP) busy.  The
// wave is capped at a fixed pair count strided across the population:
// every terminating leg pages the whole destination cell (n/16 MSs), so
// an uncapped wave at 100k subscribers would enqueue ~300M simultaneous
// paging events (~15 GB of heap) — the cap bounds peak in-flight memory
// while the per-event work stays identical.
void BM_ShardedCallMix(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto workers = static_cast<unsigned>(state.range(1));
  // The million-subscriber row spreads the population over 64 cells and
  // trims the wave: a terminating leg pages its whole destination cell
  // (n / num_cells MSs), so holding 16 cells / 2048 pairs at 1M would put
  // ~32M simultaneous paging events in flight.  64 cells x 256 pairs keeps
  // the peak at ~4M events while per-event work is unchanged.
  const bool million = n >= 1'000'000;
  VgprsParams params;
  params.num_ms = n;
  params.num_cells = million ? 64 : 16;
  params.bsc_channels = 8192;
  params.seed = 11;
  params.sharded = true;
  params.workers = workers;
  auto s = build_vgprs(params);
  s->net.trace().set_mode(TraceMode::kDisabled);
  const bool dbg = std::getenv("VGPRS_SHARD_DEBUG") != nullptr;
  if (dbg) s->net.enable_shard_stats(true);
  auto shard_agg = [&] {
    std::map<std::string, double> agg;
    for (const auto& [k, v] : s->net.metrics().counters()) {
      if (k.rfind("shard/", 0) != 0) continue;
      agg[k.substr(k.rfind('/') + 1)] += static_cast<double>(v);
    }
    return agg;
  };
  // Power on in waves so the per-BSC SDCCH pool (8192) never saturates.
  const std::size_t wave = 16u * 4096u;
  for (std::size_t base = 0; base < s->ms.size(); base += wave) {
    const std::size_t end = std::min(s->ms.size(), base + wave);
    for (std::size_t i = base; i < end; ++i) s->ms[i]->power_on();
    s->settle();
  }
  if (s->vmsc->ready_count() != n) {
    state.SkipWithError("registration incomplete");
    return;
  }
  // MSs are round-robin over the 16 cells, so adjacent indices sit in
  // adjacent cells: pairing (2p, 2p+1) makes every call cross-cell (and,
  // under the shard plan, cross-shard) while the cap keeps the wave's
  // paging fan-out bounded.
  const std::size_t pairs =
      std::min<std::size_t>(s->ms.size() / 2, million ? 256 : 2048);
  std::uint64_t delivered = 0;
  std::int64_t calls = 0;
  const std::map<std::string, double> before_agg = shard_agg();
  for (auto _ : state) {
    const std::uint64_t before = s->net.stats().messages_delivered;
    for (std::size_t p = 0; p < pairs; ++p) {
      s->ms[2 * p]->dial(s->ms[2 * p + 1]->config().msisdn);
    }
    s->settle();
    for (std::size_t p = 0; p < pairs; ++p) {
      s->ms[2 * p]->hangup();
    }
    s->settle();
    delivered += s->net.stats().messages_delivered - before;
    calls += static_cast<std::int64_t>(pairs);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
  state.counters["calls/s"] = benchmark::Counter(
      static_cast<double>(calls), benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(s->net.num_shards()) + " shards");
  if (dbg) {
    std::map<std::string, double> agg = shard_agg();
    std::string line = "[shard-debug]";
    for (auto& [k, v] : agg) {
      auto it = before_agg.find(k);
      if (it != before_agg.end()) v -= it->second;
      line += " " + k + "=" + std::to_string(static_cast<std::int64_t>(v));
    }
    fprintf(stderr, "%s\n", line.c_str());
  }
}
BENCHMARK(BM_ShardedCallMix)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 8})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 8})
    ->Args({1000000, 1})
    ->Args({1000000, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Capture-overhead ablation for the binary trace format: the same 8-worker
// call mix as BM_ShardedCallMix, with range(1) selecting what records each
// delivery.  0 = nothing (kDisabled baseline), 1 = full tracing + JSONL
// formatting per wave (the pre-btrace way to keep a complete record),
// 2 = binary ring capture (packed integer stores, no formatting).  The
// events/s ratio of rows 2 and 0 is the acceptance number: binary capture
// must cost <= 10% at the 10k-subscriber mix.
void BM_CaptureOverhead(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  VgprsParams params;
  params.num_ms = n;
  params.num_cells = 16;
  params.bsc_channels = 8192;
  params.seed = 11;
  params.sharded = true;
  params.workers = 8;
  auto s = build_vgprs(params);
  s->net.trace().set_mode(mode == 1 ? TraceMode::kFull
                                    : TraceMode::kDisabled);
  if (mode == 2) {
    CaptureConfig cfg;
    cfg.ring_bytes_per_shard = 1u << 20;  // 1 MiB/shard, overwrite-oldest
    s->net.enable_capture(cfg);
  }
  const std::size_t wave = 16u * 4096u;
  for (std::size_t base = 0; base < s->ms.size(); base += wave) {
    const std::size_t end = std::min(s->ms.size(), base + wave);
    for (std::size_t i = base; i < end; ++i) s->ms[i]->power_on();
    s->settle();
  }
  if (s->vmsc->ready_count() != n) {
    state.SkipWithError("registration incomplete");
    return;
  }
  if (mode == 1) s->net.trace().clear();
  const std::size_t pairs = std::min<std::size_t>(s->ms.size() / 2, 2048);
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const std::uint64_t before = s->net.stats().messages_delivered;
    for (std::size_t p = 0; p < pairs; ++p) {
      s->ms[2 * p]->dial(s->ms[2 * p + 1]->config().msisdn);
    }
    s->settle();
    for (std::size_t p = 0; p < pairs; ++p) {
      s->ms[2 * p]->hangup();
    }
    s->settle();
    delivered += s->net.stats().messages_delivered - before;
    if (mode == 1) {
      // The JSONL row pays its formatting cost inside the timed region,
      // exactly as a capture-to-disk run would; the bytes are discarded.
      std::ostringstream sink;
      write_trace_jsonl(sink, s->net.trace());
      benchmark::DoNotOptimize(sink);
      s->net.trace().clear();
    }
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
  state.SetLabel(mode == 0   ? "capture off"
                 : mode == 1 ? "JSONL tracing"
                             : "binary capture");
}
BENCHMARK(BM_CaptureOverhead)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CodecRoundTrip(benchmark::State& state) {
  register_all_messages();
  UmSetup msg;
  msg.imsi = Imsi(466920000000001ULL, 15);
  msg.call_ref = CallRef(42);
  msg.calling = Msisdn(880900000001ULL, 12);
  msg.called = Msisdn(880900001000ULL, 12);
  ByteWriter scratch;
  for (auto _ : state) {
    scratch.clear();
    msg.encode_to(scratch);
    auto decoded = MessageRegistry::instance().decode(scratch.data());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecRoundTrip);

void BM_NestedTunnelEncapsulation(benchmark::State& state) {
  register_all_messages();
  RasArq arq;
  arq.called = Msisdn(880900000001ULL, 12);
  for (auto _ : state) {
    auto dgram = make_ip_datagram(IpAddress(10, 1, 0, 1),
                                  IpAddress(192, 168, 1, 1), arq);
    GtpPdu pdu;
    pdu.teid = TunnelId(1);
    pdu.payload = dgram->encode();
    GbUnitData frame;
    frame.imsi = Imsi(466920000000001ULL, 15);
    frame.payload = pdu.encode();
    auto wire = frame.encode();
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NestedTunnelEncapsulation);

// Ablation for DESIGN.md decision #1 (wire-serialize every link): how much
// host CPU the byte-level codecs cost relative to pointer-passing.
void BM_RegistrationSerializationAblation(benchmark::State& state) {
  const bool serialize = state.range(0) != 0;
  for (auto _ : state) {
    VgprsParams params;
    params.num_ms = 16;
    auto s = build_vgprs(params);
    s->net.trace().set_mode(TraceMode::kDisabled);
    s->net.set_serialize_links(serialize);
    for (auto* ms : s->ms) ms->power_on();
    s->settle();
    if (s->vmsc->ready_count() != 16) state.SkipWithError("registration");
  }
  state.SetLabel(serialize ? "wire-serialized links"
                           : "pointer-passing links");
}
BENCHMARK(BM_RegistrationSerializationAblation)->Arg(1)->Arg(0);

void BM_TrombSetup(benchmark::State& state) {
  const bool vg = state.range(0) != 0;
  for (auto _ : state) {
    TrombParams params;
    params.use_vgprs = vg;
    auto s = build_tromboning(params);
    s->net.trace().set_mode(TraceMode::kDisabled);
    s->roamer->power_on();
    s->settle();
    s->caller->place_call(s->roamer_id.msisdn);
    s->settle();
    benchmark::DoNotOptimize(s->international_trunks());
  }
}
BENCHMARK(BM_TrombSetup)->Arg(0)->Arg(1);

// --- --json summary ---------------------------------------------------------

/// Captures every finished run (in addition to normal console output) so a
/// compact summary can be written after the fact.
class CaptureReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& r : report) runs_.push_back(r);
    ConsoleReporter::ReportRuns(report);
  }
  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

/// Counters reaching a reporter are already finalized (rate flags applied
/// by the library); the stored value is what the console displays.
double counter_rate(const benchmark::BenchmarkReporter::Run& run,
                    const std::string& name) {
  auto it = run.counters.find(name);
  return it == run.counters.end() ? 0.0 : it->second.value;
}

double ns_per_op(const benchmark::BenchmarkReporter::Run& run) {
  if (run.iterations == 0) return 0.0;
  return run.real_accumulated_time / static_cast<double>(run.iterations) *
         1e9;
}

/// Folds the captured runs into the shared (scenario, metric, unit, value)
/// schema all benches emit.
void summarize(const std::vector<benchmark::BenchmarkReporter::Run>& runs,
               bench::JsonReport& report) {
  // 1w/8w pairs of the sharded call mix, remembered for the derived
  // speedup_8w_over_1w rows CI's perf-smoke gates on.
  struct MixScale {
    const char* scale;
    double w1 = 0.0;
    double w8 = 0.0;
  };
  MixScale mix[] = {{"10k"}, {"100k"}, {"1m"}};
  for (const auto& run : runs) {
    const std::string name = run.run_name.str();
    if (name.find("BM_EventThroughput") != std::string::npos) {
      report.add("engine", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_VgprsRegistration/64") != std::string::npos) {
      report.add("registration_64ms", "registrations_per_s", "1/s",
                 counter_rate(run, "registrations/s"));
    } else if (name.find("BM_VgprsCallCycle/0") != std::string::npos) {
      report.add("call_cycle", "calls_per_s", "1/s",
                 counter_rate(run, "calls/s"));
    } else if (name.find("BM_VgprsCallCycle/1") != std::string::npos) {
      report.add("call_cycle_spans_on", "calls_per_s", "1/s",
                 counter_rate(run, "calls/s"));
    } else if (name.find("BM_ShardedCallMix/10000/1") != std::string::npos) {
      mix[0].w1 = counter_rate(run, "events/s");
      report.add("sharded_call_mix_10k_1w", "events_per_s", "1/s", mix[0].w1);
    } else if (name.find("BM_ShardedCallMix/10000/8") != std::string::npos) {
      mix[0].w8 = counter_rate(run, "events/s");
      report.add("sharded_call_mix_10k_8w", "events_per_s", "1/s", mix[0].w8);
    } else if (name.find("BM_ShardedCallMix/1000000/1") !=
               std::string::npos) {
      mix[2].w1 = counter_rate(run, "events/s");
      report.add("sharded_call_mix_1m_1w", "events_per_s", "1/s", mix[2].w1);
    } else if (name.find("BM_ShardedCallMix/1000000/8") !=
               std::string::npos) {
      mix[2].w8 = counter_rate(run, "events/s");
      report.add("sharded_call_mix_1m_8w", "events_per_s", "1/s", mix[2].w8);
    } else if (name.find("BM_ShardedCallMix/100000/1") != std::string::npos) {
      mix[1].w1 = counter_rate(run, "events/s");
      report.add("sharded_call_mix_100k_1w", "events_per_s", "1/s",
                 mix[1].w1);
    } else if (name.find("BM_ShardedCallMix/100000/8") != std::string::npos) {
      mix[1].w8 = counter_rate(run, "events/s");
      report.add("sharded_call_mix_100k_8w", "events_per_s", "1/s",
                 mix[1].w8);
    } else if (name.find("BM_CaptureOverhead/10000/0") != std::string::npos) {
      report.add("capture_overhead_10k_off", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_CaptureOverhead/10000/1") != std::string::npos) {
      report.add("capture_overhead_10k_jsonl", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_CaptureOverhead/10000/2") != std::string::npos) {
      report.add("capture_overhead_10k_btrace", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_CaptureOverhead/100000/0") !=
               std::string::npos) {
      report.add("capture_overhead_100k_off", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_CaptureOverhead/100000/1") !=
               std::string::npos) {
      report.add("capture_overhead_100k_jsonl", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_CaptureOverhead/100000/2") !=
               std::string::npos) {
      report.add("capture_overhead_100k_btrace", "events_per_s", "1/s",
                 counter_rate(run, "events/s"));
    } else if (name.find("BM_CodecRoundTrip") != std::string::npos) {
      report.add("codec", "roundtrip_ns", "ns", ns_per_op(run));
    } else if (name.find("BM_NestedTunnelEncapsulation") !=
               std::string::npos) {
      report.add("codec", "nested_encapsulation_ns", "ns", ns_per_op(run));
    }
  }
  for (const MixScale& m : mix) {
    if (m.w1 > 0.0 && m.w8 > 0.0) {
      report.add(std::string("sharded_call_mix_") + m.scale,
                 "speedup_8w_over_1w", "ratio", m.w8 / m.w1);
    }
  }
}

}  // namespace
}  // namespace vgprs

int main(int argc, char** argv) {
  // JsonReport::from_args strips our own --json <path> flag before
  // google-benchmark parses argv.
  vgprs::bench::JsonReport report =
      vgprs::bench::JsonReport::from_args(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  vgprs::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  vgprs::summarize(reporter.runs(), report);
  benchmark::Shutdown();
  return report.write("capacity") ? 0 : 1;
}
