// Shared helpers for the paper-reproduction benchmarks: aligned table
// printing, common measurement drivers over the scenario builders, and the
// `--json <path>` machine-readable summary every bench supports.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "tr23821/tr_scenario.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs::bench {

/// Machine-readable bench results with one shared schema across all nine
/// benches (vgprs.bench.v1): flat records of (scenario, metric, unit,
/// value).  CI invokes each bench with `--json BENCH_<name>.json` and diffs
/// the artifacts across commits.
class JsonReport {
 public:
  /// Strips our own `--json <path>` flag out of argv (so google-benchmark
  /// or a plain main never sees it).  The report is disabled — add() keeps
  /// recording, write() does nothing — when the flag is absent.
  static JsonReport from_args(int& argc, char** argv) {
    JsonReport report;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        report.path_ = argv[++i];
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
    return report;
  }

  void add(std::string scenario, std::string metric, std::string unit,
           double value) {
    entries_.push_back(
        {std::move(scenario), std::move(metric), std::move(unit), value});
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Writes the artifact (no-op without --json).  Returns false on I/O
  /// failure so mains can exit nonzero.
  bool write(const std::string& bench) const {
    if (!enabled()) return true;
    std::ofstream out(path_, std::ios::trunc);
    if (!out.good()) {
      std::fprintf(stderr, "%s: cannot write %s\n", bench.c_str(),
                   path_.c_str());
      return false;
    }
    JsonWriter w(out);
    w.begin_object();
    w.kv("schema", "vgprs.bench.v1");
    w.kv("bench", bench);
    w.key("results");
    w.begin_array();
    for (const Entry& e : entries_) {
      w.begin_object();
      w.kv("scenario", e.scenario);
      w.kv("metric", e.metric);
      w.kv("unit", e.unit);
      w.kv("value", e.value);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
    return out.good();
  }

 private:
  struct Entry {
    std::string scenario;
    std::string metric;
    std::string unit;
    double value;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

/// Fixed-width table printer for paper-style series output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 1) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& r : rows_) {
        if (c < r.size()) widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      std::string out;
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        std::string cell = c < cells.size() ? cells[c] : "";
        out += "| " + cell + std::string(widths[c] - cell.size() + 1, ' ');
      }
      out += "|";
      std::puts(out.c_str());
    };
    std::string sep;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += "+" + std::string(widths[c] + 2, '-');
    }
    sep += "+";
    std::puts(sep.c_str());
    line(headers_);
    std::puts(sep.c_str());
    for (const auto& r : rows_) line(r);
    std::puts(sep.c_str());
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void banner(const std::string& title) {
  std::puts("");
  std::puts(("== " + title + " ==").c_str());
}

/// Registration measurement over a fresh vGPRS network.
struct RegistrationResult {
  double total_ms = 0;       // Um_LU_Request -> Um_LU_Accept
  double gsm_ms = 0;         // ... -> MAP_Update_Location_Area_ack
  double gprs_ms = 0;        // ... -> Activate_PDP_Context_Accept
  double ras_ms = 0;         // remainder: RRQ/RCF through the tunnel
  std::size_t messages = 0;  // total signaling messages
};

inline RegistrationResult measure_vgprs_registration(
    const VgprsParams& params) {
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->settle();
  const TraceRecorder& t = s->net.trace();
  RegistrationResult r;
  auto t0 = t.first_time("Um_Location_Update_Request");
  auto t_gsm = t.first_time("MAP_Update_Location_Area_ack");
  auto t_gprs = t.first_time("Activate_PDP_Context_Accept");
  auto t_end = t.first_time("Um_Location_Update_Accept");
  if (t0 && t_end) {
    r.total_ms = (*t_end - *t0).as_millis();
    if (t_gsm) r.gsm_ms = (*t_gsm - *t0).as_millis();
    if (t_gprs && t_gsm) r.gprs_ms = (*t_gprs - *t_gsm).as_millis();
    if (t_gprs) r.ras_ms = (*t_end - *t_gprs).as_millis();
  }
  r.messages = t.size();
  return r;
}

/// MO call setup measurement (MS dials an H.323 terminal).
struct CallSetupResult {
  double setup_ms = 0;     // dial -> connect at the MS
  double ringback_ms = 0;  // dial -> ringback heard
  std::size_t messages = 0;
  bool connected = false;
};

inline CallSetupResult measure_vgprs_mo_setup(const VgprsParams& params) {
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  CallSetupResult r;
  SimTime dialed = s->net.now();
  s->ms[0]->on_ringback = [&](CallRef) {
    r.ringback_ms = (s->net.now() - dialed).as_millis();
  };
  s->ms[0]->on_connected = [&](CallRef) {
    r.setup_ms = (s->net.now() - dialed).as_millis();
    r.connected = true;
  };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  r.messages = s->net.trace().size();
  return r;
}

/// MT call setup measurement (terminal calls the MS), caller's view.
inline CallSetupResult measure_vgprs_mt_setup(const VgprsParams& params) {
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  CallSetupResult r;
  SimTime dialed = s->net.now();
  s->terminals[0]->on_ringback = [&](CallRef) {
    r.ringback_ms = (s->net.now() - dialed).as_millis();
  };
  s->terminals[0]->on_connected = [&](CallRef) {
    r.setup_ms = (s->net.now() - dialed).as_millis();
    r.connected = true;
  };
  s->terminals[0]->place_call(s->ms[0]->config().msisdn);
  s->settle();
  r.messages = s->net.trace().size();
  return r;
}

inline CallSetupResult measure_tr_mo_setup(const TrParams& params) {
  auto s = build_tr23821(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  CallSetupResult r;
  SimTime dialed = s->net.now();
  s->ms[0]->on_ringback = [&](CallRef) {
    r.ringback_ms = (s->net.now() - dialed).as_millis();
  };
  s->ms[0]->on_connected = [&](CallRef) {
    r.setup_ms = (s->net.now() - dialed).as_millis();
    r.connected = true;
  };
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  r.messages = s->net.trace().size();
  return r;
}

inline CallSetupResult measure_tr_mt_setup(const TrParams& params) {
  auto s = build_tr23821(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  CallSetupResult r;
  SimTime dialed = s->net.now();
  s->terminals[0]->on_ringback = [&](CallRef) {
    r.ringback_ms = (s->net.now() - dialed).as_millis();
  };
  s->terminals[0]->on_connected = [&](CallRef) {
    r.setup_ms = (s->net.now() - dialed).as_millis();
    r.connected = true;
  };
  s->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
  s->settle();
  r.messages = s->net.trace().size();
  return r;
}

inline RegistrationResult measure_tr_registration(const TrParams& params) {
  auto s = build_tr23821(params);
  s->ms[0]->power_on();
  s->settle();
  const TraceRecorder& t = s->net.trace();
  RegistrationResult r;
  auto t0 = t.first_time("GPRS_Attach_Request");
  auto t_end = t.last_time("Deactivate_PDP_Context_Accept");
  if (!t_end) t_end = t.last_time("Gb_UnitData");
  if (t0 && t_end) r.total_ms = (*t_end - *t0).as_millis();
  r.messages = t.size();
  return r;
}

}  // namespace vgprs::bench
