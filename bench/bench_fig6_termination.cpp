// FIG6 — MS call termination (paper Fig. 6), and the Section 6 core claim:
// because vGPRS keeps the signaling PDP context pre-activated, incoming
// calls route immediately; 3G TR 23.821 must run HLR interrogation +
// GGSN-driven network-initiated PDP activation per call, so its setup time
// is strictly longer and grows with the PDP-activation cost.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sweep.hpp"

using namespace vgprs;
using namespace vgprs::bench;

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  register_all_messages();
  ParallelSweep pool;
  banner("Fig. 6 — MS call termination flow (principal messages)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->net.trace().clear();
    s->terminals[0]->place_call(s->ms[0]->config().msisdn);
    s->settle();
    std::fputs(s->net.trace().to_string(130).c_str(), stdout);
  }

  banner("3G TR 23.821 termination flow (network-initiated activation)");
  {
    TrParams params;
    auto s = build_tr23821(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->net.trace().clear();
    s->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
    s->settle();
    std::fputs(s->net.trace().to_string(130).c_str(), stdout);
  }

  banner("Terminating-call setup delay (caller's post-dial view)");
  {
    Table t({"system", "ringback (ms)", "answer (ms)", "#msgs"});
    VgprsParams vp;
    CallSetupResult v = measure_vgprs_mt_setup(vp);
    t.row({"vGPRS (PDP ctx pre-activated)", Table::num(v.ringback_ms),
           Table::num(v.setup_ms), std::to_string(v.messages)});
    TrParams tp;
    CallSetupResult m = measure_tr_mt_setup(tp);
    t.row({"3G TR 23.821 (per-call activation)", Table::num(m.ringback_ms),
           Table::num(m.setup_ms), std::to_string(m.messages)});
    t.print();
    std::printf("\nTR 23.821 pre-alerting penalty: +%.1f ms to ringback\n",
                m.ringback_ms - v.ringback_ms);
    report.add("vgprs", "mt_ringback_ms", "ms", v.ringback_ms);
    report.add("vgprs", "mt_answer_ms", "ms", v.setup_ms);
    report.add("tr23821", "mt_ringback_ms", "ms", m.ringback_ms);
    report.add("tr23821", "mt_answer_ms", "ms", m.setup_ms);
    report.add("comparison", "tr_pre_alerting_penalty_ms", "ms",
               m.ringback_ms - v.ringback_ms);
  }

  banner("Setup-delay gap vs PDP activation cost (Gn hop latency sweep)");
  {
    Table t({"Gn latency (ms)", "vGPRS ringback (ms)",
             "TR 23.821 ringback (ms)", "gap (ms)"});
    const std::vector<double> gns{2.0, 10.0, 25.0, 50.0};
    // Cells are independent seeded worlds — sweep them across cores.
    auto rows = pool.map<std::pair<CallSetupResult, CallSetupResult>>(
        gns.size(), [&](std::size_t i) {
          VgprsParams vp;
          vp.latency.gn = SimDuration::millis(gns[i]);
          TrParams tp;
          tp.latency.gn = SimDuration::millis(gns[i]);
          return std::make_pair(measure_vgprs_mt_setup(vp),
                                measure_tr_mt_setup(tp));
        });
    for (std::size_t i = 0; i < gns.size(); ++i) {
      const auto& [v, m] = rows[i];
      t.row({Table::num(gns[i], 0), Table::num(v.ringback_ms),
             Table::num(m.ringback_ms),
             Table::num(m.ringback_ms - v.ringback_ms)});
      report.add("gn_sweep_" + Table::num(gns[i], 0) + "ms",
                 "ringback_gap_ms", "ms", m.ringback_ms - v.ringback_ms);
    }
    t.print();
    std::puts("\nShape check: the gap grows with PDP-activation cost, since");
    std::puts("TR 23.821 pays the SGSN<->GGSN round trips per call while");
    std::puts("vGPRS paid them once at registration.");
  }

  banner("Paging cost: termination delay vs Um latency (vGPRS)");
  {
    Table t({"Um latency (ms)", "ringback (ms)", "answer (ms)"});
    const std::vector<double> ums{5.0, 15.0, 30.0, 60.0};
    auto rows = pool.map<CallSetupResult>(ums.size(), [&](std::size_t i) {
      VgprsParams params;
      params.latency.um = SimDuration::millis(ums[i]);
      return measure_vgprs_mt_setup(params);
    });
    for (std::size_t i = 0; i < ums.size(); ++i) {
      t.row({Table::num(ums[i], 0), Table::num(rows[i].ringback_ms),
             Table::num(rows[i].setup_ms)});
      report.add("um_sweep_" + Table::num(ums[i], 0) + "ms", "mt_ringback_ms",
                 "ms", rows[i].ringback_ms);
    }
    t.print();
  }

  return report.write("fig6_termination") ? 0 : 1;
}
