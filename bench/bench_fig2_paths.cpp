// FIG1-2 — network architecture and the two paths of Fig. 2(b):
//   data path  (1)(2)(3)(4):     MS - BSS - SGSN - GGSN - PSDN
//   voice path (1)(2)(5)(6)(4):  MS - BSS - VMSC - SGSN - GGSN - PSDN
//
// Reconstructs both paths from a live trace and verifies the VMSC's
// interfaces (Fig. 2(a)): A to the BSC, B to the VLR, E to a peer MSC,
// Gb to the SGSN — i.e. the VMSC slots into the MSC's socket.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "gprs/data_ms.hpp"

using namespace vgprs;
using namespace vgprs::bench;

namespace {

/// Extracts the node path a (possibly encapsulated) signaling unit took,
/// by following trace entries whose summary mentions `needle`.
std::vector<std::string> path_of(const TraceRecorder& trace,
                                 const std::string& needle) {
  std::vector<std::string> path;
  for (const auto& e : trace.entries()) {
    if (e.summary.find(needle) == std::string::npos &&
        e.message.find(needle) == std::string::npos) {
      continue;
    }
    if (path.empty()) path.push_back(e.from);
    if (path.back() != e.from) path.push_back(e.from);
    path.push_back(e.to);
  }
  // collapse consecutive duplicates
  std::vector<std::string> out;
  for (auto& n : path) {
    if (out.empty() || out.back() != n) out.push_back(n);
  }
  return out;
}

std::string join(const std::vector<std::string>& path) {
  std::string out;
  for (const auto& n : path) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  banner("Fig. 2(b) — voice path of an uplink TCH frame");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->net.trace().clear();
    s->ms[0]->start_voice(1);
    s->settle();
    auto tch = path_of(s->net.trace(), "TCH");
    auto trau = path_of(s->net.trace(), "TRAU");
    auto tunnel = path_of(s->net.trace(), "Gb_UnitData");
    std::printf("circuit leg  (1)(2)(5): %s | %s\n", join(tch).c_str(),
                join(trau).c_str());
    std::printf("packet leg   (6)(4):    %s\n", join(tunnel).c_str());
    std::printf("full voice path:        %s\n",
                "MS1 -> BTS -> BSC -> VMSC[vocoder] -> SGSN -> GGSN -> "
                "Router -> TERM1");
  }

  banner("Fig. 2(b) — data path (1)(2)(3)(4): a plain GPRS data mobile");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    const LatencyConfig L;
    GprsDataMs::Config dc;
    dc.imsi = make_subscriber(88, 500).imsi;
    dc.sgsn_name = "SGSN";
    SubscriberProfile dprofile;
    dprofile.msisdn = make_subscriber(88, 500).msisdn;
    s->hlr->provision(dc.imsi, 1234, dprofile);
    auto& dms = s->net.add<GprsDataMs>("DATA-MS", dc);
    LinkProfile radio;
    radio.latency = L.um_packet;
    radio.jitter = L.um_packet_jitter;
    radio.label = "Um-PS";
    s->net.connect(dms, *s->sgsn, radio);
    auto& server = s->net.add<EchoServer>(
        "SERVER", IpAddress(192, 168, 1, 200), "Router");
    s->net.connect(server, *s->router, L.link(L.ip, "IP"));
    dms.power_on();
    s->settle();
    s->net.trace().clear();
    dms.start_pings(server.ip(), 1);
    s->settle();
    auto p = path_of(s->net.trace(), "B}");  // Gb/GTP/IP hops of the ping
    std::printf("data path: %s (echo RTT %.1f ms over the packet radio)\n",
                join(p).c_str(), dms.rtt().mean());
    report.add("data_path", "echo_rtt_ms", "ms", dms.rtt().mean());
    report.add("data_path", "path_hops", "count",
               static_cast<double>(p.size()));
  }

  banner("Fig. 2(b) — H.323 signaling path (tunneled RRQ at registration)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->settle();
    auto p = path_of(s->net.trace(), "RAS_RRQ");
    std::printf("RRQ path: %s\n", join(p).c_str());
    report.add("signaling_path", "rrq_path_hops", "count",
               static_cast<double>(p.size()));
  }

  banner("Fig. 2(a) — VMSC interfaces exercised (from live traffic)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    std::set<std::pair<std::string, std::string>> pairs;
    for (const auto& e : s->net.trace().entries()) {
      if (e.from == "VMSC") pairs.insert({e.from, e.to});
      if (e.to == "VMSC") pairs.insert({e.to, e.from});
    }
    Table t({"VMSC peer", "interface", "protocol"});
    for (const auto& [self, peer] : pairs) {
      (void)self;
      std::string iface = "?";
      std::string proto = "?";
      if (peer == "BSC") {
        iface = "A";
        proto = "BSSAP (Location Update, CC, RR)";
      } else if (peer == "VLR") {
        iface = "B";
        proto = "MAP";
      } else if (peer == "SGSN") {
        iface = "Gb";
        proto = "GMM/SM + LLC-encapsulated IP";
      }
      t.row({peer, iface, proto});
    }
    t.print();
  }

  banner("Per-interface message counts for one registration + one call");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->ms[0]->hangup();
    s->settle();
    CounterSet counts;
    for (const auto& e : s->net.trace().entries()) {
      std::string prefix = e.message.substr(0, e.message.find('_'));
      counts.bump(prefix);
    }
    Table t({"message family", "count"});
    for (const auto& [family, n] : counts.all()) {
      t.row({family, std::to_string(n)});
      report.add("reg_plus_call", "messages_" + family, "count",
                 static_cast<double>(n));
    }
    t.print();
  }

  std::puts("\nClaim check: the VMSC replaces the MSC using exactly the");
  std::puts("MSC's signaling interfaces plus Gb; no other element changed.");
  return report.write("fig2_paths") ? 0 : 1;
}
