// FIG4 — vGPRS registration (paper Fig. 4).
//
// Regenerates the registration message flow and reports its latency
// decomposition (GSM location updating / GPRS attach + PDP activation /
// H.323 RAS), compared against the 3G TR 23.821 registration, which must
// additionally tear the PDP context back down (its step 6).  The paper
// reports no numbers; the reproduced artifacts are the flow itself and the
// structural comparison.
#include <cstdio>

#include "bench_util.hpp"

using namespace vgprs;
using namespace vgprs::bench;

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  banner("Fig. 4 — vGPRS registration message flow (one MS power-on)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->settle();
    std::fputs(s->net.trace().to_string(100).c_str(), stdout);
  }

  banner("Registration latency decomposition (ms of signaling time)");
  {
    Table t({"scenario", "total", "GSM LU", "GPRS attach+PDP", "H.323 RAS",
             "#msgs"});
    struct Row {
      const char* name;
      LatencyConfig latency;
    };
    LatencyConfig slow_ss7;
    slow_ss7.d = SimDuration::millis(40);
    LatencyConfig roaming;
    roaming.d = SimDuration::millis(90);  // HLR is abroad
    LatencyConfig fast_core;
    fast_core.gb = SimDuration::millis(1);
    fast_core.gn = SimDuration::millis(1);
    fast_core.gi = SimDuration::millis(1);
    fast_core.ip = SimDuration::millis(1);
    for (const Row& row : {Row{"default budget", LatencyConfig{}},
                           Row{"slow national SS7 (D=40ms)", slow_ss7},
                           Row{"roaming HLR (D=90ms)", roaming},
                           Row{"fast packet core (1ms hops)", fast_core}}) {
      VgprsParams params;
      params.latency = row.latency;
      RegistrationResult r = measure_vgprs_registration(params);
      t.row({row.name, Table::num(r.total_ms), Table::num(r.gsm_ms),
             Table::num(r.gprs_ms), Table::num(r.ras_ms),
             std::to_string(r.messages)});
      report.add(row.name, "registration_total_ms", "ms", r.total_ms);
      report.add(row.name, "registration_messages", "count",
                 static_cast<double>(r.messages));
    }
    t.print();
  }

  banner("vGPRS vs 3G TR 23.821 registration (default budget)");
  {
    Table t({"system", "signaling time (ms)", "#msgs",
             "PDP ops during registration", "context left for calls?"});
    VgprsParams vp;
    RegistrationResult v = measure_vgprs_registration(vp);
    t.row({"vGPRS", Table::num(v.total_ms), std::to_string(v.messages),
           "1 activate", "yes (signaling ctx stays)"});
    TrParams tp;
    RegistrationResult tr = measure_tr_registration(tp);
    t.row({"3G TR 23.821", Table::num(tr.total_ms),
           std::to_string(tr.messages), "1 activate + 1 deactivate",
           "no (torn down when idle)"});
    t.print();
    report.add("vgprs", "registration_total_ms", "ms", v.total_ms);
    report.add("tr23821", "registration_total_ms", "ms", tr.total_ms);
  }

  banner("Registration scales across subscribers (vGPRS)");
  {
    Table t({"subscribers", "all registered", "total msgs",
             "PDP contexts at SGSN", "GK table size"});
    for (std::uint32_t n : {1u, 4u, 16u, 64u}) {
      VgprsParams params;
      params.num_ms = n;
      auto s = build_vgprs(params);
      std::uint32_t ok = 0;
      for (auto* ms : s->ms) {
        ms->on_registered = [&] { ++ok; };
        ms->power_on();
      }
      s->settle();
      t.row({std::to_string(n), ok == n ? "yes" : "NO",
             std::to_string(s->net.trace().size()),
             std::to_string(s->sgsn->pdp_context_count()),
             std::to_string(s->gk->registration_count())});
    }
    t.print();
  }

  std::puts("\nPaper claim check: vGPRS registration uses only standard");
  std::puts("GSM + GPRS + H.225 procedures and leaves one low-priority");
  std::puts("signaling PDP context in place; TR 23.821 adds a context");
  std::puts("teardown and leaves the MS unreachable without re-activation.");
  return report.write("fig4_registration") ? 0 : 1;
}
