// FIG9 — inter-system handoff (paper Fig. 9).
//
// Mid-call handoff from the anchor VMSC's cell to a neighbouring MSC
// (classic GSM, and VMSC-to-VMSC which the paper says follows the same
// procedure).  Reports the handoff signaling flow, the interruption time,
// and the voice-path latency before/after (the anchor stays in the path,
// adding the E-interface trunk).
#include <cstdio>

#include "bench_util.hpp"

using namespace vgprs;
using namespace vgprs::bench;

namespace {

struct HandoffResult {
  double prep_ms = 0;       // A_Handover_Required -> Um_Handover_Command
  double interrupt_ms = 0;  // Um_Handover_Command -> Um_Handover_Complete
  double voice_before = 0;
  double voice_after = 0;
  bool still_connected = false;
  std::size_t messages = 0;
};

HandoffResult run_handoff(const HandoffParams& params,
                          bool print_flow = false) {
  auto s = build_handoff(params);
  s->ms->power_on();
  s->terminal->register_endpoint();
  s->settle();
  s->ms->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  HandoffResult r;
  if (s->ms->state() != MobileStation::State::kConnected) return r;

  s->ms->start_voice(10);
  s->settle();
  r.voice_before = s->terminal->voice_latency().mean();

  s->net.trace().clear();
  s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                             CellId(202));
  s->settle();
  const TraceRecorder& t = s->net.trace();
  if (print_flow) std::fputs(t.to_string(60).c_str(), stdout);
  auto t0 = t.first_time("A_Handover_Required");
  auto t_cmd = t.first_time("Um_Handover_Command");
  auto t_done = t.first_time("Um_Handover_Complete");
  if (t0 && t_cmd) r.prep_ms = (*t_cmd - *t0).as_millis();
  if (t_cmd && t_done) r.interrupt_ms = (*t_done - *t_cmd).as_millis();
  r.messages = t.size();

  // Post-handoff frames land at the high end of the pooled distribution
  // (the anchor trunk only adds latency), so p95 isolates them.
  s->ms->start_voice(10);
  s->settle();
  r.voice_after = s->terminal->voice_latency().percentile(0.95);
  r.still_connected = s->ms->state() == MobileStation::State::kConnected;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  banner("Fig. 9 — inter-system handoff flow (anchor VMSC -> GSM MSC)");
  {
    HandoffParams params;
    run_handoff(params, /*print_flow=*/true);
  }

  banner("Handoff timing: anchor VMSC to classic MSC vs to another VMSC");
  {
    Table t({"target switch", "preparation (ms)", "radio interruption (ms)",
             "call survives", "#msgs"});
    for (bool vmsc_target : {false, true}) {
      HandoffParams params;
      params.target_is_vmsc = vmsc_target;
      HandoffResult r = run_handoff(params);
      t.row({vmsc_target ? "VMSC-B (vGPRS)" : "MSC-B (classic GSM)",
             Table::num(r.prep_ms), Table::num(r.interrupt_ms),
             r.still_connected ? "yes" : "NO", std::to_string(r.messages)});
      const char* scenario = vmsc_target ? "to_vmsc" : "to_msc";
      report.add(scenario, "prep_ms", "ms", r.prep_ms);
      report.add(scenario, "interrupt_ms", "ms", r.interrupt_ms);
      report.add(scenario, "call_survives", "bool",
                 r.still_connected ? 1.0 : 0.0);
    }
    t.print();
    std::puts("\nShape check: identical procedure and cost either way — the");
    std::puts("paper's claim that VMSC-VMSC handoff follows the same");
    std::puts("standard GSM inter-system procedure via MAP/E.");
  }

  banner("Voice path before/after handoff (anchor stays in path)");
  {
    Table t({"E-interface latency (ms)", "voice before (ms, mean)",
             "voice after (ms, p95)", "added by trunk"});
    for (double e : {5.0, 10.0, 25.0, 50.0}) {
      HandoffParams params;
      params.latency.e = SimDuration::millis(e);
      HandoffResult r = run_handoff(params);
      t.row({Table::num(e, 0), Table::num(r.voice_before),
             Table::num(r.voice_after),
             Table::num(r.voice_after - r.voice_before)});
      report.add("e_sweep_" + Table::num(e, 0) + "ms", "voice_added_ms", "ms",
                 r.voice_after - r.voice_before);
    }
    t.print();
    std::puts("\nShape check: post-handoff voice pays the anchor trunk (Fig.");
    std::puts("9(b)): the added one-way latency tracks the E-interface hop.");
  }

  banner("Handoff preparation vs E-interface (MAP) latency");
  {
    Table t({"E latency (ms)", "preparation (ms)", "interruption (ms)"});
    for (double e : {5.0, 10.0, 25.0, 50.0}) {
      HandoffParams params;
      params.latency.e = SimDuration::millis(e);
      HandoffResult r = run_handoff(params);
      t.row({Table::num(e, 0), Table::num(r.prep_ms),
             Table::num(r.interrupt_ms)});
    }
    t.print();
  }

  return report.write("fig9_handoff") ? 0 : 1;
}
