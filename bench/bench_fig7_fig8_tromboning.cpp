// FIG7-8 — tromboning (paper Figs. 7-8).
//
// Call delivery from a Hong Kong fixed line to a UK subscriber roaming in
// Hong Kong: classic GSM trombones through the UK (two international
// trunks); vGPRS completes the call locally through the H.323 gateway and
// the gatekeeper's address translation table (zero international trunks).
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sweep.hpp"

using namespace vgprs;
using namespace vgprs::bench;

namespace {

struct TrombResult {
  bool connected = false;
  double ringback_ms = 0;
  double answer_ms = 0;
  std::int64_t intl_trunks = 0;
  double voice_ms = 0;  // one-way y -> x after connect
};

TrombResult run_tromb(const TrombParams& params, bool print_flow = false) {
  auto s = build_tromboning(params);
  s->roamer->power_on();
  s->settle();
  s->net.trace().clear();
  TrombResult r;
  SimTime dialed = s->net.now();
  s->caller->on_ringback = [&] {
    r.ringback_ms = (s->net.now() - dialed).as_millis();
  };
  s->caller->on_connected = [&] {
    r.answer_ms = (s->net.now() - dialed).as_millis();
    r.connected = true;
  };
  s->caller->place_call(s->roamer_id.msisdn);
  s->settle();
  if (print_flow) std::fputs(s->net.trace().to_string(90).c_str(), stdout);
  r.intl_trunks = s->international_trunks();
  if (r.connected) {
    s->caller->start_voice(20);
    s->settle();
    r.voice_ms = s->roamer->voice_latency().mean();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  banner("Fig. 7 — classic GSM call delivery to a roamer (flow)");
  {
    TrombParams params;
    params.use_vgprs = false;
    run_tromb(params, /*print_flow=*/true);
  }

  banner("Fig. 8 — vGPRS tromboning elimination (flow)");
  {
    TrombParams params;
    params.use_vgprs = true;
    run_tromb(params, /*print_flow=*/true);
  }

  banner("Tromboning comparison (y in HK calls x's UK number)");
  {
    Table t({"delivery path", "connected", "intl trunks", "ringback (ms)",
             "answer (ms)", "voice one-way (ms)"});
    TrombParams classic;
    classic.use_vgprs = false;
    TrombResult c = run_tromb(classic);
    t.row({"classic GSM (Fig. 7)", c.connected ? "yes" : "NO",
           std::to_string(c.intl_trunks), Table::num(c.ringback_ms),
           Table::num(c.answer_ms), Table::num(c.voice_ms)});
    TrombParams vg;
    vg.use_vgprs = true;
    TrombResult v = run_tromb(vg);
    t.row({"vGPRS via local GK (Fig. 8)", v.connected ? "yes" : "NO",
           std::to_string(v.intl_trunks), Table::num(v.ringback_ms),
           Table::num(v.answer_ms), Table::num(v.voice_ms)});
    TrombParams fb;
    fb.use_vgprs = true;
    fb.roamer_registered = false;
    TrombResult f = run_tromb(fb);
    t.row({"vGPRS fallback (x not at GK)", f.connected ? "yes" : "NO",
           std::to_string(f.intl_trunks), Table::num(f.ringback_ms),
           Table::num(f.answer_ms), Table::num(f.voice_ms)});
    t.print();
    report.add("classic_gsm", "intl_trunks", "count",
               static_cast<double>(c.intl_trunks));
    report.add("classic_gsm", "answer_ms", "ms", c.answer_ms);
    report.add("classic_gsm", "voice_one_way_ms", "ms", c.voice_ms);
    report.add("vgprs_local", "intl_trunks", "count",
               static_cast<double>(v.intl_trunks));
    report.add("vgprs_local", "answer_ms", "ms", v.answer_ms);
    report.add("vgprs_local", "voice_one_way_ms", "ms", v.voice_ms);
    report.add("vgprs_fallback", "intl_trunks", "count",
               static_cast<double>(f.intl_trunks));
    std::puts("\nShape check: 2 international trunks for classic GSM, 0 for");
    std::puts("vGPRS local delivery; the fallback behaves like a normal");
    std::puts("international PSTN call (and trombones, as the paper notes).");
  }

  banner("Setup + voice-path gain vs international trunk latency");
  {
    Table t({"intl one-way (ms)", "GSM answer (ms)", "vGPRS answer (ms)",
             "GSM voice (ms)", "vGPRS voice (ms)"});
    const std::vector<double> intls{40.0, 90.0, 150.0, 250.0};
    // Each latency point builds two independent worlds — sweep in parallel.
    ParallelSweep pool;
    auto rows = pool.map<std::pair<TrombResult, TrombResult>>(
        intls.size(), [&](std::size_t i) {
          TrombParams classic;
          classic.use_vgprs = false;
          classic.latency.intl_trunk = SimDuration::millis(intls[i]);
          classic.latency.d_intl = SimDuration::millis(intls[i]);
          TrombParams vg = classic;
          vg.use_vgprs = true;
          return std::make_pair(run_tromb(classic), run_tromb(vg));
        });
    for (std::size_t i = 0; i < intls.size(); ++i) {
      const auto& [c, v] = rows[i];
      t.row({Table::num(intls[i], 0), Table::num(c.answer_ms),
             Table::num(v.answer_ms), Table::num(c.voice_ms),
             Table::num(v.voice_ms)});
      report.add("intl_sweep_" + Table::num(intls[i], 0) + "ms",
                 "voice_gap_ms", "ms", c.voice_ms - v.voice_ms);
    }
    t.print();
    std::puts("\nShape check: classic GSM setup and voice-path latency grow");
    std::puts("with the international hop (the trombone crosses it twice);");
    std::puts("vGPRS stays flat except for the roaming HLR signaling during");
    std::puts("registration, which is off this call path.");
  }

  return report.write("fig7_fig8_tromboning") ? 0 : 1;
}
