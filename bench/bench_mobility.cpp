// MOB — engineering extension beyond the paper's figures: the cost of
// subscriber mobility in vGPRS.  The paper states (Section 3) that the
// movement registration "is similar" to power-on registration; this bench
// quantifies how much cheaper it actually is (the GPRS/H.323 substrate is
// already in place when the subscriber stays under the same VMSC), what an
// inter-VMSC move costs end to end, and what IMSI detach tears down.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sweep.hpp"

using namespace vgprs;
using namespace vgprs::bench;

namespace {

/// Two-area world: area 1 (VMSC) with two cells, area 2 (VMSC2) with one,
/// shared HLR / GPRS core / gatekeeper.  Mirrors the test fixture.
struct World {
  std::unique_ptr<VgprsScenario> s;
  Bts* bts1b = nullptr;
  Vlr* vlr2 = nullptr;
  Bsc* bsc2 = nullptr;
  Bts* bts2 = nullptr;
  Vmsc* vmsc2 = nullptr;

  explicit World(const LatencyConfig& L) {
    VgprsParams params;
    params.latency = L;
    s = build_vgprs(params);
    Network& net = s->net;
    bts1b = &net.add<Bts>("BTS-1b", CellId(102), LocationAreaId(10), "BSC");
    s->bsc->adopt_bts(*bts1b);
    s->vmsc->adopt_cell(CellId(102), "BSC");
    net.connect(*bts1b, *s->bsc, L.link(L.abis, "Abis"));
    vlr2 = &net.add<Vlr>("VLR2", Vlr::Config{"HLR", 88, 8'899'100});
    bsc2 = &net.add<Bsc>("BSC2", Bsc::Config{"VMSC2", 64, 64});
    bts2 = &net.add<Bts>("BTS2", CellId(201), LocationAreaId(20), "BSC2");
    bsc2->adopt_bts(*bts2);
    Vmsc::VmscConfig vc;
    vc.base = MscBase::Config{"VLR2", true, true, true};
    vc.sgsn_name = "SGSN";
    vc.gk_ip = IpAddress(192, 168, 1, 1);
    vmsc2 = &net.add<Vmsc>("VMSC2", vc);
    vmsc2->adopt_cell(CellId(201), "BSC2");
    net.connect(*bts2, *bsc2, L.link(L.abis, "Abis"));
    net.connect(*bsc2, *vmsc2, L.link(L.a, "A"));
    net.connect(*vmsc2, *vlr2, L.link(L.b, "B"));
    net.connect(*vlr2, *s->hlr, L.link(L.d, "D"));
    net.connect(*vmsc2, *s->sgsn, L.link(L.gb, "Gb"));
    net.connect(*s->ms[0], *bts1b, L.link(L.um, "Um"));
    net.connect(*s->ms[0], *bts2, L.link(L.um, "Um"));
  }
};

struct MoveResult {
  double latency_ms = 0;
  std::size_t messages = 0;
};

MoveResult measure(const LatencyConfig& L, const char* target_bts) {
  World w(L);
  MobileStation& ms = *w.s->ms[0];
  ms.power_on();
  w.s->settle();
  w.s->net.trace().clear();
  MoveResult r;
  SimTime start = w.s->net.now();
  ms.on_registered = [&] {
    r.latency_ms = (w.s->net.now() - start).as_millis();
  };
  ms.move_to(target_bts);
  w.s->settle();
  r.messages = w.s->net.trace().size();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  banner("Mobility cost: power-on vs movement LU vs inter-VMSC move");
  {
    LatencyConfig L;
    VgprsParams base;
    RegistrationResult power_on = measure_vgprs_registration(base);
    MoveResult intra = measure(L, "BTS-1b");
    MoveResult inter = measure(L, "BTS2");
    Table t({"procedure", "latency (ms)", "#msgs", "substrate work"});
    t.row({"power-on registration (Fig. 4)", Table::num(power_on.total_ms),
           std::to_string(power_on.messages),
           "GPRS attach + PDP ctx + RRQ"});
    t.row({"movement LU, same VMSC", Table::num(intra.latency_ms),
           std::to_string(intra.messages),
           "none (MS table already holds MM+PDP ctx)"});
    t.row({"movement LU, new VMSC area", Table::num(inter.latency_ms),
           std::to_string(inter.messages),
           "full substrate + old-area cleanup (cancel, URQ, detach)"});
    t.print();
    report.add("power_on", "latency_ms", "ms", power_on.total_ms);
    report.add("intra_vmsc_move", "latency_ms", "ms", intra.latency_ms);
    report.add("intra_vmsc_move", "messages", "count",
               static_cast<double>(intra.messages));
    report.add("inter_vmsc_move", "latency_ms", "ms", inter.latency_ms);
    report.add("inter_vmsc_move", "messages", "count",
               static_cast<double>(inter.messages));
    std::puts("\nShape check: intra-VMSC movement skips the entire");
    std::puts("GPRS/H.323 substrate — the paper's 'similar' procedure is");
    std::puts("strictly cheaper than power-on; an inter-VMSC move costs a");
    std::puts("full registration plus the old area's cleanup signaling.");
  }

  banner("Inter-VMSC move vs SS7 (D-interface) latency");
  {
    Table t({"D latency (ms)", "move latency (ms)", "#msgs"});
    const std::vector<double> ds{2.0, 8.0, 30.0, 90.0};
    // Independent worlds per latency point — sweep across cores.
    ParallelSweep pool;
    auto rows = pool.map<MoveResult>(ds.size(), [&](std::size_t i) {
      LatencyConfig L;
      L.d = SimDuration::millis(ds[i]);
      return measure(L, "BTS2");
    });
    for (std::size_t i = 0; i < ds.size(); ++i) {
      t.row({Table::num(ds[i], 0), Table::num(rows[i].latency_ms),
             std::to_string(rows[i].messages)});
      report.add("d_sweep_" + Table::num(ds[i], 0) + "ms", "move_latency_ms",
                 "ms", rows[i].latency_ms);
    }
    t.print();
  }

  banner("IMSI detach teardown");
  {
    LatencyConfig L;
    World w(L);
    MobileStation& ms = *w.s->ms[0];
    ms.power_on();
    w.s->settle();
    w.s->net.trace().clear();
    ms.power_off();
    w.s->settle();
    Table t({"quantity", "value"});
    t.row({"teardown messages",
           std::to_string(w.s->net.trace().size())});
    t.row({"PDP contexts left",
           std::to_string(w.s->sgsn->pdp_context_count())});
    t.row({"GK aliases left",
           std::to_string(w.s->gk->registration_count())});
    t.row({"gatekeeper unregistration",
           w.s->net.trace().count("Gb_UnitData") > 0 ? "URQ via tunnel, then"
                                                       " GPRS detach"
                                                     : "?"});
    t.print();
    report.add("imsi_detach", "teardown_messages", "count",
               static_cast<double>(w.s->net.trace().size()));
    report.add("imsi_detach", "pdp_contexts_left", "count",
               static_cast<double>(w.s->sgsn->pdp_context_count()));
  }

  return report.write("mobility") ? 0 : 1;
}
