// SEC6 — the paper's Section 6 comparison of vGPRS and 3G TR 23.821,
// rendered as one measured table: real-time capability, PDP-context
// lifecycle, call setup, required modifications, IMSI confidentiality and
// tromboning.
#include <cstdio>

#include "bench_util.hpp"

using namespace vgprs;
using namespace vgprs::bench;

namespace {

struct SystemStats {
  double mt_ringback_ms = 0;
  double mo_ringback_ms = 0;
  double voice_jitter = 0;
  int pdp_ops_per_call = 0;
  std::size_t msgs_per_call = 0;
  std::uint64_t imsis_at_gk = 0;
};

SystemStats measure_vgprs() {
  SystemStats out;
  VgprsParams params;
  out.mt_ringback_ms = measure_vgprs_mt_setup(params).ringback_ms;
  out.mo_ringback_ms = measure_vgprs_mo_setup(params).ringback_ms;

  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  const TraceRecorder& t = s->net.trace();
  out.pdp_ops_per_call =
      static_cast<int>(t.count("Activate_PDP_Context_Request") +
                       t.count("Deactivate_PDP_Context_Request"));
  out.msgs_per_call = t.size();

  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->start_voice(100);
  s->settle();
  out.voice_jitter = s->terminals[0]->voice_latency().stddev();
  out.imsis_at_gk = 0;  // the standard gatekeeper never sees an IMSI
  return out;
}

SystemStats measure_tr() {
  SystemStats out;
  TrParams params;
  out.mt_ringback_ms = measure_tr_mt_setup(params).ringback_ms;
  out.mo_ringback_ms = measure_tr_mo_setup(params).ringback_ms;

  auto s = build_tr23821(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->net.trace().clear();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->hangup();
  s->settle();
  const TraceRecorder& t = s->net.trace();
  out.pdp_ops_per_call =
      static_cast<int>(t.count("Activate_PDP_Context_Request") +
                       t.count("Deactivate_PDP_Context_Request"));
  out.msgs_per_call = t.size();

  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->start_voice(100);
  s->settle();
  out.voice_jitter = s->terminals[0]->voice_latency().stddev();

  // Exercise a termination to show the IMSI leak.
  s->ms[0]->hangup();
  s->settle();
  s->terminals[0]->place_call(make_subscriber(88, 1).msisdn);
  s->settle();
  out.imsis_at_gk = s->gk->imsis_learned();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  SystemStats v = measure_vgprs();
  SystemStats m = measure_tr();

  for (const auto& [scenario, st] :
       {std::pair<const char*, const SystemStats*>{"vgprs", &v},
        std::pair<const char*, const SystemStats*>{"tr23821", &m}}) {
    report.add(scenario, "mo_ringback_ms", "ms", st->mo_ringback_ms);
    report.add(scenario, "mt_ringback_ms", "ms", st->mt_ringback_ms);
    report.add(scenario, "voice_jitter_ms", "ms", st->voice_jitter);
    report.add(scenario, "pdp_ops_per_call", "count",
               static_cast<double>(st->pdp_ops_per_call));
    report.add(scenario, "msgs_per_call", "count",
               static_cast<double>(st->msgs_per_call));
    report.add(scenario, "imsis_at_gk", "count",
               static_cast<double>(st->imsis_at_gk));
  }

  banner("Section 6 — vGPRS vs 3G TR 23.821, measured");
  Table t({"criterion", "vGPRS", "3G TR 23.821"});
  t.row({"radio leg for voice", "circuit switched (dedicated TCH)",
         "packet switched (shared)"});
  t.row({"voice jitter on radio leg (stddev, ms)",
         Table::num(v.voice_jitter, 2), Table::num(m.voice_jitter, 2)});
  t.row({"MS requirements", "standard GSM/GPRS handset",
         "vocoder + H.323 terminal stack"});
  t.row({"gatekeeper", "standard H.323",
         "modified: MAP to HLR + GGSN control"});
  t.row({"IMSIs exposed to H.323 domain", std::to_string(v.imsis_at_gk),
         std::to_string(m.imsis_at_gk)});
  t.row({"PDP context while idle", "kept (low-priority signaling ctx)",
         "deactivated"});
  t.row({"PDP ops per call (act+deact)", std::to_string(v.pdp_ops_per_call),
         std::to_string(m.pdp_ops_per_call)});
  t.row({"signaling msgs per MO call+release",
         std::to_string(v.msgs_per_call), std::to_string(m.msgs_per_call)});
  t.row({"MO post-dial to ringback (ms)", Table::num(v.mo_ringback_ms),
         Table::num(m.mo_ringback_ms)});
  t.row({"MT post-dial to ringback (ms)", Table::num(v.mt_ringback_ms),
         Table::num(m.mt_ringback_ms)});
  t.row({"MT delivery precondition", "none (ctx pre-activated)",
         "static PDP address + network-initiated activation"});
  t.row({"tromboning elimination (intl trunks)", "yes (2 -> 0, Fig. 8)",
         "no (GK abroad would need the IMSI)"});
  t.row({"new/replaced elements", "MSC -> VMSC (router-based softswitch)",
         "all handsets + gatekeeper"});
  t.print();

  std::puts("\nNotes:");
  std::puts(" * vGPRS MO signaling includes GSM authentication + ciphering");
  std::puts("   per call (standard MSC behaviour); TR 23.821 relies on the");
  std::puts("   GPRS attach security only, so its raw message count is");
  std::puts("   lower while its setup latency is dominated by the packet");
  std::puts("   radio and per-call PDP work.");
  std::puts(" * Voice-leg jitter drives the jitter-buffer size and hence");
  std::puts("   effective mouth-to-ear delay (see bench_fig3_voicepath).");
  return report.write("sec6_comparison") ? 0 : 1;
}
