// FIG5 — MS call origination + call release (paper Fig. 5).
//
// Regenerates the origination and release flows and reports post-dial
// delay (to ringback and to answer) under latency sweeps, plus the
// Section 6 ablation: vGPRS with TR-style idle PDP deactivation pays a
// context rebuild before the ARQ can even leave.
#include <cstdio>

#include "bench_util.hpp"

using namespace vgprs;
using namespace vgprs::bench;

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  banner("Fig. 5 — MS call origination flow (principal messages)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->net.trace().clear();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    std::fputs(s->net.trace().to_string(120).c_str(), stdout);
  }

  banner("Fig. 5 — call release flow (steps 3.1-3.4)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->net.trace().clear();
    s->ms[0]->hangup();
    s->settle();
    std::fputs(s->net.trace().to_string(80).c_str(), stdout);
  }

  banner("Origination post-dial delay vs air-interface latency");
  {
    Table t(
        {"Um latency (ms)", "ringback (ms)", "answer (ms)", "#signaling msgs"});
    for (double um : {5.0, 15.0, 30.0, 60.0}) {
      VgprsParams params;
      params.latency.um = SimDuration::millis(um);
      CallSetupResult r = measure_vgprs_mo_setup(params);
      t.row({Table::num(um, 0), Table::num(r.ringback_ms),
             Table::num(r.setup_ms), std::to_string(r.messages)});
      report.add("um_sweep_" + Table::num(um, 0) + "ms", "ringback_ms", "ms",
                 r.ringback_ms);
    }
    t.print();
  }

  banner("Origination: vGPRS vs idle-PDP ablation vs 3G TR 23.821");
  {
    Table t({"system", "ringback (ms)", "answer (ms)", "connected",
             "extra PDP ops before ARQ"});
    VgprsParams base;
    CallSetupResult v = measure_vgprs_mo_setup(base);
    t.row({"vGPRS (ctx pre-activated)", Table::num(v.ringback_ms),
           Table::num(v.setup_ms), v.connected ? "yes" : "NO", "0"});
    VgprsParams idle = base;
    idle.deactivate_pdp_when_idle = true;
    CallSetupResult a = measure_vgprs_mo_setup(idle);
    t.row({"vGPRS + idle deactivation (ablation)", Table::num(a.ringback_ms),
           Table::num(a.setup_ms), a.connected ? "yes" : "NO",
           "1 activate + RRQ refresh"});
    TrParams tr;
    CallSetupResult m = measure_tr_mo_setup(tr);
    t.row({"3G TR 23.821", Table::num(m.ringback_ms), Table::num(m.setup_ms),
           m.connected ? "yes" : "NO", "1 activate"});
    t.print();
    std::puts("");
    std::printf("Idle-deactivation penalty on vGPRS origination: +%.1f ms "
                "(+%.0f%%)\n",
                a.setup_ms - v.setup_ms,
                100.0 * (a.setup_ms - v.setup_ms) / v.setup_ms);
    report.add("vgprs", "mo_ringback_ms", "ms", v.ringback_ms);
    report.add("vgprs", "mo_answer_ms", "ms", v.setup_ms);
    report.add("vgprs_idle_ablation", "mo_ringback_ms", "ms", a.ringback_ms);
    report.add("vgprs_idle_ablation", "mo_answer_ms", "ms", a.setup_ms);
    report.add("tr23821", "mo_ringback_ms", "ms", m.ringback_ms);
    report.add("tr23821", "mo_answer_ms", "ms", m.setup_ms);
  }

  banner("Authorization cost (step 2.2): authenticate_calls on/off");
  {
    Table t({"per-call authentication", "ringback (ms)", "answer (ms)",
             "#msgs"});
    for (bool auth : {true, false}) {
      VgprsParams params;
      params.authenticate_calls = auth;
      CallSetupResult r = measure_vgprs_mo_setup(params);
      t.row({auth ? "on (RAND/SRES + ciphering)" : "off",
             Table::num(r.ringback_ms), Table::num(r.setup_ms),
             std::to_string(r.messages)});
      report.add(auth ? "auth_on" : "auth_off", "mo_ringback_ms", "ms",
                 r.ringback_ms);
    }
    t.print();
  }

  return report.write("fig5_origination") ? 0 : 1;
}
