// FIG3 — the protocol stack / voice path (paper Fig. 3, and the Fig. 2(b)
// voice path (1)(2)(5)(6)(4)).
//
// Measures end-to-end mouth-to-ear latency and jitter for the vGPRS voice
// path — circuit-switched radio leg + VMSC vocoder + RTP over GTP — and
// contrasts it with the 3G TR 23.821 voice path, whose radio leg is
// packet-switched and jittery ("VoIP with required quality can not be
// satisfied", Section 6).
#include <cstdio>

#include "bench_util.hpp"
#include "voice/codec.hpp"

using namespace vgprs;
using namespace vgprs::bench;

namespace {

struct VoiceResult {
  double uplink_mean = 0;   // MS -> terminal
  double uplink_p99 = 0;
  double uplink_jitter = 0;  // stddev
  double downlink_mean = 0;  // terminal -> MS
  double mos = 0;
  std::uint32_t received = 0;
};

VoiceResult run_vgprs_voice(const VgprsParams& params,
                            std::uint32_t frames) {
  auto s = build_vgprs(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->start_voice(frames);
  s->terminals[0]->start_voice(frames);
  s->settle();
  VoiceResult r;
  const Histogram& up = s->terminals[0]->voice_latency();
  const Histogram& down = s->ms[0]->voice_latency();
  r.uplink_mean = up.mean();
  r.uplink_p99 = up.percentile(0.99);
  r.uplink_jitter = up.stddev();
  r.downlink_mean = down.mean();
  r.received = s->terminals[0]->voice_frames_received();
  r.mos = mos_from_one_way_delay_ms(r.uplink_mean +
                                    playout_delay_ms(r.uplink_jitter));
  return r;
}

VoiceResult run_tr_voice(const TrParams& params, std::uint32_t frames) {
  auto s = build_tr23821(params);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  s->settle();
  s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
  s->settle();
  s->ms[0]->start_voice(frames);
  s->terminals[0]->start_voice(frames);
  s->settle();
  VoiceResult r;
  const Histogram& up = s->terminals[0]->voice_latency();
  const Histogram& down = s->ms[0]->voice_latency();
  r.uplink_mean = up.mean();
  r.uplink_p99 = up.percentile(0.99);
  r.uplink_jitter = up.stddev();
  r.downlink_mean = down.mean();
  r.received = s->terminals[0]->voice_frames_received();
  r.mos = mos_from_one_way_delay_ms(r.uplink_mean +
                                    playout_delay_ms(r.uplink_jitter));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::from_args(argc, argv);
  constexpr std::uint32_t kFrames = 200;

  banner("Fig. 3 — voice path traversal (one uplink voice frame)");
  {
    VgprsParams params;
    auto s = build_vgprs(params);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    s->ms[0]->dial(make_subscriber(88, 1000).msisdn);
    s->settle();
    s->net.trace().clear();
    s->ms[0]->start_voice(1);
    s->terminals[0]->start_voice(1);
    s->settle();
    std::fputs(s->net.trace().to_string(40).c_str(), stdout);
  }

  banner("Mouth-to-ear latency: vGPRS vs 3G TR 23.821");
  {
    Table t({"system", "uplink mean (ms)", "p99", "jitter (stddev)",
             "downlink mean", "est. MOS", "frames delivered"});
    VgprsParams vp;
    VoiceResult v = run_vgprs_voice(vp, kFrames);
    t.row({"vGPRS (CS radio + vocoder at VMSC)", Table::num(v.uplink_mean),
           Table::num(v.uplink_p99), Table::num(v.uplink_jitter, 2),
           Table::num(v.downlink_mean), Table::num(v.mos, 2),
           std::to_string(v.received) + "/" + std::to_string(kFrames)});
    TrParams tp;
    VoiceResult m = run_tr_voice(tp, kFrames);
    t.row({"TR 23.821 (PS radio, vocoder in MS)", Table::num(m.uplink_mean),
           Table::num(m.uplink_p99), Table::num(m.uplink_jitter, 2),
           Table::num(m.downlink_mean), Table::num(m.mos, 2),
           std::to_string(m.received) + "/" + std::to_string(kFrames)});
    t.print();
    report.add("vgprs", "uplink_mean_ms", "ms", v.uplink_mean);
    report.add("vgprs", "uplink_p99_ms", "ms", v.uplink_p99);
    report.add("vgprs", "uplink_jitter_ms", "ms", v.uplink_jitter);
    report.add("vgprs", "mos", "score", v.mos);
    report.add("tr23821", "uplink_mean_ms", "ms", m.uplink_mean);
    report.add("tr23821", "uplink_p99_ms", "ms", m.uplink_p99);
    report.add("tr23821", "uplink_jitter_ms", "ms", m.uplink_jitter);
    report.add("tr23821", "mos", "score", m.mos);
    std::puts("\nShape check: vGPRS's radio leg is deterministic (near-zero");
    std::puts("jitter); TR 23.821 rides the contended packet radio and needs");
    std::puts("a large jitter buffer, degrading the effective MOS.");
  }

  banner("TR 23.821 quality vs packet-radio congestion (jitter sweep)");
  {
    Table t({"radio queueing jitter (ms)", "mean (ms)", "p99 (ms)",
             "stddev", "est. MOS"});
    for (double j : {10.0, 30.0, 60.0, 120.0, 240.0}) {
      TrParams params;
      params.latency.um_packet_jitter = SimDuration::millis(j);
      VoiceResult r = run_tr_voice(params, kFrames);
      t.row({Table::num(j, 0), Table::num(r.uplink_mean),
             Table::num(r.uplink_p99), Table::num(r.uplink_jitter, 2),
             Table::num(r.mos, 2)});
      report.add("tr_jitter_sweep_" + Table::num(j, 0) + "ms", "mos", "score",
                 r.mos);
    }
    t.print();
  }

  banner("vGPRS voice budget decomposition (defaults)");
  {
    VgprsParams params;
    VoiceResult r = run_vgprs_voice(params, kFrames);
    const LatencyConfig L;
    Table t({"leg", "one-way (ms)"});
    t.row({"Um (TCH, circuit switched)", Table::num(L.um.as_millis())});
    t.row({"Abis + A (TRAU)", Table::num((L.abis + L.a).as_millis())});
    t.row({"VMSC vocoder transcode",
           Table::num(GsmFrCodec::kTranscodeDelay.as_millis())});
    t.row({"Gb + GTP + Gi (tunnel)",
           Table::num((L.gb + L.gn + L.gi).as_millis())});
    t.row({"IP cloud", Table::num(L.ip.as_millis())});
    t.row({"measured end-to-end", Table::num(r.uplink_mean)});
    t.print();
  }

  banner("Packetization overhead on the voice context");
  {
    Table t({"quantity", "value"});
    t.row({"GSM FR frame", std::to_string(GsmFrCodec::kFrameBytes) + " B / " +
                               Table::num(
                                   GsmFrCodec::kFrameInterval.as_millis(), 0) +
                               " ms"});
    t.row({"RTP+UDP+IP headers", std::to_string(RtpOverhead::total()) + " B"});
    t.row({"IP bitrate per call",
           Table::num((GsmFrCodec::kFrameBytes + RtpOverhead::total()) * 8 /
                          GsmFrCodec::kFrameInterval.as_millis(),
                      1) +
               " kbit/s (vs 13 kbit/s speech)"});
    t.print();
  }

  return report.write("fig3_voicepath") ? 0 : 1;
}
