// vgprs_lint: protocol-conformance linter over the message registry, flow
// tables, FSM tables, retransmission policies, and the sharded sources.
// All checks live in src/analysis/lint_rules.cpp; this driver just names
// the tool and its clean-summary line.  Exit codes: 0 clean, 1 findings,
// 2 usage/internal error (see analysis/driver.hpp).

#include <sstream>

#include "analysis/driver.hpp"
#include "analysis/lint_rules.hpp"
#include "sim/message.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/fsm_tables.hpp"

int main(int argc, char** argv) {
  using namespace vgprs;
  const auto families = analysis::lint_rule_families(VGPRS_SOURCE_DIR);
  const auto summary = [] {
    std::ostringstream os;
    os << MessageRegistry::instance().types().size() << " wire types, "
       << all_conformance_flows().size() << " flows, "
       << conformance_fsm_tables().size() << " FSM tables";
    return os.str();
  };
  return analysis::tool_main("vgprs_lint", families, summary, argc, argv);
}
