// vgprs_verify: exhaustive static reachability exploration over the
// composed conformance FSMs.  The product-state model, the five check
// families, and the exemption policy live in src/analysis/verify.cpp; the
// concrete procedure compositions in src/analysis/verify_model.cpp.  Exit
// codes: 0 clean, 1 findings, 2 usage/internal error (analysis/driver.hpp).

#include <sstream>

#include "analysis/driver.hpp"
#include "analysis/verify.hpp"
#include "analysis/verify_model.hpp"

int main(int argc, char** argv) {
  using namespace vgprs::analysis;
  VerifyStats stats;
  const auto families = verify_rule_families(vgprs_verify_model(), &stats);
  const auto summary = [&stats] {
    std::ostringstream os;
    os << stats.procedures << " procedures, " << stats.product_states
       << " product states, " << stats.product_transitions
       << " transitions explored";
    return os.str();
  };
  return tool_main("vgprs_verify", families, summary, argc, argv);
}
