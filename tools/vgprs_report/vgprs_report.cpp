// vgprs_report: run a named paper scenario with spans + metrics enabled and
// print / export per-procedure latency tables.
//
//   vgprs_report --scenario fig6 --iters 20 --json out.json
//
// Scenarios mirror the paper's figures:
//   fig4  N mobile stations register (IMSI attach + PDP + RAS).
//   fig5  sequential MS->terminal originations with release.
//   fig6  sequential terminal->MS terminations with release.
//   fig7  classic-GSM tromboned call delivery to a roamer.
//   fig8  vGPRS call delivery to the same roamer (no tromboning).
//   fig9  inter-MSC handoffs, one fresh network per iteration (seed+i).
//   sec6  the Section 6 comparison: vGPRS vs TR 23.821 on the same
//         registration / origination / termination workload.
//   faults  (also: --faults)  both systems under one identical fault
//         schedule — lost attach, corrupted PDP activation, gatekeeper
//         outages, a dead backbone link and a latency spike — reporting
//         per-procedure recovery latency and fault/recovery counters.
//
// Exports: --json (vgprs.report.v1 artifact), --metrics (metrics snapshot),
// --chrome-trace (Perfetto / chrome://tracing span timeline), --trace-jsonl
// (message trace as JSON Lines).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "sim/export.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/span.hpp"
#include "sim/stats.hpp"
#include "tr23821/tr_scenario.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

struct Options {
  std::string scenario;
  std::string json_path;
  std::string metrics_path;
  std::string chrome_path;
  std::string jsonl_path;
  std::uint32_t iters = 20;
  std::uint64_t seed = 1;
  unsigned threads = 1;  // >1: sharded engine with this many workers
};

/// --threads N with N > 1 runs the scenario on the sharded engine, the
/// topology partitioned along its seams by the scenario builder.  Results
/// are deterministic for a given N-independent partition; see DESIGN.md
/// "Sharded engine".
template <typename Params>
void apply_threads(Params& params, const Options& opt) {
  params.sharded = opt.threads > 1;
  params.workers = opt.threads;
}

/// Everything one scenario run produces.
struct RunResult {
  std::string system;  // "vgprs", "tr23821", "gsm"
  std::vector<Span> spans;
  MetricsSnapshot metrics;
  double sim_time_ms = 0.0;
  std::size_t events = 0;
};

/// Per-SpanKind digest of a run's spans.
struct ProcedureStats {
  SpanKind kind = SpanKind::kRegistration;
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t timeout = 0;
  std::size_t rejected = 0;
  std::size_t open = 0;
  Histogram latency_ms;  // closed spans only
  Histogram hops;        // closed spans only
};

std::vector<ProcedureStats> digest(const std::vector<Span>& spans) {
  std::vector<ProcedureStats> stats(kSpanKindCount);
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    stats[k].kind = static_cast<SpanKind>(k);
  }
  for (const Span& span : spans) {
    ProcedureStats& p = stats[static_cast<std::size_t>(span.kind)];
    ++p.total;
    switch (span.outcome) {
      case SpanOutcome::kOpen:
        ++p.open;
        continue;  // no latency for open spans
      case SpanOutcome::kOk:
        ++p.ok;
        break;
      case SpanOutcome::kTimeout:
        ++p.timeout;
        break;
      case SpanOutcome::kRejected:
        ++p.rejected;
        break;
    }
    p.latency_ms.add(span.duration());
    p.hops.add(static_cast<double>(span.hops));
  }
  std::erase_if(stats, [](const ProcedureStats& p) { return p.total == 0; });
  return stats;
}

void print_table(const RunResult& run) {
  std::printf("== %s: %zu events, %.1f ms simulated ==\n", run.system.c_str(),
              run.events, run.sim_time_ms);
  std::printf("%-18s %6s %5s %8s %9s %5s %9s %9s %9s %7s\n", "procedure",
              "count", "ok", "timeout", "rejected", "open", "p50(ms)",
              "p95(ms)", "p99(ms)", "hops");
  for (const ProcedureStats& p : digest(run.spans)) {
    std::printf("%-18s %6zu %5zu %8zu %9zu %5zu %9.2f %9.2f %9.2f %7.1f\n",
                std::string(to_string(p.kind)).c_str(), p.total, p.ok,
                p.timeout, p.rejected, p.open, p.latency_ms.percentile(0.50),
                p.latency_ms.percentile(0.95), p.latency_ms.percentile(0.99),
                p.hops.mean());
  }
  std::int64_t sent = 0;
  auto it = run.metrics.counters.find("net/messages_sent");
  if (it != run.metrics.counters.end()) sent = it->second;
  std::printf("messages sent: %lld\n\n", static_cast<long long>(sent));
}

void write_run_json(JsonWriter& w, const RunResult& run) {
  w.begin_object();
  w.kv("system", run.system);
  w.kv("events", static_cast<std::uint64_t>(run.events));
  w.kv("sim_time_ms", run.sim_time_ms);
  w.key("procedures");
  w.begin_array();
  for (const ProcedureStats& p : digest(run.spans)) {
    w.begin_object();
    w.kv("name", to_string(p.kind));
    w.kv("count", static_cast<std::uint64_t>(p.total));
    w.kv("ok", static_cast<std::uint64_t>(p.ok));
    w.kv("timeout", static_cast<std::uint64_t>(p.timeout));
    w.kv("rejected", static_cast<std::uint64_t>(p.rejected));
    w.kv("open", static_cast<std::uint64_t>(p.open));
    w.key("latency_ms");
    w.begin_object();
    w.kv("p50", p.latency_ms.percentile(0.50));
    w.kv("p95", p.latency_ms.percentile(0.95));
    w.kv("p99", p.latency_ms.percentile(0.99));
    w.kv("mean", p.latency_ms.mean());
    w.kv("min", p.latency_ms.min());
    w.kv("max", p.latency_ms.max());
    w.end_object();
    w.key("hops");
    w.begin_object();
    w.kv("mean", p.hops.mean());
    w.kv("max", p.hops.max());
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : run.metrics.counters) {
    w.kv(name, static_cast<std::int64_t>(value));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : run.metrics.gauges) w.kv(name, value);
  w.end_object();
  w.end_object();
}

// --- scenario runners --------------------------------------------------------

RunResult finish_run(Network& net, std::string system, std::size_t events) {
  RunResult r;
  r.system = std::move(system);
  r.spans = net.spans().spans();
  r.metrics = net.metrics_snapshot();
  r.sim_time_ms = static_cast<double>(net.now().count_micros()) / 1000.0;
  r.events = events;
  return r;
}

RunResult run_fig4(const Options& opt) {
  VgprsParams params;
  params.num_ms = opt.iters;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  for (MobileStation* ms : s->ms) ms->power_on();
  std::size_t events = s->settle();
  return finish_run(s->net, "vgprs", events);
}

RunResult run_fig5(const Options& opt) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn callee = make_subscriber(88, 1000).msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->ms[0]->dial(callee);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events);
}

RunResult run_fig6(const Options& opt) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn callee = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->terminals[0]->place_call(callee);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events);
}

RunResult run_tromboning(const Options& opt, bool use_vgprs) {
  TrombParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  params.use_vgprs = use_vgprs;
  auto s = build_tromboning(params);
  s->net.spans().set_enabled(true);
  s->roamer->power_on();
  std::size_t events = s->settle();
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->caller->place_call(s->roamer_id.msisdn);
    events += s->settle();
    s->caller->hangup();
    events += s->settle();
  }
  s->net.metrics().gauge("tromboning/international_trunks") =
      static_cast<double>(s->international_trunks());
  return finish_run(s->net, use_vgprs ? "vgprs" : "gsm", events);
}

RunResult run_fig9(const Options& opt) {
  // One fresh network per handoff so every iteration starts from the same
  // topology; seeds vary so link jitter produces a latency distribution.
  RunResult combined;
  combined.system = "vgprs";
  MetricsRegistry aggregate;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    HandoffParams params;
    params.seed = opt.seed + i;
    params.target_is_vmsc = (i % 2) == 1;  // alternate GSM / VMSC targets
    apply_threads(params, opt);
    auto s = build_handoff(params);
    s->net.spans().set_enabled(true);
    s->ms->power_on();
    s->terminal->register_endpoint();
    combined.events += s->settle();
    s->ms->dial(make_subscriber(88, 1000).msisdn);
    combined.events += s->settle();
    s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                               CellId(202));
    combined.events += s->settle();
    s->ms->hangup();
    combined.events += s->settle();
    const auto& spans = s->net.spans().spans();
    combined.spans.insert(combined.spans.end(), spans.begin(), spans.end());
    (void)s->net.metrics_snapshot();  // sync net/* counters into the registry
    aggregate.merge_from(s->net.metrics());
    combined.sim_time_ms +=
        static_cast<double>(s->net.now().count_micros()) / 1000.0;
  }
  combined.metrics = aggregate.snapshot();
  return combined;
}

RunResult run_tr23821_workload(const Options& opt) {
  TrParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_tr23821(params);
  s->net.spans().set_enabled(true);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = make_subscriber(88, 1).msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    // MO call with per-call PDP reactivation (the TR resource policy).
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    // MT call through network-initiated PDP activation.
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "tr23821", events);
}

RunResult run_vgprs_workload(const Options& opt) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events);
}

// --- fault / recovery comparison ---------------------------------------------

/// One fault schedule valid for BOTH systems: it references only nodes and
/// message names the vGPRS and TR 23.821 scenarios share (SGSN, GGSN, GK and
/// the GPRS attach / PDP activation exchanges).  Registration-phase faults
/// are message-predicated; call-phase faults are time-windowed against the
/// fixed drive pattern below (call cycle i starts at 30 s + 60 s * i).
FaultSchedule report_fault_schedule() {
  const auto at = [](std::int64_t ms) { return SimTime::from_micros(ms * 1000); };
  FaultSchedule sched;
  // Registration phase: the first attach vanishes, the first PDP activation
  // arrives corrupted, and the gatekeeper is down when the terminal sends
  // its initial RRQ.  All three recover via sender retransmission.
  sched.message_faults.push_back(
      {MessagePredicate{"GPRS_Attach_Request", "", "", 1, 1}, FaultKind::kDrop});
  sched.message_faults.push_back(
      {MessagePredicate{"Activate_PDP_Context_Request", "", "", 1, 1},
       FaultKind::kCorrupt});
  sched.node_outages.push_back({"GK", at(0), at(1200)});
  // Call cycle 0 (t = 30 s): the SGSN-GGSN backbone drops everything for
  // 800 ms right as call signalling crosses it — forced setup retransmits.
  sched.link_windows.push_back({"SGSN", "GGSN", at(30'010), at(30'810)});
  // Call cycle 1 (t = 90 s): a 25 ms latency spike on the same backbone —
  // slower, but no losses.
  sched.latency_spikes.push_back(
      {"SGSN", "GGSN", at(90'000), at(96'000), SimDuration::millis(25)});
  // Call cycle 2 (t = 150 s): the gatekeeper crashes across admission —
  // ARQ retransmission carries the call through the restart.
  sched.node_outages.push_back({"GK", at(149'900), at(151'200)});
  return sched;
}

RunResult run_faults_vgprs(const Options& opt) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  s->net.spans().set_enabled(true);
  s->net.install_faults(report_fault_schedule());
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    events += s->net.run_until(
        SimTime::from_micros((30 + 60 * static_cast<std::int64_t>(i)) *
                             1'000'000));
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events);
}

RunResult run_faults_tr23821(const Options& opt) {
  TrParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_tr23821(params);
  s->net.spans().set_enabled(true);
  s->net.install_faults(report_fault_schedule());
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = make_subscriber(88, 1).msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    events += s->net.run_until(
        SimTime::from_micros((30 + 60 * static_cast<std::int64_t>(i)) *
                             1'000'000));
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "tr23821", events);
}

std::vector<RunResult> run_scenario(const Options& opt) {
  if (opt.scenario == "fig4") return {run_fig4(opt)};
  if (opt.scenario == "fig5") return {run_fig5(opt)};
  if (opt.scenario == "fig6") return {run_fig6(opt)};
  if (opt.scenario == "fig7") return {run_tromboning(opt, false)};
  if (opt.scenario == "fig8") return {run_tromboning(opt, true)};
  if (opt.scenario == "fig9") return {run_fig9(opt)};
  if (opt.scenario == "sec6") {
    return {run_vgprs_workload(opt), run_tr23821_workload(opt)};
  }
  if (opt.scenario == "faults") {
    return {run_faults_vgprs(opt), run_faults_tr23821(opt)};
  }
  return {};
}

// For --chrome-trace / --trace-jsonl we re-run the first iteration only and
// keep the network alive; the latency report above uses its own runs.
constexpr const char* kScenarios[] = {"fig4", "fig5", "fig6", "fig7",
                                      "fig8", "fig9", "sec6", "faults"};

int usage() {
  std::fprintf(stderr,
               "usage: vgprs_report --scenario <name> [--iters N] [--seed S]\n"
               "                    [--threads N] [--json PATH] [--metrics "
               "PATH]\n"
               "                    [--chrome-trace PATH] [--trace-jsonl "
               "PATH]\n"
               "--threads N with N > 1 runs the sharded engine on N worker\n"
               "threads (deterministic; same results for any N)\n"
               "scenarios:");
  for (const char* s : kScenarios) std::fprintf(stderr, " %s", s);
  std::fprintf(stderr, "\n");
  return 2;
}

int run(const Options& opt) {
  register_all_messages();
  std::vector<RunResult> runs = run_scenario(opt);
  if (runs.empty()) {
    std::fprintf(stderr, "vgprs_report: unknown scenario '%s'\n",
                 opt.scenario.c_str());
    return usage();
  }
  for (const RunResult& r : runs) print_table(r);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::fprintf(stderr, "vgprs_report: cannot write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    JsonWriter w(out);
    w.begin_object();
    w.kv("schema", "vgprs.report.v1");
    w.kv("scenario", opt.scenario);
    w.kv("seed", static_cast<std::uint64_t>(opt.seed));
    w.kv("iterations", static_cast<std::uint64_t>(opt.iters));
    w.key("runs");
    w.begin_array();
    for (const RunResult& r : runs) write_run_json(w, r);
    w.end_array();
    w.end_object();
    out << "\n";
  }
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    write_metrics_json(out, runs.front().metrics);
    out << "\n";
  }
  if (!opt.chrome_path.empty()) {
    std::ofstream out(opt.chrome_path);
    write_spans_chrome_trace(out, runs.front().spans,
                             "vgprs-" + opt.scenario);
    out << "\n";
  }
  if (!opt.jsonl_path.empty()) {
    // Re-run one iteration with tracing on; the stats runs above keep the
    // recorder at its (bounded) defaults and may have wrapped.
    Options one = opt;
    one.iters = 1;
    // The trace of the stats run is fine for JSONL export purposes; use the
    // first run's network trace via a fresh single-iteration run.
    VgprsParams params;
    params.seed = opt.seed;
  apply_threads(params, opt);
    auto s = build_vgprs(params);
    s->net.spans().set_enabled(true);
    s->ms[0]->power_on();
    s->terminals[0]->register_endpoint();
    s->settle();
    std::ofstream out(opt.jsonl_path);
    write_trace_jsonl(out, s->net.trace());
  }
  return 0;
}

}  // namespace
}  // namespace vgprs

int main(int argc, char** argv) {
  vgprs::Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vgprs_report: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      opt.scenario = next("--scenario");
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      opt.scenario = "faults";
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = next("--json");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opt.metrics_path = next("--metrics");
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0) {
      opt.chrome_path = next("--chrome-trace");
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0) {
      opt.jsonl_path = next("--trace-jsonl");
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      opt.iters = static_cast<std::uint32_t>(std::stoul(next("--iters")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::stoull(next("--seed"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<unsigned>(std::stoul(next("--threads")));
    } else {
      return vgprs::usage();
    }
  }
  if (opt.scenario.empty()) return vgprs::usage();
  return vgprs::run(opt);
}
