// vgprs_report: run a named paper scenario with spans + metrics enabled and
// print / export per-procedure latency tables.
//
//   vgprs_report --scenario fig6 --iters 20 --json out.json
//
// Scenarios mirror the paper's figures:
//   fig4  N mobile stations register (IMSI attach + PDP + RAS).
//   fig5  sequential MS->terminal originations with release.
//   fig6  sequential terminal->MS terminations with release.
//   fig7  classic-GSM tromboned call delivery to a roamer.
//   fig8  vGPRS call delivery to the same roamer (no tromboning).
//   fig9  inter-MSC handoffs, one fresh network per iteration (seed+i).
//   sec6  the Section 6 comparison: vGPRS vs TR 23.821 on the same
//         registration / origination / termination workload.
//   faults  (also: --faults)  both systems under one identical fault
//         schedule — lost attach, corrupted PDP activation, gatekeeper
//         outages, a dead backbone link and a latency spike — reporting
//         per-procedure recovery latency and fault/recovery counters.
//
// Exports: --json (vgprs.report.v1 artifact), --metrics (metrics snapshot),
// --chrome-trace (Perfetto / chrome://tracing span timeline), --trace-jsonl
// (message trace as JSON Lines), --capture / --capture-dir (packed binary
// vgprs.btrace.v1 capture; see sim/btrace.hpp).
//
// Offline decode of a capture:
//
//   vgprs_report decode --in capture.btrace [--json out.json]
//                       [--trace-jsonl out.jsonl] [--chrome-trace out.json]
//                       [--metrics out.json] [--diff other.btrace]
//
// --in accepts a single capture file or a directory of per-shard files.
// decode prints the same per-procedure tables a live run prints and
// re-exports the same artifacts; --diff compares two captures (first trace
// divergence, per-procedure latency deltas) and exits 1 when they differ.
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "sim/btrace.hpp"
#include "sim/export.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/span.hpp"
#include "sim/stats.hpp"
#include "tr23821/tr_scenario.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs {
namespace {

struct Options {
  std::string scenario;
  std::string json_path;
  std::string metrics_path;
  std::string chrome_path;
  std::string jsonl_path;
  std::string capture_path;      // single-file binary capture
  std::string capture_dir;       // per-shard binary capture files
  std::size_t capture_ring = 0;  // ring bytes per shard (0 = keep all)
  std::uint32_t iters = 20;
  std::uint64_t seed = 1;
  unsigned threads = 1;       // >1: sharded engine with this many workers
  bool shard_stats = false;   // --shard-stats 1: per-shard window profile
};

/// Strict decimal parse: whole string, digits only, range-checked.  The
/// std::stoul calls this replaces threw uncaught exceptions on junk like
/// --iters=x or overflow, taking the whole process down with a traceback
/// instead of a usage line.
bool parse_u64_arg(const char* text, std::uint64_t max, std::uint64_t& out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || v > max) return false;
  out = v;
  return true;
}

/// --threads N with N > 1 runs the scenario on the sharded engine, the
/// topology partitioned along its seams by the scenario builder.  Results
/// are deterministic for a given N-independent partition; see DESIGN.md
/// "Sharded engine".
template <typename Params>
void apply_threads(Params& params, const Options& opt) {
  params.sharded = opt.threads > 1;
  params.workers = opt.threads;
}

/// Everything one scenario run produces.
struct RunResult {
  std::string system;  // "vgprs", "tr23821", "gsm"
  std::vector<Span> spans;
  std::vector<TraceEntry> trace;  // the run's own message trace
  MetricsSnapshot metrics;
  std::vector<ShardPerfStats> shard_perf;  // --shard-stats only
  double sim_time_ms = 0.0;
  std::size_t events = 0;
};

/// Sink for --capture / --capture-dir: owns the output stream(s), writes the
/// kFileInfo header once, and serializes one btrace segment per finished
/// network.  Inactive (all methods no-ops) when neither flag was given.
class CaptureWriter {
 public:
  /// Returns false (with a message on stderr) when an output cannot be
  /// opened.
  bool open(const Options& opt) {
    ring_ = opt.capture_ring;
    shard_stats_ = opt.shard_stats;
    if (!opt.capture_path.empty()) {
      single_.open(opt.capture_path, std::ios::binary);
      if (!single_) {
        std::fprintf(stderr, "vgprs_report: cannot write %s\n",
                     opt.capture_path.c_str());
        return false;
      }
      write_btrace_file_info(single_, opt.scenario, opt.seed, opt.iters);
      mode_ = Mode::kSingle;
    } else if (!opt.capture_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(opt.capture_dir, ec);
      dir_ = opt.capture_dir;
      info_ = {opt.scenario, opt.seed, opt.iters};
      mode_ = Mode::kSplit;
    }
    return true;
  }

  [[nodiscard]] bool enabled() const { return mode_ != Mode::kOff; }

  /// Enables spans + binary capture + shard profiling on a freshly built
  /// scenario network.
  void arm(Network& net) const {
    net.spans().set_enabled(true);
    net.enable_shard_stats(shard_stats_);
    if (enabled()) net.enable_capture(CaptureConfig{ring_});
  }

  /// True while every capture write so far has succeeded.
  [[nodiscard]] bool ok() const { return ok_; }

  /// Writes everything `net` captured as one segment and resets its
  /// buffers.  `snapshot` must be the exact snapshot the report uses for
  /// this run so the offline decode reproduces it byte for byte.
  void finish(Network& net, std::string_view system, std::uint64_t events,
              const MetricsSnapshot& snapshot) {
    ok_ = ok_ && finish_impl(net, system, events, snapshot);
  }

 private:
  bool finish_impl(Network& net, std::string_view system, std::uint64_t events,
                   const MetricsSnapshot& snapshot) {
    if (mode_ == Mode::kSingle) {
      net.write_capture_segment(single_, system, events, snapshot);
      return static_cast<bool>(single_);
    }
    if (mode_ == Mode::kSplit) {
      if (shard_files_.empty()) {
        for (std::size_t s = 0; s < net.num_shards(); ++s) {
          auto f = std::make_unique<std::ofstream>(
              dir_ / ("shard-" + std::to_string(s) + ".btrace"),
              std::ios::binary);
          if (!*f) {
            std::fprintf(stderr, "vgprs_report: cannot write %s/shard-%zu.btrace\n",
                         dir_.c_str(), s);
            return false;
          }
          write_btrace_file_info(*f, info_.scenario, info_.seed, info_.iters);
          shard_files_.push_back(std::move(f));
        }
      }
      if (shard_files_.size() != net.num_shards()) {
        std::fprintf(stderr,
                     "vgprs_report: --capture-dir needs every run to use the "
                     "same shard count\n");
        return false;
      }
      std::vector<std::ostream*> outs;
      outs.reserve(shard_files_.size());
      for (auto& f : shard_files_) outs.push_back(f.get());
      net.write_capture_segment_files(outs, system, events, snapshot);
      for (auto& f : shard_files_) {
        if (!*f) return false;
      }
      return true;
    }
    return true;
  }

  enum class Mode { kOff, kSingle, kSplit };
  Mode mode_ = Mode::kOff;
  bool ok_ = true;
  bool shard_stats_ = false;
  std::size_t ring_ = 0;
  std::ofstream single_;
  std::filesystem::path dir_;
  BtraceInfo info_;
  std::vector<std::unique_ptr<std::ofstream>> shard_files_;
};

/// Per-SpanKind digest of a run's spans.
struct ProcedureStats {
  SpanKind kind = SpanKind::kRegistration;
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t timeout = 0;
  std::size_t rejected = 0;
  std::size_t open = 0;
  Histogram latency_ms;  // closed spans only
  Histogram hops;        // closed spans only
};

std::vector<ProcedureStats> digest(const std::vector<Span>& spans) {
  std::vector<ProcedureStats> stats(kSpanKindCount);
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    stats[k].kind = static_cast<SpanKind>(k);
  }
  for (const Span& span : spans) {
    ProcedureStats& p = stats[static_cast<std::size_t>(span.kind)];
    ++p.total;
    switch (span.outcome) {
      case SpanOutcome::kOpen:
        ++p.open;
        continue;  // no latency for open spans
      case SpanOutcome::kOk:
        ++p.ok;
        break;
      case SpanOutcome::kTimeout:
        ++p.timeout;
        break;
      case SpanOutcome::kRejected:
        ++p.rejected;
        break;
    }
    p.latency_ms.add(span.duration());
    p.hops.add(static_cast<double>(span.hops));
  }
  std::erase_if(stats, [](const ProcedureStats& p) { return p.total == 0; });
  return stats;
}

void print_table(const RunResult& run) {
  std::printf("== %s: %zu events, %.1f ms simulated ==\n", run.system.c_str(),
              run.events, run.sim_time_ms);
  std::printf("%-18s %6s %5s %8s %9s %5s %9s %9s %9s %7s\n", "procedure",
              "count", "ok", "timeout", "rejected", "open", "p50(ms)",
              "p95(ms)", "p99(ms)", "hops");
  for (const ProcedureStats& p : digest(run.spans)) {
    std::printf("%-18s %6zu %5zu %8zu %9zu %5zu %9.2f %9.2f %9.2f %7.1f\n",
                std::string(to_string(p.kind)).c_str(), p.total, p.ok,
                p.timeout, p.rejected, p.open, p.latency_ms.percentile(0.50),
                p.latency_ms.percentile(0.95), p.latency_ms.percentile(0.99),
                p.hops.mean());
  }
  std::int64_t sent = 0;
  auto it = run.metrics.counters.find("net/messages_sent");
  if (it != run.metrics.counters.end()) sent = it->second;
  std::printf("messages sent: %lld\n", static_cast<long long>(sent));
  if (!run.shard_perf.empty()) {
    std::printf("%-6s %9s %8s %9s %9s %9s %11s %9s\n", "shard", "windows",
                "fused", "events", "busy(ms)", "drain(ms)", "barrier(ms)",
                "idle(ms)");
    const auto ms = [](std::uint64_t ns) {
      return static_cast<double>(ns) / 1e6;
    };
    for (std::size_t s = 0; s < run.shard_perf.size(); ++s) {
      const ShardPerfStats& p = run.shard_perf[s];
      std::printf("%-6zu %9llu %8llu %9llu %9.2f %9.2f %11.2f %9.2f\n", s,
                  static_cast<unsigned long long>(p.windows),
                  static_cast<unsigned long long>(p.fused_windows),
                  static_cast<unsigned long long>(p.events), ms(p.busy_ns),
                  ms(p.drain_ns), ms(p.barrier_ns), ms(p.idle_ns));
    }
  }
  std::printf("\n");
}

void write_run_json(JsonWriter& w, const RunResult& run) {
  w.begin_object();
  w.kv("system", run.system);
  w.kv("events", static_cast<std::uint64_t>(run.events));
  w.kv("sim_time_ms", run.sim_time_ms);
  w.key("procedures");
  w.begin_array();
  for (const ProcedureStats& p : digest(run.spans)) {
    w.begin_object();
    w.kv("name", to_string(p.kind));
    w.kv("count", static_cast<std::uint64_t>(p.total));
    w.kv("ok", static_cast<std::uint64_t>(p.ok));
    w.kv("timeout", static_cast<std::uint64_t>(p.timeout));
    w.kv("rejected", static_cast<std::uint64_t>(p.rejected));
    w.kv("open", static_cast<std::uint64_t>(p.open));
    w.key("latency_ms");
    w.begin_object();
    w.kv("p50", p.latency_ms.percentile(0.50));
    w.kv("p95", p.latency_ms.percentile(0.95));
    w.kv("p99", p.latency_ms.percentile(0.99));
    w.kv("mean", p.latency_ms.mean());
    w.kv("min", p.latency_ms.min());
    w.kv("max", p.latency_ms.max());
    w.end_object();
    w.key("hops");
    w.begin_object();
    w.kv("mean", p.hops.mean());
    w.kv("max", p.hops.max());
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : run.metrics.counters) {
    w.kv(name, static_cast<std::int64_t>(value));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : run.metrics.gauges) w.kv(name, value);
  w.end_object();
  w.end_object();
}

// --- scenario runners --------------------------------------------------------

RunResult finish_run(Network& net, std::string system, std::size_t events,
                     CaptureWriter& cap) {
  RunResult r;
  r.system = std::move(system);
  if (net.shard_stats_enabled() && net.num_shards() > 1) {
    r.shard_perf = net.shard_perf();
  }
  r.spans = net.spans().spans();
  net.trace().for_each([&](const TraceEntry& e) { r.trace.push_back(e); });
  r.metrics = net.metrics_snapshot();
  r.sim_time_ms = static_cast<double>(net.now().count_micros()) / 1000.0;
  r.events = events;
  cap.finish(net, r.system, events, r.metrics);
  return r;
}

RunResult run_fig4(const Options& opt, CaptureWriter& cap) {
  VgprsParams params;
  params.num_ms = opt.iters;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  cap.arm(s->net);
  for (MobileStation* ms : s->ms) ms->power_on();
  std::size_t events = s->settle();
  return finish_run(s->net, "vgprs", events, cap);
}

RunResult run_fig5(const Options& opt, CaptureWriter& cap) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  cap.arm(s->net);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn callee = make_subscriber(88, 1000).msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->ms[0]->dial(callee);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events, cap);
}

RunResult run_fig6(const Options& opt, CaptureWriter& cap) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  cap.arm(s->net);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn callee = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->terminals[0]->place_call(callee);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events, cap);
}

RunResult run_tromboning(const Options& opt, bool use_vgprs,
                         CaptureWriter& cap) {
  TrombParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  params.use_vgprs = use_vgprs;
  auto s = build_tromboning(params);
  cap.arm(s->net);
  s->roamer->power_on();
  std::size_t events = s->settle();
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->caller->place_call(s->roamer_id.msisdn);
    events += s->settle();
    s->caller->hangup();
    events += s->settle();
  }
  s->net.metrics().gauge("tromboning/international_trunks") =
      static_cast<double>(s->international_trunks());
  return finish_run(s->net, use_vgprs ? "vgprs" : "gsm", events, cap);
}

RunResult run_fig9(const Options& opt, CaptureWriter& cap) {
  // One fresh network per handoff so every iteration starts from the same
  // topology; seeds vary so link jitter produces a latency distribution.
  RunResult combined;
  combined.system = "vgprs";
  MetricsRegistry aggregate;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    HandoffParams params;
    params.seed = opt.seed + i;
    params.target_is_vmsc = (i % 2) == 1;  // alternate GSM / VMSC targets
    apply_threads(params, opt);
    auto s = build_handoff(params);
    cap.arm(s->net);
    std::size_t iter_events = 0;
    s->ms->power_on();
    s->terminal->register_endpoint();
    iter_events += s->settle();
    s->ms->dial(make_subscriber(88, 1000).msisdn);
    iter_events += s->settle();
    s->bsc1->initiate_handover(s->ms->config().imsi, s->ms->call_ref(),
                               CellId(202));
    iter_events += s->settle();
    s->ms->hangup();
    iter_events += s->settle();
    combined.events += iter_events;
    const auto& spans = s->net.spans().spans();
    combined.spans.insert(combined.spans.end(), spans.begin(), spans.end());
    s->net.trace().for_each(
        [&](const TraceEntry& e) { combined.trace.push_back(e); });
    // Sync net/* counters into the registry, and hand the exact snapshot to
    // the capture so an offline decode re-aggregates the iterations the way
    // merge_from below does.
    MetricsSnapshot snap = s->net.metrics_snapshot();
    aggregate.merge_from(s->net.metrics());
    combined.sim_time_ms +=
        static_cast<double>(s->net.now().count_micros()) / 1000.0;
    cap.finish(s->net, "vgprs", iter_events, snap);
  }
  combined.metrics = aggregate.snapshot();
  return combined;
}

RunResult run_tr23821_workload(const Options& opt, CaptureWriter& cap) {
  TrParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_tr23821(params);
  cap.arm(s->net);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = make_subscriber(88, 1).msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    // MO call with per-call PDP reactivation (the TR resource policy).
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    // MT call through network-initiated PDP activation.
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "tr23821", events, cap);
}

RunResult run_vgprs_workload(const Options& opt, CaptureWriter& cap) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  cap.arm(s->net);
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events, cap);
}

// --- fault / recovery comparison ---------------------------------------------

/// One fault schedule valid for BOTH systems: it references only nodes and
/// message names the vGPRS and TR 23.821 scenarios share (SGSN, GGSN, GK and
/// the GPRS attach / PDP activation exchanges).  Registration-phase faults
/// are message-predicated; call-phase faults are time-windowed against the
/// fixed drive pattern below (call cycle i starts at 30 s + 60 s * i).
FaultSchedule report_fault_schedule() {
  const auto at = [](std::int64_t ms) { return SimTime::from_micros(ms * 1000); };
  FaultSchedule sched;
  // Registration phase: the first attach vanishes, the first PDP activation
  // arrives corrupted, and the gatekeeper is down when the terminal sends
  // its initial RRQ.  All three recover via sender retransmission.
  sched.message_faults.push_back(
      {MessagePredicate{"GPRS_Attach_Request", "", "", 1, 1}, FaultKind::kDrop});
  sched.message_faults.push_back(
      {MessagePredicate{"Activate_PDP_Context_Request", "", "", 1, 1},
       FaultKind::kCorrupt});
  sched.node_outages.push_back({"GK", at(0), at(1200)});
  // Call cycle 0 (t = 30 s): the SGSN-GGSN backbone drops everything for
  // 800 ms right as call signalling crosses it — forced setup retransmits.
  sched.link_windows.push_back({"SGSN", "GGSN", at(30'010), at(30'810)});
  // Call cycle 1 (t = 90 s): a 25 ms latency spike on the same backbone —
  // slower, but no losses.
  sched.latency_spikes.push_back(
      {"SGSN", "GGSN", at(90'000), at(96'000), SimDuration::millis(25)});
  // Call cycle 2 (t = 150 s): the gatekeeper crashes across admission —
  // ARQ retransmission carries the call through the restart.
  sched.node_outages.push_back({"GK", at(149'900), at(151'200)});
  return sched;
}

RunResult run_faults_vgprs(const Options& opt, CaptureWriter& cap) {
  VgprsParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_vgprs(params);
  cap.arm(s->net);
  s->net.install_faults(report_fault_schedule());
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = s->ms[0]->config().msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    events += s->net.run_until(
        SimTime::from_micros((30 + 60 * static_cast<std::int64_t>(i)) *
                             1'000'000));
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "vgprs", events, cap);
}

RunResult run_faults_tr23821(const Options& opt, CaptureWriter& cap) {
  TrParams params;
  params.seed = opt.seed;
  apply_threads(params, opt);
  auto s = build_tr23821(params);
  cap.arm(s->net);
  s->net.install_faults(report_fault_schedule());
  s->ms[0]->power_on();
  s->terminals[0]->register_endpoint();
  std::size_t events = s->settle();
  Msisdn term_alias = make_subscriber(88, 1000).msisdn;
  Msisdn ms_number = make_subscriber(88, 1).msisdn;
  for (std::uint32_t i = 0; i < opt.iters; ++i) {
    events += s->net.run_until(
        SimTime::from_micros((30 + 60 * static_cast<std::int64_t>(i)) *
                             1'000'000));
    s->ms[0]->dial(term_alias);
    events += s->settle();
    s->ms[0]->hangup();
    events += s->settle();
    s->terminals[0]->place_call(ms_number);
    events += s->settle();
    s->terminals[0]->hangup();
    events += s->settle();
  }
  return finish_run(s->net, "tr23821", events, cap);
}

std::vector<RunResult> run_scenario(const Options& opt, CaptureWriter& cap) {
  if (opt.scenario == "fig4") return {run_fig4(opt, cap)};
  if (opt.scenario == "fig5") return {run_fig5(opt, cap)};
  if (opt.scenario == "fig6") return {run_fig6(opt, cap)};
  if (opt.scenario == "fig7") return {run_tromboning(opt, false, cap)};
  if (opt.scenario == "fig8") return {run_tromboning(opt, true, cap)};
  if (opt.scenario == "fig9") return {run_fig9(opt, cap)};
  if (opt.scenario == "sec6") {
    RunResult v = run_vgprs_workload(opt, cap);
    RunResult t = run_tr23821_workload(opt, cap);
    std::vector<RunResult> out;
    out.push_back(std::move(v));
    out.push_back(std::move(t));
    return out;
  }
  if (opt.scenario == "faults") {
    RunResult v = run_faults_vgprs(opt, cap);
    RunResult t = run_faults_tr23821(opt, cap);
    std::vector<RunResult> out;
    out.push_back(std::move(v));
    out.push_back(std::move(t));
    return out;
  }
  return {};
}

constexpr const char* kScenarios[] = {"fig4", "fig5", "fig6", "fig7",
                                      "fig8", "fig9", "sec6", "faults"};

int usage() {
  std::fprintf(stderr,
               "usage: vgprs_report --scenario <name> [--iters N] [--seed S]\n"
               "                    [--threads N] [--json PATH] [--metrics "
               "PATH]\n"
               "                    [--chrome-trace PATH] [--trace-jsonl "
               "PATH]\n"
               "                    [--capture PATH | --capture-dir DIR]\n"
               "                    [--capture-ring BYTES] [--shard-stats 0|1]\n"
               "       vgprs_report decode --in PATH [--json PATH]\n"
               "                    [--metrics PATH] [--chrome-trace PATH]\n"
               "                    [--trace-jsonl PATH] [--diff PATH]\n"
               "--threads N with N > 1 runs the sharded engine on N worker\n"
               "threads.  Deterministic: traces, spans and metrics snapshots\n"
               "are byte-identical for every N (including N = 1) — worker\n"
               "count only changes wall-clock interleaving, never results\n"
               "--shard-stats 1 adds per-shard window-protocol profiling\n"
               "(windows / fused windows / events plus wall-clock busy, drain,\n"
               "barrier and idle time; the time columns are scheduling-\n"
               "dependent and excluded from the determinism guarantee;\n"
               "busy/drain are measured per shard, barrier/idle are the\n"
               "owning worker's waits repeated on each shard it owns)\n"
               "--capture writes a packed binary vgprs.btrace.v1 capture;\n"
               "decode reads one back (--in also takes a directory of\n"
               "per-shard files) and reprints/re-exports the run\n"
               "scenarios:");
  for (const char* s : kScenarios) std::fprintf(stderr, " %s", s);
  std::fprintf(stderr, "\n");
  return 2;
}

/// Writes the vgprs.report.v1 artifact for a list of runs.
bool write_report_json(const std::string& path, std::string_view scenario,
                       std::uint64_t seed, std::uint32_t iters,
                       const std::vector<RunResult>& runs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "vgprs_report: cannot write %s\n", path.c_str());
    return false;
  }
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "vgprs.report.v1");
  w.kv("scenario", scenario);
  w.kv("seed", seed);
  w.kv("iterations", static_cast<std::uint64_t>(iters));
  w.key("runs");
  w.begin_array();
  for (const RunResult& r : runs) write_run_json(w, r);
  w.end_array();
  w.end_object();
  out << "\n";
  return static_cast<bool>(out);
}

/// Shared export tail for live runs and decoded captures.
int export_artifacts(const Options& opt, std::string_view scenario,
                     std::uint64_t seed, std::uint32_t iters,
                     const std::vector<RunResult>& runs) {
  if (!opt.json_path.empty() &&
      !write_report_json(opt.json_path, scenario, seed, iters, runs)) {
    return 1;
  }
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    write_metrics_json(out, runs.front().metrics);
    out << "\n";
  }
  if (!opt.chrome_path.empty()) {
    std::ofstream out(opt.chrome_path);
    write_spans_chrome_trace(out, runs.front().spans,
                             "vgprs-" + std::string(scenario));
    out << "\n";
  }
  if (!opt.jsonl_path.empty()) {
    std::ofstream out(opt.jsonl_path);
    write_trace_jsonl(out, runs.front().trace);
  }
  return 0;
}

int run(const Options& opt) {
  register_all_messages();
  CaptureWriter cap;
  if (!cap.open(opt)) return 1;
  std::vector<RunResult> runs = run_scenario(opt, cap);
  if (runs.empty()) {
    std::fprintf(stderr, "vgprs_report: unknown scenario '%s'\n",
                 opt.scenario.c_str());
    return usage();
  }
  if (!cap.ok()) {
    std::fprintf(stderr, "vgprs_report: capture write failed\n");
    return 1;
  }
  for (const RunResult& r : runs) print_table(r);
  return export_artifacts(opt, opt.scenario, opt.seed, opt.iters, runs);
}

// --- decode ------------------------------------------------------------------

bool read_file(const std::filesystem::path& path,
               std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return !in.bad();
}

/// Loads a capture: a single file, or every regular file in a directory
/// (name order — the per-shard shard-N.btrace files a split capture writes).
Result<DecodedCapture> load_capture(const std::string& path) {
  std::error_code ec;
  std::vector<std::vector<std::uint8_t>> files;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::filesystem::path> names;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) names.push_back(entry.path());
    }
    std::sort(names.begin(), names.end());
    for (const auto& name : names) {
      files.emplace_back();
      if (!read_file(name, files.back())) {
        return Error{ErrorCode::kDecodeTruncated,
                     "cannot read capture file " + name.string()};
      }
    }
    if (files.empty()) {
      return Error{ErrorCode::kDecodeTruncated,
                   "capture directory " + path + " has no files"};
    }
  } else {
    files.emplace_back();
    if (!read_file(path, files.back())) {
      return Error{ErrorCode::kDecodeTruncated,
                   "cannot read capture file " + path};
    }
  }
  return decode_capture_files(files);
}

std::vector<RunResult> to_run_results(DecodedCapture& cap) {
  std::vector<RunResult> runs;
  runs.reserve(cap.runs.size());
  for (DecodedRun& run : cap.runs) {
    RunResult r;
    r.system = std::move(run.system);
    r.spans = std::move(run.spans);
    r.trace = std::move(run.trace);
    r.metrics = std::move(run.metrics);
    r.sim_time_ms = run.sim_time_ms;
    r.events = run.events;
    runs.push_back(std::move(r));
  }
  return runs;
}

/// Compares two decoded captures: first trace divergence, then per-procedure
/// latency deltas.  Returns true when identical.
bool diff_captures(const std::vector<RunResult>& a,
                   const std::vector<RunResult>& b) {
  bool same = true;
  if (a.size() != b.size()) {
    std::printf("diff: %zu runs vs %zu runs\n", a.size(), b.size());
    same = false;
  }
  const std::size_t nruns = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < nruns; ++i) {
    const RunResult& ra = a[i];
    const RunResult& rb = b[i];
    if (ra.system != rb.system) {
      std::printf("diff: run %zu system '%s' vs '%s'\n", i, ra.system.c_str(),
                  rb.system.c_str());
      same = false;
    }
    if (ra.events != rb.events) {
      std::printf("diff: run %zu events %zu vs %zu\n", i, ra.events,
                  rb.events);
      same = false;
    }
    // First trace divergence, with both sides' entries.
    const std::size_t n = std::min(ra.trace.size(), rb.trace.size());
    std::size_t d = 0;
    while (d < n) {
      const TraceEntry& ea = ra.trace[d];
      const TraceEntry& eb = rb.trace[d];
      if (ea.at != eb.at || ea.from != eb.from || ea.to != eb.to ||
          ea.message != eb.message || ea.summary != eb.summary) {
        break;
      }
      ++d;
    }
    if (d < n || ra.trace.size() != rb.trace.size()) {
      same = false;
      std::printf("diff: run %zu traces diverge at entry %zu of %zu/%zu\n", i,
                  d, ra.trace.size(), rb.trace.size());
      auto show = [&](const char* tag, const std::vector<TraceEntry>& t) {
        if (d < t.size()) {
          const TraceEntry& e = t[d];
          std::printf("  %s: %10.3f ms  %s -> %s  %s\n", tag, e.at.as_millis(),
                      e.from.c_str(), e.to.c_str(), e.summary.c_str());
        } else {
          std::printf("  %s: <no entry>\n", tag);
        }
      };
      show("a", ra.trace);
      show("b", rb.trace);
    }
    // Per-procedure latency deltas.
    std::vector<ProcedureStats> pa = digest(ra.spans);
    std::vector<ProcedureStats> pb = digest(rb.spans);
    for (const ProcedureStats& qa : pa) {
      const ProcedureStats* qb = nullptr;
      for (const ProcedureStats& q : pb) {
        if (q.kind == qa.kind) qb = &q;
      }
      if (qb == nullptr) {
        std::printf("diff: run %zu procedure %s only in a\n", i,
                    std::string(to_string(qa.kind)).c_str());
        same = false;
        continue;
      }
      const double dp50 =
          qa.latency_ms.percentile(0.50) - qb->latency_ms.percentile(0.50);
      const double dp95 =
          qa.latency_ms.percentile(0.95) - qb->latency_ms.percentile(0.95);
      if (qa.total != qb->total || qa.ok != qb->ok || dp50 != 0.0 ||
          dp95 != 0.0) {
        std::printf(
            "diff: run %zu %-16s count %zu/%zu ok %zu/%zu "
            "p50 delta %+.3f ms p95 delta %+.3f ms\n",
            i, std::string(to_string(qa.kind)).c_str(), qa.total, qb->total,
            qa.ok, qb->ok, dp50, dp95);
        same = false;
      }
    }
    for (const ProcedureStats& q : pb) {
      bool in_a = false;
      for (const ProcedureStats& qa : pa) in_a = in_a || qa.kind == q.kind;
      if (!in_a) {
        std::printf("diff: run %zu procedure %s only in b\n", i,
                    std::string(to_string(q.kind)).c_str());
        same = false;
      }
    }
  }
  return same;
}

struct DecodeOptions {
  std::string in_path;
  std::string diff_path;
  Options exports;  // json/metrics/chrome/jsonl paths reused
};

int run_decode(const DecodeOptions& opt) {
  register_all_messages();
  Result<DecodedCapture> decoded = load_capture(opt.in_path);
  if (!decoded.ok()) {
    std::fprintf(stderr, "vgprs_report: decode %s failed: %s\n",
                 opt.in_path.c_str(), decoded.error().to_string().c_str());
    return 1;
  }
  DecodedCapture cap = std::move(decoded).value();
  std::printf("capture: scenario=%s seed=%llu iterations=%u records=%llu\n",
              cap.info.scenario.c_str(),
              static_cast<unsigned long long>(cap.info.seed), cap.info.iters,
              static_cast<unsigned long long>(cap.records));
  for (const DecodedRun& run : cap.runs) {
    for (const DecodedShard& sh : run.shards) {
      if (sh.dropped_records != 0) {
        std::printf(
            "  (shard %u ring dropped %llu records / %llu bytes)\n", sh.index,
            static_cast<unsigned long long>(sh.dropped_records),
            static_cast<unsigned long long>(sh.dropped_bytes));
      }
    }
  }
  const BtraceInfo info = cap.info;
  std::vector<RunResult> runs = to_run_results(cap);
  for (const RunResult& r : runs) print_table(r);

  if (!opt.diff_path.empty()) {
    Result<DecodedCapture> other = load_capture(opt.diff_path);
    if (!other.ok()) {
      std::fprintf(stderr, "vgprs_report: decode %s failed: %s\n",
                   opt.diff_path.c_str(), other.error().to_string().c_str());
      return 1;
    }
    DecodedCapture other_cap = std::move(other).value();
    std::vector<RunResult> other_runs = to_run_results(other_cap);
    if (diff_captures(runs, other_runs)) {
      std::printf("captures identical\n");
    } else {
      return 1;
    }
  }
  return export_artifacts(opt.exports, info.scenario, info.seed, info.iters,
                          runs);
}

}  // namespace
}  // namespace vgprs

namespace {

int main_decode(int argc, char** argv) {
  vgprs::DecodeOptions opt;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vgprs_report: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--in") == 0) {
      opt.in_path = next("--in");
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      opt.diff_path = next("--diff");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.exports.json_path = next("--json");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opt.exports.metrics_path = next("--metrics");
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0) {
      opt.exports.chrome_path = next("--chrome-trace");
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0) {
      opt.exports.jsonl_path = next("--trace-jsonl");
    } else {
      return vgprs::usage();
    }
  }
  if (opt.in_path.empty()) return vgprs::usage();
  return vgprs::run_decode(opt);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "decode") == 0) {
    return main_decode(argc, argv);
  }
  vgprs::Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vgprs_report: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_uint = [&](const char* flag, std::uint64_t max) -> std::uint64_t {
      std::uint64_t v = 0;
      if (!vgprs::parse_u64_arg(next(flag), max, v)) {
        std::fprintf(stderr,
                     "vgprs_report: %s needs an unsigned integer <= %llu\n",
                     flag, static_cast<unsigned long long>(max));
        std::exit(vgprs::usage());
      }
      return v;
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      opt.scenario = next("--scenario");
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      opt.scenario = "faults";
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = next("--json");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opt.metrics_path = next("--metrics");
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0) {
      opt.chrome_path = next("--chrome-trace");
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0) {
      opt.jsonl_path = next("--trace-jsonl");
    } else if (std::strcmp(argv[i], "--capture") == 0) {
      opt.capture_path = next("--capture");
    } else if (std::strcmp(argv[i], "--capture-dir") == 0) {
      opt.capture_dir = next("--capture-dir");
    } else if (std::strcmp(argv[i], "--capture-ring") == 0) {
      opt.capture_ring = static_cast<std::size_t>(
          next_uint("--capture-ring", std::numeric_limits<std::uint64_t>::max()));
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      opt.iters = static_cast<std::uint32_t>(
          next_uint("--iters", std::numeric_limits<std::uint32_t>::max()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = next_uint("--seed", std::numeric_limits<std::uint64_t>::max());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<unsigned>(
          next_uint("--threads", std::numeric_limits<unsigned>::max()));
    } else if (std::strcmp(argv[i], "--shard-stats") == 0) {
      opt.shard_stats = next_uint("--shard-stats", 1) != 0;
    } else {
      return vgprs::usage();
    }
  }
  if (!opt.capture_path.empty() && !opt.capture_dir.empty()) {
    std::fprintf(stderr,
                 "vgprs_report: --capture and --capture-dir are exclusive\n");
    return vgprs::usage();
  }
  if (opt.scenario.empty()) return vgprs::usage();
  return vgprs::run(opt);
}
