#include "pstn/switch.hpp"

#include <atomic>

#include "common/log.hpp"

namespace vgprs {

Cic allocate_cic() {
  static std::atomic<Cic> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void register_pstn_messages() {
  register_message<IsupIam>();
  register_message<IsupAcm>();
  register_message<IsupAnm>();
  register_message<IsupRel>();
  register_message<IsupRlc>();
  register_message<TrunkVoice>();
}

void PstnSwitch::add_route(std::string prefix, std::string next_hop,
                           TrunkClass klass) {
  routes_.push_back(Route{std::move(prefix), std::move(next_hop), klass});
}

void PstnSwitch::attach_subscriber(Msisdn number, std::string node_name) {
  subscribers_[number] = std::move(node_name);
}

std::int64_t PstnSwitch::trunks_used(TrunkClass klass) const {
  return counters_.get(std::string("iam.") + to_string(klass));
}

const PstnSwitch::Route* PstnSwitch::best_route(const Msisdn& called) const {
  // Msisdn::to_string renders "+<digits>"; strip the '+'.
  std::string digits = called.to_string().substr(1);
  const Route* best = nullptr;
  for (const auto& route : routes_) {
    if (digits.starts_with(route.prefix) &&
        (best == nullptr || route.prefix.size() > best->prefix.size())) {
      best = &route;
    }
  }
  return best;
}

void PstnSwitch::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* iam = dynamic_cast<const IsupIam*>(&msg)) {
    NodeId next;
    TrunkClass klass = TrunkClass::kSubscriberLine;
    if (auto sub = subscribers_.find(iam->called);
        sub != subscribers_.end()) {
      Node* phone = net().node_by_name(sub->second);
      if (phone != nullptr) next = phone->id();
    } else if (const Route* route = best_route(iam->called)) {
      Node* hop = net().node_by_name(route->next_hop);
      if (hop != nullptr) {
        next = hop->id();
        klass = route->klass;
      }
    }
    if (!next.valid()) {
      VG_WARN("pstn", name() << ": no route to " << iam->called.to_string());
      auto rel = pool_message<IsupRel>();
      rel->cic = iam->cic;
      rel->cause = 1;  // unallocated number
      send(env.from, std::move(rel));
      return;
    }
    counters_.bump(std::string("iam.") + to_string(klass));
    legs_[iam->cic] = Leg{env.from, next};
    send(next, MessagePtr(msg.clone()));
    return;
  }

  // Everything else relays along the established legs: backward messages
  // (ACM/ANM) go upstream, REL/RLC/voice go to the peer of the sender.
  auto relay = [&](Cic cic) -> bool {
    auto it = legs_.find(cic);
    if (it == legs_.end()) return false;
    NodeId peer =
        env.from == it->second.upstream ? it->second.downstream
                                        : it->second.upstream;
    send(peer, MessagePtr(msg.clone()));
    return true;
  };

  if (const auto* acm = dynamic_cast<const IsupAcm*>(&msg)) {
    relay(acm->cic);
    return;
  }
  if (const auto* anm = dynamic_cast<const IsupAnm*>(&msg)) {
    relay(anm->cic);
    return;
  }
  if (const auto* rel = dynamic_cast<const IsupRel*>(&msg)) {
    relay(rel->cic);
    return;
  }
  if (const auto* rlc = dynamic_cast<const IsupRlc*>(&msg)) {
    relay(rlc->cic);
    legs_.erase(rlc->cic);
    return;
  }
  if (const auto* voice = dynamic_cast<const TrunkVoice*>(&msg)) {
    relay(voice->cic);
    return;
  }

  VG_WARN("pstn", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
