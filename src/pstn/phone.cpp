#include "pstn/phone.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

namespace {
constexpr std::uint64_t kAnswerKind = 1;
constexpr std::uint64_t kVoiceKind = 3;
constexpr std::uint64_t make_cookie(std::uint64_t kind, std::uint64_t epoch) {
  return (kind << 56) | (epoch & 0x00FFFFFFFFFFFFFFULL);
}
}  // namespace

NodeId PstnPhone::exchange() const {
  Node* n = net().node_by_name(config_.switch_name);
  if (n == nullptr) throw std::logic_error(name() + ": no switch");
  return n->id();
}

void PstnPhone::place_call(Msisdn called) {
  if (state_ != State::kIdle) return;
  state_ = State::kDialing;
  ++epoch_;
  cic_ = allocate_cic();
  auto iam = pool_message<IsupIam>();
  iam->cic = cic_;
  iam->calling = config_.number;
  iam->called = called;
  send(exchange(), std::move(iam));
}

void PstnPhone::answer() {
  if (state_ != State::kIncoming) return;
  state_ = State::kConnected;
  ++epoch_;
  auto anm = pool_message<IsupAnm>();
  anm->cic = cic_;
  send(exchange(), std::move(anm));
  if (on_connected) on_connected();
  if (voice_remaining_ > 0) send_voice_frame();
}

void PstnPhone::hangup() {
  if (state_ == State::kIdle) return;
  state_ = State::kReleasing;
  ++epoch_;
  auto rel = pool_message<IsupRel>();
  rel->cic = cic_;
  send(exchange(), std::move(rel));
}

void PstnPhone::start_voice(std::uint32_t count, SimDuration interval) {
  voice_remaining_ = count;
  voice_interval_ = interval;
  if (state_ == State::kConnected) send_voice_frame();
}

void PstnPhone::send_voice_frame() {
  if (voice_remaining_ == 0 || state_ != State::kConnected) return;
  --voice_remaining_;
  auto frame = pool_message<TrunkVoice>();
  frame->cic = cic_;
  frame->seq = ++voice_seq_;
  frame->origin_us = now().count_micros();
  send(exchange(), std::move(frame));
  if (voice_remaining_ > 0) {
    set_timer(voice_interval_, make_cookie(kVoiceKind, epoch_));
  }
}

void PstnPhone::on_timer(TimerId, std::uint64_t cookie) {
  std::uint64_t kind = cookie >> 56;
  std::uint64_t epoch = cookie & 0x00FFFFFFFFFFFFFFULL;
  if (epoch != epoch_) return;
  if (kind == kAnswerKind) answer();
  if (kind == kVoiceKind) send_voice_frame();
}

void PstnPhone::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* iam = dynamic_cast<const IsupIam*>(&msg)) {
    if (state_ != State::kIdle) {
      auto rel = pool_message<IsupRel>();
      rel->cic = iam->cic;
      rel->cause = 17;  // user busy
      send(env.from, std::move(rel));
      return;
    }
    state_ = State::kIncoming;
    ++epoch_;
    cic_ = iam->cic;
    auto acm = pool_message<IsupAcm>();
    acm->cic = cic_;
    send(env.from, std::move(acm));
    if (on_incoming) on_incoming(iam->calling);
    if (config_.auto_answer) {
      set_timer(config_.answer_delay, make_cookie(kAnswerKind, epoch_));
    }
    return;
  }
  if (const auto* acm = dynamic_cast<const IsupAcm*>(&msg)) {
    if (state_ == State::kDialing && acm->cic == cic_) {
      state_ = State::kRinging;
      if (on_ringback) on_ringback();
    }
    return;
  }
  if (const auto* anm = dynamic_cast<const IsupAnm*>(&msg)) {
    if (state_ == State::kRinging && anm->cic == cic_) {
      state_ = State::kConnected;
      if (on_connected) on_connected();
      if (voice_remaining_ > 0) send_voice_frame();
    }
    return;
  }
  if (const auto* rel = dynamic_cast<const IsupRel*>(&msg)) {
    if (rel->cic != cic_) return;
    auto rlc = pool_message<IsupRlc>();
    rlc->cic = cic_;
    send(env.from, std::move(rlc));
    state_ = State::kIdle;
    ++epoch_;
    if (on_released) on_released();
    return;
  }
  if (const auto* rlc = dynamic_cast<const IsupRlc*>(&msg)) {
    if (rlc->cic == cic_ && state_ == State::kReleasing) {
      state_ = State::kIdle;
      ++epoch_;
      if (on_released) on_released();
    }
    return;
  }
  if (const auto* voice = dynamic_cast<const TrunkVoice*>(&msg)) {
    if (voice->cic == cic_ && state_ == State::kConnected) {
      voice_latency_.add(
          SimDuration::micros(now().count_micros() - voice->origin_us));
    }
    return;
  }

  VG_DEBUG("phone", name() << ": ignoring " << msg.name());
}

}  // namespace vgprs
