// PSTN switch: prefix-based ISUP call routing with trunk-class accounting.
// The international-trunk counters are the measurable core of the paper's
// tromboning argument (Figs. 7-8): classic GSM call delivery to a roamer
// uses two international trunks, vGPRS uses none.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pstn/messages.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace vgprs {

enum class TrunkClass : std::uint8_t {
  kSubscriberLine = 0,
  kLocal = 1,
  kNational = 2,
  kInternational = 3,
};

[[nodiscard]] constexpr const char* to_string(TrunkClass c) {
  switch (c) {
    case TrunkClass::kSubscriberLine: return "subscriber";
    case TrunkClass::kLocal: return "local";
    case TrunkClass::kNational: return "national";
    case TrunkClass::kInternational: return "international";
  }
  return "?";
}

class PstnSwitch final : public Node {
 public:
  explicit PstnSwitch(std::string name) : Node(std::move(name)) {}

  /// Adds a routing entry: called numbers starting with `prefix` (digits,
  /// no '+') go to node `next_hop` over a trunk of class `klass`.
  /// Longest-prefix match wins.
  void add_route(std::string prefix, std::string next_hop, TrunkClass klass);

  /// Registers a directly attached subscriber line.
  void attach_subscriber(Msisdn number, std::string node_name);

  [[nodiscard]] std::int64_t trunks_used(TrunkClass klass) const;
  [[nodiscard]] const CounterSet& counters() const { return counters_; }

  void on_message(const Envelope& env) override;

 private:
  struct Route {
    std::string prefix;
    std::string next_hop;
    TrunkClass klass;
  };
  struct Leg {
    NodeId upstream;    // where the IAM came from
    NodeId downstream;  // where we forwarded it
  };

  [[nodiscard]] const Route* best_route(const Msisdn& called) const;

  std::vector<Route> routes_;
  std::unordered_map<Msisdn, std::string> subscribers_;
  std::unordered_map<Cic, Leg> legs_;
  CounterSet counters_;
};

}  // namespace vgprs
