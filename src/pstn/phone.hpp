// A fixed-line telephone attached to a PSTN switch.  Subscriber-line
// signaling is abstracted as ISUP toward the switch.
#pragma once

#include <functional>
#include <string>

#include "pstn/messages.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace vgprs {

class PstnPhone final : public Node {
 public:
  struct Config {
    Msisdn number;
    std::string switch_name;
    bool auto_answer = true;
    SimDuration answer_delay = SimDuration::millis(900);
  };

  enum class State { kIdle, kDialing, kRinging, kIncoming, kConnected,
                     kReleasing };

  PstnPhone(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  void place_call(Msisdn called);
  void answer();
  void hangup();

  /// Emits `count` trunk voice frames every `interval` once connected.
  void start_voice(std::uint32_t count,
                   SimDuration interval = SimDuration::millis(20));

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] Cic cic() const { return cic_; }
  [[nodiscard]] Msisdn number() const { return config_.number; }
  [[nodiscard]] const Histogram& voice_latency() const {
    return voice_latency_;
  }

  std::function<void()> on_ringback;   // far end alerting (ACM)
  std::function<void(Msisdn)> on_incoming;
  std::function<void()> on_connected;
  std::function<void()> on_released;

  void on_message(const Envelope& env) override;
  void on_timer(TimerId id, std::uint64_t cookie) override;

 private:
  [[nodiscard]] NodeId exchange() const;
  void send_voice_frame();

  Config config_;
  State state_ = State::kIdle;
  Cic cic_ = 0;
  std::uint64_t epoch_ = 0;

  std::uint32_t voice_remaining_ = 0;
  std::uint32_t voice_seq_ = 0;
  SimDuration voice_interval_ = SimDuration::millis(20);
  Histogram voice_latency_;
};

}  // namespace vgprs
