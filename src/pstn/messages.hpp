// ISUP subset (Q.763) used between PSTN switches, GMSCs, serving MSCs and
// the H.323 gateway: IAM / ACM / ANM / REL / RLC plus a trunk voice frame.
// Wire range 0x09xx.
#pragma once

#include "common/ids.hpp"
#include "sim/proto.hpp"

namespace vgprs {

/// Circuit Identification Code: identifies one call leg on one trunk group.
/// We allocate them globally unique per simulation for simplicity.
using Cic = std::uint32_t;

struct IsupIamInfo {
  Cic cic = 0;
  Msisdn calling;
  Msisdn called;  // dialled digits: an MSISDN or an MSRN rendered as digits

  void encode(ByteWriter& w) const {
    w.u32(cic);
    w.msisdn(calling);
    w.msisdn(called);
  }
  Status decode(ByteReader& r) {
    cic = r.u32();
    calling = r.msisdn();
    called = r.msisdn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{cic=" + std::to_string(cic) + " " + calling.to_string() +
           " -> " + called.to_string() + "}";
  }
};

struct IsupCicInfo {
  Cic cic = 0;

  void encode(ByteWriter& w) const { w.u32(cic); }
  Status decode(ByteReader& r) {
    cic = r.u32();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{cic=" + std::to_string(cic) + "}";
  }
};

struct IsupRelInfo {
  Cic cic = 0;
  std::uint8_t cause = 16;  // normal clearing

  void encode(ByteWriter& w) const {
    w.u32(cic);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    cic = r.u32();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{cic=" + std::to_string(cic) +
           " cause=" + std::to_string(cause) + "}";
  }
};

struct TrunkVoiceInfo {
  Cic cic = 0;
  std::uint32_t seq = 0;
  std::int64_t origin_us = 0;

  void encode(ByteWriter& w) const {
    w.u32(cic);
    w.u32(seq);
    w.u64(static_cast<std::uint64_t>(origin_us));
  }
  Status decode(ByteReader& r) {
    cic = r.u32();
    seq = r.u32();
    origin_us = static_cast<std::int64_t>(r.u64());
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{cic=" + std::to_string(cic) + " #" + std::to_string(seq) + "}";
  }
};

using IsupIam = ProtoMessage<IsupIamInfo, 0x0901, "ISUP_IAM">;
using IsupAcm = ProtoMessage<IsupCicInfo, 0x0902, "ISUP_ACM">;
using IsupAnm = ProtoMessage<IsupCicInfo, 0x0903, "ISUP_ANM">;
using IsupRel = ProtoMessage<IsupRelInfo, 0x0904, "ISUP_REL">;
using IsupRlc = ProtoMessage<IsupCicInfo, 0x0905, "ISUP_RLC">;
using TrunkVoice = ProtoMessage<TrunkVoiceInfo, 0x0910, "Trunk_Voice">;

void register_pstn_messages();

/// Allocates simulation-unique CICs.
Cic allocate_cic();

}  // namespace vgprs
