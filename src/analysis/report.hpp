// Shared finding/report model for the analysis tools (vgprs_lint,
// vgprs_verify).  A check reports findings into a Report; the tool driver
// turns the collected findings into the exit code and, on request, into
// JSON or SARIF artifacts for CI.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vgprs::analysis {

struct Finding {
  std::string rule;    // check family, e.g. "registry" or "verify:unhandled"
  std::string detail;  // human-readable description
  std::string file;    // optional source location (source-scanning rules)
  std::size_t line = 0;
};

/// Collects findings and echoes each to stdout as it arrives (so a ctest
/// log shows the violations in order even if the process later dies).
class Report {
 public:
  explicit Report(std::string tool, bool echo = true);

  void fail(const std::string& rule, const std::string& detail);
  void fail_at(const std::string& rule, const std::string& file,
               std::size_t line, const std::string& detail);

  [[nodiscard]] std::size_t violations() const { return findings_.size(); }
  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }
  [[nodiscard]] const std::string& tool() const { return tool_; }

 private:
  std::string tool_;
  bool echo_;
  std::vector<Finding> findings_;
};

/// Writes `{"tool": ..., "violations": N, "findings": [...]}`.
bool write_json(const Report& report, const std::string& path);

/// Writes a minimal SARIF 2.1.0 log (one run, level "error" results), the
/// format GitHub code scanning ingests for PR annotations.
bool write_sarif(const Report& report, const std::string& path);

}  // namespace vgprs::analysis
