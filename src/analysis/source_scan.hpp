// Helpers for rules that scan the protocol sources as text (the sharding
// rule today; anything auditing code rather than tables tomorrow).
#pragma once

#include <cstddef>
#include <string_view>

namespace vgprs::analysis {

/// 1-based line number of byte offset `pos` in `text`.
std::size_t line_of(std::string_view text, std::size_t pos);

/// True when `marker` appears on the same line as byte offset `pos` — the
/// idiom behind `lint:allow-cross-node` style same-line exemptions.
bool marker_on_line(std::string_view text, std::size_t pos,
                    std::string_view marker);

}  // namespace vgprs::analysis
