// The vGPRS verification model: which machines compose into which
// procedures, what the environment may throw at them, and the reasoned
// escape list for pairs the code intentionally drops.
#pragma once

#include "analysis/verify.hpp"

namespace vgprs::analysis {

/// The six per-procedure compositions (registration, origination,
/// termination, handoff, TR 23.821 baseline handset, plain GPRS data MS),
/// node bindings for flow-cover, and the verify:allow-* exemption rows.
const VerifyModel& vgprs_verify_model();

}  // namespace vgprs::analysis
