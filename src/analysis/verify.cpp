#include "analysis/verify.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

namespace vgprs::analysis {
namespace {

// --- event grammar ----------------------------------------------------------

std::string_view event_base(std::string_view event) {
  auto paren = event.find('(');
  return paren == std::string_view::npos ? event : event.substr(0, paren);
}

/// True when every qualifier tag of `event` ("E(a,b)" -> {a, b}) is in
/// `allowed`.  Unqualified events are always eligible.
bool qualifiers_allowed(std::string_view event,
                        const std::set<std::string, std::less<>>& allowed) {
  auto open = event.find('(');
  if (open == std::string_view::npos) return true;
  auto close = event.rfind(')');
  if (close == std::string_view::npos || close <= open) return false;
  std::string_view tags = event.substr(open + 1, close - open - 1);
  while (!tags.empty()) {
    auto comma = tags.find(',');
    std::string_view tag = tags.substr(0, comma);
    if (!allowed.contains(tag)) return false;
    if (comma == std::string_view::npos) break;
    tags = tags.substr(comma + 1);
  }
  return true;
}

// --- product-state exploration ----------------------------------------------

struct BoundMachine {
  const FsmTable* table;
  const MachineBinding* binding;
  std::map<std::string_view, std::size_t> state_index;
  /// Transition indices (into table->transitions) grouped by from-state.
  std::vector<std::vector<std::size_t>> out;
  std::set<std::string, std::less<>> qualifiers;
  std::set<std::string, std::less<>> internals;
  std::set<std::string_view> stable;
  std::set<std::string_view> terminal;
};

struct ProductState {
  std::vector<std::size_t> machine_state;
  std::size_t script_pos = 0;
  std::vector<std::string> inflight;  // kept sorted (multiset)
};

std::string state_key(const ProductState& s) {
  std::string key;
  for (std::size_t m : s.machine_state) {
    key += std::to_string(m);
    key += ',';
  }
  key += '@';
  key += std::to_string(s.script_pos);
  for (const std::string& msg : s.inflight) {
    key += '|';
    key += msg;
  }
  return key;
}

struct Exploration {
  std::size_t states = 0;
  std::size_t transitions = 0;
  bool truncated = false;
  /// Per bound machine: every state it rested in / transition it fired.
  std::vector<std::set<std::string_view>> visited_states;
  std::vector<std::set<std::size_t>> fired;
  struct Unhandled {
    std::string message;
    std::vector<std::string_view> snapshot;  // per-machine state names
  };
  std::vector<Unhandled> unhandled;                      // deduplicated
  std::vector<std::vector<std::string_view>> deadlocks;  // deduplicated
};

/// A runaway product space means the model (not the protocol) is wrong;
/// cap it so the tool reports instead of spinning.
constexpr std::size_t kMaxProductStates = 500'000;

std::vector<BoundMachine> bind_machines(const Procedure& proc,
                                        const std::vector<FsmTable>& tables,
                                        Report& report) {
  std::vector<BoundMachine> machines;
  for (const MachineBinding& binding : proc.machines) {
    const FsmTable* table = nullptr;
    for (const FsmTable& t : tables) {
      if (t.name == binding.table) table = &t;
    }
    if (table == nullptr) {
      report.fail("verify:model", "procedure '" + proc.name +
                                      "' binds unknown table '" +
                                      binding.table + "'");
      continue;
    }
    BoundMachine m;
    m.table = table;
    m.binding = &binding;
    for (std::size_t i = 0; i < table->states.size(); ++i) {
      m.state_index.emplace(table->states[i], i);
    }
    m.out.resize(table->states.size());
    for (std::size_t t = 0; t < table->transitions.size(); ++t) {
      auto it = m.state_index.find(table->transitions[t].from);
      if (it != m.state_index.end()) m.out[it->second].push_back(t);
    }
    m.qualifiers.insert(binding.qualifiers.begin(), binding.qualifiers.end());
    m.internals.insert(binding.internal_events.begin(),
                       binding.internal_events.end());
    m.stable.insert(table->stable.begin(), table->stable.end());
    m.terminal.insert(table->terminal.begin(), table->terminal.end());
    machines.push_back(std::move(m));
  }
  return machines;
}

Exploration explore(const Procedure& proc,
                    const std::vector<FsmTable>& tables, Report& report) {
  Exploration result;
  std::vector<BoundMachine> machines = bind_machines(proc, tables, report);
  result.visited_states.resize(machines.size());
  result.fired.resize(machines.size());
  if (machines.empty()) return result;

  ProductState initial;
  for (const BoundMachine& m : machines) {
    initial.machine_state.push_back(m.state_index.at(m.table->initial));
  }

  std::deque<ProductState> queue{initial};
  std::unordered_set<std::string> seen{state_key(initial)};
  std::set<std::string> unhandled_seen;
  std::set<std::string> deadlock_seen;

  auto snapshot_of = [&](const ProductState& s) {
    std::vector<std::string_view> snap;
    for (std::size_t i = 0; i < machines.size(); ++i) {
      snap.push_back(machines[i].table->states[s.machine_state[i]]);
    }
    return snap;
  };

  while (!queue.empty()) {
    ProductState s = std::move(queue.front());
    queue.pop_front();
    ++result.states;
    if (result.states > kMaxProductStates) {
      result.truncated = true;
      report.fail("verify:model",
                  "procedure '" + proc.name + "' exceeded " +
                      std::to_string(kMaxProductStates) +
                      " product states — tighten the script or window");
      break;
    }
    for (std::size_t i = 0; i < machines.size(); ++i) {
      result.visited_states[i].insert(
          machines[i].table->states[s.machine_state[i]]);
    }

    auto push = [&](ProductState&& succ) {
      ++result.transitions;
      std::string key = state_key(succ);
      if (seen.insert(std::move(key)).second) {
        queue.push_back(std::move(succ));
      }
    };

    bool any_move = false;

    // 1. Inject the next script entry into the in-flight window.
    if (s.script_pos < proc.script.size() &&
        s.inflight.size() < proc.window) {
      ProductState succ = s;
      const std::string& msg = proc.script[s.script_pos];
      succ.inflight.insert(
          std::upper_bound(succ.inflight.begin(), succ.inflight.end(), msg),
          msg);
      ++succ.script_pos;
      push(std::move(succ));
      any_move = true;
    }

    // 2. Deliver any in-flight message (nondeterministic order = reorder).
    for (std::size_t d = 0; d < s.inflight.size(); ++d) {
      if (d > 0 && s.inflight[d] == s.inflight[d - 1]) continue;
      const std::string& msg = s.inflight[d];
      std::vector<std::pair<std::size_t, std::size_t>> eligible;
      for (std::size_t i = 0; i < machines.size(); ++i) {
        const BoundMachine& m = machines[i];
        for (std::size_t t : m.out[s.machine_state[i]]) {
          const FsmTransition& tr = m.table->transitions[t];
          if (event_base(tr.event) != msg) continue;
          if (!qualifiers_allowed(tr.event, m.qualifiers)) continue;
          eligible.emplace_back(i, t);
        }
      }
      any_move = true;
      if (eligible.empty()) {
        std::string ukey = msg;
        auto snap = snapshot_of(s);
        for (std::string_view st : snap) {
          ukey += '|';
          ukey += st;
        }
        if (unhandled_seen.insert(ukey).second) {
          result.unhandled.push_back({msg, std::move(snap)});
        }
        // Drop and continue, so one gap cannot shadow a later one.
        ProductState succ = s;
        succ.inflight.erase(succ.inflight.begin() +
                            static_cast<long>(d));
        push(std::move(succ));
        continue;
      }
      for (auto [i, t] : eligible) {
        ProductState succ = s;
        succ.inflight.erase(succ.inflight.begin() + static_cast<long>(d));
        succ.machine_state[i] = machines[i].state_index.at(
            machines[i].table->transitions[t].to);
        result.fired[i].insert(t);
        push(std::move(succ));
      }
    }

    // 3. Internal events (timer expiries, local stimuli) fire freely.
    for (std::size_t i = 0; i < machines.size(); ++i) {
      const BoundMachine& m = machines[i];
      for (std::size_t t : m.out[s.machine_state[i]]) {
        const FsmTransition& tr = m.table->transitions[t];
        if (!m.internals.contains(event_base(tr.event))) continue;
        if (!qualifiers_allowed(tr.event, m.qualifiers)) continue;
        ProductState succ = s;
        succ.machine_state[i] = m.state_index.at(tr.to);
        result.fired[i].insert(t);
        push(std::move(succ));
        any_move = true;
      }
    }

    // 4. Quiescence: script drained, nothing in flight, no internal move.
    if (!any_move) {
      auto snap = snapshot_of(s);
      std::string dkey;
      for (std::string_view st : snap) {
        dkey += '|';
        dkey += st;
      }
      if (deadlock_seen.insert(dkey).second) {
        result.deadlocks.push_back(std::move(snap));
      }
    }
  }
  return result;
}

// --- exemption matching -----------------------------------------------------

bool field_matches(const std::string& pattern, std::string_view value) {
  return pattern == "*" || pattern == value;
}

std::string describe_snapshot(const std::vector<BoundMachine>& machines,
                              const std::vector<std::string_view>& snap) {
  std::string out = "{";
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (i > 0) out += ", ";
    out += machines[i].table->name;
    out += "=";
    out += snap[i];
  }
  out += "}";
  return out;
}

}  // namespace

void check_unhandled(const std::vector<FsmTable>& tables,
                     const VerifyModel& model, Report& report,
                     VerifyStats* stats) {
  std::vector<bool> used(model.exemptions.size(), false);
  for (const Procedure& proc : model.procedures) {
    Exploration ex = explore(proc, tables, report);
    if (stats != nullptr) {
      ++stats->procedures;
      stats->product_states += ex.states;
      stats->product_transitions += ex.transitions;
    }
    std::vector<BoundMachine> machines = bind_machines(proc, tables, report);
    for (const Exploration::Unhandled& u : ex.unhandled) {
      bool exempt = false;
      for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
        const VerifyExemption& row = model.exemptions[e];
        if (row.kind != "unhandled") continue;
        for (std::size_t i = 0; i < machines.size(); ++i) {
          if (!field_matches(row.machine, machines[i].table->name)) continue;
          if (!field_matches(row.state, u.snapshot[i])) continue;
          if (!field_matches(row.event, u.message)) continue;
          exempt = true;
          used[e] = true;
        }
      }
      if (!exempt) {
        report.fail("verify:unhandled",
                    "procedure '" + proc.name + "': message '" + u.message +
                        "' has no handler in reachable product state " +
                        describe_snapshot(machines, u.snapshot) +
                        " (delay/reorder within window " +
                        std::to_string(proc.window) + ")");
      }
    }
  }
  for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
    if (model.exemptions[e].kind == "unhandled" && !used[e]) {
      const VerifyExemption& row = model.exemptions[e];
      report.fail("verify:unhandled",
                  "exemption (" + row.machine + ", " + row.state + ", " +
                      row.event +
                      ") matches no reachable unhandled delivery — remove "
                      "the stale row");
    }
  }
}

void check_deadlock(const std::vector<FsmTable>& tables,
                    const VerifyModel& model, Report& report) {
  std::vector<bool> used(model.exemptions.size(), false);
  for (const Procedure& proc : model.procedures) {
    Exploration ex = explore(proc, tables, report);
    std::vector<BoundMachine> machines = bind_machines(proc, tables, report);
    for (const auto& snap : ex.deadlocks) {
      for (std::size_t i = 0; i < machines.size(); ++i) {
        const BoundMachine& m = machines[i];
        if (m.stable.contains(snap[i]) || m.terminal.contains(snap[i])) {
          continue;
        }
        bool exempt = false;
        for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
          const VerifyExemption& row = model.exemptions[e];
          if (row.kind != "deadlock") continue;
          if (!field_matches(row.machine, m.table->name)) continue;
          if (!field_matches(row.state, snap[i])) continue;
          exempt = true;
          used[e] = true;
        }
        if (!exempt) {
          report.fail("verify:deadlock",
                      "procedure '" + proc.name + "': machine '" +
                          std::string(m.table->name) +
                          "' can come to rest in non-stable state '" +
                          std::string(snap[i]) + "' (product state " +
                          describe_snapshot(machines, snap) +
                          ": no delivery, timer, or internal move left)");
        }
      }
    }
  }
  for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
    if (model.exemptions[e].kind == "deadlock" && !used[e]) {
      const VerifyExemption& row = model.exemptions[e];
      report.fail("verify:deadlock",
                  "exemption (" + row.machine + ", " + row.state +
                      ") matches no reachable quiescent state — remove the "
                      "stale row");
    }
  }
}

void check_dead_rows(const std::vector<FsmTable>& tables,
                     const VerifyModel& model, Report& report) {
  // Union coverage across every procedure, then report per table.
  std::map<std::string_view, std::set<std::string_view>> visited;
  std::map<std::string_view, std::set<std::size_t>> fired;
  std::set<std::string_view> bound;
  for (const Procedure& proc : model.procedures) {
    Exploration ex = explore(proc, tables, report);
    std::vector<BoundMachine> machines = bind_machines(proc, tables, report);
    for (std::size_t i = 0; i < machines.size(); ++i) {
      std::string_view name = machines[i].table->name;
      bound.insert(name);
      visited[name].insert(ex.visited_states[i].begin(),
                           ex.visited_states[i].end());
      fired[name].insert(ex.fired[i].begin(), ex.fired[i].end());
    }
  }

  std::vector<bool> used(model.exemptions.size(), false);
  auto exempt_row = [&](std::string_view table, std::string_view state,
                        std::string_view event) {
    bool hit = false;
    for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
      const VerifyExemption& row = model.exemptions[e];
      if (row.kind != "dead-row") continue;
      if (!field_matches(row.machine, table)) continue;
      if (!field_matches(row.state, state)) continue;
      if (!field_matches(row.event, event)) continue;
      hit = true;
      used[e] = true;
    }
    return hit;
  };

  for (const FsmTable& table : tables) {
    if (!bound.contains(table.name)) {
      report.fail("verify:dead-row",
                  "table '" + std::string(table.name) +
                      "' is not bound to any verify procedure — its rows "
                      "are never exercised");
      continue;
    }
    const auto& seen_states = visited[table.name];
    for (std::string_view state : table.states) {
      if (seen_states.contains(state)) continue;
      if (exempt_row(table.name, state, "*")) continue;
      report.fail("verify:dead-row",
                  "table '" + std::string(table.name) + "': state '" +
                      std::string(state) +
                      "' is never reached by any procedure exploration");
    }
    const auto& fired_rows = fired[table.name];
    for (std::size_t t = 0; t < table.transitions.size(); ++t) {
      if (fired_rows.contains(t)) continue;
      const FsmTransition& tr = table.transitions[t];
      if (exempt_row(table.name, tr.from, tr.event)) continue;
      report.fail("verify:dead-row",
                  "table '" + std::string(table.name) + "': transition '" +
                      std::string(tr.from) + " --" + std::string(tr.event) +
                      "--> " + std::string(tr.to) +
                      "' never fires in any procedure exploration");
    }
  }
  for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
    if (model.exemptions[e].kind == "dead-row" && !used[e]) {
      const VerifyExemption& row = model.exemptions[e];
      report.fail("verify:dead-row",
                  "exemption (" + row.machine + ", " + row.state + ", " +
                      row.event + ") matches no dead row — remove it");
    }
  }
}

void check_timers(const std::vector<FsmTable>& tables,
                  const std::vector<RetransmissionPolicy>& policies,
                  const VerifyModel& model, Report& report) {
  std::map<std::string_view, const RetransmissionPolicy*> policy_by_message;
  for (const RetransmissionPolicy& p : policies) {
    policy_by_message.emplace(p.message, &p);
  }

  std::vector<bool> used(model.exemptions.size(), false);
  auto exempt_state = [&](std::string_view table, std::string_view state) {
    bool hit = false;
    for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
      const VerifyExemption& row = model.exemptions[e];
      if (row.kind != "timer") continue;
      if (!field_matches(row.machine, table)) continue;
      if (!field_matches(row.state, state)) continue;
      hit = true;
      used[e] = true;
    }
    return hit;
  };

  for (const FsmTable& table : tables) {
    std::set<std::string_view> stable(table.stable.begin(),
                                      table.stable.end());
    std::set<std::string_view> terminal(table.terminal.begin(),
                                        table.terminal.end());
    std::set<std::string_view> states(table.states.begin(),
                                      table.states.end());
    std::map<std::string_view, std::vector<const FsmTimer*>> timers_by_state;
    for (const FsmTimer& timer : table.timers) {
      timers_by_state[timer.state].push_back(&timer);
    }

    // (a) Every waiting (non-stable, non-terminal) state is supervised.
    for (std::string_view state : table.states) {
      if (stable.contains(state) || terminal.contains(state)) continue;
      if (timers_by_state.contains(state)) continue;
      if (exempt_state(table.name, state)) continue;
      report.fail("verify:timer",
                  "table '" + std::string(table.name) + "': state '" +
                      std::string(state) +
                      "' waits with no declared timer (not stable, not "
                      "terminal, no FsmTimer row)");
    }

    // (b) Every timer row is well-formed: declared state, an expiry
    //     transition out of that state, and a backing retransmitter policy
    //     when it claims to retransmit a request.
    for (const FsmTimer& timer : table.timers) {
      std::string where = "table '" + std::string(table.name) +
                          "' timer on '" + std::string(timer.state) + "'";
      if (!states.contains(timer.state)) continue;  // flagged by lint fsm
      bool expiry_found = false;
      for (const FsmTransition& tr : table.transitions) {
        if (tr.from == timer.state &&
            event_base(tr.event) == timer.expiry_event) {
          expiry_found = true;
        }
      }
      if (!expiry_found) {
        report.fail("verify:timer",
                    where + ": expiry event '" +
                        std::string(timer.expiry_event) +
                        "' matches no transition out of that state");
      }
      if (!timer.retransmits.empty()) {
        auto it = policy_by_message.find(timer.retransmits);
        if (it == policy_by_message.end()) {
          report.fail("verify:timer",
                      where + ": retransmits '" +
                          std::string(timer.retransmits) +
                          "', which has no row in "
                          "all_retransmission_policies()");
        } else if (it->second->mechanism != "retransmitter") {
          report.fail("verify:timer",
                      where + ": retransmits '" +
                          std::string(timer.retransmits) +
                          "' but its policy mechanism is '" +
                          it->second->mechanism + "', not 'retransmitter'");
        }
      }
    }
  }
  for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
    if (model.exemptions[e].kind == "timer" && !used[e]) {
      const VerifyExemption& row = model.exemptions[e];
      report.fail("verify:timer",
                  "exemption (" + row.machine + ", " + row.state +
                      ") matches no unsupervised state — remove the stale "
                      "row");
    }
  }
}

void check_flow_cover(const std::vector<FsmTable>& tables,
                      const std::vector<NamedFlow>& flows,
                      const VerifyModel& model, Report& report) {
  std::map<std::string_view, const FsmTable*> table_by_name;
  for (const FsmTable& t : tables) table_by_name.emplace(t.name, &t);

  // Node label -> union of messages its machines can emit.
  std::map<std::string_view, std::set<std::string_view>> emits_by_node;
  for (const NodeBinding& nb : model.node_bindings) {
    auto& emits = emits_by_node[nb.node];
    for (const std::string& name : nb.tables) {
      auto it = table_by_name.find(name);
      if (it == table_by_name.end()) {
        report.fail("verify:model", "node binding '" + nb.node +
                                        "' references unknown table '" +
                                        name + "'");
        continue;
      }
      for (const FsmTransition& tr : it->second->transitions) {
        emits.insert(tr.emits.begin(), tr.emits.end());
      }
    }
  }

  std::vector<bool> used(model.exemptions.size(), false);
  for (const NamedFlow& flow : flows) {
    for (std::size_t i = 0; i < flow.steps.size(); ++i) {
      const FlowStep& step = flow.steps[i];
      auto it = emits_by_node.find(step.from);
      if (it == emits_by_node.end()) continue;  // node not bound to FSMs
      if (it->second.contains(step.message)) continue;
      bool exempt = false;
      for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
        const VerifyExemption& row = model.exemptions[e];
        if (row.kind != "flow-cover") continue;
        if (!field_matches(row.machine, step.from)) continue;
        if (!field_matches(row.event, step.message)) continue;
        exempt = true;
        used[e] = true;
      }
      if (exempt) continue;
      report.fail("verify:flow-cover",
                  "flow '" + flow.name + "' step " + std::to_string(i) +
                      " ('" + step.from + " --" + step.message + "--> " +
                      step.to + "'): no transition of the machines bound "
                      "to '" + step.from + "' emits this message");
    }
  }
  for (std::size_t e = 0; e < model.exemptions.size(); ++e) {
    if (model.exemptions[e].kind == "flow-cover" && !used[e]) {
      const VerifyExemption& row = model.exemptions[e];
      report.fail("verify:flow-cover",
                  "exemption (" + row.machine + ", " + row.event +
                      ") matches no uncovered flow step — remove it");
    }
  }
}

// --- rule families ----------------------------------------------------------

std::vector<RuleFamily> verify_rule_families(const VerifyModel& model,
                                             VerifyStats* stats) {
  std::vector<RuleFamily> families;
  families.push_back(
      {"unhandled",
       [&model, stats](Report& r) {
         check_unhandled(conformance_fsm_tables(), model, r, stats);
       },
       [](Report& r) {
         // A two-message script against a machine that only handles the
         // first: the second is deliverable everywhere, handled nowhere.
         FsmTable t;
         t.name = "seeded";
         t.initial = "a";
         t.states = {"a", "b"};
         t.stable = {"a", "b"};
         t.transitions = {{"a", "Msg_One", "b"}};
         VerifyModel tmp;
         tmp.procedures = {{"seeded", {{"seeded", {}, {}}},
                            {"Msg_One", "Msg_Two"}, 3}};
         check_unhandled({t}, tmp, r, nullptr);
       }});
  families.push_back(
      {"deadlock",
       [&model](Report& r) {
         check_deadlock(conformance_fsm_tables(), model, r);
       },
       [](Report& r) {
         // An internal move into a waiting state with no way out.
         FsmTable t;
         t.name = "seeded";
         t.initial = "a";
         t.states = {"a", "waiting"};
         t.stable = {"a"};
         t.transitions = {{"a", "go", "waiting"}};
         VerifyModel tmp;
         tmp.procedures = {{"seeded", {{"seeded", {}, {"go"}}}, {}, 3}};
         check_deadlock({t}, tmp, r);
       }});
  families.push_back(
      {"dead-row",
       [&model](Report& r) {
         check_dead_rows(conformance_fsm_tables(), model, r);
       },
       [](Report& r) {
         // State "c" and its return edge are declared but unreachable.
         FsmTable t;
         t.name = "seeded";
         t.initial = "a";
         t.states = {"a", "b", "c"};
         t.stable = {"a", "b", "c"};
         t.transitions = {{"a", "go", "b"}, {"c", "back", "a"}};
         VerifyModel tmp;
         tmp.procedures = {{"seeded", {{"seeded", {}, {"go", "back"}}},
                            {}, 3}};
         check_dead_rows({t}, tmp, r);
       }});
  families.push_back(
      {"timer",
       [&model](Report& r) {
         check_timers(conformance_fsm_tables(),
                      all_retransmission_policies(), model, r);
       },
       [](Report& r) {
         // "waiting" is neither stable nor terminal and holds no timer.
         FsmTable t;
         t.name = "seeded";
         t.initial = "a";
         t.states = {"a", "waiting"};
         t.stable = {"a"};
         t.transitions = {{"a", "go", "waiting"}, {"waiting", "back", "a"}};
         VerifyModel tmp;
         check_timers({t}, all_retransmission_policies(), tmp, r);
       }});
  families.push_back(
      {"flow-cover",
       [&model](Report& r) {
         check_flow_cover(conformance_fsm_tables(), all_conformance_flows(),
                          model, r);
       },
       [&model](Report& r) {
         // A VMSC-sourced step whose message no VMSC machine emits.
         VerifyModel tmp;
         tmp.node_bindings = model.node_bindings;
         std::vector<NamedFlow> flows{
             {"seeded", {{"VMSC", "Um_Channel_Request", "BSC"}}}};
         check_flow_cover(conformance_fsm_tables(), flows, tmp, r);
       }});
  return families;
}

}  // namespace vgprs::analysis
