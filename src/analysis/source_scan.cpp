#include "analysis/source_scan.hpp"

#include <algorithm>

namespace vgprs::analysis {

std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

bool marker_on_line(std::string_view text, std::size_t pos,
                    std::string_view marker) {
  const std::size_t begin = text.rfind('\n', pos) + 1;  // npos+1 == 0
  std::size_t end = text.find('\n', pos);
  if (end == std::string_view::npos) end = text.size();
  return text.substr(begin, end - begin).find(marker) !=
         std::string_view::npos;
}

}  // namespace vgprs::analysis
