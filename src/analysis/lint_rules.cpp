#include "analysis/lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/source_scan.hpp"
#include "sim/proto.hpp"
#include "vgprs/scenario.hpp"

namespace vgprs::analysis {
namespace {

// --- rule: registry ---------------------------------------------------------

// Name prefix -> required wire-type high byte.  Longest prefix wins, so
// "GTP_" beats "G".  Every registered name must match exactly one rule;
// an unmatched name is itself a violation (it would not read as any of the
// paper's interface labels in a trace).
struct PrefixRule {
  std::string_view prefix;
  std::uint8_t family;
};

constexpr PrefixRule kPrefixRules[] = {
    {"Um_", 0x01},    {"Abis_", 0x02},  {"A_", 0x03},
    {"E_", 0x03},     // inter-MSC trunk rides the A-family range
    {"MAP_", 0x04},   {"GPRS_", 0x05},  {"Activate_PDP_", 0x05},
    {"Deactivate_PDP_", 0x05},          {"Request_PDP_", 0x05},
    {"Gb_", 0x05},    {"GTP_", 0x06},   {"GGSN_", 0x06},
    {"IP_", 0x06},    {"Data_", 0x06},  // test traffic rides the IP range
    {"RAS_", 0x07},   {"Q931_", 0x08},  {"ISUP_", 0x09},
    {"Trunk_", 0x09}, {"RTP_", 0x0A},
};

const PrefixRule* prefix_rule_for(std::string_view name) {
  const PrefixRule* best = nullptr;
  for (const PrefixRule& rule : kPrefixRules) {
    if (name.substr(0, rule.prefix.size()) != rule.prefix) continue;
    if (best == nullptr || rule.prefix.size() > best->prefix.size()) {
      best = &rule;
    }
  }
  return best;
}

// --- rule: codec ------------------------------------------------------------

/// SplitMix64: deterministic fuzz bytes, seeded per wire type so a failure
/// reproduces from the message name alone.
class FuzzRng {
 public:
  explicit FuzzRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint8_t byte() { return static_cast<std::uint8_t>(next() & 0xFF); }

 private:
  std::uint64_t state_;
};

std::string hex16(std::uint16_t v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04X", v);
  return buf;
}

/// Decodes `wire` (a full type-header + payload buffer); when the decode
/// succeeds, the re-encoding must reproduce the buffer byte for byte —
/// every accepted buffer is canonical, so traces and retransmissions are
/// stable.  Crashes and UB surface as process death (under ctest) or as
/// sanitizer reports under the asan-ubsan preset.
void roundtrip_accepted(const MessageRegistry& reg,
                        std::span<const std::uint8_t> wire,
                        const std::string& context, Report& report) {
  auto decoded = reg.decode(wire);
  if (!decoded.ok()) return;  // graceful rejection is always acceptable
  std::vector<std::uint8_t> again = decoded.value()->encode();
  if (again.size() != wire.size() ||
      !std::equal(again.begin(), again.end(), wire.begin())) {
    report.fail("codec", context + ": accepted buffer is not canonical "
                                   "(decode -> re-encode changed bytes)");
  }
}

// --- rule: correlation ------------------------------------------------------

// Flow-table messages allowed to carry no correlation-id field.  Everything
// else in a documented figure flow must be attributable to a span (see
// Message::correlates()): transport wrappers are exempt because the tunneled
// payload correlates instead, and media/teardown unit-data frames are
// addressed by channel, not by subscriber identity.
constexpr std::string_view kCorrelationExempt[] = {
    // Gn/Gi transport wrappers: the tunneled payload (H.225/H.245/RTP over
    // the signaling PDP context) carries the correlation; the wrapper is
    // addressed by TEID/PDP address, not by subscriber identity.
    "GTP_T_PDU",
    "IP_Datagram",
};

// --- rule: retransmission ---------------------------------------------------

/// A flow-table message is request-like when it expects an answer: the
/// GPRS/GTP "_Request" convention, network-initiated "Request_*" prompts,
/// call offers and clears (which expect the proceeding/release sequence),
/// and any MAP operation with a registered "_ack" counterpart.
bool request_like(const std::set<std::string>& names, const std::string& name) {
  if (name.ends_with("_Request")) return true;
  if (name.starts_with("Request_")) return true;
  if (name.ends_with("_Setup") || name.ends_with("_Disconnect")) return true;
  return names.contains(name + "_ack");
}

// --- rule: sharding ---------------------------------------------------------

// Protocol directories scanned for cross-node shortcuts.  src/sim is
// deliberately absent: the engine (and the fault injector inside it) owns
// the only legitimate direct handler invocations.
constexpr const char* kShardingDirs[] = {"gsm",     "gprs",  "h323", "pstn",
                                         "tr23821", "vgprs", "voice"};

// Another node's handlers may only ever be entered by the engine.
constexpr std::string_view kShardingHandlers[] = {
    "->on_message(", "->on_timer(", "->on_restart("};

// Methods that are safe to chain on a node lookup: immutable identity
// reads that involve no cross-node state.
constexpr std::string_view kShardingAllowed[] = {"id", "name", "valid"};

constexpr std::string_view kShardingExempt = "lint:allow-cross-node";

}  // namespace

void check_registry(const MessageRegistry& reg, Report& report) {
  for (const auto& c : reg.collisions()) {
    report.fail("registry",
                "wire type 0x" + std::to_string(c.wire_type) +
                    " registered twice: as '" + c.existing + "' and as '" +
                    c.incoming + "'");
  }

  std::map<std::string, std::uint16_t> by_name;
  for (std::uint16_t type : reg.types()) {
    std::string name(reg.name_of(type));
    if (name.empty() || name == "<unknown>") {
      report.fail("registry", "wire type " + std::to_string(type) +
                                  " has no usable trace name");
      continue;
    }
    auto [it, inserted] = by_name.emplace(name, type);
    if (!inserted) {
      report.fail("registry", "trace name '" + name +
                                  "' registered for two wire types: " +
                                  std::to_string(it->second) + " and " +
                                  std::to_string(type));
    }

    const PrefixRule* rule = prefix_rule_for(name);
    auto family = static_cast<std::uint8_t>(type >> 8);
    if (rule == nullptr) {
      report.fail("registry", "'" + name +
                                  "' matches no interface-label prefix "
                                  "(Um_/Abis_/A_/MAP_/...)");
    } else if (family != rule->family) {
      report.fail("registry",
                  "'" + name + "' carries interface prefix '" +
                      std::string(rule->prefix) + "' but lives in wire range 0x" +
                      std::to_string(family) + "xx instead of 0x" +
                      std::to_string(rule->family) + "xx");
    }

    std::unique_ptr<Message> msg = reg.create(type);
    if (msg == nullptr) {
      report.fail("registry",
                  "'" + name + "': factory returned null");
      continue;
    }
    if (msg->wire_type() != type) {
      report.fail("registry", "'" + name +
                                  "': instance reports wire type " +
                                  std::to_string(msg->wire_type()) +
                                  ", registered under " +
                                  std::to_string(type));
    }
    if (msg->name() != name) {
      report.fail("registry", "'" + name + "': instance reports name '" +
                                  std::string(msg->name()) + "'");
    }
  }
}

void check_codec(const MessageRegistry& reg, Report& report) {
  for (std::uint16_t type : reg.types()) {
    std::string name(reg.name_of(type));
    std::unique_ptr<Message> proto = reg.create(type);
    if (proto == nullptr) continue;  // reported by the registry rule

    // 1. Default-payload roundtrip: encode -> decode -> re-encode must be
    //    byte-exact and the decoder must consume the whole payload.
    std::vector<std::uint8_t> wire = proto->encode();
    auto decoded = reg.decode(wire);
    if (!decoded.ok()) {
      report.fail("codec", "'" + name + "' (" + hex16(type) +
                               "): cannot decode its own encoding: " +
                               decoded.error().to_string());
      continue;
    }
    std::vector<std::uint8_t> again = decoded.value()->encode();
    if (again != wire) {
      report.fail("codec", "'" + name + "' (" + hex16(type) +
                               "): encode -> decode -> re-encode is not "
                               "byte-exact");
      continue;
    }

    // 2. Truncation sweep: every proper prefix must decode gracefully
    //    (an error Status, or a canonical acceptance when a shorter
    //    encoding happens to be self-consistent).
    for (std::size_t len = 0; len < wire.size(); ++len) {
      roundtrip_accepted(reg, std::span(wire.data(), len),
                         "'" + name + "' truncated to " +
                             std::to_string(len) + " bytes",
                         report);
    }

    // 3. Deterministic corruption sweep: flip every byte of the payload
    //    through a few fuzzed values.  Decoders must never crash, and any
    //    accepted mutation must still be canonical.
    FuzzRng rng(0xC0DEC'0000ULL + type);
    std::vector<std::uint8_t> mutated = wire;
    for (std::size_t pos = 2; pos < mutated.size(); ++pos) {
      for (int round = 0; round < 4; ++round) {
        std::uint8_t orig = mutated[pos];
        mutated[pos] = static_cast<std::uint8_t>(orig ^ rng.byte());
        roundtrip_accepted(reg, mutated,
                           "'" + name + "' with byte " +
                               std::to_string(pos) + " corrupted",
                           report);
        mutated[pos] = orig;
      }
    }

    // 4. Fuzzed-payload sweep: random payload bytes after a valid type
    //    header.  Almost all are rejected; the point is that rejection is
    //    graceful and acceptance is canonical.
    for (int round = 0; round < 32; ++round) {
      std::vector<std::uint8_t> buf;
      buf.push_back(static_cast<std::uint8_t>(type >> 8));
      buf.push_back(static_cast<std::uint8_t>(type & 0xFF));
      std::size_t len = rng.next() % (wire.size() + 16);
      for (std::size_t i = 0; i < len; ++i) buf.push_back(rng.byte());
      roundtrip_accepted(reg, buf,
                         "'" + name + "' fuzzed payload round " +
                             std::to_string(round),
                         report);
    }
  }
}

void check_flows(const MessageRegistry& reg,
                 const std::vector<NamedFlow>& flows, Report& report) {
  std::set<std::string_view> names;
  for (std::uint16_t type : reg.types()) names.insert(reg.name_of(type));

  for (const NamedFlow& flow : flows) {
    if (flow.steps.empty()) {
      report.fail("flows", "flow '" + flow.name + "' declares no steps");
    }
    for (std::size_t i = 0; i < flow.steps.size(); ++i) {
      const FlowStep& step = flow.steps[i];
      // Empty message strings are wildcards in TraceRecorder, but a flow
      // table documenting a paper figure must name every hop.
      if (step.message.empty() || !names.contains(step.message)) {
        report.fail("flows", "flow '" + flow.name + "' step " +
                                 std::to_string(i) + " ('" + step.from +
                                 " --" + step.message + "--> " + step.to +
                                 "'): message is not a registered wire name");
      }
    }
  }
}

void check_correlation(const MessageRegistry& reg,
                       const std::vector<NamedFlow>& flows,
                       Report& report) {
  std::map<std::string, std::uint16_t> by_name;
  for (std::uint16_t type : reg.types()) {
    by_name.emplace(std::string(reg.name_of(type)), type);
  }
  const std::set<std::string_view> exempt(std::begin(kCorrelationExempt),
                                          std::end(kCorrelationExempt));
  std::set<std::string> checked;
  std::set<std::string_view> used;
  for (const NamedFlow& flow : flows) {
    for (const FlowStep& step : flow.steps) {
      auto it = by_name.find(step.message);
      if (it == by_name.end()) continue;  // the flows rule reports these
      if (!checked.insert(step.message).second) continue;
      std::unique_ptr<Message> msg = reg.create(it->second);
      if (msg == nullptr) continue;  // the registry rule reports these
      const bool exempted = exempt.contains(step.message);
      if (exempted) used.insert(*exempt.find(step.message));
      if (!msg->correlates() && !exempted) {
        report.fail("correlation",
                    "flow '" + flow.name + "': message '" + step.message +
                        "' carries no correlation-id field and is not "
                        "exempted — spans cannot attribute it");
      } else if (msg->correlates() && exempted) {
        report.fail("correlation", "message '" + step.message +
                                       "' is exempted but correlates — "
                                       "remove the stale exemption");
      }
    }
  }
  // Exemptions that no flow uses rot silently; make them violations so the
  // list shrinks with the flows it covers.
  for (std::string_view name : exempt) {
    if (!used.contains(name)) {
      report.fail("correlation", "exemption '" + std::string(name) +
                                     "' matches no flow-table message — "
                                     "remove it");
    }
  }
}

void check_retransmission(const MessageRegistry& reg,
                          const std::vector<NamedFlow>& flows,
                          const std::vector<RetransmissionPolicy>& policies,
                          Report& report) {
  std::set<std::string> names;
  for (std::uint16_t type : reg.types()) {
    names.insert(std::string(reg.name_of(type)));
  }

  std::map<std::string, const RetransmissionPolicy*> by_message;
  for (const RetransmissionPolicy& policy : policies) {
    if (!by_message.emplace(policy.message, &policy).second) {
      report.fail("retransmission",
                  "duplicate policy row for '" + policy.message + "'");
    }
    if (policy.owner.empty()) {
      report.fail("retransmission",
                  "policy row '" + policy.message + "' names no owner");
    }
    if (policy.mechanism == "exempt") {
      if (policy.reason.empty()) {
        report.fail("retransmission",
                    "policy row '" + policy.message +
                        "' is exempt without a reason");
      }
    } else if (policy.mechanism != "retransmitter" &&
               policy.mechanism != "guard-retry") {
      report.fail("retransmission",
                  "policy row '" + policy.message +
                      "' declares unknown mechanism '" + policy.mechanism +
                      "'");
    } else if (!policy.reason.empty()) {
      report.fail("retransmission",
                  "policy row '" + policy.message +
                      "' carries a reason but is not exempt — reasons "
                      "document exemptions only");
    }
  }

  std::set<std::string> requests;
  for (const NamedFlow& flow : flows) {
    for (const FlowStep& step : flow.steps) {
      if (names.contains(step.message) && request_like(names, step.message)) {
        requests.insert(step.message);
      }
    }
  }

  for (const std::string& msg : requests) {
    if (!by_message.contains(msg)) {
      report.fail("retransmission",
                  "request '" + msg +
                      "' appears in the flow tables but declares no "
                      "retransmission policy or exemption");
    }
  }
  // Rows covering nothing rot silently; make them violations so the table
  // shrinks with the flows it covers.
  for (const auto& [msg, policy] : by_message) {
    if (!requests.contains(msg)) {
      report.fail("retransmission",
                  "policy row '" + msg +
                      "' matches no request-type message in the flow "
                      "tables — remove the stale row");
    }
  }
}

void check_fsm(const MessageRegistry& reg,
               const std::vector<FsmTable>& tables, Report& report) {
  std::set<std::string_view> wire_names;
  for (std::uint16_t type : reg.types()) wire_names.insert(reg.name_of(type));

  for (const FsmTable& fsm : tables) {
    std::string tag = "fsm:" + std::string(fsm.name);
    std::set<std::string_view> states(fsm.states.begin(), fsm.states.end());
    if (states.size() != fsm.states.size()) {
      report.fail(tag, "duplicate state declarations");
    }
    if (!states.contains(fsm.initial)) {
      report.fail(tag, "initial state '" + std::string(fsm.initial) +
                           "' is not declared");
    }
    for (std::string_view term : fsm.terminal) {
      if (!states.contains(term)) {
        report.fail(tag, "terminal state '" + std::string(term) +
                             "' is not declared");
      }
    }
    // The completeness metadata must reference declared states too.
    for (std::string_view s : fsm.stable) {
      if (!states.contains(s)) {
        report.fail(tag, "stable state '" + std::string(s) +
                             "' is not declared");
      }
    }
    for (const FsmTimer& timer : fsm.timers) {
      if (!states.contains(timer.state)) {
        report.fail(tag, "timer row for '" + std::string(timer.state) +
                             "' references an undeclared state");
      }
    }

    std::set<std::tuple<std::string_view, std::string_view, std::string_view>>
        seen;
    std::map<std::string_view, std::vector<std::string_view>> out_edges;
    for (const FsmTransition& tr : fsm.transitions) {
      for (std::string_view endpoint : {tr.from, tr.to}) {
        if (!states.contains(endpoint)) {
          report.fail(tag, "transition '" + std::string(tr.from) + " --" +
                               std::string(tr.event) + "--> " +
                               std::string(tr.to) +
                               "' references undeclared state '" +
                               std::string(endpoint) + "'");
        }
      }
      if (!seen.insert({tr.from, tr.event, tr.to}).second) {
        report.fail(tag, "duplicate transition '" + std::string(tr.from) +
                             " --" + std::string(tr.event) + "--> " +
                             std::string(tr.to) + "'");
      }
      out_edges[tr.from].push_back(tr.to);

      // Events named like wire messages (Uppercase_With_Underscores,
      // optionally with a "(qualifier)") must resolve to the registry, so
      // the tables cannot drift from the catalogs they describe.  The same
      // goes for every name in an emits list.
      std::string_view event = tr.event;
      if (auto paren = event.find('('); paren != std::string_view::npos) {
        event = event.substr(0, paren);
      }
      bool wire_like = !event.empty() && event.front() >= 'A' &&
                       event.front() <= 'Z' &&
                       event.find('_') != std::string_view::npos;
      if (wire_like && !wire_names.contains(event)) {
        report.fail(tag, "event '" + std::string(event) +
                             "' looks like a wire message but is not "
                             "registered");
      }
      for (std::string_view emit : tr.emits) {
        if (!wire_names.contains(emit)) {
          report.fail(tag, "transition '" + std::string(tr.from) + " --" +
                               std::string(tr.event) + "--> " +
                               std::string(tr.to) + "' emits '" +
                               std::string(emit) +
                               "', which is not a registered wire name");
        }
      }
    }

    // Reachability from the initial state.
    std::set<std::string_view> reachable{fsm.initial};
    std::vector<std::string_view> frontier{fsm.initial};
    while (!frontier.empty()) {
      std::string_view state = frontier.back();
      frontier.pop_back();
      for (std::string_view next : out_edges[state]) {
        if (reachable.insert(next).second) frontier.push_back(next);
      }
    }
    std::set<std::string_view> terminal(fsm.terminal.begin(),
                                        fsm.terminal.end());
    for (std::string_view state : fsm.states) {
      if (!reachable.contains(state)) {
        report.fail(tag, "state '" + std::string(state) +
                             "' is unreachable from '" +
                             std::string(fsm.initial) + "'");
      }
      if (out_edges[state].empty() && !terminal.contains(state)) {
        report.fail(tag, "state '" + std::string(state) +
                             "' is a dead end (no outgoing transition and "
                             "not declared terminal)");
      }
    }
  }
}

void check_sharding_text(const std::string& rel_path, std::string_view text,
                         Report& report) {
  for (std::string_view pattern : kShardingHandlers) {
    for (std::size_t pos = text.find(pattern);
         pos != std::string_view::npos; pos = text.find(pattern, pos + 1)) {
      if (marker_on_line(text, pos, kShardingExempt)) continue;
      report.fail_at("sharding", rel_path, line_of(text, pos),
                     "direct '" +
                         std::string(pattern.substr(2, pattern.size() - 3)) +
                         "' invocation on another node — only the engine "
                         "may enter a handler; use send()");
    }
  }

  const std::set<std::string_view> allowed(std::begin(kShardingAllowed),
                                           std::end(kShardingAllowed));
  for (std::string_view lookup : {std::string_view("net().node("),
                                  std::string_view("net().node_by_name(")}) {
    for (std::size_t pos = text.find(lookup);
         pos != std::string_view::npos; pos = text.find(lookup, pos + 1)) {
      // Find the matching close paren of the lookup's argument list.
      std::size_t i = pos + lookup.size() - 1;  // at the open paren
      int depth = 0;
      while (i < text.size()) {
        if (text[i] == '(') ++depth;
        if (text[i] == ')' && --depth == 0) break;
        ++i;
      }
      if (i >= text.size()) break;  // unbalanced; not our problem
      // Same-statement chain?  Skip whitespace (incl. a wrapped line).
      std::size_t j = i + 1;
      while (j < text.size() &&
             std::isspace(static_cast<unsigned char>(text[j])) != 0) {
        ++j;
      }
      if (j + 1 >= text.size() || text[j] != '-' || text[j + 1] != '>') {
        continue;  // stored in a variable — fine, later calls are visible
      }
      std::size_t m = j + 2;
      std::size_t name_begin = m;
      while (m < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[m])) != 0 ||
              text[m] == '_')) {
        ++m;
      }
      const std::string_view method = text.substr(name_begin, m - name_begin);
      if (allowed.contains(method)) continue;
      if (marker_on_line(text, pos, kShardingExempt)) continue;
      report.fail_at("sharding", rel_path, line_of(text, pos),
                     "chained '->" + std::string(method) + "(...)' on a " +
                         std::string(lookup) +
                         ") lookup crosses node (and possibly shard) "
                         "boundaries — use send()");
    }
  }
}

void check_sharding(const std::string& source_root, Report& report) {
  namespace fs = std::filesystem;
  const fs::path root = source_root;
  std::size_t scanned = 0;
  for (const char* dir : kShardingDirs) {
    const fs::path subtree = root / dir;
    if (!fs::is_directory(subtree)) {
      report.fail("sharding", "protocol directory '" + std::string(dir) +
                                  "' missing under " + root.string());
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(subtree)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::ifstream in(entry.path());
      if (!in.good()) {
        report.fail("sharding", "cannot read " + entry.path().string());
        continue;
      }
      std::ostringstream text;
      text << in.rdbuf();
      check_sharding_text(
          fs::relative(entry.path(), root).generic_string(), text.str(),
          report);
      ++scanned;
    }
  }
  if (scanned == 0) {
    report.fail("sharding", "no protocol sources found under " +
                                root.string() + " — wrong source root?");
  }
}

// --- self-test seeds --------------------------------------------------------

namespace {

/// A deliberately asymmetric codec: encodes two bytes, decodes one.
struct BrokenEchoPayload {
  std::uint8_t value = 7;
  void encode(ByteWriter& w) const {
    w.u8(value);
    w.u8(value);
  }
  Status decode(ByteReader& r) {
    value = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const { return {}; }
};
using BrokenEcho = ProtoMessage<BrokenEchoPayload, 0x7F01, "Um_Broken_Echo">;

/// A message with no identity field at all: correlates() is false, so a flow
/// step naming it must trip the correlation rule unless exempted.
struct NoCorrPayload {
  std::uint8_t value = 3;
  void encode(ByteWriter& w) const { w.u8(value); }
  Status decode(ByteReader& r) {
    value = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const { return {}; }
};
using NoCorrProbe = ProtoMessage<NoCorrPayload, 0x7F02, "Um_No_Corr_Probe">;

}  // namespace

std::vector<RuleFamily> lint_rule_families(const std::string& source_root) {
  register_all_messages();
  const MessageRegistry& reg = MessageRegistry::instance();

  std::vector<RuleFamily> families;
  families.push_back(
      {"registry", [&reg](Report& r) { check_registry(reg, r); },
       [&reg](Report& r) {
         // Same wire type as Um_Channel_Request, different name.
         MessageRegistry::instance().add(0x0101, "Um_Channel_Request_Typo",
                                         [] { return nullptr; });
         check_registry(reg, r);
       }});
  families.push_back(
      {"codec", [&reg](Report& r) { check_codec(reg, r); },
       [&reg](Report& r) {
         register_message<BrokenEcho>();
         check_codec(reg, r);
       }});
  families.push_back(
      {"flows",
       [&reg](Report& r) { check_flows(reg, all_conformance_flows(), r); },
       [&reg](Report& r) {
         std::vector<NamedFlow> flows{
             {"seeded", {{"MS1", "Um_Location_Updaet_Request", "BTS"}}}};
         check_flows(reg, flows, r);
       }});
  families.push_back(
      {"correlation",
       [&reg](Report& r) {
         check_correlation(reg, all_conformance_flows(), r);
       },
       [&reg](Report& r) {
         register_message<NoCorrProbe>();
         // Keep the real flows so the exemption list stays "used"; the
         // seeded step is the single extra violation.
         std::vector<NamedFlow> flows = all_conformance_flows();
         flows.push_back({"seeded", {{"MS1", "Um_No_Corr_Probe", "BTS"}}});
         check_correlation(reg, flows, r);
       }});
  families.push_back(
      {"retransmission",
       [&reg](Report& r) {
         check_retransmission(reg, all_conformance_flows(),
                              all_retransmission_policies(), r);
       },
       [&reg](Report& r) {
         // MAP_Send_Auth_Info is a real registered request (it has a _ack
         // counterpart) that no declared flow uses, so the policy table has
         // no row for it; a flow step naming it must trip the coverage
         // check.
         std::vector<NamedFlow> flows = all_conformance_flows();
         flows.push_back({"seeded", {{"VMSC", "MAP_Send_Auth_Info", "VLR"}}});
         check_retransmission(reg, flows, all_retransmission_policies(), r);
       }});
  families.push_back(
      {"fsm",
       [&reg](Report& r) { check_fsm(reg, conformance_fsm_tables(), r); },
       [&reg](Report& r) {
         FsmTable fsm;
         fsm.name = "seeded";
         fsm.initial = "idle";
         fsm.states = {"idle", "busy", "orphan"};
         fsm.transitions = {{"idle", "A_Setup", "busy"},
                            {"busy", "A_Clear_Complete", "idle"}};
         check_fsm(reg, {fsm}, r);
       }});
  families.push_back(
      {"sharding",
       [source_root](Report& r) { check_sharding(source_root, r); },
       [](Report& r) {
         const std::string seeded =
             "void Bad::poke(NodeId peer, const Envelope& env) {\n"
             "  net().node(peer)->on_message(env);\n"
             "  net().node_by_name(\"VLR\")->provision(imsi);\n"
             "  Msisdn who = net().node(peer)->name();\n"
             "  net().node(peer)->steal_state();  // lint:allow-cross-node "
             "audited\n"
             "}\n";
         check_sharding_text("seeded.cpp", seeded, r);
       },
       // Exactly 3 expected: the handler invocation trips both the handler
       // and the chain pattern, provision() trips the chain pattern; the
       // name() chain and the exempted line must stay clean.
       3, 3});
  return families;
}

}  // namespace vgprs::analysis
