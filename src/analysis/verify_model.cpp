#include "analysis/verify_model.hpp"

namespace vgprs::analysis {
namespace {

// Qualifier allowlists.  A registration run may branch through the
// authentication/ciphering configuration variants but never the call
// variants; an MO run may take the (mo)/(call) edges but never (register);
// and so on.  This is how one msc-call table serves three procedures
// without cross-contaminating their state spaces.
const std::vector<std::string> kRegisterQualifiers{
    "register", "no-auth", "no-vectors", "mismatch", "no-cipher", "failure"};
const std::vector<std::string> kMoQualifiers{
    "mo", "call", "no-auth", "no-vectors", "mismatch", "no-cipher",
    "failure"};
const std::vector<std::string> kMtQualifiers{
    "mt", "call", "no-auth", "no-vectors", "mismatch", "no-cipher",
    "failure"};

VerifyModel build_model() {
  VerifyModel model;

  // --- procedures -----------------------------------------------------------

  model.procedures.push_back(
      {"registration",
       {{"msc-call", kRegisterQualifiers,
         {"finish_registration", "reject_registration", "procedure_guard"}},
        {"vmsc-endpoint", {},
         {"registration_substrate", "attach_give_up", "pdp_give_up",
          "rrq_give_up", "subscriber_removed"}}},
       {"A_Location_Update", "MAP_Send_Auth_Info_ack", "A_Auth_Response",
        "A_Cipher_Mode_Complete", "MAP_Update_Location_Area_ack",
        "GPRS_Attach_Accept", "GPRS_Attach_Reject",
        "Activate_PDP_Context_Accept", "Activate_PDP_Context_Reject",
        "RAS_RCF", "RAS_RRJ"},
       3});

  model.procedures.push_back(
      {"origination",
       {{"msc-call", kMoQualifiers,
         {"procedure_guard", "notify_mo_alerting", "notify_mo_connect",
          "reject_mo_call", "release_from_network"}}},
       {"A_CM_Service_Request", "MAP_Send_Auth_Info_ack", "A_Auth_Response",
        "A_Cipher_Mode_Complete", "A_Setup",
        "MAP_Send_Info_For_Outgoing_Call_ack", "A_Disconnect",
        "A_Release_Complete", "A_Release", "A_Clear_Complete"},
       3});

  model.procedures.push_back(
      {"termination",
       {{"msc-call", kMtQualifiers,
         {"start_mt_call", "procedure_guard", "release_from_network"}}},
       {"A_Paging_Response", "MAP_Send_Auth_Info_ack", "A_Auth_Response",
        "A_Cipher_Mode_Complete", "A_Alerting", "A_Connect", "A_Disconnect",
        "A_Release_Complete", "A_Release", "A_Clear_Complete"},
       3});

  model.procedures.push_back(
      {"handoff",
       {{"handoff-anchor", {"failure"}, {"handoff_guard"}},
        {"handoff-target", {}, {}}},
       {"A_Handover_Required", "MAP_Prepare_Handover",
        "MAP_Prepare_Handover_ack", "A_Handover_Request_Ack",
        "A_Handover_Complete", "MAP_Send_End_Signal"},
       3});

  model.procedures.push_back(
      {"tr23821",
       {{"tr-ms", {"held"},
         {"power_on", "dial", "hangup", "answer_timer", "attach_give_up",
          "pdp_give_up", "rrq_give_up", "deactivate_give_up", "arq_give_up",
          "setup_give_up", "drq_give_up", "ringback_timeout"}}},
       {"GPRS_Attach_Accept", "GPRS_Attach_Reject",
        "Activate_PDP_Context_Accept", "Activate_PDP_Context_Reject",
        "RAS_RCF", "Deactivate_PDP_Context_Accept",
        "Request_PDP_Context_Activation", "Q931_Setup", "RAS_ACF", "RAS_ARJ",
        "Q931_Alerting", "Q931_Connect", "Q931_Release_Complete", "RAS_DCF",
        "Deactivate_PDP_Context_Accept"},
       3});

  model.procedures.push_back(
      {"gprs-data",
       {{"pdp-context", {}, {"power_on"}}},
       {"GPRS_Attach_Accept", "GPRS_Attach_Reject",
        "Activate_PDP_Context_Accept", "Activate_PDP_Context_Reject",
        "GPRS_Detach_Request"},
       3});

  // --- node bindings (flow-cover) -------------------------------------------

  model.node_bindings = {
      {"VMSC", {"msc-call", "vmsc-endpoint", "handoff-anchor"}},
      {"VMSC-HK", {"msc-call", "vmsc-endpoint"}},
      {"MSC-B", {"handoff-target"}},
      {"VMSC-B", {"handoff-target"}},
      {"TR-MS1", {"tr-ms"}},
  };

  // --- exemptions -----------------------------------------------------------
  // Every row documents a (state, message) pair the code deliberately
  // drops; the checker proves these are the ONLY reachable unhandled pairs
  // and flags any row that stops matching (so the list cannot rot).

  model.exemptions = {
      // msc-call: handle_a_message / handle_map_message drop answers whose
      // procedure step has moved on (late, duplicate, or post-abort
      // deliveries under reorder).
      {"unhandled", "msc-call", "*", "MAP_Send_Auth_Info_ack",
       "dropped unless step == kAuthInfo; a late or post-abort answer from "
       "the VLR is logged and ignored"},
      {"unhandled", "msc-call", "*", "A_Auth_Response",
       "dropped unless step == kAuthChallenge (late answer after the "
       "procedure guard reset the context)"},
      {"unhandled", "msc-call", "*", "A_Cipher_Mode_Complete",
       "dropped unless step == kCipher; the no-cipher configuration never "
       "arms ciphering at all"},
      {"unhandled", "msc-call", "*", "MAP_Update_Location_Area_ack",
       "dropped unless step == kUla"},
      {"unhandled", "msc-call", "*", "A_Setup",
       "dropped unless step == kAwaitSetup; the MS-side guard-retry "
       "re-offers the call after an aborted service request"},
      {"unhandled", "msc-call", "*", "MAP_Send_Info_For_Outgoing_Call_ack",
       "dropped unless step == kAuthorize"},
      {"unhandled", "msc-call", "*", "A_Disconnect",
       "a disconnect for an unknown or already-clearing call is answered "
       "with the A_Release / clearing sequence and duplicates are dropped "
       "(unknown-call regression fix, PR 4)"},
      {"unhandled", "msc-call", "*", "A_Release_Complete",
       "dropped unless step == kReleasingMs"},
      {"unhandled", "msc-call", "*", "A_Release",
       "dropped unless step == kReleasingNet"},
      {"unhandled", "msc-call", "*", "A_Clear_Complete",
       "dropped unless step == kClearing; the clearing guard force-clears "
       "locally when the BSC answer is lost"},
      {"unhandled", "msc-call", "*", "A_Paging_Response",
       "dropped unless step == kPaging"},
      {"unhandled", "msc-call", "*", "A_Alerting",
       "dropped unless step == kAwaitAlert"},
      {"unhandled", "msc-call", "*", "A_Connect",
       "dropped unless step == kAwaitAnswer"},

      // vmsc-endpoint: handle_gprs / handle_tunneled gate every answer on
      // the vGPRS phase; anything else is a duplicate or arrived after a
      // give-up reset the phase.
      {"unhandled", "vmsc-endpoint", "*", "GPRS_Attach_Accept",
       "handle_gprs ignores attach answers unless phase == kAttaching"},
      {"unhandled", "vmsc-endpoint", "none", "GPRS_Attach_Reject",
       "no vGPRS state to tear down; dropped"},
      {"unhandled", "vmsc-endpoint", "*", "Activate_PDP_Context_Accept",
       "ignored unless phase == kActivatingSignaling (duplicate or "
       "post-give-up delivery)"},
      {"unhandled", "vmsc-endpoint", "*", "Activate_PDP_Context_Reject",
       "ignored unless phase == kActivatingSignaling; rejection resets the "
       "phase to kNone"},
      {"unhandled", "vmsc-endpoint", "*", "RAS_RCF",
       "tunneled RAS answers are ignored unless phase == kRasRegistering"},
      {"unhandled", "vmsc-endpoint", "*", "RAS_RRJ",
       "tunneled RAS answers are ignored unless phase == kRasRegistering"},

      // handoff overlay: the anchor's epoch check and the target's
      // reservation lookup drop stale answers.
      {"unhandled", "handoff-anchor", "*", "MAP_Prepare_Handover_ack",
       "stale ack after the anchor's handoff guard reclaimed the "
       "procedure; the epoch check drops it"},
      {"unhandled", "handoff-anchor", "*", "MAP_Send_End_Signal",
       "dropped unless a handover was commanded; guard expiry already "
       "returned the call to the serving cell"},
      {"unhandled", "handoff-target", "*", "A_Handover_Request_Ack",
       "the target ignores BSC answers with no pending handed-in "
       "reservation"},
      {"unhandled", "handoff-target", "*", "A_Handover_Complete",
       "ignored when no reservation is awaiting access"},

      // tr-ms: every handler is gated on the handset state; late or
      // duplicate answers outside the requesting state are dropped.
      {"unhandled", "tr-ms", "*", "GPRS_Attach_Accept",
       "attach answers are ignored outside kAttaching"},
      {"unhandled", "tr-ms", "*", "GPRS_Attach_Reject",
       "attach answers are ignored outside kAttaching"},
      {"unhandled", "tr-ms", "*", "Activate_PDP_Context_Accept",
       "PDP answers are ignored outside the three activating states"},
      {"unhandled", "tr-ms", "*", "Activate_PDP_Context_Reject",
       "PDP answers are ignored outside the three activating states"},
      {"unhandled", "tr-ms", "*", "Deactivate_PDP_Context_Accept",
       "ignored outside the two deactivating states"},
      {"unhandled", "tr-ms", "*", "RAS_RCF",
       "tunneled RAS answers are dropped when no matching request is "
       "outstanding (retransmission epoch check)"},
      {"unhandled", "tr-ms", "*", "RAS_ACF",
       "tunneled RAS answers are dropped when no matching request is "
       "outstanding (retransmission epoch check)"},
      {"unhandled", "tr-ms", "*", "RAS_ARJ",
       "tunneled RAS answers are dropped when no matching request is "
       "outstanding (retransmission epoch check)"},
      {"unhandled", "tr-ms", "*", "RAS_DCF",
       "tunneled RAS answers are dropped when no matching request is "
       "outstanding (retransmission epoch check)"},
      {"unhandled", "tr-ms", "*", "Q931_Setup",
       "a setup arriving while a page-triggered activation is in progress "
       "is held (pending_setup_) and replayed; otherwise dropped by the "
       "state guard"},
      {"unhandled", "tr-ms", "*", "Q931_Alerting",
       "ignored unless kCalling"},
      {"unhandled", "tr-ms", "*", "Q931_Connect",
       "ignored unless kCalling or kRingback"},
      {"unhandled", "tr-ms", "*", "Q931_Release_Complete",
       "release_call ignores duplicates once idle, detached, or already "
       "deactivating"},
      {"unhandled", "tr-ms", "*", "Request_PDP_Context_Activation",
       "network activation prompts are ignored unless idle"},

      // pdp-context: the plain data MS state-guards every answer.
      {"unhandled", "pdp-context", "*", "GPRS_Attach_Accept",
       "ignored outside kAttaching"},
      {"unhandled", "pdp-context", "detached", "GPRS_Attach_Reject",
       "no attach outstanding; dropped"},
      {"unhandled", "pdp-context", "*", "Activate_PDP_Context_Accept",
       "ignored outside kActivating"},
      {"unhandled", "pdp-context", "*", "Activate_PDP_Context_Reject",
       "ignored outside kActivating"},
      {"unhandled", "pdp-context", "*", "GPRS_Detach_Request",
       "ignored unless online; there is no context to tear down"},

      // Deliberately unsupervised waits.
      {"deadlock", "pdp-context", "attaching", "*",
       "the plain data MS is best-effort background load with no "
       "supervision by design; a lost attach answer surfaces in experiment "
       "statistics, not protocol correctness"},
      {"deadlock", "pdp-context", "activating", "*",
       "the plain data MS is best-effort background load with no "
       "supervision by design; a lost PDP answer surfaces in experiment "
       "statistics, not protocol correctness"},
      {"deadlock", "handoff-target", "reserving", "*",
       "a stale handed-in reservation is superseded by the next "
       "MAP_Prepare_Handover for the same IMSI; the anchor's handoff guard "
       "bounds the procedure end-to-end"},
      {"deadlock", "handoff-target", "awaiting-access", "*",
       "a stale handed-in reservation is superseded by the next "
       "MAP_Prepare_Handover for the same IMSI; the anchor's handoff guard "
       "bounds the procedure end-to-end"},
      {"timer", "pdp-context", "attaching", "*",
       "best-effort background data MS; no retransmission by design"},
      {"timer", "pdp-context", "activating", "*",
       "best-effort background data MS; no retransmission by design"},
      {"timer", "handoff-target", "reserving", "*",
       "supervised end-to-end by the anchor MSC's handoff guard"},
      {"timer", "handoff-target", "awaiting-access", "*",
       "supervised end-to-end by the anchor MSC's handoff guard"},
  };

  return model;
}

}  // namespace

const VerifyModel& vgprs_verify_model() {
  static const VerifyModel model = build_model();
  return model;
}

}  // namespace vgprs::analysis
