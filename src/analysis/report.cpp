#include "analysis/report.hpp"

#include <cstdio>
#include <fstream>
#include <set>

namespace vgprs::analysis {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Report::Report(std::string tool, bool echo)
    : tool_(std::move(tool)), echo_(echo) {}

void Report::fail(const std::string& rule, const std::string& detail) {
  if (echo_) {
    std::printf("%s: [%s] %s\n", tool_.c_str(), rule.c_str(), detail.c_str());
  }
  findings_.push_back({rule, detail, {}, 0});
}

void Report::fail_at(const std::string& rule, const std::string& file,
                     std::size_t line, const std::string& detail) {
  if (echo_) {
    std::printf("%s: [%s] %s:%zu: %s\n", tool_.c_str(), rule.c_str(),
                file.c_str(), line, detail.c_str());
  }
  findings_.push_back({rule, detail, file, line});
}

bool write_json(const Report& report, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << "{\n  \"tool\": \"" << json_escape(report.tool())
      << "\",\n  \"violations\": " << report.violations()
      << ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"detail\": \""
        << json_escape(f.detail) << "\"";
    if (!f.file.empty()) {
      out << ", \"file\": \"" << json_escape(f.file) << "\", \"line\": "
          << f.line;
    }
    out << "}";
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
  return out.good();
}

bool write_sarif(const Report& report, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  std::set<std::string> rule_ids;
  for (const Finding& f : report.findings()) rule_ids.insert(f.rule);

  out << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \""
      << json_escape(report.tool())
      << "\",\n"
         "          \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "            {\"id\": \"" << json_escape(id) << "\"}";
  }
  out << (first ? "]\n" : "\n          ]\n");
  out << "        }\n"
         "      },\n"
         "      \"results\": [";
  first = true;
  for (const Finding& f : report.findings()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.detail) << "\"}";
    if (!f.file.empty()) {
      out << ", \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": \""
          << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
          << (f.line == 0 ? 1 : f.line) << "}}}]";
    }
    out << "}";
  }
  out << (first ? "]\n" : "\n      ]\n");
  out << "    }\n"
         "  ]\n"
         "}\n";
  return out.good();
}

}  // namespace vgprs::analysis
