#include "analysis/driver.hpp"

#include <cstdio>
#include <cstring>

namespace vgprs::analysis {
namespace {

struct Options {
  bool self_test = false;
  std::string seed_defect;
  std::string json_path;
  std::string sarif_path;
};

int usage(const std::string& tool) {
  std::fprintf(stderr,
               "usage: %s [--self-test] [--seed-defect FAMILY] "
               "[--json FILE] [--sarif FILE]\n",
               tool.c_str());
  return 2;
}

bool emit_outputs(const Report& report, const Options& opt) {
  if (!opt.json_path.empty() && !write_json(report, opt.json_path)) {
    std::fprintf(stderr, "%s: cannot write %s\n", report.tool().c_str(),
                 opt.json_path.c_str());
    return false;
  }
  if (!opt.sarif_path.empty() && !write_sarif(report, opt.sarif_path)) {
    std::fprintf(stderr, "%s: cannot write %s\n", report.tool().c_str(),
                 opt.sarif_path.c_str());
    return false;
  }
  return true;
}

bool caught(const RuleFamily& family, std::size_t violations) {
  return violations >= family.expect_min && violations <= family.expect_max;
}

}  // namespace

int tool_main(const std::string& tool,
              const std::vector<RuleFamily>& families,
              const std::function<std::string()>& clean_summary, int argc,
              char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--self-test") == 0) {
      opt.self_test = true;
    } else if (std::strcmp(arg, "--seed-defect") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(tool);
      opt.seed_defect = v;
    } else if (std::strcmp(arg, "--json") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(tool);
      opt.json_path = v;
    } else if (std::strcmp(arg, "--sarif") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(tool);
      opt.sarif_path = v;
    } else {
      return usage(tool);
    }
  }

  if (!opt.seed_defect.empty()) {
    const RuleFamily* family = nullptr;
    for (const RuleFamily& f : families) {
      if (f.name == opt.seed_defect) family = &f;
    }
    if (family == nullptr || !family->seeded) {
      std::fprintf(stderr, "%s: unknown rule family '%s'\n", tool.c_str(),
                   opt.seed_defect.c_str());
      return 2;
    }
    Report report(tool);
    family->seeded(report);
    if (!emit_outputs(report, opt)) return 2;
    if (!caught(*family, report.violations())) {
      std::fprintf(stderr,
                   "%s: seeded defect in '%s' was not caught "
                   "(%zu violation(s))\n",
                   tool.c_str(), opt.seed_defect.c_str(),
                   report.violations());
      return 2;
    }
    std::printf("%s: %zu violation(s)\n", tool.c_str(), report.violations());
    return 1;
  }

  if (opt.self_test) {
    // The real inputs must be clean before any defect is seeded; otherwise
    // a pre-existing violation could masquerade as a catch.
    Report clean(tool);
    for (const RuleFamily& family : families) family.run(clean);
    if (clean.violations() != 0) {
      std::printf("%s self-test: clean run FAILED (%zu violation(s))\n",
                  tool.c_str(), clean.violations());
      return 1;
    }
    int failures = 0;
    for (const RuleFamily& family : families) {
      if (!family.seeded) {
        std::printf("%s self-test: %s: NO SELF-TEST — every family must "
                    "seed and catch a defect\n",
                    tool.c_str(), family.name.c_str());
        ++failures;
        continue;
      }
      Report report(tool);
      family.seeded(report);
      const bool ok = caught(family, report.violations());
      std::printf("%s self-test: %s: %s (%zu violation(s))\n", tool.c_str(),
                  family.name.c_str(), ok ? "caught" : "MISSED",
                  report.violations());
      if (!ok) ++failures;
    }
    return failures == 0 ? 0 : 1;
  }

  Report report(tool);
  for (const RuleFamily& family : families) family.run(report);
  if (!emit_outputs(report, opt)) return 2;
  if (report.violations() == 0) {
    std::printf("%s: %s: OK\n", tool.c_str(), clean_summary().c_str());
    return 0;
  }
  std::printf("%s: %zu violation(s)\n", tool.c_str(), report.violations());
  return 1;
}

}  // namespace vgprs::analysis
