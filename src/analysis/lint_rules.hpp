// The vgprs_lint rule families, factored out of the old monolithic tool so
// tests and other drivers can run individual checks against arbitrary
// inputs (the self-test harness seeds defects exactly this way).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/driver.hpp"
#include "analysis/report.hpp"
#include "sim/message.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/fsm_tables.hpp"

namespace vgprs::analysis {

void check_registry(const MessageRegistry& reg, Report& report);
void check_codec(const MessageRegistry& reg, Report& report);
void check_flows(const MessageRegistry& reg,
                 const std::vector<NamedFlow>& flows, Report& report);
void check_correlation(const MessageRegistry& reg,
                       const std::vector<NamedFlow>& flows, Report& report);
void check_retransmission(const MessageRegistry& reg,
                          const std::vector<NamedFlow>& flows,
                          const std::vector<RetransmissionPolicy>& policies,
                          Report& report);
void check_fsm(const MessageRegistry& reg,
               const std::vector<FsmTable>& tables, Report& report);
void check_sharding_text(const std::string& rel_path, std::string_view text,
                         Report& report);
void check_sharding(const std::string& source_root, Report& report);

/// The seven lint families with their self-test seeds, ready for
/// tool_main().  `source_root` points at the protocol sources (src/) for
/// the sharding scan.  Registers the message catalog as a side effect.
std::vector<RuleFamily> lint_rule_families(const std::string& source_root);

}  // namespace vgprs::analysis
