// vgprs_verify: exhaustive static reachability exploration over the
// composed conformance FSMs.
//
// Model.  A Procedure binds a set of declared machines (FsmTable rows) and
// an environment script of inbound wire messages.  The explorer injects the
// script entries in order into a bounded in-flight multiset (|inflight| <=
// window) and delivers in-flight messages in every order — that is the
// fault model's delay/reorder envelope.  Machine transitions whose event is
// a lowercase internal name (timer expiries, local stimuli) fire
// spontaneously when listed in the binding's internal-event set.  Qualified
// events like "A_Auth_Response(register,no-cipher)" are configuration
// variants: a transition is eligible only when every qualifier tag is in
// the binding's allowlist, and all eligible variants branch.
//
// The BFS enumerates every reachable product state (machine states x script
// position x in-flight multiset) and feeds five check families:
//
//   verify:unhandled   a deliverable message no bound machine has a
//                      transition for (the message is then dropped and
//                      exploration continues, so one gap cannot hide
//                      another);
//   verify:deadlock    a quiescent product state (no injection, delivery,
//                      or internal move) resting in a state that is neither
//                      stable nor terminal;
//   verify:dead-row    declared states / transitions that no procedure's
//                      exploration ever visits or fires;
//   verify:timer       non-stable states with no declared timer, timers
//                      whose expiry event matches no transition, and timers
//                      whose retransmitted request lacks a
//                      "retransmitter" row in all_retransmission_policies();
//   verify:flow-cover  flow-table steps sourced at a bound node whose
//                      message no transition of that node's machines emits.
//
// Intentional gaps are declared as VerifyExemption rows ("verify:allow-*"
// escapes); an exemption that matches nothing is itself a finding, so the
// list shrinks with the code it describes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/driver.hpp"
#include "analysis/report.hpp"
#include "vgprs/flows.hpp"
#include "vgprs/fsm_tables.hpp"

namespace vgprs::analysis {

/// One machine participating in a procedure.
struct MachineBinding {
  std::string table;  // FsmTable::name
  /// Qualifier tags enabled for this procedure; a transition with event
  /// "E(a,b)" is eligible only when {a,b} is a subset of this list.
  std::vector<std::string> qualifiers;
  /// Lowercase internal events (timer expiries, local stimuli) that fire
  /// spontaneously whenever a matching transition is enabled.
  std::vector<std::string> internal_events;
};

/// A per-procedure composition: machines + environment script.
struct Procedure {
  std::string name;
  std::vector<MachineBinding> machines;
  /// Inbound wire messages, injected in order, delivered in any order.
  std::vector<std::string> script;
  /// In-flight multiset bound (the delay/reorder window).
  std::size_t window = 3;
};

/// Maps a flow-table node label to the machines that run on it, for the
/// flow-cover check.
struct NodeBinding {
  std::string node;
  std::vector<std::string> tables;
};

/// A declared, reasoned escape.  kind is one of "unhandled", "deadlock",
/// "dead-row", "timer", "flow-cover"; machine/state/event accept "*".
/// For flow-cover rows, `machine` holds the node label.
struct VerifyExemption {
  std::string kind;
  std::string machine;
  std::string state;
  std::string event;
  std::string reason;
};

struct VerifyModel {
  std::vector<Procedure> procedures;
  std::vector<NodeBinding> node_bindings;
  std::vector<VerifyExemption> exemptions;
};

/// Exploration totals, reported in the clean summary line.
struct VerifyStats {
  std::size_t procedures = 0;
  std::size_t product_states = 0;
  std::size_t product_transitions = 0;
};

void check_unhandled(const std::vector<FsmTable>& tables,
                     const VerifyModel& model, Report& report,
                     VerifyStats* stats = nullptr);
void check_deadlock(const std::vector<FsmTable>& tables,
                    const VerifyModel& model, Report& report);
void check_dead_rows(const std::vector<FsmTable>& tables,
                     const VerifyModel& model, Report& report);
void check_timers(const std::vector<FsmTable>& tables,
                  const std::vector<RetransmissionPolicy>& policies,
                  const VerifyModel& model, Report& report);
void check_flow_cover(const std::vector<FsmTable>& tables,
                      const std::vector<NamedFlow>& flows,
                      const VerifyModel& model, Report& report);

/// The five verify families (with self-test seeds) over the real tables,
/// flows, and policies.  `stats` is filled by the unhandled family's
/// exploration pass when non-null.
std::vector<RuleFamily> verify_rule_families(const VerifyModel& model,
                                             VerifyStats* stats);

}  // namespace vgprs::analysis
