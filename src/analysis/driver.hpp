// Shared tool driver for the analysis binaries.  A tool is a list of rule
// families; the driver owns argument parsing, the self-test protocol, the
// JSON/SARIF emission, and the exit-code contract:
//
//   0  clean (or: every self-test family caught its seeded defect)
//   1  findings (or: a self-test family missed its seeded defect)
//   2  usage error, unknown --seed-defect family, unwritable output file,
//      or a seeded defect that failed to seed (internal error)
//
// Every family MUST carry a `seeded` hook that re-runs the family's check
// against inputs with one deliberately planted defect; a family without one
// fails `--self-test`, so a new check cannot land without proof it bites.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace vgprs::analysis {

struct RuleFamily {
  std::string name;
  /// Runs the check against the real tables/sources.
  std::function<void(Report&)> run;
  /// Re-runs the check against inputs with one seeded defect; the defect is
  /// caught when the violation count lands in [expect_min, expect_max].
  std::function<void(Report&)> seeded;
  std::size_t expect_min = 1;
  std::size_t expect_max = static_cast<std::size_t>(-1);
};

/// Entry point shared by vgprs_lint and vgprs_verify.  `clean_summary` is
/// printed (with an "OK" suffix) when a full run reports nothing.
int tool_main(const std::string& tool,
              const std::vector<RuleFamily>& families,
              const std::function<std::string()>& clean_summary, int argc,
              char** argv);

}  // namespace vgprs::analysis
