#include "sim/stats.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace vgprs {

Histogram Histogram::fixed(double lo, double hi, std::size_t buckets) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::logic_error("Histogram::fixed: need buckets >= 1 and hi > lo");
  }
  Histogram h;
  h.bucket_counts_.assign(buckets, 0);
  h.lo_ = lo;
  h.width_ = (hi - lo) / static_cast<double>(buckets);
  return h;
}

void Histogram::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  sum_sq_ += sample * sample;
  if (fixed_buckets()) {
    auto raw = static_cast<std::int64_t>(std::floor((sample - lo_) / width_));
    auto last = static_cast<std::int64_t>(bucket_counts_.size()) - 1;
    ++bucket_counts_[static_cast<std::size_t>(std::clamp<std::int64_t>(
        raw, 0, last))];
  } else {
    samples_.push_back(sample);
    sorted_ = false;
  }
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  double m = mean();
  double var = (sum_sq_ - static_cast<double>(count_) * m * m) /
               static_cast<double>(count_ - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank > 0) --rank;
  rank = std::min(rank, count_ - 1);
  if (!fixed_buckets()) {
    ensure_sorted();
    return samples_[rank];
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    cumulative += bucket_counts_[i];
    if (cumulative > rank) {
      double mid = lo_ + (static_cast<double>(i) + 0.5) * width_;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::merge(const Histogram& other) {
  if (fixed_buckets() != other.fixed_buckets() ||
      (fixed_buckets() && (bucket_counts_.size() != other.bucket_counts_.size() ||
                           lo_ != other.lo_ || width_ != other.width_))) {
    throw std::logic_error("Histogram::merge: layout mismatch");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  if (fixed_buckets()) {
    for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
      bucket_counts_[i] += other.bucket_counts_[i];
    }
  } else {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
}

void Histogram::clear() {
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0.0;
  samples_.clear();
  sorted_ = false;
  if (fixed_buckets()) {
    bucket_counts_.assign(bucket_counts_.size(), 0);
  }
}

}  // namespace vgprs
