#include "sim/stats.hpp"

#include <cassert>
#include <cmath>

namespace vgprs {

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Histogram::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  if (rank > 0) --rank;
  return samples_[std::min(rank, samples_.size() - 1)];
}

}  // namespace vgprs
