// A d-ary (d = 4) min-heap used as the simulator's event queue.
//
// std::priority_queue cannot hand out its top element by value — top() is
// const, so every pop of an Event paid a full copy (including the shared_ptr
// refcount round-trip and, before the trace rework, its strings).  This heap
// moves elements on every sift and moves the minimum out of pop().  The
// 4-ary layout halves the tree height versus a binary heap and keeps the
// children of a node in one cache line, which measurably helps the
// push/pop-dominated access pattern of a discrete-event simulator.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace vgprs {

/// Min-heap: `Before(a, b)` returns true when `a` must pop before `b`.
template <typename T, typename Before>
class QuadHeap {
 public:
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }

  [[nodiscard]] const T& top() const {
    assert(!v_.empty());
    return v_.front();
  }

  /// Moves [first, last) into the heap in one batch.  A large batch (the
  /// per-window cross-shard inbox commit) appends everything and rebuilds
  /// bottom-up in O(n); a small one falls back to individual sifts.  The
  /// internal layout may differ between the two paths, but pop order is
  /// governed by the comparator — a strict total order over events — so
  /// the choice is invisible to the simulation.
  template <typename It>
  void push_bulk(It first, It last) {
    const auto k = static_cast<std::size_t>(last - first);
    if (k == 0) return;
    if (k > v_.size() / 8) {
      v_.insert(v_.end(), std::make_move_iterator(first),
                std::make_move_iterator(last));
      rebuild();
    } else {
      for (It it = first; it != last; ++it) push(std::move(*it));
    }
  }

  void push(T value) {
    std::size_t i = v_.size();
    v_.push_back(std::move(value));
    // Sift up: move the hole toward the root, one move per level.
    T item = std::move(v_[i]);
    while (i > 0) {
      std::size_t parent = (i - 1) / 4;
      if (!before_(item, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(item);
  }

  T pop() {
    assert(!v_.empty());
    T min = std::move(v_.front());
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      // Sift down: move the smallest child up into the hole.
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        std::size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        std::size_t end = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before_(v_[c], v_[best])) best = c;
        }
        if (!before_(v_[best], last)) break;
        v_[i] = std::move(v_[best]);
        i = best;
      }
      v_[i] = std::move(last);
    }
    return min;
  }

 private:
  /// Floyd heap construction: sift down every internal node, deepest first.
  void rebuild() {
    const std::size_t n = v_.size();
    if (n < 2) return;
    for (std::size_t root = (n - 2) / 4 + 1; root-- > 0;) {
      T item = std::move(v_[root]);
      std::size_t i = root;
      for (;;) {
        std::size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        std::size_t end = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before_(v_[c], v_[best])) best = c;
        }
        if (!before_(v_[best], item)) break;
        v_[i] = std::move(v_[best]);
        i = best;
      }
      v_[i] = std::move(item);
    }
  }

  std::vector<T> v_;
  Before before_;
};

}  // namespace vgprs
