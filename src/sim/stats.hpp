// Small statistics helpers for benches: sample accumulation with mean /
// percentile queries, and named counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vgprs {

/// Accumulates double-valued samples; quantiles are computed on demand.
class Histogram {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  void add(SimDuration d) { add(d.as_millis()); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// q in [0,1]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double q) const;

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Named integer counters (message tallies per procedure, trunk counts, ...).
class CounterSet {
 public:
  void bump(const std::string& key, std::int64_t delta = 1) {
    counts_[key] += delta;
  }
  [[nodiscard]] std::int64_t get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counts_;
  }
  void clear() { counts_.clear(); }

 private:
  std::map<std::string, std::int64_t> counts_;
};

}  // namespace vgprs
