// Small statistics helpers for benches: sample accumulation with mean /
// percentile queries, and named counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vgprs {

/// Point-in-time digest of a Histogram — what snapshots and JSON exports
/// carry instead of the sample vector.
struct HistogramSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Accumulates double-valued samples; quantiles are computed on demand.
///
/// Two storage modes:
///  * sample mode (default): every sample kept, nearest-rank percentiles
///    are exact;
///  * fixed-bucket mode (Histogram::fixed): `buckets` equal-width bins over
///    [lo, hi), out-of-range samples clamped to the edge bins.  Memory is
///    O(buckets) regardless of sample count — what soak runs need —
///    at the cost of percentiles quantized to bucket midpoints.  min / max /
///    mean / stddev stay exact in both modes (tracked as scalars).
///
/// Empty-histogram behavior is defined, not UB: count() == 0 and every
/// statistic (mean/min/max/stddev/percentile) returns 0.0.  stddev() of a
/// single sample is 0.0.  percentile(q) clamps q to [0, 1]; nearest-rank
/// means percentile(0) is the smallest sample and percentile(1) the largest.
class Histogram {
 public:
  Histogram() = default;

  /// Fixed-bucket histogram over [lo, hi) with `buckets` equal bins
  /// (buckets >= 1, hi > lo).
  static Histogram fixed(double lo, double hi, std::size_t buckets);

  void add(double sample);
  void add(SimDuration d) { add(d.as_millis()); }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool fixed_buckets() const { return !bucket_counts_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// q in [0,1]; nearest-rank on the sorted samples (bucket midpoint in
  /// fixed-bucket mode, clamped to the observed [min, max]).
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] HistogramSummary summary() const;

  /// Folds another histogram's samples into this one (sweep aggregation).
  /// Both must be the same mode — and, for fixed-bucket, the same layout;
  /// a mismatch throws std::logic_error.
  void merge(const Histogram& other);

  void clear();

 private:
  void ensure_sorted() const;

  // Shared accumulators (exact in both modes).
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  // Sample mode.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  // Fixed-bucket mode (empty vector = sample mode).
  std::vector<std::uint64_t> bucket_counts_;
  double lo_ = 0.0;
  double width_ = 0.0;
};

/// Named integer counters (message tallies per procedure, trunk counts, ...).
class CounterSet {
 public:
  void bump(const std::string& key, std::int64_t delta = 1) {
    counts_[key] += delta;
  }
  [[nodiscard]] std::int64_t get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counts_;
  }
  void clear() { counts_.clear(); }

 private:
  std::map<std::string, std::int64_t> counts_;
};

}  // namespace vgprs
