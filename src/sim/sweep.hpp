// ParallelSweep: a small persistent thread pool that fans independent
// simulation runs out across cores.
//
// The simulator itself is single-threaded by design (deterministic event
// ordering), but sweep campaigns — latency grids, seed batteries,
// randomized-chaos suites — are embarrassingly parallel: each cell builds
// its own seeded Network and never shares state with its neighbours.  The
// pool hands out indices, each worker runs the whole cell, and map()
// collects results in index order, so a parallel sweep returns exactly what
// the equivalent sequential loop would (deterministic per seed).
//
// Prerequisite for worker functions: call register_all_messages() (or build
// one scenario) before handing work to the pool if the worker registers
// message catalogs — the registry guards first registration with call_once,
// so scenario builders are safe as-is.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace vgprs {

class ParallelSweep {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1).
  explicit ParallelSweep(unsigned threads = 0);
  ~ParallelSweep();

  ParallelSweep(const ParallelSweep&) = delete;
  ParallelSweep& operator=(const ParallelSweep&) = delete;

  [[nodiscard]] unsigned threads() const;

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until all
  /// complete.  The first exception thrown by any cell is rethrown here
  /// (remaining cells still run to completion).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// run(), collecting one R per index, in index order.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    run(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vgprs
