#include "sim/export.hpp"

#include <sstream>

#include "common/json.hpp"
#include "sim/network.hpp"

namespace vgprs {

namespace {

void write_histogram_summary(JsonWriter& w, const HistogramSummary& h) {
  w.begin_object();
  w.kv("count", static_cast<std::uint64_t>(h.count));
  w.kv("min", h.min);
  w.kv("max", h.max);
  w.kv("mean", h.mean);
  w.kv("p50", h.p50);
  w.kv("p95", h.p95);
  w.kv("p99", h.p99);
  w.end_object();
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "vgprs.metrics.v1");
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snapshot.counters) w.kv(name, value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name);
    write_histogram_summary(w, h);
  }
  w.end_object();
  w.end_object();
  out << "\n";
}

namespace {

void write_trace_line(std::ostream& out, const TraceEntry& e) {
  JsonWriter w(out, 0);
  w.begin_object();
  w.kv("ts_us", e.at.count_micros());
  w.kv("from", e.from);
  w.kv("to", e.to);
  w.kv("message", e.message);
  w.kv("summary", e.summary);
  w.end_object();
  out << "\n";
}

}  // namespace

void write_trace_jsonl(std::ostream& out, const TraceRecorder& trace) {
  trace.for_each([&](const TraceEntry& e) { write_trace_line(out, e); });
}

void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEntry>& entries) {
  for (const TraceEntry& e : entries) write_trace_line(out, e);
}

void write_spans_chrome_trace(std::ostream& out, const std::vector<Span>& spans,
                              std::string_view process_name) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  // Process + one named thread lane per span kind, so the timeline groups
  // registrations / calls / handoffs into separate rows.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", "process_name");
  w.kv("pid", 1);
  w.kv("tid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", process_name);
  w.end_object();
  w.end_object();
  for (std::size_t kind = 0; kind < kSpanKindCount; ++kind) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", "thread_name");
    w.kv("pid", 1);
    w.kv("tid", static_cast<std::int64_t>(kind + 1));
    w.key("args");
    w.begin_object();
    w.kv("name", to_string(static_cast<SpanKind>(kind)));
    w.end_object();
    w.end_object();
  }
  for (const Span& s : spans) {
    w.begin_object();
    w.kv("ph", "X");
    w.kv("name", to_string(s.kind));
    w.kv("cat", "procedure");
    w.kv("pid", 1);
    w.kv("tid", static_cast<std::int64_t>(s.kind) + 1);
    w.kv("ts", s.opened.count_micros());
    w.kv("dur", s.is_open() ? std::int64_t{0} : s.duration().count_micros());
    w.key("args");
    w.begin_object();
    w.kv("correlation", s.correlation);
    w.kv("opener", s.opener);
    w.kv("outcome", to_string(s.outcome));
    w.kv("hops", static_cast<std::uint64_t>(s.hops));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

void write_spans_json(std::ostream& out, const std::vector<Span>& spans) {
  JsonWriter w(out);
  w.begin_array();
  for (const Span& s : spans) {
    w.begin_object();
    w.kv("kind", to_string(s.kind));
    w.kv("outcome", to_string(s.outcome));
    w.kv("correlation", s.correlation);
    w.kv("opener", s.opener);
    w.kv("opened_us", s.opened.count_micros());
    if (s.is_open()) {
      w.key("closed_us");
      w.null();
    } else {
      w.kv("closed_us", s.closed.count_micros());
      w.kv("duration_ms", s.duration().as_millis());
    }
    w.kv("hops", static_cast<std::uint64_t>(s.hops));
    w.end_object();
  }
  w.end_array();
  out << "\n";
}

std::string dump_forensics(const Network& net, std::size_t tail) {
  std::ostringstream out;
  const TraceRecorder& trace = net.trace();
  const std::size_t total = trace.size();
  const std::size_t skip = total > tail ? total - tail : 0;
  out << "--- forensics: last " << (total - skip) << " of " << total
      << " trace entries ---\n";
  std::size_t i = 0;
  trace.for_each([&](const TraceEntry& e) {
    if (i++ < skip) return;
    out << "  " << e.at.to_string() << "  " << e.from << " -> " << e.to
        << "  " << e.summary << "\n";
  });
  const SpanTracker& spans = net.spans();
  out << "--- open spans: " << spans.open_count() << " ---\n";
  out << spans.open_to_string();
  return out.str();
}

}  // namespace vgprs
