// SpanTracker: per-procedure-instance spans for latency attribution.
//
// A span is one run of a signaling procedure — a registration, a mobile-
// originated call setup, an MT termination, a call release, an inter-MSC
// handoff, or a PDP-context activation/deactivation — keyed by the
// correlation id its messages carry (see Message::correlation()).  The node
// driving the procedure opens the span when it starts and closes it with an
// outcome when it completes, times out, or is rejected; while the span is
// open the Network attributes every delivered message whose correlation id
// matches, so a closed span knows its latency *and* how many hops the
// procedure cost — the two axes of the paper's Figs. 4-9 evaluation.
//
// Pay-for-use like TraceRecorder: the tracker starts disabled, and every
// entry point bails on one branch, so instrumented call sites cost nothing
// in capacity benches.  Closing by (kind, correlation) matches the most
// recently opened still-open span, so repeated procedures on one subscriber
// (sequential calls, re-registration after a move) each get their own span.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/dispatch_key.hpp"
#include "sim/time.hpp"

namespace vgprs {

enum class SpanKind : std::uint8_t {
  kRegistration,
  kOrigination,
  kTermination,
  kRelease,
  kHandoff,
  kPdpActivation,
  kPdpDeactivation,
};

enum class SpanOutcome : std::uint8_t {
  kOpen,      // still in flight (or leaked — forensics dumps these)
  kOk,
  kTimeout,   // a guard timer expired before the procedure completed
  kRejected,  // the network refused the procedure
};

[[nodiscard]] std::string_view to_string(SpanKind kind);
[[nodiscard]] std::string_view to_string(SpanOutcome outcome);
inline constexpr std::size_t kSpanKindCount = 7;

struct Span {
  std::uint64_t correlation = 0;
  SpanKind kind = SpanKind::kRegistration;
  SpanOutcome outcome = SpanOutcome::kOpen;
  SimTime opened;
  SimTime closed;
  std::uint32_t hops = 0;  // deliveries attributed while the span was open
  std::string opener;      // node that opened the span

  [[nodiscard]] bool is_open() const { return outcome == SpanOutcome::kOpen; }
  [[nodiscard]] SimDuration duration() const { return closed - opened; }
};

class SpanObserver;

class SpanTracker {
 public:
  /// One deferred tracker mutation, recorded by a sharded-engine worker and
  /// replayed in global DispatchKey order at the run's merge point.  The
  /// span bookkeeping (LIFO close matching, hop attribution) is inherently
  /// order-dependent, so shards buffer the operations instead of mutating
  /// shared state.
  enum class OpKind : std::uint8_t { kOpen, kClose, kAttribute };
  struct Op {
    DispatchKey key;
    OpKind op = OpKind::kOpen;
    SpanKind kind = SpanKind::kRegistration;
    SpanOutcome outcome = SpanOutcome::kOpen;  // kClose only
    std::uint64_t correlation = 0;
    SimTime at;
    std::string opener;  // kOpen only
  };

  /// Redirects this thread's open/close/attribute_delivery calls on `owner`
  /// into `ops`, each stamped with *key (whose `sub` counter is advanced per
  /// record).  Used by the sharded Network while dispatching a shard; call
  /// clear_thread_sink() when the shard's slice ends.
  static void set_thread_sink(const SpanTracker* owner, std::vector<Op>* ops,
                              DispatchKey* key);
  static void clear_thread_sink();

  /// Applies one buffered operation (merge-time replay).
  void apply(const Op& op);

  /// Observer of the tracker's operation stream in global deterministic
  /// order: fired at the mutation in the sequential engine and at the
  /// merge-time replay in the sharded one, so a capture sees the identical
  /// op sequence on every worker count.  The binary trace capture is the
  /// one consumer.  At most one observer; null detaches.
  void set_observer(SpanObserver* observer) { observer_ = observer; }
  [[nodiscard]] SpanObserver* observer() const { return observer_; }

  /// Off by default; enabling mid-run is fine (spans opened before stay).
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opens a span.  No-op when disabled.
  void open(SpanKind kind, std::uint64_t correlation, std::string_view opener,
            SimTime at);

  /// Closes the most recently opened still-open span matching
  /// (kind, correlation).  Returns false (and records nothing) when there is
  /// no such span — e.g. instrumentation raced a procedure the tracker never
  /// saw open, or the tracker is disabled.  When a thread sink is active the
  /// close is deferred and the return value only reflects enablement.
  bool close(SpanKind kind, std::uint64_t correlation, SpanOutcome outcome,
             SimTime at);

  /// Called by the Network for every delivery carrying a correlation id;
  /// bumps the hop count of every open span with that id.
  void attribute_delivery(std::uint64_t correlation);

  /// All spans, open and closed, in open order.
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_count() const { return open_count_; }

  /// Closed-span tally for tests: how many spans of `kind` ended `outcome`.
  [[nodiscard]] std::size_t count(SpanKind kind, SpanOutcome outcome) const;

  /// One line per open span — the forensics dump for failed flow tests.
  [[nodiscard]] std::string open_to_string() const;

  void clear();

 private:
  void notify(OpKind op, SpanKind kind, SpanOutcome outcome,
              std::uint64_t correlation, SimTime at,
              std::string_view opener) const;

  bool enabled_ = false;
  SpanObserver* observer_ = nullptr;
  std::vector<Span> spans_;
  // correlation id -> indices into spans_ that are still open (small; a
  // subscriber rarely has more than a handful of procedures in flight).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> open_;
  std::size_t open_count_ = 0;
};

/// Receiver for SpanTracker::set_observer.  on_span_op must not call back
/// into the tracker.
class SpanObserver {
 public:
  virtual ~SpanObserver() = default;
  virtual void on_span_op(const SpanTracker::Op& op) = 0;
};

}  // namespace vgprs
