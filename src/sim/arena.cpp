#include "sim/arena.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

// Sanitizer builds bypass the recycling pool entirely (see arena.hpp).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define VGPRS_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define VGPRS_POOL_PASSTHROUGH 1
#endif
#endif

namespace vgprs {

namespace {

// Size classes (user-visible bytes).  A decoded signaling message is
// typically 40-200 bytes; a shared_ptr control block 24-32; the 512 top
// class still covers the fattest composite messages.  16-byte header in
// front of every block keeps the user pointer 16-aligned and names the
// class so cross-thread frees route correctly.
constexpr std::size_t kClasses[] = {32, 48, 64, 96, 128, 192, 256, 384, 512};
constexpr std::size_t kNumClasses = sizeof(kClasses) / sizeof(kClasses[0]);
constexpr std::size_t kMaxPooled = kClasses[kNumClasses - 1];
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::uint32_t kOversizeClass = 0xFFFFFFFFu;

struct BlockHeader {
  std::uint32_t size_class;  // index into kClasses, or kOversizeClass
  std::uint32_t magic;       // cheap double-free / stray-pointer guard
};
constexpr std::uint32_t kMagicLive = 0xA11C'0DEDu;
constexpr std::uint32_t kMagicFree = 0xDEAD'B10Cu;

// Slow-path counters; bumped only on chunk refill / oversize, so the atomics
// never show up in a profile.
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_oversize{0};
std::atomic<std::uint64_t> g_pooled{0};

#ifndef VGPRS_POOL_PASSTHROUGH

std::uint32_t class_of(std::size_t n) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (n <= kClasses[c]) return static_cast<std::uint32_t>(c);
  }
  return kOversizeClass;
}

struct FreeBlock {
  FreeBlock* next;
};

/// One thread's cache: free lists per class plus the current bump chunk.
/// Pool objects are never destroyed — chunks referenced from other threads'
/// free lists must stay mapped — they are parked and re-adopted instead.
struct Pool {
  FreeBlock* free_list[kNumClasses] = {};
  std::byte* bump = nullptr;
  std::byte* bump_end = nullptr;
  std::vector<void*> chunks;
  std::uint64_t pooled_allocs = 0;

  void* carve(std::uint32_t cls) {
    const std::size_t need = kHeaderBytes + kClasses[cls];
    if (static_cast<std::size_t>(bump_end - bump) < need) {
      void* chunk = ::operator new(kChunkBytes);
      chunks.push_back(chunk);
      bump = static_cast<std::byte*>(chunk);
      bump_end = bump + kChunkBytes;
      g_chunks.fetch_add(1, std::memory_order_relaxed);
      g_bytes.fetch_add(kChunkBytes, std::memory_order_relaxed);
    }
    void* block = bump;
    bump += need;
    return block;
  }
};

/// Parked caches of exited threads, adopted by the next thread that needs
/// one.  Intentionally leaked (raw new) so no destruction-order hazard with
/// thread-local destructors at process exit.
struct Orphanage {
  std::mutex mu;
  std::vector<Pool*> pools;
};
Orphanage& orphanage() {
  static Orphanage* o = new Orphanage;
  return *o;
}

struct TlCache {
  Pool* pool = nullptr;

  ~TlCache() {
    if (pool == nullptr) return;
    g_pooled.fetch_add(pool->pooled_allocs, std::memory_order_relaxed);
    pool->pooled_allocs = 0;
    Orphanage& o = orphanage();
    std::lock_guard<std::mutex> lock(o.mu);
    o.pools.push_back(pool);
  }

  Pool& get() {
    if (pool == nullptr) [[unlikely]] {
      Orphanage& o = orphanage();
      std::lock_guard<std::mutex> lock(o.mu);
      if (!o.pools.empty()) {
        pool = o.pools.back();
        o.pools.pop_back();
      } else {
        pool = new Pool;
      }
    }
    return *pool;
  }
};
thread_local TlCache tl_cache;

#endif  // !VGPRS_POOL_PASSTHROUGH

void* oversize_alloc(std::size_t n) {
  auto* raw = static_cast<std::byte*>(::operator new(kHeaderBytes + n));
  auto* h = reinterpret_cast<BlockHeader*>(raw);
  h->size_class = kOversizeClass;
  h->magic = kMagicLive;
  g_oversize.fetch_add(1, std::memory_order_relaxed);
  return raw + kHeaderBytes;
}

}  // namespace

void* pool_alloc(std::size_t n) {
#ifdef VGPRS_POOL_PASSTHROUGH
  return oversize_alloc(n);
#else
  const std::uint32_t cls = class_of(n);
  if (cls == kOversizeClass) [[unlikely]] {
    return oversize_alloc(n);
  }
  Pool& pool = tl_cache.get();
  void* block;
  if (FreeBlock* head = pool.free_list[cls]; head != nullptr) {
    pool.free_list[cls] = head->next;
    block = head;
  } else {
    block = pool.carve(cls);
  }
  ++pool.pooled_allocs;
  auto* h = static_cast<BlockHeader*>(block);
  h->size_class = cls;
  h->magic = kMagicLive;
  return static_cast<std::byte*>(block) + kHeaderBytes;
#endif
}

void pool_free(void* p) noexcept {
  if (p == nullptr) return;
  auto* block = static_cast<std::byte*>(p) - kHeaderBytes;
  auto* h = reinterpret_cast<BlockHeader*>(block);
  assert(h->magic == kMagicLive && "pool_free: bad or double-freed block");
  if (h->size_class == kOversizeClass) {
    ::operator delete(block);
    return;
  }
#ifdef VGPRS_POOL_PASSTHROUGH
  ::operator delete(block);
#else
  h->magic = kMagicFree;
  Pool& pool = tl_cache.get();
  auto* fb = reinterpret_cast<FreeBlock*>(block);
  fb->next = pool.free_list[h->size_class];
  pool.free_list[h->size_class] = fb;
#endif
}

MessagePoolStats message_pool_stats() noexcept {
  MessagePoolStats s;
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.bytes_reserved = g_bytes.load(std::memory_order_relaxed);
  s.oversize_allocs = g_oversize.load(std::memory_order_relaxed);
  s.pooled_allocs = g_pooled.load(std::memory_order_relaxed);
#ifndef VGPRS_POOL_PASSTHROUGH
  if (tl_cache.pool != nullptr) {
    s.pooled_allocs += tl_cache.pool->pooled_allocs;
  }
#endif
  return s;
}

bool message_pool_enabled() noexcept {
#ifdef VGPRS_POOL_PASSTHROUGH
  return false;
#else
  return true;
#endif
}

}  // namespace vgprs
