#include "sim/arena.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

// Sanitizer builds bypass the recycling pool entirely (see arena.hpp).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define VGPRS_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define VGPRS_POOL_PASSTHROUGH 1
#endif
#endif

namespace vgprs {

namespace {

// Size classes (user-visible bytes).  A decoded signaling message is
// typically 40-200 bytes; a shared_ptr control block 24-32; the 512 top
// class still covers the fattest composite messages.  16-byte header in
// front of every block keeps the user pointer 16-aligned and names the
// class so cross-thread frees route correctly.
constexpr std::size_t kClasses[] = {32, 48, 64, 96, 128, 192, 256, 384, 512};
constexpr std::size_t kNumClasses = sizeof(kClasses) / sizeof(kClasses[0]);
constexpr std::size_t kMaxPooled = kClasses[kNumClasses - 1];
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::uint32_t kOversizeClass = 0xFFFFFFFFu;

struct BlockHeader {
  std::uint32_t size_class;  // index into kClasses, or kOversizeClass
  std::uint32_t magic;       // cheap double-free / stray-pointer guard
};
constexpr std::uint32_t kMagicLive = 0xA11C'0DEDu;
constexpr std::uint32_t kMagicFree = 0xDEAD'B10Cu;

// Slow-path counters; bumped only on chunk refill / oversize, so the atomics
// never show up in a profile.
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_oversize{0};
std::atomic<std::uint64_t> g_pooled{0};

#ifndef VGPRS_POOL_PASSTHROUGH

std::uint32_t class_of(std::size_t n) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (n <= kClasses[c]) return static_cast<std::uint32_t>(c);
  }
  return kOversizeClass;
}

struct FreeBlock {
  FreeBlock* next;
};

// Cross-thread rebalancing.  A message is usually freed on the thread that
// *received* it, not the one that allocated it, so a persistently one-sided
// cross-shard flow (one hot shard fanning out paging broadcasts, say) would
// strand ever more blocks on the consumer's list while the producer carves
// fresh chunks — unbounded growth at a chunk every few call waves.  Bound
// it: past kShedThreshold blocks the per-class thread list stops growing
// and further frees divert to a spill chain (both ends tracked, O(1), no
// walking).  Spilled blocks still serve this thread's allocations first;
// only when a full batch of kShedBatch accumulates with no local taker —
// the one-sided-consumer signature — is the chain flushed to a global
// shelf, where an allocation miss on any thread adopts it before carving.
// Every hot-path step is lock-free: the shelf mutex is touched once per
// flushed/adopted batch, never per block, and an empty shelf is detected
// with one relaxed load.
constexpr std::size_t kShedThreshold = 256;
constexpr std::size_t kShedBatch = 128;

struct Shelf {
  std::mutex mu;
  FreeBlock* head[kNumClasses] = {};
  // Mirrors the per-class list length.  Written under `mu`; read lock-free
  // by the adopt fast path so an empty shelf costs one relaxed load, not a
  // mutex round-trip — the miss path runs once per burst-drained class, and
  // paying a lock there shows up directly in events/s.
  std::atomic<std::size_t> count[kNumClasses] = {};
};
/// Intentionally leaked, like the orphanage: no destruction-order hazard.
Shelf& shelf() {
  static Shelf* s = new Shelf;
  return *s;
}

/// One thread's cache: free lists per class plus the current bump chunk.
/// Pool objects are never destroyed — chunks referenced from other threads'
/// free lists must stay mapped — they are parked and re-adopted instead.
struct Pool {
  FreeBlock* free_list[kNumClasses] = {};
  std::size_t free_count[kNumClasses] = {};
  // Overflow past kShedThreshold: a second LIFO chain with its tail pinned
  // so a full batch splices onto the shelf without traversal.
  FreeBlock* spill_head[kNumClasses] = {};
  FreeBlock* spill_tail[kNumClasses] = {};
  std::size_t spill_count[kNumClasses] = {};
  std::byte* bump = nullptr;
  std::byte* bump_end = nullptr;
  std::vector<void*> chunks;
  std::uint64_t pooled_allocs = 0;

  void* carve(std::uint32_t cls) {
    const std::size_t need = kHeaderBytes + kClasses[cls];
    if (static_cast<std::size_t>(bump_end - bump) < need) {
      void* chunk = ::operator new(kChunkBytes);
      chunks.push_back(chunk);
      bump = static_cast<std::byte*>(chunk);
      bump_end = bump + kChunkBytes;
      g_chunks.fetch_add(1, std::memory_order_relaxed);
      g_bytes.fetch_add(kChunkBytes, std::memory_order_relaxed);
    }
    void* block = bump;
    bump += need;
    return block;
  }

  /// Splice the full spill chain onto the global shelf in one lock.
  void flush_spill(std::uint32_t cls) {
    Shelf& s = shelf();
    std::lock_guard<std::mutex> lock(s.mu);
    spill_tail[cls]->next = s.head[cls];
    s.head[cls] = spill_head[cls];
    s.count[cls].store(
        s.count[cls].load(std::memory_order_relaxed) + spill_count[cls],
        std::memory_order_relaxed);
    spill_head[cls] = nullptr;
    spill_tail[cls] = nullptr;
    spill_count[cls] = 0;
  }

  /// Take the shelf's whole list for this class; returns one block for the
  /// caller, the rest becomes the thread's free list.
  FreeBlock* adopt(std::uint32_t cls) {
    Shelf& s = shelf();
    // Lock-free empty check: a stale zero just delays adoption by one
    // alloc, a stale nonzero pays one uncontended lock.
    if (s.count[cls].load(std::memory_order_relaxed) == 0) return nullptr;
    std::lock_guard<std::mutex> lock(s.mu);
    FreeBlock* head = s.head[cls];
    if (head == nullptr) return nullptr;
    free_list[cls] = head->next;
    free_count[cls] = s.count[cls].load(std::memory_order_relaxed) - 1;
    s.head[cls] = nullptr;
    s.count[cls].store(0, std::memory_order_relaxed);
    return head;
  }
};

/// Parked caches of exited threads, adopted by the next thread that needs
/// one.  Intentionally leaked (raw new) so no destruction-order hazard with
/// thread-local destructors at process exit.
struct Orphanage {
  std::mutex mu;
  std::vector<Pool*> pools;
};
Orphanage& orphanage() {
  static Orphanage* o = new Orphanage;
  return *o;
}

struct TlCache {
  Pool* pool = nullptr;

  ~TlCache() {
    if (pool == nullptr) return;
    g_pooled.fetch_add(pool->pooled_allocs, std::memory_order_relaxed);
    pool->pooled_allocs = 0;
    Orphanage& o = orphanage();
    std::lock_guard<std::mutex> lock(o.mu);
    o.pools.push_back(pool);
  }

  Pool& get() {
    if (pool == nullptr) [[unlikely]] {
      Orphanage& o = orphanage();
      std::lock_guard<std::mutex> lock(o.mu);
      if (!o.pools.empty()) {
        pool = o.pools.back();
        o.pools.pop_back();
      } else {
        pool = new Pool;
      }
    }
    return *pool;
  }
};
thread_local TlCache tl_cache;

#endif  // !VGPRS_POOL_PASSTHROUGH

void* oversize_alloc(std::size_t n) {
  auto* raw = static_cast<std::byte*>(::operator new(kHeaderBytes + n));
  auto* h = reinterpret_cast<BlockHeader*>(raw);
  h->size_class = kOversizeClass;
  h->magic = kMagicLive;
  g_oversize.fetch_add(1, std::memory_order_relaxed);
  return raw + kHeaderBytes;
}

}  // namespace

void* pool_alloc(std::size_t n) {
#ifdef VGPRS_POOL_PASSTHROUGH
  return oversize_alloc(n);
#else
  const std::uint32_t cls = class_of(n);
  if (cls == kOversizeClass) [[unlikely]] {
    return oversize_alloc(n);
  }
  Pool& pool = tl_cache.get();
  void* block;
  // Spill first: once the capped list is full, the spill chain's head is
  // the most recently freed — and therefore cache-hottest — block, while
  // the list's head can be an old cold block from an adopted batch.  In
  // that regime alloc/free cycles run entirely through the spill chain in
  // pure LIFO order and never touch the shelf.
  if (FreeBlock* sp = pool.spill_head[cls]; sp != nullptr) {
    pool.spill_head[cls] = sp->next;
    if (pool.spill_head[cls] == nullptr) pool.spill_tail[cls] = nullptr;
    --pool.spill_count[cls];
    block = sp;
  } else if (FreeBlock* head = pool.free_list[cls]; head != nullptr) {
    pool.free_list[cls] = head->next;
    --pool.free_count[cls];
    block = head;
  } else if (FreeBlock* adopted = pool.adopt(cls); adopted != nullptr) {
    block = adopted;
  } else {
    block = pool.carve(cls);
  }
  ++pool.pooled_allocs;
  auto* h = static_cast<BlockHeader*>(block);
  h->size_class = cls;
  h->magic = kMagicLive;
  return static_cast<std::byte*>(block) + kHeaderBytes;
#endif
}

void pool_free(void* p) noexcept {
  if (p == nullptr) return;
  auto* block = static_cast<std::byte*>(p) - kHeaderBytes;
  auto* h = reinterpret_cast<BlockHeader*>(block);
  assert(h->magic == kMagicLive && "pool_free: bad or double-freed block");
  if (h->size_class == kOversizeClass) {
    ::operator delete(block);
    return;
  }
#ifdef VGPRS_POOL_PASSTHROUGH
  ::operator delete(block);
#else
  h->magic = kMagicFree;
  Pool& pool = tl_cache.get();
  auto* fb = reinterpret_cast<FreeBlock*>(block);
  const std::uint32_t cls = h->size_class;
  if (pool.free_count[cls] < kShedThreshold) [[likely]] {
    fb->next = pool.free_list[cls];
    pool.free_list[cls] = fb;
    ++pool.free_count[cls];
  } else {
    fb->next = pool.spill_head[cls];
    pool.spill_head[cls] = fb;
    if (pool.spill_tail[cls] == nullptr) pool.spill_tail[cls] = fb;
    if (++pool.spill_count[cls] >= kShedBatch) pool.flush_spill(cls);
  }
#endif
}

MessagePoolStats message_pool_stats() noexcept {
  MessagePoolStats s;
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.bytes_reserved = g_bytes.load(std::memory_order_relaxed);
  s.oversize_allocs = g_oversize.load(std::memory_order_relaxed);
  s.pooled_allocs = g_pooled.load(std::memory_order_relaxed);
#ifndef VGPRS_POOL_PASSTHROUGH
  if (tl_cache.pool != nullptr) {
    s.pooled_allocs += tl_cache.pool->pooled_allocs;
  }
#endif
  return s;
}

bool message_pool_enabled() noexcept {
#ifdef VGPRS_POOL_PASSTHROUGH
  return false;
#else
  return true;
#endif
}

}  // namespace vgprs
