// Retransmitter: capped-exponential-backoff recovery for request–response
// signaling exchanges (GSM MAP, GTP, RAS, Q.931 over IP).  A node sends its
// request, arms a key here with a `resend` thunk and a `give_up` thunk, and
// acks the key when the response arrives.  Unanswered requests are resent
// with doubling intervals; after `max_retries` unanswered copies the
// give-up thunk runs (close the span as timeout, reject the procedure,
// fall back — whatever the protocol calls for).
//
// The owner must forward its timer cookies here FIRST:
//
//   void on_timer(TimerId id, std::uint64_t cookie) override {
//     if (retx_.on_timer(cookie)) return;
//     Base::on_timer(id, cookie);
//   }
//
// Cookies carry a high tag (0xF17E << 48) disjoint from the cookie schemes
// used elsewhere in the tree (MscBase's small incrementing guard cookies,
// MobileStation's kind << 56 with kinds 1–3), so the dispatch above cannot
// misroute.  Retransmissions and give-ups are counted in the owning
// network's MetricsRegistry under "recovery/retransmits" and
// "recovery/give_ups".
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/node.hpp"
#include "sim/time.hpp"

namespace vgprs {

class Retransmitter {
 public:
  struct Policy {
    SimDuration initial = SimDuration::seconds(1);
    std::int64_t multiplier = 2;
    SimDuration max_interval = SimDuration::seconds(8);
    int max_retries = 3;
  };

  explicit Retransmitter(Node& owner) : owner_(owner) {}

  void set_policy(Policy policy) { policy_ = policy; }
  [[nodiscard]] const Policy& policy() const { return policy_; }

  /// The caller just sent the first copy of a request.  `resend` re-emits
  /// it from current state; `give_up` runs after max_retries unanswered
  /// retransmissions.  Re-arming a pending key restarts its schedule.
  void arm(std::uint64_t key, std::function<void()> resend,
           std::function<void()> give_up);

  /// The response arrived.  Returns true if the key was pending; acking an
  /// unknown key (already answered, already given up) is a no-op — that is
  /// what makes duplicate responses harmless.
  bool ack(std::uint64_t key);

  [[nodiscard]] bool pending(std::uint64_t key) const {
    return entries_.contains(key);
  }
  [[nodiscard]] std::size_t pending_count() const { return entries_.size(); }

  /// Owners call this first from on_timer; true = the cookie was ours.
  bool on_timer(std::uint64_t cookie);

  /// Drops every pending exchange without firing give_up — the owner
  /// crashed and restarted; whatever was in flight is meaningless now.
  void reset();

  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t give_ups() const { return give_ups_; }

  /// High 16 bits of every cookie this class arms.
  static constexpr std::uint64_t kCookieTag = 0xF17Eull << 48;

 private:
  struct Entry {
    std::function<void()> resend;
    std::function<void()> give_up;
    SimDuration interval;
    int remaining = 0;
    std::uint64_t cookie = 0;
    TimerId timer = 0;
  };

  void schedule(std::uint64_t key, Entry& entry);

  Node& owner_;
  Policy policy_;
  std::unordered_map<std::uint64_t, Entry> entries_;      // key -> entry
  std::unordered_map<std::uint64_t, std::uint64_t> keys_;  // cookie -> key
  std::uint64_t next_cookie_ = 1;
  std::uint64_t retransmits_ = 0;
  std::uint64_t give_ups_ = 0;
};

}  // namespace vgprs
