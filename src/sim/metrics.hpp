// MetricsRegistry: named instruments (counters, gauges, histograms) with
// snapshot / diff / merge support.
//
// This unifies the ad-hoc measurement surfaces that grew with the repo —
// `Network::stats_` scalars, per-node `CounterSet`s, loose `Histogram`s in
// benches — behind one string-keyed registry per Network.  Naming
// convention: global instruments use a subsystem prefix
// ("net/messages_sent"), per-node instruments are prefixed with the node
// name ("sgsn/pdp_activations", "vmsc/calls_connected").
//
// Accessors return stable references (std::map storage), so a hot call
// site can look its instrument up once and bump the reference afterwards.
// When the registry is disabled the accessors return references into a
// discard slot instead — call sites stay unconditional, writes go nowhere,
// and nothing is recorded (pay-for-use, like TraceRecorder).
//
// snapshot() digests the registry into plain maps (histograms as
// HistogramSummary); MetricsSnapshot::diff() subtracts counters for
// before/after comparisons around a procedure.  merge_from() folds another
// registry in (counters add, gauges add, histograms merge) — the sweep
// aggregation path, where every cell owns a private Network.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/stats.hpp"

namespace vgprs {

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Counters are subtracted (keys only in `after` keep their value);
  /// gauges and histogram summaries are taken from `after` — they are
  /// levels, not totals.
  static MetricsSnapshot diff(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);
};

class MetricsRegistry {
 public:
  /// On by default: instruments are touched at procedure granularity, not
  /// per event, so the steady-state cost is map lookups per call/
  /// registration.  Soak runs that want zero bookkeeping disable it.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Named instrument accessors; created on first use.  References stay
  /// valid for the registry's lifetime (or until clear()).
  [[nodiscard]] std::int64_t& counter(std::string_view name);
  [[nodiscard]] double& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  /// Fixed-bucket variant; the layout is set on first use only (a later
  /// call with different bounds returns the existing instrument).
  [[nodiscard]] Histogram& histogram(std::string_view name, double lo,
                                     double hi, std::size_t buckets);

  [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double, std::less<>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Sweep aggregation: counters and gauges add, histograms merge (same
  /// layout required — see Histogram::merge).
  void merge_from(const MetricsRegistry& other);

  /// Sharded-engine aggregation: counters add and histograms merge like
  /// merge_from, but gauges *overwrite* — a shard registry holds the level
  /// most recently set by its nodes, not a partial sum, so adding shard
  /// values would fabricate a total no node ever reported.  Fold in shard
  /// order for a deterministic last-writer.
  void fold_from(const MetricsRegistry& other);

  void clear();

 private:
  bool enabled_ = true;
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  // Discard slots handed out while disabled.
  std::int64_t sink_counter_ = 0;
  double sink_gauge_ = 0.0;
  Histogram sink_histogram_;
};

}  // namespace vgprs
