#include "sim/trace.hpp"

#include <cstdio>
#include <sstream>

namespace vgprs {

void TraceRecorder::set_mode(TraceMode mode, std::size_t ring_capacity) {
  mode_ = mode;
  // A zero ring capacity would alias the "unbounded" sentinel below and
  // make record() grow the buffer without bound; clamp to the smallest
  // ring instead.
  if (mode == TraceMode::kRing && ring_capacity == 0) ring_capacity = 1;
  ring_capacity_ = mode == TraceMode::kRing ? ring_capacity : 0;
  entries_.clear();
  entries_.shrink_to_fit();
  head_ = 0;
}

void TraceRecorder::record(TraceEntry entry) {
  switch (mode_) {
    case TraceMode::kDisabled:
      return;
    case TraceMode::kFull:
      entries_.push_back(std::move(entry));
      return;
    case TraceMode::kRing:
      if (entries_.size() < ring_capacity_) {
        entries_.push_back(std::move(entry));
      } else if (ring_capacity_ > 0) {
        entries_[head_] = std::move(entry);
        head_ = (head_ + 1) % ring_capacity_;
      }
      return;
  }
}

bool TraceRecorder::matches(const TraceEntry& e, const FlowStep& s) {
  if (!s.from.empty() && e.from != s.from) return false;
  if (!s.to.empty() && e.to != s.to) return false;
  if (!s.message.empty() && e.message != s.message) return false;
  return true;
}

std::size_t TraceRecorder::count(std::string_view message) const {
  std::size_t n = 0;
  for_each([&](const TraceEntry& e) {
    if (e.message == message) ++n;
  });
  return n;
}

std::size_t TraceRecorder::count(const FlowStep& step) const {
  std::size_t n = 0;
  for_each([&](const TraceEntry& e) {
    if (matches(e, step)) ++n;
  });
  return n;
}

bool TraceRecorder::contains_flow(const std::vector<FlowStep>& steps,
                                  std::size_t* failed_step) const {
  std::size_t next = 0;
  for_each([&](const TraceEntry& e) {
    if (next < steps.size() && matches(e, steps[next])) ++next;
  });
  if (failed_step != nullptr) *failed_step = next;
  return next == steps.size();
}

std::optional<SimTime> TraceRecorder::first_time(
    std::string_view message) const {
  std::optional<SimTime> found;
  for_each([&](const TraceEntry& e) {
    if (!found && e.message == message) found = e.at;
  });
  return found;
}

std::optional<SimTime> TraceRecorder::last_time(
    std::string_view message) const {
  std::optional<SimTime> found;
  for_each([&](const TraceEntry& e) {
    if (e.message == message) found = e.at;
  });
  return found;
}

std::string TraceRecorder::to_string(std::size_t max_entries) const {
  std::ostringstream os;
  std::size_t n = std::min(entries_.size(), max_entries);
  std::size_t printed = 0;
  for_each([&](const TraceEntry& e) {
    if (printed++ >= n) return;
    char line[256];
    std::snprintf(line, sizeof line, "%10.3f ms  %-14s -> %-14s  %s",
                  e.at.as_millis(), e.from.c_str(), e.to.c_str(),
                  e.summary.c_str());
    os << line << '\n';
  });
  if (n < entries_.size()) {
    os << "  ... (" << (entries_.size() - n) << " more)\n";
  }
  return os.str();
}

}  // namespace vgprs
