#include "sim/trace.hpp"

#include <cstdio>
#include <sstream>

namespace vgprs {

bool TraceRecorder::matches(const TraceEntry& e, const FlowStep& s) {
  if (!s.from.empty() && e.from != s.from) return false;
  if (!s.to.empty() && e.to != s.to) return false;
  if (!s.message.empty() && e.message != s.message) return false;
  return true;
}

std::size_t TraceRecorder::count(std::string_view message) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.message == message) ++n;
  }
  return n;
}

std::size_t TraceRecorder::count(const FlowStep& step) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (matches(e, step)) ++n;
  }
  return n;
}

bool TraceRecorder::contains_flow(const std::vector<FlowStep>& steps,
                                  std::size_t* failed_step) const {
  std::size_t next = 0;
  for (const auto& e : entries_) {
    if (next == steps.size()) break;
    if (matches(e, steps[next])) ++next;
  }
  if (failed_step != nullptr) *failed_step = next;
  return next == steps.size();
}

std::optional<SimTime> TraceRecorder::first_time(
    std::string_view message) const {
  for (const auto& e : entries_) {
    if (e.message == message) return e.at;
  }
  return std::nullopt;
}

std::optional<SimTime> TraceRecorder::last_time(
    std::string_view message) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->message == message) return it->at;
  }
  return std::nullopt;
}

std::string TraceRecorder::to_string(std::size_t max_entries) const {
  std::ostringstream os;
  std::size_t n = std::min(entries_.size(), max_entries);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = entries_[i];
    char line[256];
    std::snprintf(line, sizeof line, "%10.3f ms  %-14s -> %-14s  %s",
                  e.at.as_millis(), e.from.c_str(), e.to.c_str(),
                  e.summary.c_str());
    os << line << '\n';
  }
  if (n < entries_.size()) {
    os << "  ... (" << (entries_.size() - n) << " more)\n";
  }
  return os.str();
}

}  // namespace vgprs
