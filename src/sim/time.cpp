#include "sim/time.hpp"

#include <cstdio>

namespace vgprs {

std::string SimDuration::to_string() const {
  char buf[32];
  if (us_ >= 1'000'000 || us_ <= -1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", as_seconds());
  } else {
    std::snprintf(buf, sizeof buf, "%.3fms", as_millis());
  }
  return buf;
}

std::string SimTime::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "t=%.3fms", as_millis());
  return buf;
}

}  // namespace vgprs
