// Message base class + wire-format registry.
//
// Every signaling message in the system derives from Message, declares a
// unique 16-bit wire type, and implements encode/decode of its payload.
// When a message crosses a simulated link the Network serializes it and the
// receiving end decodes a fresh instance via the registry — exactly what a
// real protocol stack does, so codec bugs surface as broken procedures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sim/arena.hpp"

namespace vgprs {

class Message;
using MessagePtr = std::shared_ptr<const Message>;

class Message {
 public:
  virtual ~Message() = default;

  // All message instances — registry factories, clone(), direct new — come
  // from the thread-cached message pool (sim/arena.hpp), so steady-state
  // dispatch recycles blocks instead of hitting the global heap.  The
  // placement forms restore the globals these class-scope overloads hide.
  static void* operator new(std::size_t n) { return pool_alloc(n); }
  static void operator delete(void* p) noexcept { pool_free(p); }
  static void operator delete(void* p, std::size_t) noexcept { pool_free(p); }
  static void* operator new(std::size_t, void* where) noexcept {
    return where;
  }
  static void operator delete(void*, void*) noexcept {}

  [[nodiscard]] virtual std::uint16_t wire_type() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Message> clone() const = 0;

  virtual void encode_payload(ByteWriter& w) const = 0;
  virtual Status decode_payload(ByteReader& r) = 0;

  /// One-line human-readable parameter dump for traces.
  [[nodiscard]] virtual std::string summary() const {
    return std::string(name());
  }

  /// Correlation id for span stitching: a nonzero u64 naming the subscriber
  /// or call this message belongs to, derived from the payload's identity
  /// fields (imsi > call_ref > msrn > dialed/alias numbers — see
  /// ProtoMessage).  0 means the instance carries no usable id (no such
  /// field, or the field is unset).
  [[nodiscard]] virtual std::uint64_t correlation() const { return 0; }

  /// Type-level property: can this message type ever carry a correlation
  /// id?  Distinct from correlation() != 0 — a default-constructed UmSetup
  /// correlates() even though its imsi is still zero.  vgprs_lint uses this
  /// to reject flow messages that can never be stitched into a span.
  [[nodiscard]] virtual bool correlates() const { return false; }

  /// Full wire encoding: u16 wire type + payload.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Appends the full wire encoding to `w` — the allocation-free variant
  /// the Network's send path uses with a reusable scratch writer.
  void encode_to(ByteWriter& w) const;
};

/// CRTP helper supplying the boilerplate overrides.  Derived classes declare
///   static constexpr std::uint16_t kWireType;
///   static constexpr std::string_view kName;
template <typename Derived>
class MessageBase : public Message {
 public:
  [[nodiscard]] std::uint16_t wire_type() const final {
    return Derived::kWireType;
  }
  [[nodiscard]] std::string_view name() const final { return Derived::kName; }
  [[nodiscard]] std::unique_ptr<Message> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Global wire-type -> factory registry.  Protocol modules register their
/// message types once (idempotent) via register_message<T>().
class MessageRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Message>()>;

  /// Two distinct message types claimed the same wire type.  Recorded (not
  /// thrown) so vgprs_lint can report every clash in one pass.
  struct Collision {
    std::uint16_t wire_type;
    std::string existing;
    std::string incoming;
  };

  static MessageRegistry& instance();

  void add(std::uint16_t wire_type, std::string_view name, Factory factory);
  [[nodiscard]] bool known(std::uint16_t wire_type) const;
  [[nodiscard]] std::string_view name_of(std::uint16_t wire_type) const;
  /// All registered wire types (sorted), for exhaustive codec sweeps.
  [[nodiscard]] std::vector<std::uint16_t> types() const;
  /// Creates a default-constructed instance of a registered type.
  [[nodiscard]] std::unique_ptr<Message> create(std::uint16_t wire_type) const;
  /// Wire-type clashes observed by add() (same type, different name).
  [[nodiscard]] const std::vector<Collision>& collisions() const {
    return collisions_;
  }

  /// Decodes a full wire buffer (type header + payload).  The buffer must be
  /// exactly one message; trailing bytes are an error.
  [[nodiscard]] Result<std::unique_ptr<Message>> decode(
      std::span<const std::uint8_t> buffer) const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };
  std::unordered_map<std::uint16_t, Entry> entries_;
  std::vector<Collision> collisions_;
};

template <typename T>
void register_message() {
  MessageRegistry::instance().add(T::kWireType, T::kName,
                                  [] { return std::make_unique<T>(); });
}

/// Builds a mutable shared message with its control block and object in one
/// pooled allocation.  This is the sender-side construction path: handlers
/// fill in fields, then pass the pointer to send() (which converts to
/// MessagePtr).  std::make_shared would bypass Message::operator new — the
/// combined block comes from std::allocate_shared over the pool instead.
template <typename T, typename... Args>
std::shared_ptr<T> pool_message(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

/// Builds a shared message, optionally applying an initializer to set fields:
///   auto msg = make_message<UmSetup>([&](UmSetup& m) { m.digits = d; });
template <typename T>
std::shared_ptr<const T> make_message() {
  return pool_message<T>();
}

template <typename T, typename Fn>
std::shared_ptr<const T> make_message(Fn&& init) {
  auto msg = pool_message<T>();
  init(*msg);
  return msg;
}

}  // namespace vgprs
