// Message arena: size-class, thread-cached pooling for the simulator's
// per-event heap traffic (decoded Message instances, shared_ptr control
// blocks, and anything else small the hot path churns).
//
// Why not a plain bump arena reset at window barriers: messages outlive
// windows — a retransmitter keeps the last request, a VMSC parks a pending
// Setup, tests hold MessagePtr past run_until_idle().  So the pool is a
// recycling allocator instead: freed blocks go onto a per-thread free list
// and the backing chunks are process-lifetime, which makes steady-state
// dispatch allocation-free without any lifetime cliff.
//
//  * Allocation rounds the request up to a size class and pops the calling
//    thread's free list; a miss carves from the thread's current 64 KiB
//    chunk (bump); a chunk miss allocates a fresh chunk from the system —
//    the only path that ever reaches the global heap in steady state.
//  * Every block carries a 16-byte header naming its size class, so a block
//    may be freed on a different thread than it was allocated on (a message
//    decoded on the sending shard is destroyed on the receiving one); it
//    simply joins the freeing thread's list.  Blocks above the largest
//    class pass through to the global heap, tagged oversize.
//  * Thread caches are never destroyed: when a worker thread exits (the
//    sharded engine spawns workers per run) its pool is parked in a global
//    orphanage and adopted by the next worker, so repeated runs recycle
//    the same chunks instead of leaking per-thread state.
//  * Under ASan/TSan/MSan the pool degrades to tagged global new/delete:
//    recycling would mask use-after-free and the sanitizers' own
//    interception is the point of those builds.
//
// MessagePoolStats exposes the slow-path counters (chunks, oversize
// fallbacks).  In steady state both must be flat — tests/test_alloc pins
// exactly that, next to an operator-new interposer for the strict version.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vgprs {

struct MessagePoolStats {
  std::uint64_t chunks = 0;           // 64 KiB chunks obtained from the heap
  std::uint64_t bytes_reserved = 0;   // total bytes in those chunks
  std::uint64_t oversize_allocs = 0;  // requests above the largest class
  std::uint64_t pooled_allocs = 0;    // requests served by class lists/bumps
};

/// Allocates `n` bytes from the calling thread's message pool (16-aligned).
[[nodiscard]] void* pool_alloc(std::size_t n);
/// Returns a pool_alloc'd block; callable from any thread.
void pool_free(void* p) noexcept;

/// Process-wide slow-path counters (sum over all thread caches, monotone).
[[nodiscard]] MessagePoolStats message_pool_stats() noexcept;
/// False when a sanitizer build routes everything to the global heap.
[[nodiscard]] bool message_pool_enabled() noexcept;

/// Minimal std allocator over the pool, for std::allocate_shared (pooled
/// control blocks / combined object+control allocations).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(*-explicit-*)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { pool_free(p); }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace vgprs
