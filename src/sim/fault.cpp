#include "sim/fault.hpp"

#include <stdexcept>

#include "sim/network.hpp"

namespace vgprs {

namespace {

// Transition-event cookies: kind << 32 | schedule index.
constexpr std::uint64_t kCookieCrash = 0;
constexpr std::uint64_t kCookieRestart = 1;
constexpr std::uint64_t kCookieLinkDown = 2;
constexpr std::uint64_t kCookieLinkUp = 3;

constexpr std::uint64_t cookie_of(std::uint64_t kind, std::size_t index) {
  return (kind << 32) | static_cast<std::uint64_t>(index);
}

bool same_link(const std::pair<NodeId, NodeId>& pair, NodeId a, NodeId b) {
  return (pair.first == a && pair.second == b) ||
         (pair.first == b && pair.second == a);
}

bool in_window(SimTime at, SimTime from, SimTime until) {
  return from <= at && at < until;
}

}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule)
    : Node("fault-injector"), schedule_(std::move(schedule)) {}

FaultInjector::Counters FaultInjector::counters() const {
  Counters out;
  for (const Counters& c : counters_) {
    out.link_drops += c.link_drops;
    out.outage_drops += c.outage_drops;
    out.drops += c.drops;
    out.duplicates += c.duplicates;
    out.reorders += c.reorders;
    out.corruptions += c.corruptions;
    out.latency_spikes += c.latency_spikes;
    out.crashes += c.crashes;
    out.restarts += c.restarts;
    out.decode_errors += c.decode_errors;
  }
  return out;
}

std::uint32_t FaultInjector::matches_seen(std::size_t fault_index) const {
  std::uint32_t total = 0;
  for (const auto& per_shard : seen_) {
    if (fault_index < per_shard.size()) total += per_shard[fault_index];
  }
  return total;
}

std::uint32_t FaultInjector::faults_applied(std::size_t fault_index) const {
  std::uint32_t total = 0;
  for (const auto& per_shard : applied_) {
    if (fault_index < per_shard.size()) total += per_shard[fault_index];
  }
  return total;
}

const Error& FaultInjector::last_corrupt_error() const {
  std::size_t pick = 0;
  for (std::size_t s = 0; s < last_corrupt_error_.size(); ++s) {
    if (last_corrupt_error_[s].code != ErrorCode::kNone) pick = s;
  }
  return last_corrupt_error_[pick];
}

void FaultInjector::on_attached() {
  // Resolve every scheduled name once; ids are stable after add_node, so
  // the per-send checks below compare integers, not strings.
  auto resolve = [this](const std::string& name) {
    Node* target = net().node_by_name(name);
    if (target == nullptr) {
      throw std::invalid_argument("FaultInjector: unknown node '" + name +
                                  "' in fault schedule");
    }
    return target->id();
  };

  outage_nodes_.reserve(schedule_.node_outages.size());
  for (const NodeOutage& o : schedule_.node_outages) {
    if (o.restart_at < o.crash_at) {
      throw std::invalid_argument("FaultInjector: outage of '" + o.node +
                                  "' restarts before it crashes");
    }
    outage_nodes_.push_back(resolve(o.node));
  }
  window_nodes_.reserve(schedule_.link_windows.size());
  for (const LinkWindow& w : schedule_.link_windows) {
    window_nodes_.emplace_back(resolve(w.a), resolve(w.b));
  }
  spike_nodes_.reserve(schedule_.latency_spikes.size());
  for (const LatencySpike& s : schedule_.latency_spikes) {
    spike_nodes_.emplace_back(resolve(s.a), resolve(s.b));
  }

  const std::size_t shards = net().num_shards();
  counters_.assign(shards, Counters{});
  seen_.assign(shards, std::vector<std::uint32_t>(
                           schedule_.message_faults.size(), 0));
  applied_.assign(shards, std::vector<std::uint32_t>(
                              schedule_.message_faults.size(), 0));
  last_corrupt_error_.assign(shards, Error{ErrorCode::kNone, ""});
}

std::vector<FaultInjector::Transition> FaultInjector::transitions() const {
  std::vector<Transition> out;
  out.reserve(2 * schedule_.node_outages.size() +
              2 * schedule_.link_windows.size());
  for (std::size_t i = 0; i < schedule_.node_outages.size(); ++i) {
    const NodeOutage& o = schedule_.node_outages[i];
    out.push_back({o.crash_at, cookie_of(kCookieCrash, i), outage_nodes_[i]});
    out.push_back(
        {o.restart_at, cookie_of(kCookieRestart, i), outage_nodes_[i]});
  }
  for (std::size_t i = 0; i < schedule_.link_windows.size(); ++i) {
    const LinkWindow& w = schedule_.link_windows[i];
    out.push_back(
        {w.down_at, cookie_of(kCookieLinkDown, i), window_nodes_[i].first});
    out.push_back(
        {w.up_at, cookie_of(kCookieLinkUp, i), window_nodes_[i].first});
  }
  return out;
}

void FaultInjector::on_message(const Envelope& env) {
  // The injector has no links; nothing can be addressed to it.
  (void)env;
}

void FaultInjector::transition(std::uint64_t cookie) {
  const std::uint64_t kind = cookie >> 32;
  const auto index = static_cast<std::size_t>(cookie & 0xFFFFFFFFull);
  Counters& c = counters_[net().current_shard()];
  switch (kind) {
    case kCookieCrash: {
      const NodeOutage& o = schedule_.node_outages[index];
      record(now(), o.node, o.node, "fault.crash(" + o.node + ")",
             "node outage begins; messages and timers suppressed");
      bump("fault/injected/crash", c.crashes);
      break;
    }
    case kCookieRestart: {
      const NodeOutage& o = schedule_.node_outages[index];
      record(now(), o.node, o.node, "fault.restart(" + o.node + ")",
             "node restarts; volatile state reset");
      bump("fault/injected/restart", c.restarts);
      if (Node* target = net().node(outage_nodes_[index])) {
        target->on_restart();
      }
      break;
    }
    case kCookieLinkDown: {
      const LinkWindow& w = schedule_.link_windows[index];
      record(now(), w.a, w.b, "fault.link_down(" + w.a + "<->" + w.b + ")",
             "link window opens; traversals dropped");
      break;
    }
    case kCookieLinkUp: {
      const LinkWindow& w = schedule_.link_windows[index];
      record(now(), w.a, w.b, "fault.link_up(" + w.a + "<->" + w.b + ")",
             "link window closes; traversals delivered again");
      break;
    }
    default: break;
  }
}

bool FaultInjector::node_down(NodeId id, SimTime at) const {
  for (std::size_t i = 0; i < outage_nodes_.size(); ++i) {
    if (outage_nodes_[i] != id) continue;
    const NodeOutage& o = schedule_.node_outages[i];
    if (in_window(at, o.crash_at, o.restart_at)) return true;
  }
  return false;
}

FaultInjector::SendPlan FaultInjector::plan_send(SimTime at, const Node& src,
                                                 const Node& dst,
                                                 const Message& msg,
                                                 std::uint32_t shard) {
  SendPlan plan;
  Counters& c = counters_[shard];

  // A crashed endpoint neither emits nor accepts traffic.
  if (node_down(src.id(), at) || node_down(dst.id(), at)) {
    record(at, src.name(), dst.name(),
           "fault.outage_drop(" + std::string(msg.name()) + ")",
           "endpoint is mid-outage");
    bump("fault/injected/outage_drop", c.outage_drops);
    plan.drop = true;
    return plan;
  }

  for (std::size_t i = 0; i < window_nodes_.size(); ++i) {
    if (!same_link(window_nodes_[i], src.id(), dst.id())) continue;
    const LinkWindow& w = schedule_.link_windows[i];
    if (!in_window(at, w.down_at, w.up_at)) continue;
    record(at, src.name(), dst.name(),
           "fault.link_drop(" + std::string(msg.name()) + ")",
           "link " + w.a + "<->" + w.b + " is down");
    bump("fault/injected/link_drop", c.link_drops);
    plan.drop = true;
    return plan;
  }

  for (std::size_t i = 0; i < spike_nodes_.size(); ++i) {
    if (!same_link(spike_nodes_[i], src.id(), dst.id())) continue;
    const LatencySpike& s = schedule_.latency_spikes[i];
    if (!in_window(at, s.from, s.until)) continue;
    plan.extra_delay += s.extra;
    bump("fault/injected/latency_spike", c.latency_spikes);
  }

  for (std::size_t i = 0; i < schedule_.message_faults.size(); ++i) {
    const MessageFault& f = schedule_.message_faults[i];
    const MessagePredicate& p = f.match;
    if (!p.message.empty() && p.message != msg.name()) continue;
    if (!p.from.empty() && p.from != src.name()) continue;
    if (!p.to.empty() && p.to != dst.name()) continue;
    const std::uint32_t seen = ++seen_[shard][i];
    if (seen < p.nth || seen >= p.nth + p.count) continue;
    ++applied_[shard][i];
    const std::string what =
        "fault." + std::string(to_string(f.kind)) + "(" +
        std::string(msg.name()) + ")";
    switch (f.kind) {
      case FaultKind::kDrop:
        record(at, src.name(), dst.name(), what,
               "match #" + std::to_string(seen));
        bump("fault/injected/drop", c.drops);
        plan.drop = true;
        return plan;
      case FaultKind::kDuplicate:
        record(at, src.name(), dst.name(), what,
               "match #" + std::to_string(seen) + "; delivered twice");
        bump("fault/injected/duplicate", c.duplicates);
        plan.duplicate = true;
        break;
      case FaultKind::kReorder:
        record(at, src.name(), dst.name(), what,
               "match #" + std::to_string(seen) + "; held back " +
                   f.reorder_delay.to_string());
        bump("fault/injected/reorder", c.reorders);
        plan.extra_delay += f.reorder_delay;
        break;
      case FaultKind::kCorrupt:
        record(at, src.name(), dst.name(), what,
               "match #" + std::to_string(seen) + "; wire byte flipped");
        bump("fault/injected/corrupt", c.corruptions);
        plan.corrupt = true;
        plan.corrupt_byte = f.corrupt_byte;
        break;
    }
  }
  return plan;
}

bool FaultInjector::allow_delivery(SimTime at, const Node& src,
                                   const Node& dst, const Message& msg,
                                   std::uint32_t shard) {
  if (!node_down(dst.id(), at)) return true;
  // The message was in flight when the destination crashed.
  record(at, src.name(), dst.name(),
         "fault.outage_drop(" + std::string(msg.name()) + ")",
         "destination crashed while message was in flight");
  bump("fault/injected/outage_drop", counters_[shard].outage_drops);
  return false;
}

void FaultInjector::note_corrupt_undecodable(Error error, std::uint32_t shard) {
  last_corrupt_error_[shard] = std::move(error);
  bump("fault/injected/decode_error", counters_[shard].decode_errors);
}

void FaultInjector::record(SimTime at, const std::string& from,
                           const std::string& to, std::string what,
                           std::string detail) {
  net().record_fault(at, from, to, std::move(what), std::move(detail));
}

void FaultInjector::bump(const char* counter_name, std::uint64_t& raw) {
  ++raw;
  ++net().metrics().counter(counter_name);
}

}  // namespace vgprs
