#include "sim/span.hpp"

#include <algorithm>

namespace vgprs {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRegistration: return "registration";
    case SpanKind::kOrigination: return "origination";
    case SpanKind::kTermination: return "termination";
    case SpanKind::kRelease: return "release";
    case SpanKind::kHandoff: return "handoff";
    case SpanKind::kPdpActivation: return "pdp_activation";
    case SpanKind::kPdpDeactivation: return "pdp_deactivation";
  }
  return "?";
}

std::string_view to_string(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOpen: return "open";
    case SpanOutcome::kOk: return "ok";
    case SpanOutcome::kTimeout: return "timeout";
    case SpanOutcome::kRejected: return "rejected";
  }
  return "?";
}

namespace {

// The sharded engine parks one sink per worker thread; owner-tagged so a
// sink left over from one Network can never capture another tracker's ops
// (ParallelSweep cells on the same thread, nested scenarios in tests).
struct ThreadSink {
  const SpanTracker* owner = nullptr;
  std::vector<SpanTracker::Op>* ops = nullptr;
  DispatchKey* key = nullptr;
};
thread_local ThreadSink tl_sink;

DispatchKey next_sub(DispatchKey* key) {
  DispatchKey k = *key;
  k.sub = key->sub++;
  return k;
}

}  // namespace

void SpanTracker::set_thread_sink(const SpanTracker* owner,
                                  std::vector<Op>* ops, DispatchKey* key) {
  tl_sink = ThreadSink{owner, ops, key};
}

void SpanTracker::clear_thread_sink() { tl_sink = ThreadSink{}; }

void SpanTracker::notify(OpKind op, SpanKind kind, SpanOutcome outcome,
                         std::uint64_t correlation, SimTime at,
                         std::string_view opener) const {
  Op out;
  out.op = op;
  out.kind = kind;
  out.outcome = outcome;
  out.correlation = correlation;
  out.at = at;
  out.opener = std::string(opener);
  observer_->on_span_op(out);
}

void SpanTracker::apply(const Op& op) {
  switch (op.op) {
    case OpKind::kOpen:
      open(op.kind, op.correlation, op.opener, op.at);
      break;
    case OpKind::kClose:
      close(op.kind, op.correlation, op.outcome, op.at);
      break;
    case OpKind::kAttribute:
      attribute_delivery(op.correlation);
      break;
  }
}

void SpanTracker::open(SpanKind kind, std::uint64_t correlation,
                       std::string_view opener, SimTime at) {
  if (!enabled_) return;
  if (tl_sink.owner == this) {
    Op op;
    op.key = next_sub(tl_sink.key);
    op.op = OpKind::kOpen;
    op.kind = kind;
    op.correlation = correlation;
    op.at = at;
    op.opener = std::string(opener);
    tl_sink.ops->push_back(std::move(op));
    return;
  }
  if (observer_ != nullptr) {
    notify(OpKind::kOpen, kind, SpanOutcome::kOpen, correlation, at, opener);
  }
  auto index = static_cast<std::uint32_t>(spans_.size());
  Span span;
  span.correlation = correlation;
  span.kind = kind;
  span.opened = at;
  span.opener = std::string(opener);
  spans_.push_back(std::move(span));
  open_[correlation].push_back(index);
  ++open_count_;
}

bool SpanTracker::close(SpanKind kind, std::uint64_t correlation,
                        SpanOutcome outcome, SimTime at) {
  if (tl_sink.owner == this) {
    if (!enabled_ && open_count_ == 0) return false;
    Op op;
    op.key = next_sub(tl_sink.key);
    op.op = OpKind::kClose;
    op.kind = kind;
    op.outcome = outcome;
    op.correlation = correlation;
    op.at = at;
    tl_sink.ops->push_back(std::move(op));
    return true;
  }
  if (observer_ != nullptr) {
    // Logged before matching: a close that finds no span replays to the
    // same no-op, so the log stays faithful either way.
    notify(OpKind::kClose, kind, outcome, correlation, at, {});
  }
  auto it = open_.find(correlation);
  if (it == open_.end()) return false;
  std::vector<std::uint32_t>& bucket = it->second;
  // Most recently opened first: sequential procedures on one subscriber
  // close innermost-out.
  for (auto rit = bucket.rbegin(); rit != bucket.rend(); ++rit) {
    Span& span = spans_[*rit];
    if (span.kind != kind) continue;
    span.outcome = outcome;
    span.closed = at;
    bucket.erase(std::next(rit).base());
    if (bucket.empty()) open_.erase(it);
    --open_count_;
    return true;
  }
  return false;
}

void SpanTracker::attribute_delivery(std::uint64_t correlation) {
  if (tl_sink.owner == this) {
    Op op;
    op.key = next_sub(tl_sink.key);
    op.op = OpKind::kAttribute;
    op.correlation = correlation;
    tl_sink.ops->push_back(std::move(op));
    return;
  }
  if (observer_ != nullptr) {
    notify(OpKind::kAttribute, SpanKind::kRegistration, SpanOutcome::kOpen,
           correlation, SimTime{}, {});
  }
  auto it = open_.find(correlation);
  if (it == open_.end()) return;
  for (std::uint32_t index : it->second) ++spans_[index].hops;
}

std::size_t SpanTracker::count(SpanKind kind, SpanOutcome outcome) const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(), [&](const Span& s) {
        return s.kind == kind && s.outcome == outcome;
      }));
}

std::string SpanTracker::open_to_string() const {
  std::string out;
  for (const Span& s : spans_) {
    if (!s.is_open()) continue;
    out += "  open ";
    out += to_string(s.kind);
    out += " corr=" + std::to_string(s.correlation);
    out += " opener=" + s.opener;
    out += " since=" + s.opened.to_string();
    out += " hops=" + std::to_string(s.hops);
    out += "\n";
  }
  return out;
}

void SpanTracker::clear() {
  spans_.clear();
  open_.clear();
  open_count_ = 0;
}

}  // namespace vgprs
