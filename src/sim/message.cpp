#include "sim/message.hpp"
#include <algorithm>

namespace vgprs {

std::vector<std::uint8_t> Message::encode() const {
  ByteWriter w;
  encode_to(w);
  return w.take();
}

void Message::encode_to(ByteWriter& w) const {
  w.u16(wire_type());
  encode_payload(w);
}

MessageRegistry& MessageRegistry::instance() {
  static MessageRegistry registry;
  return registry;
}

void MessageRegistry::add(std::uint16_t wire_type, std::string_view name,
                          Factory factory) {
  // Idempotent: protocol modules may register from several translation
  // units.  A *different* name on the same wire type is a programming error,
  // recorded for vgprs_lint rather than thrown so every clash is reported.
  auto it = entries_.find(wire_type);
  if (it != entries_.end()) {
    if (it->second.name != name) {
      collisions_.push_back(
          Collision{wire_type, it->second.name, std::string(name)});
    }
    return;
  }
  entries_.emplace(wire_type, Entry{std::string(name), std::move(factory)});
}

bool MessageRegistry::known(std::uint16_t wire_type) const {
  return entries_.contains(wire_type);
}

std::string_view MessageRegistry::name_of(std::uint16_t wire_type) const {
  auto it = entries_.find(wire_type);
  return it == entries_.end() ? std::string_view{"<unknown>"}
                              : std::string_view{it->second.name};
}

std::vector<std::uint16_t> MessageRegistry::types() const {
  std::vector<std::uint16_t> out;
  out.reserve(entries_.size());
  for (const auto& [type, entry] : entries_) {
    (void)entry;
    out.push_back(type);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Message> MessageRegistry::create(
    std::uint16_t wire_type) const {
  auto it = entries_.find(wire_type);
  return it == entries_.end() ? nullptr : it->second.factory();
}

Result<std::unique_ptr<Message>> MessageRegistry::decode(
    std::span<const std::uint8_t> buffer) const {
  ByteReader r(buffer);
  std::uint16_t type = r.u16();
  if (r.failed()) {
    return Error{ErrorCode::kDecodeTruncated, "missing wire type"};
  }
  auto it = entries_.find(type);
  if (it == entries_.end()) {
    return Error{ErrorCode::kDecodeUnknownType,
                 "wire type " + std::to_string(type)};
  }
  std::unique_ptr<Message> msg = it->second.factory();
  if (Status st = msg->decode_payload(r); !st.ok()) {
    return Error{st.error().code,
                 it->second.name + ": " + st.error().message};
  }
  if (r.failed()) {
    return Error{ErrorCode::kDecodeTruncated, it->second.name};
  }
  if (r.remaining() != 0) {
    return Error{ErrorCode::kDecodeBadValue,
                 it->second.name + ": trailing bytes"};
  }
  return msg;
}

}  // namespace vgprs
