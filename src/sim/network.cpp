#include "sim/network.hpp"

#include <stdexcept>
#include <vector>

#include "common/log.hpp"
#include "sim/fault.hpp"

namespace vgprs {

Network::Network(std::uint64_t seed) : rng_(seed) {}
Network::~Network() = default;

NodeId Network::add_node(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  if (by_name_.contains(node->name())) {
    throw std::invalid_argument("duplicate node name: " + node->name());
  }
  NodeId id(static_cast<std::uint32_t>(nodes_.size() + 1));
  node->id_ = id;
  node->net_ = this;
  by_name_.emplace(node->name(), id);
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  nodes_.back()->on_attached();
  return id;
}

const Network::Adjacency* Network::find_link(NodeId a, NodeId b) const {
  if (!a.valid() || a.value() > adjacency_.size()) return nullptr;
  for (const Adjacency& adj : adjacency_[a.value() - 1]) {
    if (adj.peer == b) return &adj;
  }
  return nullptr;
}

void Network::connect(NodeId a, NodeId b, LinkProfile profile) {
  assert(a.valid() && b.valid() && a != b);
  assert(a.value() <= nodes_.size() && b.value() <= nodes_.size());
  if (const Adjacency* existing = find_link(a, b)) {
    link_profiles_[existing->link] = std::move(profile);
    return;
  }
  auto index = static_cast<std::uint32_t>(link_profiles_.size());
  link_profiles_.push_back(std::move(profile));
  adjacency_[a.value() - 1].push_back(Adjacency{b, index});
  adjacency_[b.value() - 1].push_back(Adjacency{a, index});
}

bool Network::linked(NodeId a, NodeId b) const {
  return find_link(a, b) != nullptr;
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  if (!id.valid() || id.value() > adjacency_.size()) return out;
  const auto& adj = adjacency_[id.value() - 1];
  out.reserve(adj.size());
  for (const Adjacency& a : adj) out.push_back(a.peer);
  return out;
}

const LinkProfile* Network::link_between(NodeId a, NodeId b) const {
  const Adjacency* adj = find_link(a, b);
  return adj == nullptr ? nullptr : &link_profiles_[adj->link];
}

void Network::set_link_profile(NodeId a, NodeId b, LinkProfile profile) {
  const Adjacency* adj = find_link(a, b);
  if (adj == nullptr) {
    throw std::invalid_argument("set_link_profile: no such link");
  }
  link_profiles_[adj->link] = std::move(profile);
}

Node* Network::node(NodeId id) const {
  if (!id.valid() || id.value() > nodes_.size()) return nullptr;
  return nodes_[id.value() - 1].get();
}

Node* Network::node_by_name(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : node(it->second);
}

void Network::register_ip(IpAddress ip, NodeId owner) {
  ip_owners_[ip] = owner;
}

void Network::unregister_ip(IpAddress ip) { ip_owners_.erase(ip); }

NodeId Network::ip_owner(IpAddress ip) const {
  auto it = ip_owners_.find(ip);
  return it == ip_owners_.end() ? NodeId{} : it->second;
}

void Network::send(NodeId from, NodeId to, MessagePtr msg,
                   SimDuration extra_delay) {
  assert(msg != nullptr);
  Node* src = node(from);
  Node* dst = node(to);
  if (src == nullptr || dst == nullptr) {
    throw std::logic_error("send: invalid endpoint for " +
                           std::string(msg->name()));
  }
  const LinkProfile* link = link_between(from, to);
  if (link == nullptr) {
    throw std::logic_error("send: no link " + src->name() + " <-> " +
                           dst->name() + " for " + std::string(msg->name()));
  }
  ++stats_.messages_sent;

  if (link->loss_probability > 0.0 &&
      rng_.bernoulli(link->loss_probability)) {
    ++stats_.messages_dropped;
    VG_DEBUG("net", "DROP " << src->name() << " -> " << dst->name() << " "
                            << msg->name());
    return;
  }

  bool fi_duplicate = false;
  bool fi_corrupt = false;
  std::int32_t fi_corrupt_byte = -1;
  if (fault_ != nullptr) [[unlikely]] {
    FaultInjector::SendPlan plan = fault_->plan_send(now_, *src, *dst, *msg);
    if (plan.drop) {
      ++stats_.messages_dropped;
      return;
    }
    if (plan.corrupt && !serialize_links_) {
      // No wire image to damage; a mangled frame the link never serialized
      // degrades to a loss.
      ++stats_.messages_dropped;
      return;
    }
    fi_duplicate = plan.duplicate;
    fi_corrupt = plan.corrupt;
    fi_corrupt_byte = plan.corrupt_byte;
    extra_delay += plan.extra_delay;
  }

  MessagePtr delivered = std::move(msg);
  if (serialize_links_) {
    // Encode into the reusable scratch buffer and decode from a span view
    // of it: after warm-up this round-trip performs no heap allocation
    // beyond what the decoded message itself needs.
    scratch_.clear();
    delivered->encode_to(scratch_);
    stats_.bytes_on_wire += scratch_.size();
    if (fi_corrupt) [[unlikely]] {
      // A fault-injected bit flip: damage a copy of the wire image and
      // deliver whatever the receiving codec makes of it.  A decode
      // rejection is the simulated checksum failure — the frame is
      // discarded, the sender's recovery machinery must cope.
      std::vector<std::uint8_t> wire = scratch_.data();
      std::size_t pos =
          (fi_corrupt_byte >= 0 &&
           static_cast<std::size_t>(fi_corrupt_byte) < wire.size())
              ? static_cast<std::size_t>(fi_corrupt_byte)
              : static_cast<std::size_t>(rng_.next_below(wire.size()));
      wire[pos] ^= 0xFF;
      auto decoded = MessageRegistry::instance().decode(wire);
      if (!decoded.ok()) {
        fault_->note_corrupt_undecodable(decoded.error());
        ++stats_.messages_dropped;
        return;
      }
      delivered = MessagePtr(std::move(decoded).value());
    } else {
      auto decoded = MessageRegistry::instance().decode(scratch_.data());
      if (!decoded.ok()) {
        throw std::logic_error("codec round-trip failed for " +
                               std::string(delivered->name()) + ": " +
                               decoded.error().to_string());
      }
      delivered = MessagePtr(std::move(decoded).value());
    }
  }

  SimDuration delay = link->latency + extra_delay;
  if (link->jitter > SimDuration::zero()) {
    delay += SimDuration::micros(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(
            link->jitter.count_micros()))));
  }

  Event ev;
  ev.at = now_ + delay;
  ev.seq = next_seq_++;
  ev.msg = delivered;
  ev.from = from;
  ev.to = to;
  queue_.push(std::move(ev));

  if (fi_duplicate) [[unlikely]] {
    // Messages are immutable once sent, so the duplicate shares the decoded
    // instance; it arrives back-to-back with the original (same timestamp,
    // later seq), as a retransmitting link layer would deliver it.
    Event dup;
    dup.at = now_ + delay;
    dup.seq = next_seq_++;
    dup.msg = std::move(delivered);
    dup.from = from;
    dup.to = to;
    queue_.push(std::move(dup));
  }
}

TimerId Network::set_timer(NodeId target, SimDuration delay,
                           std::uint64_t cookie) {
  std::uint32_t slot;
  if (timer_free_head_ != 0) {
    slot = timer_free_head_ - 1;
    timer_free_head_ = timer_slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(timer_slots_.size());
    timer_slots_.emplace_back();
  }
  TimerSlot& ts = timer_slots_[slot];
  ++ts.generation;  // retires every TimerId this slot handed out before
  ts.armed = true;

  Event ev;
  ev.at = now_ + delay;
  ev.seq = next_seq_++;
  ev.timer_cookie = cookie;
  ev.to = target;
  ev.timer_slot = slot;
  ev.timer_gen = ts.generation;
  queue_.push(std::move(ev));
  return (std::uint64_t{slot} << 32) | ts.generation;
}

void Network::release_timer_slot(std::uint32_t slot) {
  TimerSlot& ts = timer_slots_[slot];
  ts.armed = false;
  ts.next_free = timer_free_head_;
  timer_free_head_ = slot + 1;
}

void Network::cancel_timer(TimerId id) {
  auto slot = static_cast<std::uint32_t>(id >> 32);
  auto gen = static_cast<std::uint32_t>(id);
  if (slot >= timer_slots_.size()) return;
  const TimerSlot& ts = timer_slots_[slot];
  // Stale ids (already fired, already cancelled, or slot since reused)
  // fail this check; nothing is recorded, so nothing can leak.
  if (!ts.armed || ts.generation != gen) return;
  release_timer_slot(slot);
}

void Network::dispatch(Event ev) {
  now_ = ev.at;
  if (ev.msg == nullptr) {  // timer event
    const TimerSlot& ts = timer_slots_[ev.timer_slot];
    if (!ts.armed || ts.generation != ev.timer_gen) return;  // cancelled
    release_timer_slot(ev.timer_slot);
    if (fault_ != nullptr && fault_->node_down(ev.to, ev.at)) [[unlikely]] {
      return;  // the target is mid-outage; its pending timers die with it
    }
    ++stats_.timers_fired;
    Node* target = node(ev.to);
    assert(target != nullptr);
    target->on_timer((std::uint64_t{ev.timer_slot} << 32) | ev.timer_gen,
                     ev.timer_cookie);
    return;
  }
  Node* src = node(ev.from);
  Node* dst = node(ev.to);
  assert(src != nullptr && dst != nullptr);
  if (fault_ != nullptr &&
      !fault_->allow_delivery(ev.at, *src, *dst, *ev.msg)) [[unlikely]] {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  if (spans_.enabled()) {
    // Hop attribution: one predictable branch when spans are off; when on,
    // the virtual correlation() extracts the id without any string work.
    if (const std::uint64_t corr = ev.msg->correlation(); corr != 0) {
      spans_.attribute_delivery(corr);
    }
  }
  if (trace_.enabled()) {
    // The entry (and the message's parameter summary) is only built when a
    // trace consumer exists; with tracing disabled a delivery costs no
    // string work at all.
    trace_.record(TraceEntry{ev.at, src->name(), dst->name(),
                             std::string(ev.msg->name()),
                             ev.msg->summary()});
  }
  VG_DEBUG("net", src->name() << " -> " << dst->name() << " "
                              << ev.msg->summary());
  Envelope env{ev.at, ev.from, ev.to, std::move(ev.msg)};
  dst->on_message(env);
}

std::size_t Network::run_until_idle(SimTime limit) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= limit) {
    dispatch(queue_.pop());
    ++processed;
  }
  return processed;
}

std::size_t Network::run_until(SimTime deadline) {
  std::size_t processed = run_until_idle(deadline);
  if (now_ < deadline) now_ = deadline;
  return processed;
}

bool Network::idle() const { return queue_.empty(); }

FaultInjector& Network::install_faults(FaultSchedule schedule) {
  if (fault_ != nullptr) {
    throw std::logic_error(
        "install_faults: a fault injector is already installed");
  }
  FaultInjector& injector = add<FaultInjector>(std::move(schedule));
  fault_ = &injector;
  return injector;
}

MetricsSnapshot Network::metrics_snapshot() {
  // The engine counters are plain u64 increments on the hot path; sync them
  // into named instruments only when somebody asks for a snapshot.
  metrics_.counter("net/messages_sent") =
      static_cast<std::int64_t>(stats_.messages_sent);
  metrics_.counter("net/messages_delivered") =
      static_cast<std::int64_t>(stats_.messages_delivered);
  metrics_.counter("net/messages_dropped") =
      static_cast<std::int64_t>(stats_.messages_dropped);
  metrics_.counter("net/bytes_on_wire") =
      static_cast<std::int64_t>(stats_.bytes_on_wire);
  metrics_.counter("net/timers_fired") =
      static_cast<std::int64_t>(stats_.timers_fired);
  metrics_.gauge("net/sim_time_ms") = now_.as_millis();
  return metrics_.snapshot();
}

// --- Node helper implementations (need the full Network type) -------------

void Node::send(NodeId to, MessagePtr msg, SimDuration extra_delay) {
  net_->send(id_, to, std::move(msg), extra_delay);
}

TimerId Node::set_timer(SimDuration delay, std::uint64_t cookie) {
  return net_->set_timer(id_, delay, cookie);
}

void Node::cancel_timer(TimerId id) { net_->cancel_timer(id); }

SimTime Node::now() const { return net_->now(); }

}  // namespace vgprs
