#include "sim/network.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "sim/fault.hpp"

namespace vgprs {

namespace {

// "No queued event" sentinel for Shard::next_at / window computation.
constexpr std::int64_t kNeverMicros = std::numeric_limits<std::int64_t>::max();
constexpr SimTime kNever = SimTime::from_micros(kNeverMicros);

// The ONE synchronization point per window of the sharded run loop (the
// old protocol paid two global barriers per window: one separating event
// processing from the mailbox drain, one around a serial advance that
// re-heapified every inbox).  Sense-reversing barrier with a dynamic party
// count: the last arriver runs `completion` (the window advance) before
// releasing the others, so the release/acquire pair on gen_ publishes the
// completion's plain writes to every worker.  The completion may call
// set_parties() to fuse provably idle workers out of the next rendezvous
// (window fusion) and to re-admit them — it runs while every other member
// is blocked on gen_ and woken workers only re-arrive after their wake
// flag is released, so the adjustment is race-free.  Windows are short
// (tens of microseconds of work), so a bounded spin catches the common
// release; past that the waiter parks on the futex — unbounded
// yield-spinning on an oversubscribed or small-core host turns every
// barrier into a scheduler fight.
class WindowGate {
 public:
  explicit WindowGate(unsigned parties) : parties_(parties) {}

  /// Returns true for the last arriver (which ran `completion`).
  template <typename F>
  bool arrive_and_wait(F&& completion) {
    const unsigned gen = gen_.load(std::memory_order_acquire);
    const unsigned arrived = arrived_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (arrived == parties_.load(std::memory_order_relaxed)) {
      completion();
      arrived_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
      gen_.notify_all();
      return true;
    }
    for (int spin = 0; spin < 256; ++spin) {
      if (gen_.load(std::memory_order_acquire) != gen) return false;
      std::this_thread::yield();
    }
    unsigned cur = gen_.load(std::memory_order_acquire);
    while (cur == gen) {
      gen_.wait(cur, std::memory_order_acquire);
      cur = gen_.load(std::memory_order_acquire);
    }
    return false;
  }

  /// Completion-context only: adjusts the membership for the next window.
  void set_parties(unsigned parties) {
    parties_.store(parties, std::memory_order_relaxed);
  }
  [[nodiscard]] unsigned parties() const {
    return parties_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<unsigned> parties_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<unsigned> gen_{0};
};

// A worker parked out of the rendezvous waits on its own line-padded flag
// so wake notifications never collide with barrier traffic.
struct alignas(64) ParkFlag {
  std::atomic<std::uint32_t> v{0};
};

// Window-fusion safety valve: a worker may stay fused out of the
// rendezvous only this many consecutive windows before the advance
// re-admits it regardless (bounds how far its published view may trail).
constexpr std::uint64_t kMaxFusedWindows = 64;

// Node-arena slab size; a node object is a few hundred bytes, so one slab
// holds hundreds of nodes and a 1M-MS topology needs a few thousand slabs.
constexpr std::size_t kNodeChunkBytes = 256 * 1024;

}  // namespace

thread_local Network::TlCtx Network::tl_ctx_;

Network::Network(std::uint64_t seed) : seed_(seed) {
  // Outbox rings exist only on a sharded network (set_shards allocates
  // them); the sequential engine never routes through a mailbox.
  shards_.push_back(std::make_unique<Shard>(seed));
}

Network::~Network() {
  // Nodes are placement-constructed in the arena; destroy them virtually in
  // reverse attach order, then the slabs go with the arena.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    (*it)->~Node();
  }
}

void* Network::NodeArena::allocate(std::size_t size, std::size_t align) {
  auto align_up = [align](std::byte* p) {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::byte*>((v + align - 1) &
                                        ~std::uintptr_t{align - 1});
  };
  std::byte* p = cur == nullptr ? nullptr : align_up(cur);
  if (p == nullptr || p + size > end) {
    const std::size_t bytes = std::max(kNodeChunkBytes, size + align);
    chunks.push_back(std::make_unique<std::byte[]>(bytes));
    p = align_up(chunks.back().get());
    end = chunks.back().get() + bytes;
  }
  cur = p + size;
  return p;
}

NodeId Network::attach_node(Node* node) {
  assert(node != nullptr);
  if (by_name_.contains(node->name())) {
    throw std::invalid_argument("duplicate node name: " + node->name());
  }
  NodeId id(static_cast<std::uint32_t>(nodes_.size() + 1));
  node->id_ = id;
  node->net_ = this;
  by_name_.emplace(node->name(), id);
  nodes_.push_back(node);
  adjacency_.emplace_back();
  node_shard_.push_back(0);  // core shard unless set_shards says otherwise
  node->on_attached();
  return id;
}

const Network::Adjacency* Network::find_link(NodeId a, NodeId b) const {
  if (!a.valid() || a.value() > adjacency_.size()) return nullptr;
  // Adjacency vectors are kept sorted by peer id (see connect()), so a hub
  // node with tens of thousands of links resolves in O(log degree) instead
  // of a linear scan that made dense-cell setup quadratic.
  const auto& adj = adjacency_[a.value() - 1];
  auto it = std::lower_bound(
      adj.begin(), adj.end(), b,
      [](const Adjacency& x, NodeId id) { return x.peer.value() < id.value(); });
  if (it != adj.end() && it->peer == b) return &*it;
  return nullptr;
}

std::string_view Network::intern_label(std::string_view label) {
  if (label.empty()) return {};
  for (const std::string& s : label_table_) {
    if (s == label) return s;
  }
  label_table_.emplace_back(label);
  return label_table_.back();
}

void Network::connect(NodeId a, NodeId b, LinkProfile profile) {
  assert(a.valid() && b.valid() && a != b);
  assert(a.value() <= nodes_.size() && b.value() <= nodes_.size());
  profile.label = intern_label(profile.label);
  if (const Adjacency* existing = find_link(a, b)) {
    link_profiles_[existing->link] = profile;
    touch_seam_cache(a, b, existing->link, false);
    return;
  }
  auto index = static_cast<std::uint32_t>(link_profiles_.size());
  link_profiles_.push_back(profile);
  auto sorted_insert = [this](NodeId from, NodeId peer, std::uint32_t link) {
    auto& adj = adjacency_[from.value() - 1];
    auto pos = std::lower_bound(
        adj.begin(), adj.end(), peer,
        [](const Adjacency& x, NodeId id) { return x.peer.value() < id.value(); });
    adj.insert(pos, Adjacency{peer, link});
  };
  sorted_insert(a, b, index);
  sorted_insert(b, a, index);
  touch_seam_cache(a, b, index, true);
}

bool Network::linked(NodeId a, NodeId b) const {
  return find_link(a, b) != nullptr;
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  if (!id.valid() || id.value() > adjacency_.size()) return out;
  const auto& adj = adjacency_[id.value() - 1];
  out.reserve(adj.size());
  for (const Adjacency& a : adj) out.push_back(a.peer);
  return out;
}

const LinkProfile* Network::link_between(NodeId a, NodeId b) const {
  const Adjacency* adj = find_link(a, b);
  return adj == nullptr ? nullptr : &link_profiles_[adj->link];
}

void Network::set_link_profile(NodeId a, NodeId b, LinkProfile profile) {
  const Adjacency* adj = find_link(a, b);
  if (adj == nullptr) {
    throw std::invalid_argument("set_link_profile: no such link");
  }
  profile.label = intern_label(profile.label);
  link_profiles_[adj->link] = profile;
  touch_seam_cache(a, b, adj->link, false);
}

Node* Network::node(NodeId id) const {
  if (!id.valid() || id.value() > nodes_.size()) return nullptr;
  return nodes_[id.value() - 1];
}

Node* Network::node_by_name(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : node(it->second);
}

void Network::register_ip(IpAddress ip, NodeId owner) {
  ip_owners_[ip] = owner;
}

void Network::unregister_ip(IpAddress ip) { ip_owners_.erase(ip); }

NodeId Network::ip_owner(IpAddress ip) const {
  auto it = ip_owners_.find(ip);
  return it == ip_owners_.end() ? NodeId{} : it->second;
}

// --- sharding ---------------------------------------------------------------

void Network::set_shards(const std::vector<std::vector<NodeId>>& groups) {
  if (fault_ != nullptr) {
    throw std::logic_error(
        "set_shards: install faults after sharding, not before");
  }
  if (shards_.size() != 1) {
    throw std::logic_error("set_shards: network is already sharded");
  }
  const Shard& sh0 = *shards_.front();
  if (!sh0.queue.empty() || !sh0.timer_slots.empty() ||
      sh0.now != SimTime::origin() || sh0.next_seq != 1) {
    throw std::logic_error("set_shards: network has already run");
  }
  if (groups.empty()) {
    throw std::invalid_argument("set_shards: no shard groups");
  }
  if (groups.size() >= (std::size_t{1} << (64 - kShardSeqBits))) {
    throw std::invalid_argument("set_shards: too many shards");
  }

  node_shard_.assign(nodes_.size(), 0);
  std::vector<bool> assigned(nodes_.size(), false);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) {
      if (!id.valid() || id.value() > nodes_.size()) {
        throw std::invalid_argument("set_shards: invalid node id");
      }
      const std::size_t i = id.value() - 1;
      if (assigned[i]) {
        throw std::invalid_argument("set_shards: node '" + nodes_[i]->name() +
                                    "' listed in two shard groups");
      }
      assigned[i] = true;
      node_shard_[i] = static_cast<std::uint32_t>(g);
    }
  }

  for (std::size_t g = 1; g < groups.size(); ++g) {
    // Distinct, seed-derived stream per shard (golden-ratio stride, the
    // SplitMix64 increment) so shard RNGs never collide; shard 0 keeps the
    // Network's own stream, which is what the sequential engine uses.
    auto sh = std::make_unique<Shard>(seed_ + 0x9E3779B97F4A7C15ULL *
                                                 static_cast<std::uint64_t>(g));
    sh->index = static_cast<std::uint32_t>(g);
    if (capture_on_) {
      sh->capture.configure(capture_cfg_.ring_bytes_per_shard);
    }
    shards_.push_back(std::move(sh));
  }
  for (auto& sh : shards_) {
    sh->outbox = std::make_unique<OutboxRing[]>(shards_.size());
  }
  seam_cache_built_ = false;  // built lazily by the first windowed run
}

void Network::set_workers(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_ = workers;
}

std::vector<std::vector<NodeId>> Network::plan_shards(
    std::size_t target_shards, std::span<const NodeId> core) const {
  std::vector<std::vector<NodeId>> plan(1);  // groups[0]: the implicit core
  const std::size_t n = nodes_.size();
  if (target_shards < 2 || n < 2) return plan;

  std::vector<bool> is_core(n, false);
  if (core.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (adjacency_[i].size() > adjacency_[best].size()) best = i;
    }
    is_core[best] = true;
  } else {
    for (NodeId id : core) {
      if (!id.valid() || id.value() > n) {
        throw std::invalid_argument("plan_shards: invalid core node id");
      }
      is_core[id.value() - 1] = true;
    }
  }

  // Pieces of the residual graph to pack into shards.  Weight proxies the
  // shard's event rate by link count: every adjacency is a traffic source,
  // and +1 keeps even a linkless node from packing as free.
  struct Piece {
    std::vector<std::uint32_t> members;  // node indices, ascending
    std::size_t weight = 0;
  };
  std::vector<Piece> comps;
  std::vector<bool> seen(n, false);
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (seen[i] || is_core[i]) continue;
    Piece c;
    stack.push_back(static_cast<std::uint32_t>(i));
    seen[i] = true;
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      c.members.push_back(v);
      c.weight += adjacency_[v].size() + 1;
      for (const Adjacency& adj : adjacency_[v]) {
        const std::uint32_t p = adj.peer.value() - 1;
        if (!seen[p] && !is_core[p]) {
          seen[p] = true;
          stack.push_back(p);
        }
      }
    }
    std::sort(c.members.begin(), c.members.end());
    comps.push_back(std::move(c));
  }
  if (comps.empty()) return plan;

  const std::size_t bins_wanted = target_shards - 1;
  std::size_t total = 0;
  for (const Piece& c : comps) total += c.weight;
  const std::size_t mean = std::max<std::size_t>(
      1, (total + bins_wanted - 1) / bins_wanted);

  // A component heavier than 1.5x the mean (one hot cell) would serialize
  // every window if kept whole; carve it up by dealing its leaf nodes
  // round-robin across ceil(weight/mean) pieces while the interior (the
  // BSC/BTS spine) anchors piece 0.
  std::vector<Piece> pieces;
  for (Piece& c : comps) {
    if (c.weight * 2 <= mean * 3 || c.members.size() < 2) {
      pieces.push_back(std::move(c));
      continue;
    }
    const std::size_t want =
        std::min(bins_wanted, (c.weight + mean - 1) / mean);
    if (want < 2) {
      pieces.push_back(std::move(c));
      continue;
    }
    std::vector<Piece> split(want);
    std::size_t next_leaf_piece = 0;
    for (const std::uint32_t v : c.members) {
      const bool leaf = adjacency_[v].size() <= 1;
      Piece& dst = leaf ? split[next_leaf_piece] : split[0];
      if (leaf) next_leaf_piece = (next_leaf_piece + 1) % want;
      dst.members.push_back(v);
      dst.weight += adjacency_[v].size() + 1;
    }
    for (Piece& p : split) {
      if (!p.members.empty()) pieces.push_back(std::move(p));
    }
  }

  // LPT bin packing: heaviest piece first (ties toward the earliest-created
  // node) into the lightest bin (ties toward the lowest bin) — greedy,
  // deterministic, within 4/3 of optimal.
  std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.members.front() < b.members.front();
  });
  struct Bin {
    std::vector<std::uint32_t> members;
    std::size_t weight = 0;
  };
  std::vector<Bin> bins(std::min(bins_wanted, pieces.size()));
  for (Piece& p : pieces) {
    std::size_t lightest = 0;
    for (std::size_t b = 1; b < bins.size(); ++b) {
      if (bins[b].weight < bins[lightest].weight) lightest = b;
    }
    bins[lightest].members.insert(bins[lightest].members.end(),
                                  p.members.begin(), p.members.end());
    bins[lightest].weight += p.weight;
  }

  // Shard order follows node-creation order (smallest member id): sequence
  // numbers pack the shard index in their high bits, so this is what keeps
  // sharded tie-breaks identical to the sequential engine's.
  for (Bin& b : bins) std::sort(b.members.begin(), b.members.end());
  std::sort(bins.begin(), bins.end(), [](const Bin& a, const Bin& b) {
    return a.members.front() < b.members.front();
  });
  for (Bin& b : bins) {
    std::vector<NodeId> group;
    group.reserve(b.members.size());
    for (const std::uint32_t v : b.members) group.emplace_back(v + 1);
    plan.push_back(std::move(group));
  }
  return plan;
}

std::vector<ShardPerfStats> Network::shard_perf() const {
  std::vector<ShardPerfStats> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) out.push_back(sh->perf);
  return out;
}

void Network::touch_seam_cache(NodeId a, NodeId b, std::uint32_t link,
                               bool is_new) {
  if (!seam_cache_built_ || shards_.size() == 1) return;
  const std::uint32_t sa = shard_of(a);
  const std::uint32_t sb = shard_of(b);
  if (sa == sb) return;
  if (is_new) {
    const auto ia = a.value() - 1;
    const auto ib = b.value() - 1;
    shard_seams_[sa].push_back({link, ia, ib});
    shard_seams_[sb].push_back({link, ia, ib});
  }
  shard_la_dirty_[sa] = 1;
  shard_la_dirty_[sb] = 1;
}

void Network::compute_shard_lookaheads() {
  // Sentinel: a shard with no cross-shard links (an island) promises never
  // to disturb its peers, so it never constrains the window.
  std::uint64_t scanned = 0;
  auto recompute_shard = [&](std::uint32_t s) {
    shard_la_us_[s] = kNeverMicros / 4;
    for (const SeamLink& sl : shard_seams_[s]) {
      ++scanned;
      const std::int64_t us = link_profiles_[sl.link].latency.count_micros();
      if (us <= 0) {
        throw std::logic_error(
            "sharded engine: cross-shard link between '" +
            nodes_[sl.a]->name() + "' and '" + nodes_[sl.b]->name() +
            "' must have positive latency (it bounds the lookahead)");
      }
      shard_la_us_[s] = std::min(shard_la_us_[s], us);
    }
  };
  if (!seam_cache_built_) {
    // One full adjacency scan per sharding, not per run: collect each
    // shard's cross-shard link set, then derive the lookaheads from it.
    // (The scan count is surfaced via seam_links_scanned(), not the metrics
    // registry: sequential runs never scan, so a counter would break the
    // sequential-vs-sharded snapshot equality the tests hold.)
    shard_seams_.assign(shards_.size(), {});
    for (std::size_t i = 0; i < adjacency_.size(); ++i) {
      const std::uint32_t sa = node_shard_[i];
      for (const Adjacency& adj : adjacency_[i]) {
        if (adj.peer.value() <= i + 1) continue;  // visit each link once
        ++scanned;
        const std::uint32_t sb = shard_of(adj.peer);
        if (sb == sa) continue;
        const auto ib = adj.peer.value() - 1;
        shard_seams_[sa].push_back({adj.link, static_cast<std::uint32_t>(i), ib});
        shard_seams_[sb].push_back({adj.link, static_cast<std::uint32_t>(i), ib});
      }
    }
    shard_la_us_.assign(shards_.size(), 0);
    shard_la_dirty_.assign(shards_.size(), 0);
    seam_cache_built_ = true;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) recompute_shard(s);
  } else {
    // Retune path: only shards whose links changed since the last run.
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (shard_la_dirty_[s]) {
        recompute_shard(s);
        shard_la_dirty_[s] = 0;
      }
    }
  }
  seam_links_scanned_ += scanned;
}

// --- messaging --------------------------------------------------------------

void Network::route_event(Shard& origin, bool buffered, Event ev) {
  if (shards_.size() == 1) {
    origin.queue.push(std::move(ev));
    return;
  }
  const std::uint32_t dest = shard_of(ev.to);
  if (dest == origin.index) {
    origin.queue.push(std::move(ev));
  } else if (buffered) {
    // Mid-window cross-shard send: staged in the origin's SPSC ring and made
    // visible to the destination in one release-commit at the window barrier.
    // Conservative-safe: ev.at >= origin.now + lookahead >= window end.
    OutboxRing& ring = origin.outbox[dest];
    if (!ring.has_staged()) origin.outbox_touched.push_back(dest);
    ring.push(std::move(ev));
  } else {
    // Single-threaded stimulus between runs goes straight in.
    shards_[dest]->queue.push(std::move(ev));
  }
}

void Network::send(NodeId from, NodeId to, MessagePtr msg,
                   SimDuration extra_delay) {
  assert(msg != nullptr);
  Shard& sh = cur();
  const bool buffered = in_sharded_dispatch();
  Node* src = node(from);
  Node* dst = node(to);
  if (src == nullptr || dst == nullptr) {
    throw std::logic_error("send: invalid endpoint for " +
                           std::string(msg->name()));
  }
  const LinkProfile* link = link_between(from, to);
  if (link == nullptr) {
    throw std::logic_error("send: no link " + src->name() + " <-> " +
                           dst->name() + " for " + std::string(msg->name()));
  }
  ++sh.stats.messages_sent;

  if (link->loss_probability > 0.0 &&
      sh.rng.bernoulli(link->loss_probability)) {
    ++sh.stats.messages_dropped;
    VG_DEBUG("net", "DROP " << src->name() << " -> " << dst->name() << " "
                            << msg->name());
    return;
  }

  bool fi_duplicate = false;
  bool fi_corrupt = false;
  std::int32_t fi_corrupt_byte = -1;
  if (fault_ != nullptr) [[unlikely]] {
    FaultInjector::SendPlan plan =
        fault_->plan_send(sh.now, *src, *dst, *msg, sh.index);
    if (plan.drop) {
      ++sh.stats.messages_dropped;
      return;
    }
    if (plan.corrupt && !serialize_links_) {
      // No wire image to damage; a mangled frame the link never serialized
      // degrades to a loss.
      ++sh.stats.messages_dropped;
      return;
    }
    fi_duplicate = plan.duplicate;
    fi_corrupt = plan.corrupt;
    fi_corrupt_byte = plan.corrupt_byte;
    extra_delay += plan.extra_delay;
  }

  MessagePtr delivered = std::move(msg);
  if (serialize_links_) {
    // Encode into the shard's reusable scratch buffer and decode from a
    // span view of it: after warm-up this round-trip performs no heap
    // allocation beyond what the decoded message itself needs.
    sh.scratch.clear();
    delivered->encode_to(sh.scratch);
    sh.stats.bytes_on_wire += sh.scratch.size();
    if (fi_corrupt) [[unlikely]] {
      // A fault-injected bit flip: damage a copy of the wire image and
      // deliver whatever the receiving codec makes of it.  A decode
      // rejection is the simulated checksum failure — the frame is
      // discarded, the sender's recovery machinery must cope.
      std::vector<std::uint8_t> wire = sh.scratch.data();
      std::size_t pos =
          (fi_corrupt_byte >= 0 &&
           static_cast<std::size_t>(fi_corrupt_byte) < wire.size())
              ? static_cast<std::size_t>(fi_corrupt_byte)
              : static_cast<std::size_t>(sh.rng.next_below(wire.size()));
      wire[pos] ^= 0xFF;
      auto decoded = MessageRegistry::instance().decode(wire);
      if (!decoded.ok()) {
        fault_->note_corrupt_undecodable(decoded.error(), sh.index);
        ++sh.stats.messages_dropped;
        return;
      }
      delivered = MessagePtr(std::move(decoded).value().release(),
                             std::default_delete<const Message>{},
                             PoolAllocator<Message>{});
    } else {
      auto decoded = MessageRegistry::instance().decode(sh.scratch.data());
      if (!decoded.ok()) {
        throw std::logic_error("codec round-trip failed for " +
                               std::string(delivered->name()) + ": " +
                               decoded.error().to_string());
      }
      // The decoded object came from Message::operator new (pooled); give
      // the shared_ptr control block the same treatment instead of letting
      // the unique_ptr conversion allocate it from the global heap.
      delivered = MessagePtr(std::move(decoded).value().release(),
                             std::default_delete<const Message>{},
                             PoolAllocator<Message>{});
    }
  }

  SimDuration delay = link->latency + extra_delay;
  if (link->jitter > SimDuration::zero()) {
    delay += SimDuration::micros(static_cast<std::int64_t>(
        sh.rng.next_below(static_cast<std::uint64_t>(
            link->jitter.count_micros()))));
  }

  Event ev;
  ev.at = sh.now + delay;
  ev.sent_at = sh.now;
  ev.seq = alloc_seq(sh);
  ev.msg = delivered;
  ev.from = from;
  ev.to = to;
  route_event(sh, buffered, std::move(ev));

  if (fi_duplicate) [[unlikely]] {
    // Messages are immutable once sent, so the duplicate shares the decoded
    // instance; it arrives back-to-back with the original (same timestamp,
    // later seq), as a retransmitting link layer would deliver it.
    Event dup;
    dup.at = sh.now + delay;
    dup.sent_at = sh.now;
    dup.seq = alloc_seq(sh);
    dup.msg = std::move(delivered);
    dup.from = from;
    dup.to = to;
    route_event(sh, buffered, std::move(dup));
  }
}

TimerId Network::set_timer(NodeId target, SimDuration delay,
                           std::uint64_t cookie) {
  Shard& origin = cur();
  Shard& home =
      shards_.size() > 1 ? *shards_[shard_of(target)] : origin;
  // Nodes only arm timers on themselves, so a sharded dispatch never
  // touches another shard's timer table; stimulus code between runs may
  // (single-threaded, so that's fine).
  assert(!in_sharded_dispatch() || &home == &origin);

  std::uint32_t slot;
  if (home.timer_free_head != 0) {
    slot = home.timer_free_head - 1;
    home.timer_free_head = home.timer_slots[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(home.timer_slots.size());
    if (slot >= (1u << 24)) {
      // TimerId packs the slot into 24 bits; 16M concurrently armed timers
      // per shard means something is leaking.
      throw std::length_error("set_timer: timer slot space exhausted");
    }
    home.timer_slots.emplace_back();
  }
  TimerSlot& ts = home.timer_slots[slot];
  ++ts.generation;  // retires every TimerId this slot handed out before
  ts.armed = true;

  Event ev;
  ev.at = origin.now + delay;
  ev.sent_at = origin.now;
  ev.seq = alloc_seq(origin);
  ev.timer_cookie = cookie;
  ev.to = target;
  ev.timer_slot = slot;
  ev.timer_gen = ts.generation;
  home.queue.push(std::move(ev));
  return (std::uint64_t{home.index} << 56) | (std::uint64_t{slot} << 32) |
         ts.generation;
}

void Network::release_timer_slot(Shard& sh, std::uint32_t slot) {
  TimerSlot& ts = sh.timer_slots[slot];
  ts.armed = false;
  ts.next_free = sh.timer_free_head;
  sh.timer_free_head = slot + 1;
}

void Network::cancel_timer(TimerId id) {
  const auto shard = static_cast<std::uint32_t>(id >> 56);
  const auto slot = static_cast<std::uint32_t>((id >> 32) & 0xFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id);
  if (shard >= shards_.size()) return;
  Shard& home = *shards_[shard];
  if (slot >= home.timer_slots.size()) return;
  const TimerSlot& ts = home.timer_slots[slot];
  // Stale ids (already fired, already cancelled, or slot since reused)
  // fail this check; nothing is recorded, so nothing can leak.
  if (!ts.armed || ts.generation != gen) return;
  release_timer_slot(home, slot);
}

// --- execution --------------------------------------------------------------

void Network::record_trace(Shard& sh, bool buffered, TraceEntry entry) {
  if (buffered) {
    DispatchKey key = sh.cur_key;
    key.sub = sh.cur_key.sub++;
    sh.trace_buf.push_back(BufferedTrace{key, std::move(entry)});
  } else {
    trace_.record(std::move(entry));
  }
}

void Network::record_fault(SimTime at, const std::string& from,
                           const std::string& to, std::string what,
                           std::string detail) {
  if (capture_on_) {
    Shard& sh = cur();
    DispatchKey key = sh.cur_key;
    key.sub = sh.cur_key.sub++;
    sh.capture.fault(key, at, from, to, what, detail);
  }
  if (!trace_.enabled()) return;
  record_trace(cur(), in_sharded_dispatch(),
               TraceEntry{at, from, to, std::move(what), std::move(detail)});
}

void Network::dispatch(Event ev, Shard& sh, bool buffered) {
  sh.now = ev.at;
  if (buffered || capture_on_) {
    // The capture needs a fresh key per dispatch in the sequential engine
    // too — kTrace/kFault records are ordered by it at decode time.
    sh.cur_key = DispatchKey{ev.at, ev.sent_at, ev.seq, 0};
  }
  if (ev.msg == nullptr) {  // timer or fault-transition event
    if (ev.timer_slot == kFaultSlot) [[unlikely]] {
      ++sh.stats.timers_fired;
      fault_->transition(ev.timer_cookie);
      return;
    }
    const TimerSlot& ts = sh.timer_slots[ev.timer_slot];
    if (!ts.armed || ts.generation != ev.timer_gen) return;  // cancelled
    release_timer_slot(sh, ev.timer_slot);
    if (fault_ != nullptr && fault_->node_down(ev.to, ev.at)) [[unlikely]] {
      return;  // the target is mid-outage; its pending timers die with it
    }
    ++sh.stats.timers_fired;
    Node* target = node(ev.to);
    assert(target != nullptr);
    target->on_timer((std::uint64_t{sh.index} << 56) |
                         (std::uint64_t{ev.timer_slot} << 32) | ev.timer_gen,
                     ev.timer_cookie);
    return;
  }
  Node* src = node(ev.from);
  Node* dst = node(ev.to);
  assert(src != nullptr && dst != nullptr);
  if (fault_ != nullptr &&
      !fault_->allow_delivery(ev.at, *src, *dst, *ev.msg, sh.index))
      [[unlikely]] {
    ++sh.stats.messages_dropped;
    return;
  }
  ++sh.stats.messages_delivered;
  if (capture_on_) {
    // Packed binary record: dispatch key + endpoint ids + wire image.  The
    // encode reuses the buffer's scratch writer, so a delivery costs integer
    // stores and bulk byte copies — no strings, no formatting.
    DispatchKey key = sh.cur_key;
    key.sub = sh.cur_key.sub++;
    sh.capture.trace(key, ev.from.value(), ev.to.value(), *ev.msg);
  }
  if (spans_.enabled()) {
    // Hop attribution: one predictable branch when spans are off; when on,
    // the virtual correlation() extracts the id without any string work.
    // (Deferred through the shard's op buffer during a sharded run.)
    if (const std::uint64_t corr = ev.msg->correlation(); corr != 0) {
      spans_.attribute_delivery(corr);
    }
  }
  if (trace_.enabled()) {
    // The entry (and the message's parameter summary) is only built when a
    // trace consumer exists; with tracing disabled a delivery costs no
    // string work at all.
    record_trace(sh, buffered,
                 TraceEntry{ev.at, src->name(), dst->name(),
                            std::string(ev.msg->name()), ev.msg->summary()});
  }
  VG_DEBUG("net", src->name() << " -> " << dst->name() << " "
                              << ev.msg->summary());
  Envelope env{ev.at, ev.from, ev.to, std::move(ev.msg)};
  dst->on_message(env);
}

std::size_t Network::run_sequential(SimTime limit) {
  Shard& sh = *shards_.front();
  std::size_t processed = 0;
  while (!sh.queue.empty() && sh.queue.top().at <= limit) {
    dispatch(sh.queue.pop(), sh, false);
    ++processed;
  }
  return processed;
}

void Network::process_window(Shard& sh, SimTime t_end) {
  // Route this thread's engine entry points (now/rng/metrics/send/timers)
  // and the span tracker's mutations at the shard for the window's
  // duration; the guard survives exceptions out of node code.
  struct CtxGuard {
    ~CtxGuard() {
      SpanTracker::clear_thread_sink();
      tl_ctx_ = TlCtx{};
    }
  } guard;
  tl_ctx_ = TlCtx{this, &sh};
  SpanTracker::set_thread_sink(&spans_, &sh.span_ops, &sh.cur_key);
  std::size_t before = sh.processed;
  while (!sh.queue.empty() && sh.queue.top().at < t_end) {
    dispatch(sh.queue.pop(), sh, true);
    ++sh.processed;
  }
  if (sh.processed != before) {
    ++sh.perf.windows;
    sh.perf.events += sh.processed - before;
  }
}

void Network::drain_inboxes(Shard& sh) {
  // Pull every producer's committed-but-undrained events into the heap.
  // Commits were released before the barrier that started this window, so
  // the acquire inside drain_into observes complete Event objects.
  for (auto& other : shards_) {
    other->outbox[sh.index].drain_into(sh.queue);
  }
  sh.next_at = sh.queue.empty() ? kNever : sh.queue.top().at;
}

void Network::commit_outboxes(Shard& sh) {
  for (std::uint32_t d : sh.outbox_touched) sh.outbox[d].commit();
  sh.outbox_touched.clear();
}

void Network::merge_shard_buffers() {
  std::size_t total = 0;
  for (auto& sh : shards_) total += sh->trace_buf.size();
  if (total != 0) {
    std::vector<BufferedTrace> all;
    all.reserve(total);
    for (auto& sh : shards_) {
      for (BufferedTrace& bt : sh->trace_buf) all.push_back(std::move(bt));
      sh->trace_buf.clear();
    }
    // DispatchKeys are unique (seq identifies the dispatch, sub the record
    // within it), so this sort is a strict total order — the exact order
    // the sequential engine would have recorded in.
    std::sort(all.begin(), all.end(),
              [](const BufferedTrace& a, const BufferedTrace& b) {
                return a.key < b.key;
              });
    for (BufferedTrace& bt : all) trace_.record(std::move(bt.entry));
  }

  total = 0;
  for (auto& sh : shards_) total += sh->span_ops.size();
  if (total != 0) {
    std::vector<SpanTracker::Op> ops;
    ops.reserve(total);
    for (auto& sh : shards_) {
      for (SpanTracker::Op& op : sh->span_ops) ops.push_back(std::move(op));
      sh->span_ops.clear();
    }
    std::sort(ops.begin(), ops.end(),
              [](const SpanTracker::Op& a, const SpanTracker::Op& b) {
                return a.key < b.key;
              });
    for (const SpanTracker::Op& op : ops) spans_.apply(op);
  }

  for (auto& sh : shards_) {
    metrics_.fold_from(sh->metrics);
    sh->metrics.clear();
  }

  if (shard_stats_) {
    // Wall-clock profile instruments.  Gated: these are scheduling-dependent
    // and must never reach a determinism-checked snapshot.
    for (auto& sh : shards_) {
      const ShardPerfStats& p = sh->perf;
      const std::string pre = "shard/" + std::to_string(sh->index) + "/";
      metrics_.counter(pre + "windows") = static_cast<std::int64_t>(p.windows);
      metrics_.counter(pre + "events") = static_cast<std::int64_t>(p.events);
      metrics_.counter(pre + "fused_windows") =
          static_cast<std::int64_t>(p.fused_windows);
      metrics_.counter(pre + "busy_ns") = static_cast<std::int64_t>(p.busy_ns);
      metrics_.counter(pre + "drain_ns") =
          static_cast<std::int64_t>(p.drain_ns);
      metrics_.counter(pre + "barrier_ns") =
          static_cast<std::int64_t>(p.barrier_ns);
      metrics_.counter(pre + "idle_ns") = static_cast<std::int64_t>(p.idle_ns);
    }
  }
}

std::size_t Network::run_windowed(SimTime limit) {
  compute_shard_lookaheads();
  const auto num_shards = static_cast<unsigned>(shards_.size());
  const unsigned W = std::min(workers_, num_shards);

  for (auto& sh : shards_) {
    sh->metrics.set_enabled(metrics_.enabled());
    sh->processed = 0;
    sh->next_at = sh->queue.empty() ? kNever : sh->queue.top().at;
  }

  // Worker w owns every shard s with s % W == w, all windows long — a
  // shard's events are always executed by the same thread, in the same heap
  // order, whatever W is; only wall-clock interleaving changes.
  struct alignas(64) WorkerSlot {
    bool parked = false;
    std::uint64_t fused_run = 0;  // consecutive windows skipped so far
  };
  std::vector<WorkerSlot> wslot(W);
  auto park = std::make_unique<ParkFlag[]>(W);

  struct Ctl {
    SimTime t_end;
    // Atomic: a worker parked out of generation G still runs its
    // post-barrier bookkeeping while generation G+1's completion (which it
    // is no longer a member of) may be writing `done`.  The flag alone is
    // racy-read-tolerant — a stale false just re-checks after the ordered
    // park/gate handoff — so relaxed everywhere.
    std::atomic<bool> done{false};
    std::uint64_t windows = 0;  // windows decided so far
    std::vector<unsigned> wake_list;
    std::exception_ptr error;
    std::mutex error_mu;
  } ctl;
  std::vector<std::int64_t> eff_next_us(num_shards);
  unsigned next_parties = W;  // awake-worker count for the next window

  // The serial slice of the window protocol, run once per window by the
  // single barrier's last arriver.  Adaptive conservative window: shard s,
  // whose earliest pending event is at eff_next_s, cannot make anything
  // arrive at a peer before eff_next_s + la_s (la_s = min latency of s's
  // cross-shard links).  The window end is the greatest E with
  // E <= eff_next_s + la_s for every shard *active* below it
  // (eff_next_s < E) — found by a monotone-decreasing fixed-point iteration
  // from the cap.  Idle and island shards drop out of the min, so a
  // low-latency link between dormant shards no longer throttles everyone;
  // with no active cross-shard constraint at all, one window runs to the
  // limit.
  //
  // eff_next_s folds in committed-but-undrained ring events (a parked owner
  // never drains, and even an awake owner only drains at its next window
  // start).  Scanning the rings here is safe: commit records are producer-
  // written during the window and advance-read at the barrier, when every
  // producer is quiescent — never concurrently.
  auto advance = [&] {
    auto wake_all = [&] {
      for (unsigned x = 0; x < W; ++x) {
        if (wslot[x].parked) {
          wslot[x].parked = false;
          ctl.wake_list.push_back(x);
        }
      }
    };
    {
      std::lock_guard<std::mutex> lock(ctl.error_mu);
      if (ctl.error) {
        ctl.done.store(true, std::memory_order_relaxed);
        wake_all();
        return;
      }
    }
    for (std::uint32_t d = 0; d < num_shards; ++d) {
      std::int64_t eff = shards_[d]->next_at.count_micros();
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        if (s == d) continue;
        eff = std::min(eff, shards_[s]->outbox[d].undrained_min_us());
      }
      eff_next_us[d] = eff;
    }
    std::int64_t t_us = kNeverMicros;
    for (std::uint32_t d = 0; d < num_shards; ++d)
      t_us = std::min(t_us, eff_next_us[d]);
    if (t_us >= kNeverMicros || t_us > limit.count_micros()) {
      ctl.done.store(true, std::memory_order_relaxed);
      wake_all();
      return;
    }
    // Cap one tick past the (inclusive) limit; all arithmetic saturates.
    const std::int64_t cap_us =
        limit.count_micros() >= kNeverMicros ? kNeverMicros
                                             : limit.count_micros() + 1;
    std::int64_t end_us = cap_us;
    for (;;) {
      std::int64_t next_us = cap_us;
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        const std::int64_t at_us = eff_next_us[s];
        if (at_us >= end_us) continue;  // inactive below the current window
        const std::int64_t la_us = shard_la_us_[s];
        const std::int64_t promise =
            at_us > kNeverMicros - la_us ? kNeverMicros : at_us + la_us;
        next_us = std::min(next_us, promise);
      }
      if (next_us == end_us) break;
      end_us = next_us;  // strictly decreasing: converges in <= #shards steps
    }
    // The shard holding the global minimum T contributes T + la > T, so the
    // window always admits at least one event and the loop makes progress.
    ctl.t_end = SimTime::from_micros(end_us);
    ++ctl.windows;

    // Window fusion: a worker whose owned shards are all quiet below the
    // window end (no heap event, no undrained inbound event) has nothing to
    // run AND nothing to drain, so it skips the rendezvous entirely —
    // parked workers don't arrive at the barrier (parties shrinks) and are
    // woken when a shard of theirs goes active again.  kMaxFusedWindows
    // bounds the run so a long-parked worker still touches its clock.
    for (unsigned x = 0; x < W; ++x) {
      bool quiet = true;
      for (std::uint32_t s = x; s < num_shards; s += W) {
        if (eff_next_us[s] < end_us) {
          quiet = false;
          break;
        }
      }
      if (wslot[x].parked) {
        if (!quiet || wslot[x].fused_run >= kMaxFusedWindows) {
          wslot[x].parked = false;
          wslot[x].fused_run = 0;
          ctl.wake_list.push_back(x);
        } else {
          ++wslot[x].fused_run;
          for (std::uint32_t s = x; s < num_shards; s += W)
            ++shards_[s]->perf.fused_windows;
        }
      } else if (quiet && W > 1) {
        wslot[x].parked = true;
        wslot[x].fused_run = 1;
        park[x].v.store(1, std::memory_order_relaxed);
        for (std::uint32_t s = x; s < num_shards; s += W)
          ++shards_[s]->perf.fused_windows;
      }
    }
    unsigned awake = 0;
    for (unsigned x = 0; x < W; ++x) {
      if (!wslot[x].parked) ++awake;
    }
    next_parties = awake;  // applied by the gate after this completion
  };

  advance();
  if (!ctl.done.load(std::memory_order_relaxed)) {
    // The initial advance may already have parked workers whose shards are
    // quiet below the first window; they wait on their flags from the
    // start, so the gate opens with only the awake membership.
    WindowGate gate(next_parties);
    ctl.wake_list.clear();  // nobody is blocked yet; flags alone suffice
    auto perf_now = [] {
      return std::chrono::steady_clock::now();
    };
    auto worker = [&](unsigned w) {
      // Wakes this worker's completion decided, swapped out of ctl.wake_list
      // *inside* the gate (completions are serialized, so that access is
      // exclusive) and processed after release from this private copy.  The
      // completion runner may have parked itself out of the next generation,
      // so the shared list could otherwise be pushed to by the next
      // completion while this one is still draining it — and a wake issued
      // from someone else's batch would hand the woken worker a park-flag
      // release that doesn't carry the deciding advance's writes.
      std::vector<unsigned> my_wakes;
      while (true) {
        if (park[w].v.load(std::memory_order_acquire) != 0) {
          const auto t0 = perf_now();
          while (park[w].v.load(std::memory_order_acquire) != 0) {
            park[w].v.wait(1, std::memory_order_acquire);
          }
          if (shard_stats_) {
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                perf_now() - t0)
                                .count();
            for (std::uint32_t s = w; s < num_shards; s += W)
              shards_[s]->perf.idle_ns += static_cast<std::uint64_t>(ns);
          }
        }
        if (ctl.done.load(std::memory_order_relaxed)) return;
        // Per-shard spans are timed individually (only when stats are on):
        // attributing one sweep-wide span to every owned shard would
        // overcount by the owned-shard count and make the report's totals
        // exceed wall time.
        for (std::uint32_t s = w; s < num_shards; s += W) {
          const auto t0 =
              shard_stats_ ? perf_now() : std::chrono::steady_clock::time_point{};
          drain_inboxes(*shards_[s]);
          if (shard_stats_) {
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                perf_now() - t0)
                                .count();
            shards_[s]->perf.drain_ns += static_cast<std::uint64_t>(ns);
          }
        }
        const SimTime t_end = ctl.t_end;
        for (std::uint32_t s = w; s < num_shards; s += W) {
          const auto t0 =
              shard_stats_ ? perf_now() : std::chrono::steady_clock::time_point{};
          try {
            process_window(*shards_[s], t_end);
          } catch (...) {
            // Keep participating in the barrier (abandoning would wedge
            // the other workers); the next advance() sees the error and
            // stops everyone.
            std::lock_guard<std::mutex> lock(ctl.error_mu);
            if (!ctl.error) ctl.error = std::current_exception();
          }
          if (shard_stats_) {
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                perf_now() - t0)
                                .count();
            shards_[s]->perf.busy_ns += static_cast<std::uint64_t>(ns);
          }
        }
        for (std::uint32_t s = w; s < num_shards; s += W) {
          Shard& sh = *shards_[s];
          commit_outboxes(sh);
          sh.next_at = sh.queue.empty() ? kNever : sh.queue.top().at;
        }
        const auto t0 = perf_now();
        const bool last = gate.arrive_and_wait([&] {
          advance();
          my_wakes.swap(ctl.wake_list);
          gate.set_parties(next_parties);
        });
        if (shard_stats_) {
          const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              perf_now() - t0)
                              .count();
          for (std::uint32_t s = w; s < num_shards; s += W)
            shards_[s]->perf.barrier_ns += static_cast<std::uint64_t>(ns);
        }
        if (last && !my_wakes.empty()) {
          // Wakes happen after the gate released this generation, so a
          // woken worker's next arrival can't race the reset of the
          // arrival counter.  The release-store publishes this thread's own
          // advance (t_end, done, wslot) to the woken worker's acquire.
          for (unsigned x : my_wakes) {
            park[x].v.store(0, std::memory_order_release);
            park[x].v.notify_all();
          }
          my_wakes.clear();
        }
        if (ctl.done.load(std::memory_order_relaxed)) return;
      }
    };
    if (W == 1) {
      worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(W - 1);
      for (unsigned w = 1; w < W; ++w) threads.emplace_back(worker, w);
      worker(0);
      for (std::thread& th : threads) th.join();
    }
  }

  // Equalize clocks so now() is single-valued for stimulus between runs
  // (the sequential engine's now_ is the last dispatched event's time).
  SimTime max_now = SimTime::origin();
  for (auto& sh : shards_) max_now = std::max(max_now, sh->now);
  for (auto& sh : shards_) sh->now = max_now;

  merge_shard_buffers();

  if (ctl.error) std::rethrow_exception(ctl.error);
  std::size_t processed = 0;
  for (auto& sh : shards_) processed += sh->processed;
  return processed;
}

std::size_t Network::run_until_idle(SimTime limit) {
  return shards_.size() == 1 ? run_sequential(limit) : run_windowed(limit);
}

std::size_t Network::run_until(SimTime deadline) {
  std::size_t processed = run_until_idle(deadline);
  for (auto& sh : shards_) {
    if (sh->now < deadline) sh->now = deadline;
  }
  return processed;
}

bool Network::idle() const {
  for (const auto& sh : shards_) {
    if (!sh->queue.empty()) return false;
  }
  if (shards_.size() > 1) {
    // A deadline-bounded run can end with events committed to an outbox
    // ring but not yet drained into the destination heap.
    for (const auto& sh : shards_) {
      for (std::size_t d = 0; d < shards_.size(); ++d) {
        if (!sh->outbox[d].empty_quiescent()) return false;
      }
    }
  }
  return true;
}

// --- fault injection --------------------------------------------------------

void Network::push_fault_event(SimTime at, std::uint64_t cookie,
                               NodeId target) {
  Shard& origin = *shards_.front();  // installation is a stimulus-time act
  Shard& home = shards_.size() > 1 ? *shards_[shard_of(target)] : origin;
  Event ev;
  ev.at = std::max(at, origin.now);
  ev.sent_at = origin.now;
  ev.seq = alloc_seq(home);
  ev.timer_cookie = cookie;
  ev.to = target;
  ev.timer_slot = kFaultSlot;
  home.queue.push(std::move(ev));
}

FaultInjector& Network::install_faults(FaultSchedule schedule) {
  if (fault_ != nullptr) {
    throw std::logic_error(
        "install_faults: a fault injector is already installed");
  }
  FaultInjector& injector = add<FaultInjector>(std::move(schedule));
  fault_ = &injector;
  // Crash/restart/link transitions ride the event queue of the shard whose
  // node they affect, so on_restart() runs on the owning worker.
  for (const FaultInjector::Transition& t : injector.transitions()) {
    push_fault_event(t.at, t.cookie, t.target);
  }
  return injector;
}

// --- observability ----------------------------------------------------------

void Network::enable_capture(const CaptureConfig& cfg) {
  capture_cfg_ = cfg;
  capture_on_ = true;
  for (auto& sh : shards_) sh->capture.configure(cfg.ring_bytes_per_shard);
  capture_spans_.clear();
  spans_.set_observer(&capture_spans_);
}

void Network::disable_capture() {
  capture_on_ = false;
  if (spans_.observer() == &capture_spans_) spans_.set_observer(nullptr);
  for (auto& sh : shards_) sh->capture.clear();
  capture_spans_.clear();
}

void Network::write_capture_segment_impl(std::span<std::ostream* const> outs,
                                         std::string_view system,
                                         std::uint64_t events,
                                         const MetricsSnapshot& snapshot) {
  if (!capture_on_) {
    throw std::logic_error("write_capture_segment: capture is not enabled");
  }
  const bool split = outs.size() > 1;

  ByteWriter p;
  std::vector<std::uint8_t> blob;
  auto record = [&](BtraceRecord kind) {
    append_btrace_record(blob, kind, p.data());
    p.clear();
  };
  auto write_shard = [&](const Shard& sh) {
    p.u32(sh.index);
    p.u64(sh.capture.dropped_records());
    p.u64(sh.capture.dropped_bytes());
    record(BtraceRecord::kShardBegin);
    sh.capture.drain_to(blob);
  };

  for (std::size_t f = 0; f < outs.size(); ++f) {
    const bool primary = f == 0;
    // Every file opens the segment so per-shard captures align at decode;
    // the intern tables, span log, metrics, and run summary travel with the
    // primary only.
    p.str(system);
    p.u32(static_cast<std::uint32_t>(shards_.size()));
    record(BtraceRecord::kRunBegin);

    if (primary) {
      // Node-name intern table, written once per segment: steady-state
      // kTrace records carry only NodeId integers.
      p.u32(static_cast<std::uint32_t>(nodes_.size()));
      for (const auto& n : nodes_) {
        p.u32(n->id().value());
        p.str(n->name());
      }
      record(BtraceRecord::kNodeTable);

      const MessageRegistry& reg = MessageRegistry::instance();
      const std::vector<std::uint16_t> types = reg.types();
      p.u32(static_cast<std::uint32_t>(types.size()));
      for (std::uint16_t t : types) {
        p.u16(t);
        p.str(reg.name_of(t));
      }
      record(BtraceRecord::kMsgTable);
    }

    if (split) {
      write_shard(*shards_[f]);
    } else {
      for (const auto& sh : shards_) write_shard(*sh);
    }

    if (primary) {
      const std::vector<std::uint8_t>& spans = capture_spans_.bytes();
      blob.insert(blob.end(), spans.begin(), spans.end());
      for (const auto& [name, v] : snapshot.counters) {
        p.str(name);
        p.u64(static_cast<std::uint64_t>(v));
        record(BtraceRecord::kMetricCounter);
      }
      for (const auto& [name, v] : snapshot.gauges) {
        p.str(name);
        p.f64(v);
        record(BtraceRecord::kMetricGauge);
      }
      for (const auto& [name, h] : snapshot.histograms) {
        p.str(name);
        p.u64(h.count);
        p.f64(h.min);
        p.f64(h.max);
        p.f64(h.mean);
        p.f64(h.p50);
        p.f64(h.p95);
        p.f64(h.p99);
        record(BtraceRecord::kMetricHist);
      }
    }
    p.u8(primary ? 1 : 0);
    p.u64(events);
    p.u64(static_cast<std::uint64_t>(now().count_micros()));
    record(BtraceRecord::kRunEnd);

    outs[f]->write(reinterpret_cast<const char*>(blob.data()),
                   static_cast<std::streamsize>(blob.size()));
    blob.clear();
  }

  // The segment is on disk; start the next one clean.
  for (auto& sh : shards_) sh->capture.clear();
  capture_spans_.clear();
}

void Network::write_capture_segment(std::ostream& out, std::string_view system,
                                    std::uint64_t events,
                                    const MetricsSnapshot& snapshot) {
  std::ostream* outs[] = {&out};
  write_capture_segment_impl(outs, system, events, snapshot);
}

void Network::write_capture_segment_files(std::span<std::ostream* const> outs,
                                          std::string_view system,
                                          std::uint64_t events,
                                          const MetricsSnapshot& snapshot) {
  if (outs.size() != shards_.size()) {
    throw std::invalid_argument(
        "write_capture_segment_files: need exactly one stream per shard");
  }
  write_capture_segment_impl(outs, system, events, snapshot);
}

NetworkStats Network::stats() const {
  NetworkStats out;
  for (const auto& sh : shards_) {
    out.messages_sent += sh->stats.messages_sent;
    out.messages_delivered += sh->stats.messages_delivered;
    out.messages_dropped += sh->stats.messages_dropped;
    out.bytes_on_wire += sh->stats.bytes_on_wire;
    out.timers_fired += sh->stats.timers_fired;
  }
  return out;
}

MetricsRegistry& Network::metrics() {
  return in_sharded_dispatch() ? cur().metrics : metrics_;
}

MetricsSnapshot Network::metrics_snapshot() {
  // The engine counters are plain u64 increments on the hot path; sync them
  // into named instruments only when somebody asks for a snapshot.
  const NetworkStats s = stats();
  metrics_.counter("net/messages_sent") =
      static_cast<std::int64_t>(s.messages_sent);
  metrics_.counter("net/messages_delivered") =
      static_cast<std::int64_t>(s.messages_delivered);
  metrics_.counter("net/messages_dropped") =
      static_cast<std::int64_t>(s.messages_dropped);
  metrics_.counter("net/bytes_on_wire") =
      static_cast<std::int64_t>(s.bytes_on_wire);
  metrics_.counter("net/timers_fired") =
      static_cast<std::int64_t>(s.timers_fired);
  metrics_.gauge("net/sim_time_ms") = now().as_millis();
  return metrics_.snapshot();
}

// --- Node helper implementations (need the full Network type) -------------

void Node::send(NodeId to, MessagePtr msg, SimDuration extra_delay) {
  net_->send(id_, to, std::move(msg), extra_delay);
}

TimerId Node::set_timer(SimDuration delay, std::uint64_t cookie) {
  return net_->set_timer(id_, delay, cookie);
}

void Node::cancel_timer(TimerId id) { net_->cancel_timer(id); }

SimTime Node::now() const { return net_->now(); }

}  // namespace vgprs
