#include "sim/network.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

Network::Network(std::uint64_t seed) : rng_(seed) {}
Network::~Network() = default;

NodeId Network::add_node(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  if (by_name_.contains(node->name())) {
    throw std::invalid_argument("duplicate node name: " + node->name());
  }
  NodeId id(static_cast<std::uint32_t>(nodes_.size() + 1));
  node->id_ = id;
  node->net_ = this;
  by_name_.emplace(node->name(), id);
  nodes_.push_back(std::move(node));
  nodes_.back()->on_attached();
  return id;
}

std::uint64_t Network::link_key(NodeId a, NodeId b) {
  std::uint32_t lo = std::min(a.value(), b.value());
  std::uint32_t hi = std::max(a.value(), b.value());
  return (std::uint64_t{lo} << 32) | hi;
}

void Network::connect(NodeId a, NodeId b, LinkProfile profile) {
  assert(a.valid() && b.valid() && a != b);
  links_[link_key(a, b)] = std::move(profile);
}

bool Network::linked(NodeId a, NodeId b) const {
  return links_.contains(link_key(a, b));
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, profile] : links_) {
    (void)profile;
    auto lo = static_cast<std::uint32_t>(key >> 32);
    auto hi = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    if (lo == id.value()) out.emplace_back(hi);
    if (hi == id.value()) out.emplace_back(lo);
  }
  return out;
}

const LinkProfile* Network::link_between(NodeId a, NodeId b) const {
  auto it = links_.find(link_key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

void Network::set_link_profile(NodeId a, NodeId b, LinkProfile profile) {
  auto it = links_.find(link_key(a, b));
  if (it == links_.end()) {
    throw std::invalid_argument("set_link_profile: no such link");
  }
  it->second = std::move(profile);
}

Node* Network::node(NodeId id) const {
  if (!id.valid() || id.value() > nodes_.size()) return nullptr;
  return nodes_[id.value() - 1].get();
}

Node* Network::node_by_name(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : node(it->second);
}

void Network::register_ip(IpAddress ip, NodeId owner) {
  ip_owners_[ip] = owner;
}

void Network::unregister_ip(IpAddress ip) { ip_owners_.erase(ip); }

NodeId Network::ip_owner(IpAddress ip) const {
  auto it = ip_owners_.find(ip);
  return it == ip_owners_.end() ? NodeId{} : it->second;
}

void Network::send(NodeId from, NodeId to, MessagePtr msg,
                   SimDuration extra_delay) {
  assert(msg != nullptr);
  Node* src = node(from);
  Node* dst = node(to);
  if (src == nullptr || dst == nullptr) {
    throw std::logic_error("send: invalid endpoint for " +
                           std::string(msg->name()));
  }
  const LinkProfile* link = link_between(from, to);
  if (link == nullptr) {
    throw std::logic_error("send: no link " + src->name() + " <-> " +
                           dst->name() + " for " + std::string(msg->name()));
  }
  ++stats_.messages_sent;

  if (link->loss_probability > 0.0 &&
      rng_.bernoulli(link->loss_probability)) {
    ++stats_.messages_dropped;
    VG_DEBUG("net", "DROP " << src->name() << " -> " << dst->name() << " "
                            << msg->name());
    return;
  }

  MessagePtr delivered = msg;
  if (serialize_links_) {
    std::vector<std::uint8_t> wire = msg->encode();
    stats_.bytes_on_wire += wire.size();
    auto decoded = MessageRegistry::instance().decode(wire);
    if (!decoded.ok()) {
      throw std::logic_error("codec round-trip failed for " +
                             std::string(msg->name()) + ": " +
                             decoded.error().to_string());
    }
    delivered = MessagePtr(std::move(decoded).value());
  }

  SimDuration delay = link->latency + extra_delay;
  if (link->jitter > SimDuration::zero()) {
    delay += SimDuration::micros(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(
            link->jitter.count_micros()))));
  }

  Event ev;
  ev.at = now_ + delay;
  ev.seq = next_seq_++;
  ev.env = Envelope{ev.at, from, to, std::move(delivered)};
  queue_.push(std::move(ev));
}

TimerId Network::set_timer(NodeId target, SimDuration delay,
                           std::uint64_t cookie) {
  Event ev;
  ev.at = now_ + delay;
  ev.seq = next_seq_++;
  ev.is_timer = true;
  ev.timer_target = target;
  ev.timer_id = ev.seq;
  ev.timer_cookie = cookie;
  TimerId id = ev.timer_id;
  queue_.push(std::move(ev));
  return id;
}

void Network::cancel_timer(TimerId id) { cancelled_timers_.insert(id); }

void Network::dispatch(const Event& ev) {
  now_ = ev.at;
  if (ev.is_timer) {
    if (cancelled_timers_.erase(ev.timer_id) > 0) return;
    ++stats_.timers_fired;
    Node* target = node(ev.timer_target);
    assert(target != nullptr);
    target->on_timer(ev.timer_id, ev.timer_cookie);
    return;
  }
  Node* src = node(ev.env.from);
  Node* dst = node(ev.env.to);
  assert(src != nullptr && dst != nullptr);
  ++stats_.messages_delivered;
  trace_.record(TraceEntry{ev.at, src->name(), dst->name(),
                           std::string(ev.env.msg->name()),
                           ev.env.msg->summary()});
  VG_DEBUG("net", src->name() << " -> " << dst->name() << " "
                              << ev.env.msg->summary());
  dst->on_message(ev.env);
}

std::size_t Network::run_until_idle(SimTime limit) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= limit) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
    ++processed;
  }
  return processed;
}

std::size_t Network::run_until(SimTime deadline) {
  std::size_t processed = run_until_idle(deadline);
  if (now_ < deadline) now_ = deadline;
  return processed;
}

bool Network::idle() const { return queue_.empty(); }

// --- Node helper implementations (need the full Network type) -------------

void Node::send(NodeId to, MessagePtr msg, SimDuration extra_delay) {
  net_->send(id_, to, std::move(msg), extra_delay);
}

TimerId Node::set_timer(SimDuration delay, std::uint64_t cookie) {
  return net_->set_timer(id_, delay, cookie);
}

void Node::cancel_timer(TimerId id) { net_->cancel_timer(id); }

SimTime Node::now() const { return net_->now(); }

}  // namespace vgprs
