// Node: the base class for every simulated network element (MS, BTS, BSC,
// VMSC, SGSN, GGSN, gatekeeper, ...).  A node reacts to delivered messages
// and to its own timers; it talks to the world exclusively through the
// owning Network.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace vgprs {

class Network;

/// Index of a node within its Network.  0 is reserved as "invalid".
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A message in flight / being delivered.
struct Envelope {
  SimTime at;       // delivery time
  NodeId from;
  NodeId to;
  MessagePtr msg;
};

using TimerId = std::uint64_t;

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Network& net() const { return *net_; }

  /// A message addressed to this node arrived.
  virtual void on_message(const Envelope& env) = 0;

  /// A timer set via Network::set_timer fired.  `cookie` is caller-defined.
  virtual void on_timer(TimerId id, std::uint64_t cookie) {
    (void)id;
    (void)cookie;
  }

  /// Called once after the node has been added to a network.
  virtual void on_attached() {}

  /// The node crashed and came back (FaultInjector node outage): volatile
  /// state — procedure contexts, pending timers' meaning, caches — must be
  /// reset here.  Durable state (provisioned subscribers, configuration)
  /// survives.  Timers armed before the crash may still fire afterwards;
  /// implementations must clear whatever lookup state gives those cookies
  /// meaning, so stale firings are no-ops.
  virtual void on_restart() {}

 protected:
  /// Sends `msg` to `to` over the connecting link (asserts a link exists).
  void send(NodeId to, MessagePtr msg,
            SimDuration extra_delay = SimDuration::zero());
  TimerId set_timer(SimDuration delay, std::uint64_t cookie = 0);
  void cancel_timer(TimerId id);
  [[nodiscard]] SimTime now() const;

 private:
  friend class Network;
  std::string name_;
  NodeId id_;
  Network* net_ = nullptr;
};

}  // namespace vgprs
