// ProtoMessage: declarative definition of wire messages.
//
// A protocol family defines plain payload structs with encode / decode /
// describe members, then instantiates ProtoMessage aliases that bind a
// payload to a unique wire type and the on-the-wire name used in traces:
//
//   struct LocationUpdateInfo {
//     Imsi imsi; ...
//     void encode(ByteWriter&) const; Status decode(ByteReader&);
//     std::string describe() const;
//   };
//   using UmLocationUpdateRequest =
//       ProtoMessage<LocationUpdateInfo, 0x0103, "Um_Location_Update_Request">;
//
// The payload is a public base so its fields read as direct members of the
// message.  Distinct aliases of the same payload are distinct C++ types,
// which keeps e.g. Um_Alerting and A_Alerting separate in flows and traces.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>

#include "sim/message.hpp"

namespace vgprs {

/// Compile-time string usable as a non-type template parameter.
template <std::size_t N>
struct FixedString {
  char data[N]{};

  consteval FixedString(const char (&str)[N]) {  // NOLINT(google-explicit-constructor)
    std::copy_n(str, N, data);
  }

  [[nodiscard]] constexpr std::string_view view() const {
    return std::string_view(data, N - 1);
  }
};

/// Payload for messages that carry no parameters.
struct EmptyPayload {
  void encode(ByteWriter&) const {}
  Status decode(ByteReader&) { return Status::ok_status(); }
  [[nodiscard]] std::string describe() const { return {}; }
};

namespace detail {

// Correlation-id field detection: payloads opt in structurally, by carrying
// one of the well-known identity fields.  Precedence (imsi strongest) keeps
// the derived id stable across a procedure even when later messages add
// weaker identifiers.
template <typename P> concept HasImsi = requires(const P& p) { p.imsi.value(); };
template <typename P> concept HasCallRef = requires(const P& p) { p.call_ref.value(); };
template <typename P> concept HasMsrn = requires(const P& p) { p.msrn.value(); };
template <typename P> concept HasMsisdn = requires(const P& p) { p.msisdn.value(); };
template <typename P> concept HasCalled = requires(const P& p) { p.called.value(); };
template <typename P> concept HasCalling = requires(const P& p) { p.calling.value(); };
template <typename P> concept HasAlias = requires(const P& p) { p.alias.value(); };

template <typename P>
inline constexpr bool kHasCorrelationField =
    HasImsi<P> || HasCallRef<P> || HasMsrn<P> || HasMsisdn<P> ||
    HasCalled<P> || HasCalling<P> || HasAlias<P>;

/// First nonzero identity field in precedence order, else 0.
template <typename P>
std::uint64_t correlation_of(const P& p) {
  if constexpr (HasImsi<P>) {
    if (auto v = static_cast<std::uint64_t>(p.imsi.value())) return v;
  }
  if constexpr (HasCallRef<P>) {
    if (auto v = static_cast<std::uint64_t>(p.call_ref.value())) return v;
  }
  if constexpr (HasMsrn<P>) {
    if (auto v = static_cast<std::uint64_t>(p.msrn.value())) return v;
  }
  if constexpr (HasMsisdn<P>) {
    if (auto v = static_cast<std::uint64_t>(p.msisdn.value())) return v;
  }
  if constexpr (HasCalled<P>) {
    if (auto v = static_cast<std::uint64_t>(p.called.value())) return v;
  }
  if constexpr (HasCalling<P>) {
    if (auto v = static_cast<std::uint64_t>(p.calling.value())) return v;
  }
  if constexpr (HasAlias<P>) {
    if (auto v = static_cast<std::uint64_t>(p.alias.value())) return v;
  }
  return 0;
}

}  // namespace detail

template <typename Payload, std::uint16_t WireType, FixedString Name>
class ProtoMessage final : public Message, public Payload {
 public:
  static constexpr std::uint16_t kWireType = WireType;
  static constexpr std::string_view kName = Name.view();
  using payload_type = Payload;

  ProtoMessage() = default;
  explicit ProtoMessage(Payload payload) : Payload(std::move(payload)) {}

  // Message::encode() (full wire form) wins over the payload's
  // field-level encode(ByteWriter&), which stays reachable as
  // Payload::encode.
  using Message::encode;

  [[nodiscard]] std::uint16_t wire_type() const override { return kWireType; }
  [[nodiscard]] std::string_view name() const override { return kName; }
  [[nodiscard]] std::unique_ptr<Message> clone() const override {
    return std::make_unique<ProtoMessage>(*this);
  }

  void encode_payload(ByteWriter& w) const override { Payload::encode(w); }
  Status decode_payload(ByteReader& r) override { return Payload::decode(r); }

  [[nodiscard]] std::string summary() const override {
    std::string desc = Payload::describe();
    std::string out(kName);
    if (!desc.empty()) {
      out += " ";
      out += desc;
    }
    return out;
  }

  [[nodiscard]] std::uint64_t correlation() const override {
    if constexpr (detail::kHasCorrelationField<Payload>) {
      return detail::correlation_of(static_cast<const Payload&>(*this));
    } else {
      return 0;
    }
  }

  [[nodiscard]] bool correlates() const override {
    return detail::kHasCorrelationField<Payload>;
  }
};

}  // namespace vgprs
