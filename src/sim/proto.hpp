// ProtoMessage: declarative definition of wire messages.
//
// A protocol family defines plain payload structs with encode / decode /
// describe members, then instantiates ProtoMessage aliases that bind a
// payload to a unique wire type and the on-the-wire name used in traces:
//
//   struct LocationUpdateInfo {
//     Imsi imsi; ...
//     void encode(ByteWriter&) const; Status decode(ByteReader&);
//     std::string describe() const;
//   };
//   using UmLocationUpdateRequest =
//       ProtoMessage<LocationUpdateInfo, 0x0103, "Um_Location_Update_Request">;
//
// The payload is a public base so its fields read as direct members of the
// message.  Distinct aliases of the same payload are distinct C++ types,
// which keeps e.g. Um_Alerting and A_Alerting separate in flows and traces.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>

#include "sim/message.hpp"

namespace vgprs {

/// Compile-time string usable as a non-type template parameter.
template <std::size_t N>
struct FixedString {
  char data[N]{};

  consteval FixedString(const char (&str)[N]) {  // NOLINT(google-explicit-constructor)
    std::copy_n(str, N, data);
  }

  [[nodiscard]] constexpr std::string_view view() const {
    return std::string_view(data, N - 1);
  }
};

/// Payload for messages that carry no parameters.
struct EmptyPayload {
  void encode(ByteWriter&) const {}
  Status decode(ByteReader&) { return Status::ok_status(); }
  [[nodiscard]] std::string describe() const { return {}; }
};

template <typename Payload, std::uint16_t WireType, FixedString Name>
class ProtoMessage final : public Message, public Payload {
 public:
  static constexpr std::uint16_t kWireType = WireType;
  static constexpr std::string_view kName = Name.view();
  using payload_type = Payload;

  ProtoMessage() = default;
  explicit ProtoMessage(Payload payload) : Payload(std::move(payload)) {}

  // Message::encode() (full wire form) wins over the payload's
  // field-level encode(ByteWriter&), which stays reachable as
  // Payload::encode.
  using Message::encode;

  [[nodiscard]] std::uint16_t wire_type() const override { return kWireType; }
  [[nodiscard]] std::string_view name() const override { return kName; }
  [[nodiscard]] std::unique_ptr<Message> clone() const override {
    return std::make_unique<ProtoMessage>(*this);
  }

  void encode_payload(ByteWriter& w) const override { Payload::encode(w); }
  Status decode_payload(ByteReader& r) override { return Payload::decode(r); }

  [[nodiscard]] std::string summary() const override {
    std::string desc = Payload::describe();
    std::string out(kName);
    if (!desc.empty()) {
      out += " ";
      out += desc;
    }
    return out;
  }
};

}  // namespace vgprs
