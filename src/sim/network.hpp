// Network: the discrete-event simulator core.  Owns the nodes, the links
// (with latency / jitter / loss), the event queue, the trace recorder and
// the deterministic RNG.  All simulated communication flows through
// Network::send so every delivery is traced and, by default, round-tripped
// through the wire codecs.
//
// Hot-path design (see DESIGN.md "Simulator internals"):
//  * the event queue is a move-friendly 4-ary heap over small event
//    records — no Event copy on pop;
//  * timers are cancelled by generation check against a slot table, so a
//    cancel after the timer fired (or a double cancel) is a cheap no-op
//    instead of an entry in an ever-growing set;
//  * the wire round-trip encodes into a reusable scratch ByteWriter and
//    decodes from a span view of it — zero steady-state allocations;
//  * topology is per-node adjacency lists, so link lookup is O(degree)
//    with no hashing and neighbor enumeration is O(degree), not O(E);
//  * link labels are interned into a per-Network table, so LinkProfile is
//    trivially copyable and profile churn never allocates.
//
// Sharded execution (see DESIGN.md "Sharded engine"): set_shards()
// partitions the topology along its seams; each shard owns a private event
// heap, timer table, RNG, scratch buffer and observability buffers, and
// set_workers(N) runs the shards on N threads under adaptive conservative
// time windows bounded by the active shards' cross-shard link latencies.
// Execution is deterministic and thread-count-invariant: a fixed seed
// yields byte-identical traces, metrics and spans for 1, 2 or N workers.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/btrace.hpp"
#include "sim/dispatch_key.hpp"
#include "sim/event_heap.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "sim/span.hpp"
#include "sim/trace.hpp"

namespace vgprs {

class FaultInjector;
struct FaultSchedule;

/// Propagation + transmission characteristics of one link.  Latencies are
/// one-way; jitter adds uniform [0, jitter) to each traversal; loss drops
/// the message entirely (the sender's procedure timer must recover).
/// The label views into the owning Network's intern table (connect() and
/// set_link_profile() intern whatever label they are handed), so copying a
/// profile never copies a string.
struct LinkProfile {
  SimDuration latency = SimDuration::millis(1);
  SimDuration jitter = SimDuration::zero();
  double loss_probability = 0.0;
  std::string_view label;  // e.g. "Um", "Abis", "A", "Gb", "Gn", "intl-trunk"
};

/// Cumulative counters for one run (summed across shards).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t timers_fired = 0;
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  /// Constructs a node in the network's node arena (contiguous slabs — a
  /// million-node cell population is chunked storage, not a million heap
  /// objects) and attaches it.  Nodes live until the Network is destroyed.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    static_assert(std::is_base_of_v<Node, T>);
    void* mem = node_arena_.allocate(sizeof(T), alignof(T));
    T* node = ::new (mem) T(std::forward<Args>(args)...);
    try {
      attach_node(node);
    } catch (...) {
      node->~T();  // arena block is reclaimed with the network
      throw;
    }
    return *node;
  }

  /// Creates a bidirectional link between two nodes (replaces the profile
  /// if the pair is already linked).
  void connect(NodeId a, NodeId b, LinkProfile profile);
  void connect(const Node& a, const Node& b, LinkProfile profile) {
    connect(a.id(), b.id(), profile);
  }

  [[nodiscard]] bool linked(NodeId a, NodeId b) const;
  /// All nodes directly linked to `id` (used e.g. for paging broadcast).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;
  [[nodiscard]] const LinkProfile* link_between(NodeId a, NodeId b) const;
  /// Replaces the profile of an existing link (for sweeps).
  void set_link_profile(NodeId a, NodeId b, LinkProfile profile);

  [[nodiscard]] Node* node(NodeId id) const;
  [[nodiscard]] Node* node_by_name(std::string_view name) const;

  template <typename T>
  [[nodiscard]] T* find(std::string_view name) const {
    return dynamic_cast<T*>(node_by_name(name));
  }

  /// Registers an IP address as reachable at `node` (models the flat IP
  /// cloud of the external H.323 network / Gi interface).
  void register_ip(IpAddress ip, NodeId node);
  void unregister_ip(IpAddress ip);
  [[nodiscard]] NodeId ip_owner(IpAddress ip) const;

  // --- sharding -----------------------------------------------------------

  /// Partitions the topology into `groups.size()` shards: every node listed
  /// in groups[i] belongs to shard i, every unlisted node to shard 0 (the
  /// "core" shard).  Must be called on a pristine network — topology built,
  /// nothing run, no timers armed, no fault injector installed (install
  /// faults *after* sharding so transitions land on the right shards).
  /// Throws std::logic_error / std::invalid_argument on violations.
  ///
  /// With more than one shard, run_until_idle()/run_until() switch to the
  /// conservative windowed engine; each shard's lookahead is the minimum
  /// latency of its own cross-shard links, and windows extend adaptively to
  /// the earliest time any *active* shard could violate (see advance() in
  /// run_windowed).  Every cross-shard link must have positive latency —
  /// validated at run time, since sweeps may retune profiles between runs.
  void set_shards(const std::vector<std::vector<NodeId>>& groups);

  /// Worker threads for the sharded engine (0 = hardware concurrency,
  /// at least 1).  Capped at the shard count; 1 runs the identical windowed
  /// algorithm inline, which is what makes thread-count invariance hold by
  /// construction.  Ignored while only one shard exists.
  void set_workers(unsigned workers);
  [[nodiscard]] unsigned workers() const { return workers_; }

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const {
    assert(id.valid() && id.value() <= node_shard_.size());
    return node_shard_[id.value() - 1];
  }

  // --- messaging ----------------------------------------------------------

  /// Sends `msg` from `from` to `to` over their link.  Asserts the link
  /// exists.  The message is serialized and re-decoded unless
  /// set_serialize_links(false) was called.  `extra_delay` models local
  /// processing at the sender (e.g. vocoder transcoding) on top of the
  /// link's propagation characteristics.
  void send(NodeId from, NodeId to, MessagePtr msg,
            SimDuration extra_delay = SimDuration::zero());

  /// If true (default) every link traversal round-trips through the wire
  /// codec.  A codec failure throws: it is a bug, not a simulated fault.
  /// (Exception: a FaultInjector corruption that the codec rejects models a
  /// checksum failure — the frame is silently discarded, not a bug.)
  void set_serialize_links(bool on) { serialize_links_ = on; }

  // --- fault injection ----------------------------------------------------

  /// Installs a FaultInjector driven by `schedule` (see sim/fault.hpp).
  /// Call after the topology is built (and after set_shards(), if any) —
  /// the schedule's node names are resolved immediately and its crash/
  /// restart/link transitions are queued as engine events on the shard of
  /// the affected node.  At most one injector per network.  With none
  /// installed the hot path pays one null-pointer test per send/dispatch.
  FaultInjector& install_faults(FaultSchedule schedule);
  [[nodiscard]] FaultInjector* faults() const { return fault_; }

  TimerId set_timer(NodeId target, SimDuration delay, std::uint64_t cookie);
  void cancel_timer(TimerId id);

  // --- execution ----------------------------------------------------------

  [[nodiscard]] SimTime now() const { return cur().now; }

  /// Runs events until the queue drains or `limit` is reached.  Returns the
  /// number of events processed.
  std::size_t run_until_idle(SimTime limit = SimTime::from_micros(
                                 std::int64_t{1} << 50));
  /// Runs events with timestamps <= deadline (advances now() to deadline).
  std::size_t run_until(SimTime deadline);
  std::size_t run_for(SimDuration d) { return run_until(now() + d); }

  [[nodiscard]] bool idle() const;

  // --- observability ------------------------------------------------------

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] Rng& rng() { return cur().rng; }

  /// Procedure spans (disabled by default; see SpanTracker).  Node
  /// instrumentation opens/closes these; dispatch() attributes hop counts.
  /// During a sharded run the tracker defers mutations through per-shard
  /// op buffers; they are replayed in deterministic order at the merge.
  [[nodiscard]] SpanTracker& spans() { return spans_; }
  [[nodiscard]] const SpanTracker& spans() const { return spans_; }

  /// Named instruments (see MetricsRegistry).  The NetworkStats scalars
  /// stay raw increments on the hot path; metrics_snapshot() folds them
  /// into the registry under "net/..." names before digesting.  During a
  /// sharded run this returns the dispatching shard's private registry
  /// (folded into the global one at the merge); outside it, the global.
  [[nodiscard]] MetricsRegistry& metrics();
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsSnapshot metrics_snapshot();

  // --- binary capture (vgprs.btrace.v1; see sim/btrace.hpp) ---------------

  /// Turns on packed binary capture: every delivery is appended to the
  /// dispatching shard's ring buffer as a kTrace record (DispatchKey +
  /// endpoints + wire image — no strings, no summary formatting), span
  /// operations are logged in global order, and fault annotations become
  /// kFault records.  Independent of TraceRecorder/SpanTracker enablement;
  /// intended to stay on where full tracing is too expensive.
  void enable_capture(const CaptureConfig& cfg = {});
  void disable_capture();
  [[nodiscard]] bool capture_enabled() const { return capture_on_; }

  /// Serializes everything captured since enable_capture() (or the last
  /// segment write) as one run segment — node/message tables, per-shard
  /// record streams, the span op log, final metric deltas from `snapshot`,
  /// and a run summary — then clears the capture buffers.  Write the
  /// one-per-file header first (write_btrace_file_info).
  void write_capture_segment(std::ostream& out, std::string_view system,
                             std::uint64_t events,
                             const MetricsSnapshot& snapshot);

  /// Split variant: one output stream per shard (outs.size() must equal
  /// num_shards()).  Stream i receives shard i's record stream; stream 0 is
  /// the primary and additionally carries the span/metric/run-summary
  /// records.  Decode the resulting files with decode_capture_files.
  void write_capture_segment_files(std::span<std::ostream* const> outs,
                                   std::string_view system,
                                   std::uint64_t events,
                                   const MetricsSnapshot& snapshot);

  /// FaultInjector bookkeeping hook: records a fault annotation into the
  /// trace (buffered per shard during a sharded run).
  void record_fault(SimTime at, const std::string& from,
                    const std::string& to, std::string what,
                    std::string detail);
  /// Index of the shard whose dispatch is executing on this thread
  /// (0 outside a sharded run) — per-shard fault counters key off this.
  [[nodiscard]] std::uint32_t current_shard() const { return cur().index; }

 private:
  /// Sentinel timer_slot value marking a fault-schedule transition event
  /// (crash/restart/link-down/link-up); these ride the event queue like
  /// timers but are owned by the engine, not a timer slot.
  static constexpr std::uint32_t kFaultSlot = 0xFFFFFFFFu;

  /// One queued occurrence: a delivery (msg != nullptr), a timer firing, or
  /// a fault transition (timer_slot == kFaultSlot).  Kept small and
  /// move-only-cheap; the heap moves these on every sift.
  struct Event {
    SimTime at;
    SimTime sent_at;        // shard-local now of the originating dispatch
    std::uint64_t seq = 0;  // (origin shard << kShardSeqBits) | shard seq
    MessagePtr msg;         // null => timer / fault event
    std::uint64_t timer_cookie = 0;
    NodeId from;                  // deliveries only
    NodeId to;                    // delivery target / timer target
    std::uint32_t timer_slot = 0;
    std::uint32_t timer_gen = 0;
  };
  /// The engine's total execution order; see dispatch_key.hpp for why this
  /// exactly reproduces the sequential engine's (at, global seq) order.
  struct EventBefore {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at < b.at;
      if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
      return a.seq < b.seq;
    }
  };

  /// Timer identity for O(1) cancellation without tombstones: a TimerId
  /// packs (shard, slot index, generation).  Arming bumps the slot's
  /// generation; firing and cancelling disarm it.  A stale cancel (after
  /// fire, or a second cancel, possibly after the slot was reused) fails
  /// the generation/armed check and is a no-op.
  struct TimerSlot {
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;  // free-list link (index + 1); 0 = end
    bool armed = false;
  };

  /// Node-name lookup without materializing a std::string per call.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Adjacency {
    NodeId peer;
    std::uint32_t link = 0;  // index into link_profiles_
  };

  struct BufferedTrace {
    DispatchKey key;
    TraceEntry entry;
  };

  /// Everything one worker thread touches while executing its shard: event
  /// heap, timer table, sequence counter, clock, RNG, wire scratch, raw
  /// stats, a private metrics registry, trace/span buffers keyed for the
  /// deterministic merge, and one outbox per destination shard.  A
  /// single-shard Network (the default) runs entirely on shards_[0] with
  /// no buffering — the classic sequential engine.
  struct Shard {
    QuadHeap<Event, EventBefore> queue;
    std::vector<TimerSlot> timer_slots;
    std::uint32_t timer_free_head = 0;  // index + 1; 0 = none
    std::uint64_t next_seq = 1;
    std::uint32_t index = 0;
    SimTime now;
    SimTime next_at;       // earliest queued event, recomputed per window
    DispatchKey cur_key;   // key of the event being dispatched (buffered)
    ByteWriter scratch;    // reusable wire buffer for serialize_links_
    Rng rng;
    NetworkStats stats;
    MetricsRegistry metrics;
    std::vector<BufferedTrace> trace_buf;
    std::vector<SpanTracker::Op> span_ops;
    BtraceShardBuffer capture;  // packed binary record ring (btrace.hpp)
    std::vector<std::vector<Event>> outbox;  // index = destination shard
    std::size_t processed = 0;  // events dispatched in the current run

    explicit Shard(std::uint64_t seed) : rng(seed) {}
  };

  /// Worker-thread execution context; owner-tagged so nested Networks
  /// (ParallelSweep cells built inside a sharded run would be the only
  /// way) fall back to their own shard 0.
  struct TlCtx {
    const Network* net = nullptr;
    Shard* shard = nullptr;
  };
  static thread_local TlCtx tl_ctx_;

  [[nodiscard]] Shard& cur() const {
    return tl_ctx_.net == this ? *tl_ctx_.shard : *shards_.front();
  }
  [[nodiscard]] bool in_sharded_dispatch() const {
    return tl_ctx_.net == this;
  }

  /// Registers a constructed node (assigns id, indexes the name, runs
  /// on_attached).  Storage is owned by node_arena_.
  NodeId attach_node(Node* node);

  void dispatch(Event ev, Shard& sh, bool buffered);
  [[nodiscard]] const Adjacency* find_link(NodeId a, NodeId b) const;
  [[nodiscard]] std::string_view intern_label(std::string_view label);
  void release_timer_slot(Shard& sh, std::uint32_t slot);
  [[nodiscard]] std::uint64_t alloc_seq(Shard& origin) {
    return (std::uint64_t{origin.index} << kShardSeqBits) | origin.next_seq++;
  }
  /// Queues a fault-schedule transition on the shard of the affected node
  /// (install_faults calls this in schedule order).
  void push_fault_event(SimTime at, std::uint64_t cookie, NodeId target);
  /// Routes a ready Event to its destination shard: the origin's own heap,
  /// the origin's outbox (mid-window cross-shard send), or the destination
  /// heap directly (single-threaded stimulus between runs).
  void route_event(Shard& origin, bool buffered, Event ev);
  void record_trace(Shard& sh, bool buffered, TraceEntry entry);
  /// Recomputes shard_la_us_: per shard, the minimum latency over its
  /// cross-shard links (a huge sentinel when it has none — an island shard
  /// never constrains the window).  Throws if any cross-shard link has
  /// non-positive latency.
  void compute_shard_lookaheads();
  std::size_t run_sequential(SimTime limit);
  std::size_t run_windowed(SimTime limit);
  /// Executes every event with at < t_end on `sh` (worker context).
  void process_window(Shard& sh, SimTime t_end);
  /// Moves inbound mailbox events into sh's heap; recomputes sh.next_at.
  void drain_inboxes(Shard& sh);
  /// Merges per-shard trace/span/metrics buffers into the global
  /// recorder/tracker/registry in DispatchKey order.
  void merge_shard_buffers();

  /// Bump storage for node objects: 256 KiB slabs, nodes placement-new'd in
  /// attach order, destroyed (virtually, in reverse order) by ~Network.
  /// Splitting node storage from the dispatch index keeps the index a flat
  /// pointer array and the objects themselves densely packed.
  struct NodeArena {
    void* allocate(std::size_t size, std::size_t align);
    std::vector<std::unique_ptr<std::byte[]>> chunks;
    std::byte* cur = nullptr;
    std::byte* end = nullptr;
  };

  NodeArena node_arena_;
  std::vector<Node*> nodes_;  // index = id - 1; storage in node_arena_
  std::unordered_map<std::string, NodeId, StringHash, std::equal_to<>>
      by_name_;
  std::deque<LinkProfile> link_profiles_;     // stable storage
  std::deque<std::string> label_table_;       // interned link labels
  std::vector<std::vector<Adjacency>> adjacency_;  // index = id - 1
  std::unordered_map<IpAddress, NodeId> ip_owners_;

  std::vector<std::unique_ptr<Shard>> shards_;  // stable addresses
  std::vector<std::uint32_t> node_shard_;       // index = id - 1
  std::vector<std::int64_t> shard_la_us_;       // per-shard lookahead, µs
  unsigned workers_ = 1;
  std::uint64_t seed_;

  bool serialize_links_ = true;
  FaultInjector* fault_ = nullptr;  // owned via nodes_; null = no faults
  TraceRecorder trace_;
  SpanTracker spans_;
  MetricsRegistry metrics_;
  bool capture_on_ = false;
  CaptureConfig capture_cfg_;
  SpanCaptureLog capture_spans_;

  /// Shared segment assembly for the single-file and split writers.
  void write_capture_segment_impl(std::span<std::ostream* const> outs,
                                  std::string_view system,
                                  std::uint64_t events,
                                  const MetricsSnapshot& snapshot);
};

}  // namespace vgprs
