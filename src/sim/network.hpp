// Network: the discrete-event simulator core.  Owns the nodes, the links
// (with latency / jitter / loss), the event queue, the trace recorder and
// the deterministic RNG.  All simulated communication flows through
// Network::send so every delivery is traced and, by default, round-tripped
// through the wire codecs.
//
// Hot-path design (see DESIGN.md "Simulator internals"):
//  * the event queue is a move-friendly 4-ary heap over small event
//    records — no Event copy on pop;
//  * timers are cancelled by generation check against a slot table, so a
//    cancel after the timer fired (or a double cancel) is a cheap no-op
//    instead of an entry in an ever-growing set;
//  * the wire round-trip encodes into a reusable scratch ByteWriter and
//    decodes from a span view of it — zero steady-state allocations;
//  * topology is per-node adjacency lists, so link lookup is O(degree)
//    with no hashing and neighbor enumeration is O(degree), not O(E);
//  * link labels are interned into a per-Network table, so LinkProfile is
//    trivially copyable and profile churn never allocates.
//
// Sharded execution (see DESIGN.md "Sharded engine"): set_shards()
// partitions the topology along its seams; each shard owns a private event
// heap, timer table, RNG, scratch buffer and observability buffers, and
// set_workers(N) runs the shards on N threads under adaptive conservative
// time windows bounded by the active shards' cross-shard link latencies.
// Execution is deterministic and thread-count-invariant: a fixed seed
// yields byte-identical traces, metrics and spans for 1, 2 or N workers.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/btrace.hpp"
#include "sim/dispatch_key.hpp"
#include "sim/event_heap.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "sim/span.hpp"
#include "sim/trace.hpp"

namespace vgprs {

class FaultInjector;
struct FaultSchedule;

/// Propagation + transmission characteristics of one link.  Latencies are
/// one-way; jitter adds uniform [0, jitter) to each traversal; loss drops
/// the message entirely (the sender's procedure timer must recover).
/// The label views into the owning Network's intern table (connect() and
/// set_link_profile() intern whatever label they are handed), so copying a
/// profile never copies a string.
struct LinkProfile {
  SimDuration latency = SimDuration::millis(1);
  SimDuration jitter = SimDuration::zero();
  double loss_probability = 0.0;
  std::string_view label;  // e.g. "Um", "Abis", "A", "Gb", "Gn", "intl-trunk"
};

/// Cumulative counters for one run (summed across shards).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t timers_fired = 0;
};

/// Per-shard execution profile of the windowed engine, accumulated across
/// runs.  `windows`/`events`/`fused_windows` are deterministic (derived from
/// the window protocol, which is worker-count-invariant); the *_ns wall-clock
/// timers are only collected when enable_shard_stats(true) was called and are
/// inherently scheduling-dependent.  barrier_ns/idle_ns are measured per
/// worker and attributed evenly across the shards that worker owns.
struct ShardPerfStats {
  std::uint64_t windows = 0;        // windows in which >= 1 event dispatched
  std::uint64_t events = 0;         // events dispatched
  std::uint64_t fused_windows = 0;  // rendezvous skipped while provably idle
  std::uint64_t busy_ns = 0;        // dispatching events
  std::uint64_t drain_ns = 0;       // inbox drain + outbox commit
  std::uint64_t barrier_ns = 0;     // waiting at the window rendezvous
  std::uint64_t idle_ns = 0;        // parked (fused out of the rendezvous)
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  /// Constructs a node in the network's node arena (contiguous slabs — a
  /// million-node cell population is chunked storage, not a million heap
  /// objects) and attaches it.  Nodes live until the Network is destroyed.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    static_assert(std::is_base_of_v<Node, T>);
    void* mem = node_arena_.allocate(sizeof(T), alignof(T));
    T* node = ::new (mem) T(std::forward<Args>(args)...);
    try {
      attach_node(node);
    } catch (...) {
      node->~T();  // arena block is reclaimed with the network
      throw;
    }
    return *node;
  }

  /// Creates a bidirectional link between two nodes (replaces the profile
  /// if the pair is already linked).
  void connect(NodeId a, NodeId b, LinkProfile profile);
  void connect(const Node& a, const Node& b, LinkProfile profile) {
    connect(a.id(), b.id(), profile);
  }

  [[nodiscard]] bool linked(NodeId a, NodeId b) const;
  /// All nodes directly linked to `id` (used e.g. for paging broadcast).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;
  [[nodiscard]] const LinkProfile* link_between(NodeId a, NodeId b) const;
  /// Replaces the profile of an existing link (for sweeps).
  void set_link_profile(NodeId a, NodeId b, LinkProfile profile);

  [[nodiscard]] Node* node(NodeId id) const;
  [[nodiscard]] Node* node_by_name(std::string_view name) const;

  template <typename T>
  [[nodiscard]] T* find(std::string_view name) const {
    return dynamic_cast<T*>(node_by_name(name));
  }

  /// Registers an IP address as reachable at `node` (models the flat IP
  /// cloud of the external H.323 network / Gi interface).
  void register_ip(IpAddress ip, NodeId node);
  void unregister_ip(IpAddress ip);
  [[nodiscard]] NodeId ip_owner(IpAddress ip) const;

  // --- sharding -----------------------------------------------------------

  /// Partitions the topology into `groups.size()` shards: every node listed
  /// in groups[i] belongs to shard i, every unlisted node to shard 0 (the
  /// "core" shard).  Must be called on a pristine network — topology built,
  /// nothing run, no timers armed, no fault injector installed (install
  /// faults *after* sharding so transitions land on the right shards).
  /// Throws std::logic_error / std::invalid_argument on violations.
  ///
  /// With more than one shard, run_until_idle()/run_until() switch to the
  /// conservative windowed engine; each shard's lookahead is the minimum
  /// latency of its own cross-shard links, and windows extend adaptively to
  /// the earliest time any *active* shard could violate (see advance() in
  /// run_windowed).  Every cross-shard link must have positive latency —
  /// validated at run time, since sweeps may retune profiles between runs.
  void set_shards(const std::vector<std::vector<NodeId>>& groups);

  /// Topology-aware partition planner.  Removes the `core` nodes (defaults
  /// to the single highest-degree node — ties break toward the lowest id),
  /// finds the connected components of what remains (the BSC/BTS/MS
  /// subtrees, the packet core, the H.323 cloud...), and packs them into at
  /// most `target_shards - 1` groups of roughly equal estimated event rate
  /// (node degree is the rate proxy: every link is a traffic source).  A
  /// component heavier than 1.5x the mean is split by distributing its leaf
  /// nodes round-robin, so one hot cell stops serializing every window.
  /// Groups are ordered by their smallest node id, which keeps shard-packed
  /// sequence numbers aligned with node-creation order — the property that
  /// makes sharded traces reproduce the sequential engine's tie-breaks.
  /// Purely a function of the topology: deterministic, never draws RNG.
  /// Returns a plan for set_shards(); groups[0] is empty (the core is the
  /// implicit shard 0).
  [[nodiscard]] std::vector<std::vector<NodeId>> plan_shards(
      std::size_t target_shards, std::span<const NodeId> core = {}) const;

  /// Worker threads for the sharded engine (0 = hardware concurrency,
  /// at least 1).  Capped at the shard count; 1 runs the identical windowed
  /// algorithm inline, which is what makes thread-count invariance hold by
  /// construction.  Ignored while only one shard exists.
  void set_workers(unsigned workers);
  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Turns on wall-clock shard profiling (busy/drain/barrier/idle timers in
  /// shard_perf(), and "shard/<i>/..." instruments folded into the metrics
  /// registry at every sharded-run merge).  Off by default: the timers cost
  /// clock reads per window, and wall-clock values are not worker-count
  /// invariant, so they must never leak into determinism-checked snapshots.
  void enable_shard_stats(bool on) { shard_stats_ = on; }
  [[nodiscard]] bool shard_stats_enabled() const { return shard_stats_; }
  /// Per-shard window-protocol profile (see ShardPerfStats).
  [[nodiscard]] std::vector<ShardPerfStats> shard_perf() const;
  /// Cumulative cross-shard links visited by compute_shard_lookaheads —
  /// observability for the seam cache: after the first windowed run, a
  /// topology-untouched rerun adds zero, and a retune adds only the links
  /// of the dirtied shards.
  [[nodiscard]] std::uint64_t seam_links_scanned() const {
    return seam_links_scanned_;
  }

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const {
    assert(id.valid() && id.value() <= node_shard_.size());
    return node_shard_[id.value() - 1];
  }

  // --- messaging ----------------------------------------------------------

  /// Sends `msg` from `from` to `to` over their link.  Asserts the link
  /// exists.  The message is serialized and re-decoded unless
  /// set_serialize_links(false) was called.  `extra_delay` models local
  /// processing at the sender (e.g. vocoder transcoding) on top of the
  /// link's propagation characteristics.
  void send(NodeId from, NodeId to, MessagePtr msg,
            SimDuration extra_delay = SimDuration::zero());

  /// If true (default) every link traversal round-trips through the wire
  /// codec.  A codec failure throws: it is a bug, not a simulated fault.
  /// (Exception: a FaultInjector corruption that the codec rejects models a
  /// checksum failure — the frame is silently discarded, not a bug.)
  void set_serialize_links(bool on) { serialize_links_ = on; }

  // --- fault injection ----------------------------------------------------

  /// Installs a FaultInjector driven by `schedule` (see sim/fault.hpp).
  /// Call after the topology is built (and after set_shards(), if any) —
  /// the schedule's node names are resolved immediately and its crash/
  /// restart/link transitions are queued as engine events on the shard of
  /// the affected node.  At most one injector per network.  With none
  /// installed the hot path pays one null-pointer test per send/dispatch.
  FaultInjector& install_faults(FaultSchedule schedule);
  [[nodiscard]] FaultInjector* faults() const { return fault_; }

  TimerId set_timer(NodeId target, SimDuration delay, std::uint64_t cookie);
  void cancel_timer(TimerId id);

  // --- execution ----------------------------------------------------------

  [[nodiscard]] SimTime now() const { return cur().now; }

  /// Runs events until the queue drains or `limit` is reached.  Returns the
  /// number of events processed.
  std::size_t run_until_idle(SimTime limit = SimTime::from_micros(
                                 std::int64_t{1} << 50));
  /// Runs events with timestamps <= deadline (advances now() to deadline).
  std::size_t run_until(SimTime deadline);
  std::size_t run_for(SimDuration d) { return run_until(now() + d); }

  [[nodiscard]] bool idle() const;

  // --- observability ------------------------------------------------------

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] Rng& rng() { return cur().rng; }

  /// Procedure spans (disabled by default; see SpanTracker).  Node
  /// instrumentation opens/closes these; dispatch() attributes hop counts.
  /// During a sharded run the tracker defers mutations through per-shard
  /// op buffers; they are replayed in deterministic order at the merge.
  [[nodiscard]] SpanTracker& spans() { return spans_; }
  [[nodiscard]] const SpanTracker& spans() const { return spans_; }

  /// Named instruments (see MetricsRegistry).  The NetworkStats scalars
  /// stay raw increments on the hot path; metrics_snapshot() folds them
  /// into the registry under "net/..." names before digesting.  During a
  /// sharded run this returns the dispatching shard's private registry
  /// (folded into the global one at the merge); outside it, the global.
  [[nodiscard]] MetricsRegistry& metrics();
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsSnapshot metrics_snapshot();

  // --- binary capture (vgprs.btrace.v1; see sim/btrace.hpp) ---------------

  /// Turns on packed binary capture: every delivery is appended to the
  /// dispatching shard's ring buffer as a kTrace record (DispatchKey +
  /// endpoints + wire image — no strings, no summary formatting), span
  /// operations are logged in global order, and fault annotations become
  /// kFault records.  Independent of TraceRecorder/SpanTracker enablement;
  /// intended to stay on where full tracing is too expensive.
  void enable_capture(const CaptureConfig& cfg = {});
  void disable_capture();
  [[nodiscard]] bool capture_enabled() const { return capture_on_; }

  /// Serializes everything captured since enable_capture() (or the last
  /// segment write) as one run segment — node/message tables, per-shard
  /// record streams, the span op log, final metric deltas from `snapshot`,
  /// and a run summary — then clears the capture buffers.  Write the
  /// one-per-file header first (write_btrace_file_info).
  void write_capture_segment(std::ostream& out, std::string_view system,
                             std::uint64_t events,
                             const MetricsSnapshot& snapshot);

  /// Split variant: one output stream per shard (outs.size() must equal
  /// num_shards()).  Stream i receives shard i's record stream; stream 0 is
  /// the primary and additionally carries the span/metric/run-summary
  /// records.  Decode the resulting files with decode_capture_files.
  void write_capture_segment_files(std::span<std::ostream* const> outs,
                                   std::string_view system,
                                   std::uint64_t events,
                                   const MetricsSnapshot& snapshot);

  /// FaultInjector bookkeeping hook: records a fault annotation into the
  /// trace (buffered per shard during a sharded run).
  void record_fault(SimTime at, const std::string& from,
                    const std::string& to, std::string what,
                    std::string detail);
  /// Index of the shard whose dispatch is executing on this thread
  /// (0 outside a sharded run) — per-shard fault counters key off this.
  [[nodiscard]] std::uint32_t current_shard() const { return cur().index; }

 private:
  /// Sentinel timer_slot value marking a fault-schedule transition event
  /// (crash/restart/link-down/link-up); these ride the event queue like
  /// timers but are owned by the engine, not a timer slot.
  static constexpr std::uint32_t kFaultSlot = 0xFFFFFFFFu;

  /// One queued occurrence: a delivery (msg != nullptr), a timer firing, or
  /// a fault transition (timer_slot == kFaultSlot).  Kept small and
  /// move-only-cheap; the heap moves these on every sift.
  struct Event {
    SimTime at;
    SimTime sent_at;        // shard-local now of the originating dispatch
    std::uint64_t seq = 0;  // (origin shard << kShardSeqBits) | shard seq
    MessagePtr msg;         // null => timer / fault event
    std::uint64_t timer_cookie = 0;
    NodeId from;                  // deliveries only
    NodeId to;                    // delivery target / timer target
    std::uint32_t timer_slot = 0;
    std::uint32_t timer_gen = 0;
  };
  /// The engine's total execution order; see dispatch_key.hpp for why this
  /// exactly reproduces the sequential engine's (at, global seq) order.
  struct EventBefore {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at < b.at;
      if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
      return a.seq < b.seq;
    }
  };

  static constexpr std::int64_t kNeverUs =
      std::numeric_limits<std::int64_t>::max();

  /// Wait-free SPSC mailbox for one (source shard, destination shard) pair.
  /// The producer (the worker owning the source shard) appends events to a
  /// chain of fixed-size chunks during its window and publishes them with
  /// ONE release-store per window — a sequence-stamped bulk commit carrying
  /// the batch's minimum timestamp and the window index it was made in.
  /// The consumer (the worker owning the destination shard) drains committed
  /// events into its heap at window start; the window protocol guarantees a
  /// commit made in window n is visible at the start of window n+1, so the
  /// advance can tell exactly which commits are still undrained from the
  /// destination's last-drain window alone — no consumer->producer counter
  /// traffic on the hot path.  Producer and consumer halves live on separate
  /// cache lines; the whole ring is line-aligned so adjacent (src,dst) pairs
  /// never share a line.
  struct alignas(64) OutboxRing {
    static constexpr std::size_t kChunkEvents = 64;
    struct Chunk {
      std::array<Event, kChunkEvents> ev;
      std::atomic<Chunk*> next{nullptr};
    };
    /// One bulk commit: everything the producer staged during one window.
    struct Commit {
      std::uint64_t upto;      // cumulative event count after this commit
      std::int64_t min_at_us;  // min Event::at over the batch, microseconds
    };

    // --- producer half ---
    Chunk* tail_chunk = nullptr;
    std::uint64_t appended = 0;          // events staged (incl. uncommitted)
    std::int64_t staged_min_us = kNeverUs;
    std::uint64_t committed_local = 0;   // producer's copy of `committed`
    std::vector<Commit> commits;         // producer-written; advance-read
    std::atomic<Chunk*> first{nullptr};
    std::atomic<std::uint64_t> committed{0};

    // Exhausted chunks recycle through a tiny Treiber stack instead of the
    // heap, so steady state is allocation-free.  ABA-safe without tagging:
    // only the consumer pushes and only the producer pops, so a head the
    // popper saw can never be re-pushed behind its back.
    alignas(64) std::atomic<Chunk*> free_chunks{nullptr};

    // --- consumer half ---
    alignas(64) Chunk* head_chunk = nullptr;
    std::size_t head_off = 0;
    // Cumulative events drained.  Atomic because the producer reads it
    // (relaxed, for commit-log compaction) while the consumer may be
    // storing; a stale read just keeps a record one window longer.
    std::atomic<std::uint64_t> drained{0};

    OutboxRing() = default;
    OutboxRing(const OutboxRing&) = delete;
    OutboxRing& operator=(const OutboxRing&) = delete;
    ~OutboxRing() {
      auto free_chain = [](Chunk* c) {
        while (c != nullptr) {
          Chunk* n = c->next.load(std::memory_order_relaxed);
          delete c;
          c = n;
        }
      };
      free_chain(head_chunk != nullptr ? head_chunk
                                       : first.load(std::memory_order_relaxed));
      free_chain(free_chunks.load(std::memory_order_relaxed));
    }

    Chunk* alloc_chunk() {
      Chunk* c = free_chunks.load(std::memory_order_acquire);
      while (c != nullptr &&
             !free_chunks.compare_exchange_weak(
                 c, c->next.load(std::memory_order_relaxed),
                 std::memory_order_acquire, std::memory_order_acquire)) {
      }
      if (c != nullptr) {
        c->next.store(nullptr, std::memory_order_relaxed);
        return c;
      }
      return new Chunk;
    }

    void recycle_chunk(Chunk* c) {
      Chunk* h = free_chunks.load(std::memory_order_relaxed);
      do {
        c->next.store(h, std::memory_order_relaxed);
      } while (!free_chunks.compare_exchange_weak(
          h, c, std::memory_order_release, std::memory_order_relaxed));
    }

    void push(Event ev) {
      const auto off = static_cast<std::size_t>(appended % kChunkEvents);
      if (off == 0) {
        Chunk* c = alloc_chunk();
        // The plain next/first stores are published by the release-store of
        // `committed` in commit(); the consumer never chases a chunk link
        // beyond what a committed count it acquired covers.
        if (tail_chunk == nullptr) {
          first.store(c, std::memory_order_relaxed);
        } else {
          tail_chunk->next.store(c, std::memory_order_relaxed);
        }
        tail_chunk = c;
      }
      staged_min_us = std::min(staged_min_us, ev.at.count_micros());
      tail_chunk->ev[off] = std::move(ev);
      ++appended;
    }

    [[nodiscard]] bool has_staged() const { return appended != committed_local; }

    /// Bulk commit of the window's staged batch.  Compacts records whose
    /// events the consumer has already drained (upto <= drained), keeping
    /// the commit log O(windows the consumer has been parked), not O(run
    /// length).  A concurrent drain only makes the compaction conservative.
    void commit() {
      if (appended == committed_local) return;
      const std::uint64_t d = drained.load(std::memory_order_relaxed);
      if (!commits.empty() && commits.front().upto <= d) {
        std::size_t k = 0;
        while (k < commits.size() && commits[k].upto <= d) ++k;
        commits.erase(commits.begin(),
                      commits.begin() + static_cast<std::ptrdiff_t>(k));
      }
      commits.push_back({appended, staged_min_us});
      staged_min_us = kNeverUs;
      committed_local = appended;
      committed.store(appended, std::memory_order_release);
    }

    /// Earliest timestamp across committed-but-undrained events.  Exact at
    /// barrier quiescence: the consumer always drains to a commit boundary,
    /// so `upto > drained` identifies exactly the unconsumed records.
    [[nodiscard]] std::int64_t undrained_min_us() const {
      const std::uint64_t d = drained.load(std::memory_order_relaxed);
      std::int64_t m = kNeverUs;
      for (const Commit& c : commits) {
        if (c.upto > d) m = std::min(m, c.min_at_us);
      }
      return m;
    }

    /// Consumer side: moves every committed event into `heap` (one
    /// push_bulk per contiguous chunk run) and frees exhausted chunks.
    void drain_into(QuadHeap<Event, EventBefore>& heap) {
      const std::uint64_t n = committed.load(std::memory_order_acquire);
      std::uint64_t got = drained.load(std::memory_order_relaxed);
      if (got == n) return;
      while (got < n) {
        if (head_chunk == nullptr) {
          head_chunk = first.load(std::memory_order_relaxed);
          head_off = 0;
        }
        if (head_off == kChunkEvents) {
          Chunk* next = head_chunk->next.load(std::memory_order_relaxed);
          recycle_chunk(head_chunk);
          head_chunk = next;
          head_off = 0;
        }
        const auto run = static_cast<std::size_t>(std::min<std::uint64_t>(
            n - got, kChunkEvents - head_off));
        Event* base = head_chunk->ev.data() + head_off;
        heap.push_bulk(base, base + run);
        head_off += run;
        got += run;
      }
      drained.store(got, std::memory_order_relaxed);
    }

    /// Only meaningful outside a run (both sides quiescent).
    [[nodiscard]] bool empty_quiescent() const {
      return committed.load(std::memory_order_relaxed) ==
             drained.load(std::memory_order_relaxed);
    }
  };

  /// Timer identity for O(1) cancellation without tombstones: a TimerId
  /// packs (shard, slot index, generation).  Arming bumps the slot's
  /// generation; firing and cancelling disarm it.  A stale cancel (after
  /// fire, or a second cancel, possibly after the slot was reused) fails
  /// the generation/armed check and is a no-op.
  struct TimerSlot {
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;  // free-list link (index + 1); 0 = end
    bool armed = false;
  };

  /// Node-name lookup without materializing a std::string per call.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Adjacency {
    NodeId peer;
    std::uint32_t link = 0;  // index into link_profiles_
  };

  struct BufferedTrace {
    DispatchKey key;
    TraceEntry entry;
  };

  /// Everything one worker thread touches while executing its shard: event
  /// heap, timer table, sequence counter, clock, RNG, wire scratch, raw
  /// stats, a private metrics registry, trace/span buffers keyed for the
  /// deterministic merge, and one SPSC outbox ring per destination shard.
  /// A single-shard Network (the default) runs entirely on shards_[0] with
  /// no buffering — the classic sequential engine.
  ///
  /// Layout: the whole struct is line-aligned and the dispatch-hot group
  /// (heap + clock + seq) is separated from the raw stats and from the
  /// window-protocol publication fields by alignas(64) boundaries, so the
  /// advance reading next_at never contends with the owner bumping stats,
  /// and two shards never share a line (each Shard is its own allocation).
  struct alignas(64) Shard {
    alignas(64) QuadHeap<Event, EventBefore> queue;
    std::vector<TimerSlot> timer_slots;
    std::uint32_t timer_free_head = 0;  // index + 1; 0 = none
    std::uint64_t next_seq = 1;
    std::uint32_t index = 0;
    SimTime now;
    DispatchKey cur_key;   // key of the event being dispatched (buffered)
    ByteWriter scratch;    // reusable wire buffer for serialize_links_
    Rng rng;
    alignas(64) NetworkStats stats;  // raw hot-path increments, own line
    MetricsRegistry metrics;
    std::vector<BufferedTrace> trace_buf;
    std::vector<SpanTracker::Op> span_ops;
    BtraceShardBuffer capture;  // packed binary record ring (btrace.hpp)
    std::unique_ptr<OutboxRing[]> outbox;  // index = destination shard
    std::vector<std::uint32_t> outbox_touched;  // dests staged this window
    ShardPerfStats perf;
    // Published for the window advance (written by the owning worker before
    // it arrives at the rendezvous, read only under the gate's ordering).
    alignas(64) SimTime next_at;  // earliest heap event after the window
    std::size_t processed = 0;    // events dispatched in the current run

    explicit Shard(std::uint64_t seed) : rng(seed) {}
  };

  /// Worker-thread execution context; owner-tagged so nested Networks
  /// (ParallelSweep cells built inside a sharded run would be the only
  /// way) fall back to their own shard 0.
  struct TlCtx {
    const Network* net = nullptr;
    Shard* shard = nullptr;
  };
  static thread_local TlCtx tl_ctx_;

  [[nodiscard]] Shard& cur() const {
    return tl_ctx_.net == this ? *tl_ctx_.shard : *shards_.front();
  }
  [[nodiscard]] bool in_sharded_dispatch() const {
    return tl_ctx_.net == this;
  }

  /// Registers a constructed node (assigns id, indexes the name, runs
  /// on_attached).  Storage is owned by node_arena_.
  NodeId attach_node(Node* node);

  void dispatch(Event ev, Shard& sh, bool buffered);
  [[nodiscard]] const Adjacency* find_link(NodeId a, NodeId b) const;
  [[nodiscard]] std::string_view intern_label(std::string_view label);
  void release_timer_slot(Shard& sh, std::uint32_t slot);
  [[nodiscard]] std::uint64_t alloc_seq(Shard& origin) {
    return (std::uint64_t{origin.index} << kShardSeqBits) | origin.next_seq++;
  }
  /// Queues a fault-schedule transition on the shard of the affected node
  /// (install_faults calls this in schedule order).
  void push_fault_event(SimTime at, std::uint64_t cookie, NodeId target);
  /// Routes a ready Event to its destination shard: the origin's own heap,
  /// the origin's outbox (mid-window cross-shard send), or the destination
  /// heap directly (single-threaded stimulus between runs).
  void route_event(Shard& origin, bool buffered, Event ev);
  void record_trace(Shard& sh, bool buffered, TraceEntry entry);
  /// Recomputes shard_la_us_: per shard, the minimum latency over its
  /// cross-shard links (a huge sentinel when it has none — an island shard
  /// never constrains the window).  Throws if any cross-shard link has
  /// non-positive latency.  The cross-shard link set is cached per shard on
  /// the first windowed run; connect()/set_link_profile() mark only the two
  /// affected shards dirty, so a sweep-style retune costs O(links of the
  /// changed shards) instead of a full O(E) adjacency rescan per run.
  void compute_shard_lookaheads();
  /// connect()/set_link_profile() hook keeping the seam cache coherent.
  void touch_seam_cache(NodeId a, NodeId b, std::uint32_t link, bool is_new);
  std::size_t run_sequential(SimTime limit);
  std::size_t run_windowed(SimTime limit);
  /// Executes every event with at < t_end on `sh` (worker context).
  void process_window(Shard& sh, SimTime t_end);
  /// Moves committed inbound ring events into sh's heap (window start);
  /// recomputes sh.next_at.
  void drain_inboxes(Shard& sh);
  /// Release-publishes this window's staged outbox events (window end),
  /// compacting commit records already drained by the consumer.
  static void commit_outboxes(Shard& sh);
  /// Merges per-shard trace/span/metrics buffers into the global
  /// recorder/tracker/registry in DispatchKey order.
  void merge_shard_buffers();

  /// Bump storage for node objects: 256 KiB slabs, nodes placement-new'd in
  /// attach order, destroyed (virtually, in reverse order) by ~Network.
  /// Splitting node storage from the dispatch index keeps the index a flat
  /// pointer array and the objects themselves densely packed.
  struct NodeArena {
    void* allocate(std::size_t size, std::size_t align);
    std::vector<std::unique_ptr<std::byte[]>> chunks;
    std::byte* cur = nullptr;
    std::byte* end = nullptr;
  };

  NodeArena node_arena_;
  std::vector<Node*> nodes_;  // index = id - 1; storage in node_arena_
  std::unordered_map<std::string, NodeId, StringHash, std::equal_to<>>
      by_name_;
  std::deque<LinkProfile> link_profiles_;     // stable storage
  std::deque<std::string> label_table_;       // interned link labels
  std::vector<std::vector<Adjacency>> adjacency_;  // index = id - 1
  std::unordered_map<IpAddress, NodeId> ip_owners_;

  std::vector<std::unique_ptr<Shard>> shards_;  // stable addresses
  std::vector<std::uint32_t> node_shard_;       // index = id - 1
  std::vector<std::int64_t> shard_la_us_;       // per-shard lookahead, µs
  /// Cached cross-shard ("seam") link set, per shard: built once on the
  /// first windowed run, then kept coherent by touch_seam_cache().  a/b are
  /// node indices (id - 1) for the validation error message.
  struct SeamLink {
    std::uint32_t link;
    std::uint32_t a, b;
  };
  std::vector<std::vector<SeamLink>> shard_seams_;
  std::vector<std::uint8_t> shard_la_dirty_;
  bool seam_cache_built_ = false;
  std::uint64_t seam_links_scanned_ = 0;
  unsigned workers_ = 1;
  bool shard_stats_ = false;
  std::uint64_t seed_;

  bool serialize_links_ = true;
  FaultInjector* fault_ = nullptr;  // owned via nodes_; null = no faults
  TraceRecorder trace_;
  SpanTracker spans_;
  MetricsRegistry metrics_;
  bool capture_on_ = false;
  CaptureConfig capture_cfg_;
  SpanCaptureLog capture_spans_;

  /// Shared segment assembly for the single-file and split writers.
  void write_capture_segment_impl(std::span<std::ostream* const> outs,
                                  std::string_view system,
                                  std::uint64_t events,
                                  const MetricsSnapshot& snapshot);
};

}  // namespace vgprs
