// Network: the discrete-event simulator core.  Owns the nodes, the links
// (with latency / jitter / loss), the event queue, the trace recorder and
// the deterministic RNG.  All simulated communication flows through
// Network::send so every delivery is traced and, by default, round-tripped
// through the wire codecs.
//
// Hot-path design (see DESIGN.md "Simulator internals"):
//  * the event queue is a move-friendly 4-ary heap over small event
//    records — no Event copy on pop;
//  * timers are cancelled by generation check against a slot table, so a
//    cancel after the timer fired (or a double cancel) is a cheap no-op
//    instead of an entry in an ever-growing set;
//  * the wire round-trip encodes into a reusable scratch ByteWriter and
//    decodes from a span view of it — zero steady-state allocations;
//  * topology is per-node adjacency lists, so link lookup is O(degree)
//    with no hashing and neighbor enumeration is O(degree), not O(E).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/event_heap.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "sim/span.hpp"
#include "sim/trace.hpp"

namespace vgprs {

class FaultInjector;
struct FaultSchedule;

/// Propagation + transmission characteristics of one link.  Latencies are
/// one-way; jitter adds uniform [0, jitter) to each traversal; loss drops
/// the message entirely (the sender's procedure timer must recover).
struct LinkProfile {
  SimDuration latency = SimDuration::millis(1);
  SimDuration jitter = SimDuration::zero();
  double loss_probability = 0.0;
  std::string label;  // e.g. "Um", "Abis", "A", "Gb", "Gn", "intl-trunk"
};

/// Cumulative counters for one run.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t timers_fired = 0;
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  /// Adds a node; the network takes ownership.  Returns its id.
  NodeId add_node(std::unique_ptr<Node> node);

  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    add_node(std::move(node));
    return ref;
  }

  /// Creates a bidirectional link between two nodes (replaces the profile
  /// if the pair is already linked).
  void connect(NodeId a, NodeId b, LinkProfile profile);
  void connect(const Node& a, const Node& b, LinkProfile profile) {
    connect(a.id(), b.id(), profile);
  }

  [[nodiscard]] bool linked(NodeId a, NodeId b) const;
  /// All nodes directly linked to `id` (used e.g. for paging broadcast).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;
  [[nodiscard]] const LinkProfile* link_between(NodeId a, NodeId b) const;
  /// Replaces the profile of an existing link (for sweeps).
  void set_link_profile(NodeId a, NodeId b, LinkProfile profile);

  [[nodiscard]] Node* node(NodeId id) const;
  [[nodiscard]] Node* node_by_name(std::string_view name) const;

  template <typename T>
  [[nodiscard]] T* find(std::string_view name) const {
    return dynamic_cast<T*>(node_by_name(name));
  }

  /// Registers an IP address as reachable at `node` (models the flat IP
  /// cloud of the external H.323 network / Gi interface).
  void register_ip(IpAddress ip, NodeId node);
  void unregister_ip(IpAddress ip);
  [[nodiscard]] NodeId ip_owner(IpAddress ip) const;

  // --- messaging ----------------------------------------------------------

  /// Sends `msg` from `from` to `to` over their link.  Asserts the link
  /// exists.  The message is serialized and re-decoded unless
  /// set_serialize_links(false) was called.  `extra_delay` models local
  /// processing at the sender (e.g. vocoder transcoding) on top of the
  /// link's propagation characteristics.
  void send(NodeId from, NodeId to, MessagePtr msg,
            SimDuration extra_delay = SimDuration::zero());

  /// If true (default) every link traversal round-trips through the wire
  /// codec.  A codec failure throws: it is a bug, not a simulated fault.
  /// (Exception: a FaultInjector corruption that the codec rejects models a
  /// checksum failure — the frame is silently discarded, not a bug.)
  void set_serialize_links(bool on) { serialize_links_ = on; }

  // --- fault injection ----------------------------------------------------

  /// Installs a FaultInjector driven by `schedule` (see sim/fault.hpp).
  /// Call after the topology is built — the schedule's node names are
  /// resolved immediately.  At most one injector per network.  With none
  /// installed the hot path pays one null-pointer test per send/dispatch.
  FaultInjector& install_faults(FaultSchedule schedule);
  [[nodiscard]] FaultInjector* faults() const { return fault_; }

  TimerId set_timer(NodeId target, SimDuration delay, std::uint64_t cookie);
  void cancel_timer(TimerId id);

  // --- execution ----------------------------------------------------------

  [[nodiscard]] SimTime now() const { return now_; }

  /// Runs events until the queue drains or `limit` is reached.  Returns the
  /// number of events processed.
  std::size_t run_until_idle(SimTime limit = SimTime::from_micros(
                                 std::int64_t{1} << 50));
  /// Runs events with timestamps <= deadline (advances now() to deadline).
  std::size_t run_until(SimTime deadline);
  std::size_t run_for(SimDuration d) { return run_until(now_ + d); }

  [[nodiscard]] bool idle() const;

  // --- observability ------------------------------------------------------

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Procedure spans (disabled by default; see SpanTracker).  Node
  /// instrumentation opens/closes these; dispatch() attributes hop counts.
  [[nodiscard]] SpanTracker& spans() { return spans_; }
  [[nodiscard]] const SpanTracker& spans() const { return spans_; }

  /// Named instruments (see MetricsRegistry).  The NetworkStats scalars
  /// stay raw increments on the hot path; metrics_snapshot() folds them
  /// into the registry under "net/..." names before digesting.
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsSnapshot metrics_snapshot();

 private:
  /// One queued occurrence: a delivery (msg != nullptr) or a timer firing.
  /// Kept small and move-only-cheap; the heap moves these on every sift.
  struct Event {
    SimTime at;
    std::uint64_t seq = 0;  // FIFO tie-break for determinism
    MessagePtr msg;         // null => timer event
    std::uint64_t timer_cookie = 0;
    NodeId from;                  // deliveries only
    NodeId to;                    // delivery target / timer target
    std::uint32_t timer_slot = 0;
    std::uint32_t timer_gen = 0;
  };
  struct EventBefore {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  /// Timer identity for O(1) cancellation without tombstones: a TimerId
  /// packs (slot index, generation).  Arming bumps the slot's generation;
  /// firing and cancelling disarm it.  A stale cancel (after fire, or a
  /// second cancel, possibly after the slot was reused) fails the
  /// generation/armed check and is a no-op.
  struct TimerSlot {
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;  // free-list link (index + 1); 0 = end
    bool armed = false;
  };

  /// Node-name lookup without materializing a std::string per call.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Adjacency {
    NodeId peer;
    std::uint32_t link = 0;  // index into link_profiles_
  };

  void dispatch(Event ev);
  [[nodiscard]] const Adjacency* find_link(NodeId a, NodeId b) const;
  void release_timer_slot(std::uint32_t slot);

  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::unordered_map<std::string, NodeId, StringHash, std::equal_to<>>
      by_name_;
  std::deque<LinkProfile> link_profiles_;     // stable storage
  std::vector<std::vector<Adjacency>> adjacency_;  // index = id - 1
  std::unordered_map<IpAddress, NodeId> ip_owners_;

  QuadHeap<Event, EventBefore> queue_;
  std::vector<TimerSlot> timer_slots_;
  std::uint32_t timer_free_head_ = 0;  // index + 1; 0 = none
  std::uint64_t next_seq_ = 1;

  SimTime now_;
  bool serialize_links_ = true;
  FaultInjector* fault_ = nullptr;  // owned via nodes_; null = no faults
  ByteWriter scratch_;  // reusable wire buffer for serialize_links_
  TraceRecorder trace_;
  SpanTracker spans_;
  MetricsRegistry metrics_;
  NetworkStats stats_;
  Rng rng_;
};

}  // namespace vgprs
