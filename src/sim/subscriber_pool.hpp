// SubscriberTable: pooled per-subscriber state for million-MS populations.
//
// The control-plane nodes (HLR, VLR, SGSN, (V)MSC, gatekeeper) each keep a
// record per subscriber.  As std::unordered_map values those records cost a
// node allocation per insert, a pointer chase per lookup, and scattered
// cache lines per procedure — at 10k subscribers that is noise, at 1M it is
// the working set.  This container replaces them with:
//
//  * records stored in 1024-entry slabs (stable addresses — procedure code
//    holds references across calls; slabs are never reallocated, only
//    appended), erased slots recycled through a free list, so steady-state
//    attach/detach churn performs no heap allocation at all;
//  * a flat open-addressing index (u64 key -> slot), linear probing with
//    backward-shift deletion — one cache line per lookup at 10k and 1M
//    alike;
//  * iteration in slot order: deterministic for a deterministic insert
//    sequence, which the engine guarantees, so iterating callers stay
//    golden-stable.
//
// Keys are anything with an integral value() (Imsi, Msisdn, CallRef, ...)
// or a plain integer; distinct keys must have distinct u64 values, which
// every identity type in this codebase satisfies.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace vgprs {

namespace detail {

template <typename K>
constexpr std::uint64_t subscriber_key(const K& k) {
  if constexpr (std::is_integral_v<K>) {
    return static_cast<std::uint64_t>(k);
  } else {
    return static_cast<std::uint64_t>(k.value());
  }
}

constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace detail

template <typename K, typename V>
class SubscriberTable {
  static constexpr std::size_t kSlabShift = 10;  // 1024 records per slab
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabShift;
  static constexpr std::uint32_t kEmpty = 0;  // index refs are slot + 1

  struct IndexEntry {
    std::uint64_t key = 0;
    std::uint32_t ref = kEmpty;
  };

  struct Entry {
    alignas(V) unsigned char storage[sizeof(V)];
    std::uint64_t key = 0;
    bool occupied = false;

    V* value() { return std::launder(reinterpret_cast<V*>(storage)); }
    [[nodiscard]] const V* value() const {
      return std::launder(reinterpret_cast<const V*>(storage));
    }
  };

 public:
  SubscriberTable() = default;
  SubscriberTable(const SubscriberTable&) = delete;
  SubscriberTable& operator=(const SubscriberTable&) = delete;
  ~SubscriberTable() { destroy_all(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool contains(const K& k) const { return find(k) != nullptr; }

  /// Pre-sizes the index and slabs for `n` records (optional; the table
  /// grows on demand, this just front-loads the work for bulk provisioning).
  void reserve(std::size_t n) {
    std::size_t cap = index_.size();
    while (cap < 2 * n + 16) cap = cap == 0 ? 64 : cap * 2;
    if (cap > index_.size()) rehash(cap);
    while (slabs_.size() * kSlabSize < n) {
      slabs_.push_back(std::make_unique<Entry[]>(kSlabSize));
    }
  }

  [[nodiscard]] V* find(const K& k) {
    const std::uint32_t ref = lookup(detail::subscriber_key(k));
    return ref == kEmpty ? nullptr : entry_at(ref - 1).value();
  }
  [[nodiscard]] const V* find(const K& k) const {
    const std::uint32_t ref = lookup(detail::subscriber_key(k));
    return ref == kEmpty ? nullptr : entry_at(ref - 1).value();
  }

  /// Returns the record for `k`, default-constructing it on first use.
  V& operator[](const K& k) {
    const std::uint64_t key = detail::subscriber_key(k);
    if (const std::uint32_t ref = lookup(key); ref != kEmpty) {
      return *entry_at(ref - 1).value();
    }
    return *insert_new(key);
  }

  bool erase(const K& k) {
    const std::uint64_t key = detail::subscriber_key(k);
    if (index_.empty()) return false;
    const std::size_t mask = index_.size() - 1;
    std::size_t i = detail::mix64(key) & mask;
    while (true) {
      IndexEntry& e = index_[i];
      if (e.ref == kEmpty) return false;
      if (e.key == key) break;
      i = (i + 1) & mask;
    }
    // Release the record.
    const std::uint32_t slot = index_[i].ref - 1;
    Entry& entry = entry_at(slot);
    entry.value()->~V();
    entry.occupied = false;
    free_list_.push_back(slot);
    --size_;
    // Backward-shift deletion keeps probes tombstone-free.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask;
    while (index_[j].ref != kEmpty) {
      const std::size_t home = detail::mix64(index_[j].key) & mask;
      // Can index_[j] move into the hole without breaking its probe chain?
      const bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
      if (movable) {
        index_[hole] = index_[j];
        hole = j;
      }
      j = (j + 1) & mask;
    }
    index_[hole] = IndexEntry{};
    return true;
  }

  void clear() {
    destroy_all();
    index_.assign(index_.size(), IndexEntry{});
    free_list_.clear();
    used_slots_ = 0;
    size_ = 0;
  }

  // --- iteration (slot order; deterministic given deterministic inserts) ---

  template <bool Const>
  class Iter {
    using Table = std::conditional_t<Const, const SubscriberTable,
                                     SubscriberTable>;
    using Value = std::conditional_t<Const, const V, V>;

   public:
    struct Item {
      std::uint64_t key;
      Value& value;
    };

    Iter(Table* t, std::uint32_t slot) : t_(t), slot_(slot) { settle(); }

    Item operator*() const {
      auto& e = t_->entry_at(slot_);
      return Item{e.key, *e.value()};
    }
    Iter& operator++() {
      ++slot_;
      settle();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }

   private:
    void settle() {
      while (slot_ < t_->used_slots_ && !t_->entry_at(slot_).occupied) {
        ++slot_;
      }
    }
    Table* t_;
    std::uint32_t slot_;
  };

  [[nodiscard]] auto begin() { return Iter<false>(this, 0); }
  [[nodiscard]] auto end() { return Iter<false>(this, used_slots_); }
  [[nodiscard]] auto begin() const { return Iter<true>(this, 0); }
  [[nodiscard]] auto end() const { return Iter<true>(this, used_slots_); }

 private:
  Entry& entry_at(std::uint32_t slot) {
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
  }
  [[nodiscard]] const Entry& entry_at(std::uint32_t slot) const {
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
  }

  [[nodiscard]] std::uint32_t lookup(std::uint64_t key) const {
    if (index_.empty()) return kEmpty;
    const std::size_t mask = index_.size() - 1;
    std::size_t i = detail::mix64(key) & mask;
    while (true) {
      const IndexEntry& e = index_[i];
      if (e.ref == kEmpty) return kEmpty;
      if (e.key == key) return e.ref;
      i = (i + 1) & mask;
    }
  }

  V* insert_new(std::uint64_t key) {
    if ((size_ + 1) * 10 >= index_.size() * 7) {  // load factor 0.7
      rehash(index_.empty() ? 64 : index_.size() * 2);
    }
    std::uint32_t slot;
    if (!free_list_.empty()) {
      slot = free_list_.back();
      free_list_.pop_back();
    } else {
      if (used_slots_ >> kSlabShift >= slabs_.size()) {
        slabs_.push_back(std::make_unique<Entry[]>(kSlabSize));
      }
      slot = used_slots_++;
    }
    Entry& entry = entry_at(slot);
    V* v = ::new (static_cast<void*>(entry.storage)) V();
    entry.key = key;
    entry.occupied = true;
    const std::size_t mask = index_.size() - 1;
    std::size_t i = detail::mix64(key) & mask;
    while (index_[i].ref != kEmpty) i = (i + 1) & mask;
    index_[i] = IndexEntry{key, slot + 1};
    ++size_;
    return v;
  }

  void rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0);
    std::vector<IndexEntry> old = std::move(index_);
    index_.assign(new_cap, IndexEntry{});
    const std::size_t mask = new_cap - 1;
    for (const IndexEntry& e : old) {
      if (e.ref == kEmpty) continue;
      std::size_t i = detail::mix64(e.key) & mask;
      while (index_[i].ref != kEmpty) i = (i + 1) & mask;
      index_[i] = e;
    }
  }

  void destroy_all() {
    for (std::uint32_t s = 0; s < used_slots_; ++s) {
      Entry& e = entry_at(s);
      if (e.occupied) {
        e.value()->~V();
        e.occupied = false;
      }
    }
  }

  std::vector<IndexEntry> index_;
  std::vector<std::unique_ptr<Entry[]>> slabs_;
  std::vector<std::uint32_t> free_list_;
  std::uint32_t used_slots_ = 0;
  std::size_t size_ = 0;
};

/// Fixed-capacity FIFO of GSM authentication vectors: the HLR hands out
/// batches of 3 and the VLR only refills when empty, so 6 covers even a
/// fault-injected duplicate batch.  Replaces a per-visitor std::deque —
/// the last untracked allocation in the VLR's registration hot path.
template <typename T, std::size_t N>
class InlineQueue {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Appends unless full; excess entries are dropped (a real VLR caps its
  /// vector store the same way).
  void push_back(const T& t) {
    if (count_ == N) return;
    items_[(head_ + count_) % N] = t;
    ++count_;
  }
  [[nodiscard]] const T& front() const {
    assert(count_ > 0);
    return items_[head_];
  }
  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) % N;
    --count_;
  }
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  T items_[N] = {};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace vgprs
