#include "sim/btrace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "sim/message.hpp"

namespace vgprs {

namespace {

// Chunk granularity of the per-shard ring.  Records never span chunks, so
// ring eviction (dropping the oldest chunk) always drops whole records.
constexpr std::size_t kChunkBytes = 64 * 1024;

void append_key(ByteWriter& w, const DispatchKey& key) {
  w.u64(static_cast<std::uint64_t>(key.at.count_micros()));
  w.u64(static_cast<std::uint64_t>(key.sent_at.count_micros()));
  w.u64(key.seq);
  w.u32(key.sub);
}

DispatchKey read_key(ByteReader& r) {
  DispatchKey key;
  key.at = SimTime::from_micros(static_cast<std::int64_t>(r.u64()));
  key.sent_at = SimTime::from_micros(static_cast<std::int64_t>(r.u64()));
  key.seq = r.u64();
  key.sub = r.u32();
  return key;
}

std::string record_context(std::uint64_t index, std::uint8_t kind,
                           std::size_t offset, const char* what) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "record %llu (kind 0x%02X) at offset %zu: %s",
                static_cast<unsigned long long>(index), kind, offset, what);
  return buf;
}

}  // namespace

void append_btrace_record(std::vector<std::uint8_t>& dst, BtraceRecord kind,
                          std::span<const std::uint8_t> payload) {
  dst.push_back(kBtraceMagic);
  dst.push_back(kBtraceVersion);
  dst.push_back(static_cast<std::uint8_t>(kind));
  dst.push_back(0);
  const auto len = static_cast<std::uint32_t>(payload.size());
  dst.push_back(static_cast<std::uint8_t>(len >> 24));
  dst.push_back(static_cast<std::uint8_t>(len >> 16));
  dst.push_back(static_cast<std::uint8_t>(len >> 8));
  dst.push_back(static_cast<std::uint8_t>(len));
  dst.insert(dst.end(), payload.begin(), payload.end());
}

// --- BtraceShardBuffer ------------------------------------------------------

void BtraceShardBuffer::configure(std::size_t ring_bytes) {
  clear();
  ring_bytes_ = ring_bytes;
  // Eviction retires whole chunks, and the chunk being written is never
  // evicted — so a bounded ring needs several chunks inside the bound or a
  // small bound would never evict at all.  Target ~4 chunks per ring, with
  // a floor big enough that typical records don't each force a fresh chunk.
  chunk_bytes_ = ring_bytes == 0
                     ? kChunkBytes
                     : std::min(kChunkBytes,
                                std::max<std::size_t>(256, ring_bytes / 4));
  dropped_records_ = 0;
  dropped_bytes_ = 0;
}

void BtraceShardBuffer::clear() {
  for (Chunk& c : chunks_) {
    c.data.clear();
    c.records = 0;
    free_.push_back(std::move(c));
  }
  chunks_.clear();
  bytes_ = 0;
}

BtraceShardBuffer::Chunk& BtraceShardBuffer::chunk_for(
    std::size_t record_bytes) {
  // Size check, not capacity check: recycled chunks keep whatever capacity
  // they grew to, and overfilling one would stretch the eviction granularity
  // past what configure() chose for the ring bound.
  const std::size_t target = chunk_bytes_ == 0 ? kChunkBytes : chunk_bytes_;
  if (!chunks_.empty() &&
      chunks_.back().data.size() + record_bytes <= target) {
    return chunks_.back();
  }
  Chunk fresh;
  if (!free_.empty()) {
    fresh = std::move(free_.back());
    free_.pop_back();
  }
  fresh.data.reserve(std::max(target, record_bytes));
  chunks_.push_back(std::move(fresh));
  return chunks_.back();
}

void BtraceShardBuffer::commit(BtraceRecord kind) {
  const std::size_t total = kBtraceHeaderSize + scratch_.size();
  Chunk& chunk = chunk_for(total);
  append_btrace_record(chunk.data, kind, scratch_.data());
  ++chunk.records;
  bytes_ += total;
  // Ring bound: retire whole chunks of oldest records.  The chunk being
  // written is never evicted, so the newest record always survives.
  while (ring_bytes_ != 0 && bytes_ > ring_bytes_ && chunks_.size() > 1) {
    Chunk& oldest = chunks_.front();
    bytes_ -= oldest.data.size();
    dropped_bytes_ += oldest.data.size();
    dropped_records_ += oldest.records;
    oldest.data.clear();
    oldest.records = 0;
    free_.push_back(std::move(oldest));
    chunks_.pop_front();
  }
}

void BtraceShardBuffer::trace(const DispatchKey& key, std::uint32_t from,
                              std::uint32_t to, const Message& msg) {
  scratch_.clear();
  append_key(scratch_, key);
  scratch_.u32(from);
  scratch_.u32(to);
  msg.encode_to(scratch_);
  commit(BtraceRecord::kTrace);
}

void BtraceShardBuffer::fault(const DispatchKey& key, SimTime at,
                              std::string_view from, std::string_view to,
                              std::string_view what, std::string_view detail) {
  scratch_.clear();
  append_key(scratch_, key);
  scratch_.u64(static_cast<std::uint64_t>(at.count_micros()));
  scratch_.str(from);
  scratch_.str(to);
  scratch_.str(what);
  scratch_.str(detail);
  commit(BtraceRecord::kFault);
}

void BtraceShardBuffer::drain_to(std::vector<std::uint8_t>& out) const {
  for (const Chunk& c : chunks_) {
    out.insert(out.end(), c.data.begin(), c.data.end());
  }
}

// --- SpanCaptureLog ---------------------------------------------------------

void SpanCaptureLog::on_span_op(const SpanTracker::Op& op) {
  scratch_.clear();
  switch (op.op) {
    case SpanTracker::OpKind::kOpen:
      scratch_.u64(static_cast<std::uint64_t>(op.at.count_micros()));
      scratch_.u8(static_cast<std::uint8_t>(op.kind));
      scratch_.u64(op.correlation);
      scratch_.str(op.opener);
      append_btrace_record(buf_, BtraceRecord::kSpanOpen, scratch_.data());
      return;
    case SpanTracker::OpKind::kClose:
      scratch_.u64(static_cast<std::uint64_t>(op.at.count_micros()));
      scratch_.u8(static_cast<std::uint8_t>(op.kind));
      scratch_.u8(static_cast<std::uint8_t>(op.outcome));
      scratch_.u64(op.correlation);
      append_btrace_record(buf_, BtraceRecord::kSpanClose, scratch_.data());
      return;
    case SpanTracker::OpKind::kAttribute:
      scratch_.u64(op.correlation);
      append_btrace_record(buf_, BtraceRecord::kSpanAttr, scratch_.data());
      return;
  }
}

void write_btrace_file_info(std::ostream& out, std::string_view scenario,
                            std::uint64_t seed, std::uint32_t iters) {
  ByteWriter p;
  p.str(scenario);
  p.u64(seed);
  p.u32(iters);
  std::vector<std::uint8_t> blob;
  append_btrace_record(blob, BtraceRecord::kFileInfo, p.data());
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
}

// --- offline decode ---------------------------------------------------------

namespace {

struct TraceRec {
  DispatchKey key;
  bool fault = false;
  std::span<const std::uint8_t> payload;
  std::uint64_t index = 0;    // record ordinal, for diagnostics
  std::size_t offset = 0;
};

struct RawSegment {
  std::string system;
  std::uint32_t num_shards = 0;
  std::map<std::uint32_t, std::string> nodes;
  std::map<std::uint16_t, std::string> msg_names;
  std::vector<DecodedShard> shards;
  std::vector<TraceRec> trace;
  std::vector<SpanTracker::Op> span_ops;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> hists;
  bool ended = false;
  bool primary = false;
  std::uint64_t events = 0;
  std::int64_t sim_time_us = 0;
};

struct RawFile {
  BtraceInfo info;
  bool has_info = false;
  std::vector<RawSegment> segments;
  std::uint64_t records = 0;
};

/// Structural parse of one file: frames every record, validates headers,
/// parses scalar payloads eagerly and keeps trace/fault payloads as views
/// (materialized after the per-segment DispatchKey sort).
Result<RawFile> parse_file(std::span<const std::uint8_t> file) {
  RawFile out;
  RawSegment* seg = nullptr;
  bool in_shard = false;
  std::size_t offset = 0;

  auto fail = [&](ErrorCode code, std::uint8_t kind, const char* what) {
    return Error{code, record_context(out.records, kind, offset, what)};
  };

  while (offset < file.size()) {
    if (file.size() - offset < kBtraceHeaderSize) {
      return fail(ErrorCode::kDecodeTruncated, 0,
                  "truncated record header at end of file");
    }
    const std::uint8_t magic = file[offset];
    const std::uint8_t version = file[offset + 1];
    const std::uint8_t kind_raw = file[offset + 2];
    const std::uint32_t len = (std::uint32_t{file[offset + 4]} << 24) |
                              (std::uint32_t{file[offset + 5]} << 16) |
                              (std::uint32_t{file[offset + 6]} << 8) |
                              std::uint32_t{file[offset + 7]};
    if (magic != kBtraceMagic) {
      return fail(ErrorCode::kDecodeBadValue, kind_raw, "bad record magic");
    }
    if (version != kBtraceVersion) {
      return fail(ErrorCode::kDecodeBadValue, kind_raw,
                  "unsupported btrace version");
    }
    if (len > kBtraceMaxRecordBytes) {
      return fail(ErrorCode::kDecodeBadValue, kind_raw,
                  "record length exceeds format maximum");
    }
    if (file.size() - offset - kBtraceHeaderSize < len) {
      return fail(ErrorCode::kDecodeTruncated, kind_raw,
                  "record payload truncated");
    }
    const std::span<const std::uint8_t> payload =
        file.subspan(offset + kBtraceHeaderSize, len);
    const auto kind = static_cast<BtraceRecord>(kind_raw);
    ByteReader r(payload);

    auto need_segment = [&]() -> bool { return seg != nullptr; };

    switch (kind) {
      case BtraceRecord::kFileInfo: {
        if (out.has_info || out.records != 0) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kFileInfo must be the first and only file header");
        }
        out.info.scenario = r.str();
        out.info.seed = r.u64();
        out.info.iters = r.u32();
        out.has_info = true;
        break;
      }
      case BtraceRecord::kRunBegin: {
        if (!out.has_info || seg != nullptr) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kRunBegin outside file body or inside an open segment");
        }
        out.segments.emplace_back();
        seg = &out.segments.back();
        seg->system = r.str();
        seg->num_shards = r.u32();
        in_shard = false;
        break;
      }
      case BtraceRecord::kNodeTable: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kNodeTable outside a segment");
        }
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
          const std::uint32_t id = r.u32();
          std::string name = r.str();
          auto it = seg->nodes.find(id);
          if (it == seg->nodes.end()) {
            seg->nodes.emplace(id, std::move(name));
          } else if (it->second != name) {
            return fail(ErrorCode::kDecodeBadValue, kind_raw,
                        "conflicting node table entry");
          }
        }
        break;
      }
      case BtraceRecord::kMsgTable: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kMsgTable outside a segment");
        }
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
          const std::uint16_t wire = r.u16();
          seg->msg_names[wire] = r.str();
        }
        break;
      }
      case BtraceRecord::kShardBegin: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kShardBegin outside a segment");
        }
        DecodedShard sh;
        sh.index = r.u32();
        sh.dropped_records = r.u64();
        sh.dropped_bytes = r.u64();
        seg->shards.push_back(sh);
        in_shard = true;
        break;
      }
      case BtraceRecord::kTrace:
      case BtraceRecord::kFault: {
        if (!need_segment() || !in_shard) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "trace record outside a shard section");
        }
        TraceRec rec;
        rec.key = read_key(r);
        rec.fault = kind == BtraceRecord::kFault;
        rec.payload = payload;
        rec.index = out.records;
        rec.offset = offset;
        if (r.failed()) {
          return fail(ErrorCode::kDecodeTruncated, kind_raw,
                      "trace record shorter than its dispatch key");
        }
        seg->trace.push_back(rec);
        // Defer the rest of the payload to materialization.
        offset += kBtraceHeaderSize + len;
        ++out.records;
        continue;
      }
      case BtraceRecord::kSpanOpen: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "span record outside a segment");
        }
        in_shard = false;
        SpanTracker::Op op;
        op.op = SpanTracker::OpKind::kOpen;
        op.at = SimTime::from_micros(static_cast<std::int64_t>(r.u64()));
        const std::uint8_t k = r.u8();
        if (k >= kSpanKindCount) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "span kind out of domain");
        }
        op.kind = static_cast<SpanKind>(k);
        op.correlation = r.u64();
        op.opener = r.str();
        seg->span_ops.push_back(std::move(op));
        break;
      }
      case BtraceRecord::kSpanClose: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "span record outside a segment");
        }
        in_shard = false;
        SpanTracker::Op op;
        op.op = SpanTracker::OpKind::kClose;
        op.at = SimTime::from_micros(static_cast<std::int64_t>(r.u64()));
        const std::uint8_t k = r.u8();
        const std::uint8_t oc = r.u8();
        if (k >= kSpanKindCount || oc > 3) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "span kind/outcome out of domain");
        }
        op.kind = static_cast<SpanKind>(k);
        op.outcome = static_cast<SpanOutcome>(oc);
        op.correlation = r.u64();
        seg->span_ops.push_back(std::move(op));
        break;
      }
      case BtraceRecord::kSpanAttr: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "span record outside a segment");
        }
        in_shard = false;
        SpanTracker::Op op;
        op.op = SpanTracker::OpKind::kAttribute;
        op.correlation = r.u64();
        seg->span_ops.push_back(std::move(op));
        break;
      }
      case BtraceRecord::kMetricCounter: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "metric record outside a segment");
        }
        in_shard = false;
        std::string name = r.str();
        const auto value = static_cast<std::int64_t>(r.u64());
        seg->counters.emplace_back(std::move(name), value);
        break;
      }
      case BtraceRecord::kMetricGauge: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "metric record outside a segment");
        }
        in_shard = false;
        std::string name = r.str();
        const double value = r.f64();
        seg->gauges.emplace_back(std::move(name), value);
        break;
      }
      case BtraceRecord::kMetricHist: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "metric record outside a segment");
        }
        in_shard = false;
        std::string name = r.str();
        HistogramSummary h;
        h.count = static_cast<std::size_t>(r.u64());
        h.min = r.f64();
        h.max = r.f64();
        h.mean = r.f64();
        h.p50 = r.f64();
        h.p95 = r.f64();
        h.p99 = r.f64();
        seg->hists.emplace_back(std::move(name), h);
        break;
      }
      case BtraceRecord::kRunEnd: {
        if (!need_segment()) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kRunEnd outside a segment");
        }
        const std::uint8_t primary = r.u8();
        if (primary > 1) {
          return fail(ErrorCode::kDecodeBadValue, kind_raw,
                      "kRunEnd primary flag out of domain");
        }
        seg->primary = primary != 0;
        seg->events = r.u64();
        seg->sim_time_us = static_cast<std::int64_t>(r.u64());
        seg->ended = true;
        seg = nullptr;
        in_shard = false;
        break;
      }
      default:
        return fail(ErrorCode::kDecodeBadValue, kind_raw,
                    "unknown record kind");
    }
    if (!r.exhausted()) {
      return fail(r.failed() ? ErrorCode::kDecodeTruncated
                             : ErrorCode::kDecodeBadValue,
                  kind_raw,
                  r.failed() ? "payload shorter than its fields"
                             : "payload has trailing bytes");
    }
    offset += kBtraceHeaderSize + len;
    ++out.records;
  }
  if (!out.has_info) {
    return Error{ErrorCode::kDecodeTruncated,
                 "capture has no kFileInfo header (empty or not a btrace "
                 "file)"};
  }
  if (seg != nullptr) {
    return Error{ErrorCode::kDecodeTruncated,
                 "capture ends inside a run segment (missing kRunEnd)"};
  }
  return out;
}

Result<TraceEntry> materialize(const TraceRec& rec, const RawSegment& seg) {
  ByteReader r(rec.payload);
  (void)read_key(r);
  auto fail = [&](ErrorCode code, const char* what) {
    return Error{code, record_context(rec.index,
                                      rec.fault ? 0x11 : 0x10, rec.offset,
                                      what)};
  };
  if (rec.fault) {
    TraceEntry e;
    e.at = SimTime::from_micros(static_cast<std::int64_t>(r.u64()));
    e.from = r.str();
    e.to = r.str();
    e.message = r.str();
    e.summary = r.str();
    if (!r.exhausted()) {
      return fail(ErrorCode::kDecodeTruncated, "malformed fault record");
    }
    return e;
  }
  const std::uint32_t from = r.u32();
  const std::uint32_t to = r.u32();
  if (r.failed()) {
    return fail(ErrorCode::kDecodeTruncated, "malformed trace record");
  }
  const auto from_it = seg.nodes.find(from);
  const auto to_it = seg.nodes.find(to);
  if (from_it == seg.nodes.end() || to_it == seg.nodes.end()) {
    return fail(ErrorCode::kDecodeBadValue,
                "trace record references a node id missing from the node "
                "table");
  }
  std::vector<std::uint8_t> wire;
  wire.reserve(r.remaining());
  while (r.remaining() > 0) wire.push_back(r.u8());
  auto decoded = MessageRegistry::instance().decode(wire);
  if (!decoded.ok()) {
    return Error{decoded.error().code,
                 record_context(rec.index, 0x10, rec.offset,
                                ("wire image does not decode: " +
                                 decoded.error().to_string())
                                    .c_str())};
  }
  const Message& msg = *decoded.value();
  TraceEntry e;
  e.at = rec.key.at;
  e.from = from_it->second;
  e.to = to_it->second;
  e.message = std::string(msg.name());
  e.summary = msg.summary();
  return e;
}

/// Merges per-shard files into one logical segment list.  Segments align by
/// index; exactly one file's segment must be primary.
Result<std::vector<RawSegment>> merge_files(std::vector<RawFile>& files,
                                            BtraceInfo& info) {
  info = files.front().info;
  for (const RawFile& f : files) {
    if (f.info.scenario != info.scenario || f.info.seed != info.seed ||
        f.info.iters != info.iters) {
      return Error{ErrorCode::kDecodeBadValue,
                   "per-shard capture files disagree on scenario/seed/iters"};
    }
    if (f.segments.size() != files.front().segments.size()) {
      return Error{ErrorCode::kDecodeBadValue,
                   "per-shard capture files have differing segment counts"};
    }
  }
  std::vector<RawSegment> merged;
  const std::size_t nsegs = files.front().segments.size();
  for (std::size_t s = 0; s < nsegs; ++s) {
    RawSegment out;
    std::size_t primaries = 0;
    for (RawFile& f : files) {
      RawSegment& in = f.segments[s];
      if (out.system.empty()) {
        out.system = in.system;
        out.num_shards = in.num_shards;
      } else if (in.system != out.system) {
        return Error{ErrorCode::kDecodeBadValue,
                     "per-shard capture files disagree on segment system"};
      }
      for (auto& [id, name] : in.nodes) {
        auto [it, inserted] = out.nodes.emplace(id, name);
        if (!inserted && it->second != name) {
          return Error{ErrorCode::kDecodeBadValue,
                       "per-shard capture files disagree on a node name"};
        }
      }
      out.shards.insert(out.shards.end(), in.shards.begin(), in.shards.end());
      out.trace.insert(out.trace.end(), in.trace.begin(), in.trace.end());
      if (in.primary) {
        ++primaries;
        out.span_ops = std::move(in.span_ops);
        out.counters = std::move(in.counters);
        out.gauges = std::move(in.gauges);
        out.hists = std::move(in.hists);
        out.events = in.events;
        out.sim_time_us = in.sim_time_us;
      }
    }
    if (primaries != 1) {
      return Error{ErrorCode::kDecodeBadValue,
                   "segment must have exactly one primary per-shard file"};
    }
    out.primary = true;
    out.ended = true;
    merged.push_back(std::move(out));
  }
  return merged;
}

Result<DecodedCapture> assemble(std::vector<RawSegment>& segments,
                                const BtraceInfo& info, std::uint64_t records) {
  DecodedCapture out;
  out.info = info;
  out.records = records;
  for (RawSegment& seg : segments) {
    if (!seg.primary) {
      return Error{ErrorCode::kDecodeBadValue,
                   "single-file segment is not marked primary"};
    }
    if (out.runs.empty() || out.runs.back().system != seg.system) {
      out.runs.emplace_back();
      out.runs.back().system = seg.system;
    }
    DecodedRun& run = out.runs.back();
    ++run.segments;
    run.shards.insert(run.shards.end(), seg.shards.begin(), seg.shards.end());

    // The same strict total order the sharded engine merges its per-shard
    // observability buffers in (see dispatch_key.hpp).
    std::sort(seg.trace.begin(), seg.trace.end(),
              [](const TraceRec& a, const TraceRec& b) { return a.key < b.key; });
    run.trace.reserve(run.trace.size() + seg.trace.size());
    for (const TraceRec& rec : seg.trace) {
      Result<TraceEntry> entry = materialize(rec, seg);
      if (!entry.ok()) return entry.error();
      run.trace.push_back(std::move(entry).value());
    }

    // Spans: replay the op log through a fresh tracker per segment — each
    // segment was a separate Network, so correlations must not bleed.
    SpanTracker tracker;
    tracker.set_enabled(true);
    for (const SpanTracker::Op& op : seg.span_ops) tracker.apply(op);
    run.spans.insert(run.spans.end(), tracker.spans().begin(),
                     tracker.spans().end());

    // Metric deltas: counters and gauges sum across a group's segments —
    // the same aggregation vgprs_report's fig9 loop performs with
    // MetricsRegistry::merge_from.
    for (auto& [name, v] : seg.counters) run.metrics.counters[name] += v;
    for (auto& [name, v] : seg.gauges) run.metrics.gauges[name] += v;
    for (auto& [name, h] : seg.hists) {
      HistogramSummary& dst = run.metrics.histograms[name];
      if (dst.count == 0) {
        dst = h;
      } else if (h.count != 0) {
        // Percentiles of separate segments cannot be merged exactly; keep
        // exact count/min/max and a weighted mean, latest percentiles.
        const double total = static_cast<double>(dst.count + h.count);
        dst.mean = (dst.mean * static_cast<double>(dst.count) +
                    h.mean * static_cast<double>(h.count)) /
                   total;
        dst.min = std::min(dst.min, h.min);
        dst.max = std::max(dst.max, h.max);
        dst.count += h.count;
        dst.p50 = h.p50;
        dst.p95 = h.p95;
        dst.p99 = h.p99;
      }
    }
    run.events += seg.events;
    run.sim_time_ms += static_cast<double>(seg.sim_time_us) / 1000.0;
  }
  return out;
}

}  // namespace

Result<DecodedCapture> decode_capture(std::span<const std::uint8_t> file) {
  Result<RawFile> parsed = parse_file(file);
  if (!parsed.ok()) return parsed.error();
  RawFile raw = std::move(parsed).value();
  return assemble(raw.segments, raw.info, raw.records);
}

Result<DecodedCapture> decode_capture_files(
    std::span<const std::vector<std::uint8_t>> files) {
  if (files.empty()) {
    return Error{ErrorCode::kDecodeTruncated, "no capture files to decode"};
  }
  if (files.size() == 1) return decode_capture(files.front());
  std::vector<RawFile> raws;
  raws.reserve(files.size());
  std::uint64_t records = 0;
  for (const std::vector<std::uint8_t>& f : files) {
    Result<RawFile> parsed = parse_file(f);
    if (!parsed.ok()) return parsed.error();
    records += parsed.value().records;
    raws.push_back(std::move(parsed).value());
  }
  BtraceInfo info;
  Result<std::vector<RawSegment>> merged = merge_files(raws, info);
  if (!merged.ok()) return merged.error();
  return assemble(merged.value(), info, records);
}

}  // namespace vgprs
