// FaultInjector: a scriptable, seed-deterministic fault schedule attached
// to a Network.  Four fault families:
//
//  * link windows — a named link is dead for [down_at, up_at); every
//    traversal attempted inside the window is dropped;
//  * latency spikes — traversals of a named link inside [from, until) pay
//    `extra` on top of the link's profile;
//  * node outages — a node crashes at crash_at (messages to/from it are
//    dropped, its timers are suppressed) and restarts at restart_at, when
//    Node::on_restart() fires and volatile state resets;
//  * message faults — drop / duplicate / reorder / corrupt the N-th
//    message matching a (message name, from, to) predicate.
//
// Every injected fault is recorded in the trace (entries named
// "fault.<kind>(...)") and counted in the MetricsRegistry under
// "fault/injected/<kind>".  Determinism: the schedule is data, transitions
// ride the ordinary event queue, and the only randomness (the corrupted
// byte position when a fault does not pin one) comes from the Network's
// seeded RNG — same seed + same schedule reproduces a byte-identical
// trace.
//
// Sharded engine: the resolved schedule is immutable, so the time-window
// checks (node_down, link windows, spikes) are safe from any worker;
// everything mutable — match counters, injection tallies, the last decode
// error — is kept per shard and aggregated on read, and crash/restart/
// link transitions are queued (by Network::install_faults) as engine
// events on the shard of the affected node.  Note that message-fault
// `nth` counting is therefore per shard under a sharded run; a predicate
// should name endpoints that pin it to one shard (chaos suites run
// unsharded, where counting is global as before).
//
// The injector is itself a Node (record/bump need a Network context) but
// never sends or receives messages; with no injector installed the engine
// hot path pays exactly one null-pointer test per send and per dispatch.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"

namespace vgprs {

class Network;
class Message;

/// Which manipulation to apply to a matched message.
enum class FaultKind : std::uint8_t { kDrop, kDuplicate, kReorder, kCorrupt };

[[nodiscard]] constexpr const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "?";
}

/// Selects in-flight messages.  Empty strings are wildcards.
struct MessagePredicate {
  std::string message;  // exact Message::name() match
  std::string from;     // sender node name
  std::string to;       // receiver node name
  std::uint32_t nth = 1;    // 1-based index of the first affected match
  std::uint32_t count = 1;  // how many consecutive matches to affect
};

struct MessageFault {
  MessagePredicate match;
  FaultKind kind = FaultKind::kDrop;
  /// kReorder: how long the matched message is held back so that later
  /// traffic on the link overtakes it.
  SimDuration reorder_delay = SimDuration::millis(200);
  /// kCorrupt: wire byte to mutate (XOR 0xFF).  -1 picks a byte from the
  /// Network's seeded RNG.
  std::int32_t corrupt_byte = -1;
};

/// The link between nodes `a` and `b` (unordered) is dead for
/// [down_at, up_at).
struct LinkWindow {
  std::string a;
  std::string b;
  SimTime down_at;
  SimTime up_at;
};

/// Traversals of the a<->b link during [from, until) pay `extra` latency.
struct LatencySpike {
  std::string a;
  std::string b;
  SimTime from;
  SimTime until;
  SimDuration extra;
};

/// `node` is down for [crash_at, restart_at); on_restart() fires at
/// restart_at.
struct NodeOutage {
  std::string node;
  SimTime crash_at;
  SimTime restart_at;
};

struct FaultSchedule {
  std::vector<LinkWindow> link_windows;
  std::vector<LatencySpike> latency_spikes;
  std::vector<NodeOutage> node_outages;
  std::vector<MessageFault> message_faults;
};

class FaultInjector final : public Node {
 public:
  /// What Network::send must do with one message (computed by plan_send).
  struct SendPlan {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    std::int32_t corrupt_byte = -1;
    SimDuration extra_delay = SimDuration::zero();
  };

  /// Injection totals, kept raw here and mirrored into the metrics
  /// registry ("fault/injected/*") as they happen.
  struct Counters {
    std::uint64_t link_drops = 0;
    std::uint64_t outage_drops = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reorders = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t latency_spikes = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t decode_errors = 0;  // corruptions the codec rejected
  };

  explicit FaultInjector(FaultSchedule schedule);

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  /// Injection totals summed over shards (sequential runs only have one).
  [[nodiscard]] Counters counters() const;
  /// How many messages matched message_faults[i]'s predicate so far
  /// (whether or not inside the [nth, nth+count) window).
  [[nodiscard]] std::uint32_t matches_seen(std::size_t fault_index) const;
  /// How many times message_faults[i] actually fired.
  [[nodiscard]] std::uint32_t faults_applied(std::size_t fault_index) const;
  /// True while `id` is inside a scheduled outage at time `at`.  Pure read
  /// of the resolved schedule — safe from any shard.
  [[nodiscard]] bool node_down(NodeId id, SimTime at) const;
  /// The codec error produced by the most recent corruption the receiver's
  /// decode rejected (ErrorCode::kNone if none yet; under a sharded run,
  /// the highest-indexed shard with one wins).
  [[nodiscard]] const Error& last_corrupt_error() const;

  void on_message(const Envelope& env) override;
  void on_attached() override;

 private:
  friend class Network;

  /// One scheduled state change, queued by Network::install_faults as an
  /// engine event on the shard owning `target`.
  struct Transition {
    SimTime at;
    std::uint64_t cookie;
    NodeId target;
  };

  /// All crash/restart/link-window transitions in schedule order.
  [[nodiscard]] std::vector<Transition> transitions() const;
  /// Executes one transition (records, counts, fires on_restart).  Runs on
  /// the shard that owns the affected node.
  void transition(std::uint64_t cookie);

  /// Consulted by Network::send after the link lookup.  Applies link
  /// windows, node outages, latency spikes and message faults; records
  /// trace entries and counters (against `shard`) for whatever it injects.
  SendPlan plan_send(SimTime at, const Node& src, const Node& dst,
                     const Message& msg, std::uint32_t shard);
  /// Consulted by Network::dispatch before delivering to `dst`; false
  /// means the destination is mid-outage and the message is lost.
  bool allow_delivery(SimTime at, const Node& src, const Node& dst,
                      const Message& msg, std::uint32_t shard);
  /// A corruption was rejected by the receiving codec (the message is
  /// discarded, as a real checksum failure would).
  void note_corrupt_undecodable(Error error, std::uint32_t shard);

  void record(SimTime at, const std::string& from, const std::string& to,
              std::string what, std::string detail);
  void bump(const char* counter_name, std::uint64_t& raw);

  FaultSchedule schedule_;
  // All mutable bookkeeping is per shard: a worker only ever touches the
  // entry of the shard it is dispatching (index 0 outside sharded runs).
  std::vector<Counters> counters_;
  std::vector<std::vector<std::uint32_t>> seen_;     // [shard][fault]
  std::vector<std::vector<std::uint32_t>> applied_;  // [shard][fault]
  std::vector<Error> last_corrupt_error_;            // [shard]
  // Resolved at attach time; node ids are stable once the topology exists.
  std::vector<NodeId> outage_nodes_;
  std::vector<std::pair<NodeId, NodeId>> window_nodes_;
  std::vector<std::pair<NodeId, NodeId>> spike_nodes_;
};

}  // namespace vgprs
