// Simulated time.  A strong type over integer microseconds: signaling
// budgets in GSM are milliseconds, voice framing is 20 ms, and using a raw
// integer invites unit mistakes between the two.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace vgprs {

class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration micros(std::int64_t us) {
    return SimDuration(us);
  }
  static constexpr SimDuration millis(double ms) {
    return SimDuration(static_cast<std::int64_t>(ms * 1000.0));
  }
  static constexpr SimDuration seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1'000'000.0));
  }
  static constexpr SimDuration zero() { return SimDuration(0); }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double as_millis() const {
    return static_cast<double>(us_) / 1000.0;
  }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1'000'000.0;
  }

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(us_ + o.us_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(us_ - o.us_);
  }
  constexpr SimDuration operator*(std::int64_t k) const {
    return SimDuration(us_ * k);
  }
  constexpr SimDuration operator/(std::int64_t k) const {
    return SimDuration(us_ / k);
  }
  constexpr SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

 private:
  constexpr explicit SimDuration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime origin() { return SimTime(); }
  static constexpr SimTime from_micros(std::int64_t us) { return SimTime(us); }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double as_millis() const {
    return static_cast<double>(us_) / 1000.0;
  }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1'000'000.0;
  }

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(us_ + d.count_micros());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::micros(us_ - o.us_);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace vgprs
