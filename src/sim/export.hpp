// Structured export of observability data:
//  * write_metrics_json   — a MetricsSnapshot as one JSON object;
//  * write_trace_jsonl    — the TraceRecorder as JSON Lines, one delivery
//                           per line (grep/jq-friendly, ring-safe);
//  * write_spans_chrome_trace — spans in Chrome trace_event format
//                           (chrome://tracing / Perfetto: one lane per
//                           span kind, complete "X" events, args carry
//                           correlation / opener / hops / outcome);
//  * write_spans_json     — spans as a plain JSON array (the vgprs_report
//                           per-procedure artifact builds on this);
//  * dump_forensics       — human-readable tail of the trace plus every
//                           still-open span, for failed flow assertions.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/span.hpp"
#include "sim/trace.hpp"

namespace vgprs {

class Network;

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

void write_trace_jsonl(std::ostream& out, const TraceRecorder& trace);

/// Same JSONL schema over a plain entry list (the offline btrace decoder
/// produces one; see sim/btrace.hpp).
void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEntry>& entries);

/// Chrome trace_event JSON ("traceEvents" array).  Spans become complete
/// ("X") events on one thread lane per SpanKind; still-open spans are
/// emitted with zero duration and outcome "open" so leaks are visible in
/// the timeline rather than silently dropped.
void write_spans_chrome_trace(std::ostream& out, const std::vector<Span>& spans,
                              std::string_view process_name = "vgprs-sim");

void write_spans_json(std::ostream& out, const std::vector<Span>& spans);

/// Last `tail` trace entries (oldest-first) + open spans, as plain text.
[[nodiscard]] std::string dump_forensics(const Network& net,
                                         std::size_t tail = 40);

}  // namespace vgprs
