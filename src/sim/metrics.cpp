#include "sim/metrics.hpp"

namespace vgprs {

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& before,
                                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    out.counters[name] = value - (it == before.counters.end() ? 0 : it->second);
  }
  out.gauges = after.gauges;
  out.histograms = after.histograms;
  return out;
}

std::int64_t& MetricsRegistry::counter(std::string_view name) {
  if (!enabled_) return sink_counter_;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

double& MetricsRegistry::gauge(std::string_view name) {
  if (!enabled_) return sink_gauge_;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (!enabled_) return sink_histogram_;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t buckets) {
  if (!enabled_) return sink_histogram_;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram::fixed(lo, hi, buckets))
             .first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters_) out.counters[name] = value;
  for (const auto& [name, value] : gauges_) out.gauges[name] = value;
  for (const auto& [name, h] : histograms_) out.histograms[name] = h.summary();
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counter(name) += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge(name) += value;
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      if (enabled_) histograms_.emplace(name, h);
      continue;
    }
    it->second.merge(h);
  }
  // The sink absorbs merged-in values while disabled; keep it zeroed so a
  // later enable doesn't start from garbage.
  sink_counter_ = 0;
  sink_gauge_ = 0.0;
}

void MetricsRegistry::fold_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counter(name) += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge(name) = value;
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      if (enabled_) histograms_.emplace(name, h);
      continue;
    }
    it->second.merge(h);
  }
  sink_counter_ = 0;
  sink_gauge_ = 0.0;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  sink_counter_ = 0;
  sink_gauge_ = 0.0;
  sink_histogram_.clear();
}

}  // namespace vgprs
