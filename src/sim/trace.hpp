// TraceRecorder captures every message delivery so tests can assert that a
// procedure's message flow matches the paper's figures step by step, and so
// benches can print the flows the way the paper draws them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace vgprs {

struct TraceEntry {
  SimTime at;
  std::string from;
  std::string to;
  std::string message;   // message name
  std::string summary;   // parameter dump
};

/// One expected hop of a message flow: `from --message--> to`.
/// Empty strings act as wildcards.
struct FlowStep {
  std::string from;
  std::string message;
  std::string to;
};

class TraceRecorder {
 public:
  void record(TraceEntry entry) { entries_.push_back(std::move(entry)); }
  void clear() { entries_.clear(); }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Number of deliveries of the named message (any endpoints).
  [[nodiscard]] std::size_t count(std::string_view message) const;

  /// Number of deliveries matching the (possibly wildcarded) step.
  [[nodiscard]] std::size_t count(const FlowStep& step) const;

  /// True if `steps` occur in order as a subsequence of the trace
  /// (other messages may be interleaved — the figures show the principal
  /// messages, not every ack).  On failure returns the index of the first
  /// unmatched step via `failed_step`.
  [[nodiscard]] bool contains_flow(const std::vector<FlowStep>& steps,
                                   std::size_t* failed_step = nullptr) const;

  /// Time of the first delivery of `message`, if any.
  [[nodiscard]] std::optional<SimTime> first_time(
      std::string_view message) const;
  [[nodiscard]] std::optional<SimTime> last_time(
      std::string_view message) const;

  /// Renders the trace as an aligned message-sequence listing.
  [[nodiscard]] std::string to_string(std::size_t max_entries = 200) const;

 private:
  static bool matches(const TraceEntry& e, const FlowStep& s);
  std::vector<TraceEntry> entries_;
};

}  // namespace vgprs
