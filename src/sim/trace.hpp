// TraceRecorder captures every message delivery so tests can assert that a
// procedure's message flow matches the paper's figures step by step, and so
// benches can print the flows the way the paper draws them.
//
// Recording is pay-for-use: the Network only builds a TraceEntry (four
// strings, including the message's parameter summary) when a consumer is
// actually attached.  Three modes:
//   kFull     — every delivery kept, in order (default; what flow tests use)
//   kRing     — only the last N deliveries kept (long soak runs: bounded
//               memory, still a useful post-mortem window)
//   kDisabled — record() is a no-op and enabled() is false, so the hot path
//               skips the entry construction entirely
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace vgprs {

struct TraceEntry {
  SimTime at;
  std::string from;
  std::string to;
  std::string message;   // message name
  std::string summary;   // parameter dump
};

/// One expected hop of a message flow: `from --message--> to`.
/// Empty strings act as wildcards.
struct FlowStep {
  std::string from;
  std::string message;
  std::string to;
};

enum class TraceMode : std::uint8_t { kFull, kRing, kDisabled };

class TraceRecorder {
 public:
  /// Switches recording mode; drops anything already recorded.  A kRing
  /// capacity of 0 is clamped to 1 (0 is the internal "unbounded"
  /// sentinel and would otherwise disable the ring bound entirely).
  void set_mode(TraceMode mode, std::size_t ring_capacity = 256);
  [[nodiscard]] TraceMode mode() const { return mode_; }
  /// True when record() keeps entries — callers building an entry eagerly
  /// (name/summary strings) must check this first.
  [[nodiscard]] bool enabled() const { return mode_ != TraceMode::kDisabled; }

  void record(TraceEntry entry);
  void clear() {
    entries_.clear();
    head_ = 0;
  }

  /// Backing store.  In kFull mode this is the whole trace in delivery
  /// order; in kRing mode use for_each()/to_string(), which linearize.
  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Visits entries oldest-first in any mode.
  template <typename F>
  void for_each(F&& f) const {
    const std::size_t n = entries_.size();
    for (std::size_t i = 0; i < n; ++i) {
      f(entries_[(head_ + i) % n]);
    }
  }

  /// Number of deliveries of the named message (any endpoints).
  [[nodiscard]] std::size_t count(std::string_view message) const;

  /// Number of deliveries matching the (possibly wildcarded) step.
  [[nodiscard]] std::size_t count(const FlowStep& step) const;

  /// True if `steps` occur in order as a subsequence of the trace
  /// (other messages may be interleaved — the figures show the principal
  /// messages, not every ack).  On failure returns the index of the first
  /// unmatched step via `failed_step`.
  [[nodiscard]] bool contains_flow(const std::vector<FlowStep>& steps,
                                   std::size_t* failed_step = nullptr) const;

  /// Time of the first delivery of `message`, if any.
  [[nodiscard]] std::optional<SimTime> first_time(
      std::string_view message) const;
  [[nodiscard]] std::optional<SimTime> last_time(
      std::string_view message) const;

  /// Renders the trace as an aligned message-sequence listing.
  [[nodiscard]] std::string to_string(std::size_t max_entries = 200) const;

 private:
  static bool matches(const TraceEntry& e, const FlowStep& s);
  std::vector<TraceEntry> entries_;
  std::size_t head_ = 0;           // oldest entry (ring mode)
  std::size_t ring_capacity_ = 0;  // 0 = unbounded (full mode)
  TraceMode mode_ = TraceMode::kFull;
};

}  // namespace vgprs
