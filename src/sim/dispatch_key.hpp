// DispatchKey: the total order the sharded engine executes (and replays)
// events in.
//
// Every queued event carries (at, sent_at, seq) where `seq` packs the
// originating shard index into its top bits above a per-shard sequence
// counter.  Lexicographic comparison of that triple is a strict total
// order over all events of a run:
//
//  * `at` orders by simulated time;
//  * `sent_at` (the simulated time the originating dispatch ran) breaks
//    same-time ties the way the sequential engine's global sequence
//    counter does — a send performed earlier in simulated time allocated
//    the smaller global seq, because the counter is monotone in time;
//  * `seq` is unique (origin shard in the top bits, per-shard counter
//    below), so the order is strict even across shards.
//
// Observability records produced *during* one dispatch (trace entries,
// span opens/closes, fault annotations) extend the triple with `sub`, the
// record's ordinal within its dispatch, so a deterministic merge of
// per-shard buffers reproduces the exact sequential recording order.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vgprs {

/// Bit position of the origin-shard index inside Event::seq / DispatchKey
/// ::seq.  Leaves 48 bits of per-shard sequence — enough for ~280 trillion
/// events per shard — and 16 bits of shard index.
inline constexpr unsigned kShardSeqBits = 48;

struct DispatchKey {
  SimTime at;
  SimTime sent_at;
  std::uint64_t seq = 0;  // (origin shard << kShardSeqBits) | per-shard seq
  std::uint32_t sub = 0;  // record ordinal within the dispatch

  friend constexpr bool operator<(const DispatchKey& a, const DispatchKey& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.sub < b.sub;
  }
};

}  // namespace vgprs
