#include "sim/retransmit.hpp"

#include <utility>

#include "sim/network.hpp"

namespace vgprs {

void Retransmitter::schedule(std::uint64_t key, Entry& entry) {
  entry.cookie = kCookieTag | next_cookie_++;
  entry.timer = owner_.net().set_timer(owner_.id(), entry.interval,
                                       entry.cookie);
  keys_[entry.cookie] = key;
}

void Retransmitter::arm(std::uint64_t key, std::function<void()> resend,
                        std::function<void()> give_up) {
  if (auto it = entries_.find(key); it != entries_.end()) {
    owner_.net().cancel_timer(it->second.timer);
    keys_.erase(it->second.cookie);
    entries_.erase(it);
  }
  Entry entry;
  entry.resend = std::move(resend);
  entry.give_up = std::move(give_up);
  entry.interval = policy_.initial;
  entry.remaining = policy_.max_retries;
  schedule(key, entry);
  entries_.emplace(key, std::move(entry));
}

bool Retransmitter::ack(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  owner_.net().cancel_timer(it->second.timer);
  keys_.erase(it->second.cookie);
  entries_.erase(it);
  return true;
}

bool Retransmitter::on_timer(std::uint64_t cookie) {
  if ((cookie & kCookieTag) != kCookieTag) return false;
  auto key_it = keys_.find(cookie);
  if (key_it == keys_.end()) return true;  // stale but still ours
  const std::uint64_t key = key_it->second;
  keys_.erase(key_it);
  auto it = entries_.find(key);
  if (it == entries_.end()) return true;
  Entry& entry = it->second;
  if (entry.remaining <= 0) {
    // Exhausted: run give_up outside the map in case it re-arms this key.
    std::function<void()> give_up = std::move(entry.give_up);
    entries_.erase(it);
    ++give_ups_;
    ++owner_.net().metrics().counter("recovery/give_ups");
    if (give_up) give_up();
    return true;
  }
  --entry.remaining;
  entry.interval = entry.interval * policy_.multiplier;
  if (entry.interval > policy_.max_interval) {
    entry.interval = policy_.max_interval;
  }
  ++retransmits_;
  ++owner_.net().metrics().counter("recovery/retransmits");
  // Resend may (in pathological states) ack or re-arm this key; schedule
  // the next copy first so the entry is consistent when it runs.
  schedule(key, entry);
  std::function<void()> resend = entry.resend;
  if (resend) resend();
  return true;
}

void Retransmitter::reset() {
  for (auto& [key, entry] : entries_) {
    owner_.net().cancel_timer(entry.timer);
  }
  entries_.clear();
  keys_.clear();
}

}  // namespace vgprs
