#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace vgprs {

struct ParallelSweep::Impl {
  explicit Impl(unsigned requested) {
    unsigned n = requested != 0 ? requested
                                : std::max(1u, std::thread::hardware_concurrency());
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(m);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& t : workers) t.join();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t limit = 0;
      {
        std::unique_lock<std::mutex> lock(m);
        cv_work.wait(lock, [&] { return stop || job_id != seen; });
        if (stop) return;
        seen = job_id;
        fn = job_fn;
        limit = job_n;
      }
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= limit) break;
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(m);
          if (!first_error) first_error = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(m);
        if (--working == 0) cv_done.notify_all();
      }
    }
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::unique_lock<std::mutex> lock(m);
    job_fn = &fn;
    job_n = n;
    next.store(0, std::memory_order_relaxed);
    first_error = nullptr;
    working = workers.size();
    ++job_id;
    cv_work.notify_all();
    cv_done.wait(lock, [&] { return working == 0; });
    job_fn = nullptr;
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(std::size_t)>* job_fn = nullptr;
  std::size_t job_n = 0;
  std::atomic<std::size_t> next{0};
  std::uint64_t job_id = 0;
  std::size_t working = 0;
  std::exception_ptr first_error;
  bool stop = false;
};

ParallelSweep::ParallelSweep(unsigned threads)
    : impl_(std::make_unique<Impl>(threads)) {}

ParallelSweep::~ParallelSweep() = default;

unsigned ParallelSweep::threads() const {
  return static_cast<unsigned>(impl_->workers.size());
}

void ParallelSweep::run(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  impl_->run(n, fn);
}

}  // namespace vgprs
