// IpEndpoint: base class for nodes living in the external IP cloud
// (gatekeeper, H.323 terminals, H.323/PSTN gateway).  Owns one IP address,
// registers it with the network's IP routing, and exchanges signaling as
// IpDatagram-encapsulated messages via the IpRouter.
#pragma once

#include <string>

#include "gprs/ip.hpp"
#include "sim/network.hpp"

namespace vgprs {

class IpEndpoint : public Node {
 public:
  IpEndpoint(std::string name, IpAddress ip, std::string router_name)
      : Node(std::move(name)), ip_(ip), router_name_(std::move(router_name)) {}

  [[nodiscard]] IpAddress ip() const { return ip_; }

  void on_attached() override { net().register_ip(ip_, id()); }

  void on_message(const Envelope& env) final;

 protected:
  /// Encapsulates `inner` into an IP datagram and sends it via the router.
  void send_ip(IpAddress dst, const Message& inner);

  /// A datagram addressed to us arrived; `inner` is its decoded payload.
  virtual void on_ip(const IpDatagramInfo& dgram, const Message& inner) = 0;

  /// Non-IP messages (none expected by default).
  virtual void on_other(const Envelope& env);

 private:
  [[nodiscard]] NodeId router() const;

  IpAddress ip_;
  std::string router_name_;
};

}  // namespace vgprs
