#include "h323/messages.hpp"

namespace vgprs {

void register_h323_messages() {
  register_message<RasRrq>();
  register_message<RasRcf>();
  register_message<RasRrj>();
  register_message<RasUrq>();
  register_message<RasUcf>();
  register_message<RasArq>();
  register_message<RasAcf>();
  register_message<RasArj>();
  register_message<RasDrq>();
  register_message<RasDcf>();
  register_message<Q931Setup>();
  register_message<Q931CallProceeding>();
  register_message<Q931Alerting>();
  register_message<Q931Connect>();
  register_message<Q931ReleaseComplete>();
}

}  // namespace vgprs
