#include "h323/terminal.hpp"

#include "common/log.hpp"

namespace vgprs {

namespace {
constexpr std::uint64_t kAnswerKind = 1;
constexpr std::uint64_t kVoiceKind = 3;
constexpr std::uint64_t make_cookie(std::uint64_t kind, std::uint64_t epoch) {
  return (kind << 56) | (epoch & 0x00FFFFFFFFFFFFFFULL);
}
}  // namespace

void H323Terminal::enter(State s) {
  state_ = s;
  ++epoch_;
}

void H323Terminal::register_endpoint() {
  if (state_ != State::kIdle) return;
  enter(State::kRegistering);
  net().spans().open(SpanKind::kRegistration, config_.alias.value(), name(),
                     now());
  auto rrq = pool_message<RasRrq>();
  rrq->call_signal_address = TransportAddress(ip(), config_.signal_port);
  rrq->alias = config_.alias;
  send_ip(config_.gk_ip, *rrq);
  retx_.arm(
      retx_key(RetxKind::kRrq),
      [this] {
        if (state_ != State::kRegistering) return;
        auto again = pool_message<RasRrq>();
        again->call_signal_address =
            TransportAddress(ip(), config_.signal_port);
        again->alias = config_.alias;
        send_ip(config_.gk_ip, *again);
      },
      [this] {
        if (state_ != State::kRegistering) return;
        net().spans().close(SpanKind::kRegistration, config_.alias.value(),
                            SpanOutcome::kTimeout, now());
        enter(State::kIdle);
        if (on_failure) on_failure("registration timed out");
      });
}

void H323Terminal::place_call(Msisdn called) {
  if (state_ != State::kRegistered) {
    if (on_failure) on_failure("place_call while not registered");
    return;
  }
  peer_number_ = called;
  call_ref_ = CallRef((endpoint_id_ << 16) | ++call_seq_);
  enter(State::kArqSent);
  net().spans().open(SpanKind::kOrigination, call_ref_.value(), name(), now());
  auto arq = pool_message<RasArq>();
  arq->endpoint_id = endpoint_id_;
  arq->call_ref = call_ref_;
  arq->calling = config_.alias;
  arq->called = called;
  send_ip(config_.gk_ip, *arq);
  retx_.arm(
      retx_key(RetxKind::kArq),
      [this, called] {
        if (state_ != State::kArqSent) return;
        auto again = pool_message<RasArq>();
        again->endpoint_id = endpoint_id_;
        again->call_ref = call_ref_;
        again->calling = config_.alias;
        again->called = called;
        send_ip(config_.gk_ip, *again);
      },
      [this] {
        if (state_ != State::kArqSent) return;
        net().spans().close(SpanKind::kOrigination, call_ref_.value(),
                            SpanOutcome::kTimeout, now());
        enter(State::kRegistered);
        if (on_failure) on_failure("admission timed out");
        if (on_released) on_released(call_ref_);
      });
}

void H323Terminal::answer() {
  if (state_ != State::kRinging) return;
  auto conn = pool_message<Q931Connect>();
  conn->call_ref = call_ref_;
  conn->media_address = TransportAddress(ip(), config_.media_port);
  send_ip(remote_signal_, *conn);
  enter(State::kConnected);
  if (on_connected) on_connected(call_ref_);
  if (voice_remaining_ > 0) send_voice_frame();
}

void H323Terminal::hangup() {
  if (state_ != State::kConnected && state_ != State::kRingback &&
      state_ != State::kCalling && state_ != State::kRinging) {
    return;
  }
  if (state_ == State::kCalling || state_ == State::kRingback) {
    // Abandoning our own setup before the far end answered.
    net().spans().close(SpanKind::kOrigination, call_ref_.value(),
                        SpanOutcome::kRejected, now());
  }
  auto rel = pool_message<Q931ReleaseComplete>();
  rel->call_ref = call_ref_;
  send_ip(remote_signal_, *rel);
  release_local(call_ref_);
}

void H323Terminal::release_local(CallRef call_ref) {
  // Whatever request was outstanding for this call is moot now.
  retx_.ack(retx_key(RetxKind::kArq));
  retx_.ack(retx_key(RetxKind::kSetup));
  if (config_.disengage_on_release && endpoint_id_ != 0) {
    auto drq = pool_message<RasDrq>();
    drq->endpoint_id = endpoint_id_;
    drq->call_ref = call_ref;
    send_ip(config_.gk_ip, *drq);
  }
  enter(State::kRegistered);
  if (on_released) on_released(call_ref);
}

void H323Terminal::start_voice(std::uint32_t count, SimDuration interval) {
  voice_remaining_ = count;
  voice_interval_ = interval;
  if (state_ == State::kConnected) send_voice_frame();
}

void H323Terminal::send_voice_frame() {
  if (voice_remaining_ == 0 || state_ != State::kConnected ||
      !remote_media_.valid()) {
    return;
  }
  --voice_remaining_;
  auto rtp = pool_message<RtpPacket>();
  rtp->ssrc = endpoint_id_;
  rtp->seq = ++voice_seq_;
  rtp->timestamp = voice_seq_ * 160;  // 20 ms at 8 kHz
  rtp->origin_us = now().count_micros();
  send_ip(remote_media_, *rtp);
  if (voice_remaining_ > 0) {
    set_timer(voice_interval_, make_cookie(kVoiceKind, epoch_));
  }
}

void H323Terminal::on_timer(TimerId, std::uint64_t cookie) {
  if (retx_.on_timer(cookie)) return;
  std::uint64_t kind = cookie >> 56;
  std::uint64_t epoch = cookie & 0x00FFFFFFFFFFFFFFULL;
  if (epoch != epoch_) return;
  if (kind == kAnswerKind && state_ == State::kRinging) answer();
  if (kind == kVoiceKind) send_voice_frame();
}

void H323Terminal::on_ip(const IpDatagramInfo& dgram, const Message& inner) {
  // --- RAS ---------------------------------------------------------------------
  if (const auto* rcf = dynamic_cast<const RasRcf*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kRrq));
    if (state_ != State::kRegistering) return;
    net().spans().close(SpanKind::kRegistration, config_.alias.value(),
                        SpanOutcome::kOk, now());
    endpoint_id_ = rcf->endpoint_id;
    enter(State::kRegistered);
    if (on_registered) on_registered();
    return;
  }
  if (const auto* rrj = dynamic_cast<const RasRrj*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kRrq));
    if (state_ == State::kRegistering) {
      net().spans().close(SpanKind::kRegistration, config_.alias.value(),
                          SpanOutcome::kRejected, now());
      enter(State::kIdle);
      if (on_failure) {
        on_failure("registration rejected, cause " +
                   std::to_string(rrj->cause));
      }
    }
    return;
  }
  if (const auto* acf = dynamic_cast<const RasAcf*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kArq));
    if (state_ == State::kArqSent && acf->call_ref == call_ref_) {
      // Admission granted for our originating call: send Setup.
      remote_signal_ = acf->dest_call_signal_address.ip();
      enter(State::kCalling);
      auto setup = pool_message<Q931Setup>();
      setup->call_ref = call_ref_;
      setup->calling = config_.alias;
      setup->called = peer_number_;
      setup->src_signal_address =
          TransportAddress(ip(), config_.signal_port);
      setup->media_address = TransportAddress(ip(), config_.media_port);
      send_ip(remote_signal_, *setup);
      retx_.arm(
          retx_key(RetxKind::kSetup),
          [this] {
            if (state_ != State::kCalling) return;
            auto again = pool_message<Q931Setup>();
            again->call_ref = call_ref_;
            again->calling = config_.alias;
            again->called = peer_number_;
            again->src_signal_address =
                TransportAddress(ip(), config_.signal_port);
            again->media_address =
                TransportAddress(ip(), config_.media_port);
            send_ip(remote_signal_, *again);
          },
          [this] {
            if (state_ != State::kCalling) return;
            net().spans().close(SpanKind::kOrigination, call_ref_.value(),
                                SpanOutcome::kTimeout, now());
            release_local(call_ref_);
          });
      return;
    }
    if (state_ == State::kIncomingArq && acf->call_ref == call_ref_) {
      // Admission granted for the call we are answering (paper step 2.5):
      // generate local ringing and alert the caller (step 2.6).
      enter(State::kRinging);
      auto alert = pool_message<Q931Alerting>();
      alert->call_ref = call_ref_;
      send_ip(remote_signal_, *alert);
      if (on_incoming) on_incoming(call_ref_, peer_number_);
      if (config_.auto_answer) {
        set_timer(config_.answer_delay, make_cookie(kAnswerKind, epoch_));
      }
      return;
    }
    return;
  }
  if (const auto* arj = dynamic_cast<const RasArj*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kArq));
    if (arj->call_ref != call_ref_) return;
    if (state_ == State::kArqSent) {
      net().spans().close(SpanKind::kOrigination, call_ref_.value(),
                          SpanOutcome::kRejected, now());
      enter(State::kRegistered);
      if (on_failure) {
        on_failure("admission rejected, cause " + std::to_string(arj->cause));
      }
      if (on_released) on_released(arj->call_ref);
      return;
    }
    if (state_ == State::kIncomingArq) {
      // Step 2.5: admission rejected while answering -> release the call.
      auto rel = pool_message<Q931ReleaseComplete>();
      rel->call_ref = call_ref_;
      rel->cause = 47;  // resource unavailable
      send_ip(remote_signal_, *rel);
      enter(State::kRegistered);
      if (on_released) on_released(arj->call_ref);
      return;
    }
    return;
  }
  if (dynamic_cast<const RasDcf*>(&inner) != nullptr) {
    return;  // disengage confirmed
  }

  // --- Q.931 --------------------------------------------------------------------
  if (const auto* setup = dynamic_cast<const Q931Setup*>(&inner)) {
    if (state_ != State::kRegistered) {
      if (setup->call_ref == call_ref_ &&
          setup->src_signal_address.ip() == remote_signal_) {
        // Duplicate Setup for the call we are already handling
        // (retransmission after a lost CallProceeding): re-confirm rather
        // than busy-releasing our own call.
        auto proceed = pool_message<Q931CallProceeding>();
        proceed->call_ref = call_ref_;
        send_ip(remote_signal_, *proceed);
        return;
      }
      auto rel = pool_message<Q931ReleaseComplete>();
      rel->call_ref = setup->call_ref;
      rel->cause = 17;  // busy
      send_ip(setup->src_signal_address.ip(), *rel);
      return;
    }
    call_ref_ = setup->call_ref;
    peer_number_ = setup->calling;
    remote_signal_ = setup->src_signal_address.ip();
    remote_media_ = setup->media_address.ip();
    // Step 2.4: confirm sufficient routing information.
    auto proceed = pool_message<Q931CallProceeding>();
    proceed->call_ref = call_ref_;
    send_ip(remote_signal_, *proceed);
    // Step 2.5: ask the gatekeeper for admission before alerting.
    enter(State::kIncomingArq);
    auto arq = pool_message<RasArq>();
    arq->endpoint_id = endpoint_id_;
    arq->call_ref = call_ref_;
    arq->calling = setup->calling;
    arq->called = config_.alias;
    arq->answer_call = true;
    send_ip(config_.gk_ip, *arq);
    retx_.arm(
        retx_key(RetxKind::kArq),
        [this] {
          if (state_ != State::kIncomingArq) return;
          auto again = pool_message<RasArq>();
          again->endpoint_id = endpoint_id_;
          again->call_ref = call_ref_;
          again->calling = peer_number_;
          again->called = config_.alias;
          again->answer_call = true;
          send_ip(config_.gk_ip, *again);
        },
        [this] {
          if (state_ != State::kIncomingArq) return;
          // No admission decision: clear the incoming leg toward the
          // caller and return to service.
          auto rel = pool_message<Q931ReleaseComplete>();
          rel->call_ref = call_ref_;
          rel->cause = 47;  // resource unavailable
          send_ip(remote_signal_, *rel);
          enter(State::kRegistered);
          if (on_released) on_released(call_ref_);
        });
    return;
  }
  if (dynamic_cast<const Q931CallProceeding*>(&inner) != nullptr) {
    return;
  }
  if (const auto* alert = dynamic_cast<const Q931Alerting*>(&inner)) {
    if (state_ == State::kCalling && alert->call_ref == call_ref_) {
      enter(State::kRingback);
      if (on_ringback) on_ringback(call_ref_);
    }
    return;
  }
  if (const auto* conn = dynamic_cast<const Q931Connect*>(&inner)) {
    if ((state_ == State::kRingback || state_ == State::kCalling) &&
        conn->call_ref == call_ref_) {
      net().spans().close(SpanKind::kOrigination, call_ref_.value(),
                          SpanOutcome::kOk, now());
      remote_media_ = conn->media_address.ip();
      enter(State::kConnected);
      if (on_connected) on_connected(call_ref_);
      if (voice_remaining_ > 0) send_voice_frame();
    }
    return;
  }
  if (const auto* rel = dynamic_cast<const Q931ReleaseComplete*>(&inner)) {
    if (rel->call_ref == call_ref_ && state_ != State::kIdle &&
        state_ != State::kRegistered) {
      if (state_ == State::kCalling || state_ == State::kRingback) {
        // Far end cleared before answering our setup.
        net().spans().close(SpanKind::kOrigination, call_ref_.value(),
                            SpanOutcome::kRejected, now());
      }
      release_local(rel->call_ref);
    }
    return;
  }

  // --- media -----------------------------------------------------------------------
  if (const auto* rtp = dynamic_cast<const RtpPacket*>(&inner)) {
    ++voice_rx_;
    voice_latency_.add(
        SimDuration::micros(now().count_micros() - rtp->origin_us));
    return;
  }

  VG_DEBUG("h323", name() << ": ignoring " << inner.name() << " from "
                          << dgram.src.to_string());
}

}  // namespace vgprs
