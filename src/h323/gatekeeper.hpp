// H.323 Gatekeeper: endpoint registration, E.164 alias -> transport address
// translation, call admission and per-call charging records (paper steps
// 1.4-1.5, 2.3, 3.3, 4.1).  This is a *standard* gatekeeper: it never sees
// an IMSI and never touches MAP — the IMSI-confidentiality property the
// paper argues 3G TR 23.821 violates (the TR baseline subclasses this and
// overrides handle_unknown_alias with HLR/GGSN access).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "h323/ip_endpoint.hpp"
#include "h323/messages.hpp"
#include "sim/subscriber_pool.hpp"
#include "sim/time.hpp"

namespace vgprs {

class Gatekeeper : public IpEndpoint {
 public:
  struct Registration {
    TransportAddress transport;
    std::uint32_t endpoint_id = 0;
  };

  /// Charging record (step 3.3: "the GK records the call statistics").
  struct CallRecord {
    CallRef call_ref;
    Msisdn calling;
    Msisdn called;
    SimTime admitted;
    SimTime disengaged;
    bool open = true;
  };

  Gatekeeper(std::string name, IpAddress ip, std::string router_name)
      : IpEndpoint(std::move(name), ip, std::move(router_name)) {}

  [[nodiscard]] std::size_t registration_count() const {
    return table_.size();
  }
  [[nodiscard]] std::optional<Registration> find_alias(Msisdn alias) const;
  [[nodiscard]] const std::vector<CallRecord>& call_records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t admissions() const { return admissions_; }
  [[nodiscard]] std::uint64_t rejections() const { return rejections_; }
  [[nodiscard]] std::size_t open_calls() const;

  /// Caps concurrent admitted calls (zone call management).  Further
  /// originating ARQs get ARJ with cause resource-unavailable.
  void set_admission_limit(std::size_t limit) { admission_limit_ = limit; }
  void clear_admission_limit() { admission_limit_.reset(); }

  /// Caps total admitted media bandwidth.  Every ARQ — including the
  /// *answering* endpoint's (paper step 2.5) — allocates its requested
  /// bandwidth; exceeding the cap yields ARJ resource-unavailable.
  void set_bandwidth_limit_kbps(std::uint32_t limit) {
    bandwidth_limit_kbps_ = limit;
  }
  [[nodiscard]] std::uint32_t bandwidth_in_use_kbps() const {
    return bandwidth_in_use_kbps_;
  }

 protected:
  void on_ip(const IpDatagramInfo& dgram, const Message& inner) override;

  /// ARQ for an alias absent from the translation table.  The standard
  /// gatekeeper rejects; the TR 23.821 variant resolves via HLR + GGSN.
  virtual void handle_unknown_alias(const RasAdmissionRequestInfo& arq,
                                    IpAddress requester);

  /// Admission decision for a *registered* alias.  The standard gatekeeper
  /// confirms immediately; the TR 23.821 variant must first re-establish
  /// the callee's PDP context via the GGSN.
  virtual void admit(const RasAdmissionRequestInfo& arq, IpAddress requester,
                     const Registration& reg) {
    confirm_admission(arq, requester, reg.transport);
  }

  void confirm_admission(const RasAdmissionRequestInfo& arq,
                         IpAddress requester,
                         TransportAddress dest);
  void reject_admission(const RasAdmissionRequestInfo& arq,
                        IpAddress requester, ArjCause cause);

 private:
  static std::uint64_t grant_key(std::uint32_t call_ref, bool answer) {
    return (std::uint64_t{call_ref} << 1) | (answer ? 1 : 0);
  }

  SubscriberTable<Msisdn, Registration> table_;
  // Charging log, append-only; open calls are indexed by call_ref so DRQ
  // handling and zone-capacity checks never rescan the whole call history
  // (the log grows with every completed call).
  std::vector<CallRecord> records_;
  SubscriberTable<std::uint32_t, std::uint32_t> open_index_;  // -> records_ ix
  std::uint32_t next_endpoint_id_ = 1;
  std::uint64_t admissions_ = 0;
  std::uint64_t rejections_ = 0;
  std::optional<std::size_t> admission_limit_;
  std::optional<std::uint32_t> bandwidth_limit_kbps_;
  std::uint32_t bandwidth_in_use_kbps_ = 0;
  // per-admission bandwidth grants, keyed (call_ref, answer-side)
  SubscriberTable<std::uint64_t, std::uint16_t> grants_;
};

}  // namespace vgprs
