#include "h323/gatekeeper.hpp"

#include "common/log.hpp"

namespace vgprs {

std::optional<Gatekeeper::Registration> Gatekeeper::find_alias(
    Msisdn alias) const {
  const Registration* reg = table_.find(alias);
  if (reg == nullptr) return std::nullopt;
  return *reg;
}

void Gatekeeper::confirm_admission(const RasAdmissionRequestInfo& arq,
                                   IpAddress requester,
                                   TransportAddress dest) {
  ++admissions_;
  grants_[grant_key(arq.call_ref.value(), arq.answer_call)] =
      arq.bandwidth_kbps;
  bandwidth_in_use_kbps_ += arq.bandwidth_kbps;
  if (!arq.answer_call) {
    open_index_[arq.call_ref.value()] =
        static_cast<std::uint32_t>(records_.size());
    records_.push_back(CallRecord{arq.call_ref, arq.calling, arq.called,
                                  now(), SimTime{}, true});
  }
  auto acf = pool_message<RasAcf>();
  acf->call_ref = arq.call_ref;
  acf->dest_call_signal_address = dest;
  send_ip(requester, *acf);
}

void Gatekeeper::reject_admission(const RasAdmissionRequestInfo& arq,
                                  IpAddress requester, ArjCause cause) {
  ++rejections_;
  auto arj = pool_message<RasArj>();
  arj->call_ref = arq.call_ref;
  arj->cause = static_cast<std::uint8_t>(cause);
  send_ip(requester, *arj);
}

void Gatekeeper::handle_unknown_alias(const RasAdmissionRequestInfo& arq,
                                      IpAddress requester) {
  // Standard behaviour: the callee is not in this zone.  The caller falls
  // back to normal PSTN routing (paper, Section 6, Fig. 8 discussion).
  reject_admission(arq, requester, ArjCause::kCalledPartyNotRegistered);
}

std::size_t Gatekeeper::open_calls() const { return open_index_.size(); }

void Gatekeeper::on_ip(const IpDatagramInfo& dgram, const Message& inner) {
  if (const auto* rrq = dynamic_cast<const RasRrq*>(&inner)) {
    Registration& reg = table_[rrq->alias];
    // A new transport address means a new endpoint claiming the alias
    // (e.g. the VMSC after the subscriber re-activated a dynamic PDP
    // context, or a roamer arriving at this zone): issue a fresh endpoint
    // identifier so stale unregistrations cannot evict the newcomer.
    if (reg.endpoint_id == 0 || reg.transport != rrq->call_signal_address) {
      reg.endpoint_id = next_endpoint_id_++;
    }
    reg.transport = rrq->call_signal_address;
    auto rcf = pool_message<RasRcf>();
    rcf->alias = rrq->alias;
    rcf->endpoint_id = reg.endpoint_id;
    send_ip(dgram.src, *rcf);
    return;
  }

  if (const auto* urq = dynamic_cast<const RasUrq*>(&inner)) {
    const Registration* reg = table_.find(urq->alias);
    if (reg != nullptr && reg->endpoint_id == urq->endpoint_id) {
      table_.erase(urq->alias);
    }
    auto ucf = pool_message<RasUcf>();
    ucf->alias = urq->alias;
    ucf->endpoint_id = urq->endpoint_id;
    send_ip(dgram.src, *ucf);
    return;
  }

  if (const auto* arq = dynamic_cast<const RasArq*>(&inner)) {
    if (grants_.contains(grant_key(arq->call_ref.value(), arq->answer_call))) {
      // Duplicate ARQ for a leg already admitted (retransmission after a
      // lost ACF): re-confirm without counting the admission, its
      // bandwidth, or its charging record a second time.
      TransportAddress dest{};
      if (!arq->answer_call) {
        if (auto reg = find_alias(arq->called); reg.has_value()) {
          dest = reg->transport;
        }
      }
      auto acf = pool_message<RasAcf>();
      acf->call_ref = arq->call_ref;
      acf->dest_call_signal_address = dest;
      send_ip(dgram.src, *acf);
      return;
    }
    if (bandwidth_limit_kbps_.has_value() &&
        bandwidth_in_use_kbps_ + arq->bandwidth_kbps >
            *bandwidth_limit_kbps_) {
      // Zone out of media bandwidth: rejects answering endpoints too —
      // the paper's step 2.5 release branch.
      reject_admission(*arq, dgram.src, ArjCause::kResourceUnavailable);
      return;
    }
    if (admission_limit_.has_value()) {
      // Zone capacity check; the answer-side ARQ of an already-admitted
      // call does not count against it twice.
      const std::size_t others =
          open_index_.size() -
          (open_index_.contains(arq->call_ref.value()) ? 1 : 0);
      if (others >= *admission_limit_) {
        reject_admission(*arq, dgram.src, ArjCause::kResourceUnavailable);
        return;
      }
    }
    if (arq->answer_call) {
      // The answering endpoint asks permission; it already holds the call.
      confirm_admission(*arq, dgram.src, TransportAddress{});
      return;
    }
    auto reg = find_alias(arq->called);
    if (!reg.has_value()) {
      handle_unknown_alias(*arq, dgram.src);
      return;
    }
    admit(*arq, dgram.src, *reg);
    return;
  }

  if (const auto* drq = dynamic_cast<const RasDrq*>(&inner)) {
    if (const std::uint32_t* ix = open_index_.find(drq->call_ref.value());
        ix != nullptr) {
      CallRecord& rec = records_[*ix];
      rec.disengaged = now();
      rec.open = false;
      open_index_.erase(drq->call_ref.value());
      // Return both legs' bandwidth grants on call completion.
      for (bool answer : {false, true}) {
        const std::uint64_t gk = grant_key(drq->call_ref.value(), answer);
        if (const std::uint16_t* grant = grants_.find(gk); grant != nullptr) {
          bandwidth_in_use_kbps_ -= *grant;
          grants_.erase(gk);
        }
      }
    }
    auto dcf = pool_message<RasDcf>();
    dcf->endpoint_id = drq->endpoint_id;
    dcf->call_ref = drq->call_ref;
    send_ip(dgram.src, *dcf);
    return;
  }

  VG_WARN("gk", name() << ": unhandled " << inner.name());
}

}  // namespace vgprs
