// H.323 <-> PSTN gateway: terminates ISUP trunks on one side and H.225
// RAS/Q.931 on the other.  This is the entry point of the tromboning
// elimination scenario (Fig. 8): the local telephone company routes a call
// to the gateway, the gateway checks the gatekeeper's translation table,
// and either completes the call locally over VoIP or falls back to normal
// (international) PSTN routing when the callee is not registered.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "h323/ip_endpoint.hpp"
#include "h323/messages.hpp"
#include "pstn/messages.hpp"
#include "voice/rtp.hpp"

namespace vgprs {

class H323Gateway : public IpEndpoint {
 public:
  struct Config {
    IpAddress ip;
    std::uint16_t signal_port = 1720;
    std::uint16_t media_port = 5004;
    Msisdn service_alias;  // the gateway's own E.164 alias
    IpAddress gk_ip;
    std::string router_name;
    std::string pstn_name;           // the switch handing us calls
    std::string fallback_pstn_name;  // where ARJ'd calls are re-routed
  };

  H323Gateway(std::string name, Config config)
      : IpEndpoint(std::move(name), config.ip, config.router_name),
        config_(std::move(config)) {}

  /// Registers the gateway endpoint with the gatekeeper.
  void register_endpoint();

  [[nodiscard]] bool registered() const { return endpoint_id_ != 0; }
  [[nodiscard]] std::uint64_t calls_completed_voip() const {
    return voip_calls_;
  }
  [[nodiscard]] std::uint64_t calls_fallback_pstn() const {
    return fallback_calls_;
  }

  void on_message_unused();  // silences unused warnings in some builds

 protected:
  void on_ip(const IpDatagramInfo& dgram, const Message& inner) override;
  void on_other(const Envelope& env) override;

 private:
  struct Call {
    Cic cic = 0;
    NodeId trunk_peer;     // PSTN side
    Msisdn calling;
    Msisdn called;
    IpAddress remote_signal;
    IpAddress remote_media;
    bool voip = false;     // completed over H.323 (vs PSTN fallback transit)
  };

  [[nodiscard]] NodeId pstn() const;
  [[nodiscard]] NodeId fallback() const;
  Call* call_by_cic(Cic cic);
  Call* call_by_ref(CallRef ref);

  Config config_;
  std::uint32_t endpoint_id_ = 0;
  std::uint32_t call_seq_ = 0;
  struct TransitLeg {
    NodeId upstream;
    Cic up_cic = 0;
    NodeId downstream;
    Cic down_cic = 0;
  };

  /// Relays an ISUP message along a fallback transit leg, translating the
  /// circuit identification code between the incoming and outgoing trunks.
  template <typename M>
  bool relay_transit(const Envelope& env, const M& m) {
    auto it = transit_index_.find(m.cic);
    if (it == transit_index_.end()) return false;
    TransitLeg& leg = transit_legs_[it->second];
    auto out = pool_message<M>(static_cast<const M&>(m));
    if (env.from == leg.upstream && m.cic == leg.up_cic) {
      out->cic = leg.down_cic;
      send(leg.downstream, std::move(out));
    } else {
      out->cic = leg.up_cic;
      send(leg.upstream, std::move(out));
    }
    return true;
  }

  std::unordered_map<CallRef, Call> calls_;
  std::unordered_map<Cic, CallRef> by_cic_;
  std::vector<TransitLeg> transit_legs_;  // PSTN fallback legs
  std::unordered_map<Cic, std::size_t> transit_index_;
  std::uint64_t voip_calls_ = 0;
  std::uint64_t fallback_calls_ = 0;
};

}  // namespace vgprs
