// H.225.0 message catalog: RAS (registration, admission, status — the
// gatekeeper protocol) and Q.931-based call signaling (H.225.0 call
// control).  Wire ranges: RAS 0x07xx, Q.931 0x08xx.
#pragma once

#include "common/ids.hpp"
#include "sim/proto.hpp"

namespace vgprs {

// --- RAS payloads -------------------------------------------------------------

struct RasRegistrationRequestInfo {
  TransportAddress call_signal_address;
  Msisdn alias;  // E.164 alias: the subscriber's MSISDN

  void encode(ByteWriter& w) const {
    w.transport(call_signal_address);
    w.msisdn(alias);
  }
  Status decode(ByteReader& r) {
    call_signal_address = r.transport();
    alias = r.msisdn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + alias.to_string() + " @ " +
           call_signal_address.to_string() + "}";
  }
};

struct RasRegistrationConfirmInfo {
  Msisdn alias;
  std::uint32_t endpoint_id = 0;

  void encode(ByteWriter& w) const {
    w.msisdn(alias);
    w.u32(endpoint_id);
  }
  Status decode(ByteReader& r) {
    alias = r.msisdn();
    endpoint_id = r.u32();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + alias.to_string() + " ep=" + std::to_string(endpoint_id) +
           "}";
  }
};

struct RasRejectInfo {
  Msisdn alias;
  CallRef call_ref;
  std::uint8_t cause = 0;

  void encode(ByteWriter& w) const {
    w.msisdn(alias);
    w.call_ref(call_ref);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    alias = r.msisdn();
    call_ref = r.call_ref();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{cause=" + std::to_string(cause) + "}";
  }
};

struct RasAdmissionRequestInfo {
  std::uint32_t endpoint_id = 0;
  CallRef call_ref;
  Msisdn calling;
  Msisdn called;
  bool answer_call = false;  // true when the *answering* endpoint asks
  std::uint16_t bandwidth_kbps = 64;  // requested media bandwidth

  void encode(ByteWriter& w) const {
    w.u32(endpoint_id);
    w.call_ref(call_ref);
    w.msisdn(calling);
    w.msisdn(called);
    w.boolean(answer_call);
    w.u16(bandwidth_kbps);
  }
  Status decode(ByteReader& r) {
    endpoint_id = r.u32();
    call_ref = r.call_ref();
    calling = r.msisdn();
    called = r.msisdn();
    answer_call = r.boolean();
    bandwidth_kbps = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + " -> " + called.to_string() +
           (answer_call ? " answer" : "") + "}";
  }
};

struct RasAdmissionConfirmInfo {
  CallRef call_ref;
  TransportAddress dest_call_signal_address;
  std::uint16_t bandwidth_kbps = 64;

  void encode(ByteWriter& w) const {
    w.call_ref(call_ref);
    w.transport(dest_call_signal_address);
    w.u16(bandwidth_kbps);
  }
  Status decode(ByteReader& r) {
    call_ref = r.call_ref();
    dest_call_signal_address = r.transport();
    bandwidth_kbps = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + " dest=" +
           dest_call_signal_address.to_string() + "}";
  }
};

struct RasDisengageInfo {
  std::uint32_t endpoint_id = 0;
  CallRef call_ref;

  void encode(ByteWriter& w) const {
    w.u32(endpoint_id);
    w.call_ref(call_ref);
  }
  Status decode(ByteReader& r) {
    endpoint_id = r.u32();
    call_ref = r.call_ref();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + "}";
  }
};

// --- Q.931 / H.225.0 call signaling payloads --------------------------------------

struct Q931SetupInfo {
  CallRef call_ref;
  Msisdn calling;
  Msisdn called;
  TransportAddress src_signal_address;  // answer path for Q.931 responses
  TransportAddress media_address;       // caller's RTP sink

  void encode(ByteWriter& w) const {
    w.call_ref(call_ref);
    w.msisdn(calling);
    w.msisdn(called);
    w.transport(src_signal_address);
    w.transport(media_address);
  }
  Status decode(ByteReader& r) {
    call_ref = r.call_ref();
    calling = r.msisdn();
    called = r.msisdn();
    src_signal_address = r.transport();
    media_address = r.transport();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + " " + calling.to_string() + " -> " +
           called.to_string() + "}";
  }
};

struct Q931CallRefInfo {
  CallRef call_ref;

  void encode(ByteWriter& w) const { w.call_ref(call_ref); }
  Status decode(ByteReader& r) {
    call_ref = r.call_ref();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + "}";
  }
};

struct Q931ConnectInfo {
  CallRef call_ref;
  TransportAddress media_address;  // callee's RTP sink

  void encode(ByteWriter& w) const {
    w.call_ref(call_ref);
    w.transport(media_address);
  }
  Status decode(ByteReader& r) {
    call_ref = r.call_ref();
    media_address = r.transport();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + "}";
  }
};

struct Q931ReleaseInfo {
  CallRef call_ref;
  std::uint8_t cause = 16;

  void encode(ByteWriter& w) const {
    w.call_ref(call_ref);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    call_ref = r.call_ref();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() +
           " cause=" + std::to_string(cause) + "}";
  }
};

// --- aliases -------------------------------------------------------------------------

using RasRrq =
    ProtoMessage<RasRegistrationRequestInfo, 0x0701, "RAS_RRQ">;
using RasRcf =
    ProtoMessage<RasRegistrationConfirmInfo, 0x0702, "RAS_RCF">;
using RasRrj = ProtoMessage<RasRejectInfo, 0x0703, "RAS_RRJ">;
using RasUrq =
    ProtoMessage<RasRegistrationConfirmInfo, 0x0704, "RAS_URQ">;
using RasUcf =
    ProtoMessage<RasRegistrationConfirmInfo, 0x0705, "RAS_UCF">;
using RasArq = ProtoMessage<RasAdmissionRequestInfo, 0x0706, "RAS_ARQ">;
using RasAcf = ProtoMessage<RasAdmissionConfirmInfo, 0x0707, "RAS_ACF">;
using RasArj = ProtoMessage<RasRejectInfo, 0x0708, "RAS_ARJ">;
using RasDrq = ProtoMessage<RasDisengageInfo, 0x0709, "RAS_DRQ">;
using RasDcf = ProtoMessage<RasDisengageInfo, 0x070A, "RAS_DCF">;

using Q931Setup = ProtoMessage<Q931SetupInfo, 0x0801, "Q931_Setup">;
using Q931CallProceeding =
    ProtoMessage<Q931CallRefInfo, 0x0802, "Q931_Call_Proceeding">;
using Q931Alerting = ProtoMessage<Q931CallRefInfo, 0x0803, "Q931_Alerting">;
using Q931Connect = ProtoMessage<Q931ConnectInfo, 0x0804, "Q931_Connect">;
using Q931ReleaseComplete =
    ProtoMessage<Q931ReleaseInfo, 0x0805, "Q931_Release_Complete">;

/// RAS ARJ causes.
enum class ArjCause : std::uint8_t {
  kCalledPartyNotRegistered = 2,
  kResourceUnavailable = 3,
  kCallerNotRegistered = 4,
};

void register_h323_messages();

}  // namespace vgprs
