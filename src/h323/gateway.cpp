#include "h323/gateway.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

void H323Gateway::on_message_unused() {}

NodeId H323Gateway::pstn() const {
  Node* n = net().node_by_name(config_.pstn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no PSTN switch");
  return n->id();
}

NodeId H323Gateway::fallback() const {
  Node* n = net().node_by_name(config_.fallback_pstn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no fallback switch");
  return n->id();
}

H323Gateway::Call* H323Gateway::call_by_cic(Cic cic) {
  auto it = by_cic_.find(cic);
  return it == by_cic_.end() ? nullptr : call_by_ref(it->second);
}

H323Gateway::Call* H323Gateway::call_by_ref(CallRef ref) {
  auto it = calls_.find(ref);
  return it == calls_.end() ? nullptr : &it->second;
}

void H323Gateway::register_endpoint() {
  auto rrq = pool_message<RasRrq>();
  rrq->call_signal_address = TransportAddress(ip(), config_.signal_port);
  rrq->alias = config_.service_alias;
  send_ip(config_.gk_ip, *rrq);
}

// --- PSTN side -----------------------------------------------------------------

void H323Gateway::on_other(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* iam = dynamic_cast<const IsupIam*>(&msg)) {
    // A call entered from the PSTN (Fig. 8, step (1)).  Check with the
    // gatekeeper whether the callee is reachable over VoIP (step (2)).
    CallRef ref(0x60000000u | ++call_seq_);
    Call& call = calls_[ref];
    call.cic = iam->cic;
    call.trunk_peer = env.from;
    call.calling = iam->calling;
    call.called = iam->called;
    by_cic_[iam->cic] = ref;
    auto arq = pool_message<RasArq>();
    arq->endpoint_id = endpoint_id_;
    arq->call_ref = ref;
    arq->calling = iam->calling;
    arq->called = iam->called;
    send_ip(config_.gk_ip, *arq);
    return;
  }

  if (const auto* acm = dynamic_cast<const IsupAcm*>(&msg)) {
    relay_transit(env, *acm);
    return;
  }
  if (const auto* anm = dynamic_cast<const IsupAnm*>(&msg)) {
    relay_transit(env, *anm);
    return;
  }
  if (const auto* rel = dynamic_cast<const IsupRel*>(&msg)) {
    if (relay_transit(env, *rel)) return;
    // Caller hung up a VoIP-completed call: release the H.323 leg.
    Call* call = call_by_cic(rel->cic);
    if (call != nullptr) {
      auto q_rel = pool_message<Q931ReleaseComplete>();
      auto ref = by_cic_[rel->cic];
      q_rel->call_ref = ref;
      q_rel->cause = rel->cause;
      send_ip(call->remote_signal, *q_rel);
      auto drq = pool_message<RasDrq>();
      drq->endpoint_id = endpoint_id_;
      drq->call_ref = ref;
      send_ip(config_.gk_ip, *drq);
      auto rlc = pool_message<IsupRlc>();
      rlc->cic = rel->cic;
      send(env.from, std::move(rlc));
      by_cic_.erase(rel->cic);
      calls_.erase(ref);
    }
    return;
  }
  if (const auto* rlc = dynamic_cast<const IsupRlc*>(&msg)) {
    if (relay_transit(env, *rlc)) {
      auto it = transit_index_.find(rlc->cic);
      if (it != transit_index_.end()) {
        const TransitLeg& leg = transit_legs_[it->second];
        Cic in_cic = leg.up_cic;
        transit_index_.erase(leg.down_cic);
        transit_index_.erase(leg.up_cic);
        auto ref = by_cic_.find(in_cic);
        if (ref != by_cic_.end()) {
          calls_.erase(ref->second);
          by_cic_.erase(ref);
        }
      }
    }
    return;
  }
  if (const auto* voice = dynamic_cast<const TrunkVoice*>(&msg)) {
    if (relay_transit(env, *voice)) return;
    Call* call = call_by_cic(voice->cic);
    if (call != nullptr && call->remote_media.valid()) {
      auto rtp = pool_message<RtpPacket>();
      rtp->ssrc = endpoint_id_;
      rtp->seq = voice->seq;
      rtp->origin_us = voice->origin_us;
      send_ip(call->remote_media, *rtp);
    }
    return;
  }

  VG_WARN("gw", name() << ": unhandled " << msg.name());
}

// --- IP side --------------------------------------------------------------------

void H323Gateway::on_ip(const IpDatagramInfo& dgram, const Message& inner) {
  if (const auto* rcf = dynamic_cast<const RasRcf*>(&inner)) {
    endpoint_id_ = rcf->endpoint_id;
    return;
  }

  if (const auto* acf = dynamic_cast<const RasAcf*>(&inner)) {
    Call* call = call_by_ref(acf->call_ref);
    if (call == nullptr) return;
    // Callee found in the gatekeeper's table: complete over VoIP
    // (Fig. 8 step (3)).
    call->voip = true;
    ++voip_calls_;
    call->remote_signal = acf->dest_call_signal_address.ip();
    auto setup = pool_message<Q931Setup>();
    setup->call_ref = acf->call_ref;
    setup->calling = call->calling;
    setup->called = call->called;
    setup->src_signal_address = TransportAddress(ip(), config_.signal_port);
    setup->media_address = TransportAddress(ip(), config_.media_port);
    send_ip(call->remote_signal, *setup);
    return;
  }

  if (const auto* arj = dynamic_cast<const RasArj*>(&inner)) {
    Call* call = call_by_ref(arj->call_ref);
    if (call == nullptr) return;
    // Callee not registered in this zone: instruct normal PSTN routing
    // (Fig. 8 discussion -> international trunk), with a fresh circuit on
    // the outgoing trunk.
    ++fallback_calls_;
    Cic out_cic = allocate_cic();
    transit_legs_.push_back(
        TransitLeg{call->trunk_peer, call->cic, fallback(), out_cic});
    transit_index_[call->cic] = transit_legs_.size() - 1;
    transit_index_[out_cic] = transit_legs_.size() - 1;
    auto iam = pool_message<IsupIam>();
    iam->cic = out_cic;
    iam->calling = call->calling;
    iam->called = call->called;
    send(fallback(), std::move(iam));
    return;
  }

  if (dynamic_cast<const Q931CallProceeding*>(&inner) != nullptr) {
    return;
  }
  if (const auto* alert = dynamic_cast<const Q931Alerting*>(&inner)) {
    Call* call = call_by_ref(alert->call_ref);
    if (call == nullptr) return;
    auto acm = pool_message<IsupAcm>();
    acm->cic = call->cic;
    send(call->trunk_peer, std::move(acm));
    return;
  }
  if (const auto* conn = dynamic_cast<const Q931Connect*>(&inner)) {
    Call* call = call_by_ref(conn->call_ref);
    if (call == nullptr) return;
    call->remote_media = conn->media_address.ip();
    auto anm = pool_message<IsupAnm>();
    anm->cic = call->cic;
    send(call->trunk_peer, std::move(anm));
    return;
  }
  if (const auto* rel = dynamic_cast<const Q931ReleaseComplete*>(&inner)) {
    Call* call = call_by_ref(rel->call_ref);
    if (call == nullptr) return;
    auto isup_rel = pool_message<IsupRel>();
    isup_rel->cic = call->cic;
    isup_rel->cause = rel->cause;
    send(call->trunk_peer, std::move(isup_rel));
    auto drq = pool_message<RasDrq>();
    drq->endpoint_id = endpoint_id_;
    drq->call_ref = rel->call_ref;
    send_ip(config_.gk_ip, *drq);
    by_cic_.erase(call->cic);
    calls_.erase(rel->call_ref);
    return;
  }
  if (dynamic_cast<const RasDcf*>(&inner) != nullptr) {
    return;
  }
  if (const auto* rtp = dynamic_cast<const RtpPacket*>(&inner)) {
    // Media from the VoIP leg toward the PSTN caller.
    for (auto& [ref, call] : calls_) {
      (void)ref;
      if (call.remote_media == dgram.src || call.voip) {
        auto voice = pool_message<TrunkVoice>();
        voice->cic = call.cic;
        voice->seq = rtp->seq;
        voice->origin_us = rtp->origin_us;
        send(call.trunk_peer, std::move(voice));
        return;
      }
    }
    return;
  }

  VG_WARN("gw", name() << ": unhandled " << inner.name());
}

}  // namespace vgprs
