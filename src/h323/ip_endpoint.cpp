#include "h323/ip_endpoint.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

NodeId IpEndpoint::router() const {
  Node* n = net().node_by_name(router_name_);
  if (n == nullptr) throw std::logic_error(name() + ": no router");
  return n->id();
}

void IpEndpoint::send_ip(IpAddress dst, const Message& inner) {
  send(router(), make_ip_datagram(ip_, dst, inner));
}

void IpEndpoint::on_other(const Envelope& env) {
  VG_WARN("ip-endpoint", name() << ": unexpected " << env.msg->name());
}

void IpEndpoint::on_message(const Envelope& env) {
  const auto* dgram = dynamic_cast<const IpDatagram*>(env.msg.get());
  if (dgram == nullptr) {
    on_other(env);
    return;
  }
  auto inner = ip_payload(*dgram);
  if (!inner.ok()) {
    VG_WARN("ip-endpoint", name() << ": undecodable payload from "
                                  << dgram->src.to_string() << ": "
                                  << inner.error().to_string());
    return;
  }
  on_ip(*dgram, *inner.value());
}

}  // namespace vgprs
