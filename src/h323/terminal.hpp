// H323Terminal: a native H.323 endpoint in the external VoIP network — the
// far end of the paper's call origination (Fig. 5) and the caller of the
// call termination flow (Fig. 6).  Implements RAS registration, Q.931 call
// control in both directions and RTP media with latency probes.
#pragma once

#include <functional>
#include <string>

#include "h323/ip_endpoint.hpp"
#include "h323/messages.hpp"
#include "sim/retransmit.hpp"
#include "sim/stats.hpp"
#include "voice/rtp.hpp"

namespace vgprs {

class H323Terminal : public IpEndpoint {
 public:
  struct Config {
    IpAddress ip;
    std::uint16_t signal_port = 1720;
    std::uint16_t media_port = 5004;
    Msisdn alias;
    IpAddress gk_ip;
    std::string router_name;
    bool auto_answer = true;
    SimDuration answer_delay = SimDuration::millis(800);
    bool disengage_on_release = true;  // step 3.3: DRQ at call end
  };

  enum class State {
    kIdle,
    kRegistering,
    kRegistered,
    kArqSent,     // MO: admission requested
    kCalling,     // MO: Setup sent
    kRingback,    // MO: far end alerting
    kIncomingArq, // MT: admission requested before alerting
    kRinging,     // MT: alerting locally
    kConnected,
  };

  H323Terminal(std::string name, Config config)
      : IpEndpoint(std::move(name), config.ip, config.router_name),
        config_(std::move(config)) {}

  // --- user API ---------------------------------------------------------------
  void register_endpoint();
  void place_call(Msisdn called);
  void answer();
  void hangup();
  void start_voice(std::uint32_t count,
                   SimDuration interval = SimDuration::millis(20));

  // --- introspection -------------------------------------------------------------
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] CallRef call_ref() const { return call_ref_; }
  [[nodiscard]] std::uint32_t endpoint_id() const { return endpoint_id_; }
  [[nodiscard]] const Histogram& voice_latency() const {
    return voice_latency_;
  }
  [[nodiscard]] std::uint32_t voice_frames_received() const {
    return voice_rx_;
  }

  // --- hooks --------------------------------------------------------------------
  std::function<void()> on_registered;
  std::function<void(CallRef, Msisdn)> on_incoming;
  std::function<void(CallRef)> on_ringback;
  std::function<void(CallRef)> on_connected;
  std::function<void(CallRef)> on_released;
  std::function<void(std::string)> on_failure;

  void on_timer(TimerId id, std::uint64_t cookie) override;

 protected:
  void on_ip(const IpDatagramInfo& dgram, const Message& inner) override;

 private:
  /// Keys for the terminal's own request–response exchanges.
  enum class RetxKind : std::uint64_t { kRrq = 1, kArq = 2, kSetup = 3 };
  static std::uint64_t retx_key(RetxKind kind) {
    return static_cast<std::uint64_t>(kind);
  }

  void enter(State s);
  void send_voice_frame();
  void release_local(CallRef call_ref);

  Config config_;
  Retransmitter retx_{*this};
  State state_ = State::kIdle;
  std::uint32_t endpoint_id_ = 0;
  CallRef call_ref_;
  Msisdn peer_number_;
  IpAddress remote_signal_;
  IpAddress remote_media_;
  std::uint32_t call_seq_ = 0;
  std::uint64_t epoch_ = 0;

  std::uint32_t voice_remaining_ = 0;
  std::uint32_t voice_seq_ = 0;
  std::uint32_t voice_rx_ = 0;
  SimDuration voice_interval_ = SimDuration::millis(20);
  Histogram voice_latency_;
};

}  // namespace vgprs
