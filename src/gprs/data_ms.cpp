#include "gprs/data_ms.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

void register_data_messages() { register_message<DataPing>(); }

NodeId GprsDataMs::sgsn() const {
  Node* n = net().node_by_name(config_.sgsn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no SGSN");
  return n->id();
}

void GprsDataMs::power_on() {
  if (state_ != State::kDetached) return;
  state_ = State::kAttaching;
  auto attach = pool_message<GprsAttachRequest>();
  attach->imsi = config_.imsi;
  send(sgsn(), std::move(attach));
}

void GprsDataMs::start_pings(IpAddress server, std::uint32_t count,
                             SimDuration interval) {
  server_ = server;
  pings_remaining_ = count;
  ping_interval_ = interval;
  if (state_ == State::kOnline) send_ping();
}

void GprsDataMs::send_ping() {
  if (pings_remaining_ == 0 || state_ != State::kOnline) return;
  --pings_remaining_;
  DataPing ping;
  ping.seq = ++ping_seq_;
  ping.origin_us = now().count_micros();
  auto dgram = make_ip_datagram(address_, server_, ping);
  auto frame = pool_message<GbUnitData>();
  frame->imsi = config_.imsi;
  frame->payload = dgram->encode();
  send(sgsn(), std::move(frame));
  if (pings_remaining_ > 0) set_timer(ping_interval_);
}

void GprsDataMs::on_timer(TimerId, std::uint64_t) { send_ping(); }

void GprsDataMs::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (dynamic_cast<const GprsAttachAccept*>(&msg) != nullptr) {
    if (state_ != State::kAttaching) return;
    state_ = State::kActivating;
    auto req = pool_message<ActivatePdpContextRequest>();
    req->imsi = config_.imsi;
    req->nsapi = Nsapi(5);
    req->qos = config_.qos;
    req->apn = "internet";
    send(sgsn(), std::move(req));
    return;
  }
  if (dynamic_cast<const GprsAttachReject*>(&msg) != nullptr) {
    state_ = State::kDetached;
    return;
  }
  if (const auto* acc = dynamic_cast<const ActivatePdpContextAccept*>(&msg)) {
    if (state_ != State::kActivating) return;
    address_ = acc->address;
    state_ = State::kOnline;
    if (on_online) on_online();
    if (pings_remaining_ > 0) send_ping();
    return;
  }
  if (dynamic_cast<const ActivatePdpContextReject*>(&msg) != nullptr) {
    // Without this the MS wedged in kActivating forever: attached but
    // never online, and a later power_on() refused to restart the attach.
    if (state_ == State::kActivating) state_ = State::kDetached;
    return;
  }
  if (dynamic_cast<const GprsDetachRequest*>(&msg) != nullptr) {
    // Network-initiated detach (e.g. SGSN restart recovery).
    if (state_ == State::kOnline) state_ = State::kDetached;
    return;
  }
  if (const auto* frame = dynamic_cast<const GbUnitData*>(&msg)) {
    auto decoded = MessageRegistry::instance().decode(frame->payload);
    if (!decoded.ok()) return;
    const auto* dgram =
        dynamic_cast<const IpDatagram*>(decoded.value().get());
    if (dgram == nullptr) return;
    auto inner = ip_payload(*dgram);
    if (!inner.ok()) return;
    if (const auto* ping = dynamic_cast<const DataPing*>(inner.value().get());
        ping != nullptr && ping->response) {
      ++echoes_;
      rtt_.add(SimDuration::micros(now().count_micros() - ping->origin_us));
    }
    return;
  }

  VG_DEBUG("data-ms", name() << ": ignoring " << msg.name());
}

void EchoServer::on_message(const Envelope& env) {
  const auto* dgram = dynamic_cast<const IpDatagram*>(env.msg.get());
  if (dgram == nullptr) return;
  auto inner = ip_payload(*dgram);
  if (!inner.ok()) return;
  const auto* ping = dynamic_cast<const DataPing*>(inner.value().get());
  if (ping == nullptr || ping->response) return;
  ++served_;
  DataPing echo = *ping;
  echo.response = true;
  Node* router = net().node_by_name(router_name_);
  if (router == nullptr) return;
  send(router->id(), make_ip_datagram(ip_, dgram->src, echo));
}

}  // namespace vgprs
