// Gateway GPRS Support Node: anchors PDP contexts, allocates dynamic PDP
// addresses, tunnels user traffic to/from the serving SGSN over GTP, and
// interworks with the external IP network on the Gi interface.  Also
// implements the network-initiated activation path (PDU notification) the
// 3G TR 23.821 baseline needs for terminating calls, including the Gc-style
// HLR query for the serving SGSN.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "gprs/ip.hpp"
#include "gprs/messages.hpp"
#include "gsm/messages.hpp"
#include "sim/network.hpp"

namespace vgprs {

class Ggsn final : public Node {
 public:
  struct Config {
    std::string router_name;  // Gi-side IP cloud
    std::string hlr_name;
    IpAddress ggsn_address = IpAddress(10, 0, 0, 1);  // control address
    IpAddress dynamic_pool_base = IpAddress(10, 1, 0, 0);
  };

  struct PdpContext {
    Imsi imsi;
    Nsapi nsapi;
    IpAddress address;
    TunnelId ggsn_teid;  // uplink endpoint here
    TunnelId sgsn_teid;  // downlink endpoint at the SGSN
    NodeId sgsn;
    QosProfile qos;
  };

  Ggsn(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  /// Provisions a static PDP address for a subscriber (required by the
  /// TR 23.821 network-initiated activation; see Section 6 of the paper).
  void provision_static(Imsi imsi, IpAddress address);

  [[nodiscard]] std::size_t pdp_context_count() const {
    return contexts_.size();
  }
  [[nodiscard]] const PdpContext* context_by_address(IpAddress address) const;
  [[nodiscard]] std::uint64_t pdus_forwarded() const {
    return pdus_forwarded_;
  }

  void on_attached() override;
  void on_message(const Envelope& env) override;

 private:
  static std::uint64_t key(Imsi imsi, Nsapi nsapi) {
    return (imsi.value() << 4) | nsapi.value();
  }
  [[nodiscard]] NodeId router() const;
  [[nodiscard]] NodeId hlr() const;
  void handle_control(const IpDatagramInfo& dgram);

  Config config_;
  std::unordered_map<std::uint64_t, PdpContext> contexts_;
  std::unordered_map<IpAddress, std::uint64_t> by_address_;
  std::unordered_map<std::uint32_t, std::uint64_t> by_teid_;
  std::unordered_map<Imsi, IpAddress> static_addresses_;
  // pending TR 23.821 activation requests: imsi -> requester control address
  std::unordered_map<Imsi, IpAddress> pending_activations_;
  std::uint32_t next_teid_ = 0x8000;
  std::uint32_t next_dynamic_ = 1;
  std::uint64_t pdus_forwarded_ = 0;
};

}  // namespace vgprs
