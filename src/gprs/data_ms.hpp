// GprsDataMs: a plain packet-data GPRS mobile — the Fig. 2(b) *data* path
// (1)(2)(3)(4): MS -> BSS/PCU -> SGSN -> GGSN -> PSDN.  No voice, no
// H.323; it attaches, activates a PDP context and exchanges IP datagrams
// with external hosts.  Its presence alongside vGPRS voice traffic shows
// both services sharing the same GPRS core unchanged.
#pragma once

#include <functional>
#include <string>

#include "gprs/ip.hpp"
#include "gprs/messages.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace vgprs {

/// Simple application payload rode by the data MS (echo request/response).
struct DataPingInfo {
  std::uint32_t seq = 0;
  std::int64_t origin_us = 0;
  bool response = false;
  std::uint16_t payload_bytes = 512;

  void encode(ByteWriter& w) const {
    w.u32(seq);
    w.u64(static_cast<std::uint64_t>(origin_us));
    w.boolean(response);
    w.u16(payload_bytes);
  }
  Status decode(ByteReader& r) {
    seq = r.u32();
    origin_us = static_cast<std::int64_t>(r.u64());
    response = r.boolean();
    payload_bytes = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return std::string("{#") + std::to_string(seq) +
           (response ? " echo" : "") + "}";
  }
};

using DataPing = ProtoMessage<DataPingInfo, 0x0630, "Data_Ping">;

class GprsDataMs final : public Node {
 public:
  struct Config {
    Imsi imsi;
    std::string sgsn_name;
    QosProfile qos{QosClass::kInteractive, 64, 2};
  };

  enum class State { kDetached, kAttaching, kActivating, kOnline };

  GprsDataMs(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  void power_on();
  /// Sends `count` echo requests to `server`, spaced by `interval`.
  void start_pings(IpAddress server, std::uint32_t count,
                   SimDuration interval = SimDuration::millis(100));

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] IpAddress address() const { return address_; }
  [[nodiscard]] std::uint32_t echoes_received() const { return echoes_; }
  [[nodiscard]] const Histogram& rtt() const { return rtt_; }

  std::function<void()> on_online;

  void on_message(const Envelope& env) override;
  void on_timer(TimerId id, std::uint64_t cookie) override;

 private:
  [[nodiscard]] NodeId sgsn() const;
  void send_ping();

  Config config_;
  State state_ = State::kDetached;
  IpAddress address_;
  IpAddress server_;
  std::uint32_t pings_remaining_ = 0;
  std::uint32_t ping_seq_ = 0;
  std::uint32_t echoes_ = 0;
  SimDuration ping_interval_ = SimDuration::millis(100);
  Histogram rtt_;
};

/// External packet-data host: echoes every Data_Ping back to its source.
class EchoServer final : public Node {
 public:
  EchoServer(std::string name, IpAddress ip, std::string router_name)
      : Node(std::move(name)), ip_(ip), router_name_(std::move(router_name)) {}

  [[nodiscard]] IpAddress ip() const { return ip_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

  void on_attached() override { net().register_ip(ip_, id()); }
  void on_message(const Envelope& env) override;

 private:
  IpAddress ip_;
  std::string router_name_;
  std::uint64_t served_ = 0;
};

void register_data_messages();

}  // namespace vgprs
