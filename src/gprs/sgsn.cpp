#include "gprs/sgsn.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "gprs/ip.hpp"

namespace vgprs {

const Sgsn::PdpContext* Sgsn::context(Imsi imsi, Nsapi nsapi) const {
  return contexts_.find(key(imsi, nsapi));
}

NodeId Sgsn::ggsn() const {
  Node* n = net().node_by_name(config_.ggsn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no GGSN");
  return n->id();
}

NodeId Sgsn::hlr() const {
  Node* n = net().node_by_name(config_.hlr_name);
  if (n == nullptr) throw std::logic_error(name() + ": no HLR");
  return n->id();
}

void Sgsn::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  // --- GPRS mobility management ---------------------------------------------
  if (const auto* req = dynamic_cast<const GprsAttachRequest*>(&msg)) {
    if (const Attachment* dup = attachments_.find(req->imsi);
        dup != nullptr && dup->holder == env.from) {
      // Duplicate attach from the current holder (retransmission or a
      // duplicated message): already attached -> re-confirm with the same
      // P-TMSI; still updating the HLR -> absorb, the pending exchange
      // answers both copies.
      if (dup->attached) {
        auto acc = pool_message<GprsAttachAccept>();
        acc->imsi = req->imsi;
        acc->ptmsi = dup->ptmsi;
        send(env.from, std::move(acc));
      }
      return;
    }
    Attachment& at = attachments_[req->imsi];
    at.holder = env.from;
    at.ptmsi = next_ptmsi_++;
    at.attached = false;
    auto ul = pool_message<MapUpdateGprsLocation>();
    ul->imsi = req->imsi;
    ul->sgsn_name = name();
    send(hlr(), std::move(ul));
    retx_.arm(
        retx_key(RetxKind::kMapGprsUl, req->imsi),
        [this, imsi = req->imsi] {
          const Attachment* a = attachments_.find(imsi);
          if (a == nullptr || a->attached) return;
          auto again = pool_message<MapUpdateGprsLocation>();
          again->imsi = imsi;
          again->sgsn_name = name();
          send(hlr(), std::move(again));
        },
        [this, imsi = req->imsi] {
          const Attachment* a = attachments_.find(imsi);
          if (a == nullptr || a->attached) return;
          auto rej = pool_message<GprsAttachReject>();
          rej->imsi = imsi;
          rej->cause = 17;  // network failure: HLR unreachable
          send(a->holder, std::move(rej));
          attachments_.erase(imsi);
        });
    return;
  }
  if (const auto* ack = dynamic_cast<const MapUpdateGprsLocationAck*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kMapGprsUl, ack->imsi));
    Attachment* at = attachments_.find(ack->imsi);
    if (at == nullptr) return;
    if (!ack->success) {
      auto rej = pool_message<GprsAttachReject>();
      rej->imsi = ack->imsi;
      rej->cause = ack->cause;
      send(at->holder, std::move(rej));
      attachments_.erase(ack->imsi);
      return;
    }
    at->attached = true;
    ++net().metrics().counter(name() + "/attaches_accepted");
    net().metrics().gauge(name() + "/attached") =
        static_cast<double>(attachments_.size());
    auto acc = pool_message<GprsAttachAccept>();
    acc->imsi = ack->imsi;
    acc->ptmsi = at->ptmsi;
    send(at->holder, std::move(acc));
    return;
  }
  if (const auto* req = dynamic_cast<const GprsDetachRequest*>(&msg)) {
    // A detach is only honoured from the subscriber's *current* Gb-side
    // holder: after an inter-VMSC move the old VMSC's deferred detach must
    // not tear down the attachment the new VMSC just established.
    const Attachment* at = attachments_.find(req->imsi);
    if (at != nullptr && at->holder != env.from) {
      auto acc = pool_message<GprsDetachAccept>();
      acc->imsi = req->imsi;
      send(env.from, std::move(acc));
      return;
    }
    // Tear down any remaining contexts at the GGSN — direct probes of the
    // two NSAPIs in use (5 = signaling, 6 = voice), not a scan of every
    // subscriber's contexts.  The context entries are gone before the GTP
    // responses arrive, so the retransmission thunks carry everything
    // needed to re-emit the delete.
    for (std::uint8_t n : {std::uint8_t{5}, std::uint8_t{6}}) {
      const PdpContext* ctx = contexts_.find(key(req->imsi, Nsapi(n)));
      if (ctx == nullptr || ctx->holder != env.from) continue;
      auto del = pool_message<GtpDeletePdpContextRequest>();
      del->imsi = ctx->imsi;
      del->nsapi = ctx->nsapi;
      del->teid = ctx->ggsn_teid;
      send(ggsn(), std::move(del));
      retx_.arm(
          retx_key(RetxKind::kGtpDelete, ctx->imsi, ctx->nsapi),
          [this, imsi = ctx->imsi, nsapi = ctx->nsapi,
           teid = ctx->ggsn_teid] {
            auto again = pool_message<GtpDeletePdpContextRequest>();
            again->imsi = imsi;
            again->nsapi = nsapi;
            again->teid = teid;
            send(ggsn(), std::move(again));
          },
          // GGSN unreachable: its context leaks until it ages out there;
          // nothing left to unwind here.
          std::function<void()>{});
      by_teid_.erase(ctx->sgsn_teid.value());
      contexts_.erase(key(req->imsi, Nsapi(n)));
    }
    attachments_.erase(req->imsi);
    auto acc = pool_message<GprsDetachAccept>();
    acc->imsi = req->imsi;
    send(env.from, std::move(acc));
    return;
  }

  // --- session management -----------------------------------------------------
  if (const auto* req =
          dynamic_cast<const ActivatePdpContextRequest*>(&msg)) {
    const Attachment* at = attachments_.find(req->imsi);
    if (at == nullptr || !at->attached) {
      auto rej = pool_message<ActivatePdpContextReject>();
      rej->imsi = req->imsi;
      rej->nsapi = req->nsapi;
      rej->cause = 7;  // GPRS services not allowed / not attached
      send(env.from, std::move(rej));
      return;
    }
    PdpContext& ctx = contexts_[key(req->imsi, req->nsapi)];
    if (ctx.sgsn_teid.valid()) {
      if (ctx.holder == env.from && !ctx.deleting) {
        // Duplicate activation from the current holder: an active context
        // is re-confirmed as it stands; one still being created is
        // answered when the GTP exchange completes.
        if (ctx.active) {
          auto acc = pool_message<ActivatePdpContextAccept>();
          acc->imsi = req->imsi;
          acc->nsapi = req->nsapi;
          acc->address = ctx.address;
          acc->qos = ctx.qos;
          send(env.from, std::move(acc));
        }
        return;
      }
      // Re-activation over an existing context (e.g. the subscriber moved
      // to a new VMSC): drop the stale tunnel endpoint mapping.
      by_teid_.erase(ctx.sgsn_teid.value());
    }
    ctx.imsi = req->imsi;
    ctx.nsapi = req->nsapi;
    ctx.qos = req->qos;
    ctx.holder = env.from;
    ctx.sgsn_teid = TunnelId(next_teid_++);
    ctx.active = false;
    ctx.deleting = false;
    by_teid_[ctx.sgsn_teid.value()] = key(req->imsi, req->nsapi);
    auto create = pool_message<GtpCreatePdpContextRequest>();
    create->imsi = req->imsi;
    create->nsapi = req->nsapi;
    create->sgsn_name = name();
    create->sgsn_teid = ctx.sgsn_teid;
    create->requested_address = req->requested_address;
    create->qos = req->qos;
    send(ggsn(), std::move(create));
    retx_.arm(
        retx_key(RetxKind::kGtpCreate, req->imsi, req->nsapi),
        [this, imsi = req->imsi, nsapi = req->nsapi,
         requested = req->requested_address] {
          const PdpContext* c = contexts_.find(key(imsi, nsapi));
          if (c == nullptr || c->active) return;
          auto again = pool_message<GtpCreatePdpContextRequest>();
          again->imsi = imsi;
          again->nsapi = nsapi;
          again->sgsn_name = name();
          again->sgsn_teid = c->sgsn_teid;
          again->requested_address = requested;
          again->qos = c->qos;
          send(ggsn(), std::move(again));
        },
        [this, imsi = req->imsi, nsapi = req->nsapi] {
          const PdpContext* c = contexts_.find(key(imsi, nsapi));
          if (c == nullptr || c->active) return;
          auto rej = pool_message<ActivatePdpContextReject>();
          rej->imsi = imsi;
          rej->nsapi = nsapi;
          rej->cause = 38;  // network failure: GGSN unreachable
          send(c->holder, std::move(rej));
          by_teid_.erase(c->sgsn_teid.value());
          contexts_.erase(key(imsi, nsapi));
        });
    return;
  }
  if (const auto* rsp =
          dynamic_cast<const GtpCreatePdpContextResponse*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kGtpCreate, rsp->imsi, rsp->nsapi));
    PdpContext* found = contexts_.find(key(rsp->imsi, rsp->nsapi));
    if (found == nullptr) return;
    PdpContext& ctx = *found;
    if (!rsp->success) {
      auto rej = pool_message<ActivatePdpContextReject>();
      rej->imsi = rsp->imsi;
      rej->nsapi = rsp->nsapi;
      rej->cause = rsp->cause;
      send(ctx.holder, std::move(rej));
      by_teid_.erase(ctx.sgsn_teid.value());
      contexts_.erase(key(rsp->imsi, rsp->nsapi));
      return;
    }
    ctx.address = rsp->address;
    ctx.ggsn_teid = rsp->ggsn_teid;
    ctx.qos = rsp->qos;
    ctx.active = true;
    ++net().metrics().counter(name() + "/pdp_activations");
    net().metrics().gauge(name() + "/pdp_contexts") =
        static_cast<double>(contexts_.size());
    auto acc = pool_message<ActivatePdpContextAccept>();
    acc->imsi = rsp->imsi;
    acc->nsapi = rsp->nsapi;
    acc->address = rsp->address;
    acc->qos = rsp->qos;
    send(ctx.holder, std::move(acc));
    return;
  }
  if (const auto* req =
          dynamic_cast<const DeactivatePdpContextRequest*>(&msg)) {
    PdpContext* ctx = contexts_.find(key(req->imsi, req->nsapi));
    if (ctx == nullptr) {
      auto acc = pool_message<DeactivatePdpContextAccept>();
      acc->imsi = req->imsi;
      acc->nsapi = req->nsapi;
      send(env.from, std::move(acc));
      return;
    }
    if (ctx->deleting) {
      // Duplicate deactivation: the in-flight GTP delete answers it.
      return;
    }
    ctx->deleting = true;
    auto del = pool_message<GtpDeletePdpContextRequest>();
    del->imsi = req->imsi;
    del->nsapi = req->nsapi;
    del->teid = ctx->ggsn_teid;
    send(ggsn(), std::move(del));
    retx_.arm(
        retx_key(RetxKind::kGtpDelete, req->imsi, req->nsapi),
        [this, imsi = req->imsi, nsapi = req->nsapi] {
          const PdpContext* c = contexts_.find(key(imsi, nsapi));
          if (c == nullptr || !c->deleting) return;
          auto again = pool_message<GtpDeletePdpContextRequest>();
          again->imsi = imsi;
          again->nsapi = nsapi;
          again->teid = c->ggsn_teid;
          send(ggsn(), std::move(again));
        },
        [this, imsi = req->imsi, nsapi = req->nsapi] {
          // GGSN unreachable: confirm toward the holder anyway and drop
          // the local context; the GGSN side ages out on its own.
          const PdpContext* c = contexts_.find(key(imsi, nsapi));
          if (c == nullptr) return;
          NodeId holder = c->holder;
          by_teid_.erase(c->sgsn_teid.value());
          contexts_.erase(key(imsi, nsapi));
          auto acc = pool_message<DeactivatePdpContextAccept>();
          acc->imsi = imsi;
          acc->nsapi = nsapi;
          send(holder, std::move(acc));
        });
    // Deletion confirmation arrives as GTP_Delete_PDP_Context_Response.
    return;
  }
  if (const auto* rsp =
          dynamic_cast<const GtpDeletePdpContextResponse*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kGtpDelete, rsp->imsi, rsp->nsapi));
    const PdpContext* ctx = contexts_.find(key(rsp->imsi, rsp->nsapi));
    if (ctx == nullptr) return;
    NodeId holder = ctx->holder;
    by_teid_.erase(ctx->sgsn_teid.value());
    contexts_.erase(key(rsp->imsi, rsp->nsapi));
    ++net().metrics().counter(name() + "/pdp_deactivations");
    net().metrics().gauge(name() + "/pdp_contexts") =
        static_cast<double>(contexts_.size());
    auto acc = pool_message<DeactivatePdpContextAccept>();
    acc->imsi = rsp->imsi;
    acc->nsapi = rsp->nsapi;
    send(holder, std::move(acc));
    return;
  }

  // --- network-initiated activation (3G TR 23.821 termination path) ----------
  if (const auto* note =
          dynamic_cast<const GtpPduNotificationRequest*>(&msg)) {
    auto rsp = pool_message<GtpPduNotificationResponse>();
    rsp->imsi = note->imsi;
    rsp->address = note->address;
    send(env.from, std::move(rsp));
    const Attachment* at = attachments_.find(note->imsi);
    if (at == nullptr || !at->attached) {
      VG_WARN("sgsn", name() << ": PDU notification for unattached "
                             << note->imsi.to_string());
      return;
    }
    auto req = pool_message<RequestPdpContextActivation>();
    req->imsi = note->imsi;
    req->nsapi = Nsapi(5);
    req->address = note->address;
    send(at->holder, std::move(req));
    return;
  }

  // --- user plane ---------------------------------------------------------------
  if (const auto* up = dynamic_cast<const GbUnitData*>(&msg)) {
    // Uplink: pick the sender's context whose PDP address matches the
    // datagram source; fall back to the subscriber's other active context.
    // Two direct probes of the NSAPIs in use (5 = signaling, 6 = voice) —
    // this runs per tunneled packet, so it must not scan the context table.
    auto decoded = MessageRegistry::instance().decode(up->payload);
    IpAddress src;
    if (decoded.ok()) {
      if (const auto* dgram =
              dynamic_cast<const IpDatagram*>(decoded.value().get())) {
        src = dgram->src;
      }
    }
    const PdpContext* chosen = nullptr;
    for (std::uint8_t n : {std::uint8_t{5}, std::uint8_t{6}}) {
      const PdpContext* ctx = contexts_.find(key(up->imsi, Nsapi(n)));
      if (ctx == nullptr || !ctx->active) continue;
      if (ctx->address == src) {
        chosen = ctx;
        break;
      }
      if (chosen == nullptr) chosen = ctx;
    }
    if (chosen == nullptr) {
      VG_WARN("sgsn", name() << ": uplink data without PDP context from "
                             << up->imsi.to_string());
      return;
    }
    auto pdu = pool_message<GtpPdu>();
    pdu->teid = chosen->ggsn_teid;
    pdu->payload = up->payload;
    send(ggsn(), std::move(pdu));
    return;
  }
  if (const auto* pdu = dynamic_cast<const GtpPdu*>(&msg)) {
    const std::uint64_t* ctx_key = by_teid_.find(pdu->teid.value());
    if (ctx_key == nullptr) {
      VG_WARN("sgsn", name() << ": downlink PDU for unknown "
                             << pdu->teid.to_string());
      return;
    }
    const PdpContext& ctx = *contexts_.find(*ctx_key);
    auto down = pool_message<GbUnitData>();
    down->imsi = ctx.imsi;
    down->payload = pdu->payload;
    send(ctx.holder, std::move(down));
    return;
  }

  VG_WARN("sgsn", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
