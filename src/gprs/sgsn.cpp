#include "gprs/sgsn.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "gprs/ip.hpp"

namespace vgprs {

const Sgsn::PdpContext* Sgsn::context(Imsi imsi, Nsapi nsapi) const {
  auto it = contexts_.find(key(imsi, nsapi));
  return it == contexts_.end() ? nullptr : &it->second;
}

NodeId Sgsn::ggsn() const {
  Node* n = net().node_by_name(config_.ggsn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no GGSN");
  return n->id();
}

NodeId Sgsn::hlr() const {
  Node* n = net().node_by_name(config_.hlr_name);
  if (n == nullptr) throw std::logic_error(name() + ": no HLR");
  return n->id();
}

void Sgsn::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  // --- GPRS mobility management ---------------------------------------------
  if (const auto* req = dynamic_cast<const GprsAttachRequest*>(&msg)) {
    if (auto it = attachments_.find(req->imsi);
        it != attachments_.end() && it->second.holder == env.from) {
      // Duplicate attach from the current holder (retransmission or a
      // duplicated message): already attached -> re-confirm with the same
      // P-TMSI; still updating the HLR -> absorb, the pending exchange
      // answers both copies.
      if (it->second.attached) {
        auto acc = std::make_shared<GprsAttachAccept>();
        acc->imsi = req->imsi;
        acc->ptmsi = it->second.ptmsi;
        send(env.from, std::move(acc));
      }
      return;
    }
    Attachment& at = attachments_[req->imsi];
    at.holder = env.from;
    at.ptmsi = next_ptmsi_++;
    at.attached = false;
    auto ul = std::make_shared<MapUpdateGprsLocation>();
    ul->imsi = req->imsi;
    ul->sgsn_name = name();
    send(hlr(), std::move(ul));
    retx_.arm(
        retx_key(RetxKind::kMapGprsUl, req->imsi),
        [this, imsi = req->imsi] {
          auto at_it = attachments_.find(imsi);
          if (at_it == attachments_.end() || at_it->second.attached) return;
          auto again = std::make_shared<MapUpdateGprsLocation>();
          again->imsi = imsi;
          again->sgsn_name = name();
          send(hlr(), std::move(again));
        },
        [this, imsi = req->imsi] {
          auto at_it = attachments_.find(imsi);
          if (at_it == attachments_.end() || at_it->second.attached) return;
          auto rej = std::make_shared<GprsAttachReject>();
          rej->imsi = imsi;
          rej->cause = 17;  // network failure: HLR unreachable
          send(at_it->second.holder, std::move(rej));
          attachments_.erase(at_it);
        });
    return;
  }
  if (const auto* ack = dynamic_cast<const MapUpdateGprsLocationAck*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kMapGprsUl, ack->imsi));
    auto it = attachments_.find(ack->imsi);
    if (it == attachments_.end()) return;
    if (!ack->success) {
      auto rej = std::make_shared<GprsAttachReject>();
      rej->imsi = ack->imsi;
      rej->cause = ack->cause;
      send(it->second.holder, std::move(rej));
      attachments_.erase(it);
      return;
    }
    it->second.attached = true;
    ++net().metrics().counter(name() + "/attaches_accepted");
    net().metrics().gauge(name() + "/attached") =
        static_cast<double>(attachments_.size());
    auto acc = std::make_shared<GprsAttachAccept>();
    acc->imsi = ack->imsi;
    acc->ptmsi = it->second.ptmsi;
    send(it->second.holder, std::move(acc));
    return;
  }
  if (const auto* req = dynamic_cast<const GprsDetachRequest*>(&msg)) {
    // A detach is only honoured from the subscriber's *current* Gb-side
    // holder: after an inter-VMSC move the old VMSC's deferred detach must
    // not tear down the attachment the new VMSC just established.
    auto at = attachments_.find(req->imsi);
    if (at != attachments_.end() && at->second.holder != env.from) {
      auto acc = std::make_shared<GprsDetachAccept>();
      acc->imsi = req->imsi;
      send(env.from, std::move(acc));
      return;
    }
    // Tear down any remaining contexts at the GGSN.  The context entries
    // are gone before the GTP responses arrive, so the retransmission
    // thunks carry everything needed to re-emit the delete.
    for (auto it = contexts_.begin(); it != contexts_.end();) {
      if (it->second.imsi == req->imsi && it->second.holder == env.from) {
        auto del = std::make_shared<GtpDeletePdpContextRequest>();
        del->imsi = it->second.imsi;
        del->nsapi = it->second.nsapi;
        del->teid = it->second.ggsn_teid;
        send(ggsn(), std::move(del));
        retx_.arm(
            retx_key(RetxKind::kGtpDelete, it->second.imsi,
                     it->second.nsapi),
            [this, imsi = it->second.imsi, nsapi = it->second.nsapi,
             teid = it->second.ggsn_teid] {
              auto again = std::make_shared<GtpDeletePdpContextRequest>();
              again->imsi = imsi;
              again->nsapi = nsapi;
              again->teid = teid;
              send(ggsn(), std::move(again));
            },
            // GGSN unreachable: its context leaks until it ages out there;
            // nothing left to unwind here.
            std::function<void()>{});
        by_teid_.erase(it->second.sgsn_teid.value());
        it = contexts_.erase(it);
      } else {
        ++it;
      }
    }
    attachments_.erase(req->imsi);
    auto acc = std::make_shared<GprsDetachAccept>();
    acc->imsi = req->imsi;
    send(env.from, std::move(acc));
    return;
  }

  // --- session management -----------------------------------------------------
  if (const auto* req =
          dynamic_cast<const ActivatePdpContextRequest*>(&msg)) {
    auto at = attachments_.find(req->imsi);
    if (at == attachments_.end() || !at->second.attached) {
      auto rej = std::make_shared<ActivatePdpContextReject>();
      rej->imsi = req->imsi;
      rej->nsapi = req->nsapi;
      rej->cause = 7;  // GPRS services not allowed / not attached
      send(env.from, std::move(rej));
      return;
    }
    PdpContext& ctx = contexts_[key(req->imsi, req->nsapi)];
    if (ctx.sgsn_teid.valid()) {
      if (ctx.holder == env.from && !ctx.deleting) {
        // Duplicate activation from the current holder: an active context
        // is re-confirmed as it stands; one still being created is
        // answered when the GTP exchange completes.
        if (ctx.active) {
          auto acc = std::make_shared<ActivatePdpContextAccept>();
          acc->imsi = req->imsi;
          acc->nsapi = req->nsapi;
          acc->address = ctx.address;
          acc->qos = ctx.qos;
          send(env.from, std::move(acc));
        }
        return;
      }
      // Re-activation over an existing context (e.g. the subscriber moved
      // to a new VMSC): drop the stale tunnel endpoint mapping.
      by_teid_.erase(ctx.sgsn_teid.value());
    }
    ctx.imsi = req->imsi;
    ctx.nsapi = req->nsapi;
    ctx.qos = req->qos;
    ctx.holder = env.from;
    ctx.sgsn_teid = TunnelId(next_teid_++);
    ctx.active = false;
    ctx.deleting = false;
    by_teid_[ctx.sgsn_teid.value()] = key(req->imsi, req->nsapi);
    auto create = std::make_shared<GtpCreatePdpContextRequest>();
    create->imsi = req->imsi;
    create->nsapi = req->nsapi;
    create->sgsn_name = name();
    create->sgsn_teid = ctx.sgsn_teid;
    create->requested_address = req->requested_address;
    create->qos = req->qos;
    send(ggsn(), std::move(create));
    retx_.arm(
        retx_key(RetxKind::kGtpCreate, req->imsi, req->nsapi),
        [this, imsi = req->imsi, nsapi = req->nsapi,
         requested = req->requested_address] {
          auto ctx_it = contexts_.find(key(imsi, nsapi));
          if (ctx_it == contexts_.end() || ctx_it->second.active) return;
          auto again = std::make_shared<GtpCreatePdpContextRequest>();
          again->imsi = imsi;
          again->nsapi = nsapi;
          again->sgsn_name = name();
          again->sgsn_teid = ctx_it->second.sgsn_teid;
          again->requested_address = requested;
          again->qos = ctx_it->second.qos;
          send(ggsn(), std::move(again));
        },
        [this, imsi = req->imsi, nsapi = req->nsapi] {
          auto ctx_it = contexts_.find(key(imsi, nsapi));
          if (ctx_it == contexts_.end() || ctx_it->second.active) return;
          auto rej = std::make_shared<ActivatePdpContextReject>();
          rej->imsi = imsi;
          rej->nsapi = nsapi;
          rej->cause = 38;  // network failure: GGSN unreachable
          send(ctx_it->second.holder, std::move(rej));
          by_teid_.erase(ctx_it->second.sgsn_teid.value());
          contexts_.erase(ctx_it);
        });
    return;
  }
  if (const auto* rsp =
          dynamic_cast<const GtpCreatePdpContextResponse*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kGtpCreate, rsp->imsi, rsp->nsapi));
    auto it = contexts_.find(key(rsp->imsi, rsp->nsapi));
    if (it == contexts_.end()) return;
    PdpContext& ctx = it->second;
    if (!rsp->success) {
      auto rej = std::make_shared<ActivatePdpContextReject>();
      rej->imsi = rsp->imsi;
      rej->nsapi = rsp->nsapi;
      rej->cause = rsp->cause;
      send(ctx.holder, std::move(rej));
      by_teid_.erase(ctx.sgsn_teid.value());
      contexts_.erase(it);
      return;
    }
    ctx.address = rsp->address;
    ctx.ggsn_teid = rsp->ggsn_teid;
    ctx.qos = rsp->qos;
    ctx.active = true;
    ++net().metrics().counter(name() + "/pdp_activations");
    net().metrics().gauge(name() + "/pdp_contexts") =
        static_cast<double>(contexts_.size());
    auto acc = std::make_shared<ActivatePdpContextAccept>();
    acc->imsi = rsp->imsi;
    acc->nsapi = rsp->nsapi;
    acc->address = rsp->address;
    acc->qos = rsp->qos;
    send(ctx.holder, std::move(acc));
    return;
  }
  if (const auto* req =
          dynamic_cast<const DeactivatePdpContextRequest*>(&msg)) {
    auto it = contexts_.find(key(req->imsi, req->nsapi));
    if (it == contexts_.end()) {
      auto acc = std::make_shared<DeactivatePdpContextAccept>();
      acc->imsi = req->imsi;
      acc->nsapi = req->nsapi;
      send(env.from, std::move(acc));
      return;
    }
    if (it->second.deleting) {
      // Duplicate deactivation: the in-flight GTP delete answers it.
      return;
    }
    it->second.deleting = true;
    auto del = std::make_shared<GtpDeletePdpContextRequest>();
    del->imsi = req->imsi;
    del->nsapi = req->nsapi;
    del->teid = it->second.ggsn_teid;
    send(ggsn(), std::move(del));
    retx_.arm(
        retx_key(RetxKind::kGtpDelete, req->imsi, req->nsapi),
        [this, imsi = req->imsi, nsapi = req->nsapi] {
          auto ctx_it = contexts_.find(key(imsi, nsapi));
          if (ctx_it == contexts_.end() || !ctx_it->second.deleting) return;
          auto again = std::make_shared<GtpDeletePdpContextRequest>();
          again->imsi = imsi;
          again->nsapi = nsapi;
          again->teid = ctx_it->second.ggsn_teid;
          send(ggsn(), std::move(again));
        },
        [this, imsi = req->imsi, nsapi = req->nsapi] {
          // GGSN unreachable: confirm toward the holder anyway and drop
          // the local context; the GGSN side ages out on its own.
          auto ctx_it = contexts_.find(key(imsi, nsapi));
          if (ctx_it == contexts_.end()) return;
          NodeId holder = ctx_it->second.holder;
          by_teid_.erase(ctx_it->second.sgsn_teid.value());
          contexts_.erase(ctx_it);
          auto acc = std::make_shared<DeactivatePdpContextAccept>();
          acc->imsi = imsi;
          acc->nsapi = nsapi;
          send(holder, std::move(acc));
        });
    // Deletion confirmation arrives as GTP_Delete_PDP_Context_Response.
    return;
  }
  if (const auto* rsp =
          dynamic_cast<const GtpDeletePdpContextResponse*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kGtpDelete, rsp->imsi, rsp->nsapi));
    auto it = contexts_.find(key(rsp->imsi, rsp->nsapi));
    if (it == contexts_.end()) return;
    NodeId holder = it->second.holder;
    by_teid_.erase(it->second.sgsn_teid.value());
    contexts_.erase(it);
    ++net().metrics().counter(name() + "/pdp_deactivations");
    net().metrics().gauge(name() + "/pdp_contexts") =
        static_cast<double>(contexts_.size());
    auto acc = std::make_shared<DeactivatePdpContextAccept>();
    acc->imsi = rsp->imsi;
    acc->nsapi = rsp->nsapi;
    send(holder, std::move(acc));
    return;
  }

  // --- network-initiated activation (3G TR 23.821 termination path) ----------
  if (const auto* note =
          dynamic_cast<const GtpPduNotificationRequest*>(&msg)) {
    auto rsp = std::make_shared<GtpPduNotificationResponse>();
    rsp->imsi = note->imsi;
    rsp->address = note->address;
    send(env.from, std::move(rsp));
    auto at = attachments_.find(note->imsi);
    if (at == attachments_.end() || !at->second.attached) {
      VG_WARN("sgsn", name() << ": PDU notification for unattached "
                             << note->imsi.to_string());
      return;
    }
    auto req = std::make_shared<RequestPdpContextActivation>();
    req->imsi = note->imsi;
    req->nsapi = Nsapi(5);
    req->address = note->address;
    send(at->second.holder, std::move(req));
    return;
  }

  // --- user plane ---------------------------------------------------------------
  if (const auto* up = dynamic_cast<const GbUnitData*>(&msg)) {
    // Uplink: pick the sender's context whose PDP address matches the
    // datagram source; fall back to any active context of the subscriber.
    auto decoded = MessageRegistry::instance().decode(up->payload);
    const PdpContext* chosen = nullptr;
    IpAddress src;
    if (decoded.ok()) {
      if (const auto* dgram =
              dynamic_cast<const IpDatagram*>(decoded.value().get())) {
        src = dgram->src;
      }
    }
    for (const auto& [k, ctx] : contexts_) {
      (void)k;
      if (ctx.imsi != up->imsi || !ctx.active) continue;
      if (ctx.address == src) {
        chosen = &ctx;
        break;
      }
      if (chosen == nullptr) chosen = &ctx;
    }
    if (chosen == nullptr) {
      VG_WARN("sgsn", name() << ": uplink data without PDP context from "
                             << up->imsi.to_string());
      return;
    }
    auto pdu = std::make_shared<GtpPdu>();
    pdu->teid = chosen->ggsn_teid;
    pdu->payload = up->payload;
    send(ggsn(), std::move(pdu));
    return;
  }
  if (const auto* pdu = dynamic_cast<const GtpPdu*>(&msg)) {
    auto it = by_teid_.find(pdu->teid.value());
    if (it == by_teid_.end()) {
      VG_WARN("sgsn", name() << ": downlink PDU for unknown "
                             << pdu->teid.to_string());
      return;
    }
    const PdpContext& ctx = contexts_.at(it->second);
    auto down = std::make_shared<GbUnitData>();
    down->imsi = ctx.imsi;
    down->payload = pdu->payload;
    send(ctx.holder, std::move(down));
    return;
  }

  VG_WARN("sgsn", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
