// Serving GPRS Support Node: GPRS attach/detach (with HLR location
// updating over Gr), session management (PDP context activation /
// deactivation toward the GGSN over GTP-C), and user-plane relaying
// between the Gb interface and the GTP-U tunnels.
#pragma once

#include <cstdint>
#include <string>

#include "gprs/messages.hpp"
#include "gsm/messages.hpp"
#include "sim/network.hpp"
#include "sim/retransmit.hpp"
#include "sim/subscriber_pool.hpp"

namespace vgprs {

class Sgsn final : public Node {
 public:
  struct Config {
    std::string ggsn_name;
    std::string hlr_name;
  };

  struct PdpContext {
    Imsi imsi;
    Nsapi nsapi;
    IpAddress address;
    TunnelId sgsn_teid;  // downlink endpoint here
    TunnelId ggsn_teid;  // uplink endpoint at the GGSN
    QosProfile qos;
    NodeId holder;  // the node using the context (VMSC or H.323-capable MS)
    bool active = false;
    bool deleting = false;  // GTP delete in flight; duplicates are absorbed
  };

  Sgsn(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  [[nodiscard]] std::size_t attached_count() const {
    return attachments_.size();
  }
  [[nodiscard]] std::size_t pdp_context_count() const {
    return contexts_.size();
  }
  [[nodiscard]] const PdpContext* context(Imsi imsi, Nsapi nsapi) const;

  void on_message(const Envelope& env) override;
  void on_timer(TimerId id, std::uint64_t cookie) override {
    (void)id;
    retx_.on_timer(cookie);
  }
  /// SGSN restart: attachments and PDP contexts are volatile.  Holders
  /// discover the loss when their next request is rejected cause 7 and
  /// re-attach from scratch; TEID/P-TMSI counters keep advancing.
  void on_restart() override {
    attachments_.clear();
    contexts_.clear();
    by_teid_.clear();
    retx_.reset();
  }

 private:
  struct Attachment {
    NodeId holder;
    std::uint32_t ptmsi = 0;
    bool attached = false;  // false while the HLR update is in flight
  };

  /// Requests this SGSN keeps in flight upstream (Gr / GTP-C).
  enum class RetxKind : std::uint8_t {
    kMapGprsUl = 1,
    kGtpCreate = 2,
    kGtpDelete = 3,
  };
  static std::uint64_t retx_key(RetxKind kind, Imsi imsi,
                                Nsapi nsapi = Nsapi{}) {
    return (static_cast<std::uint64_t>(kind) << 56) |
           (imsi.value() << 4) | nsapi.value();
  }

  static std::uint64_t key(Imsi imsi, Nsapi nsapi) {
    return (imsi.value() << 4) | nsapi.value();
  }
  [[nodiscard]] NodeId ggsn() const;
  [[nodiscard]] NodeId hlr() const;

  Config config_;
  Retransmitter retx_{*this};
  // Pooled subscriber state (slab-backed, O(1) probes at any population —
  // see sim/subscriber_pool.hpp); contexts are addressed by (imsi, nsapi)
  // key and the user plane never scans them.
  SubscriberTable<Imsi, Attachment> attachments_;
  SubscriberTable<std::uint64_t, PdpContext> contexts_;
  SubscriberTable<std::uint32_t, std::uint64_t> by_teid_;  // sgsn_teid
  std::uint32_t next_teid_ = 0x1000;
  std::uint32_t next_ptmsi_ = 0xC0000001;
};

}  // namespace vgprs
