// GPRS message catalog: GMM (attach/detach), SM (PDP context management),
// Gb framing, and the GTP-C / GTP-U tunneling protocol between SGSN and
// GGSN (GSM 09.60).  Wire ranges: GMM/SM/Gb 0x05xx, GTP 0x06xx.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "gsm/types.hpp"
#include "sim/proto.hpp"

namespace vgprs {

// --- GMM / SM payloads -------------------------------------------------------

struct GprsAttachInfo {
  Imsi imsi;

  void encode(ByteWriter& w) const { w.imsi(imsi); }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct GprsAttachAcceptInfo {
  Imsi imsi;
  std::uint32_t ptmsi = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u32(ptmsi);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    ptmsi = r.u32();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct GprsRejectInfo {
  Imsi imsi;
  std::uint8_t cause = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " cause=" + std::to_string(cause) + "}";
  }
};

struct ActivatePdpRequestInfo {
  Imsi imsi;
  Nsapi nsapi;
  QosProfile qos;
  IpAddress requested_address;  // 0.0.0.0 = dynamic allocation
  std::string apn = "voip";

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    qos.encode(w);
    w.ip(requested_address);
    w.str(apn);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    qos = QosProfile::decode(r);
    requested_address = r.ip();
    apn = r.str();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + nsapi.to_string() + " " +
           std::string(to_string(qos.traffic_class)) + "}";
  }
};

struct ActivatePdpAcceptInfo {
  Imsi imsi;
  Nsapi nsapi;
  IpAddress address;
  QosProfile qos;  // negotiated

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    w.ip(address);
    qos.encode(w);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    address = r.ip();
    qos = QosProfile::decode(r);
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + nsapi.to_string() + " ip=" +
           address.to_string() + "}";
  }
};

struct PdpRefInfo {
  Imsi imsi;
  Nsapi nsapi;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + nsapi.to_string() + "}";
  }
};

struct PdpRejectInfo {
  Imsi imsi;
  Nsapi nsapi;
  std::uint8_t cause = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " cause=" + std::to_string(cause) + "}";
  }
};

/// Network-initiated PDP context activation request (SGSN -> MS), required
/// by the 3G TR 23.821 baseline for terminating calls.
struct RequestPdpActivationInfo {
  Imsi imsi;
  Nsapi nsapi;
  IpAddress address;  // the static PDP address the network wants activated

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    w.ip(address);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    address = r.ip();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " ip=" + address.to_string() + "}";
  }
};

/// Gb-interface frame carrying one encapsulated IP datagram between the
/// BSS-side user (VMSC, or a GPRS MS through the PCU) and the SGSN.
struct GbUnitDataInfo {
  Imsi imsi;  // stands in for the TLLI
  std::vector<std::uint8_t> payload;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.bytes(payload);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    payload = r.bytes();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + std::to_string(payload.size()) +
           "B}";
  }
};

// --- GTP payloads -------------------------------------------------------------

struct GtpCreatePdpRequestInfo {
  Imsi imsi;
  Nsapi nsapi;
  std::string sgsn_name;
  TunnelId sgsn_teid;           // downlink tunnel endpoint at the SGSN
  IpAddress requested_address;  // 0.0.0.0 = dynamic
  QosProfile qos;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    w.str(sgsn_name);
    w.teid(sgsn_teid);
    w.ip(requested_address);
    qos.encode(w);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    sgsn_name = r.str();
    sgsn_teid = r.teid();
    requested_address = r.ip();
    qos = QosProfile::decode(r);
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + nsapi.to_string() + "}";
  }
};

struct GtpCreatePdpResponseInfo {
  Imsi imsi;
  Nsapi nsapi;
  IpAddress address;
  TunnelId ggsn_teid;  // uplink tunnel endpoint at the GGSN
  QosProfile qos;
  bool success = true;
  std::uint8_t cause = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    w.ip(address);
    w.teid(ggsn_teid);
    qos.encode(w);
    w.boolean(success);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    address = r.ip();
    ggsn_teid = r.teid();
    qos = QosProfile::decode(r);
    success = r.boolean();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " ip=" + address.to_string() + " " +
           ggsn_teid.to_string() + "}";
  }
};

struct GtpDeletePdpInfo {
  Imsi imsi;
  Nsapi nsapi;
  TunnelId teid;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.nsapi(nsapi);
    w.teid(teid);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    nsapi = r.nsapi();
    teid = r.teid();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + nsapi.to_string() + "}";
  }
};

/// GTP-U tunneled protocol data unit: an opaque IP datagram inside the
/// GPRS backbone between SGSN and GGSN.
struct GtpPduInfo {
  TunnelId teid;
  std::vector<std::uint8_t> payload;

  void encode(ByteWriter& w) const {
    w.teid(teid);
    w.bytes(payload);
  }
  Status decode(ByteReader& r) {
    teid = r.teid();
    payload = r.bytes();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + teid.to_string() + " " + std::to_string(payload.size()) +
           "B}";
  }
};

/// GGSN -> SGSN: downlink data pending for a subscriber without an active
/// context (triggers network-initiated activation).
struct GtpPduNotificationInfo {
  Imsi imsi;
  IpAddress address;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.ip(address);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    address = r.ip();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " ip=" + address.to_string() + "}";
  }
};

/// External request to the GGSN (used by the TR 23.821 gatekeeper) to set
/// up a routing path toward an idle subscriber.
struct GgsnActivationInfo {
  Imsi imsi;
  IpAddress address;
  bool success = true;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.ip(address);
    w.boolean(success);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    address = r.ip();
    success = r.boolean();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " ip=" + address.to_string() + "}";
  }
};

// --- message aliases -------------------------------------------------------------

using GprsAttachRequest =
    ProtoMessage<GprsAttachInfo, 0x0501, "GPRS_Attach_Request">;
using GprsAttachAccept =
    ProtoMessage<GprsAttachAcceptInfo, 0x0502, "GPRS_Attach_Accept">;
using GprsAttachReject =
    ProtoMessage<GprsRejectInfo, 0x0503, "GPRS_Attach_Reject">;
using GprsDetachRequest =
    ProtoMessage<GprsAttachInfo, 0x0504, "GPRS_Detach_Request">;
using GprsDetachAccept =
    ProtoMessage<GprsAttachInfo, 0x0505, "GPRS_Detach_Accept">;
using ActivatePdpContextRequest =
    ProtoMessage<ActivatePdpRequestInfo, 0x0506,
                 "Activate_PDP_Context_Request">;
using ActivatePdpContextAccept =
    ProtoMessage<ActivatePdpAcceptInfo, 0x0507, "Activate_PDP_Context_Accept">;
using ActivatePdpContextReject =
    ProtoMessage<PdpRejectInfo, 0x0508, "Activate_PDP_Context_Reject">;
using DeactivatePdpContextRequest =
    ProtoMessage<PdpRefInfo, 0x0509, "Deactivate_PDP_Context_Request">;
using DeactivatePdpContextAccept =
    ProtoMessage<PdpRefInfo, 0x050A, "Deactivate_PDP_Context_Accept">;
using RequestPdpContextActivation =
    ProtoMessage<RequestPdpActivationInfo, 0x050B,
                 "Request_PDP_Context_Activation">;
using GbUnitData = ProtoMessage<GbUnitDataInfo, 0x0511, "Gb_UnitData">;

using GtpCreatePdpContextRequest =
    ProtoMessage<GtpCreatePdpRequestInfo, 0x0601,
                 "GTP_Create_PDP_Context_Request">;
using GtpCreatePdpContextResponse =
    ProtoMessage<GtpCreatePdpResponseInfo, 0x0602,
                 "GTP_Create_PDP_Context_Response">;
using GtpDeletePdpContextRequest =
    ProtoMessage<GtpDeletePdpInfo, 0x0603, "GTP_Delete_PDP_Context_Request">;
using GtpDeletePdpContextResponse =
    ProtoMessage<GtpDeletePdpInfo, 0x0604, "GTP_Delete_PDP_Context_Response">;
using GtpPdu = ProtoMessage<GtpPduInfo, 0x0605, "GTP_T_PDU">;
using GtpPduNotificationRequest =
    ProtoMessage<GtpPduNotificationInfo, 0x0606,
                 "GTP_PDU_Notification_Request">;
using GtpPduNotificationResponse =
    ProtoMessage<GtpPduNotificationInfo, 0x0607,
                 "GTP_PDU_Notification_Response">;
using GgsnActivationRequest =
    ProtoMessage<GgsnActivationInfo, 0x0620, "GGSN_Activation_Request">;
using GgsnActivationResponse =
    ProtoMessage<GgsnActivationInfo, 0x0621, "GGSN_Activation_Response">;

void register_gprs_messages();

}  // namespace vgprs
