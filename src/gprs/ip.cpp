#include "gprs/ip.hpp"

#include "common/log.hpp"

namespace vgprs {

std::string IpDatagramInfo::describe() const {
  // Peek at the inner wire type so traces show what the datagram carries.
  std::string inner = "?";
  if (payload.size() >= 2) {
    std::uint16_t type = static_cast<std::uint16_t>(
        (std::uint16_t{payload[0]} << 8) | payload[1]);
    inner = std::string(MessageRegistry::instance().name_of(type));
  }
  return "{" + src.to_string() + " -> " + dst.to_string() + " [" + inner +
         "]}";
}

std::shared_ptr<IpDatagram> make_ip_datagram(IpAddress src, IpAddress dst,
                                             const Message& inner) {
  auto dgram = pool_message<IpDatagram>();
  dgram->src = src;
  dgram->dst = dst;
  dgram->payload = inner.encode();
  return dgram;
}

Result<std::unique_ptr<Message>> ip_payload(const IpDatagramInfo& dgram) {
  return MessageRegistry::instance().decode(dgram.payload);
}

void IpRouter::on_message(const Envelope& env) {
  const auto* dgram = dynamic_cast<const IpDatagram*>(env.msg.get());
  if (dgram == nullptr) {
    VG_WARN("ip", name() << ": non-IP message " << env.msg->name());
    return;
  }
  NodeId owner = net().ip_owner(dgram->dst);
  if (!owner.valid()) {
    VG_WARN("ip", name() << ": no route to " << dgram->dst.to_string());
    return;
  }
  if (owner == env.from) return;  // avoid reflecting
  send(owner, MessagePtr(env.msg->clone()));
}

void register_ip_messages() { register_message<IpDatagram>(); }

}  // namespace vgprs
