#include "gprs/messages.hpp"

#include "gprs/ip.hpp"

namespace vgprs {

void register_gprs_messages() {
  register_ip_messages();
  register_message<GprsAttachRequest>();
  register_message<GprsAttachAccept>();
  register_message<GprsAttachReject>();
  register_message<GprsDetachRequest>();
  register_message<GprsDetachAccept>();
  register_message<ActivatePdpContextRequest>();
  register_message<ActivatePdpContextAccept>();
  register_message<ActivatePdpContextReject>();
  register_message<DeactivatePdpContextRequest>();
  register_message<DeactivatePdpContextAccept>();
  register_message<RequestPdpContextActivation>();
  register_message<GbUnitData>();
  register_message<GtpCreatePdpContextRequest>();
  register_message<GtpCreatePdpContextResponse>();
  register_message<GtpDeletePdpContextRequest>();
  register_message<GtpDeletePdpContextResponse>();
  register_message<GtpPdu>();
  register_message<GtpPduNotificationRequest>();
  register_message<GtpPduNotificationResponse>();
  register_message<GgsnActivationRequest>();
  register_message<GgsnActivationResponse>();
}

}  // namespace vgprs
