#include "gprs/ggsn.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

void Ggsn::provision_static(Imsi imsi, IpAddress address) {
  static_addresses_[imsi] = address;
}

const Ggsn::PdpContext* Ggsn::context_by_address(IpAddress address) const {
  auto it = by_address_.find(address);
  return it == by_address_.end() ? nullptr : &contexts_.at(it->second);
}

NodeId Ggsn::router() const {
  Node* n = net().node_by_name(config_.router_name);
  if (n == nullptr) throw std::logic_error(name() + ": no router");
  return n->id();
}

NodeId Ggsn::hlr() const {
  Node* n = net().node_by_name(config_.hlr_name);
  if (n == nullptr) throw std::logic_error(name() + ": no HLR");
  return n->id();
}

void Ggsn::on_attached() {
  net().register_ip(config_.ggsn_address, id());
}

void Ggsn::handle_control(const IpDatagramInfo& dgram) {
  auto inner = ip_payload(dgram);
  if (!inner.ok()) {
    VG_WARN("ggsn", name() << ": bad control payload: "
                           << inner.error().to_string());
    return;
  }
  if (const auto* act =
          dynamic_cast<const GgsnActivationRequest*>(inner.value().get())) {
    // TR 23.821: the gatekeeper asks us to establish a routing path toward
    // an idle subscriber.  Find the serving SGSN via the HLR (Gc) and fire
    // a PDU notification so the MS activates its (static) PDP address.
    pending_activations_[act->imsi] = dgram.src;
    auto query = pool_message<MapSendRoutingInfoForGprs>();
    query->imsi = act->imsi;
    send(hlr(), std::move(query));
    return;
  }
  VG_WARN("ggsn", name() << ": unexpected control message "
                         << inner.value()->name());
}

void Ggsn::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* req =
          dynamic_cast<const GtpCreatePdpContextRequest*>(&msg)) {
    IpAddress address = req->requested_address;
    if (!address.valid()) {
      auto it = static_addresses_.find(req->imsi);
      if (it != static_addresses_.end()) {
        address = it->second;
      } else {
        address = IpAddress(config_.dynamic_pool_base.value() +
                            next_dynamic_++);
      }
    }
    PdpContext& ctx = contexts_[key(req->imsi, req->nsapi)];
    if (ctx.ggsn_teid.valid()) {
      // Re-creation over an existing context: withdraw the stale address
      // and tunnel endpoint before installing the new ones.
      by_address_.erase(ctx.address);
      by_teid_.erase(ctx.ggsn_teid.value());
      net().unregister_ip(ctx.address);
    }
    ctx.imsi = req->imsi;
    ctx.nsapi = req->nsapi;
    ctx.address = address;
    ctx.ggsn_teid = TunnelId(next_teid_++);
    ctx.sgsn_teid = req->sgsn_teid;
    ctx.sgsn = env.from;
    ctx.qos = req->qos;
    by_address_[address] = key(req->imsi, req->nsapi);
    by_teid_[ctx.ggsn_teid.value()] = key(req->imsi, req->nsapi);
    net().register_ip(address, id());

    auto rsp = pool_message<GtpCreatePdpContextResponse>();
    rsp->imsi = req->imsi;
    rsp->nsapi = req->nsapi;
    rsp->address = address;
    rsp->ggsn_teid = ctx.ggsn_teid;
    rsp->qos = req->qos;
    rsp->success = true;
    send(env.from, std::move(rsp));

    // Complete any pending TR 23.821 activation request for this subscriber.
    auto pending = pending_activations_.find(req->imsi);
    if (pending != pending_activations_.end()) {
      auto done = pool_message<GgsnActivationResponse>();
      done->imsi = req->imsi;
      done->address = address;
      done->success = true;
      send(router(),
           make_ip_datagram(config_.ggsn_address, pending->second, *done));
      pending_activations_.erase(pending);
    }
    return;
  }

  if (const auto* del =
          dynamic_cast<const GtpDeletePdpContextRequest*>(&msg)) {
    auto it = contexts_.find(key(del->imsi, del->nsapi));
    if (it != contexts_.end()) {
      by_address_.erase(it->second.address);
      by_teid_.erase(it->second.ggsn_teid.value());
      net().unregister_ip(it->second.address);
      contexts_.erase(it);
    }
    auto rsp = pool_message<GtpDeletePdpContextResponse>();
    rsp->imsi = del->imsi;
    rsp->nsapi = del->nsapi;
    rsp->teid = del->teid;
    send(env.from, std::move(rsp));
    return;
  }

  // Uplink user plane: SGSN -> GGSN -> external network (or hairpin to
  // another PDP context).
  if (const auto* pdu = dynamic_cast<const GtpPdu*>(&msg)) {
    auto it = by_teid_.find(pdu->teid.value());
    if (it == by_teid_.end()) {
      VG_WARN("ggsn", name() << ": PDU on unknown " << pdu->teid.to_string());
      return;
    }
    auto decoded = MessageRegistry::instance().decode(pdu->payload);
    if (!decoded.ok()) return;
    const auto* dgram = dynamic_cast<const IpDatagram*>(decoded.value().get());
    if (dgram == nullptr) return;
    ++pdus_forwarded_;
    if (dgram->dst == config_.ggsn_address) {
      handle_control(*dgram);
      return;
    }
    auto hairpin = by_address_.find(dgram->dst);
    if (hairpin != by_address_.end()) {
      const PdpContext& dst_ctx = contexts_.at(hairpin->second);
      auto down = pool_message<GtpPdu>();
      down->teid = dst_ctx.sgsn_teid;
      down->payload = pdu->payload;
      send(dst_ctx.sgsn, std::move(down));
      return;
    }
    send(router(), MessagePtr(decoded.value()->clone()));
    return;
  }

  // Downlink from the external network.
  if (const auto* dgram = dynamic_cast<const IpDatagram*>(&msg)) {
    if (dgram->dst == config_.ggsn_address) {
      handle_control(*dgram);
      return;
    }
    auto it = by_address_.find(dgram->dst);
    if (it == by_address_.end()) {
      VG_WARN("ggsn", name() << ": no PDP context for "
                             << dgram->dst.to_string());
      return;
    }
    const PdpContext& ctx = contexts_.at(it->second);
    ++pdus_forwarded_;
    auto pdu = pool_message<GtpPdu>();
    pdu->teid = ctx.sgsn_teid;
    pdu->payload = msg.encode();
    send(ctx.sgsn, std::move(pdu));
    return;
  }

  if (const auto* ack =
          dynamic_cast<const MapSendRoutingInfoForGprsAck*>(&msg)) {
    auto pending = pending_activations_.find(ack->imsi);
    if (pending == pending_activations_.end()) return;
    auto fail = [&] {
      auto rsp = pool_message<GgsnActivationResponse>();
      rsp->imsi = ack->imsi;
      rsp->success = false;
      send(router(),
           make_ip_datagram(config_.ggsn_address, pending->second, *rsp));
      pending_activations_.erase(pending);
    };
    if (!ack->found) {
      fail();
      return;
    }
    auto static_ip = static_addresses_.find(ack->imsi);
    if (static_ip == static_addresses_.end()) {
      // Network-initiated activation requires a static PDP address
      // (GSM 03.60; the paper calls this out as a TR 23.821 weakness).
      fail();
      return;
    }
    Node* sgsn = net().node_by_name(ack->sgsn_name);
    if (sgsn == nullptr) {
      fail();
      return;
    }
    auto note = pool_message<GtpPduNotificationRequest>();
    note->imsi = ack->imsi;
    note->address = static_ip->second;
    send(sgsn->id(), std::move(note));
    return;
  }

  if (dynamic_cast<const GtpPduNotificationResponse*>(&msg) != nullptr) {
    return;
  }

  VG_WARN("ggsn", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
