// Minimal IP layer for the simulated Gi / external H.323 network: an
// IpDatagram message that encapsulates any signaling Message as opaque
// payload bytes, plus an IpRouter node modelling the flat IP cloud between
// the GGSN and the H.323 world (Fig. 3 links (1), (2), (8)).
#pragma once

#include "common/ids.hpp"
#include "sim/network.hpp"
#include "sim/proto.hpp"

namespace vgprs {

struct IpDatagramInfo {
  IpAddress src;
  IpAddress dst;
  std::uint8_t protocol = 6;  // TCP (H.225/Q.931 ride on TCP), 17 = UDP
  std::vector<std::uint8_t> payload;

  void encode(ByteWriter& w) const {
    w.ip(src);
    w.ip(dst);
    w.u8(protocol);
    w.bytes(payload);
  }
  Status decode(ByteReader& r) {
    src = r.ip();
    dst = r.ip();
    protocol = r.u8();
    payload = r.bytes();
    return r.status();
  }
  [[nodiscard]] std::string describe() const;
};

using IpDatagram = ProtoMessage<IpDatagramInfo, 0x0610, "IP_Datagram">;

/// Encapsulates `inner` into a datagram from `src` to `dst`.
std::shared_ptr<IpDatagram> make_ip_datagram(IpAddress src, IpAddress dst,
                                             const Message& inner);

/// Decodes the inner signaling message of a datagram.
Result<std::unique_ptr<Message>> ip_payload(const IpDatagramInfo& dgram);

/// The external IP cloud: forwards datagrams to the node registered as the
/// owner of the destination address (Network::register_ip).
class IpRouter final : public Node {
 public:
  explicit IpRouter(std::string name) : Node(std::move(name)) {}
  void on_message(const Envelope& env) override;
};

void register_ip_messages();

}  // namespace vgprs
