#include "voice/codec.hpp"

#include <algorithm>
#include <cmath>

namespace vgprs {

double mos_from_one_way_delay_ms(double delay_ms) {
  // Simplified E-model: R = 93.2 - Id(delay); MOS from R.
  double id = 0.024 * delay_ms;
  if (delay_ms > 177.3) id += 0.11 * (delay_ms - 177.3);
  double r = std::clamp(93.2 - id, 0.0, 100.0);
  double mos =
      1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6;
  return std::clamp(mos, 1.0, 5.0);
}

double playout_delay_ms(double jitter_ms) {
  return std::max(20.0, 2.0 * jitter_ms);
}

}  // namespace vgprs
