// RTP packet message for the IP leg of the voice path (VMSC vocoder/PCU ->
// GTP tunnel -> GGSN -> H.323 terminal, Fig. 2(b) path (6)(4)).
#pragma once

#include "common/ids.hpp"
#include "sim/proto.hpp"

namespace vgprs {

struct RtpPacketInfo {
  std::uint32_t ssrc = 0;
  std::uint32_t seq = 0;
  std::uint32_t timestamp = 0;   // in 8 kHz samples, RTP convention
  std::int64_t origin_us = 0;    // simulation-side latency probe
  std::uint16_t payload_bytes = 33;

  void encode(ByteWriter& w) const {
    w.u32(ssrc);
    w.u32(seq);
    w.u32(timestamp);
    w.u64(static_cast<std::uint64_t>(origin_us));
    w.u16(payload_bytes);
  }
  Status decode(ByteReader& r) {
    ssrc = r.u32();
    seq = r.u32();
    timestamp = r.u32();
    origin_us = static_cast<std::int64_t>(r.u64());
    payload_bytes = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{ssrc=" + std::to_string(ssrc) + " #" + std::to_string(seq) +
           "}";
  }
};

using RtpPacket = ProtoMessage<RtpPacketInfo, 0x0A01, "RTP_Packet">;

void register_voice_messages();

}  // namespace vgprs
