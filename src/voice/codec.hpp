// GSM full-rate vocoder frame model.  The paper's VMSC contains a vocoder
// bank that transcodes circuit-switched TCH frames into VoIP packets; we
// model timing and sizes (not signal processing), which is what the voice
// path latency budget of Fig. 3 depends on.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vgprs {

struct GsmFrCodec {
  /// One speech frame: 260 bits -> 33 bytes on the TCH, every 20 ms.
  static constexpr std::uint16_t kFrameBytes = 33;
  static constexpr SimDuration kFrameInterval = SimDuration::millis(20);
  /// Algorithmic look-ahead + processing budget per transcode direction.
  static constexpr SimDuration kTranscodeDelay = SimDuration::millis(5);
  static constexpr std::uint32_t kBitrateBps = 13'000;
};

/// RTP/UDP/IP overhead per voice packet (uncompressed headers).
struct RtpOverhead {
  static constexpr std::uint16_t kRtpHeader = 12;
  static constexpr std::uint16_t kUdpHeader = 8;
  static constexpr std::uint16_t kIpHeader = 20;
  static constexpr std::uint16_t total() {
    return kRtpHeader + kUdpHeader + kIpHeader;
  }
};

/// Crude E-model style MOS estimate from one-way mouth-to-ear delay.
/// Anchors: <150 ms is toll quality; ~400 ms is the ITU G.114 limit.
[[nodiscard]] double mos_from_one_way_delay_ms(double delay_ms);

/// Jitter-buffer playout delay needed to cover `jitter_ms` variation with a
/// small loss budget (rule of thumb: 2x measured jitter, min one frame).
[[nodiscard]] double playout_delay_ms(double jitter_ms);

}  // namespace vgprs
