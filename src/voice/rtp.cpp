#include "voice/rtp.hpp"

namespace vgprs {

void register_voice_messages() { register_message<RtpPacket>(); }

}  // namespace vgprs
