// Vmsc: the paper's contribution — a router-based softswitch that replaces
// the GSM MSC.  Toward the BSS/VLR/HLR it is exactly an MSC (all of that
// machinery is inherited, unmodified, from MscBase).  Beyond it:
//
//  * at registration it performs a GPRS attach and activates a low-priority
//    signaling PDP context, then registers the subscriber's MSISDN as an
//    H.323 alias at the gatekeeper (Fig. 4, steps 1.3-1.5);
//  * it runs H.225 RAS + Q.931 call signaling "just like an H.323
//    terminal", tunneled through the GPRS core via Gb/GTP (Figs. 5, 6);
//  * per call it activates a second, conversational-QoS PDP context for
//    the voice packets and transcodes TCH frames <-> RTP in its vocoder
//    bank (steps 2.9 / 4.8, release steps 3.1-3.4);
//  * it stays the anchor across inter-system handoff (Fig. 9), inherited
//    from MscBase.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "gprs/ip.hpp"
#include "gprs/messages.hpp"
#include "gsm/msc_base.hpp"
#include "h323/messages.hpp"
#include "sim/subscriber_pool.hpp"
#include "voice/codec.hpp"
#include "voice/rtp.hpp"

namespace vgprs {

class Vmsc : public MscBase {
 public:
  struct VmscConfig {
    Config base;
    std::string sgsn_name;
    IpAddress gk_ip;
    std::uint16_t signal_port = 1720;
    std::uint16_t media_port = 5004;
    QosProfile signaling_qos{QosClass::kBackground, 8, 3};
    QosProfile voice_qos{QosClass::kConversational, 13, 1};
    /// Ablation (Section 6): deactivate the signaling PDP context when the
    /// MS is idle, TR 23.821-style, and re-activate per call.  Increases
    /// call setup time; MT calls are then undeliverable.
    bool deactivate_pdp_when_idle = false;
    /// Vocoder transcode budget per direction.
    SimDuration transcode_delay = GsmFrCodec::kTranscodeDelay;
  };

  /// vGPRS-side registration progress of one MS (the "MS table" of the
  /// paper, holding MM and PDP contexts).
  struct VgprsState {
    enum class Phase : std::uint8_t {
      kNone,
      kAttaching,           // GPRS attach in flight (step 1.3)
      kActivatingSignaling, // signaling PDP context in flight (step 1.3)
      kRasRegistering,      // RRQ in flight (step 1.4)
      kReady,               // RCF received (step 1.5)
    };

    Phase phase = Phase::kNone;
    Msisdn alias;
    IpAddress signaling_ip;
    IpAddress voice_ip;
    bool signaling_active = false;
    bool voice_active = false;
    std::uint32_t endpoint_id = 0;

    // per-call H.323 leg
    IpAddress remote_signal;
    IpAddress remote_media;
    bool awaiting_admission = false;  // MT: ARQ outstanding before paging
    bool pending_drq_deactivate = false;
    Msisdn mt_calling;   // MT: caller identity from the tunneled Setup
    CallRef mt_call_ref;
    bool mo_pending = false;  // MO queued while re-activating the PDP ctx
    bool pending_detach = false;  // GPRS detach deferred until the UCF
  };

  Vmsc(std::string name, VmscConfig config)
      : MscBase(std::move(name), config.base), config_(std::move(config)) {}

  [[nodiscard]] const VgprsState* vgprs_state(Imsi imsi) const;
  [[nodiscard]] std::size_t ready_count() const;
  [[nodiscard]] const VmscConfig& vmsc_config() const { return config_; }

  /// Fired when the RAS registration completes for an MS.
  std::function<void(Imsi)> on_endpoint_ready;

  /// Switch restart: the MS table (MM contexts, PDP state, endpoint ids) is
  /// volatile on top of everything MscBase loses.  Subscribers re-attach
  /// through cause-4-driven re-registration.
  void on_restart() override {
    MscBase::on_restart();
    vgprs_states_.clear();
  }

 protected:
  void on_registration_substrate(MsContext& ctx) override;
  void route_mo_call(MsContext& ctx) override;
  void on_ms_disconnect(MsContext& ctx, ClearCause cause) override;
  void on_mt_alerting(MsContext& ctx) override;
  void on_mt_connected(MsContext& ctx) override;
  void on_call_cleared(MsContext& ctx) override;
  void on_call_aborted(MsContext& ctx) override;
  void on_subscriber_removed(const MsContext& ctx) override;
  void on_uplink_voice(MsContext& ctx, const VoiceFrameInfo& frame) override;
  bool on_unhandled(const Envelope& env) override;

 private:
  [[nodiscard]] NodeId sgsn() const;
  VgprsState& vstate(Imsi imsi) { return vgprs_states_[imsi]; }

  /// Sends an H.323/IP message from the MS's signaling address through the
  /// GPRS tunnel (Gb toward the SGSN).
  void send_tunneled(Imsi imsi, IpAddress src, IpAddress dst,
                     const Message& inner,
                     SimDuration processing = SimDuration::zero());

  void release_h323_leg(MsContext& ctx, ClearCause cause);
  /// Arms retransmission for a DRQ just sent for `call_ref`; gives up by
  /// running the deferred voice-context deactivation locally.
  void arm_drq(Imsi imsi, CallRef call_ref);
  /// Sends the GPRS detach (with retransmission) and forgets the MS table
  /// entry.  Terminal: the detach is fire-and-forget beyond the backoff.
  void detach_and_forget(Imsi imsi);
  void activate_signaling_context(Imsi imsi);
  void activate_voice_context(Imsi imsi);
  void deactivate_context(Imsi imsi, Nsapi nsapi);
  void send_arq_for_mo(MsContext& ctx, VgprsState& vs);

  // GPRS control-plane handlers
  bool handle_gprs(const Envelope& env);
  // Tunneled H.323 handlers
  void handle_tunneled(Imsi imsi, const IpDatagramInfo& dgram,
                       const Message& inner);

  static constexpr Nsapi kSignalingNsapi{5};
  static constexpr Nsapi kVoiceNsapi{6};

  VmscConfig config_;
  SubscriberTable<Imsi, VgprsState> vgprs_states_;
};

}  // namespace vgprs
