#include "vgprs/vmsc.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

const Vmsc::VgprsState* Vmsc::vgprs_state(Imsi imsi) const {
  return vgprs_states_.find(imsi);
}

std::size_t Vmsc::ready_count() const {
  std::size_t n = 0;
  for (const auto& [imsi, vs] : vgprs_states_) {
    (void)imsi;
    if (vs.phase == VgprsState::Phase::kReady) ++n;
  }
  return n;
}

NodeId Vmsc::sgsn() const {
  Node* n = net().node_by_name(config_.sgsn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no SGSN");
  return n->id();
}

void Vmsc::send_tunneled(Imsi imsi, IpAddress src, IpAddress dst,
                         const Message& inner, SimDuration processing) {
  auto dgram = make_ip_datagram(src, dst, inner);
  auto frame = pool_message<GbUnitData>();
  frame->imsi = imsi;
  frame->payload = dgram->encode();
  send(sgsn(), std::move(frame), processing);
}

// --- registration substrate (paper steps 1.3-1.5) -----------------------------

void Vmsc::on_registration_substrate(MsContext& ctx) {
  VgprsState& vs = vstate(ctx.imsi);
  vs.alias = ctx.msisdn;
  if (vs.phase == VgprsState::Phase::kReady) {
    // Re-registration (e.g. movement within the VMSC area).
    finish_registration(ctx);
    return;
  }
  vs.phase = VgprsState::Phase::kAttaching;
  auto attach = pool_message<GprsAttachRequest>();
  attach->imsi = ctx.imsi;
  send(sgsn(), std::move(attach));
  retx().arm(
      retx_key(RetxKind::kGprsAttach, ctx.imsi),
      [this, imsi = ctx.imsi] {
        VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr || st->phase != VgprsState::Phase::kAttaching) {
          return;
        }
        auto again = pool_message<GprsAttachRequest>();
        again->imsi = imsi;
        send(sgsn(), std::move(again));
      },
      [this, imsi = ctx.imsi] {
        // Giving up on the attach must also clear the vGPRS phase, or the
        // endpoint is wedged in kAttaching and every later registration
        // attempt short-circuits on the stale state.
        if (VgprsState* st = vgprs_states_.find(imsi);
            st != nullptr && st->phase == VgprsState::Phase::kAttaching) {
          st->phase = VgprsState::Phase::kNone;
        }
        if (MsContext* c = context(imsi)) {
          if (c->step == Step::kSubstrate) reject_registration(*c, 17);
        }
      });
}

void Vmsc::activate_signaling_context(Imsi imsi) {
  net().spans().open(SpanKind::kPdpActivation, imsi.value(), name(), now());
  auto req = pool_message<ActivatePdpContextRequest>();
  req->imsi = imsi;
  req->nsapi = kSignalingNsapi;
  req->qos = config_.signaling_qos;
  send(sgsn(), std::move(req));
  retx().arm(
      retx_key(RetxKind::kPdpActivateSig, imsi),
      [this, imsi] {
        VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr || st->signaling_active) return;
        auto again = pool_message<ActivatePdpContextRequest>();
        again->imsi = imsi;
        again->nsapi = kSignalingNsapi;
        again->qos = config_.signaling_qos;
        send(sgsn(), std::move(again));
      },
      [this, imsi] {
        // The signaling context is the substrate for everything: without
        // it neither registration nor a queued MO call can proceed.
        net().spans().close(SpanKind::kPdpActivation, imsi.value(),
                            SpanOutcome::kTimeout, now());
        if (VgprsState* st = vgprs_states_.find(imsi); st != nullptr) {
          st->mo_pending = false;
          if (st->phase == VgprsState::Phase::kActivatingSignaling) {
            st->phase = VgprsState::Phase::kNone;
          }
        }
        if (MsContext* ctx = context(imsi)) {
          if (ctx->step == Step::kSubstrate) {
            reject_registration(*ctx, 17);
          } else if (ctx->proc == Proc::kMoCall &&
                     ctx->step != Step::kActive) {
            reject_mo_call(*ctx, ClearCause::kNetworkFailure);
          }
        }
      });
}

void Vmsc::activate_voice_context(Imsi imsi) {
  net().spans().open(SpanKind::kPdpActivation, imsi.value(), name(), now());
  auto req = pool_message<ActivatePdpContextRequest>();
  req->imsi = imsi;
  req->nsapi = kVoiceNsapi;
  req->qos = config_.voice_qos;
  send(sgsn(), std::move(req));
  retx().arm(
      retx_key(RetxKind::kPdpActivateVoice, imsi),
      [this, imsi] {
        VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr || st->voice_active) return;
        MsContext* ctx = context(imsi);
        if (ctx == nullptr || ctx->step != Step::kActive) return;
        auto again = pool_message<ActivatePdpContextRequest>();
        again->imsi = imsi;
        again->nsapi = kVoiceNsapi;
        again->qos = config_.voice_qos;
        send(sgsn(), std::move(again));
      },
      [this, imsi] {
        // The call survives without the conversational context: uplink
        // voice falls back to the signaling context (degraded QoS), which
        // is exactly what on_uplink_voice does when voice_active is false.
        net().spans().close(SpanKind::kPdpActivation, imsi.value(),
                            SpanOutcome::kTimeout, now());
        VG_WARN("vmsc", name() << ": no voice PDP context for "
                               << imsi.to_string()
                               << "; falling back to signaling context");
      });
}

void Vmsc::deactivate_context(Imsi imsi, Nsapi nsapi) {
  net().spans().open(SpanKind::kPdpDeactivation, imsi.value(), name(), now());
  auto req = pool_message<DeactivatePdpContextRequest>();
  req->imsi = imsi;
  req->nsapi = nsapi;
  send(sgsn(), std::move(req));
  const RetxKind kind = nsapi == kVoiceNsapi ? RetxKind::kPdpDeactivateVoice
                                             : RetxKind::kPdpDeactivateSig;
  retx().arm(
      retx_key(kind, imsi),
      [this, imsi, nsapi] {
        const VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr) return;
        if (nsapi == kVoiceNsapi ? !st->voice_active
                                 : !st->signaling_active) {
          return;
        }
        auto again = pool_message<DeactivatePdpContextRequest>();
        again->imsi = imsi;
        again->nsapi = nsapi;
        send(sgsn(), std::move(again));
      },
      [this, imsi, nsapi] {
        // Locally the context is gone either way; a leaked context at the
        // SGSN is reclaimed at detach.
        net().spans().close(SpanKind::kPdpDeactivation, imsi.value(),
                            SpanOutcome::kTimeout, now());
        VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr) return;
        if (nsapi == kVoiceNsapi) {
          st->voice_active = false;
          st->voice_ip = IpAddress{};
        } else {
          st->signaling_active = false;
          st->signaling_ip = IpAddress{};
        }
      });
}

// --- MO call (paper Fig. 5) -----------------------------------------------------

void Vmsc::send_arq_for_mo(MsContext& ctx, VgprsState& vs) {
  auto arq = pool_message<RasArq>();
  arq->endpoint_id = vs.endpoint_id;
  arq->call_ref = ctx.call_ref;
  arq->calling = ctx.calling;
  arq->called = ctx.called;
  send_tunneled(ctx.imsi, vs.signaling_ip, config_.gk_ip, *arq);
  retx().arm(
      retx_key(RetxKind::kRasArq, ctx.imsi),
      [this, imsi = ctx.imsi] {
        // Re-emit without re-arming (arm() would restart the backoff).
        MsContext* c = context(imsi);
        VgprsState* st = vgprs_states_.find(imsi);
        if (c == nullptr || st == nullptr || c->proc != Proc::kMoCall ||
            st->remote_signal.valid()) {
          return;
        }
        auto again = pool_message<RasArq>();
        again->endpoint_id = st->endpoint_id;
        again->call_ref = c->call_ref;
        again->calling = c->calling;
        again->called = c->called;
        send_tunneled(imsi, st->signaling_ip, config_.gk_ip, *again);
      },
      [this, imsi = ctx.imsi] {
        if (MsContext* c = context(imsi)) {
          if (c->proc == Proc::kMoCall && c->step != Step::kActive) {
            reject_mo_call(*c, ClearCause::kNetworkFailure);
          }
        }
      });
}

void Vmsc::route_mo_call(MsContext& ctx) {
  VgprsState& vs = vstate(ctx.imsi);
  if (vs.phase != VgprsState::Phase::kReady) {
    reject_mo_call(ctx, ClearCause::kNetworkFailure);
    return;
  }
  if (!vs.signaling_active) {
    // Idle-deactivation ablation: the signaling context must be rebuilt
    // (and the alias re-registered, since the PDP address is dynamic)
    // before any call signaling can flow.  This is the setup-time penalty
    // Section 6 attributes to the TR 23.821 lifecycle.
    vs.mo_pending = true;
    activate_signaling_context(ctx.imsi);
    return;
  }
  send_arq_for_mo(ctx, vs);
}

// --- release (paper steps 3.1-3.4) -----------------------------------------------

void Vmsc::arm_drq(Imsi imsi, CallRef call_ref) {
  retx().arm(
      retx_key(RetxKind::kRasDrq, imsi),
      [this, imsi, call_ref] {
        VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr || !st->signaling_active) return;
        auto again = pool_message<RasDrq>();
        again->endpoint_id = st->endpoint_id;
        again->call_ref = call_ref;
        send_tunneled(imsi, st->signaling_ip, config_.gk_ip, *again);
      },
      [this, imsi] {
        // The gatekeeper will age the admission out; finish the local
        // teardown (step 3.4) that was waiting on the DCF.
        VgprsState* st = vgprs_states_.find(imsi);
        if (st == nullptr) return;
        if (st->pending_drq_deactivate) {
          st->pending_drq_deactivate = false;
          deactivate_context(imsi, kVoiceNsapi);
        }
      });
}

void Vmsc::detach_and_forget(Imsi imsi) {
  auto detach = pool_message<GprsDetachRequest>();
  detach->imsi = imsi;
  send(sgsn(), std::move(detach));
  retx().arm(
      retx_key(RetxKind::kGprsDetach, imsi),
      [this, imsi] {
        auto again = pool_message<GprsDetachRequest>();
        again->imsi = imsi;
        send(sgsn(), std::move(again));
      },
      // The SGSN detach is idempotent and the MS table entry is already
      // gone; nothing further to unwind.
      std::function<void()>{});
  vgprs_states_.erase(imsi);
}

void Vmsc::release_h323_leg(MsContext& ctx, ClearCause cause) {
  VgprsState& vs = vstate(ctx.imsi);
  // Step 3.2: release the H.323 leg.
  if (vs.remote_signal.valid() && vs.signaling_active) {
    auto rel = pool_message<Q931ReleaseComplete>();
    rel->call_ref = ctx.call_ref;
    rel->cause = static_cast<std::uint8_t>(cause);
    send_tunneled(ctx.imsi, vs.signaling_ip, vs.remote_signal, *rel);
  }
  if (vs.signaling_active) {
    // Step 3.3: disengage at the gatekeeper (charging stops).  Step 3.4
    // (voice context deactivation) follows when the DCF arrives.
    auto drq = pool_message<RasDrq>();
    drq->endpoint_id = vs.endpoint_id;
    drq->call_ref = ctx.call_ref;
    send_tunneled(ctx.imsi, vs.signaling_ip, config_.gk_ip, *drq);
    vs.pending_drq_deactivate = vs.voice_active;
    arm_drq(ctx.imsi, ctx.call_ref);
  } else if (vs.voice_active) {
    deactivate_context(ctx.imsi, kVoiceNsapi);
  }
}

void Vmsc::on_ms_disconnect(MsContext& ctx, ClearCause cause) {
  release_h323_leg(ctx, cause);
  complete_ms_release(ctx);
}

void Vmsc::on_call_aborted(MsContext& ctx) {
  release_h323_leg(ctx, ClearCause::kNetworkFailure);
}

void Vmsc::on_mt_alerting(MsContext& ctx) {
  VgprsState& vs = vstate(ctx.imsi);
  auto alert = pool_message<Q931Alerting>();
  alert->call_ref = ctx.call_ref;
  send_tunneled(ctx.imsi, vs.signaling_ip, vs.remote_signal, *alert);
}

void Vmsc::on_mt_connected(MsContext& ctx) {
  VgprsState& vs = vstate(ctx.imsi);
  auto conn = pool_message<Q931Connect>();
  conn->call_ref = ctx.call_ref;
  conn->media_address =
      TransportAddress(vs.signaling_ip, config_.media_port);
  send_tunneled(ctx.imsi, vs.signaling_ip, vs.remote_signal, *conn);
  // Step 4.8: second PDP context for the voice packets.
  activate_voice_context(ctx.imsi);
}

void Vmsc::on_call_cleared(MsContext& ctx) {
  VgprsState& vs = vstate(ctx.imsi);
  vs.remote_signal = IpAddress{};
  vs.remote_media = IpAddress{};
  vs.awaiting_admission = false;
  vs.mo_pending = false;
  if (config_.deactivate_pdp_when_idle && vs.signaling_active) {
    deactivate_context(ctx.imsi, kSignalingNsapi);
  }
}

void Vmsc::on_subscriber_removed(const MsContext& ctx) {
  VgprsState* found = vgprs_states_.find(ctx.imsi);
  if (found == nullptr) return;
  VgprsState& vs = *found;
  // Unregister the alias at the gatekeeper first (a stale endpoint id is
  // ignored if the subscriber already re-registered elsewhere); the GPRS
  // detach waits for the UCF so the confirmation can still ride the
  // signaling context.  Without an active context, detach immediately.
  if (vs.signaling_active && vs.endpoint_id != 0) {
    vs.pending_detach = true;
    auto urq = pool_message<RasUrq>();
    urq->alias = vs.alias;
    urq->endpoint_id = vs.endpoint_id;
    send_tunneled(ctx.imsi, vs.signaling_ip, config_.gk_ip, *urq);
    retx().arm(
        retx_key(RetxKind::kRasUrq, ctx.imsi),
        [this, imsi = ctx.imsi] {
          VgprsState* st = vgprs_states_.find(imsi);
          if (st == nullptr || !st->pending_detach ||
              !st->signaling_active) {
            return;
          }
          auto again = pool_message<RasUrq>();
          again->alias = st->alias;
          again->endpoint_id = st->endpoint_id;
          send_tunneled(imsi, st->signaling_ip, config_.gk_ip, *again);
        },
        [this, imsi = ctx.imsi] {
          // The gatekeeper stayed silent; detach anyway — a stale alias
          // there is replaced on the next registration.
          VgprsState* st = vgprs_states_.find(imsi);
          if (st == nullptr || !st->pending_detach) return;
          detach_and_forget(imsi);
        });
    return;
  }
  detach_and_forget(ctx.imsi);
}

// --- voice interworking (vocoder bank + PCU) ---------------------------------------

void Vmsc::on_uplink_voice(MsContext& ctx, const VoiceFrameInfo& frame) {
  VgprsState& vs = vstate(ctx.imsi);
  if (!vs.remote_media.valid()) return;
  auto rtp = pool_message<RtpPacket>();
  rtp->ssrc = vs.endpoint_id;
  rtp->seq = frame.seq;
  rtp->timestamp = frame.seq * 160;
  rtp->origin_us = frame.origin_us;
  IpAddress src = vs.voice_active ? vs.voice_ip : vs.signaling_ip;
  send_tunneled(ctx.imsi, src, vs.remote_media, *rtp,
                config_.transcode_delay);
}

// --- GPRS control plane ---------------------------------------------------------------

bool Vmsc::handle_gprs(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* acc = dynamic_cast<const GprsAttachAccept*>(&msg)) {
    retx().ack(retx_key(RetxKind::kGprsAttach, acc->imsi));
    VgprsState& vs = vstate(acc->imsi);
    if (vs.phase != VgprsState::Phase::kAttaching) return true;
    vs.phase = VgprsState::Phase::kActivatingSignaling;
    activate_signaling_context(acc->imsi);
    return true;
  }
  if (const auto* rej = dynamic_cast<const GprsAttachReject*>(&msg)) {
    retx().ack(retx_key(RetxKind::kGprsAttach, rej->imsi));
    VG_WARN("vmsc", name() << ": GPRS attach rejected for "
                           << rej->imsi.to_string());
    if (MsContext* ctx = context(rej->imsi)) {
      if (ctx->step == Step::kSubstrate) reject_registration(*ctx, 17);
    }
    vgprs_states_.erase(rej->imsi);
    return true;
  }
  if (const auto* acc = dynamic_cast<const ActivatePdpContextAccept*>(&msg)) {
    retx().ack(retx_key(acc->nsapi == kVoiceNsapi
                            ? RetxKind::kPdpActivateVoice
                            : RetxKind::kPdpActivateSig,
                        acc->imsi));
    net().spans().close(SpanKind::kPdpActivation, acc->imsi.value(),
                        SpanOutcome::kOk, now());
    VgprsState& vs = vstate(acc->imsi);
    if (acc->nsapi == kVoiceNsapi) {
      // The call may have been released while the activation was in
      // flight; a voice context without an active call is torn down
      // immediately, or it would leak until detach.
      MsContext* ctx = context(acc->imsi);
      if (ctx == nullptr || ctx->step != Step::kActive) {
        deactivate_context(acc->imsi, kVoiceNsapi);
        return true;
      }
      vs.voice_ip = acc->address;
      vs.voice_active = true;
      return true;
    }
    vs.signaling_ip = acc->address;
    vs.signaling_active = true;
    vs.phase = VgprsState::Phase::kRasRegistering;
    // Step 1.4: end-point registration at the gatekeeper, through the
    // freshly activated signaling context.
    auto rrq = pool_message<RasRrq>();
    rrq->call_signal_address =
        TransportAddress(vs.signaling_ip, config_.signal_port);
    rrq->alias = vs.alias;
    send_tunneled(acc->imsi, vs.signaling_ip, config_.gk_ip, *rrq);
    retx().arm(
        retx_key(RetxKind::kRasRrq, acc->imsi),
        [this, imsi = acc->imsi] {
          VgprsState* st = vgprs_states_.find(imsi);
          if (st == nullptr ||
              st->phase != VgprsState::Phase::kRasRegistering ||
              !st->signaling_active) {
            return;
          }
          auto again = pool_message<RasRrq>();
          again->call_signal_address =
              TransportAddress(st->signaling_ip, config_.signal_port);
          again->alias = st->alias;
          send_tunneled(imsi, st->signaling_ip, config_.gk_ip, *again);
        },
        [this, imsi = acc->imsi] {
          if (VgprsState* st = vgprs_states_.find(imsi);
              st != nullptr &&
              st->phase == VgprsState::Phase::kRasRegistering) {
            st->phase = VgprsState::Phase::kNone;
          }
          if (MsContext* c = context(imsi)) {
            if (c->step == Step::kSubstrate) reject_registration(*c, 17);
          }
        });
    return true;
  }
  if (const auto* rej = dynamic_cast<const ActivatePdpContextReject*>(&msg)) {
    retx().ack(retx_key(rej->nsapi == kVoiceNsapi
                            ? RetxKind::kPdpActivateVoice
                            : RetxKind::kPdpActivateSig,
                        rej->imsi));
    net().spans().close(SpanKind::kPdpActivation, rej->imsi.value(),
                        SpanOutcome::kRejected, now());
    VG_WARN("vmsc", name() << ": PDP activation rejected for "
                           << rej->imsi.to_string() << " cause "
                           << static_cast<int>(rej->cause));
    // A signaling-context rejection ends the activation phase; leaving the
    // phase at kActivatingSignaling wedged every subsequent registration
    // for this IMSI (vgprs_verify deadlock finding).
    if (rej->nsapi != kVoiceNsapi) {
      if (VgprsState* st = vgprs_states_.find(rej->imsi);
          st != nullptr &&
          st->phase == VgprsState::Phase::kActivatingSignaling) {
        st->phase = VgprsState::Phase::kNone;
      }
    }
    if (MsContext* ctx = context(rej->imsi)) {
      if (ctx->step == Step::kSubstrate) reject_registration(*ctx, 17);
    }
    return true;
  }
  if (const auto* acc =
          dynamic_cast<const DeactivatePdpContextAccept*>(&msg)) {
    retx().ack(retx_key(acc->nsapi == kVoiceNsapi
                            ? RetxKind::kPdpDeactivateVoice
                            : RetxKind::kPdpDeactivateSig,
                        acc->imsi));
    net().spans().close(SpanKind::kPdpDeactivation, acc->imsi.value(),
                        SpanOutcome::kOk, now());
    VgprsState& vs = vstate(acc->imsi);
    if (acc->nsapi == kVoiceNsapi) {
      vs.voice_active = false;
      vs.voice_ip = IpAddress{};
    } else {
      vs.signaling_active = false;
      vs.signaling_ip = IpAddress{};
    }
    return true;
  }
  if (const auto* acc = dynamic_cast<const GprsDetachAccept*>(&msg)) {
    retx().ack(retx_key(RetxKind::kGprsDetach, acc->imsi));
    return true;
  }
  if (const auto* frame = dynamic_cast<const GbUnitData*>(&msg)) {
    auto decoded = MessageRegistry::instance().decode(frame->payload);
    if (!decoded.ok()) {
      VG_WARN("vmsc", name() << ": bad tunneled frame: "
                             << decoded.error().to_string());
      return true;
    }
    const auto* dgram =
        dynamic_cast<const IpDatagram*>(decoded.value().get());
    if (dgram == nullptr) return true;
    auto inner = ip_payload(*dgram);
    if (!inner.ok()) {
      VG_WARN("vmsc", name() << ": bad tunneled payload: "
                             << inner.error().to_string());
      return true;
    }
    handle_tunneled(frame->imsi, *dgram, *inner.value());
    return true;
  }

  return false;
}

// --- tunneled H.323 signaling -------------------------------------------------------------

void Vmsc::handle_tunneled(Imsi imsi, const IpDatagramInfo& dgram,
                           const Message& inner) {
  VgprsState& vs = vstate(imsi);

  if (const auto* rcf = dynamic_cast<const RasRcf*>(&inner)) {
    retx().ack(retx_key(RetxKind::kRasRrq, imsi));
    vs.endpoint_id = rcf->endpoint_id;
    vs.phase = VgprsState::Phase::kReady;
    MsContext* ctx = context(imsi);
    if (ctx != nullptr && ctx->step == Step::kSubstrate) {
      // Step 1.5 done: MM and PDP contexts recorded, complete step 1.6.
      finish_registration(*ctx);
      if (config_.deactivate_pdp_when_idle) {
        deactivate_context(imsi, kSignalingNsapi);
      }
    }
    if (vs.mo_pending && ctx != nullptr) {
      vs.mo_pending = false;
      send_arq_for_mo(*ctx, vs);
    }
    if (on_endpoint_ready) on_endpoint_ready(imsi);
    return;
  }
  if (const auto* rrj = dynamic_cast<const RasRrj*>(&inner)) {
    retx().ack(retx_key(RetxKind::kRasRrq, imsi));
    VG_WARN("vmsc", name() << ": RAS registration rejected, cause "
                           << static_cast<int>(rrj->cause));
    if (vs.phase == VgprsState::Phase::kRasRegistering) {
      vs.phase = VgprsState::Phase::kNone;
    }
    if (MsContext* ctx = context(imsi)) {
      if (ctx->step == Step::kSubstrate) reject_registration(*ctx, 17);
    }
    return;
  }

  if (const auto* acf = dynamic_cast<const RasAcf*>(&inner)) {
    retx().ack(retx_key(RetxKind::kRasArq, imsi));
    MsContext* ctx = context(imsi);
    if (ctx == nullptr) return;
    if (vs.awaiting_admission) {
      // Step 4.3 complete: begin GSM-side delivery (paging, step 4.4).
      vs.awaiting_admission = false;
      if (!start_mt_call(imsi, vs.mt_calling, vs.mt_call_ref)) {
        auto rel = pool_message<Q931ReleaseComplete>();
        rel->call_ref = vs.mt_call_ref;
        rel->cause = 17;  // busy
        send_tunneled(imsi, vs.signaling_ip, vs.remote_signal, *rel);
      }
      return;
    }
    if (ctx->proc == Proc::kMoCall) {
      // Step 2.3 complete: the gatekeeper supplied the destination call
      // signaling address; send the Q.931 Setup (step 2.4).
      vs.remote_signal = acf->dest_call_signal_address.ip();
      auto setup = pool_message<Q931Setup>();
      setup->call_ref = ctx->call_ref;
      setup->calling = ctx->calling;
      setup->called = ctx->called;
      setup->src_signal_address =
          TransportAddress(vs.signaling_ip, config_.signal_port);
      setup->media_address =
          TransportAddress(vs.signaling_ip, config_.media_port);
      send_tunneled(imsi, vs.signaling_ip, vs.remote_signal, *setup);
      retx().arm(
          retx_key(RetxKind::kQ931Setup, imsi),
          [this, imsi] {
            MsContext* c = context(imsi);
            VgprsState* st = vgprs_states_.find(imsi);
            if (c == nullptr || st == nullptr ||
                c->proc != Proc::kMoCall ||
                c->step != Step::kMoProgress ||
                !st->remote_signal.valid()) {
              return;
            }
            auto again = pool_message<Q931Setup>();
            again->call_ref = c->call_ref;
            again->calling = c->calling;
            again->called = c->called;
            again->src_signal_address =
                TransportAddress(st->signaling_ip, config_.signal_port);
            again->media_address =
                TransportAddress(st->signaling_ip, config_.media_port);
            send_tunneled(imsi, st->signaling_ip, st->remote_signal,
                          *again);
          },
          [this, imsi] {
            if (MsContext* c = context(imsi)) {
              if (c->proc == Proc::kMoCall && c->step != Step::kActive) {
                reject_mo_call(*c, ClearCause::kNetworkFailure);
              }
            }
          });
    }
    return;
  }
  if (const auto* arj = dynamic_cast<const RasArj*>(&inner)) {
    retx().ack(retx_key(RetxKind::kRasArq, imsi));
    MsContext* ctx = context(imsi);
    if (ctx == nullptr) return;
    if (vs.awaiting_admission) {
      vs.awaiting_admission = false;
      auto rel = pool_message<Q931ReleaseComplete>();
      rel->call_ref = vs.mt_call_ref;
      rel->cause = 47;
      send_tunneled(imsi, vs.signaling_ip, vs.remote_signal, *rel);
      return;
    }
    if (ctx->proc == Proc::kMoCall) {
      VG_INFO("vmsc", name() << ": admission rejected, cause "
                             << static_cast<int>(arj->cause));
      reject_mo_call(*ctx, ClearCause::kCallRejected);
    }
    return;
  }
  if (dynamic_cast<const RasDcf*>(&inner) != nullptr) {
    retx().ack(retx_key(RetxKind::kRasDrq, imsi));
    if (vs.pending_drq_deactivate) {
      // Step 3.4: deactivate the per-call voice PDP context.
      vs.pending_drq_deactivate = false;
      deactivate_context(imsi, kVoiceNsapi);
    }
    return;
  }
  if (dynamic_cast<const RasUcf*>(&inner) != nullptr) {
    retx().ack(retx_key(RetxKind::kRasUrq, imsi));
    if (vs.pending_detach) detach_and_forget(imsi);
    return;
  }

  if (const auto* setup = dynamic_cast<const Q931Setup*>(&inner)) {
    // Step 4.2: an incoming H.323 call reached the MS's signaling context.
    MsContext* ctx = context(imsi);
    auto busy = [&] {
      auto rel = pool_message<Q931ReleaseComplete>();
      rel->call_ref = setup->call_ref;
      rel->cause = 17;
      send_tunneled(imsi, vs.signaling_ip, setup->src_signal_address.ip(),
                    *rel);
    };
    if (ctx == nullptr || !ctx->registered || ctx->proc != Proc::kNone ||
        vs.phase != VgprsState::Phase::kReady) {
      busy();
      return;
    }
    vs.remote_signal = setup->src_signal_address.ip();
    vs.remote_media = setup->media_address.ip();
    vs.mt_calling = setup->calling;
    vs.mt_call_ref = setup->call_ref;
    auto proceed = pool_message<Q931CallProceeding>();
    proceed->call_ref = setup->call_ref;
    send_tunneled(imsi, vs.signaling_ip, vs.remote_signal, *proceed);
    // Step 4.3: admission for the terminating leg.
    vs.awaiting_admission = true;
    auto arq = pool_message<RasArq>();
    arq->endpoint_id = vs.endpoint_id;
    arq->call_ref = setup->call_ref;
    arq->calling = setup->calling;
    arq->called = vs.alias;
    arq->answer_call = true;
    send_tunneled(imsi, vs.signaling_ip, config_.gk_ip, *arq);
    retx().arm(
        retx_key(RetxKind::kRasArq, imsi),
        [this, imsi] {
          VgprsState* st = vgprs_states_.find(imsi);
          if (st == nullptr || !st->awaiting_admission ||
              !st->signaling_active) {
            return;
          }
          auto again = pool_message<RasArq>();
          again->endpoint_id = st->endpoint_id;
          again->call_ref = st->mt_call_ref;
          again->calling = st->mt_calling;
          again->called = st->alias;
          again->answer_call = true;
          send_tunneled(imsi, st->signaling_ip, config_.gk_ip, *again);
        },
        [this, imsi] {
          // No admission decision: tell the caller the leg failed; no GSM
          // resources were committed yet (paging starts only at the ACF).
          VgprsState* st = vgprs_states_.find(imsi);
          if (st == nullptr || !st->awaiting_admission) return;
          st->awaiting_admission = false;
          auto rel = pool_message<Q931ReleaseComplete>();
          rel->call_ref = st->mt_call_ref;
          rel->cause = 47;
          send_tunneled(imsi, st->signaling_ip, st->remote_signal, *rel);
        });
    return;
  }
  if (dynamic_cast<const Q931CallProceeding*>(&inner) != nullptr) {
    retx().ack(retx_key(RetxKind::kQ931Setup, imsi));
    return;  // step 2.4 response; informational
  }
  if (const auto* alert = dynamic_cast<const Q931Alerting*>(&inner)) {
    retx().ack(retx_key(RetxKind::kQ931Setup, imsi));
    // Step 2.6 -> 2.7: ring-back toward the MS.  Tunneled messages are
    // dispatched by the subscriber the datagram was addressed to: two call
    // legs may legitimately share one H.225 call reference (e.g. an
    // MS-to-MS call hairpinning at the GGSN).
    MsContext* ctx = context(imsi);
    if (ctx != nullptr && ctx->proc == Proc::kMoCall &&
        ctx->step == Step::kMoProgress && alert->call_ref == ctx->call_ref) {
      notify_mo_alerting(*ctx);
    }
    return;
  }
  if (const auto* conn = dynamic_cast<const Q931Connect*>(&inner)) {
    retx().ack(retx_key(RetxKind::kQ931Setup, imsi));
    // Step 2.8: answer; step 2.9: activate the voice context.
    MsContext* ctx = context(imsi);
    // Answer racing a local release (the MS hung up while the Connect was
    // in flight) must not resurrect the call: only an MO call still in
    // progress may transition to active.
    if (ctx == nullptr || ctx->proc != Proc::kMoCall ||
        ctx->step != Step::kMoProgress || conn->call_ref != ctx->call_ref) {
      return;
    }
    vs.remote_media = conn->media_address.ip();
    notify_mo_connect(*ctx);
    activate_voice_context(imsi);
    return;
  }
  if (const auto* rel = dynamic_cast<const Q931ReleaseComplete*>(&inner)) {
    retx().ack(retx_key(RetxKind::kQ931Setup, imsi));
    MsContext* ctx = context(imsi);
    if (ctx != nullptr && rel->call_ref != ctx->call_ref) ctx = nullptr;
    if (ctx == nullptr || ctx->proc == Proc::kNone) return;
    if (ctx->step == Step::kReleasingMs || ctx->step == Step::kReleasingNet ||
        ctx->step == Step::kClearing) {
      return;  // already clearing
    }
    release_from_network(*ctx, static_cast<ClearCause>(rel->cause));
    auto drq = pool_message<RasDrq>();
    drq->endpoint_id = vs.endpoint_id;
    drq->call_ref = rel->call_ref;
    send_tunneled(imsi, vs.signaling_ip, config_.gk_ip, *drq);
    vs.pending_drq_deactivate = vs.voice_active;
    arm_drq(imsi, rel->call_ref);
    return;
  }

  if (const auto* rtp = dynamic_cast<const RtpPacket*>(&inner)) {
    MsContext* ctx = context(imsi);
    if (ctx != nullptr && ctx->step == Step::kActive) {
      send_downlink_voice(*ctx, rtp->seq, rtp->origin_us,
                          config_.transcode_delay);
    }
    return;
  }

  VG_DEBUG("vmsc", name() << ": ignoring tunneled " << inner.name()
                          << " from " << dgram.src.to_string());
}

bool Vmsc::on_unhandled(const Envelope& env) { return handle_gprs(env); }

}  // namespace vgprs
