#include "vgprs/flows.hpp"

namespace vgprs {

const std::vector<FlowStep>& fig4_registration_flow() {
  static const std::vector<FlowStep> steps{
      // Step 1.1
      {"MS1", "Um_Location_Update_Request", "BTS"},
      {"BTS", "Abis_Location_Update", "BSC"},
      {"BSC", "A_Location_Update", "VMSC"},
      {"VMSC", "MAP_Update_Location_Area", "VLR"},
      // Step 1.2
      {"VLR", "MAP_Update_Location", "HLR"},
      {"HLR", "MAP_Insert_Subs_Data", "VLR"},
      {"VLR", "MAP_Insert_Subs_Data_ack", "HLR"},
      {"VLR", "MAP_Update_Location_Area_ack", "VMSC"},
      // Step 1.3
      {"VMSC", "GPRS_Attach_Request", "SGSN"},
      {"SGSN", "GPRS_Attach_Accept", "VMSC"},
      {"VMSC", "Activate_PDP_Context_Request", "SGSN"},
      {"SGSN", "GTP_Create_PDP_Context_Request", "GGSN"},
      {"GGSN", "GTP_Create_PDP_Context_Response", "SGSN"},
      {"SGSN", "Activate_PDP_Context_Accept", "VMSC"},
      // Step 1.4: RRQ rides the signaling PDP context (Gb -> GTP -> Gi).
      {"VMSC", "Gb_UnitData", "SGSN"},
      {"SGSN", "GTP_T_PDU", "GGSN"},
      {"GGSN", "IP_Datagram", "Router"},
      {"Router", "IP_Datagram", "GK"},
      // Step 1.5: RCF back through the tunnel.
      {"GK", "IP_Datagram", "Router"},
      {"Router", "IP_Datagram", "GGSN"},
      {"GGSN", "GTP_T_PDU", "SGSN"},
      {"SGSN", "Gb_UnitData", "VMSC"},
      // Step 1.6
      {"VMSC", "A_Location_Update_Accept", "BSC"},
      {"BSC", "Abis_Location_Update_Accept", "BTS"},
      {"BTS", "Um_Location_Update_Accept", "MS1"},
  };
  return steps;
}

const std::vector<FlowStep>& fig5_origination_flow() {
  static const std::vector<FlowStep> steps{
      // Step 2.1: channel assignment, security, then the dialled digits.
      {"MS1", "Um_Channel_Request", "BTS"},
      {"BSC", "Abis_Immediate_Assignment", "BTS"},
      {"MS1", "Um_CM_Service_Request", "BTS"},
      {"MS1", "Um_Setup", "BTS"},
      {"BSC", "A_Setup", "VMSC"},
      // Step 2.2: authorization at the VLR.
      {"VMSC", "MAP_Send_Info_For_Outgoing_Call", "VLR"},
      {"VLR", "MAP_Send_Info_For_Outgoing_Call_ack", "VMSC"},
      // Step 2.3: admission (tunneled through the GPRS core to the GK).
      {"VMSC", "Gb_UnitData", "SGSN"},
      {"Router", "IP_Datagram", "GK"},
      {"GK", "IP_Datagram", "Router"},
      // Step 2.4: Setup to the terminal, Call Proceeding back.
      {"Router", "IP_Datagram", "TERM1"},
      {"TERM1", "IP_Datagram", "Router"},
      // Step 2.6 -> 2.7: alerting propagates to the MS.
      {"VMSC", "A_Alerting", "BSC"},
      {"BSC", "Abis_Alerting", "BTS"},
      {"BTS", "Um_Alerting", "MS1"},
      // Step 2.8: answer.
      {"VMSC", "A_Connect", "BSC"},
      // Step 2.9: second PDP context for the voice path.
      {"VMSC", "Activate_PDP_Context_Request", "SGSN"},
      {"SGSN", "Activate_PDP_Context_Accept", "VMSC"},
  };
  return steps;
}

const std::vector<FlowStep>& fig5_release_flow() {
  static const std::vector<FlowStep> steps{
      // Step 3.1: the calling party hangs up.
      {"MS1", "Um_Disconnect", "BTS"},
      {"BSC", "A_Disconnect", "VMSC"},
      // Step 3.2: Q.931 release toward the terminal (first tunnel hop).
      {"VMSC", "Gb_UnitData", "SGSN"},
      {"Router", "IP_Datagram", "TERM1"},
      // Step 3.4: voice PDP context deactivated after the DRQ/DCF pair.
      {"VMSC", "Deactivate_PDP_Context_Request", "SGSN"},
      {"SGSN", "GTP_Delete_PDP_Context_Request", "GGSN"},
      {"SGSN", "Deactivate_PDP_Context_Accept", "VMSC"},
  };
  return steps;
}

const std::vector<FlowStep>& fig6_termination_flow() {
  static const std::vector<FlowStep> steps{
      // Step 4.1: ARQ/ACF at the gatekeeper (address translation).
      {"TERM1", "IP_Datagram", "Router"},
      {"Router", "IP_Datagram", "GK"},
      {"GK", "IP_Datagram", "Router"},
      // Step 4.2: Setup routed through GGSN -> SGSN -> VMSC.
      {"Router", "IP_Datagram", "GGSN"},
      {"GGSN", "GTP_T_PDU", "SGSN"},
      {"SGSN", "Gb_UnitData", "VMSC"},
      // Step 4.4: paging.
      {"VMSC", "A_Paging", "BSC"},
      {"BSC", "Abis_Paging", "BTS"},
      {"BTS", "Um_Paging_Request", "MS1"},
      // Step 4.5: page response, then setup toward the MS.
      {"MS1", "Um_Paging_Response", "BTS"},
      {"VMSC", "A_Setup", "BSC"},
      {"BTS", "Um_Setup", "MS1"},
      // Step 4.6: MS rings; alerting flows back.
      {"MS1", "Um_Alerting", "BTS"},
      // Step 4.7: answer.
      {"MS1", "Um_Connect", "BTS"},
      // Step 4.8: voice PDP context.
      {"VMSC", "Activate_PDP_Context_Request", "SGSN"},
      {"SGSN", "Activate_PDP_Context_Accept", "VMSC"},
  };
  return steps;
}

const std::vector<FlowStep>& fig7_classic_tromboning_flow() {
  static const std::vector<FlowStep> steps{
      // (1) the call is routed to x's gateway MSC in the UK...
      {"PHONE-y", "ISUP_IAM", "PSTN-HK"},
      {"PSTN-HK", "ISUP_IAM", "PSTN-UK"},
      {"PSTN-UK", "ISUP_IAM", "GMSC-UK"},
      // ...which interrogates the HLR and the (HK) VLR...
      {"GMSC-UK", "MAP_Send_Routing_Information", "HLR-UK"},
      {"HLR-UK", "MAP_Provide_Roaming_Number", "VLR-HK"},
      {"VLR-HK", "MAP_Provide_Roaming_Number_ack", "HLR-UK"},
      {"HLR-UK", "MAP_Send_Routing_Information_ack", "GMSC-UK"},
      // (2) ...and a trunk is set up back to Hong Kong.
      {"GMSC-UK", "ISUP_IAM", "PSTN-UK"},
      {"PSTN-UK", "ISUP_IAM", "PSTN-HK"},
      {"PSTN-HK", "ISUP_IAM", "MSC-HK"},
  };
  return steps;
}

const std::vector<FlowStep>& fig8_vgprs_tromboning_flow() {
  static const std::vector<FlowStep> steps{
      // (1) the local telephone company routes the call to the gateway.
      {"PHONE-y", "ISUP_IAM", "PSTN-HK"},
      {"PSTN-HK", "ISUP_IAM", "GW-HK"},
      // (2) the gateway checks the GK's address translation table.
      {"GW-HK", "IP_Datagram", "Router-HK"},
      {"Router-HK", "IP_Datagram", "GK-HK"},
      {"GK-HK", "IP_Datagram", "Router-HK"},
      // (3) the call follows the Fig. 6 termination procedure locally.
      {"GGSN-HK", "GTP_T_PDU", "SGSN-HK"},
      {"SGSN-HK", "Gb_UnitData", "VMSC-HK"},
      {"VMSC-HK", "A_Paging", "BSC-HK"},
  };
  return steps;
}

std::vector<FlowStep> fig9_handoff_flow(std::string_view target_msc) {
  std::string target(target_msc);
  return {
      {"BSC1", "A_Handover_Required", "VMSC"},
      {"VMSC", "MAP_Prepare_Handover", target},
      {target, "A_Handover_Request", "BSC2"},
      {"BSC2", "A_Handover_Request_Ack", target},
      {target, "MAP_Prepare_Handover_ack", "VMSC"},
      {"VMSC", "A_Handover_Command", "BSC1"},
      {"BTS1", "Um_Handover_Command", "MS1"},
      {"MS1", "Um_Handover_Access", "BTS2"},
      {"MS1", "Um_Handover_Complete", "BTS2"},
      {"BSC2", "A_Handover_Complete", target},
      {target, "MAP_Send_End_Signal", "VMSC"},
      // Anchor releases the old radio resources.
      {"VMSC", "A_Clear_Command", "BSC1"},
  };
}

const std::vector<FlowStep>& tr_origination_flow() {
  static const std::vector<FlowStep> steps{
      {"TR-MS1", "Activate_PDP_Context_Request", "SGSN"},
      {"SGSN", "GTP_Create_PDP_Context_Request", "GGSN"},
      {"SGSN", "Activate_PDP_Context_Accept", "TR-MS1"},
      {"TR-MS1", "Gb_UnitData", "SGSN"},  // then the ARQ can go out
  };
  return steps;
}

const std::vector<FlowStep>& tr_termination_flow() {
  static const std::vector<FlowStep> steps{
      // Caller asks for admission; the TR gatekeeper must consult the HLR.
      {"TERM1", "IP_Datagram", "Router"},
      {"GK", "MAP_Send_Routing_Information", "HLR"},
      {"HLR", "MAP_Send_Routing_Information_ack", "GK"},
      // The gatekeeper asks the GGSN to rebuild the routing path.
      {"GK", "IP_Datagram", "Router"},
      {"GGSN", "GTP_PDU_Notification_Request", "SGSN"},
      {"SGSN", "Request_PDP_Context_Activation", "TR-MS1"},
      {"TR-MS1", "Activate_PDP_Context_Request", "SGSN"},
      {"SGSN", "GTP_Create_PDP_Context_Request", "GGSN"},
      // Only now can the admission be confirmed and the Setup delivered.
      {"Router", "IP_Datagram", "TERM1"},
      {"GGSN", "GTP_T_PDU", "SGSN"},
      {"SGSN", "Gb_UnitData", "TR-MS1"},
  };
  return steps;
}

const std::vector<RetransmissionPolicy>& all_retransmission_policies() {
  static const std::vector<RetransmissionPolicy> policies{
      // Um air interface: the MS re-sends its last procedure message
      // LAPDm-style (retry_interval x max_retries) under the state guard.
      {"Um_Location_Update_Request", "MobileStation", "guard-retry", ""},
      {"Um_Channel_Request", "MobileStation", "guard-retry", ""},
      {"Um_CM_Service_Request", "MobileStation", "guard-retry", ""},
      {"Um_Setup", "MobileStation", "guard-retry", ""},
      {"Um_Disconnect", "MobileStation", "guard-retry", ""},
      // A interface: uplink requests are BSC relays of the Um retries above;
      // the MT-side A_Setup rides the VMSC's procedure guard.  A restarted
      // MSC answers an unknown-call A_Disconnect with the clearing sequence,
      // so the MS-side retry always converges.
      {"A_Setup", "MobileStation / VMSC", "guard-retry", ""},
      {"A_Disconnect", "MobileStation", "guard-retry", ""},
      {"Um_Paging_Request", "VMSC", "exempt",
       "an unanswered page is bounded by the VMSC's MT procedure guard "
       "(abort + clean rejection toward the caller); pages are not "
       "individually retransmitted"},
      // MAP: the MSC keeps its VLR requests in flight with capped
      // exponential backoff (Retransmitter).
      {"MAP_Update_Location_Area", "VMSC", "retransmitter", ""},
      {"MAP_Send_Info_For_Outgoing_Call", "VMSC", "retransmitter", ""},
      {"MAP_Update_Location", "VLR", "exempt",
       "inner leg of registration; re-driven end-to-end by the VMSC's "
       "MAP_Update_Location_Area retransmission"},
      {"MAP_Insert_Subs_Data", "HLR", "exempt",
       "inner leg of registration; re-driven end-to-end by the VMSC's "
       "MAP_Update_Location_Area retransmission"},
      {"MAP_Send_Routing_Information", "GK / GMSC", "exempt",
       "interrogation is re-driven by the upstream admission retry (RAS ARQ "
       "retransmission in TR 23.821; a PSTN re-attempt in the classic "
       "baseline)"},
      {"MAP_Provide_Roaming_Number", "HLR", "exempt",
       "classic-GSM baseline interrogation leg; loss surfaces as setup "
       "failure at the PSTN caller, outside the vGPRS recovery surface"},
      {"MAP_Prepare_Handover", "VMSC", "exempt",
       "supervised by the anchor MSC's handover procedure guard; on timeout "
       "the call stays on the serving cell"},
      {"A_Handover_Request", "target MSC", "exempt",
       "supervised by the anchor MSC's handover procedure guard; on timeout "
       "the call stays on the serving cell"},
      // GPRS session management: attach / PDP signalling is kept in flight
      // by the requesting core node (VMSC in vGPRS, the MS in TR 23.821).
      {"GPRS_Attach_Request", "VMSC / TR-MS", "retransmitter", ""},
      {"Activate_PDP_Context_Request", "VMSC / TR-MS", "retransmitter", ""},
      {"Deactivate_PDP_Context_Request", "VMSC / TR-MS", "retransmitter", ""},
      {"GTP_Create_PDP_Context_Request", "SGSN", "retransmitter", ""},
      {"GTP_Delete_PDP_Context_Request", "SGSN", "retransmitter", ""},
      {"GTP_PDU_Notification_Request", "GGSN", "exempt",
       "re-driven end-to-end by the admitting caller's RAS ARQ "
       "retransmission, which re-triggers the gatekeeper's path rebuild"},
      {"Request_PDP_Context_Activation", "SGSN", "exempt",
       "re-driven end-to-end by the admitting caller's RAS ARQ "
       "retransmission, which re-triggers the gatekeeper's path rebuild"},
  };
  return policies;
}

std::vector<NamedFlow> all_conformance_flows() {
  return {
      {"fig4-registration", fig4_registration_flow()},
      {"fig5-origination", fig5_origination_flow()},
      {"fig5-release", fig5_release_flow()},
      {"fig6-termination", fig6_termination_flow()},
      {"fig7-classic-tromboning", fig7_classic_tromboning_flow()},
      {"fig8-vgprs-tromboning", fig8_vgprs_tromboning_flow()},
      {"fig9-handoff-msc", fig9_handoff_flow("MSC-B")},
      {"fig9-handoff-vmsc", fig9_handoff_flow("VMSC-B")},
      {"tr23821-origination", tr_origination_flow()},
      {"tr23821-termination", tr_termination_flow()},
  };
}

}  // namespace vgprs
