#include "vgprs/scenario.hpp"

#include <algorithm>
#include <initializer_list>
#include <mutex>

#include "gsm/messages.hpp"
#include "gprs/data_ms.hpp"
#include "gprs/messages.hpp"
#include "h323/messages.hpp"
#include "pstn/messages.hpp"
#include "voice/rtp.hpp"

namespace vgprs {

void register_all_messages() {
  // Once-guarded: scenario builders run concurrently inside ParallelSweep
  // workers, and the registry must not be mutated while another thread
  // decodes through it.
  static std::once_flag once;
  std::call_once(once, [] {
    register_gsm_messages();
    register_data_messages();
    register_gprs_messages();
    register_h323_messages();
    register_pstn_messages();
    register_voice_messages();
  });
}

SubscriberIdentity make_subscriber(std::uint16_t country_code,
                                   std::uint32_t index) {
  SubscriberIdentity id;
  // IMSI: 15 digits, leading MCC-like field derived from the country code.
  id.imsi = Imsi(std::uint64_t{country_code} * 10'000'000'000'000ULL +
                     4'669'000'000ULL + index,
                 15);
  // MSISDN: 12 digits, <cc> 09 xxxxxxxx.
  id.msisdn = Msisdn(std::uint64_t{country_code} * 10'000'000'000ULL +
                         900'000'000ULL + index,
                     12);
  // SIM key: deterministic mix of the IMSI.
  std::uint64_t z = id.imsi.value() + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  id.ki = z ^ (z >> 31);
  return id;
}

// ---------------------------------------------------------------------------

std::unique_ptr<VgprsScenario> build_vgprs(const VgprsParams& p) {
  register_all_messages();
  auto s = std::make_unique<VgprsScenario>(p.seed);
  Network& net = s->net;
  const LatencyConfig& L = p.latency;

  const std::uint32_t cells = std::max(1u, p.num_cells);

  s->hlr = &net.add<Hlr>("HLR");
  s->vlr = &net.add<Vlr>(
      "VLR", Vlr::Config{"HLR", p.country_code,
                         std::uint64_t{p.country_code} * 100'000 + 99'000});
  for (std::uint32_t c = 0; c < cells; ++c) {
    // One cell keeps the legacy names so existing flow tests and goldens
    // see the exact Fig. 2(b) topology.
    const std::string suffix = cells == 1 ? "" : std::to_string(c + 1);
    auto& bsc = net.add<Bsc>(
        "BSC" + suffix,
        Bsc::Config{"VMSC", static_cast<std::uint16_t>(p.bsc_channels),
                    static_cast<std::uint16_t>(p.bsc_channels)});
    auto& bts = net.add<Bts>("BTS" + suffix, CellId(101 + c),
                             LocationAreaId(10 + c), "BSC" + suffix);
    s->bscs.push_back(&bsc);
    s->btss.push_back(&bts);
  }
  s->bsc = s->bscs.front();
  s->bts = s->btss.front();
  Vmsc::VmscConfig vc;
  vc.base = MscBase::Config{"VLR", p.authenticate_registration,
                            p.authenticate_calls, p.ciphering};
  vc.sgsn_name = "SGSN";
  vc.gk_ip = IpAddress(192, 168, 1, 1);
  vc.deactivate_pdp_when_idle = p.deactivate_pdp_when_idle;
  s->vmsc = &net.add<Vmsc>("VMSC", vc);
  s->sgsn = &net.add<Sgsn>("SGSN", Sgsn::Config{"GGSN", "HLR"});
  Ggsn::Config gc;
  gc.router_name = "Router";
  gc.hlr_name = "HLR";
  s->ggsn = &net.add<Ggsn>("GGSN", gc);
  s->router = &net.add<IpRouter>("Router");
  s->gk = &net.add<Gatekeeper>("GK", IpAddress(192, 168, 1, 1), "Router");

  for (std::uint32_t c = 0; c < cells; ++c) {
    s->bscs[c]->adopt_bts(*s->btss[c]);
    s->vmsc->adopt_cell(CellId(101 + c), s->bscs[c]->name());
    net.connect(*s->btss[c], *s->bscs[c], L.link(L.abis, "Abis"));
    net.connect(*s->bscs[c], *s->vmsc, L.link(L.a, "A"));
  }
  net.connect(*s->vmsc, *s->vlr, L.link(L.b, "B"));
  net.connect(*s->vlr, *s->hlr, L.link(L.d, "D"));
  net.connect(*s->vmsc, *s->sgsn, L.link(L.gb, "Gb"));
  net.connect(*s->sgsn, *s->ggsn, L.link(L.gn, "Gn"));
  net.connect(*s->sgsn, *s->hlr, L.link(L.gr, "Gr"));
  net.connect(*s->ggsn, *s->hlr, L.link(L.gc, "Gc"));
  net.connect(*s->ggsn, *s->router, L.link(L.gi, "Gi"));
  net.connect(*s->gk, *s->router, L.link(L.ip, "IP"));

  for (std::uint32_t i = 0; i < p.num_ms; ++i) {
    SubscriberIdentity id = make_subscriber(p.country_code, i + 1);
    SubscriberProfile profile;
    profile.msisdn = id.msisdn;
    s->hlr->provision(id.imsi, id.ki, profile);
    Bts& home_bts = *s->btss[i % cells];  // round-robin over the cells
    MobileStation::Config mc;
    mc.imsi = id.imsi;
    mc.msisdn = id.msisdn;
    mc.ki = id.ki;
    mc.bts_name = home_bts.name();
    auto& ms = net.add<MobileStation>("MS" + std::to_string(i + 1), mc);
    net.connect(ms, home_bts, L.link(L.um, "Um"));
    s->ms.push_back(&ms);
  }

  for (std::uint32_t i = 0; i < p.num_terminals; ++i) {
    H323Terminal::Config tc;
    tc.ip = IpAddress(192, 168, 1, 10 + static_cast<std::uint8_t>(i));
    tc.alias = make_subscriber(p.country_code, 1000 + i).msisdn;
    tc.gk_ip = IpAddress(192, 168, 1, 1);
    tc.router_name = "Router";
    auto& term =
        net.add<H323Terminal>("TERM" + std::to_string(i + 1), tc);
    net.connect(term, *s->router, L.link(L.ip, "IP"));
    s->terminals.push_back(&term);
  }

  if (p.sharded) {
    if (cells == 1) {
      // The exact Fig. 2(b) golden topology keeps the canonical seam plan:
      // the goldens pin creation-order tie-breaks (GK and the terminals
      // must share a shard or same-microsecond IP datagrams reorder), and
      // with one cell there is no load to balance anyway.  Lookahead =
      // 2 ms (the A and Gn interfaces).
      std::vector<std::vector<NodeId>> groups;
      groups.emplace_back();  // 0: CS core — VMSC/VLR/HLR and anything unlisted
      groups.push_back({s->sgsn->id()});
      groups.push_back({s->ggsn->id(), s->router->id()});
      std::vector<NodeId> h323{s->gk->id()};
      for (H323Terminal* t : s->terminals) h323.push_back(t->id());
      groups.push_back(std::move(h323));
      std::vector<NodeId> cell{s->bscs[0]->id(), s->btss[0]->id()};
      for (MobileStation* m : s->ms) cell.push_back(m->id());
      groups.push_back(std::move(cell));
      net.set_shards(groups);
    } else {
      // Multi-cell: let the topology-aware planner balance the per-cell
      // BSS subtrees and the PS/H.323 side across shards by estimated
      // event rate.  Pinning the CS core (VMSC/VLR/HLR) keeps the seams on
      // the A and Gb interfaces, so the lookahead stays the minimum
      // cross-shard latency: 2 ms.
      const NodeId core[] = {s->vmsc->id(), s->vlr->id(), s->hlr->id()};
      net.set_shards(net.plan_shards(cells + 4, core));
    }
    net.set_workers(p.workers);
  }

  return s;
}

// ---------------------------------------------------------------------------

std::unique_ptr<TrombScenario> build_tromboning(const TrombParams& p) {
  register_all_messages();
  auto s = std::make_unique<TrombScenario>(p.seed);
  Network& net = s->net;
  const LatencyConfig& L = p.latency;

  // --- UK home network ------------------------------------------------------
  s->hlr_uk = &net.add<Hlr>("HLR-UK");
  s->switch_uk = &net.add<PstnSwitch>("PSTN-UK");
  GsmMsc::MscConfig gmsc_cfg;
  gmsc_cfg.base = MscBase::Config{"VLR-HK", false, false, false};
  gmsc_cfg.pstn_name = "PSTN-UK";
  gmsc_cfg.hlr_name = "HLR-UK";
  gmsc_cfg.gmsc_role = true;
  s->gmsc_uk = &net.add<GsmMsc>("GMSC-UK", gmsc_cfg);
  net.connect(*s->gmsc_uk, *s->switch_uk, L.link(L.isup, "ISUP"));
  net.connect(*s->gmsc_uk, *s->hlr_uk, L.link(L.d, "C"));

  // --- HK visited network ----------------------------------------------------
  s->switch_hk = &net.add<PstnSwitch>("PSTN-HK");
  // The HK VLR reaches the roamer's home HLR over an international SS7 hop.
  s->vlr_hk = &net.add<Vlr>("VLR-HK",
                            Vlr::Config{"HLR-UK", 85, 8'599'000});
  s->bsc_hk = &net.add<Bsc>(
      "BSC-HK",
      Bsc::Config{p.use_vgprs && p.roamer_registered ? "VMSC-HK" : "MSC-HK",
                  64, 64});
  s->bts_hk =
      &net.add<Bts>("BTS-HK", CellId(201), LocationAreaId(20), "BSC-HK");
  s->bsc_hk->adopt_bts(*s->bts_hk);
  net.connect(*s->bts_hk, *s->bsc_hk, L.link(L.abis, "Abis"));
  net.connect(*s->vlr_hk, *s->hlr_uk, L.link(L.d_intl, "D-intl"));

  // Classic serving MSC (used in the GSM flavour, and as the fallback CS
  // network in the vGPRS flavour when the roamer is not at the local GK).
  GsmMsc::MscConfig msc_cfg;
  msc_cfg.base = MscBase::Config{"VLR-HK", true, true, true};
  msc_cfg.pstn_name = "PSTN-HK";
  msc_cfg.hlr_name = "HLR-UK";
  msc_cfg.msrn_prefix = 8'599'000;
  s->msc_hk = &net.add<GsmMsc>("MSC-HK", msc_cfg);
  net.connect(*s->msc_hk, *s->switch_hk, L.link(L.isup, "ISUP"));
  net.connect(*s->msc_hk, *s->vlr_hk, L.link(L.b, "B"));
  net.connect(*s->bsc_hk, *s->msc_hk, L.link(L.a, "A"));
  s->msc_hk->adopt_cell(CellId(201), "BSC-HK");

  // --- international PSTN routing ---------------------------------------------
  // y dials x's UK number: +44 909 000 0001.
  s->roamer_id = make_subscriber(44, 1);
  s->switch_uk->add_route("44", "GMSC-UK", TrunkClass::kNational);
  s->switch_uk->add_route("85", "PSTN-HK", TrunkClass::kInternational);
  s->switch_hk->add_route("8599", "MSC-HK", TrunkClass::kLocal);
  net.connect(*s->switch_uk, *s->switch_hk,
              L.link(L.intl_trunk, "intl-trunk"));

  SubscriberProfile profile;
  profile.msisdn = s->roamer_id.msisdn;
  s->hlr_uk->provision(s->roamer_id.imsi, s->roamer_id.ki, profile);

  // --- the roamer x and the caller y -------------------------------------------
  MobileStation::Config xc;
  xc.imsi = s->roamer_id.imsi;
  xc.msisdn = s->roamer_id.msisdn;
  xc.ki = s->roamer_id.ki;
  xc.bts_name = "BTS-HK";
  s->roamer = &net.add<MobileStation>("MS-x", xc);
  net.connect(*s->roamer, *s->bts_hk, L.link(L.um, "Um"));

  PstnPhone::Config yc;
  yc.number = Msisdn(852'210'000'01ULL, 11);
  yc.switch_name = "PSTN-HK";
  s->caller = &net.add<PstnPhone>("PHONE-y", yc);
  net.connect(*s->caller, *s->switch_hk, L.link(L.isup, "line"));
  s->switch_hk->attach_subscriber(yc.number, "PHONE-y");

  // UK home side (implicit shard 0) / HK core / HK BSS subtree.  Must run
  // before any stimulus (the gateway registration below enqueues events).
  // Manual plan, not plan_shards: with the UK side as core the whole HK
  // deployment is one connected component, so the planner could not split
  // the BSS subtree off the HK core the way the fig7/fig8 goldens expect.
  auto apply_shards = [&] {
    if (!p.sharded) return;
    std::vector<std::vector<NodeId>> groups;
    groups.emplace_back();  // UK side + international exchanges
    std::vector<NodeId> hk{s->switch_hk->id(), s->vlr_hk->id(),
                           s->msc_hk->id(), s->caller->id()};
    for (Node* n :
         std::initializer_list<Node*>{s->vmsc_hk, s->sgsn_hk, s->ggsn_hk,
                                      s->router_hk, s->gk_hk,
                                      s->switch_hk_intl, s->gw_hk}) {
      if (n != nullptr) hk.push_back(n->id());
    }
    groups.push_back(std::move(hk));
    groups.push_back(
        {s->bsc_hk->id(), s->bts_hk->id(), s->roamer->id()});
    net.set_shards(groups);
    net.set_workers(p.workers);
  };

  if (!p.use_vgprs) {
    // Fig. 7: the call to +44... leaves HK on an international trunk.
    s->switch_hk->add_route("44", "PSTN-UK", TrunkClass::kInternational);
    apply_shards();
    return s;
  }

  // --- Fig. 8: vGPRS deployment in HK -------------------------------------------
  Vmsc::VmscConfig vc;
  vc.base = MscBase::Config{"VLR-HK", true, true, true};
  vc.sgsn_name = "SGSN-HK";
  vc.gk_ip = IpAddress(192, 168, 8, 1);
  s->vmsc_hk = &net.add<Vmsc>("VMSC-HK", vc);
  s->sgsn_hk = &net.add<Sgsn>("SGSN-HK", Sgsn::Config{"GGSN-HK", "HLR-UK"});
  Ggsn::Config gc;
  gc.router_name = "Router-HK";
  gc.hlr_name = "HLR-UK";
  s->ggsn_hk = &net.add<Ggsn>("GGSN-HK", gc);
  s->router_hk = &net.add<IpRouter>("Router-HK");
  s->gk_hk =
      &net.add<Gatekeeper>("GK-HK", IpAddress(192, 168, 8, 1), "Router-HK");
  net.connect(*s->vmsc_hk, *s->vlr_hk, L.link(L.b, "B"));
  net.connect(*s->vmsc_hk, *s->sgsn_hk, L.link(L.gb, "Gb"));
  net.connect(*s->sgsn_hk, *s->ggsn_hk, L.link(L.gn, "Gn"));
  net.connect(*s->sgsn_hk, *s->hlr_uk, L.link(L.d_intl, "Gr-intl"));
  net.connect(*s->ggsn_hk, *s->hlr_uk, L.link(L.d_intl, "Gc-intl"));
  net.connect(*s->ggsn_hk, *s->router_hk, L.link(L.gi, "Gi"));
  net.connect(*s->gk_hk, *s->router_hk, L.link(L.ip, "IP"));
  s->vmsc_hk->adopt_cell(CellId(201), "BSC-HK");
  if (p.roamer_registered) {
    net.connect(*s->bsc_hk, *s->vmsc_hk, L.link(L.a, "A"));
  }

  // The local telephone company routes calls to UK numbers VoIP-first,
  // through the H.323 gateway; international fallback goes through the
  // gateway exchange.
  s->switch_hk_intl = &net.add<PstnSwitch>("PSTN-HK-INTL");
  s->switch_hk_intl->add_route("44", "PSTN-UK", TrunkClass::kInternational);
  net.connect(*s->switch_hk_intl, *s->switch_uk,
              L.link(L.intl_trunk, "intl-trunk"));

  H323Gateway::Config gwc;
  gwc.ip = IpAddress(192, 168, 8, 20);
  gwc.service_alias = Msisdn(852'990'000'00ULL, 11);
  gwc.gk_ip = IpAddress(192, 168, 8, 1);
  gwc.router_name = "Router-HK";
  gwc.pstn_name = "PSTN-HK";
  gwc.fallback_pstn_name = "PSTN-HK-INTL";
  s->gw_hk = &net.add<H323Gateway>("GW-HK", gwc);
  net.connect(*s->gw_hk, *s->switch_hk, L.link(L.isup, "ISUP"));
  net.connect(*s->gw_hk, *s->switch_hk_intl, L.link(L.isup, "ISUP"));
  net.connect(*s->gw_hk, *s->router_hk, L.link(L.ip, "IP"));
  s->switch_hk->add_route("44", "GW-HK", TrunkClass::kLocal);
  apply_shards();
  s->gw_hk->register_endpoint();

  return s;
}

// ---------------------------------------------------------------------------

std::unique_ptr<HandoffScenario> build_handoff(const HandoffParams& p) {
  register_all_messages();
  auto s = std::make_unique<HandoffScenario>(p.seed);
  Network& net = s->net;
  const LatencyConfig& L = p.latency;

  s->hlr = &net.add<Hlr>("HLR");
  s->vlr = &net.add<Vlr>("VLR", Vlr::Config{"HLR", 88, 8'899'000});
  s->bsc1 = &net.add<Bsc>("BSC1", Bsc::Config{"VMSC", 64, 64});
  s->bts1 = &net.add<Bts>("BTS1", CellId(101), LocationAreaId(10), "BSC1");
  Vmsc::VmscConfig vc;
  vc.base = MscBase::Config{"VLR", true, true, true};
  vc.sgsn_name = "SGSN";
  vc.gk_ip = IpAddress(192, 168, 1, 1);
  s->vmsc = &net.add<Vmsc>("VMSC", vc);
  s->sgsn = &net.add<Sgsn>("SGSN", Sgsn::Config{"GGSN", "HLR"});
  Ggsn::Config gc;
  gc.router_name = "Router";
  gc.hlr_name = "HLR";
  s->ggsn = &net.add<Ggsn>("GGSN", gc);
  s->router = &net.add<IpRouter>("Router");
  s->gk = &net.add<Gatekeeper>("GK", IpAddress(192, 168, 1, 1), "Router");

  s->bsc1->adopt_bts(*s->bts1);
  s->vmsc->adopt_cell(CellId(101), "BSC1");
  net.connect(*s->bts1, *s->bsc1, L.link(L.abis, "Abis"));
  net.connect(*s->bsc1, *s->vmsc, L.link(L.a, "A"));
  net.connect(*s->vmsc, *s->vlr, L.link(L.b, "B"));
  net.connect(*s->vlr, *s->hlr, L.link(L.d, "D"));
  net.connect(*s->vmsc, *s->sgsn, L.link(L.gb, "Gb"));
  net.connect(*s->sgsn, *s->ggsn, L.link(L.gn, "Gn"));
  net.connect(*s->sgsn, *s->hlr, L.link(L.gr, "Gr"));
  net.connect(*s->ggsn, *s->hlr, L.link(L.gc, "Gc"));
  net.connect(*s->ggsn, *s->router, L.link(L.gi, "Gi"));
  net.connect(*s->gk, *s->router, L.link(L.ip, "IP"));

  // Target-side BSS + MSC-B (classic GSM, or a second VMSC: the paper notes
  // the VMSC-VMSC handoff follows the same procedure).
  const char* msc_b_name = p.target_is_vmsc ? "VMSC-B" : "MSC-B";
  s->bsc2 = &net.add<Bsc>("BSC2", Bsc::Config{msc_b_name, 64, 64});
  s->bts2 = &net.add<Bts>("BTS2", CellId(202), LocationAreaId(20), "BSC2");
  s->bsc2->adopt_bts(*s->bts2);
  if (p.target_is_vmsc) {
    Vmsc::VmscConfig vb;
    vb.base = MscBase::Config{"VLR", true, true, true};
    vb.sgsn_name = "SGSN";
    vb.gk_ip = IpAddress(192, 168, 1, 1);
    Vmsc& b = net.add<Vmsc>(msc_b_name, vb);
    net.connect(b, *s->sgsn, L.link(L.gb, "Gb"));
    s->msc_b = &b;
  } else {
    GsmMsc::MscConfig mb;
    mb.base = MscBase::Config{"VLR", true, true, true};
    mb.hlr_name = "HLR";
    s->msc_b = &net.add<GsmMsc>(msc_b_name, mb);
  }
  s->msc_b->adopt_cell(CellId(202), "BSC2");
  s->vmsc->add_remote_cell(CellId(202), msc_b_name);
  net.connect(*s->bts2, *s->bsc2, L.link(L.abis, "Abis"));
  net.connect(*s->bsc2, *s->msc_b, L.link(L.a, "A"));
  net.connect(*s->vmsc, *s->msc_b, L.link(L.e, "E"));

  // Subscriber + terminal.
  SubscriberIdentity id = make_subscriber(88, 1);
  SubscriberProfile profile;
  profile.msisdn = id.msisdn;
  s->hlr->provision(id.imsi, id.ki, profile);
  MobileStation::Config mc;
  mc.imsi = id.imsi;
  mc.msisdn = id.msisdn;
  mc.ki = id.ki;
  mc.bts_name = "BTS1";
  s->ms = &net.add<MobileStation>("MS1", mc);
  s->ms->add_neighbor_bts(CellId(202), "BTS2");
  net.connect(*s->ms, *s->bts1, L.link(L.um, "Um"));
  net.connect(*s->ms, *s->bts2, L.link(L.um, "Um"));

  H323Terminal::Config tc;
  tc.ip = IpAddress(192, 168, 1, 10);
  tc.alias = make_subscriber(88, 1000).msisdn;
  tc.gk_ip = IpAddress(192, 168, 1, 1);
  tc.router_name = "Router";
  s->terminal = &net.add<H323Terminal>("TERM", tc);
  net.connect(*s->terminal, *s->router, L.link(L.ip, "IP"));

  if (p.sharded) {
    // Core (implicit) / anchor cell (with the MS) / target cell / MSC-B.
    // Manual plan, not plan_shards: the MS is wired to BOTH BTSs (that is
    // the handoff), which fuses the two cell subtrees into one connected
    // component the planner would keep whole.
    net.set_shards({{},
                    {s->bsc1->id(), s->bts1->id(), s->ms->id()},
                    {s->bsc2->id(), s->bts2->id()},
                    {s->msc_b->id()}});
    net.set_workers(p.workers);
  }

  return s;
}

}  // namespace vgprs
