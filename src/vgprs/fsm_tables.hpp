// The control-plane state machines declared as data, so vgprs_lint can
// machine-check them: every state reachable from the initial state, every
// non-terminal state with a way out, every transition endpoint declared.
//
// Three machines are declared:
//  * "msc-call":      the MscBase registration / MO / MT / clearing FSM
//                     (MscBase::Step), shared by the MSC and the VMSC;
//  * "vmsc-endpoint": the VMSC's per-MS vGPRS lifecycle (attach -> PDP ->
//                     RAS -> ready; Vmsc::VgprsState::Phase);
//  * "pdp-context":   the GPRS data MS / PDP-context lifecycle
//                     (GprsDataMs::State).
//
// The state lists are generated from the real enums via exhaustive switch
// functions (no default case), so adding an enum value without updating the
// table is a compile error, and removing a transition leaves the lint's
// reachability check to catch the newly dead state.
#pragma once

#include <string_view>
#include <vector>

namespace vgprs {

struct FsmTransition {
  std::string_view from;
  std::string_view event;
  std::string_view to;
};

struct FsmTable {
  std::string_view name;
  std::string_view initial;
  std::vector<std::string_view> states;
  /// States allowed to have no outgoing transition.
  std::vector<std::string_view> terminal;
  std::vector<FsmTransition> transitions;
};

/// All declared control-plane machines, for vgprs_lint's FSM sweep.
const std::vector<FsmTable>& conformance_fsm_tables();

}  // namespace vgprs
