// The control-plane state machines declared as data, so vgprs_lint and
// vgprs_verify can machine-check them: every state reachable from the
// initial state, every non-terminal state with a way out, every transition
// endpoint declared, and — via vgprs_verify's product-state exploration —
// every reachable (state, message) pair handled under delay and reorder.
//
// Six machines are declared:
//  * "msc-call":       the MscBase registration / MO / MT / clearing FSM
//                      (MscBase::Step), shared by the MSC and the VMSC;
//  * "vmsc-endpoint":  the VMSC's per-MS vGPRS lifecycle (attach -> PDP ->
//                      RAS -> ready; Vmsc::VgprsState::Phase);
//  * "pdp-context":    the GPRS data MS / PDP-context lifecycle
//                      (GprsDataMs::State);
//  * "handoff-anchor": the anchor MSC's inter-system handoff overlay
//                      (Fig. 9 / MscBase::handle_handover, anchor role);
//  * "handoff-target": the target MSC's reservation overlay (same code,
//                      target role);
//  * "tr-ms":          the TR 23.821 baseline handset
//                      (TrMobileStation::State).
//
// The state lists are generated from the real enums via exhaustive switch
// functions (no default case), so adding an enum value without updating the
// table is a compile error, and removing a transition leaves the lint's
// reachability check to catch the newly dead state.
//
// Completeness metadata, consumed by vgprs_verify:
//  * FsmTransition::emits names the wire messages the node sends when the
//    transition fires, so every flow step sourced at a bound node can be
//    traced back to a declared transition (check "flow-cover");
//  * FsmTable::timers declares which waiting states are supervised by a
//    timer (procedure guard or Retransmitter give-up) and which transition
//    event fires on expiry (check "timer");
//  * FsmTable::stable lists the states allowed to rest with no timer
//    armed; a reachable product state stuck in any other state with no
//    enabled transition is a deadlock (check "deadlock").
#pragma once

#include <string_view>
#include <vector>

namespace vgprs {

struct FsmTransition {
  std::string_view from;
  std::string_view event;
  std::string_view to;
  /// Wire messages sent when this transition fires (flow-cover metadata).
  std::vector<std::string_view> emits{};
};

/// A timer held while in `state`: on expiry the machine takes the
/// transition whose event base-name matches `expiry_event`.  When the timer
/// backs a request retransmission, `retransmits` names the request, which
/// must carry a row in all_retransmission_policies().
struct FsmTimer {
  std::string_view state;
  std::string_view expiry_event;
  std::string_view retransmits;
};

struct FsmTable {
  std::string_view name;
  std::string_view initial;
  std::vector<std::string_view> states;
  /// States allowed to have no outgoing transition.
  std::vector<std::string_view> terminal;
  std::vector<FsmTransition> transitions;
  /// States that may rest indefinitely with no timer armed.
  std::vector<std::string_view> stable;
  /// Timer supervision for the non-stable states.
  std::vector<FsmTimer> timers;
};

/// All declared control-plane machines, for vgprs_lint's FSM sweep and
/// vgprs_verify's product-state exploration.
const std::vector<FsmTable>& conformance_fsm_tables();

}  // namespace vgprs
