// Per-interface one-way latency budgets.  Defaults follow published
// GSM/GPRS signaling-delay figures: tens of ms on the air interface
// (SDCCH block interleaving + scheduling), a few ms on terrestrial
// interfaces, ~10 ms per national SS7 hop, and long-haul international
// trunks around 100 ms.  Benches sweep these.
#pragma once

#include "sim/network.hpp"
#include "sim/time.hpp"

namespace vgprs {

struct LatencyConfig {
  SimDuration um = SimDuration::millis(15);          // air, circuit signaling
  SimDuration um_packet = SimDuration::millis(40);   // air, packet-switched
  SimDuration um_packet_jitter = SimDuration::millis(60);  // radio queueing
  SimDuration abis = SimDuration::millis(2);
  SimDuration a = SimDuration::millis(2);
  SimDuration b = SimDuration::millis(1);            // (V)MSC - VLR
  SimDuration d = SimDuration::millis(8);            // VLR - HLR (SS7)
  SimDuration d_intl = SimDuration::millis(90);      // roaming SS7 hop
  SimDuration e = SimDuration::millis(10);           // MSC - MSC
  SimDuration gb = SimDuration::millis(3);           // (V)MSC/PCU - SGSN
  SimDuration gn = SimDuration::millis(2);           // SGSN - GGSN
  SimDuration gr = SimDuration::millis(8);           // SGSN - HLR
  SimDuration gc = SimDuration::millis(8);           // GGSN - HLR
  SimDuration gi = SimDuration::millis(3);           // GGSN - IP cloud
  SimDuration ip = SimDuration::millis(3);           // cloud - endpoints
  SimDuration isup = SimDuration::millis(4);         // ISUP hop, national
  SimDuration intl_trunk = SimDuration::millis(90);  // international trunk

  [[nodiscard]] LinkProfile link(SimDuration latency,
                                 const char* label) const {
    LinkProfile p;
    p.latency = latency;
    p.label = label;
    return p;
  }
};

}  // namespace vgprs
